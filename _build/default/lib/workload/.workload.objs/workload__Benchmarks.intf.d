lib/workload/benchmarks.mli: Spec

lib/workload/trace.ml: Fun Gc_common Heapsim Printf Repro_util String

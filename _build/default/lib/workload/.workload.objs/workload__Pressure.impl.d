lib/workload/pressure.ml: Format

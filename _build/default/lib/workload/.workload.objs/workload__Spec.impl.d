lib/workload/spec.ml: Format Fun Printf String

lib/workload/trace.mli: Gc_common

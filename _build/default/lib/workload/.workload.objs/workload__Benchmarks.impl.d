lib/workload/benchmarks.ml: List Spec

lib/workload/mutator.mli: Gc_common Spec Trace

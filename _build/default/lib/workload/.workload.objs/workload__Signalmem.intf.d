lib/workload/signalmem.mli: Heapsim Vmsim

lib/workload/pressure.mli: Format

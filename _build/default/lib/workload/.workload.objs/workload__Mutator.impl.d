lib/workload/mutator.ml: Array Gc_common Hashtbl Heapsim Repro_util Spec Trace Vmsim

lib/workload/signalmem.ml: Heapsim Repro_util Vmsim

type t =
  | None_
  | Steady of { after_progress : float; pin_pages : int }
  | Ramp of {
      after_progress : float;
      initial_pages : int;
      pages_per_step : int;
      step_ns : int;
      max_pages : int;
    }

let due_pages t ~now_ns ~start_ns ~progress =
  match t with
  | None_ -> 0
  | Steady { after_progress; pin_pages } ->
      if progress >= after_progress then pin_pages else 0
  | Ramp { after_progress; initial_pages; pages_per_step; step_ns; max_pages }
    ->
      if progress < after_progress then 0
      else begin
        let steps = (now_ns - start_ns) / step_ns in
        min max_pages (initial_pages + (steps * pages_per_step))
      end

let pp ppf = function
  | None_ -> Format.pp_print_string ppf "none"
  | Steady { after_progress; pin_pages } ->
      Format.fprintf ppf "steady(%d pages @ %.0f%%)" pin_pages
        (100.0 *. after_progress)
  | Ramp { initial_pages; pages_per_step; step_ns; max_pages; _ } ->
      Format.fprintf ppf "ramp(%d + %d/%.0fms -> %d pages)" initial_pages
        pages_per_step
        (float_of_int step_ns /. 1e6)
        max_pages

(** Workload specifications.

    Each paper benchmark is modelled as a parameterised synthetic
    allocator. The parameters capture what the paper's evaluation depends
    on: allocation volume, object demographics (size and reference
    counts), survival behaviour (the generational hypothesis), pointer
    mutation rate and access locality. Byte quantities are the paper's
    Table 1 values scaled by 1/8. *)

type t = {
  name : string;
  total_alloc_bytes : int;  (** stop after allocating this much *)
  immortal_bytes : int;  (** allocated up front, live forever *)
  window_bytes : int;  (** steady-state long-lived window (ring) *)
  long_frac : float;  (** fraction of allocations inserted in the window *)
  mean_size : int;  (** mean object size (geometric-ish distribution) *)
  max_size : int;  (** size cap for ordinary objects *)
  large_frac : float;  (** fraction of allocations above the LOS threshold *)
  array_frac : float;  (** fraction allocated as arrays *)
  nrefs_mean : int;  (** mean reference fields per object *)
  mutation_rate : float;  (** extra pointer stores per allocation *)
  access_rate : float;  (** reads of live objects per allocation *)
  cold_access_frac : float;
      (** probability an access goes to the cold immortal data instead of
          the hot window *)
  paper_min_heap_bytes : int;
      (** the paper's Table 1 minimum heap, scaled 1/8 — the unit for
          relative-heap-size sweeps *)
  seed : int;
}

val scale_volume : t -> float -> t
(** Scale the allocation volume (not the live set) — used by the quick
    bench mode. *)

val live_estimate_bytes : t -> int
(** Immortal plus window bytes: the steady-state live set. *)

val pp : Format.formatter -> t -> unit

val of_file : string -> t
(** Load a spec from a [key = value] file (lines starting with [#] are
    comments). Unset keys take the pseudoJBB-like defaults; unknown keys
    raise [Failure]. Keys are the record's field names. *)

val to_file : t -> string -> unit

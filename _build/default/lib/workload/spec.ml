type t = {
  name : string;
  total_alloc_bytes : int;
  immortal_bytes : int;
  window_bytes : int;
  long_frac : float;
  mean_size : int;
  max_size : int;
  large_frac : float;
  array_frac : float;
  nrefs_mean : int;
  mutation_rate : float;
  access_rate : float;
  cold_access_frac : float;
  paper_min_heap_bytes : int;
  seed : int;
}

let scale_volume t factor =
  {
    t with
    total_alloc_bytes =
      max t.immortal_bytes
        (int_of_float (float_of_int t.total_alloc_bytes *. factor));
  }

let live_estimate_bytes t = t.immortal_bytes + t.window_bytes

let pp ppf t =
  Format.fprintf ppf "%s: alloc=%dB live~%dB min-heap=%dB" t.name
    t.total_alloc_bytes (live_estimate_bytes t) t.paper_min_heap_bytes

let default_for_file =
  {
    name = "custom";
    total_alloc_bytes = 8 * 1024 * 1024;
    immortal_bytes = 500_000;
    window_bytes = 250_000;
    long_frac = 0.03;
    mean_size = 48;
    max_size = 1024;
    large_frac = 0.0;
    array_frac = 0.25;
    nrefs_mean = 2;
    mutation_rate = 0.3;
    access_rate = 2.0;
    cold_access_frac = 0.03;
    paper_min_heap_bytes = 2 * 1024 * 1024;
    seed = 1;
  }

let apply_key spec key value =
  let int () =
    match int_of_string_opt (String.trim value) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Spec.of_file: %s wants an integer" key)
  in
  let fl () =
    match float_of_string_opt (String.trim value) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Spec.of_file: %s wants a float" key)
  in
  match String.trim key with
  | "name" -> { spec with name = String.trim value }
  | "total_alloc_bytes" -> { spec with total_alloc_bytes = int () }
  | "immortal_bytes" -> { spec with immortal_bytes = int () }
  | "window_bytes" -> { spec with window_bytes = int () }
  | "long_frac" -> { spec with long_frac = fl () }
  | "mean_size" -> { spec with mean_size = int () }
  | "max_size" -> { spec with max_size = int () }
  | "large_frac" -> { spec with large_frac = fl () }
  | "array_frac" -> { spec with array_frac = fl () }
  | "nrefs_mean" -> { spec with nrefs_mean = int () }
  | "mutation_rate" -> { spec with mutation_rate = fl () }
  | "access_rate" -> { spec with access_rate = fl () }
  | "cold_access_frac" -> { spec with cold_access_frac = fl () }
  | "paper_min_heap_bytes" -> { spec with paper_min_heap_bytes = int () }
  | "seed" -> { spec with seed = int () }
  | other -> failwith (Printf.sprintf "Spec.of_file: unknown key %S" other)

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let spec = ref default_for_file in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then
             match String.index_opt line '=' with
             | None ->
                 failwith
                   (Printf.sprintf "Spec.of_file: malformed line %S" line)
             | Some i ->
                 spec :=
                   apply_key !spec
                     (String.sub line 0 i)
                     (String.sub line (i + 1) (String.length line - i - 1))
         done
       with End_of_file -> ());
      !spec)

let to_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "name = %s\ntotal_alloc_bytes = %d\nimmortal_bytes = %d\n\
         window_bytes = %d\nlong_frac = %f\nmean_size = %d\nmax_size = %d\n\
         large_frac = %f\narray_frac = %f\nnrefs_mean = %d\n\
         mutation_rate = %f\naccess_rate = %f\ncold_access_frac = %f\n\
         paper_min_heap_bytes = %d\nseed = %d\n"
        t.name t.total_alloc_bytes t.immortal_bytes t.window_bytes t.long_frac
        t.mean_size t.max_size t.large_frac t.array_frac t.nrefs_mean
        t.mutation_rate t.access_rate t.cold_access_frac
        t.paper_min_heap_bytes t.seed)

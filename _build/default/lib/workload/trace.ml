module Vec = Repro_util.Vec

type event =
  | Alloc of { size : int; nrefs : int; array : bool }
  | Write of { src : int; field : int; target : int }
  | Access of int
  | Root of int
  | Unroot of int

type t = { events : event Vec.t }

let create () = { events = Vec.create () }

let record t e = Vec.push t.events e

let length t = Vec.length t.events

let iter t f = Vec.iter f t.events

let nth t i = Vec.get t.events i

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      iter t (fun e ->
          match e with
          | Alloc { size; nrefs; array } ->
              Printf.fprintf oc "A %d %d %d\n" size nrefs
                (if array then 1 else 0)
          | Write { src; field; target } ->
              Printf.fprintf oc "W %d %d %d\n" src field target
          | Access obj -> Printf.fprintf oc "T %d\n" obj
          | Root obj -> Printf.fprintf oc "R %d\n" obj
          | Unroot obj -> Printf.fprintf oc "U %d\n" obj))

let parse_line line_no line =
  let fail () =
    failwith (Printf.sprintf "Trace.load: malformed line %d: %S" line_no line)
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "A"; size; nrefs; array ] -> (
      match (int_of_string_opt size, int_of_string_opt nrefs, array) with
      | Some size, Some nrefs, ("0" | "1") ->
          Alloc { size; nrefs; array = array = "1" }
      | _ -> fail ())
  | [ "W"; src; field; target ] -> (
      match
        (int_of_string_opt src, int_of_string_opt field, int_of_string_opt target)
      with
      | Some src, Some field, Some target -> Write { src; field; target }
      | _ -> fail ())
  | [ "T"; obj ] -> (
      match int_of_string_opt obj with Some obj -> Access obj | None -> fail ())
  | [ "R"; obj ] -> (
      match int_of_string_opt obj with Some obj -> Root obj | None -> fail ())
  | [ "U"; obj ] -> (
      match int_of_string_opt obj with Some obj -> Unroot obj | None -> fail ())
  | _ -> fail ()

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let t = create () in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           if String.trim line <> "" then record t (parse_line !line_no line)
         done
       with End_of_file -> ());
      t)

let replay ?(on_slice = fun _ -> ()) ?(slice = 1024) t
    (c : Gc_common.Collector.t) =
  let heap = c.Gc_common.Collector.heap in
  let born = Vec.create () in
  (* root registry: birth index -> rooted?  enumerated on demand *)
  let rooted = Repro_util.Bitset.create () in
  Heapsim.Heap.set_roots heap (fun f ->
      Repro_util.Bitset.iter
        (fun idx ->
          let id = Vec.get born idx in
          if Heapsim.Object_table.is_live (Heapsim.Heap.objects heap) id then
            f id)
        rooted);
  let resolve idx =
    if idx < 0 || idx >= Vec.length born then
      failwith (Printf.sprintf "Trace.replay: object %d not yet born" idx)
    else Vec.get born idx
  in
  let count = ref 0 in
  iter t (fun e ->
      (match e with
      | Alloc { size; nrefs; array } ->
          let kind = if array then `Array else `Scalar in
          Vec.push born (c.Gc_common.Collector.alloc ~size ~nrefs ~kind)
      | Write { src; field; target } ->
          let src = resolve src and target = resolve target in
          let objects = Heapsim.Heap.objects heap in
          if
            Heapsim.Object_table.is_live objects src
            && Heapsim.Object_table.is_live objects target
            && field >= 0
            && field < Heapsim.Object_table.nrefs objects src
          then Heapsim.Heap.write_ref heap src field target
      | Access obj ->
          let id = resolve obj in
          if Heapsim.Object_table.is_live (Heapsim.Heap.objects heap) id then
            Heapsim.Heap.access heap id
      | Root obj -> Repro_util.Bitset.set rooted obj
      | Unroot obj -> Repro_util.Bitset.clear rooted obj);
      incr count;
      if !count mod slice = 0 then on_slice (!count / slice))

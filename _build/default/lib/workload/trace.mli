(** Workload traces: record the exact heap-operation sequence of a
    mutator run and replay it against any collector.

    Objects are named by {e birth index} (the order of allocation), so a
    trace is collector-independent: replaying it on two collectors
    performs identical allocations, pointer stores, accesses and root
    updates, making paging comparisons exact rather than merely
    distribution-matched.

    Traces serialize to a line-oriented text format (one event per line)
    for use with [bcgc trace-record] / [bcgc trace-replay]. *)

type event =
  | Alloc of { size : int; nrefs : int; array : bool }
  | Write of { src : int; field : int; target : int }
      (** store [target]'s id into [src].field — indices are birth order *)
  | Access of int  (** mutator read of the object's payload *)
  | Root of int  (** add the object to the root set *)
  | Unroot of int

type t

val create : unit -> t

val record : t -> event -> unit

val length : t -> int

val iter : t -> (event -> unit) -> unit

val nth : t -> int -> event

(** {1 Serialization} *)

val save : t -> string -> unit
(** Write to a file; raises [Sys_error] on I/O failure. *)

val load : string -> t
(** Raises [Failure] on malformed input. *)

(** {1 Replay} *)

val replay :
  ?on_slice:(int -> unit) ->
  ?slice:int ->
  t ->
  Gc_common.Collector.t ->
  unit
(** Execute the trace against a collector, installing a root enumerator
    backed by the trace's [Root]/[Unroot] events. Events referencing dead
    objects or out-of-range fields are skipped (a replayed collector may
    legitimately collect earlier than the recording one did). [on_slice]
    fires every [slice] (default 1024) events, for pressure injection. *)

module Vec = Repro_util.Vec

type t = { mutable table : int Vec.t option array }

let create () = { table = Array.make 1024 None }

let ensure t page =
  let cap = Array.length t.table in
  if page >= cap then begin
    let cap' = max (page + 1) (cap * 2) in
    let table' = Array.make cap' None in
    Array.blit t.table 0 table' 0 cap;
    t.table <- table'
  end

let bucket t page =
  ensure t page;
  match t.table.(page) with
  | Some v -> v
  | None ->
      let v = Vec.create () in
      t.table.(page) <- Some v;
      v

let add t ~page id = Vec.push (bucket t page) id

let remove t ~page id =
  let v = bucket t page in
  let n = Vec.length v in
  let rec find i =
    if i >= n then
      invalid_arg
        (Printf.sprintf "Page_map.remove: object #%d not on page %d" id page)
    else if Vec.get v i = id then ignore (Vec.swap_remove v i)
    else find (i + 1)
  in
  find 0

let objects_on t page =
  if page < 0 || page >= Array.length t.table then [||]
  else match t.table.(page) with None -> [||] | Some v -> Vec.to_array v

let count_on t page =
  if page < 0 || page >= Array.length t.table then 0
  else match t.table.(page) with None -> 0 | Some v -> Vec.length v

let iter_on t page f =
  if page >= 0 && page < Array.length t.table then
    match t.table.(page) with None -> () | Some v -> Vec.iter f v

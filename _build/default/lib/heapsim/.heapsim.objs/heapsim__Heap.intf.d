lib/heapsim/heap.mli: Address_space Obj_id Object_table Page_map Vmsim

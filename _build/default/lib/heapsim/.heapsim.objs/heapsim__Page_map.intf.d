lib/heapsim/page_map.mli: Obj_id

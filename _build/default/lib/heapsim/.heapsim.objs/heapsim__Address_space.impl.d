lib/heapsim/address_space.ml:

lib/heapsim/obj_id.mli: Format

lib/heapsim/object_table.mli: Obj_id

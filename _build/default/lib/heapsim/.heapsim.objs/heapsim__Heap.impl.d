lib/heapsim/heap.ml: Address_space Obj_id Object_table Page_map Vmsim

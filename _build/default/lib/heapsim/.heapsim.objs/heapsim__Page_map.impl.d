lib/heapsim/page_map.ml: Array Printf Repro_util

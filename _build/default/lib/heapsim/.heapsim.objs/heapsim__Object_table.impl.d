lib/heapsim/object_table.ml: Array Bytes Char Obj_id Printf Repro_util

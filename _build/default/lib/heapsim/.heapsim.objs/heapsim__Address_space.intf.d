lib/heapsim/address_space.mli:

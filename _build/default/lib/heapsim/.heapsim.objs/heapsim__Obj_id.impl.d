lib/heapsim/obj_id.ml: Format

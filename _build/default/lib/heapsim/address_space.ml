type t = { mutable brk : int }

let create ?(first_page = 16) () = { brk = first_page }

let reserve t ~npages =
  if npages <= 0 then invalid_arg "Address_space.reserve";
  let first = t.brk in
  t.brk <- t.brk + npages;
  first

let reserve_aligned t ~npages ~align =
  if npages <= 0 || align <= 0 then invalid_arg "Address_space.reserve_aligned";
  let first = (t.brk + align - 1) / align * align in
  t.brk <- first + npages;
  first

let next_page t = t.brk

(** Simulated virtual address space: a monotone page-range allocator.

    Collector spaces reserve page ranges here; ranges are never reused at
    this level (a space that recycles pages does so internally, as real
    heap spaces do within their mappings). *)

type t

val create : ?first_page:int -> unit -> t

val reserve : t -> npages:int -> int
(** Reserve a contiguous page range; returns the first page number. *)

val reserve_aligned : t -> npages:int -> align:int -> int
(** Reserve with the first page aligned to a multiple of [align] pages
    (used for superpages, located by bit-masking in the paper). *)

val next_page : t -> int
(** The next unreserved page number (the current break). *)

(** Reverse index from pages to the objects they hold.

    BC locates objects on a page from superpage-header metadata (§4); the
    baseline collectors never need the index. The simulation keeps it
    for every space so that page scanning, sweeping and invariant checks
    are uniform. Objects spanning several pages appear on each. *)

type t

val create : unit -> t

val add : t -> page:int -> Obj_id.t -> unit

val remove : t -> page:int -> Obj_id.t -> unit
(** Remove one occurrence; the object must be registered on the page. *)

val objects_on : t -> int -> Obj_id.t array
(** Snapshot of the objects registered on a page (safe to mutate the map
    while iterating the snapshot). *)

val count_on : t -> int -> int

val iter_on : t -> int -> (Obj_id.t -> unit) -> unit
(** Iterate without snapshotting; the callback must not mutate the map. *)

type write_barrier =
  src:Obj_id.t -> field:int -> old_target:Obj_id.t -> target:Obj_id.t -> unit

type t = {
  vmm : Vmsim.Vmm.t;
  proc : Vmsim.Process.t;
  objects : Object_table.t;
  page_map : Page_map.t;
  address_space : Address_space.t;
  mutable barrier : write_barrier;
  mutable roots : (Obj_id.t -> unit) -> unit;
}

let no_barrier ~src:_ ~field:_ ~old_target:_ ~target:_ = ()

let create_with vmm proc ~address_space =
  {
    vmm;
    proc;
    objects = Object_table.create ();
    page_map = Page_map.create ();
    address_space;
    barrier = no_barrier;
    roots = (fun _ -> ());
  }

let create vmm proc = create_with vmm proc ~address_space:(Address_space.create ())

let vmm t = t.vmm

let process t = t.proc

let objects t = t.objects

let page_map t = t.page_map

let address_space t = t.address_space

let clock t = Vmsim.Vmm.clock t.vmm

let costs t = Vmsim.Vmm.costs t.vmm

let first_page t id = Vmsim.Page.of_addr (Object_table.addr t.objects id)

let last_page t id =
  let addr = Object_table.addr t.objects id in
  Vmsim.Page.of_addr (addr + Object_table.size t.objects id - 1)

let iter_pages t id f =
  let addr = Object_table.addr t.objects id in
  assert (addr >= 0);
  for page = Vmsim.Page.of_addr addr to last_page t id do
    f page
  done

let place t id ~addr =
  assert (Object_table.addr t.objects id < 0);
  Object_table.set_addr t.objects id addr;
  iter_pages t id (fun page -> Page_map.add t.page_map ~page id)

let displace t id =
  if Object_table.addr t.objects id >= 0 then begin
    iter_pages t id (fun page -> Page_map.remove t.page_map ~page id);
    Object_table.set_addr t.objects id (-1)
  end

let free_object t id =
  displace t id;
  Object_table.free t.objects id

let touch_object t ?(write = false) id =
  iter_pages t id (fun page -> Vmsim.Vmm.touch t.vmm ~write page)

let set_write_barrier t barrier = t.barrier <- barrier

let set_roots t roots = t.roots <- roots

let iter_roots t f = t.roots f

let charge_access t = Vmsim.Clock.advance (clock t) (costs t).Vmsim.Costs.access_ns

let read_ref t id field =
  charge_access t;
  touch_object t ~write:false id;
  Object_table.get_ref t.objects id field

let write_ref t id field target =
  charge_access t;
  touch_object t ~write:true id;
  let old_target = Object_table.get_ref t.objects id field in
  t.barrier ~src:id ~field ~old_target ~target;
  Object_table.set_ref t.objects id field target

let access t ?(write = false) id =
  charge_access t;
  touch_object t ~write id

(** Object identities.

    Simulated heap objects are named by dense integers. References between
    objects are object ids rather than raw addresses; an object's current
    simulated address lives in the {!Object_table} and changes when a
    collector moves it. [null] is the null reference. *)

type t = int

val null : t

val is_null : t -> bool

val pp : Format.formatter -> t -> unit

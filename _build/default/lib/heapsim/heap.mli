(** The heap substrate a collector builds on.

    Binds an {!Object_table}, a {!Page_map}, an {!Address_space} and one
    simulated process of a {!Vmsim.Vmm}. All mutator accesses go through
    this module so that page touching (hence LRU state and paging) and the
    collector's write barrier are applied uniformly.

    Collector-side operations ([place], [displace], [touch_object], …)
    account no mutator cost; collectors charge their own work to the
    clock. *)

type t

type write_barrier =
  src:Obj_id.t -> field:int -> old_target:Obj_id.t -> target:Obj_id.t -> unit

val create : Vmsim.Vmm.t -> Vmsim.Process.t -> t

val create_with :
  Vmsim.Vmm.t -> Vmsim.Process.t -> address_space:Address_space.t -> t
(** Like {!create} but sharing a page-range allocator with other heaps on
    the same machine (page numbers are machine-global). *)

val vmm : t -> Vmsim.Vmm.t

val process : t -> Vmsim.Process.t

val objects : t -> Object_table.t

val page_map : t -> Page_map.t

val address_space : t -> Address_space.t

val clock : t -> Vmsim.Clock.t

val costs : t -> Vmsim.Costs.t

(** {1 Object placement (collector side)} *)

val first_page : t -> Obj_id.t -> int

val last_page : t -> Obj_id.t -> int

val iter_pages : t -> Obj_id.t -> (int -> unit) -> unit
(** Pages spanned by the object at its current address. *)

val place : t -> Obj_id.t -> addr:int -> unit
(** Set the object's address and register it in the page map. The object
    must be unplaced (fresh or displaced). *)

val displace : t -> Obj_id.t -> unit
(** Remove the object from the page map, keeping it alive (pre-move). *)

val free_object : t -> Obj_id.t -> unit
(** Displace (if placed) and recycle the object. *)

val touch_object : t -> ?write:bool -> Obj_id.t -> unit
(** Touch every page the object spans (collector-side: no mutator cost,
    but faults are charged as usual). *)

(** {1 Mutator interface} *)

val set_write_barrier : t -> write_barrier -> unit

val set_roots : t -> ((Obj_id.t -> unit) -> unit) -> unit
(** Install the mutator's root enumerator. *)

val iter_roots : t -> (Obj_id.t -> unit) -> unit

val read_ref : t -> Obj_id.t -> int -> Obj_id.t
(** Mutator field read: charges access cost and touches the object's
    pages. *)

val write_ref : t -> Obj_id.t -> int -> Obj_id.t -> unit
(** Mutator field write: charges access cost, touches the object's pages
    for writing, fires the collector's write barrier, then stores. *)

val access : t -> ?write:bool -> Obj_id.t -> unit
(** Mutator access to an object's non-reference payload. *)

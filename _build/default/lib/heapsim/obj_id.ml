type t = int

let null = -1

let is_null id = id < 0

let pp ppf id =
  if is_null id then Format.pp_print_string ppf "null"
  else Format.fprintf ppf "#%d" id

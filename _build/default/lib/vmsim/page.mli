(** Page geometry shared by the whole simulation.

    Pages are identified by dense non-negative integers ("page numbers");
    simulated byte addresses map to pages by division. The geometry matches
    the paper's testbed: 4 KB pages, 16 KB (4-page) superpages. *)

val size : int
(** Bytes per page (4096). *)

val pages_per_superpage : int
(** Pages per BC superpage (4). *)

val superpage_size : int
(** Bytes per superpage (16384). *)

val of_addr : int -> int
(** Page number containing a byte address. *)

val addr_of : int -> int
(** First byte address of a page. *)

val count_for_bytes : int -> int
(** Number of pages needed to hold [bytes] (rounded up). *)

type t = {
  capacity_pages : int option;
  slots : (int, unit) Hashtbl.t;
  mutable high_water : int;
  mutable writes : int;
  mutable reads : int;
}

exception Full

let create ?capacity_pages () =
  { capacity_pages; slots = Hashtbl.create 256; high_water = 0; writes = 0; reads = 0 }

let occupancy_pages t = Hashtbl.length t.slots

let write t page =
  if not (Hashtbl.mem t.slots page) then begin
    (match t.capacity_pages with
    | Some cap when occupancy_pages t >= cap -> raise Full
    | Some _ | None -> ());
    Hashtbl.add t.slots page ()
  end;
  t.writes <- t.writes + 1;
  if occupancy_pages t > t.high_water then t.high_water <- occupancy_pages t

let read t page =
  if not (Hashtbl.mem t.slots page) then
    invalid_arg (Printf.sprintf "Swap.read: page %d has no swap copy" page);
  t.reads <- t.reads + 1

let drop t page = Hashtbl.remove t.slots page

let has_copy t page = Hashtbl.mem t.slots page

let high_water_pages t = t.high_water

let writes t = t.writes

let reads t = t.reads

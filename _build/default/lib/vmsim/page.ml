let size = 4096

let pages_per_superpage = 4

let superpage_size = size * pages_per_superpage

let of_addr addr = addr / size

let addr_of page = page * size

let count_for_bytes bytes = (bytes + size - 1) / size

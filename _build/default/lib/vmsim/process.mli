(** Simulated processes.

    A process owns pages (the reverse-mapping patch of §4.1 lets the
    kernel attribute pages to processes) and may register for paging
    signals, as the paper's runtime does: a pre-eviction notice delivered
    just before a page's table entry is unmapped, a notice when a page of
    its becomes resident again, and protection-fault upcalls for pages it
    has [mprotect]ed. Processes that never register (the baseline
    collectors) are evicted from silently — the stock-kernel behaviour. *)

type t

type handlers = {
  on_eviction_notice : int -> unit;
      (** [on_eviction_notice page] fires while the page is still resident;
          the handler may touch the page to veto, discard other pages, or
          relinquish pages. *)
  on_resident : int -> unit;
      (** Fires after one of this process's evicted pages is reloaded. *)
  on_protection_fault : int -> unit;
      (** Fires when this process touches a page it protected; the handler
          is expected to unprotect it. *)
}

val create : pid:int -> name:string -> t

val pid : t -> int

val name : t -> string

val register : t -> handlers -> unit
(** Register paging-event handlers ("the application registers itself with
    the operating system", §4.1). At most one registration is active. *)

val unregister : t -> unit

val handlers : t -> handlers option

val stats : t -> Vm_stats.t
(** Per-process paging counters. *)

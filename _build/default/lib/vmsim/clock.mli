(** Virtual time.

    A single global clock advanced by every charged cost. Runs are
    deterministic: the clock only moves when the simulation charges work
    to it. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time in nanoseconds. *)

val advance : t -> int -> unit
(** Advance the clock by the given (non-negative) number of nanoseconds. *)

val seconds : t -> float
(** [now] in seconds. *)

val ns_to_ms : int -> float

val ns_to_s : int -> float

lib/vmsim/clock.mli:

lib/vmsim/clock.ml:

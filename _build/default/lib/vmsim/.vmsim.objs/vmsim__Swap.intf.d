lib/vmsim/swap.mli:

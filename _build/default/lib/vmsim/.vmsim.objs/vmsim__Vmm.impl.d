lib/vmsim/vmm.ml: Array Clock Costs Fun List Lru Printf Process Swap Vm_stats

lib/vmsim/lru.ml: Array Bytes Char

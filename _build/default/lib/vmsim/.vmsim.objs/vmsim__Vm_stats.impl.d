lib/vmsim/vm_stats.ml: Format

lib/vmsim/vm_stats.mli: Format

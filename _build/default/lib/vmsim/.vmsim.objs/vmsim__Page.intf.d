lib/vmsim/page.mli:

lib/vmsim/page.ml:

lib/vmsim/process.mli: Vm_stats

lib/vmsim/swap.ml: Hashtbl Printf

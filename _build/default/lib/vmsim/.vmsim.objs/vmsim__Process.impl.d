lib/vmsim/process.ml: Vm_stats

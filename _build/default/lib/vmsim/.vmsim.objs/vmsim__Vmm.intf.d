lib/vmsim/vmm.mli: Clock Costs Process Swap Vm_stats

lib/vmsim/lru.mli:

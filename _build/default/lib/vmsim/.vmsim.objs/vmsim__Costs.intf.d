lib/vmsim/costs.mli:

lib/vmsim/costs.ml:

(** The simulation's cost model, in virtual nanoseconds.

    The paper's effects rest on the latency gap between main memory and
    disk ("approximately six orders of magnitude"). Absolute values are
    calibrated so that a full in-memory collection of a ~1 MB live set
    costs on the order of a millisecond while a single major fault costs
    5 ms, matching the paper's 1.6 GHz Pentium M testbed in spirit. *)

type t = {
  minor_fault_ns : int;  (** zero-fill demand fault *)
  major_fault_ns : int;  (** reload from swap: the disk penalty *)
  protection_fault_ns : int;  (** [mprotect]-induced fault + upcall *)
  syscall_ns : int;  (** [madvise] / [vm_relinquish] / [mprotect] *)
  swap_write_ns : int;  (** (mostly asynchronous) writeback charge *)
  alloc_ns : int;  (** fixed mutator cost per allocation *)
  alloc_byte_ns : int;  (** mutator cost per allocated byte *)
  freelist_alloc_extra_ns : int;
      (** extra mutator cost per allocation for segregated-fit free-list
          allocators (MarkSweep) versus bump pointers *)
  access_ns : int;  (** mutator cost per object read/write *)
  gc_object_ns : int;  (** GC cost per object visited (mark/scan) *)
  gc_byte_copy_ns : int;  (** GC cost per byte copied/compacted *)
  gc_page_sweep_ns : int;  (** GC cost per page swept *)
  gc_setup_ns : int;  (** fixed cost per collection *)
}

val default : t
(** The paper's testbed: ~5 ms rotational-disk major faults. *)

val ssd : t
(** A modern twist: ~80 µs flash reads. The memory/disk gap shrinks from
    ~6 to ~3.5 orders of magnitude, which compresses every paging
    collector's penalty — useful for asking how much of the paper's
    result is about 2005 disks. *)

type handlers = {
  on_eviction_notice : int -> unit;
  on_resident : int -> unit;
  on_protection_fault : int -> unit;
}

type t = {
  pid : int;
  name : string;
  mutable handlers : handlers option;
  stats : Vm_stats.t;
}

let create ~pid ~name = { pid; name; handlers = None; stats = Vm_stats.create () }

let pid t = t.pid

let name t = t.name

let register t h = t.handlers <- Some h

let unregister t = t.handlers <- None

let handlers t = t.handlers

let stats t = t.stats

type t = {
  minor_fault_ns : int;
  major_fault_ns : int;
  protection_fault_ns : int;
  syscall_ns : int;
  swap_write_ns : int;
  alloc_ns : int;
  alloc_byte_ns : int;
  freelist_alloc_extra_ns : int;
  access_ns : int;
  gc_object_ns : int;
  gc_byte_copy_ns : int;
  gc_page_sweep_ns : int;
  gc_setup_ns : int;
}

let default =
  {
    minor_fault_ns = 2_000;
    major_fault_ns = 5_000_000;
    protection_fault_ns = 3_000;
    syscall_ns = 1_000;
    swap_write_ns = 20_000;
    alloc_ns = 80;
    alloc_byte_ns = 1;
    freelist_alloc_extra_ns = 40;
    access_ns = 15;
    gc_object_ns = 40;
    gc_byte_copy_ns = 1;
    gc_page_sweep_ns = 500;
    gc_setup_ns = 50_000;
  }

let ssd =
  {
    default with
    major_fault_ns = 80_000;
    swap_write_ns = 5_000;
    minor_fault_ns = 1_500;
  }

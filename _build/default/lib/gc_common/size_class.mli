(** The paper's segregated size classes (§3).

    "Each allocation size up to 64 bytes has its own size class. Larger
    object sizes fall into a range of 37 size classes; for all but the
    largest five, these have a worst-case internal fragmentation of 15%.
    The five largest classes have between 16% and 33% worst-case internal
    fragmentation." Objects above {!max_cell} (8180 bytes: half a
    superpage minus metadata) go to the large object space.

    Sizes are multiples of the 4-byte word of the paper's 32-bit
    testbed. *)

val word : int
(** Allocation granularity (4 bytes). *)

val max_cell : int
(** Largest cell size handled by the segregated classes (8180). *)

val cell_sizes : int array
(** Ascending cell sizes, one per class. *)

val count : int
(** Number of classes (15 small + 37 large = 52). *)

val small_count : int
(** Number of one-size-per-class small classes (sizes 8..64). *)

val class_of_size : int -> int option
(** Index of the smallest class whose cell fits [size]; [None] above
    {!max_cell}. O(1). *)

val cell_size : int -> int
(** Cell size of a class index. *)

val internal_fragmentation : int -> float
(** Worst-case internal fragmentation of a class: wasted fraction for the
    smallest request mapped to it. *)

(** BC's page-sized write buffer (§3.1).

    Pointer stores append slots; when the buffer fills, it is processed:
    slots whose source lies in the mature space are converted into card
    marks and the remaining slots are compacted, so the buffer "often
    consumes just a single page". *)

type t

val entries_per_page : int
(** Slots per buffer page: page size / word size (1024). *)

val create :
  cards:Card_table.t ->
  src_addr:(Heapsim.Obj_id.t -> int) ->
  filterable:(Heapsim.Obj_id.t -> bool) ->
  unit ->
  t
(** [filterable src] says whether a slot from [src] may be replaced by a
    card mark (true for mature-space sources). [src_addr] locates the
    source for card marking. *)

val record : t -> src:Heapsim.Obj_id.t -> field:int -> unit
(** Append a slot, processing the buffer first when it is full. *)

val drain : t -> (src:Heapsim.Obj_id.t -> field:int -> unit) -> unit
(** Iterate the surviving slots and clear the buffer (cards are drained
    separately by the collector). *)

val length : t -> int

val overflow_count : t -> int
(** How many times the buffer filled and was filtered. *)

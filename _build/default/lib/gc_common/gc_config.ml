type nursery_policy = Appel | Fixed of int

type bc_opts = {
  bookmarks_enabled : bool;
  reserve_pages : int;
  aggressive_discard : bool;
  conservative_clear : bool;
  compaction_enabled : bool;
  pointer_aware_victims : int;
  regrow : bool;
}

type t = {
  heap_bytes : int;
  nursery : nursery_policy;
  bc : bc_opts;
  cooperative_discard : bool;
}

let default_bc_opts =
  {
    bookmarks_enabled = true;
    reserve_pages = 8;
    aggressive_discard = true;
    conservative_clear = true;
    compaction_enabled = true;
    pointer_aware_victims = 0;
    regrow = true;
  }

let make ?(nursery = Appel) ?(bc = default_bc_opts)
    ?(cooperative_discard = false) ~heap_bytes () =
  if heap_bytes <= 0 then invalid_arg "Gc_config.make: heap_bytes";
  { heap_bytes; nursery; bc; cooperative_discard }

let heap_pages t = Vmsim.Page.count_for_bytes t.heap_bytes

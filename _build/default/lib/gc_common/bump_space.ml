type t = {
  heap : Heapsim.Heap.t;
  name : string;
  first_page : int;
  npages : int;
  base : int;
  mutable bump : int;
}

let create heap ~name ~npages =
  let first_page =
    Heapsim.Address_space.reserve (Heapsim.Heap.address_space heap) ~npages
  in
  Vmsim.Vmm.map_range (Heapsim.Heap.vmm heap) (Heapsim.Heap.process heap)
    ~first_page ~npages;
  let base = Vmsim.Page.addr_of first_page in
  { heap; name; first_page; npages; base; bump = base }

let capacity_bytes t = t.npages * Vmsim.Page.size

let used_bytes t = t.bump - t.base

let alloc t ~bytes ~limit_bytes =
  if bytes <= 0 then invalid_arg ("Bump_space.alloc: " ^ t.name)
  else if
    used_bytes t + bytes > min limit_bytes (capacity_bytes t)
  then None
  else begin
    let addr = t.bump in
    t.bump <- t.bump + bytes;
    Some addr
  end

let reset t = t.bump <- t.base

let contains t addr = addr >= t.base && addr < t.base + capacity_bytes t

let first_page t = t.first_page

let npages t = t.npages

let used_pages t =
  if t.bump = t.base then 0 else Vmsim.Page.of_addr (t.bump - 1) - t.first_page + 1

let iter_pages t f =
  for p = t.first_page to t.first_page + t.npages - 1 do
    f p
  done

let discard_pages t =
  let vmm = Heapsim.Heap.vmm t.heap in
  iter_pages t (fun p -> Vmsim.Vmm.madvise_dontneed vmm p)

module Vec = Repro_util.Vec

type page_rec = {
  page : int;
  mutable cls : int;
  mutable cells_total : int;
  free : int Vec.t;  (* free cell addresses *)
  mutable on_partial : bool;
}

type t = {
  heap : Heapsim.Heap.t;
  name : string;
  max_cell : int;
  partial : page_rec Vec.t array;  (* per class: pages with free cells *)
  empty_pool : page_rec Vec.t;
  page_recs : (int, page_rec) Hashtbl.t;
  pages : int Vec.t;  (* acquisition order *)
  mutable free_bytes : int;
}

let create heap ~name ~max_cell =
  if max_cell > Vmsim.Page.size then
    invalid_arg "Ms_space.create: max_cell exceeds a page";
  {
    heap;
    name;
    max_cell;
    partial = Array.init Size_class.count (fun _ -> Vec.create ());
    empty_pool = Vec.create ();
    page_recs = Hashtbl.create 64;
    pages = Vec.create ();
    free_bytes = 0;
  }

let max_cell t = t.max_cell

let owns_page t page = Hashtbl.mem t.page_recs page

let pages_acquired t = Vec.length t.pages

let free_bytes t = t.free_bytes

let iter_pages t f = Vec.iter f t.pages

(* Carve a page into cells of class [cls]. *)
let assign_class pr cls =
  let cell = Size_class.cell_size cls in
  let ncells = Vmsim.Page.size / cell in
  pr.cls <- cls;
  pr.cells_total <- ncells;
  Vec.clear pr.free;
  let base = Vmsim.Page.addr_of pr.page in
  for i = 0 to ncells - 1 do
    Vec.push pr.free (base + (i * cell))
  done

let acquire_page t cls ~grow =
  if not (Vec.is_empty t.empty_pool) then begin
    let pr = Vec.pop t.empty_pool in
    t.free_bytes <- t.free_bytes - Vmsim.Page.size;
    assign_class pr cls;
    t.free_bytes <- t.free_bytes + (pr.cells_total * Size_class.cell_size cls);
    Some pr
  end
  else if grow () then begin
    let first_page =
      Heapsim.Address_space.reserve (Heapsim.Heap.address_space t.heap)
        ~npages:1
    in
    Vmsim.Vmm.map_range (Heapsim.Heap.vmm t.heap)
      (Heapsim.Heap.process t.heap) ~first_page ~npages:1;
    let pr =
      {
        page = first_page;
        cls;
        cells_total = 0;
        free = Vec.create ();
        on_partial = false;
      }
    in
    Hashtbl.add t.page_recs first_page pr;
    Vec.push t.pages first_page;
    assign_class pr cls;
    t.free_bytes <- t.free_bytes + (pr.cells_total * Size_class.cell_size cls);
    Some pr
  end
  else None

(* Pop a page with a free cell for [cls], dropping stale entries. *)
let rec pop_partial t cls =
  let v = t.partial.(cls) in
  if Vec.is_empty v then None
  else begin
    let pr = Vec.top v in
    if pr.cls <> cls || Vec.is_empty pr.free then begin
      ignore (Vec.pop v);
      pr.on_partial <- false;
      pop_partial t cls
    end
    else Some pr
  end

let alloc t ~bytes ~grow =
  if bytes > t.max_cell then
    invalid_arg
      (Printf.sprintf "Ms_space.alloc(%s): %d bytes exceeds max cell %d"
         t.name bytes t.max_cell);
  match Size_class.class_of_size bytes with
  | None -> assert false
  | Some cls -> (
      let page_opt =
        match pop_partial t cls with
        | Some pr -> Some pr
        | None -> (
            match acquire_page t cls ~grow with
            | Some pr ->
                pr.on_partial <- true;
                Vec.push t.partial.(cls) pr;
                Some pr
            | None -> None)
      in
      match page_opt with
      | None -> None
      | Some pr ->
          let addr = Vec.pop pr.free in
          t.free_bytes <- t.free_bytes - Size_class.cell_size cls;
          if Vec.is_empty pr.free then begin
            (* drop from the partial list lazily via the flag *)
            pr.on_partial <- false;
            let v = t.partial.(cls) in
            if not (Vec.is_empty v) && Vec.top v == pr then ignore (Vec.pop v)
          end;
          Some addr)

let sweep t =
  let heap = t.heap in
  let objects = Heapsim.Heap.objects heap in
  let vmm = Heapsim.Heap.vmm heap in
  Vec.iter
    (fun page ->
      Charge.page_sweep heap;
      Vmsim.Vmm.touch vmm ~write:true page;
      let pr = Hashtbl.find t.page_recs page in
      let on_page = Heapsim.Page_map.objects_on (Heapsim.Heap.page_map heap) page in
      Array.iter
        (fun id ->
          if Heapsim.Object_table.marked objects id then
            Heapsim.Object_table.set_marked objects id false
          else begin
            let addr = Heapsim.Object_table.addr objects id in
            Heapsim.Heap.free_object heap id;
            Vec.push pr.free addr;
            t.free_bytes <- t.free_bytes + Size_class.cell_size pr.cls
          end)
        on_page;
      if Vec.length pr.free = pr.cells_total && pr.cells_total > 0 then begin
        (* wholly empty: recycle to any class *)
        t.free_bytes <-
          t.free_bytes
          - (pr.cells_total * Size_class.cell_size pr.cls)
          + Vmsim.Page.size;
        Vec.clear pr.free;
        pr.cells_total <- 0;
        pr.on_partial <- false;
        Vec.push t.empty_pool pr
      end
      else if (not pr.on_partial) && not (Vec.is_empty pr.free) then begin
        pr.on_partial <- true;
        Vec.push t.partial.(pr.cls) pr
      end)
    t.pages

module Vec = Repro_util.Vec

let run ~roots ~visit =
  let stack = Vec.create () in
  let enqueue id = if not (Heapsim.Obj_id.is_null id) then Vec.push stack id in
  roots enqueue;
  while not (Vec.is_empty stack) do
    let id = Vec.pop stack in
    visit id ~enqueue
  done

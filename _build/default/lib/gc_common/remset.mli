(** A sequential store buffer remembering old-to-young pointer slots.

    GenMS and GenCopy append a (source, field) slot on every interesting
    pointer store and drain the buffer at each nursery collection. The
    buffer is unbounded, as in MMTk. *)

type t

val create : unit -> t

val record : t -> src:Heapsim.Obj_id.t -> field:int -> unit

val length : t -> int

val drain : t -> (src:Heapsim.Obj_id.t -> field:int -> unit) -> unit
(** Iterate all slots then clear the buffer. *)

val clear : t -> unit

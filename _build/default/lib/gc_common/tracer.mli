(** Generic transitive-closure worklist for tracing collections.

    The collector supplies [visit]; the tracer owns the grey stack. A
    typical [visit] checks and sets the mark bit, touches the object's
    pages, charges the visit, then enqueues interesting referents. *)

val run :
  roots:((Heapsim.Obj_id.t -> unit) -> unit) ->
  visit:(Heapsim.Obj_id.t -> enqueue:(Heapsim.Obj_id.t -> unit) -> unit) ->
  unit
(** [run ~roots ~visit] seeds the worklist with [roots] and calls [visit]
    until the worklist drains. Null ids are filtered before [visit]. *)

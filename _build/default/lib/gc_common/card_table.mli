(** A card table over the simulated address space.

    BC's filtered write buffers (§3.1) spill into card marks: when a write
    buffer fills, entries from the mature space are dropped and the source
    object's card is marked instead; nursery collection then scans objects
    on dirty cards. Cards are 512 bytes. *)

type t

val card_bytes : int

val create : unit -> t

val mark_addr : t -> int -> unit
(** Mark the card containing a byte address. *)

val is_marked_addr : t -> int -> bool

val dirty_count : t -> int

val drain : t -> (int -> unit) -> unit
(** Call the callback with the first byte address of every dirty card,
    clearing the table. *)

(** Collector configuration. *)

type nursery_policy =
  | Appel  (** variable-size nursery: all space not used by the mature
               generation (the paper's default generational setup) *)
  | Fixed of int  (** fixed-size nursery in bytes (Figure 5(b) uses 4 MB,
                      scaled) *)

(** Options specific to the bookmarking collector. The defaults are the
    paper's full BC; switching [bookmarks_enabled] off gives the
    "BC w/Resizing only" variant of Figure 5. *)
type bc_opts = {
  bookmarks_enabled : bool;
  reserve_pages : int;
      (** size of the empty-page store kept to absorb eviction bursts
          (§3.4.3) *)
  aggressive_discard : bool;
      (** discard all contiguous empty pages recorded on the same bit-array
          word as the first discardable page (§3.4.3) *)
  conservative_clear : bool;
      (** clear conservatively-set bookmarks when a reloaded page's
          superpage has no incoming bookmarks (§3.4.2) *)
  compaction_enabled : bool;
      (** compact when mark-sweep frees too little (§3.2) *)
  pointer_aware_victims : int;
      (** §7 (future work): when positive, consider this many of the
          coldest pages as eviction candidates and prefer the one with
          the fewest outgoing pointers (less false garbage, cheaper
          scans); 0 keeps the kernel's LRU choice *)
  regrow : bool;
      (** §7 (future work): raise the footprint target again when the
          machine has free frames, so a brief pressure spike does not
          permanently limit throughput. Off reproduces the paper's
          published behaviour (the target only shrinks). *)
}

type t = {
  heap_bytes : int;  (** maximum heap size (the experiment's heap knob) *)
  nursery : nursery_policy;
  bc : bc_opts;
  cooperative_discard : bool;
      (** for the generational baselines: register for eviction notices
          and discard empty pages, Cooper-style (§6, Cooper et al. 1992)
          — but never bookmark or shrink the heap *)
}

val default_bc_opts : bc_opts

val make :
  ?nursery:nursery_policy ->
  ?bc:bc_opts ->
  ?cooperative_discard:bool ->
  heap_bytes:int ->
  unit ->
  t

val heap_pages : t -> int

(** The collector interface seen by workloads and the harness.

    A collector instance is a record of closures over its private state;
    all collectors — the bookmarking collector and the five baselines —
    present this same interface. *)

exception Heap_exhausted of string
(** Raised by [alloc] when a request cannot be satisfied even after a full
    collection at the configured maximum heap size. *)

type t = {
  name : string;
  heap : Heapsim.Heap.t;
  config : Gc_config.t;
  alloc : size:int -> nrefs:int -> kind:[ `Scalar | `Array ] -> Heapsim.Obj_id.t;
      (** Allocate, placing and (first-)touching the object; may trigger
          collections. Raises {!Heap_exhausted}. *)
  collect : unit -> unit;  (** Force a full collection. *)
  stats : Gc_stats.t;
  footprint_pages : unit -> int;
      (** Pages currently mapped by the heap's spaces (high-level footprint,
          not residency). *)
  check_invariants : unit -> unit;
      (** Internal consistency checks for tests; may be expensive. *)
}

type factory = Gc_config.t -> Heapsim.Heap.t -> t
(** Collectors are factories from a configuration and a fresh heap. *)

val charge_alloc : Heapsim.Heap.t -> bytes:int -> unit
(** Charge the mutator-side allocation cost (shared by all collectors). *)

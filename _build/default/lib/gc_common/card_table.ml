module Vec = Repro_util.Vec
module Bitset = Repro_util.Bitset

let card_bytes = 512

type t = { bits : Bitset.t; dirty : int Vec.t }

let create () = { bits = Bitset.create (); dirty = Vec.create () }

let mark_addr t addr =
  let card = addr / card_bytes in
  if not (Bitset.mem t.bits card) then begin
    Bitset.set t.bits card;
    Vec.push t.dirty card
  end

let is_marked_addr t addr = Bitset.mem t.bits (addr / card_bytes)

let dirty_count t = Vec.length t.dirty

let drain t f =
  Vec.iter
    (fun card ->
      Bitset.clear t.bits card;
      f (card * card_bytes))
    t.dirty;
  Vec.clear t.dirty

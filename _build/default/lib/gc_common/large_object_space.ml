module Vec = Repro_util.Vec

type t = {
  heap : Heapsim.Heap.t;
  name : string;
  objects : Heapsim.Obj_id.t Vec.t;
  page_ranges : (int, int) Hashtbl.t;  (* first page -> npages *)
  mutable pages : int;
}

let create heap ~name =
  {
    heap;
    name;
    objects = Vec.create ();
    page_ranges = Hashtbl.create 16;
    pages = 0;
  }

let alloc t ~bytes ~grow =
  let npages = Vmsim.Page.count_for_bytes bytes in
  if not (grow ~npages) then None
  else begin
    let first_page =
      Heapsim.Address_space.reserve (Heapsim.Heap.address_space t.heap) ~npages
    in
    Vmsim.Vmm.map_range (Heapsim.Heap.vmm t.heap)
      (Heapsim.Heap.process t.heap) ~first_page ~npages;
    Hashtbl.add t.page_ranges first_page npages;
    t.pages <- t.pages + npages;
    Some (Vmsim.Page.addr_of first_page)
  end

let note_object t id = Vec.push t.objects id

let owns_page t page = Hashtbl.mem t.page_ranges page

let pages_in_use t = t.pages

let iter_objects t f = Vec.iter f t.objects

let sweep t =
  let heap = t.heap in
  let objects = Heapsim.Heap.objects heap in
  let survivors = Vec.create () in
  Vec.iter
    (fun id ->
      Charge.object_visit heap;
      if Heapsim.Object_table.marked objects id then begin
        Heapsim.Object_table.set_marked objects id false;
        Vec.push survivors id
      end
      else begin
        let first_page = Heapsim.Heap.first_page heap id in
        let npages = Hashtbl.find t.page_ranges first_page in
        Heapsim.Heap.free_object heap id;
        Vmsim.Vmm.unmap_range (Heapsim.Heap.vmm heap) ~first_page ~npages;
        Hashtbl.remove t.page_ranges first_page;
        t.pages <- t.pages - npages
      end)
    t.objects;
  Vec.clear t.objects;
  Vec.iter (Vec.push t.objects) survivors

let forget_range t ~first_page =
  let npages = Hashtbl.find t.page_ranges first_page in
  Hashtbl.remove t.page_ranges first_page;
  t.pages <- t.pages - npages

let replace_objects t survivors =
  Vec.clear t.objects;
  Vec.iter (Vec.push t.objects) survivors

let range_pages t ~first_page = Hashtbl.find t.page_ranges first_page

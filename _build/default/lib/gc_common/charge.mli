(** Charging GC work to the virtual clock. *)

val setup : Heapsim.Heap.t -> unit
(** Fixed per-collection cost (root scanning, bookkeeping). *)

val object_visit : Heapsim.Heap.t -> unit
(** One object marked or scanned. *)

val objects : Heapsim.Heap.t -> int -> unit
(** [n] objects visited at once. *)

val copy : Heapsim.Heap.t -> bytes:int -> unit
(** One object of [bytes] copied or compacted (includes the visit). *)

val page_sweep : Heapsim.Heap.t -> unit
(** One page swept. *)

(** Pause accounting wrapper: records the collection's virtual-time
    interval {e and} the major faults the collector incurred during it —
    the paper's key observable (BC's collections fault on no pages). *)

val run :
  Gc_stats.t ->
  Heapsim.Heap.t ->
  Gc_stats.pause_kind ->
  (unit -> 'a) ->
  'a

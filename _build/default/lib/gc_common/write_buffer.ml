module Vec = Repro_util.Vec

let entries_per_page = Vmsim.Page.size / Size_class.word

type t = {
  cards : Card_table.t;
  src_addr : Heapsim.Obj_id.t -> int;
  filterable : Heapsim.Obj_id.t -> bool;
  srcs : int Vec.t;
  fields : int Vec.t;
  mutable overflows : int;
}

let create ~cards ~src_addr ~filterable () =
  {
    cards;
    src_addr;
    filterable;
    srcs = Vec.create ();
    fields = Vec.create ();
    overflows = 0;
  }

let length t = Vec.length t.srcs

let overflow_count t = t.overflows

(* Filter: move mature-space slots into the card table and compact the
   survivors in place. *)
let process t =
  t.overflows <- t.overflows + 1;
  let n = Vec.length t.srcs in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let src = Vec.get t.srcs i in
    if t.filterable src then Card_table.mark_addr t.cards (t.src_addr src)
    else begin
      Vec.set t.srcs !kept src;
      Vec.set t.fields !kept (Vec.get t.fields i);
      incr kept
    end
  done;
  while Vec.length t.srcs > !kept do
    ignore (Vec.pop t.srcs);
    ignore (Vec.pop t.fields)
  done

let record t ~src ~field =
  if Vec.length t.srcs >= entries_per_page then process t;
  Vec.push t.srcs src;
  Vec.push t.fields field

let drain t f =
  for i = 0 to Vec.length t.srcs - 1 do
    f ~src:(Vec.get t.srcs i) ~field:(Vec.get t.fields i)
  done;
  Vec.clear t.srcs;
  Vec.clear t.fields

let run stats heap kind f =
  let pstats = Vmsim.Process.stats (Heapsim.Heap.process heap) in
  let before = pstats.Vmsim.Vm_stats.major_faults in
  Gc_stats.time_pause stats (Heapsim.Heap.clock heap) kind (fun () ->
      Fun.protect
        ~finally:(fun () ->
          Gc_stats.add_gc_faults stats
            (pstats.Vmsim.Vm_stats.major_faults - before))
        f)

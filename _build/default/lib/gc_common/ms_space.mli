(** A segregated-fit mark-sweep space (the mature space of GenMS and
    CopyMS and the whole heap of MarkSweep).

    Pages are acquired one at a time, dedicated to a single size class and
    carved into equal cells. Completely empty pages are recycled to any
    class, but — being VM-oblivious — the space never returns frames to
    the operating system, so its footprint is its high-water mark. *)

type t

val create : Heapsim.Heap.t -> name:string -> max_cell:int -> t
(** [max_cell] bounds the cell sizes handled here (larger objects belong
    in a large object space); it must be at most one page. *)

val max_cell : t -> int

val alloc : t -> bytes:int -> grow:(unit -> bool) -> int option
(** Allocate a cell for [bytes]. When a fresh page is needed, [grow] is
    consulted; returning [false] makes the allocation fail. *)

val sweep : t -> unit
(** Touch and sweep every page: unmarked objects on this space's pages are
    freed and their cells returned; marked objects are unmarked. *)

val owns_page : t -> int -> bool

val pages_acquired : t -> int
(** Pages ever acquired (the space's footprint in pages). *)

val free_bytes : t -> int
(** Total bytes in free cells plus wholly-empty recycled pages. *)

val iter_pages : t -> (int -> unit) -> unit

module Vec = Repro_util.Vec

type t = { srcs : int Vec.t; fields : int Vec.t }

let create () = { srcs = Vec.create (); fields = Vec.create () }

let record t ~src ~field =
  Vec.push t.srcs src;
  Vec.push t.fields field

let length t = Vec.length t.srcs

let drain t f =
  for i = 0 to Vec.length t.srcs - 1 do
    f ~src:(Vec.get t.srcs i) ~field:(Vec.get t.fields i)
  done;
  Vec.clear t.srcs;
  Vec.clear t.fields

let clear t =
  Vec.clear t.srcs;
  Vec.clear t.fields

(** A page-grained large object space.

    Each object occupies its own page range. BC sends objects larger than
    8180 bytes here (§3); baselines use it for objects above their
    mark-sweep space's largest cell. Freed ranges are unmapped, returning
    frames to the system. *)

type t

val create : Heapsim.Heap.t -> name:string -> t

val alloc : t -> bytes:int -> grow:(npages:int -> bool) -> int option
(** Allocate a fresh page range; [grow] is consulted with the number of
    pages needed. *)

val note_object : t -> Heapsim.Obj_id.t -> unit
(** Register the (placed) object so sweeps can find it. *)

val sweep : t -> unit
(** Free (and unmap) unmarked objects; unmark survivors. *)

val owns_page : t -> int -> bool

val pages_in_use : t -> int

val iter_objects : t -> (Heapsim.Obj_id.t -> unit) -> unit

(** {1 Hooks for collectors that sweep the space themselves}

    BC sweeps the LOS with residency checks; these let it keep the space's
    accounting consistent while owning the free/unmap decisions. *)

val forget_range : t -> first_page:int -> unit
(** Drop the accounting for an object range the caller freed and unmapped
    itself. *)

val replace_objects : t -> Heapsim.Obj_id.t Repro_util.Vec.t -> unit
(** Replace the object list (after a caller-driven sweep). *)

val range_pages : t -> first_page:int -> int
(** Pages in the range starting at [first_page]. *)

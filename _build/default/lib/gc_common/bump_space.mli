(** A contiguous bump-pointer space over a mapped page range.

    Used for nurseries, semispace halves and CopyMS's copy space. The
    range is mapped (zero-fill) at creation; pages only consume frames
    once touched. *)

type t

val create : Heapsim.Heap.t -> name:string -> npages:int -> t
(** Reserve and map [npages] pages. *)

val alloc : t -> bytes:int -> limit_bytes:int -> int option
(** Bump-allocate [bytes]; [None] if the allocation would push usage past
    [limit_bytes] (the caller's current policy limit) or past the space's
    capacity. Returns the allocated address. *)

val used_bytes : t -> int

val capacity_bytes : t -> int

val reset : t -> unit
(** Reset the bump pointer to the start of the space. *)

val contains : t -> int -> bool
(** Whether an address falls inside the space. *)

val first_page : t -> int

val npages : t -> int

val used_pages : t -> int
(** Pages at or below the bump pointer (ever used since reset). *)

val iter_pages : t -> (int -> unit) -> unit

val discard_pages : t -> unit
(** [madvise_dontneed] every page in the space (used after evacuating a
    semispace: its contents are dead). *)

lib/gc_common/charge.mli: Heapsim

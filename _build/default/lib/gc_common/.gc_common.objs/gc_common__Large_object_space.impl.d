lib/gc_common/large_object_space.ml: Charge Hashtbl Heapsim Repro_util Vmsim

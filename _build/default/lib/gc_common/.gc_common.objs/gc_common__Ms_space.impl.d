lib/gc_common/ms_space.ml: Array Charge Hashtbl Heapsim Printf Repro_util Size_class Vmsim

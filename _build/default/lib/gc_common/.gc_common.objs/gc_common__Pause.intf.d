lib/gc_common/pause.mli: Gc_stats Heapsim

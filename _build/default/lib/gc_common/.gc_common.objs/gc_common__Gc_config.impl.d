lib/gc_common/gc_config.ml: Vmsim

lib/gc_common/remset.ml: Repro_util

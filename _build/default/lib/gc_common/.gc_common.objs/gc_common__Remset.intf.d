lib/gc_common/remset.mli: Heapsim

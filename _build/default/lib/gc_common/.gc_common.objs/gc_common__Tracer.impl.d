lib/gc_common/tracer.ml: Heapsim Repro_util

lib/gc_common/charge.ml: Heapsim Vmsim

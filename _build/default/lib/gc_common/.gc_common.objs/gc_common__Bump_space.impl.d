lib/gc_common/bump_space.ml: Heapsim Vmsim

lib/gc_common/write_buffer.ml: Card_table Heapsim Repro_util Size_class Vmsim

lib/gc_common/collector.ml: Gc_config Gc_stats Heapsim Vmsim

lib/gc_common/card_table.ml: Repro_util

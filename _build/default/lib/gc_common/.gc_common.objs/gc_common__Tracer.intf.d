lib/gc_common/tracer.mli: Heapsim

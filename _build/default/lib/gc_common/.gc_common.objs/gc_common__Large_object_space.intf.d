lib/gc_common/large_object_space.mli: Heapsim Repro_util

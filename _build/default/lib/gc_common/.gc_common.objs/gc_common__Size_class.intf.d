lib/gc_common/size_class.mli:

lib/gc_common/collector.mli: Gc_config Gc_stats Heapsim

lib/gc_common/card_table.mli:

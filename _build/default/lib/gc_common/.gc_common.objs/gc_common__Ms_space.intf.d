lib/gc_common/ms_space.mli: Heapsim

lib/gc_common/gc_stats.mli: Format Vmsim

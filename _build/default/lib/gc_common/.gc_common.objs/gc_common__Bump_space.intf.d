lib/gc_common/bump_space.mli: Heapsim

lib/gc_common/gc_config.mli:

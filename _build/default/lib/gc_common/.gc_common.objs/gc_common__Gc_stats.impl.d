lib/gc_common/gc_stats.ml: Float Format List Repro_util Vmsim

lib/gc_common/pause.ml: Fun Gc_stats Heapsim Vmsim

lib/gc_common/size_class.ml: Array Float List

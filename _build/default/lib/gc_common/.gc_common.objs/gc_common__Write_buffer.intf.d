lib/gc_common/write_buffer.mli: Card_table Heapsim

module Vec = Repro_util.Vec

type pause_kind = Minor | Full | Compacting

type pause = { start_ns : int; duration_ns : int; kind : pause_kind }

type t = {
  pauses : pause Vec.t;
  mutable minor : int;
  mutable full : int;
  mutable compacting : int;
  mutable total_gc_ns : int;
  mutable allocated_bytes : int;
  mutable allocated_objects : int;
  mutable max_heap_pages : int;
  mutable in_pause : bool;
  mutable gc_major_faults : int;
}

let create () =
  {
    pauses = Vec.create ();
    minor = 0;
    full = 0;
    compacting = 0;
    total_gc_ns = 0;
    allocated_bytes = 0;
    allocated_objects = 0;
    max_heap_pages = 0;
    in_pause = false;
    gc_major_faults = 0;
  }

let reset t =
  Repro_util.Vec.clear t.pauses;
  t.minor <- 0;
  t.full <- 0;
  t.compacting <- 0;
  t.total_gc_ns <- 0;
  t.allocated_bytes <- 0;
  t.allocated_objects <- 0;
  t.max_heap_pages <- 0;
  t.gc_major_faults <- 0

let record_alloc t ~bytes =
  t.allocated_bytes <- t.allocated_bytes + bytes;
  t.allocated_objects <- t.allocated_objects + 1

let bump_kind t = function
  | Minor -> t.minor <- t.minor + 1
  | Full -> t.full <- t.full + 1
  | Compacting -> t.compacting <- t.compacting + 1

let time_pause t clock kind f =
  if t.in_pause then
    (* nested collection (e.g. a minor GC escalating to full): the outer
       pause interval already covers this work *)
    f ()
  else begin
    t.in_pause <- true;
    let start_ns = Vmsim.Clock.now clock in
    let finish () =
      let duration_ns = Vmsim.Clock.now clock - start_ns in
      Vec.push t.pauses { start_ns; duration_ns; kind };
      bump_kind t kind;
      t.total_gc_ns <- t.total_gc_ns + duration_ns;
      t.in_pause <- false
    in
    match f () with
    | result ->
        finish ();
        result
    | exception e ->
        finish ();
        raise e
  end

let add_gc_faults t n = t.gc_major_faults <- t.gc_major_faults + n

let gc_major_faults t = t.gc_major_faults

let note_heap_pages t pages =
  if pages > t.max_heap_pages then t.max_heap_pages <- pages

let pauses t = Vec.to_list t.pauses

let count t = function
  | Minor -> t.minor
  | Full -> t.full
  | Compacting -> t.compacting

let collections t = t.minor + t.full + t.compacting

let total_gc_ns t = t.total_gc_ns

let allocated_bytes t = t.allocated_bytes

let allocated_objects t = t.allocated_objects

let max_heap_pages t = t.max_heap_pages

let avg_pause_ms t =
  let n = Vec.length t.pauses in
  if n = 0 then 0.0
  else
    Vec.fold_left (fun acc p -> acc +. Vmsim.Clock.ns_to_ms p.duration_ns) 0.0
      t.pauses
    /. float_of_int n

let max_pause_ms t =
  Vec.fold_left
    (fun acc p -> Float.max acc (Vmsim.Clock.ns_to_ms p.duration_ns))
    0.0 t.pauses

let pause_percentile_ms t p =
  Repro_util.Summary.percentile p
    (List.map
       (fun pause -> Vmsim.Clock.ns_to_ms pause.duration_ns)
       (pauses t))

let pp ppf t =
  Format.fprintf ppf
    "minor:%d full:%d compact:%d gc:%.1fms avg-pause:%.2fms max-pause:%.2fms \
     alloc:%dB/%d objs heap-max:%d pages"
    t.minor t.full t.compacting
    (Vmsim.Clock.ns_to_ms t.total_gc_ns)
    (avg_pause_ms t) (max_pause_ms t) t.allocated_bytes t.allocated_objects
    t.max_heap_pages

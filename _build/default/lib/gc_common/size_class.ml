let word = 4

let max_cell = 8180

let round_word n = (n + word - 1) / word * word

(* Small classes: every word-multiple size from 8 to 64 bytes. *)
let small_sizes =
  let rec build s acc = if s > 64 then List.rev acc else build (s + word) (s :: acc) in
  build 8 []

(* 37 larger classes: 32 geometric steps from 64 to 2048 (worst-case
   internal fragmentation ~11%, within the paper's 15% bound), then the
   five largest classes stepping geometrically to 8180 (frag 16-33%). *)
let large_sizes =
  let geometric ~from ~upto ~steps =
    let ratio = Float.exp (Float.log (float_of_int upto /. float_of_int from) /. float_of_int steps) in
    List.init steps (fun k ->
        let v = float_of_int from *. (ratio ** float_of_int (k + 1)) in
        min upto (round_word (int_of_float (Float.ceil v))))
  in
  geometric ~from:64 ~upto:2048 ~steps:32 @ geometric ~from:2048 ~upto:max_cell ~steps:5

let cell_sizes =
  let all = List.sort_uniq compare (small_sizes @ large_sizes) in
  Array.of_list all

let count = Array.length cell_sizes

let small_count = List.length small_sizes

(* Dense lookup: size (in words) -> class index. *)
let lookup =
  let table = Array.make ((max_cell / word) + 1) (-1) in
  let cls = ref (count - 1) in
  for w = max_cell / word downto 1 do
    let size = w * word in
    while !cls > 0 && cell_sizes.(!cls - 1) >= size do
      decr cls
    done;
    (* cell_sizes.(!cls) is the smallest cell >= size *)
    table.(w) <- !cls
  done;
  table

let class_of_size size =
  if size <= 0 then invalid_arg "Size_class.class_of_size"
  else
    let rounded = round_word size in
    if rounded > max_cell then None else Some lookup.(rounded / word)

let cell_size c = cell_sizes.(c)

let internal_fragmentation c =
  let cell = cell_sizes.(c) in
  let smallest_request = if c = 0 then word else cell_sizes.(c - 1) + word in
  float_of_int (cell - smallest_request) /. float_of_int cell

let advance heap ns = Vmsim.Clock.advance (Heapsim.Heap.clock heap) ns

let setup heap = advance heap (Heapsim.Heap.costs heap).Vmsim.Costs.gc_setup_ns

let object_visit heap =
  advance heap (Heapsim.Heap.costs heap).Vmsim.Costs.gc_object_ns

let objects heap n =
  advance heap (n * (Heapsim.Heap.costs heap).Vmsim.Costs.gc_object_ns)

let copy heap ~bytes =
  let costs = Heapsim.Heap.costs heap in
  advance heap
    (costs.Vmsim.Costs.gc_object_ns + (bytes * costs.Vmsim.Costs.gc_byte_copy_ns))

let page_sweep heap =
  advance heap (Heapsim.Heap.costs heap).Vmsim.Costs.gc_page_sweep_ns

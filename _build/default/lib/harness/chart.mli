(** Minimal ASCII charts for rendering the paper's figures in a
    terminal.

    Each column of a data series becomes a letter plotted over a grid;
    the y axis is logarithmic by default, which suits paging data whose
    interesting structure spans orders of magnitude. *)

val render :
  ?height:int ->
  ?width:int ->
  ?log_y:bool ->
  columns:string list ->
  rows:(string * float option list) list ->
  unit ->
  string
(** [render ~columns ~rows ()] returns the chart (legend included) as a
    string. [height] defaults to 12 grid lines, [width] to 60 cells,
    [log_y] to true. Missing points ([None]) are left blank. *)

val print :
  ?height:int ->
  ?width:int ->
  ?log_y:bool ->
  title:string ->
  columns:string list ->
  rows:(string * float option list) list ->
  unit ->
  unit
(** Print [render] output under a title. *)

module Gc_config = Gc_common.Gc_config

let fixed_nursery_bytes = 4 * 1024 * 1024 / Workload.Benchmarks.scale

let names =
  [
    "BC";
    "BC-resize";
    "BC-fixed";
    "GenMS";
    "GenMS-fixed";
    "GenMS-coop";
    "GenCopy";
    "GenCopy-fixed";
    "CopyMS";
    "MarkSweep";
    "SemiSpace";
  ]

(* Ablation variants of BC (bench targets only). *)
let ablation_names =
  [
    "BC-noaggr";
    "BC-nocons";
    "BC-nocompact";
    "BC-reserve0";
    "BC-reserve32";
    "BC-ptraware";
    "BC-noregrow";
  ]

let config_for ~name ~heap_bytes =
  let fixed = Gc_config.Fixed fixed_nursery_bytes in
  match name with
  | "BC" | "GenMS" | "GenCopy" | "CopyMS" | "MarkSweep" | "SemiSpace" ->
      Gc_config.make ~heap_bytes ()
  | "BC-resize" ->
      Gc_config.make ~heap_bytes
        ~bc:{ Gc_config.default_bc_opts with Gc_config.bookmarks_enabled = false }
        ()
  | "BC-fixed" -> Gc_config.make ~heap_bytes ~nursery:fixed ()
  | "GenMS-fixed" | "GenCopy-fixed" ->
      Gc_config.make ~heap_bytes ~nursery:fixed ()
  | "GenMS-coop" -> Gc_config.make ~heap_bytes ~cooperative_discard:true ()
  | "BC-noaggr" ->
      Gc_config.make ~heap_bytes
        ~bc:{ Gc_config.default_bc_opts with Gc_config.aggressive_discard = false }
        ()
  | "BC-nocons" ->
      Gc_config.make ~heap_bytes
        ~bc:{ Gc_config.default_bc_opts with Gc_config.conservative_clear = false }
        ()
  | "BC-nocompact" ->
      Gc_config.make ~heap_bytes
        ~bc:{ Gc_config.default_bc_opts with Gc_config.compaction_enabled = false }
        ()
  | "BC-reserve0" ->
      Gc_config.make ~heap_bytes
        ~bc:{ Gc_config.default_bc_opts with Gc_config.reserve_pages = 0 }
        ()
  | "BC-reserve32" ->
      Gc_config.make ~heap_bytes
        ~bc:{ Gc_config.default_bc_opts with Gc_config.reserve_pages = 32 }
        ()
  | "BC-ptraware" ->
      Gc_config.make ~heap_bytes
        ~bc:
          { Gc_config.default_bc_opts with Gc_config.pointer_aware_victims = 8 }
        ()
  | "BC-noregrow" ->
      Gc_config.make ~heap_bytes
        ~bc:{ Gc_config.default_bc_opts with Gc_config.regrow = false }
        ()
  | _ -> invalid_arg (Printf.sprintf "Registry: unknown collector %S" name)

let factory_for name =
  match name with
  | "BC" | "BC-resize" | "BC-fixed" | "BC-noaggr" | "BC-nocons"
  | "BC-nocompact" | "BC-reserve0" | "BC-reserve32" | "BC-ptraware"
  | "BC-noregrow" ->
      Bookmarking.Bc.factory
  | "GenMS" | "GenMS-fixed" | "GenMS-coop" -> Baselines.Gen_ms.factory
  | "GenCopy" | "GenCopy-fixed" -> Baselines.Gen_copy.factory
  | "CopyMS" -> Baselines.Copy_ms.factory
  | "MarkSweep" -> Baselines.Mark_sweep.factory
  | "SemiSpace" -> Baselines.Semi_space.factory
  | _ -> invalid_arg (Printf.sprintf "Registry: unknown collector %S" name)

let create ~name ~heap_bytes heap =
  let config = config_for ~name ~heap_bytes in
  (factory_for name) config heap

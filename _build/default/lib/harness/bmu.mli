(** Bounded mutator utilization (Cheng–Blelloch MU, Sachindran's BMU),
    the metric of Figure 6.

    For a window size [w], mutator utilization is the fraction of a
    [w]-long window not spent in GC pauses; BMU([w]) is the minimum over
    all windows of size [w] {e or greater} — equivalently, the running
    maximum of minimum-MU from small windows up. *)

val min_mu : pauses:(int * int) list -> total_ns:int -> window_ns:int -> float
(** Minimum mutator utilization over all windows of exactly [window_ns]
    within [0, total_ns]. [pauses] are (start, duration) pairs. *)

val curve :
  pauses:(int * int) list -> total_ns:int -> windows:int list -> (int * float) list
(** BMU at each window size (windows need not be sorted; the result is, and
    is monotonically non-decreasing in the window size). *)

(** ASCII tables and data series for the experiment output. *)

val print_table : header:string list -> rows:string list list -> unit
(** Aligned, pipe-separated table on stdout. *)

val print_series :
  title:string ->
  x_label:string ->
  columns:string list ->
  rows:(string * float option list) list ->
  unit
(** A figure as a data table: one row per x value; [None] cells (failed
    runs) print as "-". When the [CSV_DIR] environment variable is set,
    the series is also written to [$CSV_DIR/<slug-of-title>.csv] for
    plotting; when [CHARTS=1], an ASCII chart ({!Chart}) is printed under
    the table. *)

val fmt_seconds : float -> string

val fmt_ms : float -> string

val fmt_bytes : int -> string
(** Human-readable KB/MB. *)

let letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

let render ?(height = 12) ?(width = 60) ?(log_y = true) ~columns ~rows () =
  let values =
    List.concat_map (fun (_, cells) -> List.filter_map Fun.id cells) rows
  in
  if values = [] then "(no data)\n"
  else begin
    let scale v = if log_y then Float.log (Float.max v 1e-9) else v in
    let lo = List.fold_left (fun acc v -> Float.min acc (scale v)) infinity values in
    let hi = List.fold_left (fun acc v -> Float.max acc (scale v)) neg_infinity values in
    let span = if hi -. lo < 1e-12 then 1.0 else hi -. lo in
    let nrows = List.length rows in
    let grid = Array.make_matrix height width ' ' in
    let x_of i =
      if nrows <= 1 then 0 else i * (width - 1) / (nrows - 1)
    in
    let y_of v =
      let frac = (scale v -. lo) /. span in
      let y = int_of_float (Float.round (frac *. float_of_int (height - 1))) in
      height - 1 - max 0 (min (height - 1) y)
    in
    List.iteri
      (fun row_idx (_, cells) ->
        List.iteri
          (fun col_idx cell ->
            match cell with
            | None -> ()
            | Some v ->
                let x = x_of row_idx and y = y_of v in
                let c = letters.[col_idx mod String.length letters] in
                (* later series overwrite; ties show the last letter *)
                grid.(y).(x) <- c)
          cells)
      rows;
    let buf = Buffer.create 1024 in
    let top = List.fold_left Float.max neg_infinity values in
    let bottom = List.fold_left Float.min infinity values in
    Array.iteri
      (fun y line ->
        let label =
          if y = 0 then Printf.sprintf "%10.3g |" top
          else if y = height - 1 then Printf.sprintf "%10.3g |" bottom
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun x -> line.(x)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    (* x labels: first and last *)
    (match (rows, List.rev rows) with
    | (first, _) :: _, (last, _) :: _ ->
        Buffer.add_string buf
          (Printf.sprintf "%10s  %s%s%s\n" "" first
             (String.make (max 1 (width - String.length first - String.length last)) ' ')
             last)
    | _ -> ());
    List.iteri
      (fun i col ->
        Buffer.add_string buf
          (Printf.sprintf "%12s = %s\n"
             (String.make 1 letters.[i mod String.length letters])
             col))
      columns;
    Buffer.contents buf
  end

let print ?height ?width ?log_y ~title ~columns ~rows () =
  Printf.printf "\n-- %s --\n%s" title
    (render ?height ?width ?log_y ~columns ~rows ())

(* Pause time inside [s, s+w], computed from sorted pause intervals. *)
let pause_overlap pauses ~s ~w =
  List.fold_left
    (fun acc (start, dur) ->
      let lo = max s start and hi = min (s + w) (start + dur) in
      acc + max 0 (hi - lo))
    0 pauses

let min_mu ~pauses ~total_ns ~window_ns =
  if window_ns <= 0 then 0.0
  else if window_ns >= total_ns then begin
    let total_pause = List.fold_left (fun acc (_, d) -> acc + d) 0 pauses in
    Float.max 0.0
      (1.0 -. (float_of_int total_pause /. float_of_int (max total_ns 1)))
  end
  else begin
    (* candidate window positions: aligned to pause starts and to pause
       ends minus the window, plus the extremes — the minimum is attained
       at one of these *)
    let candidates =
      0 :: (total_ns - window_ns)
      :: List.concat_map
           (fun (start, dur) -> [ start; start + dur - window_ns ])
           pauses
    in
    let worst = ref 0 in
    List.iter
      (fun s ->
        let s = max 0 (min s (total_ns - window_ns)) in
        let p = pause_overlap pauses ~s ~w:window_ns in
        if p > !worst then worst := p)
      candidates;
    Float.max 0.0 (1.0 -. (float_of_int !worst /. float_of_int window_ns))
  end

let curve ~pauses ~total_ns ~windows =
  let sorted = List.sort_uniq compare windows in
  let mus =
    List.map (fun w -> (w, min_mu ~pauses ~total_ns ~window_ns:w)) sorted
  in
  (* BMU(w) = min over windows of size >= w: suffix minimum *)
  let rev = List.rev mus in
  let running = ref 1.0 in
  let bmu_rev =
    List.map
      (fun (w, mu) ->
        if mu < !running then running := mu;
        (w, !running))
      rev
  in
  List.rev bmu_rev

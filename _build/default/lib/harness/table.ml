let pad width cell =
  let n = String.length cell in
  if n >= width then cell else cell ^ String.make (width - n) ' '

let print_table ~header ~rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell ->
         widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let line row =
    row
    |> List.mapi (fun i cell -> pad widths.(i) cell)
    |> String.concat " | "
  in
  print_endline (line header);
  print_endline
    (String.concat "-+-"
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter (fun row -> print_endline (line row)) rows

let fmt_seconds s = Printf.sprintf "%.3f" s

let fmt_ms ms = Printf.sprintf "%.2f" ms

let fmt_bytes b =
  if b >= 1_048_576 then Printf.sprintf "%.2fMB" (float_of_int b /. 1_048_576.)
  else Printf.sprintf "%dKB" (b / 1024)

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | _ -> '_')
    (String.lowercase_ascii title)

let write_csv ~title ~header ~body =
  match Sys.getenv_opt "CSV_DIR" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (slug title ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (String.concat "," header ^ "\n");
          List.iter
            (fun row -> output_string oc (String.concat "," row ^ "\n"))
            body)

let print_series ~title ~x_label ~columns ~rows =
  Printf.printf "\n== %s ==\n" title;
  let header = x_label :: columns in
  let body =
    List.map
      (fun (x, cells) ->
        x
        :: List.map
             (function Some v -> Printf.sprintf "%.3f" v | None -> "-")
             cells)
      rows
  in
  write_csv ~title ~header ~body;
  print_table ~header ~rows:body;
  match Sys.getenv_opt "CHARTS" with
  | Some ("1" | "true" | "yes") ->
      Chart.print ~title ~columns ~rows ()
  | Some _ | None -> ()

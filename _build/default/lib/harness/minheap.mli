(** Minimum-heap measurement (Table 1's "Min. Heap" column).

    Binary search for the smallest heap size at which a collector
    completes the workload without exhausting the heap, on a
    pressure-free machine. *)

val find :
  ?granularity_bytes:int ->
  ?lo_bytes:int ->
  ?hi_bytes:int ->
  ?volume_scale:float ->
  collector:string ->
  spec:Workload.Spec.t ->
  unit ->
  int option
(** [find ~collector ~spec ()] returns the smallest workable heap size, or
    [None] when even [hi_bytes] (default 4× the paper's minimum) fails.
    [volume_scale] (default 0.5) shrinks the allocation volume — the live
    set, which determines the minimum heap, is unaffected. Granularity
    defaults to 64 KB. *)

lib/harness/bmu.mli:

lib/harness/registry.mli: Gc_common Heapsim

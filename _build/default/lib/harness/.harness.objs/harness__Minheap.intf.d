lib/harness/minheap.mli: Workload

lib/harness/chart.mli:

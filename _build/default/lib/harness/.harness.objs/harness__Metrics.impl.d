lib/harness/metrics.ml: Format Gc_common Heapsim List Vmsim

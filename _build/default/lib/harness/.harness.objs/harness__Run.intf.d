lib/harness/run.mli: Metrics Vmsim Workload

lib/harness/run.ml: Gc_common Heapsim List Metrics Option Registry Vmsim Workload

lib/harness/registry.ml: Baselines Bookmarking Gc_common Printf Workload

lib/harness/bmu.ml: Float List

lib/harness/table.ml: Array Chart Filename Fun List Printf String Sys

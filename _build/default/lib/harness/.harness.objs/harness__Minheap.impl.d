lib/harness/minheap.ml: Metrics Option Run Workload

lib/harness/experiments.mli:

lib/harness/table.mli:

lib/harness/metrics.mli: Format Gc_common

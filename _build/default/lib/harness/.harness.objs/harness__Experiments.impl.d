lib/harness/experiments.ml: Bmu Float Gc_common Heapsim List Metrics Minheap Option Printf Registry Repro_util Run Table Vmsim Workload

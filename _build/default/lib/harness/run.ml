type setup = {
  collector : string;
  spec : Workload.Spec.t;
  heap_bytes : int;
  frames : int;
  pressure : Workload.Pressure.t;
  ops_per_slice : int;
  costs : Vmsim.Costs.t;
  iterations : int;
}

let default_slice = 256

let ample_frames ~heap_bytes =
  (4 * Vmsim.Page.count_for_bytes heap_bytes) + 2048

let setup ?frames ?(pressure = Workload.Pressure.None_)
    ?(ops_per_slice = default_slice) ?(costs = Vmsim.Costs.default)
    ?(iterations = 1) ~collector ~spec ~heap_bytes () =
  if iterations < 1 then invalid_arg "Run.setup: iterations";
  let frames =
    match frames with Some f -> f | None -> ample_frames ~heap_bytes
  in
  {
    collector;
    spec;
    heap_bytes;
    frames;
    pressure;
    ops_per_slice;
    costs;
    iterations;
  }

type instance = {
  mutator : Workload.Mutator.t;
  coll : Gc_common.Collector.t;
  mutable finish_ns : int option;
}

let run_instances ~clock ~vmm ~address_space ~pressure ~ops_per_slice instances
    specs =
  let signalmem = Workload.Signalmem.create vmm address_space in
  let ramp_start = ref None in
  let apply_pressure () =
    (* drive the schedule off the first instance's progress *)
    let inst = List.hd instances and spec = List.hd specs in
    let prog =
      float_of_int (Workload.Mutator.allocated_bytes inst.mutator)
      /. float_of_int (max 1 spec.Workload.Spec.total_alloc_bytes)
    in
    let now = Vmsim.Clock.now clock in
    (match (!ramp_start, pressure) with
    | None, Workload.Pressure.None_ -> ()
    | None, Workload.Pressure.Steady { after_progress; _ }
    | None, Workload.Pressure.Ramp { after_progress; _ } ->
        if prog >= after_progress then ramp_start := Some now
    | Some _, _ -> ());
    let start_ns = Option.value !ramp_start ~default:now in
    let due =
      Workload.Pressure.due_pages pressure ~now_ns:now ~start_ns
        ~progress:prog
    in
    let have = Workload.Signalmem.pinned_pages signalmem in
    if due > have then Workload.Signalmem.pin_pages signalmem (due - have)
  in
  let all_done () =
    List.for_all (fun inst -> inst.finish_ns <> None) instances
  in
  while not (all_done ()) do
    List.iter
      (fun inst ->
        if inst.finish_ns = None then begin
          let finished =
            Workload.Mutator.step inst.mutator ~ops:ops_per_slice
          in
          if finished then inst.finish_ns <- Some (Vmsim.Clock.now clock)
        end)
      instances;
    apply_pressure ()
  done

let run s =
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~costs:s.costs ~clock ~frames:s.frames () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"jvm" in
  let heap = Heapsim.Heap.create vmm proc in
  try
    let coll = Registry.create ~name:s.collector ~heap_bytes:s.heap_bytes heap in
    (* warm-up iterations (§5.1): run, then collect away their residue *)
    for i = 2 to s.iterations do
      ignore i;
      let warm = Workload.Mutator.create s.spec coll in
      while not (Workload.Mutator.step warm ~ops:s.ops_per_slice) do
        ()
      done;
      coll.Gc_common.Collector.collect ()
    done;
    if s.iterations > 1 then begin
      (* measure the final iteration only *)
      Gc_common.Gc_stats.reset coll.Gc_common.Collector.stats;
      Vmsim.Vm_stats.reset (Vmsim.Process.stats proc)
    end;
    let start_ns = Vmsim.Clock.now clock in
    let mutator = Workload.Mutator.create s.spec coll in
    let inst = { mutator; coll; finish_ns = None } in
    run_instances ~clock ~vmm
      ~address_space:(Heapsim.Heap.address_space heap)
      ~pressure:s.pressure ~ops_per_slice:s.ops_per_slice [ inst ] [ s.spec ];
    let end_ns = Option.value inst.finish_ns ~default:(Vmsim.Clock.now clock) in
    Metrics.Completed
      (Metrics.of_run ~collector:coll ~workload:s.spec.Workload.Spec.name
         ~start_ns ~end_ns)
  with
  | Gc_common.Collector.Heap_exhausted msg -> Metrics.Exhausted msg
  | Vmsim.Vmm.Thrashing msg -> Metrics.Thrashed msg

let run_pair a b =
  assert (a.frames = b.frames);
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~costs:a.costs ~clock ~frames:a.frames () in
  let shared_as = Heapsim.Address_space.create () in
  let make s tag =
    let proc = Vmsim.Vmm.create_process vmm ~name:tag in
    let heap = Heapsim.Heap.create_with vmm proc ~address_space:shared_as in
    let coll = Registry.create ~name:s.collector ~heap_bytes:s.heap_bytes heap in
    let mutator = Workload.Mutator.create s.spec coll in
    { mutator; coll; finish_ns = None }
  in
  try
    let start_ns = Vmsim.Clock.now clock in
    let ia = make a "jvm-a" in
    let ib = make b "jvm-b" in
    run_instances ~clock ~vmm ~address_space:shared_as ~pressure:a.pressure
      ~ops_per_slice:a.ops_per_slice [ ia; ib ] [ a.spec; b.spec ];
    let result inst s =
      Metrics.Completed
        (Metrics.of_run ~collector:inst.coll
           ~workload:s.spec.Workload.Spec.name ~start_ns
           ~end_ns:
             (Option.value inst.finish_ns ~default:(Vmsim.Clock.now clock)))
    in
    (result ia a, result ib b)
  with
  | Gc_common.Collector.Heap_exhausted msg ->
      (Metrics.Exhausted msg, Metrics.Exhausted msg)
  | Vmsim.Vmm.Thrashing msg -> (Metrics.Thrashed msg, Metrics.Thrashed msg)

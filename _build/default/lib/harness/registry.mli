(** Name-indexed collector registry. *)

val names : string list
(** All registered collector names, including variants:
    ["BC"; "BC-resize"; "BC-fixed"; "GenMS"; "GenMS-fixed"; "GenMS-coop";
     "GenCopy"; "GenCopy-fixed"; "CopyMS"; "MarkSweep"; "SemiSpace"].
    "GenMS-coop" is the Cooper-style discard-only cooperative collector
    of the paper's related work (§6). *)

val ablation_names : string list
(** BC ablation variants: ["BC-noaggr"; "BC-nocons"; "BC-nocompact";
    "BC-reserve0"; "BC-reserve32"]. *)

val fixed_nursery_bytes : int
(** Nursery size used by the "-fixed" variants (the paper's 4 MB,
    scaled: 512 KB). *)

val create : name:string -> heap_bytes:int -> Heapsim.Heap.t -> Gc_common.Collector.t
(** Instantiate a collector by name with an appropriate configuration.
    Raises [Invalid_argument] on unknown names. *)

val config_for : name:string -> heap_bytes:int -> Gc_common.Gc_config.t

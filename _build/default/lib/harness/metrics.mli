(** Results of one measured run. *)

type t = {
  collector : string;
  workload : string;
  heap_bytes : int;
  elapsed_ns : int;  (** virtual time from run start to workload finish *)
  gc_ns : int;
  minor : int;
  full : int;
  compacting : int;
  avg_pause_ms : float;
  p50_pause_ms : float;
  p95_pause_ms : float;
  max_pause_ms : float;
  major_faults : int;  (** all of the process's major faults *)
  gc_major_faults : int;  (** major faults incurred inside collections *)
  evictions : int;
  discards : int;
  relinquished : int;
  footprint_pages : int;  (** high-water heap pages *)
  allocated_bytes : int;
  pauses : (int * int) list;  (** (start, duration), for BMU *)
}

type outcome =
  | Completed of t
  | Exhausted of string  (** the heap was too small *)
  | Thrashed of string  (** physical memory could not hold the floor *)

val elapsed_s : t -> float

val of_run :
  collector:Gc_common.Collector.t ->
  workload:string ->
  start_ns:int ->
  end_ns:int ->
  t

val pp : Format.formatter -> t -> unit

let nursery = 1

let mature = 2

let los = 3

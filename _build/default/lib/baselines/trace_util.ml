let mark_all heap =
  let objects = Heapsim.Heap.objects heap in
  Gc_common.Tracer.run
    ~roots:(fun enqueue -> Heapsim.Heap.iter_roots heap enqueue)
    ~visit:(fun id ~enqueue ->
      if not (Heapsim.Object_table.marked objects id) then begin
        Heapsim.Object_table.set_marked objects id true;
        Gc_common.Charge.object_visit heap;
        Heapsim.Heap.touch_object heap ~write:true id;
        Heapsim.Object_table.iter_refs objects id (fun _field target ->
            enqueue target)
      end)

let copy_object heap id ~new_addr =
  let bytes = Heapsim.Object_table.size (Heapsim.Heap.objects heap) id in
  Heapsim.Heap.touch_object heap ~write:false id;
  Heapsim.Heap.displace heap id;
  Heapsim.Heap.place heap id ~addr:new_addr;
  Heapsim.Heap.touch_object heap ~write:true id;
  Gc_common.Charge.copy heap ~bytes

(** Space tags stored in each object's collector-defined space word.

    Shared across collectors so tests and tracing helpers can reason about
    object placement uniformly. *)

val nursery : int
(** Bump-allocated young space (also semispace / copy space). *)

val mature : int
(** Mark-sweep or mature semispace. *)

val los : int
(** Large object space. *)

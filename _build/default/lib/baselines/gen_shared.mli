(** Machinery shared by the generational baselines (GenMS, GenCopy) and
    CopyMS: nursery sizing policies, remembered-set seeding and the
    young-generation evacuation traces. *)

val min_nursery_bytes : int
(** Lower bound on the nursery (32 KB — the paper's 256 KB scaled 1/8). *)

val nursery_limit :
  Gc_common.Gc_config.t -> mature_bytes:int -> int
(** Current nursery ceiling in bytes: for [Appel], half of the heap budget
    left after the mature spaces; for [Fixed n], [n]. Never below
    {!min_nursery_bytes}. *)

val seed_remset :
  Heapsim.Heap.t -> Gc_common.Remset.t -> (Heapsim.Obj_id.t -> unit) -> unit
(** Drain remembered slots into the tracer: touches each source's pages
    (faulting if evicted — the generational paging cost the paper
    measures), validates the slot and enqueues its current target. *)

val minor_trace :
  Heapsim.Heap.t ->
  epoch:int ->
  in_young:(Heapsim.Obj_id.t -> bool) ->
  copy_young:(Heapsim.Obj_id.t -> unit) ->
  extra_roots:((Heapsim.Obj_id.t -> unit) -> unit) ->
  unit
(** Nursery collection: trace from mutator roots plus [extra_roots],
    following only young objects; each first-visited young object is
    evacuated with [copy_young] and its fields scanned. *)

val full_trace :
  Heapsim.Heap.t ->
  epoch:int ->
  in_young:(Heapsim.Obj_id.t -> bool) ->
  copy_young:(Heapsim.Obj_id.t -> unit) ->
  on_old:(Heapsim.Obj_id.t -> unit) ->
  unit
(** Whole-heap trace: young objects are evacuated, old objects get
    [on_old] (typically: set the mark bit) — both touched and charged. *)

val reap_young :
  Heapsim.Heap.t -> Heapsim.Obj_id.t Repro_util.Vec.t -> epoch:int -> unit
(** Free the young objects that were not evacuated this [epoch] and clear
    the vector. *)

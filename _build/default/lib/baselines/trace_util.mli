(** Tracing helpers shared by the baseline collectors.

    These collectors are {e VM-oblivious}: marking touches every visited
    object's pages regardless of residency, which is exactly the paging
    behaviour the paper attributes to them. *)

val mark_all : Heapsim.Heap.t -> unit
(** Mark the transitive closure of the mutator roots, touching every
    visited object (faulting on evicted ones) and charging per-object
    work. Mark bits are left set; sweeps clear them. *)

val copy_object : Heapsim.Heap.t -> Heapsim.Obj_id.t -> new_addr:int -> unit
(** Move an object: touch its old pages (read) and new pages (write),
    charge the copy, and update placement. *)

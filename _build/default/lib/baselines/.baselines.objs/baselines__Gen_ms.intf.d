lib/baselines/gen_ms.mli: Gc_common

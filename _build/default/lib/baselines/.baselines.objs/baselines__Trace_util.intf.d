lib/baselines/trace_util.mli: Heapsim

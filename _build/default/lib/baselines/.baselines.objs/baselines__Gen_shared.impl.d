lib/baselines/gen_shared.ml: Gc_common Heapsim Repro_util

lib/baselines/copy_ms.mli: Gc_common

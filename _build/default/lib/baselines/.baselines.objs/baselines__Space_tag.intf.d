lib/baselines/space_tag.mli:

lib/baselines/trace_util.ml: Gc_common Heapsim

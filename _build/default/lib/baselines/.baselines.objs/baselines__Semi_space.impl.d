lib/baselines/semi_space.ml: Array Gc_common Heapsim Printf Repro_util Space_tag Trace_util

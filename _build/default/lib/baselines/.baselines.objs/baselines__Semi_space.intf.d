lib/baselines/semi_space.mli: Gc_common

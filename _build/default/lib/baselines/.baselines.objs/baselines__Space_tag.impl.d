lib/baselines/space_tag.ml:

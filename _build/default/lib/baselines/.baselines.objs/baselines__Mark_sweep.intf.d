lib/baselines/mark_sweep.mli: Gc_common

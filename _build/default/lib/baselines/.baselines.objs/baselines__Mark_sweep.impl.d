lib/baselines/mark_sweep.ml: Gc_common Heapsim Printf Space_tag Trace_util Vmsim

lib/baselines/gen_shared.mli: Gc_common Heapsim Repro_util

lib/baselines/gen_copy.mli: Gc_common

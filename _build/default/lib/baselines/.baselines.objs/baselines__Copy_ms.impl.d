lib/baselines/copy_ms.ml: Gc_common Gen_shared Heapsim Mark_sweep Printf Repro_util Space_tag Trace_util Vmsim

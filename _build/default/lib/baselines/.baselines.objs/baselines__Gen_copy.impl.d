lib/baselines/gen_copy.ml: Array Gc_common Gen_shared Heapsim Printf Repro_util Space_tag Trace_util

module Vec = Repro_util.Vec

let min_nursery_bytes = 32 * 1024

let nursery_limit config ~mature_bytes =
  match config.Gc_common.Gc_config.nursery with
  | Gc_common.Gc_config.Fixed n -> max n min_nursery_bytes
  | Gc_common.Gc_config.Appel ->
      let free = config.Gc_common.Gc_config.heap_bytes - mature_bytes in
      max (free / 2) min_nursery_bytes

let seed_remset heap remset enqueue =
  let objects = Heapsim.Heap.objects heap in
  Gc_common.Remset.drain remset (fun ~src ~field ->
      if
        Heapsim.Object_table.is_live objects src
        && field < Heapsim.Object_table.nrefs objects src
      then begin
        Gc_common.Charge.object_visit heap;
        Heapsim.Heap.touch_object heap ~write:false src;
        enqueue (Heapsim.Object_table.get_ref objects src field)
      end)

let scan_fields objects id enqueue =
  Heapsim.Object_table.iter_refs objects id (fun _field target -> enqueue target)

let minor_trace heap ~epoch ~in_young ~copy_young ~extra_roots =
  let objects = Heapsim.Heap.objects heap in
  Gc_common.Tracer.run
    ~roots:(fun enqueue ->
      Heapsim.Heap.iter_roots heap enqueue;
      extra_roots enqueue)
    ~visit:(fun id ~enqueue ->
      if
        Heapsim.Object_table.is_live objects id
        && in_young id
        && Heapsim.Object_table.scratch objects id <> epoch
      then begin
        Heapsim.Object_table.set_scratch objects id epoch;
        copy_young id;
        scan_fields objects id enqueue
      end)

let full_trace heap ~epoch ~in_young ~copy_young ~on_old =
  let objects = Heapsim.Heap.objects heap in
  Gc_common.Tracer.run
    ~roots:(fun enqueue -> Heapsim.Heap.iter_roots heap enqueue)
    ~visit:(fun id ~enqueue ->
      if
        Heapsim.Object_table.is_live objects id
        && Heapsim.Object_table.scratch objects id <> epoch
      then begin
        Heapsim.Object_table.set_scratch objects id epoch;
        if in_young id then copy_young id
        else begin
          Gc_common.Charge.object_visit heap;
          Heapsim.Heap.touch_object heap ~write:true id;
          on_old id
        end;
        scan_fields objects id enqueue
      end)

let reap_young heap young ~epoch =
  let objects = Heapsim.Heap.objects heap in
  Vec.iter
    (fun id ->
      if Heapsim.Object_table.scratch objects id <> epoch then
        Heapsim.Heap.free_object heap id)
    young;
  Vec.clear young

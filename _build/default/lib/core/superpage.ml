module Vec = Repro_util.Vec

type kind = Scalar | Array

type sp = {
  index : int;
  first_page : int;
  mutable cls : int;
  mutable kind : kind;
  mutable cells_total : int;
  free : int Vec.t;
  blocked : int Vec.t;
  mutable on_partial : bool;
  mutable incoming : int;
  mutable evicted_data_pages : int;
}

let header_bytes = 24

let usable_bytes = Vmsim.Page.superpage_size - header_bytes

type t = {
  heap : Heapsim.Heap.t;
  mutable on_acquire : sp -> unit;
  sps : sp Vec.t;
  by_quad : (int, sp) Hashtbl.t;  (* page / pages_per_superpage -> sp *)
  partial : sp Vec.t array;  (* class * 2 + kind *)
  empty_pool : sp Vec.t;
  mutable free_cell_bytes : int;
}

let kind_idx = function Scalar -> 0 | Array -> 1

let partial_idx cls kind = (cls * 2) + kind_idx kind

let create ?(on_acquire = fun _ -> ()) heap =
  {
    heap;
    on_acquire;
    sps = Vec.create ();
    by_quad = Hashtbl.create 64;
    partial = Array.init (Gc_common.Size_class.count * 2) (fun _ -> Vec.create ());
    empty_pool = Vec.create ();
    free_cell_bytes = 0;
  }

let heap t = t.heap

let set_on_acquire t f = t.on_acquire <- f

let quad page = page / Vmsim.Page.pages_per_superpage

let sp_of_page t page = Hashtbl.find_opt t.by_quad (quad page)

let sp_of_addr t addr = sp_of_page t (Vmsim.Page.of_addr addr)

let owns_page t page = Hashtbl.mem t.by_quad (quad page)

let is_header_page t page =
  match sp_of_page t page with
  | Some sp -> sp.first_page = page
  | None -> false

let data_pages sp = [ sp.first_page + 1; sp.first_page + 2; sp.first_page + 3 ]

let iter_sps t f = Vec.iter f t.sps

let sp_count t = Vec.length t.sps

let pages_acquired t = Vec.length t.sps * Vmsim.Page.pages_per_superpage

let free_bytes t =
  t.free_cell_bytes + (Vec.length t.empty_pool * usable_bytes)

let cell_size sp = Gc_common.Size_class.cell_size sp.cls

let base_addr sp = Vmsim.Page.addr_of sp.first_page + header_bytes

(* Carve an empty superpage into cells of the given class and kind. *)
let assign_class t sp cls kind =
  let cell = Gc_common.Size_class.cell_size cls in
  let ncells = usable_bytes / cell in
  sp.cls <- cls;
  sp.kind <- kind;
  sp.cells_total <- ncells;
  Vec.clear sp.free;
  Vec.clear sp.blocked;
  let base = base_addr sp in
  for i = 0 to ncells - 1 do
    Vec.push sp.free (base + (i * cell))
  done;
  t.free_cell_bytes <- t.free_cell_bytes + (ncells * cell)

let acquire t cls kind ~grow =
  if not (Vec.is_empty t.empty_pool) then begin
    let sp = Vec.pop t.empty_pool in
    assign_class t sp cls kind;
    Some sp
  end
  else if grow () then begin
    let first_page =
      Heapsim.Address_space.reserve_aligned
        (Heapsim.Heap.address_space t.heap)
        ~npages:Vmsim.Page.pages_per_superpage
        ~align:Vmsim.Page.pages_per_superpage
    in
    Vmsim.Vmm.map_range (Heapsim.Heap.vmm t.heap)
      (Heapsim.Heap.process t.heap) ~first_page
      ~npages:Vmsim.Page.pages_per_superpage;
    let sp =
      {
        index = Vec.length t.sps;
        first_page;
        cls;
        kind;
        cells_total = 0;
        free = Vec.create ();
        blocked = Vec.create ();
        on_partial = false;
        incoming = 0;
        evicted_data_pages = 0;
      }
    in
    Vec.push t.sps sp;
    Hashtbl.add t.by_quad (quad first_page) sp;
    assign_class t sp cls kind;
    t.on_acquire sp;
    Some sp
  end
  else None

let rec pop_partial t idx cls =
  let v = t.partial.(idx) in
  if Vec.is_empty v then None
  else begin
    let sp = Vec.top v in
    if sp.cls <> cls || partial_idx sp.cls sp.kind <> idx || Vec.is_empty sp.free
    then begin
      ignore (Vec.pop v);
      sp.on_partial <- false;
      pop_partial t idx cls
    end
    else Some sp
  end

(* Pop a free cell whose pages are all usable; park others on [blocked]. *)
let pop_usable_cell t sp ~resident =
  let cell = cell_size sp in
  let cell_ok addr =
    let rec ok page =
      page > Vmsim.Page.of_addr (addr + cell - 1) || (resident page && ok (page + 1))
    in
    ok (Vmsim.Page.of_addr addr)
  in
  let rec loop () =
    if Vec.is_empty sp.free then None
    else begin
      let addr = Vec.pop sp.free in
      if cell_ok addr then begin
        t.free_cell_bytes <- t.free_cell_bytes - cell;
        Some addr
      end
      else begin
        Vec.push sp.blocked addr;
        t.free_cell_bytes <- t.free_cell_bytes - cell;
        loop ()
      end
    end
  in
  loop ()

let alloc t ~bytes ~kind ~grow ~resident =
  match Gc_common.Size_class.class_of_size bytes with
  | None ->
      invalid_arg
        (Printf.sprintf "Superpage.alloc: %d bytes belongs in the LOS" bytes)
  | Some cls ->
      let idx = partial_idx cls kind in
      let rec from_partial () =
        match pop_partial t idx cls with
        | None -> (
            match acquire t cls kind ~grow with
            | None -> None
            | Some sp ->
                sp.on_partial <- true;
                Vec.push t.partial.(idx) sp;
                from_partial ())
        | Some sp -> (
            match pop_usable_cell t sp ~resident with
            | Some addr -> Some (addr, sp)
            | None ->
                (* every remaining free cell was blocked *)
                ignore (Vec.pop t.partial.(idx));
                sp.on_partial <- false;
                from_partial ())
      in
      from_partial ()

let alloc_on t sp ~resident = pop_usable_cell t sp ~resident

let free_cell t sp ~addr =
  Vec.push sp.free addr;
  t.free_cell_bytes <- t.free_cell_bytes + cell_size sp;
  if (not sp.on_partial) && sp.cells_total > 0 then begin
    sp.on_partial <- true;
    Vec.push t.partial.(partial_idx sp.cls sp.kind) sp
  end

let cells_overlapping_page sp page =
  if sp.cells_total = 0 then 0
  else begin
    let cell = cell_size sp in
    let base = base_addr sp in
    let lo = Vmsim.Page.addr_of page in
    let hi = lo + Vmsim.Page.size - 1 in
    let n = ref 0 in
    for i = 0 to sp.cells_total - 1 do
      let a = base + (i * cell) in
      if a <= hi && a + cell - 1 >= lo then incr n
    done;
    !n
  end

let note_page_evicted t page =
  match sp_of_page t page with
  | None -> ()
  | Some sp ->
      sp.evicted_data_pages <- sp.evicted_data_pages + 1;
      (* park free cells overlapping the now-evicted page *)
      let cell = cell_size sp in
      let lo = Vmsim.Page.addr_of page in
      let hi = lo + Vmsim.Page.size - 1 in
      let kept = ref 0 in
      let n = Vec.length sp.free in
      for i = 0 to n - 1 do
        let a = Vec.get sp.free i in
        if a <= hi && a + cell - 1 >= lo then begin
          Vec.push sp.blocked a;
          t.free_cell_bytes <- t.free_cell_bytes - cell
        end
        else begin
          Vec.set sp.free !kept a;
          incr kept
        end
      done;
      while Vec.length sp.free > !kept do
        ignore (Vec.pop sp.free)
      done

let note_page_resident t page ~resident =
  match sp_of_page t page with
  | None -> ()
  | Some sp ->
      if sp.evicted_data_pages > 0 then
        sp.evicted_data_pages <- sp.evicted_data_pages - 1;
      (* un-park blocked cells that are now fully usable *)
      let cell = cell_size sp in
      let cell_ok addr =
        let rec ok page =
          page > Vmsim.Page.of_addr (addr + cell - 1)
          || (resident page && ok (page + 1))
        in
        ok (Vmsim.Page.of_addr addr)
      in
      let kept = ref 0 in
      let n = Vec.length sp.blocked in
      for i = 0 to n - 1 do
        let a = Vec.get sp.blocked i in
        if cell_ok a then free_cell t sp ~addr:a
        else begin
          Vec.set sp.blocked !kept a;
          incr kept
        end
      done;
      while Vec.length sp.blocked > !kept do
        ignore (Vec.pop sp.blocked)
      done

let live_count t sp =
  let page_map = Heapsim.Heap.page_map t.heap in
  let seen = Hashtbl.create 8 in
  let count = ref 0 in
  for page = sp.first_page to sp.first_page + Vmsim.Page.pages_per_superpage - 1
  do
    Heapsim.Page_map.iter_on page_map page (fun id ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          incr count
        end)
  done;
  !count

let recycle_empty t ~resident =
  iter_sps t (fun sp ->
      if
        sp.cells_total > 0 && sp.incoming = 0 && sp.evicted_data_pages = 0
        && live_count t sp = 0
        && List.for_all resident (data_pages sp)
      then begin
        t.free_cell_bytes <-
          t.free_cell_bytes - (Vec.length sp.free * cell_size sp);
        Vec.clear sp.free;
        Vec.clear sp.blocked;
        sp.cells_total <- 0;
        sp.on_partial <- false;
        Vec.push t.empty_pool sp
      end)

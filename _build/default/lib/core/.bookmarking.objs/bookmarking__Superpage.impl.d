lib/core/superpage.ml: Array Gc_common Hashtbl Heapsim List Printf Repro_util Vmsim

lib/core/residency.mli:

lib/core/superpage.mli: Heapsim Repro_util

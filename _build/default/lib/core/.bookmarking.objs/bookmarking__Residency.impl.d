lib/core/residency.ml: List Repro_util

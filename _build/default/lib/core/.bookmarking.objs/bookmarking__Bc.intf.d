lib/core/bc.mli: Gc_common Residency Superpage

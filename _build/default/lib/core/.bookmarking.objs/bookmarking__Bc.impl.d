lib/core/bc.ml: Array Baselines Fun Gc_common Hashtbl Heapsim List Option Printf Repro_util Residency Superpage Sys Vmsim

(** BC's mature space: segregated size classes over superpages (§3, §3.4).

    A superpage is four contiguous, 16 KB-aligned pages. Its first
    {!header_bytes} hold metadata (size class, scalar/array tag, the
    incoming-bookmark counter) locatable by bit-masking; because the
    metadata lives on the first page, that {e header page} is never
    evicted, keeping counter updates fault-free. Superpages hold either
    only scalars or only arrays (§4: Jikes places scalar and array headers
    at opposite ends, so BC segregates them to locate objects on a page).

    Cells are carved from the remaining bytes and may span pages within
    the superpage. Cells whose pages are not resident are never handed
    out; they are parked on a blocked list until the page reloads. *)

type kind = Scalar | Array

type sp = {
  index : int;  (** dense superpage index *)
  first_page : int;  (** the header page *)
  mutable cls : int;
  mutable kind : kind;
  mutable cells_total : int;
  free : int Repro_util.Vec.t;  (** free cell addresses (resident) *)
  blocked : int Repro_util.Vec.t;  (** free cells on non-resident pages *)
  mutable on_partial : bool;
  mutable incoming : int;  (** # evicted pages with pointers into this sp *)
  mutable evicted_data_pages : int;
}

type t

val header_bytes : int

val usable_bytes : int
(** Bytes available for cells per superpage. *)

val create : ?on_acquire:(sp -> unit) -> Heapsim.Heap.t -> t
(** [on_acquire] fires whenever a brand-new superpage is mapped (before
    any cell from it is handed out) — BC uses it to mark the pages
    resident in its bit array ("whenever BC allocates a new superpage …
    it increases the estimate of the current footprint and marks the
    pages as resident", §3.3.1). *)

val set_on_acquire : t -> (sp -> unit) -> unit

val heap : t -> Heapsim.Heap.t

val alloc :
  t ->
  bytes:int ->
  kind:kind ->
  grow:(unit -> bool) ->
  resident:(int -> bool) ->
  (int * sp) option
(** Allocate a cell. Cells overlapping non-resident pages are skipped
    (parked on [blocked]); acquiring a fresh superpage consults [grow].
    Returns the cell address and its superpage. On success the caller owns
    marking the cell's pages resident. *)

val free_cell : t -> sp -> addr:int -> unit
(** Return a cell to its superpage's free list. *)

val alloc_on : t -> sp -> resident:(int -> bool) -> int option
(** Pop a usable cell from a specific superpage (compaction targets). *)

val sp_of_page : t -> int -> sp option

val sp_of_addr : t -> int -> sp option

val owns_page : t -> int -> bool

val is_header_page : t -> int -> bool

val data_pages : sp -> int list
(** The three evictable pages of a superpage. *)

val iter_sps : t -> (sp -> unit) -> unit

val sp_count : t -> int

val pages_acquired : t -> int

val free_bytes : t -> int
(** Bytes in allocatable (resident) free cells plus empty-pool
    superpages. *)

val note_page_evicted : t -> int -> unit
(** Track an evicted data page; also parks free cells overlapping it. *)

val note_page_resident : t -> int -> resident:(int -> bool) -> unit
(** Track a reloaded data page and un-park blocked cells that are now
    fully usable under the [resident] predicate. *)

val recycle_empty : t -> resident:(int -> bool) -> unit
(** Move superpages with no live objects, no evicted pages and no incoming
    bookmarks to the empty pool for reassignment to any class. *)

val cells_overlapping_page : sp -> int -> int
(** How many of the superpage's cell slots overlap the given page. *)

val live_count : t -> sp -> int
(** Live objects currently placed on the superpage (via the page map). *)

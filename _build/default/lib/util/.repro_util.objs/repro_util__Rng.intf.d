lib/util/rng.mli:

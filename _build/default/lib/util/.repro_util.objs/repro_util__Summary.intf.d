lib/util/summary.mli:

lib/util/bitset.mli:

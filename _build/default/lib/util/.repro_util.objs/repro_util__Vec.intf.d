lib/util/vec.mli:

let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
      let logs = List.map Float.log xs in
      Float.exp (sum logs /. float_of_int (List.length xs))

let max = function
  | [] -> 0.0
  | x :: xs -> List.fold_left Float.max x xs

let percentile p = function
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
      a.(Stdlib.max 0 (Stdlib.min (n - 1) rank))

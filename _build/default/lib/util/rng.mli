(** Deterministic pseudo-random number generator (splitmix64).

    Every workload owns its own generator so runs are reproducible and
    independent of collector behaviour. *)

type t

val create : int -> t
(** [create seed] builds a generator. The same seed yields the same
    sequence on every platform. *)

val split : t -> t
(** Derive an independent generator (for sub-streams). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val geometric : t -> float -> int
(** [geometric t p] samples the number of failures before the first success
    of a Bernoulli([p]) trial; mean [(1-p)/p]. [p] must be in (0, 1]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean. *)

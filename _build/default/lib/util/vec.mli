(** Growable arrays of arbitrary elements.

    A thin, allocation-conscious replacement for [Dynarray] (which is not
    available in OCaml 5.1). Elements are stored in a contiguous array that
    doubles when full. All indices are 0-based. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty vector. [capacity] pre-sizes the backing store. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] raises [Invalid_argument] when [i] is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** Append an element, growing the backing store if needed. *)

val pop : 'a t -> 'a
(** Remove and return the last element. Raises [Invalid_argument] when
    empty. *)

val top : 'a t -> 'a
(** Last element without removing it. Raises [Invalid_argument] when
    empty. *)

val clear : 'a t -> unit
(** Logical clear; capacity is retained. Elements are dropped (no explicit
    zeroing, callers must not rely on finalisation timing). *)

val swap_remove : 'a t -> int -> 'a
(** [swap_remove v i] removes index [i] in O(1) by moving the last element
    into its place, and returns the removed element. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val to_array : 'a t -> 'a array

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)

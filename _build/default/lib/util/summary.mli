(** Summary statistics over float samples. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list. All samples must be positive. *)

val max : float list -> float
(** Maximum; 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0,1\]], nearest-rank on the sorted
    samples; 0 on the empty list. *)

val sum : float list -> float

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let x = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  x mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else begin
    let u = float t 1.0 in
    let u = if u <= 0.0 then 1e-300 else u in
    int_of_float (Float.log u /. Float.log (1.0 -. p))
  end

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. Float.log u

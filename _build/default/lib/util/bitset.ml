type t = { mutable words : int array }

let bits_per_word = 63
(* OCaml ints: use 63 usable bits per word on 64-bit platforms. *)

let create ?(capacity = 0) () =
  { words = Array.make (max 1 ((capacity / bits_per_word) + 1)) 0 }

let ensure t i =
  let w = i / bits_per_word in
  if w >= Array.length t.words then begin
    let len' = max (w + 1) (2 * Array.length t.words) in
    let words' = Array.make len' 0 in
    Array.blit t.words 0 words' 0 (Array.length t.words);
    t.words <- words'
  end

let set t i =
  if i < 0 then invalid_arg "Bitset.set: negative index";
  ensure t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  if i >= 0 then begin
    let w = i / bits_per_word in
    if w < Array.length t.words then begin
      let b = i mod bits_per_word in
      t.words.(w) <- t.words.(w) land lnot (1 lsl b)
    end
  end

let mem t i =
  i >= 0
  &&
  let w = i / bits_per_word in
  w < Array.length t.words
  && t.words.(w) land (1 lsl (i mod bits_per_word)) <> 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x lsr 1) (acc + (x land 1)) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let capacity t = Array.length t.words * bits_per_word

let reset t = Array.fill t.words 0 (Array.length t.words) 0

let iter f t =
  Array.iteri
    (fun w word ->
      if word <> 0 then
        for b = 0 to bits_per_word - 1 do
          if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
        done)
    t.words

let first_set_from t i =
  let i = max i 0 in
  let nwords = Array.length t.words in
  let rec scan_word w b =
    if w >= nwords then None
    else if t.words.(w) = 0 || b >= bits_per_word then scan_word (w + 1) 0
    else if t.words.(w) land (1 lsl b) <> 0 then Some ((w * bits_per_word) + b)
    else scan_word w (b + 1)
  in
  scan_word (i / bits_per_word) (i mod bits_per_word)

let word_peers t i =
  let w = i / bits_per_word in
  if w >= Array.length t.words then []
  else begin
    let word = t.words.(w) in
    let acc = ref [] in
    for b = bits_per_word - 1 downto 0 do
      if word land (1 lsl b) <> 0 then acc := ((w * bits_per_word) + b) :: !acc
    done;
    !acc
  end

examples/multi_jvm.ml: Float Format Harness List Vmsim Workload

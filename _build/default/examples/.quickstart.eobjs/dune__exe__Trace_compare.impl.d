examples/trace_compare.ml: Format Gc_common Harness Heapsim List Vmsim Workload

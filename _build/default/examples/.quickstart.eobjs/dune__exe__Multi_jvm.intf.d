examples/multi_jvm.mli:

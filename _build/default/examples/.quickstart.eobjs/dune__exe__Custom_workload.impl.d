examples/custom_workload.ml: Format Harness List Workload

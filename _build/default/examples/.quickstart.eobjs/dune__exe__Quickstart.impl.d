examples/quickstart.ml: Bookmarking Format Gc_common Harness Heapsim Vmsim Workload

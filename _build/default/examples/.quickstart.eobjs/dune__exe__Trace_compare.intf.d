examples/trace_compare.mli:

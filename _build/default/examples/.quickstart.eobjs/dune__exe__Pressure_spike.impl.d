examples/pressure_spike.ml: Format Harness List Vmsim Workload

examples/quickstart.mli:

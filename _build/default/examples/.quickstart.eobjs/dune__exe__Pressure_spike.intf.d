examples/pressure_spike.mli:

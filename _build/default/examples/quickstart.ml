(* Quickstart: build a simulated machine, run the bookmarking collector
   on it, squeeze physical memory, and watch BC give pages back instead
   of paging.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* a machine: virtual clock, a VMM with 2048 page frames (8 MB) *)
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames:2048 () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"app" in
  let heap = Heapsim.Heap.create vmm proc in

  (* the bookmarking collector with a 4 MB heap *)
  let bc = Harness.Registry.create ~name:"BC" ~heap_bytes:(4 * 1024 * 1024) heap in

  (* allocate a linked list of 10,000 objects and keep it alive *)
  let head = ref Heapsim.Obj_id.null in
  Heapsim.Heap.set_roots heap (fun root ->
      if not (Heapsim.Obj_id.is_null !head) then root !head);
  for _ = 1 to 10_000 do
    let id = bc.Gc_common.Collector.alloc ~size:64 ~nrefs:1 ~kind:`Scalar in
    if not (Heapsim.Obj_id.is_null !head) then
      Heapsim.Heap.write_ref heap id 0 !head;
    head := id
  done;

  (* plus plenty of garbage *)
  for _ = 1 to 50_000 do
    ignore (bc.Gc_common.Collector.alloc ~size:64 ~nrefs:0 ~kind:`Scalar)
  done;

  bc.Gc_common.Collector.collect ();
  Format.printf "after a full collection: %a@." Gc_common.Gc_stats.pp
    bc.Gc_common.Collector.stats;

  (* now another process pins most of physical memory *)
  let signalmem =
    Workload.Signalmem.create vmm (Heapsim.Heap.address_space heap)
  in
  Workload.Signalmem.pin_pages signalmem (2048 - 110);
  Format.printf "squeezed to 110 frames: %a@." Vmsim.Vm_stats.pp
    (Vmsim.Process.stats proc);

  (* BC keeps collecting without touching whatever was evicted *)
  let faults_before = (Vmsim.Process.stats proc).Vmsim.Vm_stats.major_faults in
  bc.Gc_common.Collector.collect ();
  Format.printf
    "full collection under pressure touched %d evicted pages (paper: zero)@."
    ((Vmsim.Process.stats proc).Vmsim.Vm_stats.major_faults - faults_before);
  let dbg = Bookmarking.Bc.debug_of bc in
  Format.printf "bookmarked objects: %d, evicted pages: %d@."
    (dbg.Bookmarking.Bc.bookmarked_count ())
    (dbg.Bookmarking.Bc.evicted_pages ())

(* End-to-end checks of the bcgc command-line interface: each subcommand
   runs against the built binary. *)

let bcgc args =
  (* resolve the binary relative to this test executable, so the test
     works regardless of the invocation directory *)
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "bcgc.exe"))
  in
  Sys.command
    (Filename.quote_command exe args ~stdout:"/dev/null" ~stderr:"/dev/null")

let check = Alcotest.check

let test_list () = check Alcotest.int "list" 0 (bcgc [ "list" ])

let test_run () =
  check Alcotest.int "run" 0
    (bcgc
       [ "run"; "-c"; "BC"; "-w"; "_202_jess"; "--heap-kb"; "2048"; "--volume"; "0.02" ])

let test_run_pressure () =
  check Alcotest.int "run with pin" 0
    (bcgc
       [
         "run"; "-c"; "GenMS"; "-w"; "_202_jess"; "--heap-kb"; "4096";
         "--volume"; "0.05"; "--frames"; "1200"; "--pin"; "800"; "-v";
       ])

let test_minheap () =
  check Alcotest.int "minheap" 0
    (bcgc [ "minheap"; "-c"; "GenMS"; "-w"; "_202_jess"; "--volume"; "0.02" ])

let test_trace_roundtrip () =
  let tmp = Filename.temp_file "bcgc" ".trace" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      check Alcotest.int "trace-record" 0
        (bcgc
           [ "trace-record"; "-w"; "_202_jess"; "--volume"; "0.01";
             "--heap-kb"; "4096"; "-o"; tmp ]);
      check Alcotest.int "trace-replay" 0
        (bcgc [ "trace-replay"; "-c"; "BC"; "-i"; tmp; "--heap-kb"; "2048" ]))

let test_unknown_collector_fails () =
  check Alcotest.bool "unknown collector rejected" true
    (bcgc [ "run"; "-c"; "NoSuchGC" ] <> 0)

let () =
  Alcotest.run "cli"
    [
      ( "bcgc",
        [
          Alcotest.test_case "list" `Quick test_list;
          Alcotest.test_case "run" `Quick test_run;
          Alcotest.test_case "run under pressure" `Quick test_run_pressure;
          Alcotest.test_case "minheap" `Quick test_minheap;
          Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "unknown collector" `Quick
            test_unknown_collector_fails;
        ] );
    ]

module Mini = Test_support.Mini
module Bump = Gc_common.Bump_space
module Ms = Gc_common.Ms_space
module Los = Gc_common.Large_object_space
module OT = Heapsim.Object_table
module Heap = Heapsim.Heap

let check = Alcotest.check

(* ----------------------------------------------------------------- *)
(* Bump_space                                                         *)

let test_bump_basic () =
  let m = Mini.machine () in
  let b = Bump.create m.Mini.heap ~name:"b" ~npages:4 in
  check Alcotest.int "capacity" (4 * 4096) (Bump.capacity_bytes b);
  let a1 = Bump.alloc b ~bytes:100 ~limit_bytes:max_int in
  let a2 = Bump.alloc b ~bytes:100 ~limit_bytes:max_int in
  (match (a1, a2) with
  | Some x, Some y ->
      check Alcotest.int "contiguous bump" (x + 100) y;
      check Alcotest.bool "contains" true (Bump.contains b x)
  | _ -> Alcotest.fail "allocations failed");
  check Alcotest.int "used" 200 (Bump.used_bytes b);
  check Alcotest.int "used pages" 1 (Bump.used_pages b)

let test_bump_limit () =
  let m = Mini.machine () in
  let b = Bump.create m.Mini.heap ~name:"b" ~npages:4 in
  check Alcotest.bool "limit enforced" true
    (Bump.alloc b ~bytes:300 ~limit_bytes:200 = None);
  check Alcotest.bool "capacity enforced" true
    (Bump.alloc b ~bytes:(5 * 4096) ~limit_bytes:max_int = None);
  ignore (Bump.alloc b ~bytes:100 ~limit_bytes:max_int);
  Bump.reset b;
  check Alcotest.int "reset" 0 (Bump.used_bytes b)

(* ----------------------------------------------------------------- *)
(* Ms_space                                                           *)

let ms_fixture () =
  let m = Mini.machine () in
  let ms = Ms.create m.Mini.heap ~name:"ms" ~max_cell:2048 in
  (m, ms)

let test_ms_alloc_same_page () =
  let _, ms = ms_fixture () in
  let a = Ms.alloc ms ~bytes:100 ~grow:(fun () -> true) in
  let b = Ms.alloc ms ~bytes:100 ~grow:(fun () -> true) in
  (match (a, b) with
  | Some x, Some y ->
      check Alcotest.int "same page"
        (Vmsim.Page.of_addr x) (Vmsim.Page.of_addr y)
  | _ -> Alcotest.fail "alloc failed");
  check Alcotest.int "one page acquired" 1 (Ms.pages_acquired ms)

let test_ms_grow_denied () =
  let _, ms = ms_fixture () in
  check Alcotest.bool "denied" true
    (Ms.alloc ms ~bytes:64 ~grow:(fun () -> false) = None)

let test_ms_sweep_frees_unmarked () =
  let m, ms = ms_fixture () in
  let heap = m.Mini.heap in
  let objects = Heap.objects heap in
  let place size =
    let addr = Option.get (Ms.alloc ms ~bytes:size ~grow:(fun () -> true)) in
    let id = OT.alloc objects ~size ~nrefs:0 ~kind:`Scalar in
    Heap.place heap id ~addr;
    id
  in
  let live = place 64 in
  let dead = place 64 in
  OT.set_marked objects live true;
  let free_before = Ms.free_bytes ms in
  Ms.sweep ms;
  check Alcotest.bool "live survives unmarked-for-next-cycle" true
    (OT.is_live objects live && not (OT.marked objects live));
  check Alcotest.bool "dead freed" false (OT.is_live objects dead);
  check Alcotest.bool "cell returned" true (Ms.free_bytes ms > free_before)

let test_ms_empty_page_recycled () =
  let m, ms = ms_fixture () in
  let heap = m.Mini.heap in
  let objects = Heap.objects heap in
  (* fill a page with one class, kill everything, then allocate a very
     different class: the page must be reusable *)
  let ids =
    List.init 10 (fun _ ->
        let addr = Option.get (Ms.alloc ms ~bytes:2048 ~grow:(fun () -> true)) in
        let id = OT.alloc objects ~size:2048 ~nrefs:0 ~kind:`Scalar in
        Heap.place heap id ~addr;
        id)
  in
  ignore ids;
  let pages_before = Ms.pages_acquired ms in
  Ms.sweep ms;
  (* nothing marked: all dead, pages wholly empty *)
  let got = ref 0 in
  for _ = 1 to 10 do
    match Ms.alloc ms ~bytes:8 ~grow:(fun () -> false) with
    | Some _ -> incr got
    | None -> ()
  done;
  check Alcotest.bool "recycled page served a different class" true (!got > 0);
  check Alcotest.int "no new pages" pages_before (Ms.pages_acquired ms)

let test_ms_owns_page () =
  let _, ms = ms_fixture () in
  let addr = Option.get (Ms.alloc ms ~bytes:64 ~grow:(fun () -> true)) in
  check Alcotest.bool "owns" true (Ms.owns_page ms (Vmsim.Page.of_addr addr));
  check Alcotest.bool "not owns" false (Ms.owns_page ms 99999)

(* Accounting property: alloc/sweep cycles keep free_bytes consistent
   with what a reference count says. *)
let prop_ms_accounting =
  QCheck.Test.make ~name:"ms_space sweep frees exactly the unmarked"
    ~count:50
    QCheck.(small_list (pair (int_range 8 2048) bool))
    (fun plan ->
      let m, ms = ms_fixture () in
      let heap = m.Mini.heap in
      let objects = Heap.objects heap in
      let placed =
        List.filter_map
          (fun (size, keep) ->
            match Ms.alloc ms ~bytes:size ~grow:(fun () -> true) with
            | None -> None
            | Some addr ->
                let id = OT.alloc objects ~size ~nrefs:0 ~kind:`Scalar in
                Heap.place heap id ~addr;
                if keep then OT.set_marked objects id true;
                Some (id, keep))
          plan
      in
      Ms.sweep ms;
      List.for_all (fun (id, keep) -> OT.is_live objects id = keep) placed)

(* ----------------------------------------------------------------- *)
(* Large_object_space                                                 *)

let test_los_alloc_sweep () =
  let m = Mini.machine () in
  let heap = m.Mini.heap in
  let objects = Heap.objects heap in
  let los = Los.create heap ~name:"los" in
  let addr = Option.get (Los.alloc los ~bytes:10_000 ~grow:(fun ~npages:_ -> true)) in
  let id = OT.alloc objects ~size:10_000 ~nrefs:0 ~kind:`Array in
  Heap.place heap id ~addr;
  Los.note_object los id;
  check Alcotest.int "pages for 10000 bytes" 3 (Los.pages_in_use los);
  check Alcotest.bool "owns" true (Los.owns_page los (Vmsim.Page.of_addr addr));
  (* survives marked *)
  OT.set_marked objects id true;
  Los.sweep los;
  check Alcotest.bool "marked survives" true (OT.is_live objects id);
  (* dies unmarked, pages unmapped *)
  Los.sweep los;
  check Alcotest.bool "unmarked dies" false (OT.is_live objects id);
  check Alcotest.int "pages released" 0 (Los.pages_in_use los)

let test_los_grow_denied () =
  let m = Mini.machine () in
  let los = Los.create m.Mini.heap ~name:"los" in
  check Alcotest.bool "denied" true
    (Los.alloc los ~bytes:10_000 ~grow:(fun ~npages:_ -> false) = None)

(* ----------------------------------------------------------------- *)
(* Remset / Card_table / Write_buffer                                 *)

let test_remset () =
  let r = Gc_common.Remset.create () in
  Gc_common.Remset.record r ~src:1 ~field:0;
  Gc_common.Remset.record r ~src:2 ~field:3;
  check Alcotest.int "length" 2 (Gc_common.Remset.length r);
  let seen = ref [] in
  Gc_common.Remset.drain r (fun ~src ~field -> seen := (src, field) :: !seen);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "drained"
    [ (2, 3); (1, 0) ] !seen;
  check Alcotest.int "cleared" 0 (Gc_common.Remset.length r)

let test_card_table () =
  let c = Gc_common.Card_table.create () in
  Gc_common.Card_table.mark_addr c 1000;
  Gc_common.Card_table.mark_addr c 1020;
  (* same 512-byte card *)
  check Alcotest.int "dedup within card" 1 (Gc_common.Card_table.dirty_count c);
  Gc_common.Card_table.mark_addr c 5000;
  check Alcotest.int "two cards" 2 (Gc_common.Card_table.dirty_count c);
  check Alcotest.bool "marked addr" true
    (Gc_common.Card_table.is_marked_addr c 1023);
  let cards = ref [] in
  Gc_common.Card_table.drain c (fun a -> cards := a :: !cards);
  check (Alcotest.list Alcotest.int) "card base addresses" [ 4608; 512 ]
    !cards;
  check Alcotest.int "drained" 0 (Gc_common.Card_table.dirty_count c)

let test_write_buffer_filtering () =
  let m = Mini.machine () in
  let heap = m.Mini.heap in
  let objects = Heap.objects heap in
  let cards = Gc_common.Card_table.create () in
  (* two sources: a "mature" one (filterable) and a "young" one *)
  let mature = OT.alloc objects ~size:16 ~nrefs:1 ~kind:`Scalar in
  let young = OT.alloc objects ~size:16 ~nrefs:1 ~kind:`Scalar in
  OT.set_addr objects mature 40_000;
  OT.set_addr objects young 80_000;
  let wb =
    Gc_common.Write_buffer.create ~cards
      ~src_addr:(fun id -> OT.addr objects id)
      ~filterable:(fun id -> id = mature)
      ()
  in
  (* fill the buffer past a page of entries *)
  for _ = 1 to Gc_common.Write_buffer.entries_per_page do
    Gc_common.Write_buffer.record wb ~src:mature ~field:0
  done;
  Gc_common.Write_buffer.record wb ~src:young ~field:0;
  check Alcotest.int "one overflow" 1 (Gc_common.Write_buffer.overflow_count wb);
  (* the mature entries collapsed into a card mark *)
  check Alcotest.bool "card marked for mature source" true
    (Gc_common.Card_table.is_marked_addr cards 40_000);
  check Alcotest.bool "buffer kept only unfiltered slots" true
    (Gc_common.Write_buffer.length wb <= 2);
  let survivors = ref [] in
  Gc_common.Write_buffer.drain wb (fun ~src ~field:_ -> survivors := src :: !survivors);
  check Alcotest.bool "young slot survived the filter" true
    (List.mem young !survivors)

let test_nested_pause_single_interval () =
  let clock = Vmsim.Clock.create () in
  let stats = Gc_common.Gc_stats.create () in
  Gc_common.Gc_stats.time_pause stats clock Gc_common.Gc_stats.Full (fun () ->
      Vmsim.Clock.advance clock 1000;
      (* a collection triggered from within a collection (e.g. via an
         eviction notice) folds into the enclosing pause *)
      Gc_common.Gc_stats.time_pause stats clock Gc_common.Gc_stats.Minor
        (fun () -> Vmsim.Clock.advance clock 500));
  check Alcotest.int "one pause recorded" 1
    (List.length (Gc_common.Gc_stats.pauses stats));
  check Alcotest.int "outer kind counted" 1
    (Gc_common.Gc_stats.count stats Gc_common.Gc_stats.Full);
  check Alcotest.int "inner kind folded" 0
    (Gc_common.Gc_stats.count stats Gc_common.Gc_stats.Minor);
  match Gc_common.Gc_stats.pauses stats with
  | [ p ] -> check Alcotest.int "full duration" 1500 p.Gc_common.Gc_stats.duration_ns
  | _ -> Alcotest.fail "expected one pause"

let () =
  Alcotest.run "spaces"
    [
      ( "bump",
        [
          Alcotest.test_case "basic" `Quick test_bump_basic;
          Alcotest.test_case "limits" `Quick test_bump_limit;
        ] );
      ( "mark-sweep space",
        [
          Alcotest.test_case "same page" `Quick test_ms_alloc_same_page;
          Alcotest.test_case "grow denied" `Quick test_ms_grow_denied;
          Alcotest.test_case "sweep" `Quick test_ms_sweep_frees_unmarked;
          Alcotest.test_case "page recycling" `Quick test_ms_empty_page_recycled;
          Alcotest.test_case "ownership" `Quick test_ms_owns_page;
        ] );
      ( "large objects",
        [
          Alcotest.test_case "alloc/sweep" `Quick test_los_alloc_sweep;
          Alcotest.test_case "grow denied" `Quick test_los_grow_denied;
        ] );
      ( "remembered sets",
        [
          Alcotest.test_case "remset" `Quick test_remset;
          Alcotest.test_case "card table" `Quick test_card_table;
          Alcotest.test_case "write buffer filter" `Quick
            test_write_buffer_filtering;
        ] );
      ( "pauses",
        [
          Alcotest.test_case "nested pause folds" `Quick
            test_nested_pause_single_interval;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_ms_accounting ]);
    ]

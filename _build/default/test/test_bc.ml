(* Bookmarking-collector specifics: eviction handling, bookmark and
   counter invariants, discarding, compaction, heap-footprint limiting
   and the completeness fail-safe. *)

module Mini = Test_support.Mini
module Oracle = Test_support.Oracle
module OT = Heapsim.Object_table
module Heap = Heapsim.Heap
module Collector = Gc_common.Collector
module Gc_stats = Gc_common.Gc_stats
module Bc = Bookmarking.Bc
module Vm_stats = Vmsim.Vm_stats

let check = Alcotest.check

(* A BC instance under explicit control, plus a signalmem to squeeze it. *)
let fixture ?(name = "BC") ?(heap_bytes = 1024 * 1024) ?(frames = 512) () =
  let m = Mini.machine ~frames () in
  let c = Harness.Registry.create ~name ~heap_bytes m.Mini.heap in
  let signalmem =
    Workload.Signalmem.create m.Mini.vmm (Heap.address_space m.Mini.heap)
  in
  (m, c, signalmem, Bc.debug_of c)

let squeeze m signalmem ~leave =
  let frames = Vmsim.Vmm.capacity m.Mini.vmm in
  Workload.Signalmem.pin_pages signalmem
    (frames - Vmsim.Vmm.resident_count m.Mini.vmm
    + (Vmsim.Vmm.resident_count m.Mini.vmm - leave))

let test_debug_of_rejects_baselines () =
  let _, c = Mini.collector "GenMS" in
  Alcotest.check_raises "not BC"
    (Invalid_argument "Bc.debug_of: not a bookmarking collector instance")
    (fun () -> ignore (Bc.debug_of c))

let test_eviction_creates_bookmarks () =
  let m, c, signalmem, dbg = fixture () in
  let ids = Mini.alloc_list c ~n:3000 ~size:64 in
  ignore ids;
  (* move everything to the mature space so pages are evictable *)
  c.Collector.collect ();
  squeeze m signalmem ~leave:40;
  check Alcotest.bool "pages evicted" true (dbg.Bc.evicted_pages () > 0);
  check Alcotest.bool "bookmarks set" true (dbg.Bc.bookmarked_count () > 0);
  check Alcotest.bool "ledger mirrors counters" true
    (dbg.Bc.incoming_total () = dbg.Bc.ledger_total ());
  c.Collector.check_invariants ();
  Oracle.check m.Mini.heap

let test_collection_avoids_evicted_pages () =
  let m, c, signalmem, dbg = fixture () in
  ignore (Mini.alloc_list c ~n:3000 ~size:64);
  c.Collector.collect ();
  squeeze m signalmem ~leave:40;
  check Alcotest.bool "setup evicted pages" true (dbg.Bc.evicted_pages () > 0);
  let faults_before =
    (Vmsim.Process.stats m.Mini.proc).Vm_stats.major_faults
  in
  c.Collector.collect ();
  let faults =
    (Vmsim.Process.stats m.Mini.proc).Vm_stats.major_faults - faults_before
  in
  check Alcotest.int "full collection touches no evicted page" 0 faults;
  check Alcotest.bool "evicted pages survived the collection" true
    (dbg.Bc.evicted_pages () > 0);
  Oracle.check m.Mini.heap

let test_resize_only_pays_faults () =
  let m, c, signalmem, dbg = fixture ~name:"BC-resize" () in
  ignore (Mini.alloc_list c ~n:3000 ~size:64);
  c.Collector.collect ();
  squeeze m signalmem ~leave:40;
  check Alcotest.bool "pages evicted" true (dbg.Bc.evicted_pages () > 0);
  check Alcotest.int "no bookmarks without the mechanism" 0
    (dbg.Bc.bookmarked_count ());
  let before = (Vmsim.Process.stats m.Mini.proc).Vm_stats.major_faults in
  c.Collector.collect ();
  let faults =
    (Vmsim.Process.stats m.Mini.proc).Vm_stats.major_faults - before
  in
  check Alcotest.bool "resizing-only collection faults" true (faults > 0)

let test_reload_clears_bookmarks () =
  let m, c, signalmem, dbg = fixture () in
  let ids = Mini.alloc_list c ~n:3000 ~size:64 in
  c.Collector.collect ();
  squeeze m signalmem ~leave:40;
  check Alcotest.bool "bookmarks set" true (dbg.Bc.bookmarked_count () > 0);
  (* release the pressure and touch every object: all pages reload *)
  Workload.Signalmem.unpin_all signalmem;
  List.iter
    (fun id ->
      if OT.is_live (Heap.objects m.Mini.heap) id then
        Heap.access m.Mini.heap id)
    ids;
  check Alcotest.int "all pages back" 0 (dbg.Bc.evicted_pages ());
  check Alcotest.int "all bookmarks cleared" 0 (dbg.Bc.bookmarked_count ());
  check Alcotest.int "all counters released" 0 (dbg.Bc.incoming_total ());
  check Alcotest.int "ledger empty" 0 (dbg.Bc.ledger_total ());
  c.Collector.check_invariants ();
  Oracle.check m.Mini.heap

let test_header_pages_stay_resident () =
  let m, c, signalmem, dbg = fixture () in
  ignore (Mini.alloc_list c ~n:3000 ~size:64);
  c.Collector.collect ();
  squeeze m signalmem ~leave:40;
  Bookmarking.Superpage.iter_sps dbg.Bc.superpages (fun sp ->
      if sp.Bookmarking.Superpage.cells_total > 0 then
        check Alcotest.bool "in-use header resident" true
          (Vmsim.Vmm.is_resident m.Mini.vmm sp.Bookmarking.Superpage.first_page))

let test_footprint_target_shrinks () =
  let m, c, signalmem, dbg = fixture () in
  ignore (Mini.alloc_list c ~n:3000 ~size:64);
  c.Collector.collect ();
  check Alcotest.bool "no target before pressure" true
    (dbg.Bc.target_footprint () = None);
  squeeze m signalmem ~leave:60;
  check Alcotest.bool "target set under pressure" true
    (dbg.Bc.target_footprint () <> None)

let test_discards_empty_pages_first () =
  let m, c, signalmem, dbg = fixture () in
  (* allocate garbage, collect: the heap now holds many empty pages *)
  ignore (Mini.alloc_list c ~n:3000 ~size:64);
  Heap.set_roots m.Mini.heap (fun _ -> ());
  c.Collector.collect ();
  c.Collector.collect ();
  let before = (Vmsim.Process.stats m.Mini.proc).Vm_stats.discards in
  squeeze m signalmem ~leave:24;
  let discards =
    (Vmsim.Process.stats m.Mini.proc).Vm_stats.discards - before
  in
  check Alcotest.bool "empty pages discarded, not swapped" true (discards > 0);
  check Alcotest.int "nothing needed bookmarking" 0 (dbg.Bc.evicted_pages ())

let test_compaction_shrinks_superpages () =
  let m, c, _, dbg = fixture ~heap_bytes:(1280 * 1024) ~frames:2048 () in
  let heap = m.Mini.heap in
  let objects = Heap.objects heap in
  (* fragment the mature space: many small objects, then kill 9 of 10 so
     every superpage stays partially occupied *)
  let ids = Array.of_list (Mini.alloc_list c ~n:8000 ~size:96) in
  c.Collector.collect ();
  let keep = ref [] in
  Array.iteri (fun i id -> if i mod 10 = 0 then keep := id :: !keep) ids;
  let kept = !keep in
  (* the new allocations below must also stay rooted *)
  let news = ref [] in
  Heap.set_roots heap (fun f ->
      List.iter f kept;
      List.iter f !news);
  (* sever the chain links so the dead objects really die *)
  List.iter (fun id -> Heap.write_ref heap id 0 Heapsim.Obj_id.null) kept;
  c.Collector.collect ();
  let stats = c.Collector.stats in
  let before = Gc_stats.count stats Gc_stats.Compacting in
  (* a large-object demand the fragmented class-96 superpages cannot
     serve: only compaction can consolidate them into free superpages *)
  for _ = 1 to 600 do
    news := c.Collector.alloc ~size:1024 ~nrefs:0 ~kind:`Scalar :: !news
  done;
  let compactions = Gc_stats.count stats Gc_stats.Compacting - before in
  check Alcotest.bool "compaction ran" true (compactions > 0);
  List.iter
    (fun id -> check Alcotest.bool "survivor intact" true (OT.is_live objects id))
    kept;
  c.Collector.check_invariants ();
  ignore dbg;
  Oracle.check m.Mini.heap

let test_failsafe_preserves_completeness () =
  (* exhaust the heap while pages are evicted: BC must discard bookmarks,
     take the faults, and reclaim the (bookmarked) garbage *)
  let m, c, signalmem, dbg = fixture ~heap_bytes:(640 * 1024) ~frames:384 () in
  let heap = m.Mini.heap in
  ignore (Mini.alloc_list c ~n:3000 ~size:64);
  c.Collector.collect ();
  squeeze m signalmem ~leave:32;
  check Alcotest.bool "pages evicted" true (dbg.Bc.evicted_pages () > 0);
  (* drop all roots: the evicted objects are garbage BC cannot see *)
  Heap.set_roots heap (fun _ -> ());
  Workload.Signalmem.unpin_all signalmem;
  (* demand more than mark-sweep-with-bookmarks can free *)
  let survived =
    match Mini.alloc_list c ~n:8000 ~size:64 with
    | _ -> true
    | exception Collector.Heap_exhausted _ -> false
  in
  check Alcotest.bool "allocation eventually satisfied" true survived;
  check Alcotest.bool "fail-safe collection ran" true
    (dbg.Bc.failsafe_count () > 0);
  Oracle.check heap

let test_invariants_hold_through_pressure_workload () =
  let heap_bytes = 1024 * 1024 in
  let frames = 360 in
  let m = Mini.machine ~frames () in
  let c = Harness.Registry.create ~name:"BC" ~heap_bytes m.Mini.heap in
  let dbg = Bc.debug_of c in
  let signalmem =
    Workload.Signalmem.create m.Mini.vmm (Heap.address_space m.Mini.heap)
  in
  let mutator = Workload.Mutator.create (Mini.spec ~volume:900_000 ()) c in
  Mini.drive mutator ~between:(fun slice ->
      if slice = 3 then Workload.Signalmem.pin_pages signalmem 180;
      if slice mod 8 = 0 then begin
        c.Collector.check_invariants ();
        Oracle.check m.Mini.heap
      end);
  check Alcotest.bool "bookmarking was exercised" true
    ((Vmsim.Process.stats m.Mini.proc).Vm_stats.relinquished > 0
    || (Vmsim.Process.stats m.Mini.proc).Vm_stats.discards > 0);
  ignore dbg

let test_pointer_aware_victims () =
  (* two cold regions: pointer-free arrays and pointer-heavy records.
     The pointer-aware variant should evict the arrays, leaving fewer
     bookmarks than stock BC in the identical scenario. *)
  let scenario name =
    let m = Mini.machine ~frames:512 () in
    let c = Harness.Registry.create ~name ~heap_bytes:(1024 * 1024) m.Mini.heap in
    let dbg = Bc.debug_of c in
    let heap = m.Mini.heap in
    let keep = ref [] in
    Heapsim.Heap.set_roots heap (fun f -> List.iter f !keep);
    (* pointer-heavy: chained records *)
    let prev = ref Heapsim.Obj_id.null in
    for _ = 1 to 1500 do
      let id = c.Collector.alloc ~size:64 ~nrefs:2 ~kind:`Scalar in
      if not (Heapsim.Obj_id.is_null !prev) then
        Heapsim.Heap.write_ref heap id 0 !prev;
      prev := id;
      keep := id :: !keep
    done;
    (* pointer-free: arrays of doubles *)
    for _ = 1 to 1500 do
      let id = c.Collector.alloc ~size:64 ~nrefs:0 ~kind:`Array in
      keep := id :: !keep
    done;
    c.Collector.collect ();
    let signalmem =
      Workload.Signalmem.create m.Mini.vmm (Heap.address_space heap)
    in
    squeeze m signalmem ~leave:36;
    Oracle.check heap;
    c.Collector.check_invariants ();
    (dbg.Bc.evicted_pages (), dbg.Bc.incoming_total ())
  in
  let evicted_plain, incoming_plain = scenario "BC" in
  let evicted_aware, incoming_aware = scenario "BC-ptraware" in
  check Alcotest.bool "both evicted" true (evicted_plain > 0 && evicted_aware > 0);
  (* conservative self-bookmarks are unavoidable, but preferring
     pointer-poor victims leaves fewer cross-superpage references from
     disk (lower incoming counters = less false garbage) *)
  check Alcotest.bool "pointer-aware victims leave fewer incoming refs" true
    (incoming_aware < incoming_plain)

let test_cooper_discards_but_does_not_bookmark () =
  (* the Cooper-style collector (related work, §6) discards empty pages on
     eviction signals but pays faults when its collections touch evicted
     pages — between stock GenMS and BC *)
  let m = Mini.machine ~frames:512 () in
  let c =
    Harness.Registry.create ~name:"GenMS-coop" ~heap_bytes:(1024 * 1024)
      m.Mini.heap
  in
  let signalmem =
    Workload.Signalmem.create m.Mini.vmm (Heap.address_space m.Mini.heap)
  in
  let mutator = Workload.Mutator.create (Mini.spec ~volume:900_000 ()) c in
  Mini.drive mutator ~between:(fun slice ->
      if slice = 6 then Workload.Signalmem.pin_pages signalmem 380);
  let stats = Vmsim.Process.stats m.Mini.proc in
  check Alcotest.bool "discards happened" true (stats.Vm_stats.discards > 0);
  check Alcotest.int "never relinquishes" 0 stats.Vm_stats.relinquished;
  Oracle.check m.Mini.heap

(* property: random pin/unpin schedules keep BC sound *)
let prop_bc_random_pressure =
  QCheck.Test.make ~name:"BC sound under random pressure schedules" ~count:10
    QCheck.(pair (int_range 0 1000) (list_of_size (Gen.return 6) (int_range 40 200)))
    (fun (seed, pins) ->
      let heap_bytes = 1024 * 1024 in
      let m = Mini.machine ~frames:420 () in
      let c = Harness.Registry.create ~name:"BC" ~heap_bytes m.Mini.heap in
      let signalmem =
        Workload.Signalmem.create m.Mini.vmm (Heap.address_space m.Mini.heap)
      in
      let mutator = Workload.Mutator.create (Mini.spec ~volume:500_000 ~seed ()) c in
      let pins = Array.of_list pins in
      Mini.drive mutator ~between:(fun slice ->
          if slice < Array.length pins then begin
            Workload.Signalmem.unpin_all signalmem;
            Workload.Signalmem.pin_pages signalmem pins.(slice)
          end);
      Oracle.check m.Mini.heap;
      c.Collector.check_invariants ();
      true)

let () =
  Alcotest.run "bc"
    [
      ( "bookmarking",
        [
          Alcotest.test_case "debug_of rejects baselines" `Quick
            test_debug_of_rejects_baselines;
          Alcotest.test_case "eviction creates bookmarks" `Quick
            test_eviction_creates_bookmarks;
          Alcotest.test_case "collection avoids evicted pages" `Quick
            test_collection_avoids_evicted_pages;
          Alcotest.test_case "resize-only pays faults" `Quick
            test_resize_only_pays_faults;
          Alcotest.test_case "reload clears bookmarks" `Quick
            test_reload_clears_bookmarks;
          Alcotest.test_case "header pages resident" `Quick
            test_header_pages_stay_resident;
        ] );
      ( "vm cooperation",
        [
          Alcotest.test_case "footprint target" `Quick
            test_footprint_target_shrinks;
          Alcotest.test_case "discards empty pages" `Quick
            test_discards_empty_pages_first;
          Alcotest.test_case "pointer-aware victims" `Quick
            test_pointer_aware_victims;
          Alcotest.test_case "Cooper-style discard-only" `Quick
            test_cooper_discards_but_does_not_bookmark;
        ] );
      ( "space",
        [
          Alcotest.test_case "compaction" `Quick
            test_compaction_shrinks_superpages;
          Alcotest.test_case "fail-safe completeness" `Quick
            test_failsafe_preserves_completeness;
        ] );
      ( "integration",
        [
          Alcotest.test_case "invariants through pressure" `Quick
            test_invariants_hold_through_pressure_workload;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_bc_random_pressure ]);
    ]

module SC = Gc_common.Size_class

let check = Alcotest.check

let test_geometry () =
  check Alcotest.int "word" 4 SC.word;
  check Alcotest.int "max cell" 8180 SC.max_cell;
  check Alcotest.int "class count (15 small + 37 large)" 52 SC.count;
  check Alcotest.int "small classes" 15 SC.small_count

let test_small_classes_exact () =
  (* every word-multiple size up to 64 bytes has its own class *)
  let expected = List.init 15 (fun i -> 8 + (4 * i)) in
  let actual = Array.to_list (Array.sub SC.cell_sizes 0 15) in
  check (Alcotest.list Alcotest.int) "8..64 by 4" expected actual

let test_ascending_and_word_aligned () =
  Array.iteri
    (fun i cell ->
      assert (cell mod SC.word = 0);
      if i > 0 then assert (cell > SC.cell_sizes.(i - 1)))
    SC.cell_sizes;
  check Alcotest.int "largest is max cell" SC.max_cell
    SC.cell_sizes.(SC.count - 1)

let test_class_of_size () =
  check (Alcotest.option Alcotest.int) "size 1 -> class 0" (Some 0)
    (SC.class_of_size 1);
  check (Alcotest.option Alcotest.int) "size 8 -> class 0" (Some 0)
    (SC.class_of_size 8);
  check (Alcotest.option Alcotest.int) "size 9 -> class 1 (12B)" (Some 1)
    (SC.class_of_size 9);
  check (Alcotest.option Alcotest.int) "max cell fits" (Some (SC.count - 1))
    (SC.class_of_size SC.max_cell);
  check (Alcotest.option Alcotest.int) "over max -> LOS" None
    (SC.class_of_size (SC.max_cell + 1))

let test_class_of_size_minimal () =
  (* the chosen class is the smallest whose cell fits the request *)
  for size = 1 to SC.max_cell do
    match SC.class_of_size size with
    | None -> Alcotest.failf "size %d unmapped" size
    | Some c ->
        assert (SC.cell_size c >= size);
        if c > 0 then assert (SC.cell_size (c - 1) < size)
  done

let test_fragmentation_bounds () =
  (* §3: of the 37 larger classes, all but the largest five have
     worst-case internal fragmentation of ~15%; the largest five are
     between 16% and 33% (small classes only lose word rounding) *)
  for c = SC.small_count to SC.count - 6 do
    let frag = SC.internal_fragmentation c in
    if frag > 0.15 then
      Alcotest.failf "class %d (%dB) frag %.3f > 15%%" c (SC.cell_size c) frag
  done;
  for c = SC.count - 5 to SC.count - 1 do
    let frag = SC.internal_fragmentation c in
    if frag > 0.33 then
      Alcotest.failf "large class %d (%dB) frag %.3f > 33%%" c (SC.cell_size c)
        frag
  done

let test_superpage_external_fragmentation () =
  (* §3: page-internal/external fragmentation bounded at 25% -- per
     superpage, the bytes not covered by cells of the assigned class *)
  let usable = Vmsim.Page.superpage_size - 24 in
  Array.iter
    (fun cell ->
      let ncells = usable / cell in
      let waste = usable - (ncells * cell) in
      let frac = float_of_int waste /. float_of_int usable in
      if frac > 0.25 then
        Alcotest.failf "cell %d wastes %.3f of a superpage" cell frac)
    SC.cell_sizes

let prop_roundtrip =
  QCheck.Test.make ~name:"class_of_size/cell_size roundtrip" ~count:500
    QCheck.(int_range 1 8180)
    (fun size ->
      match SC.class_of_size size with
      | None -> false
      | Some c -> SC.cell_size c >= size)

let () =
  Alcotest.run "size_class"
    [
      ( "classes",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "small classes" `Quick test_small_classes_exact;
          Alcotest.test_case "ascending" `Quick test_ascending_and_word_aligned;
          Alcotest.test_case "class_of_size" `Quick test_class_of_size;
          Alcotest.test_case "minimal fit" `Quick test_class_of_size_minimal;
          Alcotest.test_case "internal frag bounds" `Quick test_fragmentation_bounds;
          Alcotest.test_case "superpage waste" `Quick
            test_superpage_external_fragmentation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]

(* Geometry and cell management of BC's superpage space. *)

module Mini = Test_support.Mini
module Sp = Bookmarking.Superpage
module SC = Gc_common.Size_class

let check = Alcotest.check

let fixture () =
  let m = Mini.machine () in
  (m, Sp.create m.Mini.heap)

let test_geometry () =
  check Alcotest.int "header bytes" 24 Sp.header_bytes;
  check Alcotest.int "usable" (16384 - 24) Sp.usable_bytes;
  (* the paper's LOS threshold: "objects larger than 8180 bytes (half the
     size of a superpage minus metadata)" -- two max cells fill exactly *)
  check Alcotest.int "two max cells fit exactly" Sp.usable_bytes
    (2 * SC.max_cell)

let test_alloc_alignment_and_ownership () =
  let _, t = fixture () in
  match Sp.alloc t ~bytes:100 ~kind:Sp.Scalar ~grow:(fun () -> true)
          ~resident:(fun _ -> true)
  with
  | None -> Alcotest.fail "alloc failed"
  | Some (addr, sp) ->
      check Alcotest.int "superpage aligned" 0
        (sp.Sp.first_page mod Vmsim.Page.pages_per_superpage);
      check Alcotest.bool "addr above header" true
        (addr >= Vmsim.Page.addr_of sp.Sp.first_page + Sp.header_bytes);
      check Alcotest.bool "owns its pages" true
        (Sp.owns_page t sp.Sp.first_page
        && Sp.owns_page t (sp.Sp.first_page + 3));
      check Alcotest.bool "header page identified" true
        (Sp.is_header_page t sp.Sp.first_page);
      check Alcotest.bool "data page not header" false
        (Sp.is_header_page t (sp.Sp.first_page + 1));
      check (Alcotest.list Alcotest.int) "data pages"
        [ sp.Sp.first_page + 1; sp.Sp.first_page + 2; sp.Sp.first_page + 3 ]
        (Sp.data_pages sp)

let test_scalar_array_segregation () =
  let _, t = fixture () in
  let alloc kind =
    Option.get
      (Sp.alloc t ~bytes:64 ~kind ~grow:(fun () -> true)
         ~resident:(fun _ -> true))
  in
  let _, sp_scalar = alloc Sp.Scalar in
  let _, sp_array = alloc Sp.Array in
  check Alcotest.bool "separate superpages per kind" true
    (sp_scalar.Sp.index <> sp_array.Sp.index);
  (* a second scalar shares the scalar superpage *)
  let _, sp_scalar2 = alloc Sp.Scalar in
  check Alcotest.int "same class+kind shares" sp_scalar.Sp.index
    sp_scalar2.Sp.index

let test_grow_denied () =
  let _, t = fixture () in
  check Alcotest.bool "denied" true
    (Sp.alloc t ~bytes:64 ~kind:Sp.Scalar ~grow:(fun () -> false)
       ~resident:(fun _ -> true)
    = None)

let test_blocked_cells () =
  let _, t = fixture () in
  (* cells on "non-resident" pages are parked, not handed out *)
  let blocked_page = ref (-1) in
  let resident p = p <> !blocked_page in
  let addr, sp =
    Option.get
      (Sp.alloc t ~bytes:4096 ~kind:Sp.Scalar ~grow:(fun () -> true)
         ~resident)
  in
  ignore addr;
  (* block the superpage's middle data page and allocate until exhausted *)
  blocked_page := sp.Sp.first_page + 2;
  let rec drain n =
    match
      Sp.alloc t ~bytes:4096 ~kind:Sp.Scalar ~grow:(fun () -> false) ~resident
    with
    | Some (a, _) ->
        check Alcotest.bool "never hands out a blocked cell" true
          (Vmsim.Page.of_addr a <> !blocked_page
          && Vmsim.Page.of_addr (a + 4095) <> !blocked_page);
        drain (n + 1)
    | None -> n
  in
  ignore (drain 0);
  check Alcotest.bool "some cells parked" true
    (Repro_util.Vec.length sp.Sp.blocked > 0);
  (* page becomes resident again: parked cells return *)
  let freed = Repro_util.Vec.length sp.Sp.free in
  let reloaded = !blocked_page in
  blocked_page := -1;
  Sp.note_page_resident t reloaded ~resident:(fun _ -> true);
  check Alcotest.bool "cells unparked" true
    (Repro_util.Vec.length sp.Sp.free > freed)

let test_cells_overlapping_page () =
  let _, t = fixture () in
  let _, sp =
    Option.get
      (Sp.alloc t ~bytes:4096 ~kind:Sp.Scalar ~grow:(fun () -> true)
         ~resident:(fun _ -> true))
  in
  (* every data page overlaps at least one cell; the total with overlaps
     is at least the cell count *)
  let total =
    List.fold_left
      (fun acc page -> acc + Sp.cells_overlapping_page sp page)
      (Sp.cells_overlapping_page sp sp.Sp.first_page)
      (Sp.data_pages sp)
  in
  check Alcotest.bool "overlap count covers all cells" true
    (total >= sp.Sp.cells_total)

let test_free_cell_and_recycle () =
  let m, t = fixture () in
  ignore m;
  let addr, sp =
    Option.get
      (Sp.alloc t ~bytes:64 ~kind:Sp.Scalar ~grow:(fun () -> true)
         ~resident:(fun _ -> true))
  in
  let before = Sp.free_bytes t in
  Sp.free_cell t sp ~addr;
  check Alcotest.bool "free bytes grew" true (Sp.free_bytes t > before);
  Sp.recycle_empty t ~resident:(fun _ -> true);
  check Alcotest.int "empty superpage recycled" 0 sp.Sp.cells_total;
  (* reassignable to a different class *)
  let _, sp2 =
    Option.get
      (Sp.alloc t ~bytes:2048 ~kind:Sp.Array ~grow:(fun () -> false)
         ~resident:(fun _ -> true))
  in
  check Alcotest.int "reused without growth" sp.Sp.index sp2.Sp.index

let () =
  Alcotest.run "superpage"
    [
      ( "superpage",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "alignment/ownership" `Quick
            test_alloc_alignment_and_ownership;
          Alcotest.test_case "scalar/array segregation" `Quick
            test_scalar_array_segregation;
          Alcotest.test_case "grow denied" `Quick test_grow_denied;
          Alcotest.test_case "blocked cells" `Quick test_blocked_cells;
          Alcotest.test_case "cell overlap census" `Quick
            test_cells_overlapping_page;
          Alcotest.test_case "free + recycle" `Quick test_free_cell_and_recycle;
        ] );
    ]

test/support/oracle.ml: Gc_common Hashtbl Heapsim Printf Vmsim

test/support/mini.mli: Gc_common Heapsim Vmsim Workload

test/support/oracle.mli: Gc_common Heapsim

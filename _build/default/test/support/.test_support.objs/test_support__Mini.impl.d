test/support/mini.ml: Gc_common Harness Heapsim List Vmsim Workload

(** Collector-independent correctness oracle.

    Recomputes reachability over the object graph from the heap's roots
    (ignoring pages entirely) and checks that no reachable object has been
    freed. Collectors may retain garbage (floating garbage is legal);
    they must never collect a reachable object. *)

val check : Heapsim.Heap.t -> unit
(** Raises [Failure] naming the first reachable-but-freed object. *)

val reachable_count : Heapsim.Heap.t -> int

val assert_heap_bounded : Gc_common.Collector.t -> unit
(** The collector's mapped footprint must not exceed its configured heap
    (plus one superpage of slack for in-flight growth). *)

type machine = {
  clock : Vmsim.Clock.t;
  vmm : Vmsim.Vmm.t;
  proc : Vmsim.Process.t;
  heap : Heapsim.Heap.t;
}

let machine ?(frames = 4096) () =
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"test" in
  let heap = Heapsim.Heap.create vmm proc in
  { clock; vmm; proc; heap }

let collector ?frames ?(heap_bytes = 2 * 1024 * 1024) name =
  let m = machine ?frames () in
  let c = Harness.Registry.create ~name ~heap_bytes m.heap in
  (m, c)

let spec ?(volume = 600_000) ?(seed = 42) () =
  {
    (Workload.Benchmarks.pseudojbb) with
    Workload.Spec.name = "mini";
    total_alloc_bytes = volume;
    immortal_bytes = 100_000;
    window_bytes = 60_000;
    seed;
  }

let drive ?(ops_per_slice = 128) ?(between = fun _ -> ()) mutator =
  let slice = ref 0 in
  while not (Workload.Mutator.step mutator ~ops:ops_per_slice) do
    between !slice;
    incr slice
  done

let alloc_list (c : Gc_common.Collector.t) ~n ~size =
  let heap = c.Gc_common.Collector.heap in
  let ids = ref [] in
  let prev = ref Heapsim.Obj_id.null in
  (* root the chain head before allocating: a collection may run at any
     allocation *)
  Heapsim.Heap.set_roots heap (fun f ->
      if not (Heapsim.Obj_id.is_null !prev) then f !prev);
  for _ = 1 to n do
    let id = c.Gc_common.Collector.alloc ~size ~nrefs:1 ~kind:`Scalar in
    if not (Heapsim.Obj_id.is_null !prev) then
      Heapsim.Heap.write_ref heap id 0 !prev;
    prev := id;
    ids := id :: !ids
  done;
  List.rev !ids

let walk heap ~on_dead =
  let objects = Heapsim.Heap.objects heap in
  let seen = Hashtbl.create 4096 in
  let count = ref 0 in
  let rec visit src id =
    if id >= 0 && not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      if not (Heapsim.Object_table.is_live objects id) then on_dead ~src ~id
      else begin
        incr count;
        Heapsim.Object_table.iter_refs objects id (fun _ target ->
            visit id target)
      end
    end
  in
  Heapsim.Heap.iter_roots heap (fun id -> visit (-1) id);
  !count

let check heap =
  ignore
    (walk heap ~on_dead:(fun ~src ~id ->
         failwith
           (Printf.sprintf
              "oracle: freed object #%d is reachable (from #%d)" id src)))

let reachable_count heap =
  walk heap ~on_dead:(fun ~src:_ ~id:_ -> ())

let assert_heap_bounded (c : Gc_common.Collector.t) =
  let pages = c.Gc_common.Collector.footprint_pages () in
  let budget =
    Gc_common.Gc_config.heap_pages c.Gc_common.Collector.config
    + Vmsim.Page.pages_per_superpage
  in
  if pages > budget then
    failwith
      (Printf.sprintf "heap footprint %d pages exceeds budget %d" pages budget)

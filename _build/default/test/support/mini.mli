(** Small test fixtures: machines, collectors and driver loops. *)

type machine = {
  clock : Vmsim.Clock.t;
  vmm : Vmsim.Vmm.t;
  proc : Vmsim.Process.t;
  heap : Heapsim.Heap.t;
}

val machine : ?frames:int -> unit -> machine
(** A fresh machine (default 4096 frames). *)

val collector :
  ?frames:int -> ?heap_bytes:int -> string -> machine * Gc_common.Collector.t
(** A fresh machine plus a collector instance (default 2 MB heap). *)

val spec : ?volume:int -> ?seed:int -> unit -> Workload.Spec.t
(** A small pseudoJBB-like spec (default 600 KB allocation volume). *)

val drive :
  ?ops_per_slice:int ->
  ?between:(int -> unit) ->
  Workload.Mutator.t ->
  unit
(** Step the mutator to completion, invoking [between] with the slice
    index between slices (for pressure injection or oracle checks). *)

val alloc_list :
  Gc_common.Collector.t -> n:int -> size:int -> Heapsim.Obj_id.t list
(** Allocate [n] scalar objects of [size] bytes with one ref slot each,
    chained together, and root the chain head on the heap. *)

(* The "Slashdot effect" (§5.3.2): a server JVM is humming along when a
   neighbouring process suddenly claims most of the machine's memory.
   Compare how the bookmarking collector and generational mark-sweep ride
   out the spike.

   Run with: dune exec examples/pressure_spike.exe *)

let run collector =
  let spec =
    Workload.Spec.scale_volume Workload.Benchmarks.pseudojbb 0.4
  in
  let heap_bytes = 77 * 1024 * 1024 / 8 in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 256 in
  (* the spike: pin 30MB/8 up front, then 1MB/8 per step until only 45%
     of the heap fits in memory *)
  let pressure =
    Workload.Pressure.Ramp
      {
        after_progress = 0.15;
        initial_pages = 960;
        pages_per_step = 32;
        step_ns = 3_000_000;
        max_pages = frames - (heap_pages * 45 / 100);
      }
  in
  match
    Harness.Run.exec
      (Harness.Run.Plan.make ~collector ~spec ~heap_bytes
      |> Harness.Run.Plan.with_frames frames
      |> Harness.Run.Plan.with_pressure pressure)
  with
  | Harness.Metrics.Completed m ->
      Format.printf
        "%-10s finished in %6.2fs | avg pause %8.2fms | max pause %8.2fms | \
         %5d major faults (%d during GC)@."
        collector
        (Harness.Metrics.elapsed_s m)
        m.Harness.Metrics.avg_pause_ms m.Harness.Metrics.max_pause_ms
        m.Harness.Metrics.major_faults m.Harness.Metrics.gc_major_faults
  | Harness.Metrics.Exhausted msg -> Format.printf "%s exhausted: %s@." collector msg
  | Harness.Metrics.Thrashed msg -> Format.printf "%s thrashed: %s@." collector msg
  | Harness.Metrics.Failed f ->
      Format.printf "%s failed: %s@." collector f.Harness.Metrics.reason

let () =
  Format.printf "pseudoJBB with a memory spike down to 45%% of the heap:@.@.";
  List.iter run [ "BC"; "BC-resize"; "GenMS"; "GenCopy"; "CopyMS" ]

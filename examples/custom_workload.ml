(* Building your own workload spec against the public API: a cache-like
   service with a large cold index, a small hot working set and a high
   allocation rate, evaluated across collectors at two heap sizes.

   Run with: dune exec examples/custom_workload.exe *)

let cache_service =
  {
    Workload.Spec.name = "cache-service";
    total_alloc_bytes = 12 * 1024 * 1024;
    immortal_bytes = 1_500_000;  (* the cold index *)
    window_bytes = 300_000;  (* hot entries *)
    long_frac = 0.02;
    mean_size = 56;
    max_size = 2048;
    large_frac = 0.001;
    array_frac = 0.3;
    nrefs_mean = 2;
    mutation_rate = 0.6;
    access_rate = 3.0;
    cold_access_frac = 0.02;
    paper_min_heap_bytes = 4 * 1024 * 1024;
    seed = 2024;
  }

let () =
  Format.printf "custom workload: %a@.@." Workload.Spec.pp cache_service;
  List.iter
    (fun heap_mb ->
      Format.printf "heap = %d MB:@." heap_mb;
      List.iter
        (fun collector ->
          match
            Harness.Run.exec
              (Harness.Run.Plan.make ~collector ~spec:cache_service
                 ~heap_bytes:(heap_mb * 1024 * 1024))
          with
          | Harness.Metrics.Completed m ->
              Format.printf "  %-10s %6.3fs, %3d collections, avg pause %6.2fms@."
                collector
                (Harness.Metrics.elapsed_s m)
                (m.Harness.Metrics.minor + m.Harness.Metrics.full
               + m.Harness.Metrics.compacting)
                m.Harness.Metrics.avg_pause_ms
          | Harness.Metrics.Exhausted _ ->
              Format.printf "  %-10s needs a bigger heap@." collector
          | Harness.Metrics.Thrashed msg ->
              Format.printf "  %-10s thrashed: %s@." collector msg
          | Harness.Metrics.Failed f ->
              Format.printf "  %-10s failed: %s@." collector
                f.Harness.Metrics.reason)
        [ "BC"; "GenMS"; "GenCopy"; "CopyMS"; "MarkSweep"; "SemiSpace" ];
      Format.printf "@.")
    [ 3; 6 ]

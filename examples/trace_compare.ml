(* Exact apples-to-apples collector comparison via traces: record the
   heap-operation sequence of one workload run, then replay the identical
   sequence against several collectors under the same memory squeeze.

   Run with: dune exec examples/trace_compare.exe *)

let record () =
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames:8192 () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"record" in
  let heap = Heapsim.Heap.create vmm proc in
  let c =
    Harness.Registry.create ~name:"MarkSweep" ~heap_bytes:(8 * 1024 * 1024)
      heap
  in
  let trace = Workload.Trace.create () in
  let spec = Workload.Spec.scale_volume Workload.Benchmarks.javac 0.25 in
  let mutator = Workload.Mutator.create ~trace spec c in
  while not (Workload.Mutator.step mutator ~ops:1024) do
    ()
  done;
  Format.printf "recorded %d events from %s@." (Workload.Trace.length trace)
    spec.Workload.Spec.name;
  trace

let replay_exn trace collector =
  let heap_bytes = 4 * 1024 * 1024 in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 128 in
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames () in
  let proc = Vmsim.Vmm.create_process vmm ~name:collector in
  let heap = Heapsim.Heap.create vmm proc in
  let c = Harness.Registry.create ~name:collector ~heap_bytes heap in
  let signalmem =
    Workload.Signalmem.create vmm (Heapsim.Heap.address_space heap)
  in
  let start_ns = Vmsim.Clock.now clock in
  Workload.Trace.replay trace c ~on_slice:(fun slice ->
      (* squeeze to 45% of the heap a little way in *)
      if slice = 8 then
        Workload.Signalmem.pin_pages signalmem
          (frames - (heap_pages * 55 / 100)));
  let m =
    Harness.Metrics.of_run ~collector:c ~workload:"trace" ~start_ns
      ~end_ns:(Vmsim.Clock.now clock) ()
  in
  Format.printf
    "%-10s %7.3fs | avg pause %8.2fms | faults %5d (GC %d)@." collector
    (Harness.Metrics.elapsed_s m)
    m.Harness.Metrics.avg_pause_ms m.Harness.Metrics.major_faults
    m.Harness.Metrics.gc_major_faults

let replay trace collector =
  try replay_exn trace collector
  with Gc_common.Collector.Heap_exhausted msg ->
    Format.printf "%-10s heap exhausted: %s@." collector msg

let () =
  let trace = record () in
  Format.printf
    "replaying the identical operation sequence at 55%% memory:@.@.";
  List.iter (replay trace)
    [ "BC"; "BC-resize"; "GenMS"; "GenMS-coop"; "GenCopy"; "CopyMS" ]

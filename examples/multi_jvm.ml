(* Two server instances on one machine (§5.3.3 / Figure 7): their
   combined footprint exceeds physical memory, so whichever collector
   cooperates with the VM manager better keeps both responsive.

   Run with: dune exec examples/multi_jvm.exe *)

let run collector =
  let spec = Workload.Spec.scale_volume Workload.Benchmarks.pseudojbb 0.4 in
  let heap_bytes = 77 * 1024 * 1024 / 8 in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  (* only ~55% of the two heaps fits in memory *)
  let frames = 2 * heap_pages * 55 / 100 in
  let plan =
    Harness.Run.Plan.make ~collector ~spec ~heap_bytes
    |> Harness.Run.Plan.with_frames frames
    |> Harness.Run.Plan.with_process ~collector
         ~spec:{ spec with Workload.Spec.seed = spec.Workload.Spec.seed + 31 }
  in
  match Harness.Run.exec_all plan with
  | [ Harness.Metrics.Completed a; Harness.Metrics.Completed b ] ->
      Format.printf
        "%-10s elapsed %6.2fs | pauses %7.2fms / %7.2fms | faults %d + %d@."
        collector
        (Float.max (Harness.Metrics.elapsed_s a) (Harness.Metrics.elapsed_s b))
        a.Harness.Metrics.avg_pause_ms b.Harness.Metrics.avg_pause_ms
        a.Harness.Metrics.major_faults b.Harness.Metrics.major_faults
  | _ -> Format.printf "%-10s did not complete@." collector

let () =
  Format.printf "two pseudoJBB instances sharing one machine:@.@.";
  List.iter run [ "BC"; "GenMS"; "GenCopy"; "CopyMS" ]

(* bcgc: command-line driver for the bookmarking-collection simulator.

   Subcommands:
     run     -- run one collector on one workload and print metrics
     list    -- list collectors and workloads
     bench   -- regenerate a paper table/figure (same as bench/main.exe)
     minheap -- measure a workload's minimum heap for a collector *)

open Cmdliner

let collector_arg =
  let doc = "Collector name (see `bcgc list')." in
  Arg.(value & opt string "BC" & info [ "c"; "collector" ] ~docv:"NAME" ~doc)

let workload_arg =
  let doc = "Workload name (see `bcgc list')." in
  Arg.(
    value & opt string "pseudoJBB" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let heap_arg =
  let doc = "Heap size in KB." in
  Arg.(value & opt int 8192 & info [ "heap-kb" ] ~docv:"KB" ~doc)

let frames_arg =
  let doc =
    "Physical memory in pages (default: ample, i.e. no memory pressure)."
  in
  Arg.(value & opt (some int) None & info [ "frames" ] ~docv:"PAGES" ~doc)

let pin_arg =
  let doc =
    "Steady memory pressure: pin this many pages once 10% of the workload \
     has run."
  in
  Arg.(value & opt (some int) None & info [ "pin" ] ~docv:"PAGES" ~doc)

let volume_arg =
  let doc = "Scale the workload's allocation volume." in
  Arg.(value & opt float 1.0 & info [ "volume" ] ~docv:"FACTOR" ~doc)

let verbose_arg =
  let doc = "Also print a BMU curve." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let faults_arg =
  let doc =
    "Fault-injection plan, e.g. \
     'drop-evict=0.3,swap-full=2,spikes=1'. Keys: drop-evict, \
     drop-resident, delay, dup, reorder, swap-write-err, swap-read-err, \
     swap-full, swap-full-len, swap-full-every, spikes, spike-pages. \
     'none' disables injection."
  in
  Arg.(value & opt string "none" & info [ "faults" ] ~docv:"SPEC" ~doc)

let fault_seed_arg =
  let doc = "Seed for the fault plan; same seed, same fault schedule." in
  Arg.(
    value
    & opt int Harness.Run.default_fault_seed
    & info [ "fault-seed" ] ~docv:"N" ~doc)

let verify_arg =
  let doc = "Run the heap/VM invariant verifier after the run." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON telemetry trace of the run to $(docv) \
     (load it in Perfetto or chrome://tracing; summarise it with `bcgc \
     trace')."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let timeline_arg =
  let doc = "Print an ASCII event timeline after the run (needs --trace)." in
  Arg.(value & flag & info [ "timeline" ] ~doc)

let coworker_arg =
  let doc =
    "Run a second instance of the workload (seed shifted) under collector \
     $(docv) on the same machine, competing for the same frames; metrics \
     are reported for the primary instance."
  in
  Arg.(value & opt (some string) None & info [ "coworker" ] ~docv:"NAME" ~doc)

let controller_arg =
  let doc =
    "Attach the online memory controller $(docv) (see `bcgc list'); each \
     process gets its own instance actuating its collector's heap target, \
     notice batching and relinquish aggressiveness through the staged \
     degradation ladder. 'off' (the default) is bit-identical to no \
     controller at all."
  in
  Arg.(value & opt string "off" & info [ "controller" ] ~docv:"NAME" ~doc)

let control_window_arg =
  let doc =
    "Controller decision window in virtual milliseconds (default 5)."
  in
  Arg.(
    value & opt (some int) None & info [ "control-window" ] ~docv:"MS" ~doc)

let resolve_faults spec_str =
  match Faults.Fault_plan.spec_of_string spec_str with
  | Ok spec -> if spec = Faults.Fault_plan.none then None else Some spec
  | Error msg ->
      Printf.eprintf "bad --faults spec: %s\n" msg;
      exit 1

let spec_file_arg =
  let doc = "Load the workload from a key=value spec file instead of -w." in
  Arg.(
    value & opt (some string) None & info [ "spec-file" ] ~docv:"FILE" ~doc)

let find_workload name =
  match Workload.Catalog.find_opt name with
  | Some i -> i.Workload.Catalog.params
  | None ->
      Printf.eprintf "unknown workload %S; available: %s\n" name
        (String.concat ", " (Workload.Catalog.names ()));
      exit 1

(* For the batch-only subcommands (minheap, trace-record). *)
let find_spec name =
  match find_workload name with
  | Workload.Catalog.Batch_spec spec -> spec
  | Workload.Catalog.Serving_spec _ ->
      Printf.eprintf
        "workload %S is a serving workload; this command takes a batch \
         workload\n"
        name;
      exit 1

let resolve_workload workload spec_file =
  match spec_file with
  | Some path -> (
      try Workload.Catalog.Batch_spec (Workload.Spec.of_file path)
      with Failure msg | Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1)
  | None -> find_workload workload

let shape_arg =
  let doc =
    "Override a serving workload's load shape, e.g. 'fixed:1200', \
     'rampup:200:2500:1.5', 'pausing:2000:0.25:0.25', \
     'shaped:0=300,1=1800,2=400', 'diurnal:400:2200:1', \
     'flash:600:3000:0.8:0.4'."
  in
  Arg.(value & opt (some string) None & info [ "shape" ] ~docv:"SPEC" ~doc)

let run_cmd collector workload spec_file shape heap_kb frames pin volume
    verbose faults fault_seed verify trace_file timeline coworker controller
    control_window =
  let wparams =
    Workload.Catalog.scale_volume (resolve_workload workload spec_file) volume
  in
  let wparams =
    match shape with
    | None -> wparams
    | Some s -> (
        match Workload.Shapes.of_string s with
        | shape -> (
            try Workload.Catalog.with_shape shape wparams
            with Invalid_argument msg ->
              Printf.eprintf "%s\n" msg;
              exit 1)
        | exception Failure msg ->
            Printf.eprintf "bad --shape spec: %s\n" msg;
            exit 1)
  in
  let heap_bytes = heap_kb * 1024 in
  let pressure =
    match pin with
    | None -> Workload.Pressure.None_
    | Some pin_pages ->
        Workload.Pressure.Steady { after_progress = 0.1; pin_pages }
  in
  let sink =
    match trace_file with
    | None -> None
    | Some _ -> Some (Telemetry.Sink.create ())
  in
  let module Plan = Harness.Run.Plan in
  let opt v f = match v with None -> Fun.id | Some x -> f x in
  let shift_seed n = function
    | Workload.Catalog.Batch_spec s ->
        Workload.Catalog.Batch_spec
          { s with Workload.Spec.seed = s.Workload.Spec.seed + n }
    | Workload.Catalog.Serving_spec s ->
        Workload.Catalog.Serving_spec
          { s with Workload.Request.seed = s.Workload.Request.seed + n }
  in
  let plan =
    Plan.make_workload ~collector ~workload:wparams ~heap_bytes
    |> opt frames Plan.with_frames
    |> Plan.with_pressure pressure
    |> opt (resolve_faults faults) (Plan.with_faults ~seed:fault_seed)
    |> (if verify then Plan.with_verify else Fun.id)
    |> opt sink Plan.with_trace
    |> opt coworker (fun c plan ->
           Plan.with_process_workload ~collector:c
             ~workload:(shift_seed 17 wparams) plan)
    |> (match controller with
       | "off" -> Fun.id
       | name -> (
           fun plan ->
             let window_ns =
               Option.map (fun ms -> ms * 1_000_000) control_window
             in
             try Plan.with_controller ?window_ns name plan
             with Failure msg | Invalid_argument msg ->
               Printf.eprintf "bad --controller: %s\n" msg;
               exit 1))
  in
  let outcome = Harness.Run.exec plan in
  (* dump the trace for every outcome — a trace of a thrashed or failed
     run is exactly when you want to look at one *)
  (match (trace_file, sink) with
  | Some path, Some sink ->
      let metadata =
        ("outcome", Telemetry.Json.Str (Harness.Metrics.outcome_label outcome))
        ::
        (match outcome with
        | Harness.Metrics.Completed m ->
            [ ("metrics", Harness.Metrics.to_json m) ]
        | _ -> [])
      in
      let oc = open_out path in
      Telemetry.Export.write_chrome_json ~metadata sink oc;
      close_out oc;
      Printf.printf "trace: %d events (%d dropped) -> %s\n"
        (Telemetry.Sink.total sink)
        (Telemetry.Sink.dropped sink)
        path;
      if timeline then begin
        Telemetry.Export.ascii_timeline sink Format.std_formatter;
        Format.printf "%a@?" Telemetry.Report.pp sink
      end
  | _ -> ());
  match outcome with
  | Harness.Metrics.Completed m ->
      Format.printf "%a@." Harness.Metrics.pp m;
      if verbose then begin
        let windows =
          List.init 9 (fun i ->
              int_of_float (1e6 *. Float.pow 10.0 (float_of_int i /. 2.0)))
        in
        let curve =
          Harness.Bmu.curve ~pauses:m.Harness.Metrics.pauses
            ~total_ns:m.Harness.Metrics.elapsed_ns ~windows
        in
        Format.printf "BMU:";
        List.iter
          (fun (w, u) ->
            Format.printf " %.1fms:%.3f" (float_of_int w /. 1e6) u)
          curve;
        Format.printf "@."
      end;
      0
  | Harness.Metrics.Exhausted msg ->
      Printf.eprintf "heap exhausted: %s\n" msg;
      1
  | Harness.Metrics.Thrashed msg ->
      Printf.eprintf "thrashed: %s\n" msg;
      1
  | Harness.Metrics.Failed f ->
      Printf.eprintf "failed (%s): %s\n" f.Harness.Metrics.exn_name
        f.Harness.Metrics.reason;
      (match f.Harness.Metrics.fault_stats with
      | Some s when Faults.Fault_plan.injected_total s > 0 ->
          Format.eprintf "injected: %a@." Faults.Fault_plan.pp_stats s
      | Some _ | None -> ());
      1

let list_cmd () =
  let print_info (i : Harness.Registry.info) =
    Printf.printf "  %-14s %s\n" i.Harness.Registry.name i.Harness.Registry.doc
  in
  print_endline "collectors:";
  List.iter print_info
    (List.filter
       (fun i -> not i.Harness.Registry.ablation)
       Harness.Registry.all);
  print_endline "collector ablation variants:";
  List.iter print_info
    (List.filter (fun i -> i.Harness.Registry.ablation) Harness.Registry.all);
  print_endline "workloads (batch):";
  List.iter
    (fun spec -> Format.printf "  %a@." Workload.Spec.pp spec)
    Workload.Catalog.batch_specs;
  print_endline "workloads (serving):";
  List.iter
    (fun (i : Workload.Catalog.info) ->
      match i.Workload.Catalog.family with
      | Workload.Catalog.Serving -> Format.printf "  %a@." Workload.Catalog.pp i
      | Workload.Catalog.Batch -> ())
    Workload.Catalog.all;
  print_endline "controllers (run --controller NAME):";
  List.iter
    (fun (i : Control.Registry.info) ->
      Printf.printf "  %-14s %s\n" i.Control.Registry.name
        i.Control.Registry.doc)
    Control.Registry.all;
  0

let minheap_cmd collector workload volume =
  let spec = find_spec workload in
  match Harness.Minheap.find ~volume_scale:volume ~collector ~spec () with
  | Some bytes ->
      Printf.printf "%s/%s minimum heap: %d bytes (%d KB)\n" collector
        workload bytes (bytes / 1024);
      0
  | None ->
      Printf.printf "%s/%s: no workable heap found\n" collector workload;
      1

let trace_record_cmd workload volume heap_kb output =
  let spec = Workload.Spec.scale_volume (find_spec workload) volume in
  let m_clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock:m_clock ~frames:(4 * heap_kb / 4 + 2048) () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"record" in
  let heap = Heapsim.Heap.create vmm proc in
  let c = Harness.Registry.create ~name:"MarkSweep" ~heap_bytes:(heap_kb * 1024) heap in
  let trace = Workload.Trace.create () in
  let mutator = Workload.Mutator.create ~trace spec c in
  while not (Workload.Mutator.step mutator ~ops:1024) do () done;
  Workload.Trace.save trace output;
  Printf.printf "recorded %d events (%d ops) to %s
"
    (Workload.Trace.length trace)
    (Workload.Mutator.ops_done mutator)
    output;
  0

let trace_replay_cmd collector input heap_kb frames pin =
  let trace = Workload.Trace.load input in
  let heap_bytes = heap_kb * 1024 in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames =
    Option.value frames ~default:((4 * heap_pages) + 2048)
  in
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"replay" in
  let heap = Heapsim.Heap.create vmm proc in
  let c = Harness.Registry.create ~name:collector ~heap_bytes heap in
  let signalmem =
    Workload.Signalmem.create vmm (Heapsim.Heap.address_space heap)
  in
  let start_ns = Vmsim.Clock.now clock in
  (try
     Workload.Trace.replay trace c ~on_slice:(fun slice ->
         match pin with
         | Some pages when slice = 4 -> Workload.Signalmem.pin_pages signalmem pages
         | Some _ | None -> ())
   with
  | Gc_common.Collector.Heap_exhausted msg ->
      Printf.eprintf "heap exhausted: %s
" msg;
      exit 1
  | Vmsim.Vmm.Thrashing msg ->
      Printf.eprintf "thrashed: %s
" msg;
      exit 1);
  let m =
    Harness.Metrics.of_run ~collector:c ~workload:("replay:" ^ input)
      ~start_ns ~end_ns:(Vmsim.Clock.now clock) ()
  in
  Format.printf "%a@." Harness.Metrics.pp m;
  0

(* Summarise (and validate) a Chrome trace JSON file written by
   `bcgc run --trace`, using our own parser — the CI smoke step leans on
   this to prove the emitted JSON actually parses. *)
let trace_summary_cmd file expect_phases =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let content =
    try read_file file
    with Sys_error msg ->
      Printf.eprintf "bcgc trace: %s\n" msg;
      exit 1
  in
  match Telemetry.Json.of_string_opt content with
  | None ->
      Printf.eprintf "bcgc trace: %s is not valid JSON\n" file;
      1
  | Some json -> (
      match
        Option.bind (Telemetry.Json.member "traceEvents" json)
          Telemetry.Json.to_list_opt
      with
      | None ->
          Printf.eprintf "bcgc trace: %s has no traceEvents array\n" file;
          1
      | Some events ->
          let spans = Hashtbl.create 8 in
          let open_ts = Hashtbl.create 8 in
          let instants = Hashtbl.create 8 in
          let counters = Hashtbl.create 8 in
          let bump tbl key by =
            let n, dur =
              Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0.0)
            in
            Hashtbl.replace tbl key (n + fst by, dur +. snd by)
          in
          List.iter
            (fun e ->
              let field k conv = Option.bind (Telemetry.Json.member k e) conv in
              match
                (field "ph" Telemetry.Json.str_opt,
                 field "name" Telemetry.Json.str_opt)
              with
              | Some "B", Some name ->
                  let ts =
                    Option.value ~default:0.0 (field "ts" Telemetry.Json.num_opt)
                  in
                  Hashtbl.replace open_ts name ts;
                  bump spans name (1, 0.0)
              | Some "E", Some name -> (
                  match Hashtbl.find_opt open_ts name with
                  | None -> ()
                  | Some ts0 ->
                      Hashtbl.remove open_ts name;
                      let ts =
                        Option.value ~default:ts0
                          (field "ts" Telemetry.Json.num_opt)
                      in
                      bump spans name (0, ts -. ts0))
              | Some "i", Some name -> bump instants name (1, 0.0)
              | Some "C", Some name -> bump counters name (1, 0.0)
              | _ -> ())
            events;
          Printf.printf "%s: %d trace events\n" file (List.length events);
          let sorted tbl =
            List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
          in
          List.iter
            (fun (name, (n, dur)) ->
              Printf.printf "  span    %-14s %6d  %10.3f ms\n" name n
                (dur /. 1e3))
            (sorted spans);
          List.iter
            (fun (name, (n, _)) ->
              Printf.printf "  instant %-22s %6d\n" name n)
            (sorted instants);
          List.iter
            (fun (name, (n, _)) ->
              Printf.printf "  counter %-14s %6d samples\n" name n)
            (sorted counters);
          let missing =
            match expect_phases with
            | None -> []
            | Some spec ->
                List.filter
                  (fun name ->
                    name <> "" && not (Hashtbl.mem spans name))
                  (String.split_on_char ',' spec)
          in
          if missing <> [] then begin
            Printf.eprintf "bcgc trace: missing expected phase span(s): %s\n"
              (String.concat ", " missing);
            1
          end
          else 0)

(* Wall-clock perf suite: run, write BENCH_perf.json, validate it back
   (the perf-smoke CI step relies on the validation), print a summary.
   With [guard], don't write anything: compare the fresh medians against
   the committed baseline at [out] and fail on a >20% regression. *)
let bench_perf ~reps ~out ~guard =
  let r =
    Harness.Perf.run ~repetitions:reps
      ~progress:(fun label -> Printf.eprintf "perf: %s\n%!" label)
      ()
  in
  Format.printf "%a" Harness.Perf.pp r;
  if guard then
    match Harness.Perf.guard_file ~baseline_path:out r with
    | Ok () ->
        Printf.printf "perf guard: no benchmark regressed more than %.0f%% vs %s\n"
          (100.0 *. Harness.Perf.default_guard_tolerance)
          out;
        0
    | Error lines ->
        List.iter
          (fun l -> Printf.eprintf "bcgc bench perf: regression: %s\n" l)
          lines;
        1
  else begin
    Harness.Perf.write_file ~path:out r;
    match Harness.Perf.validate_file out with
    | Ok () ->
        Printf.printf "wrote %s (schema %s)\n" out Harness.Perf.schema_version;
        0
    | Error msg ->
        Printf.eprintf "bcgc bench perf: %s failed validation: %s\n" out msg;
        1
  end

let bench_cmd target full jobs backend perf_reps perf_out perf_guard slo_out =
  if jobs < 1 then begin
    Printf.eprintf "bcgc bench: -j must be >= 1 (got %d)\n" jobs;
    2
  end
  else begin
  let mode =
    if full then Harness.Experiments.Full else Harness.Experiments.Quick
  in
  Harness.Experiments.set_jobs jobs;
  Harness.Experiments.set_backend backend;
  if target = "perf" then
    bench_perf ~reps:perf_reps ~out:perf_out ~guard:perf_guard
  else begin
  (match target with
  | "slo" -> Harness.Experiments.slo ?out:slo_out mode
  | "table1" -> Harness.Experiments.table1 mode
  | "fig2" -> Harness.Experiments.figure2 mode
  | "fig3" -> Harness.Experiments.figure3 mode
  | "fig4" | "fig5" | "fig45" -> Harness.Experiments.figure45 mode
  | "fig6" -> Harness.Experiments.figure6 mode
  | "fig7" -> Harness.Experiments.figure7 mode
  | "ablation" -> Harness.Experiments.ablation mode
  | "ssd" -> Harness.Experiments.ssd mode
  | "recovery" -> Harness.Experiments.recovery mode
  | "mixed" -> Harness.Experiments.mixed mode
  | "multiproc" -> Harness.Experiments.multiprocess mode
  | "faults" -> Harness.Experiments.faults mode
  | "control" -> Harness.Experiments.control mode
  | "trace" -> Harness.Experiments.trace_export mode
  | "campaign" -> Harness.Experiments.campaign mode
  | _ -> Harness.Experiments.all mode);
  0
  end
  end

(* --- supervised campaigns ------------------------------------------ *)

let load_campaign spec_path =
  match Harness.Campaign.of_file spec_path with
  | Ok t -> t
  | Error e ->
      Printf.eprintf "bcgc campaign: %s\n" e;
      exit 1

let campaign_run_cmd spec_path resume jobs backend journal_override stop_after
    chaos chaos_seed =
  let open Harness.Campaign in
  let t = load_campaign spec_path in
  let chaos =
    match chaos with
    | None -> None
    | Some "kill-workers" ->
        (* bounded so a pathological draw can't stall the sweep forever:
           at most two kills per cell across the whole campaign *)
        let ncells = List.length (cells t) in
        Some
          {
            Harness.Supervisor.chaos_seed;
            kill_prob = 0.25;
            max_kills = 2 * ncells;
          }
    | Some other ->
        Printf.eprintf
          "bcgc campaign: unknown chaos mode %S (known: kill-workers)\n"
          other;
        exit 1
  in
  match
    run ~jobs ?backend ?chaos ?stop_after ~resume ?journal_override
      ~log:(fun m -> Printf.printf "%s\n%!" m)
      t
  with
  | Ok (Complete { report_path; summary = s }) ->
      Printf.printf
        "campaign %S complete: %d cells (%d ok, %d degraded, %d exhausted, \
         %d thrashed, %d failed)\n"
        t.name s.total s.ok s.degraded s.exhausted s.thrashed s.failed;
      if s.retried > 0 || s.quarantined > 0 || s.chaos_kills > 0 then
        Printf.printf
          "supervision: %d attempt(s) retried, %d cell(s) quarantined, %d \
           chaos kill(s)\n"
          s.retried s.quarantined s.chaos_kills;
      Printf.printf "report: %s\n" report_path;
      if s.failed > 0 then 1 else 0
  | Ok (Interrupted { completed; total }) ->
      Printf.printf
        "campaign %S interrupted: %d/%d cells journaled; finish with \
         --resume\n"
        t.name completed total;
      3
  | Error e ->
      Printf.eprintf "bcgc campaign: %s\n" e;
      1

let campaign_cells_cmd spec_path =
  let open Harness.Campaign in
  let t = load_campaign spec_path in
  let cs = cells t in
  List.iter (fun c -> Printf.printf "%s  %s\n" c.digest c.label) cs;
  Printf.printf "%d cells; campaign digest %s\n" (List.length cs)
    (campaign_digest t);
  0

let campaign_spec_arg =
  let doc = "Campaign spec file (JSON, schema bcgc-campaign/1)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)

(* Shared by `bench' and `campaign run': the execution engine behind the
   cell fan-out. Results are byte-identical across all three — the
   simulation runs in virtual time — only isolation and speed differ. *)
let backend_arg =
  let engine =
    Arg.enum [ ("fork", `Fork); ("domains", `Domains); ("seq", `Seq) ]
  in
  let doc =
    "Execution backend for the cells: `fork' (supervised worker \
     processes — crash isolation, deadlines, chaos), `domains' \
     (shared-memory pool of OCaml domains with work stealing — no \
     per-cell fork/Marshal cost; incompatible with --chaos, and fork \
     becomes unavailable for the rest of the process), or `seq' \
     (inline). Default: seq at -j 1, fork otherwise."
  in
  Arg.(
    value
    & opt (some engine) None
    & info [ "backend" ] ~docv:"ENGINE" ~doc)

let cmd_campaign =
  let resume =
    let doc =
      "Resume an interrupted campaign: skip cells already recorded in the \
       journal and extend it in place."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let jobs =
    let doc =
      "Supervised worker processes. Each worker leases one cell at a time; \
       a crashed, hung or killed worker costs only its in-flight cell."
    in
    Arg.(
      value
      & opt int (Harness.Parallel.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let journal =
    let doc = "Override the spec's journal path." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let stop_after =
    let doc =
      "Stop (exit 3) after journaling $(docv) more cells — a deterministic \
       interruption, for drills and CI."
    in
    Arg.(value & opt (some int) None & info [ "stop-after" ] ~docv:"N" ~doc)
  in
  let chaos =
    let doc =
      "Chaos mode `kill-workers': randomly SIGKILL supervised workers to \
       exercise recovery; the report must come out identical anyway."
    in
    Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"MODE" ~doc)
  in
  let chaos_seed =
    let doc = "Seed for the chaos schedule." in
    Arg.(value & opt int 1 & info [ "chaos-seed" ] ~docv:"N" ~doc)
  in
  let run_cmd =
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Execute a campaign under supervision, journaling each cell; \
            resumable after any crash")
      Term.(
        const campaign_run_cmd $ campaign_spec_arg $ resume $ jobs
        $ backend_arg $ journal $ stop_after $ chaos $ chaos_seed)
  in
  let cells_cmd =
    Cmd.v
      (Cmd.info "cells"
         ~doc:"List a campaign's cells (plan digest and label) without running")
      Term.(const campaign_cells_cmd $ campaign_spec_arg)
  in
  Cmd.group
    (Cmd.info "campaign"
       ~doc:
         "Supervised, resumable experiment campaigns with crash-safe \
          journals")
    [ run_cmd; cells_cmd ]

let run_t =
  Term.(
    const run_cmd $ collector_arg $ workload_arg $ spec_file_arg $ shape_arg
    $ heap_arg $ frames_arg $ pin_arg $ volume_arg $ verbose_arg $ faults_arg
    $ fault_seed_arg $ verify_arg $ trace_arg $ timeline_arg $ coworker_arg
    $ controller_arg $ control_window_arg)

let cmd_run =
  Cmd.v (Cmd.info "run" ~doc:"Run one collector on one workload") run_t

let cmd_list =
  Cmd.v
    (Cmd.info "list" ~doc:"List collectors and workloads")
    Term.(const list_cmd $ const ())

let cmd_minheap =
  Cmd.v
    (Cmd.info "minheap" ~doc:"Measure the minimum workable heap")
    Term.(const minheap_cmd $ collector_arg $ workload_arg $ volume_arg)

let cmd_trace_record =
  let output =
    Arg.(value & opt string "trace.txt" & info [ "o"; "output" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "trace-record"
       ~doc:"Record a workload's heap-operation trace to a file")
    Term.(const trace_record_cmd $ workload_arg $ volume_arg $ heap_arg $ output)

let cmd_trace_replay =
  let input =
    Arg.(value & opt string "trace.txt" & info [ "i"; "input" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "trace-replay"
       ~doc:"Replay a recorded trace against a collector")
    Term.(
      const trace_replay_cmd $ collector_arg $ input $ heap_arg $ frames_arg
      $ pin_arg)

let cmd_bench =
  let target = Arg.(value & pos 0 string "all" & info [] ~docv:"TARGET") in
  let full = Arg.(value & flag & info [ "full" ]) in
  let jobs =
    let doc =
      "Fan independent cells out over $(docv) forked workers. Results are \
       byte-identical to -j 1 — the simulation runs in virtual time."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let perf_reps =
    let doc =
      "Measured repetitions per microbenchmark for the `perf' target \
       (after one warm-up run)."
    in
    Arg.(
      value
      & opt int Harness.Perf.default_repetitions
      & info [ "perf-reps" ] ~docv:"N" ~doc)
  in
  let perf_out =
    let doc = "Output file for the `perf' target." in
    Arg.(
      value
      & opt string Harness.Perf.default_output
      & info [ "perf-out" ] ~docv:"FILE" ~doc)
  in
  let perf_guard =
    let doc =
      "For the `perf' target: instead of writing the output file, compare \
       fresh medians against the committed baseline (--perf-out names it) \
       and exit non-zero when any regresses by more than 20%."
    in
    Arg.(value & flag & info [ "guard" ] ~doc)
  in
  let slo_out =
    let doc =
      "For the `slo' target: also write a bcgc-slo-report/1 JSON report to \
       $(docv) (self-validated before the file stands)."
    in
    Arg.(value & opt (some string) None & info [ "slo-out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Regenerate a paper table or figure, run the request-serving SLO \
          matrix (target `slo'), the adaptive-controller matrix (target \
          `control'), or the wall-clock perf suite (target `perf')")
    Term.(
      const bench_cmd $ target $ full $ jobs $ backend_arg $ perf_reps
      $ perf_out $ perf_guard $ slo_out)

let cmd_trace =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let expect =
    let doc =
      "Comma-separated span names that must appear in the trace (e.g. \
       'minor,compacting,mark'); exit nonzero when one is missing."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-phases" ] ~docv:"NAMES" ~doc)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Summarise and validate a Chrome trace written by run --trace")
    Term.(const trace_summary_cmd $ file $ expect)

let () =
  let info =
    Cmd.info "bcgc" ~version:"1.0.0"
      ~doc:"Bookmarking collection (PLDI 2005) simulator"
  in
  let code =
    (* last-resort guard: a stray resource exception must produce a
       one-line diagnosis and a nonzero exit, never a backtrace *)
    try
      Cmd.eval'
        (Cmd.group info
           [
             cmd_run;
             cmd_list;
             cmd_minheap;
             cmd_bench;
             cmd_campaign;
             cmd_trace;
             cmd_trace_record;
             cmd_trace_replay;
           ])
    with
    | Vmsim.Vmm.Thrashing msg ->
        Printf.eprintf "bcgc: thrashing: %s\n" msg;
        1
    | Vmsim.Swap.Full ->
        Printf.eprintf "bcgc: swap device full\n";
        1
    | Gc_common.Collector.Heap_exhausted msg ->
        Printf.eprintf "bcgc: heap exhausted: %s\n" msg;
        1
    | e ->
        Printf.eprintf "bcgc: %s\n" (Printexc.to_string e);
        1
  in
  exit code

.PHONY: all build test ci bench bench-full examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full CI gate: everything compiles (including examples and benches) and
# the whole suite passes — test_faults runs the fault-plan smoke tests
# with fixed seeds, so regressions in the degradation paths fail here.
ci:
	dune build @all && dune runtest

bench:
	dune exec bench/main.exe

bench-full:
	FULL=1 dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/pressure_spike.exe
	dune exec examples/multi_jvm.exe
	dune exec examples/custom_workload.exe
	dune exec examples/trace_compare.exe

doc:
	dune build @doc

clean:
	dune clean

.PHONY: all build test bench bench-full examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-full:
	FULL=1 dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/pressure_spike.exe
	dune exec examples/multi_jvm.exe
	dune exec examples/custom_workload.exe
	dune exec examples/trace_compare.exe

doc:
	dune build @doc

clean:
	dune clean

.PHONY: all build test ci trace-smoke bench bench-full examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full CI gate: everything compiles (including examples and benches), the
# whole suite passes — test_faults runs the fault-plan smoke tests with
# fixed seeds, so regressions in the degradation paths fail here — and a
# traced run produces valid Chrome JSON covering every GC phase kind.
ci:
	dune build @all && dune runtest && $(MAKE) trace-smoke

# Trace smoke: a small pressured run known (deterministically) to exercise
# minor, full, compacting and every BC sub-phase; `bcgc trace` re-parses
# the emitted JSON and fails if any expected span kind is missing.
trace-smoke:
	./_build/default/bin/bcgc.exe run -c BC -w _201_compress \
	  --volume 0.1 --heap-kb 1536 --frames 500 --pin 250 \
	  --trace /tmp/bcgc-ci-trace.json
	./_build/default/bin/bcgc.exe trace /tmp/bcgc-ci-trace.json \
	  --expect-phases minor,full,compacting,mark,sweep,evacuate,bookmark-scan,reconcile

bench:
	dune exec bench/main.exe

bench-full:
	FULL=1 dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/pressure_spike.exe
	dune exec examples/multi_jvm.exe
	dune exec examples/custom_workload.exe
	dune exec examples/trace_compare.exe

doc:
	dune build @doc

clean:
	dune clean

.PHONY: all build test ci trace-smoke multiproc-smoke perf-smoke perf-guard campaign-smoke domains-smoke slo-smoke control-smoke perf examples doc clean bench bench-full

# Worker processes for the experiment matrices; results are byte-identical
# whatever the fan-out (the simulation runs in virtual time).
JOBS ?= $(shell nproc)

all: build

build:
	dune build @all

test:
	dune runtest

# Full CI gate: everything compiles (including examples and benches), the
# whole suite passes — test_faults runs the fault-plan smoke tests with
# fixed seeds, so regressions in the degradation paths fail here — and
# traced runs (one solo, one two-process) produce valid Chrome JSON
# covering every expected GC phase kind.
ci:
	dune build @all && dune runtest && $(MAKE) trace-smoke && $(MAKE) multiproc-smoke && $(MAKE) perf-smoke && $(MAKE) perf-guard && $(MAKE) campaign-smoke && $(MAKE) domains-smoke && $(MAKE) slo-smoke && $(MAKE) control-smoke

# Trace smoke: a small pressured run known (deterministically) to exercise
# minor, full, compacting and every BC sub-phase; `bcgc trace` re-parses
# the emitted JSON and fails if any expected span kind is missing.
trace-smoke:
	./_build/default/bin/bcgc.exe run -c BC -w _201_compress \
	  --volume 0.1 --heap-kb 1536 --frames 500 --pin 250 \
	  --trace /tmp/bcgc-ci-trace.json
	./_build/default/bin/bcgc.exe trace /tmp/bcgc-ci-trace.json \
	  --expect-phases minor,full,compacting,mark,sweep,evacuate,bookmark-scan,reconcile

# Multiproc smoke: BC and a competing GenMS instance share one tight
# machine; the primary must still complete every phase kind, and the
# trace must carry the per-process progress counter.
multiproc-smoke:
	./_build/default/bin/bcgc.exe run -c BC --coworker GenMS -w _201_compress \
	  --volume 0.1 --heap-kb 1536 --frames 500 \
	  --trace /tmp/bcgc-ci-multiproc.json
	./_build/default/bin/bcgc.exe trace /tmp/bcgc-ci-multiproc.json \
	  --expect-phases minor,full,compacting,mark,sweep,evacuate,bookmark-scan,reconcile

# Perf smoke: one repetition of the wall-clock suite, written to /tmp and
# schema-validated by `bcgc bench perf` itself. Guards the benchmark
# plumbing, not the numbers — wall-clock throughput is machine-dependent.
perf-smoke:
	./_build/default/bin/bcgc.exe bench perf --perf-reps 1 \
	  --perf-out /tmp/bcgc-ci-perf.json

# Perf guard: re-run the suite and fail if any median regresses by more
# than 20% against the committed BENCH_perf.json baseline. Three
# repetitions keep the medians stable enough for a 20% band on a quiet
# machine; refresh the baseline with `make perf` after intended changes.
perf-guard:
	./_build/default/bin/bcgc.exe bench perf --guard --perf-reps 3

# Campaign smoke: interruption drill on the 8-cell example campaign.
# Run three cells and stop (exit 3), resume to completion, re-run the whole
# campaign uninterrupted on a second journal, and require the two
# consolidated reports to be byte-identical; then once more under
# chaos (workers randomly SIGKILLed), same requirement.
campaign-smoke:
	rm -f /tmp/bcgc-ci-campaign.journal* /tmp/bcgc-ci-campaign-fresh.journal* /tmp/bcgc-ci-campaign-chaos.journal*
	./_build/default/bin/bcgc.exe campaign run examples/campaign_smoke.json \
	  -j 2 --journal /tmp/bcgc-ci-campaign.journal --stop-after 3; test $$? -eq 3
	./_build/default/bin/bcgc.exe campaign run examples/campaign_smoke.json \
	  -j 2 --journal /tmp/bcgc-ci-campaign.journal --resume
	./_build/default/bin/bcgc.exe campaign run examples/campaign_smoke.json \
	  -j 4 --journal /tmp/bcgc-ci-campaign-fresh.journal
	cmp /tmp/bcgc-ci-campaign.journal.report.json /tmp/bcgc-ci-campaign-fresh.journal.report.json
	./_build/default/bin/bcgc.exe campaign run examples/campaign_smoke.json \
	  -j 3 --journal /tmp/bcgc-ci-campaign-chaos.journal --chaos kill-workers --chaos-seed 11
	cmp /tmp/bcgc-ci-campaign.journal.report.json /tmp/bcgc-ci-campaign-chaos.journal.report.json

# Domains smoke: the same example campaign on the fork backend and on the
# shared-memory domain pool, in separate process invocations (Unix.fork is
# permanently refused once a domain has been spawned, so the two engines
# cannot share a process in that order). The consolidated reports must be
# byte-identical; jobs exceed the 8 cells to exercise the clamp.
domains-smoke:
	rm -f /tmp/bcgc-ci-domains-fork.journal* /tmp/bcgc-ci-domains-pool.journal*
	./_build/default/bin/bcgc.exe campaign run examples/campaign_smoke.json \
	  -j 4 --backend fork --journal /tmp/bcgc-ci-domains-fork.journal
	./_build/default/bin/bcgc.exe campaign run examples/campaign_smoke.json \
	  -j 4 --backend domains --journal /tmp/bcgc-ci-domains-pool.journal
	cmp /tmp/bcgc-ci-domains-fork.journal.report.json /tmp/bcgc-ci-domains-pool.journal.report.json

# SLO smoke: the quick request-serving matrix (shaped + flash load, three
# collectors). `bench slo` self-validates the written report against the
# bcgc-slo-report/1 schema (every cell's slo summary must round-trip)
# before the file lands; the greps assert the percentile columns reached
# the table and the schema tag reached the file.
slo-smoke:
	./_build/default/bin/bcgc.exe bench slo \
	  --slo-out /tmp/bcgc-ci-slo.json | tee /tmp/bcgc-ci-slo.txt
	grep -q "p999(ms)" /tmp/bcgc-ci-slo.txt
	grep -q "bcgc-slo-report/1" /tmp/bcgc-ci-slo.json

# Control smoke: the threshold controller's staged-degradation FSM across
# two fault plans, 1 ms decision windows. Deterministic per seed+plan. On
# the benign plan (lossy notices under steady pressure) the ladder may
# reach Pressure but must never touch Failsafe; on the spike plan (three
# 256-page transient bursts on tight frames) the run must degrade AND
# recover — end in Normal with no forced failsafe collections.
control-smoke:
	./_build/default/bin/bcgc.exe run -c BC -w _202_jess --volume 0.36 \
	  --heap-kb 3072 --frames 960 --pin 307 --controller threshold \
	  --control-window 1 --faults 'drop-evict=0.1,delay=0.05' \
	  | tee /tmp/bcgc-ci-control-benign.txt
	grep -q "control: threshold" /tmp/bcgc-ci-control-benign.txt
	! grep -E "peak=failsafe|forced-failsafes=[1-9]" /tmp/bcgc-ci-control-benign.txt
	./_build/default/bin/bcgc.exe run -c BC -w _202_jess --volume 0.36 \
	  --heap-kb 3072 --frames 960 --controller threshold \
	  --control-window 1 --faults 'drop-evict=0.3,spikes=3,spike-pages=256' \
	  | tee /tmp/bcgc-ci-control-spike.txt
	grep -q "control: threshold" /tmp/bcgc-ci-control-spike.txt
	grep -qE "peak=(pressure|emergency) .*final=normal forced-failsafes=0" /tmp/bcgc-ci-control-spike.txt

# Full wall-clock suite; refreshes the committed baseline at the repo root.
perf:
	./_build/default/bin/bcgc.exe bench perf

bench:
	JOBS=$(JOBS) dune exec bench/main.exe

bench-full:
	FULL=1 JOBS=$(JOBS) dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/pressure_spike.exe
	dune exec examples/multi_jvm.exe
	dune exec examples/custom_workload.exe
	dune exec examples/trace_compare.exe

doc:
	dune build @doc

clean:
	dune clean

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) from the simulation, and offers a Bechamel suite that
   measures the wall-clock cost of each experiment's workload kernel.

   Usage:
     bench/main.exe                 -- everything, quick sweeps
     bench/main.exe table1|fig2|fig3|fig45|fig6|fig7|ablation|multiproc|all
     bench/main.exe bechamel        -- Bechamel microbenchmarks
     FULL=1 bench/main.exe all      -- full (slow) sweeps
     JOBS=8 bench/main.exe all      -- fan cells over 8 forked workers *)

let mode () =
  match Sys.getenv_opt "FULL" with
  | Some ("1" | "true" | "yes") -> Harness.Experiments.Full
  | Some _ | None -> Harness.Experiments.Quick

let jobs () =
  match Option.bind (Sys.getenv_opt "JOBS") int_of_string_opt with
  | Some n -> n
  | None -> 1

(* One Bechamel test per table/figure: each measures the real time of a
   miniature instance of that experiment's simulation kernel. *)
let bechamel_tests () =
  let open Bechamel in
  let mini_spec volume =
    {
      (Workload.Spec.scale_volume Workload.Benchmarks.pseudojbb volume) with
      Workload.Spec.immortal_bytes = 300_000;
      window_bytes = 120_000;
    }
  in
  let run_once ~collector ~pressure () =
    let spec = mini_spec 0.02 in
    let heap_bytes = 2 * 1024 * 1024 in
    let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
    let plan =
      let base = Harness.Run.Plan.make ~collector ~spec ~heap_bytes in
      match pressure with
      | `None -> base
      | `Steady ->
          base
          |> Harness.Run.Plan.with_frames (heap_pages + 128)
          |> Harness.Run.Plan.with_pressure
               (Workload.Pressure.Steady
                  { after_progress = 0.1; pin_pages = heap_pages * 6 / 10 })
    in
    match Harness.Run.exec plan with
    | Harness.Metrics.Completed _ -> ()
    | Harness.Metrics.Exhausted msg | Harness.Metrics.Thrashed msg ->
        failwith msg
    | Harness.Metrics.Failed f -> failwith f.Harness.Metrics.reason
  in
  let staged f = Staged.stage f in
  [
    Test.make ~name:"table1:minheap-probe"
      (staged (fun () ->
           ignore
             (Harness.Minheap.find ~volume_scale:0.02 ~collector:"BC"
                ~spec:Workload.Benchmarks.jess ())));
    Test.make ~name:"fig2:no-pressure-BC"
      (staged (run_once ~collector:"BC" ~pressure:`None));
    Test.make ~name:"fig3:steady-BC"
      (staged (run_once ~collector:"BC" ~pressure:`Steady));
    Test.make ~name:"fig4+5:steady-GenMS"
      (staged (run_once ~collector:"GenMS" ~pressure:`Steady));
    Test.make ~name:"fig6:steady-BC-resize"
      (staged (run_once ~collector:"BC-resize" ~pressure:`Steady));
    Test.make ~name:"fig7:pair-BC"
      (staged (fun () ->
           let spec = mini_spec 0.02 in
           let heap_bytes = 2 * 1024 * 1024 in
           let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
           ignore
             (Harness.Run.exec_all
                (Harness.Run.Plan.make ~collector:"BC" ~spec ~heap_bytes
                |> Harness.Run.Plan.with_frames (2 * heap_pages)
                |> Harness.Run.Plan.with_process ~collector:"BC" ~spec))));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"experiments" (bechamel_tests ()))
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
          Printf.printf "%-40s %12.3f ms/run\n" name (est /. 1e6)
      | Some [] | None -> Printf.printf "%-40s (no estimate)\n" name)
    results

let () =
  let m = mode () in
  Harness.Experiments.set_jobs (jobs ());
  let target = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match target with
  | "table1" -> Harness.Experiments.table1 m
  | "fig2" -> Harness.Experiments.figure2 m
  | "fig3" -> Harness.Experiments.figure3 m
  | "fig4" | "fig5" | "fig45" -> Harness.Experiments.figure45 m
  | "fig6" -> Harness.Experiments.figure6 m
  | "fig7" -> Harness.Experiments.figure7 m
  | "ablation" -> Harness.Experiments.ablation m
  | "ssd" -> Harness.Experiments.ssd m
  | "recovery" -> Harness.Experiments.recovery m
  | "mixed" -> Harness.Experiments.mixed m
  | "multiproc" -> Harness.Experiments.multiprocess m
  | "faults" -> Harness.Experiments.faults m
  | "trace" -> Harness.Experiments.trace_export m
  | "campaign" -> Harness.Experiments.campaign m
  | "slo" -> Harness.Experiments.slo m
  | "all" -> Harness.Experiments.all m
  | "bechamel" -> run_bechamel ()
  | "perf" ->
      (* wall-clock suite; PERF_REPS / PERF_OUT override the defaults *)
      let reps =
        Option.value
          (Option.bind (Sys.getenv_opt "PERF_REPS") int_of_string_opt)
          ~default:Harness.Perf.default_repetitions
      in
      let out =
        Option.value (Sys.getenv_opt "PERF_OUT")
          ~default:Harness.Perf.default_output
      in
      let r =
        Harness.Perf.run ~repetitions:reps
          ~progress:(fun label -> Printf.eprintf "perf: %s\n%!" label)
          ()
      in
      Harness.Perf.write_file ~path:out r;
      Format.printf "%a" Harness.Perf.pp r
  | other ->
      Printf.eprintf
        "unknown target %S (try table1 fig2 fig3 fig45 fig6 fig7 ablation \
         ssd multiproc faults trace campaign slo perf all bechamel)\n"
        other;
      exit 1

module Json = Telemetry.Json
module Fault_plan = Faults.Fault_plan
module Pressure = Workload.Pressure

type retry = { attempts : int; backoff_s : float }

type t = {
  name : string;
  collectors : string list;
  workloads : string list;
  volume : float;
  heap_multipliers : float list;
  fault_plans : string list;
  pressures : string list;
  controllers : string list;
  fault_seed : int;
  iterations : int;
  frames_fraction : float option;
  deadline_s : float option;
  event_cap : int option;
  retry : retry;
  journal : string;
}

type cell = {
  index : int;
  label : string;
  digest : string;
  plan : Run.Plan.t;
}

let schema_version = "bcgc-campaign/1"
let report_schema = "bcgc-campaign-report/1"

(* ------------------------------------------------------------------ *)
(* Workload grammar: NAME, or NAME@SHAPE to override a serving
   workload's load shape (SHAPE per [Workload.Shapes.of_string]).       *)

let split_workload w =
  match String.index_opt w '@' with
  | None -> (w, None)
  | Some i ->
      (String.sub w 0 i, Some (String.sub w (i + 1) (String.length w - i - 1)))

let resolve_workload w =
  let name, shape = split_workload w in
  match Workload.Catalog.find_opt name with
  | None ->
      Error
        (Printf.sprintf "unknown workload %S (known: %s)" name
           (String.concat ", " (Workload.Catalog.names ())))
  | Some info -> (
      match shape with
      | None -> Ok info.Workload.Catalog.params
      | Some s -> (
          match info.Workload.Catalog.family with
          | Workload.Catalog.Batch ->
              Error
                (Printf.sprintf
                   "workload %S: batch workloads take no @SHAPE override" w)
          | Workload.Catalog.Serving -> (
              match Workload.Shapes.of_string s with
              | shape ->
                  Ok (Workload.Catalog.with_shape shape
                        info.Workload.Catalog.params)
              | exception Failure m ->
                  Error (Printf.sprintf "workload %S: %s" w m))))

(* ------------------------------------------------------------------ *)
(* Pressure-schedule grammar                                           *)

let pressure_of_string s =
  let err () =
    Error
      (Printf.sprintf
         "bad pressure %S (want none | steady:PAGES[@FRAC] | \
          ramp:INIT:STEP:STEP_MS:MAX)"
         s)
  in
  if s = "none" then Ok Pressure.None_
  else
    match String.index_opt s ':' with
    | None -> err ()
    | Some i -> (
        let kind = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match kind with
        | "steady" -> (
            let pages_s, frac =
              match String.index_opt rest '@' with
              | None -> (rest, Some 0.1)
              | Some j ->
                  ( String.sub rest 0 j,
                    float_of_string_opt
                      (String.sub rest (j + 1) (String.length rest - j - 1))
                  )
            in
            match (int_of_string_opt pages_s, frac) with
            | Some p, Some f when p > 0 && f >= 0. && f <= 1. ->
                Ok (Pressure.Steady { after_progress = f; pin_pages = p })
            | _ -> err ())
        | "ramp" -> (
            match
              List.map int_of_string_opt (String.split_on_char ':' rest)
            with
            | [ Some init; Some step; Some step_ms; Some maxp ]
              when init >= 0 && step > 0 && step_ms > 0 && maxp >= init ->
                Ok
                  (Pressure.Ramp
                     {
                       after_progress = 0.1;
                       initial_pages = init;
                       pages_per_step = step;
                       step_ns = step_ms * 1_000_000;
                       max_pages = maxp;
                     })
            | _ -> err ())
        | _ -> err ())

(* ------------------------------------------------------------------ *)
(* Spec parsing & validation                                           *)

exception Spec_error of string

let failf fmt = Printf.ksprintf (fun m -> raise (Spec_error m)) fmt

let allowed_keys =
  [
    "schema"; "name"; "collectors"; "workloads"; "volume";
    "heap_multipliers"; "fault_plans"; "pressures"; "controllers";
    "fault_seed"; "iterations"; "frames_fraction"; "deadline_s";
    "event_cap"; "retry"; "journal";
  ]

let str_field j key =
  match Json.member key j with
  | Some (Json.Str s) -> s
  | Some _ -> failf "%s: expected a string" key
  | None -> failf "missing required field %S" key

let opt_num j key =
  match Json.member key j with
  | None | Some Json.Null -> None
  | Some (Json.Num f) -> Some f
  | Some _ -> failf "%s: expected a number" key

let opt_int j key =
  match opt_num j key with
  | None -> None
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | Some _ -> failf "%s: expected an integer" key

let str_list j key =
  match Json.member key j with
  | Some (Json.List items) ->
      List.map
        (function
          | Json.Str s -> s
          | _ -> failf "%s: expected a list of strings" key)
        items
  | Some _ -> failf "%s: expected a list of strings" key
  | None -> failf "missing required field %S" key

let num_list j key =
  match Json.member key j with
  | Some (Json.List items) ->
      List.map
        (function
          | Json.Num f -> f
          | _ -> failf "%s: expected a list of numbers" key)
        items
  | Some _ -> failf "%s: expected a list of numbers" key
  | None -> failf "missing required field %S" key

(* Duplicate sweep entries would enumerate two cells with the same plan
   digest, making journal records ambiguous — reject at parse time. *)
let check_distinct key to_str xs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      let s = to_str x in
      if Hashtbl.mem seen s then failf "%s: duplicate entry %S" key s;
      Hashtbl.add seen s ())
    xs

let of_json j =
  try
    (match j with
    | Json.Obj fields ->
        List.iter
          (fun (k, _) ->
            if not (List.mem k allowed_keys) then
              failf "unknown field %S in campaign spec" k)
          fields
    | _ -> failf "campaign spec must be a JSON object");
    (match Json.member "schema" j with
    | Some (Json.Str s) when s = schema_version -> ()
    | Some (Json.Str s) ->
        failf "unsupported schema %S (this build reads %S)" s schema_version
    | _ -> failf "missing required field \"schema\" (%S)" schema_version);
    let name = str_field j "name" in
    let collectors = str_list j "collectors" in
    if collectors = [] then failf "collectors: must not be empty";
    List.iter
      (fun c ->
        if Registry.find c = None then
          failf "unknown collector %S (known: %s)" c
            (String.concat ", " Registry.names))
      collectors;
    check_distinct "collectors" Fun.id collectors;
    let workloads = str_list j "workloads" in
    if workloads = [] then failf "workloads: must not be empty";
    List.iter
      (fun w ->
        match resolve_workload w with
        | Ok (_ : Workload.Catalog.params) -> ()
        | Error e -> failf "%s" e)
      workloads;
    check_distinct "workloads" Fun.id workloads;
    let volume = Option.value (opt_num j "volume") ~default:1.0 in
    if volume <= 0. then failf "volume: must be positive";
    let heap_multipliers = num_list j "heap_multipliers" in
    if heap_multipliers = [] then failf "heap_multipliers: must not be empty";
    List.iter
      (fun m -> if m <= 0. then failf "heap_multipliers: must be positive")
      heap_multipliers;
    check_distinct "heap_multipliers" (Printf.sprintf "%.17g") heap_multipliers;
    let fault_plans =
      match Json.member "fault_plans" j with
      | None -> [ "none" ]
      | Some _ -> str_list j "fault_plans"
    in
    if fault_plans = [] then failf "fault_plans: must not be empty";
    List.iter
      (fun f ->
        match Fault_plan.spec_of_string f with
        | Ok _ -> ()
        | Error e -> failf "fault_plans: %s" e)
      fault_plans;
    check_distinct "fault_plans" Fun.id fault_plans;
    let pressures =
      match Json.member "pressures" j with
      | None -> [ "none" ]
      | Some _ -> str_list j "pressures"
    in
    if pressures = [] then failf "pressures: must not be empty";
    List.iter
      (fun p ->
        match pressure_of_string p with
        | Ok _ -> ()
        | Error e -> failf "pressures: %s" e)
      pressures;
    check_distinct "pressures" Fun.id pressures;
    let controllers =
      match Json.member "controllers" j with
      | None -> [ "off" ]
      | Some _ -> str_list j "controllers"
    in
    if controllers = [] then failf "controllers: must not be empty";
    List.iter
      (fun c ->
        if c <> "off" && Control.Registry.find_opt c = None then
          failf "unknown controller %S (known: off, %s)" c
            (String.concat ", " (Control.Registry.names ())))
      controllers;
    check_distinct "controllers" Fun.id controllers;
    let fault_seed =
      Option.value (opt_int j "fault_seed") ~default:Run.default_fault_seed
    in
    let iterations = Option.value (opt_int j "iterations") ~default:1 in
    if iterations < 1 then failf "iterations: must be >= 1";
    let frames_fraction = opt_num j "frames_fraction" in
    Option.iter
      (fun f -> if f <= 0. then failf "frames_fraction: must be positive")
      frames_fraction;
    let deadline_s = opt_num j "deadline_s" in
    Option.iter
      (fun d -> if d <= 0. then failf "deadline_s: must be positive")
      deadline_s;
    let event_cap = opt_int j "event_cap" in
    Option.iter
      (fun c -> if c < 1 then failf "event_cap: must be >= 1")
      event_cap;
    let retry =
      match Json.member "retry" j with
      | None -> { attempts = 2; backoff_s = 0.25 }
      | Some r ->
          let attempts = Option.value (opt_int r "attempts") ~default:2 in
          if attempts < 1 then failf "retry.attempts: must be >= 1";
          let backoff_s =
            Option.value (opt_num r "backoff_s") ~default:0.25
          in
          if backoff_s < 0. then failf "retry.backoff_s: must be >= 0";
          (match r with
          | Json.Obj fields ->
              List.iter
                (fun (k, _) ->
                  if k <> "attempts" && k <> "backoff_s" then
                    failf "unknown field %S in retry policy" k)
                fields
          | _ -> failf "retry: expected an object");
          { attempts; backoff_s }
    in
    let journal = str_field j "journal" in
    if journal = "" then failf "journal: must not be empty";
    Ok
      {
        name;
        collectors;
        workloads;
        volume;
        heap_multipliers;
        fault_plans;
        pressures;
        controllers;
        fault_seed;
        iterations;
        frames_fraction;
        deadline_s;
        event_cap;
        retry;
        journal;
      }
  with Spec_error m -> Error m

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let of_file path =
  match read_file path with
  | exception Sys_error m -> Error m
  | content -> (
      match Json.of_string_opt content with
      | None -> Error (Printf.sprintf "%s: not valid JSON" path)
      | Some j -> (
          match of_json j with
          | Ok t -> Ok t
          | Error e -> Error (Printf.sprintf "%s: %s" path e)))

(* ------------------------------------------------------------------ *)
(* Cell enumeration                                                    *)

let cells t =
  let idx = ref 0 in
  let acc = ref [] in
  List.iter
    (fun collector ->
      List.iter
        (fun wname ->
          let base =
            match resolve_workload wname with
            | Ok p -> p
            | Error e -> invalid_arg e
          in
          let workload =
            if t.volume = 1.0 then base
            else Workload.Catalog.scale_volume base t.volume
          in
          List.iter
            (fun mult ->
              let heap_bytes =
                int_of_float
                  (mult
                  *. float_of_int (Workload.Catalog.base_heap_bytes base))
              in
              List.iter
                (fun fstr ->
                  List.iter
                    (fun pstr ->
                      let plan =
                        Run.Plan.make_workload ~collector ~workload
                          ~heap_bytes
                      in
                      let plan =
                        match t.frames_fraction with
                        | None -> plan
                        | Some frac ->
                            let heap_pages =
                              Vmsim.Page.count_for_bytes heap_bytes
                            in
                            Run.Plan.with_frames
                              (max 64
                                 (int_of_float
                                    (frac *. float_of_int heap_pages)))
                              plan
                      in
                      let plan =
                        if t.iterations > 1 then
                          Run.Plan.with_iterations t.iterations plan
                        else plan
                      in
                      let plan =
                        match pressure_of_string pstr with
                        | Ok Pressure.None_ -> plan
                        | Ok p -> Run.Plan.with_pressure p plan
                        | Error e -> invalid_arg e
                      in
                      let plan =
                        match Fault_plan.spec_of_string fstr with
                        | Ok sp when sp = Fault_plan.none -> plan
                        | Ok sp ->
                            Run.Plan.with_faults ~seed:t.fault_seed sp plan
                        | Error e -> invalid_arg e
                      in
                      let plan =
                        match t.event_cap with
                        | Some c -> Run.Plan.with_event_cap c plan
                        | None -> plan
                      in
                      List.iter
                        (fun ctl ->
                          let plan =
                            if ctl = "off" then plan
                            else Run.Plan.with_controller ctl plan
                          in
                          (* "off" cells keep the historical label (and
                             plan digest), so controller-less specs
                             enumerate exactly as before *)
                          let label =
                            Printf.sprintf "%s/%s x%g faults=%s press=%s%s"
                              collector wname mult fstr pstr
                              (if ctl = "off" then ""
                               else " ctl=" ^ ctl)
                          in
                          acc :=
                            {
                              index = !idx;
                              label;
                              digest = Run.Plan.digest plan;
                              plan;
                            }
                            :: !acc;
                          incr idx)
                        t.controllers)
                    t.pressures)
                t.fault_plans)
            t.heap_multipliers)
        t.workloads)
    t.collectors;
  List.rev !acc

let campaign_digest_of_cells cs =
  Digest.to_hex
    (Digest.string
       (schema_version ^ "|" ^ String.concat "," (List.map (fun c -> c.digest) cs)))

let campaign_digest t = campaign_digest_of_cells (cells t)

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* Full-file durability for header and report: write to a sibling temp
   file, fsync, rename — a crash leaves either the old file or the new
   one, never a prefix. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd content 0 (String.length content);
      Unix.fsync fd);
  Unix.rename tmp path

module Journal = struct
  type entry = {
    cell : string;
    label : string;
    attempts : int;
    outcome_label : string;
    outcome : Json.t;
  }

  let header_line ~name ~digest ~cells =
    Json.to_string
      (Json.Obj
         [
           ("schema", Json.Str schema_version);
           ("name", Json.Str name);
           ("campaign_digest", Json.Str digest);
           ("cells", Json.int cells);
         ])

  let entry_line e =
    Json.to_string
      (Json.Obj
         [
           ("cell", Json.Str e.cell);
           ("label", Json.Str e.label);
           ("attempts", Json.int e.attempts);
           ("outcome_label", Json.Str e.outcome_label);
           ("outcome", e.outcome);
         ])

  let create ~path ~name ~digest ~cells =
    write_file_atomic path (header_line ~name ~digest ~cells ^ "\n")

  (* One write(2), then fsync: a crash can tear only the final line of
     the file, and [load] discards exactly that. *)
  let append fd e =
    let line = entry_line e ^ "\n" in
    write_all fd line 0 (String.length line);
    Unix.fsync fd

  let entry_of_json j =
    let str k = Option.bind (Json.member k j) Json.str_opt in
    match
      ( str "cell",
        str "label",
        Option.bind (Json.member "attempts" j) Json.num_opt,
        str "outcome_label",
        Json.member "outcome" j )
    with
    | Some cell, Some label, Some att, Some outcome_label, Some outcome
      when Float.is_integer att ->
        Some
          {
            cell;
            label;
            attempts = int_of_float att;
            outcome_label;
            outcome;
          }
    | _ -> None

  let load ~path ~expect_digest =
    match read_file path with
    | exception Sys_error m -> Error m
    | content -> (
        let segs = String.split_on_char '\n' content in
        let nsegs = List.length segs in
        (* A well-formed journal ends with '\n', so the final segment is
           empty; anything else there is a torn record from a crash
           mid-append, and only there do we forgive. *)
        match segs with
        | [] | [ "" ] -> Error (path ^ ": empty journal")
        | header :: rest -> (
            match Json.of_string_opt header with
            | None -> Error (path ^ ": corrupt journal header")
            | Some h -> (
                let hstr k = Option.bind (Json.member k h) Json.str_opt in
                match (hstr "schema", hstr "campaign_digest") with
                | Some s, _ when s <> schema_version ->
                    Error
                      (Printf.sprintf
                         "%s: journal schema %S (this build reads %S)" path
                         s schema_version)
                | Some _, Some d when d <> expect_digest ->
                    Error
                      (path
                     ^ ": journal belongs to a different campaign spec \
                        (campaign digest mismatch)")
                | Some _, Some _ ->
                    let entries = ref [] in
                    let dropped = ref 0 in
                    let rec go i = function
                      | [] -> Ok ()
                      | "" :: tl when i = nsegs - 1 && tl = [] ->
                          Ok () (* trailing newline *)
                      | seg :: tl -> (
                          let last = i = nsegs - 1 && tl = [] in
                          match
                            Option.bind (Json.of_string_opt seg)
                              entry_of_json
                          with
                          | Some e ->
                              entries := e :: !entries;
                              go (i + 1) tl
                          | None ->
                              if last then begin
                                incr dropped;
                                Ok ()
                              end
                              else
                                Error
                                  (Printf.sprintf
                                     "%s: corrupt journal record at line \
                                      %d (only the final line may be \
                                      torn)"
                                     path (i + 1)))
                    in
                    (match go 1 rest with
                    | Ok () -> Ok (List.rev !entries, !dropped)
                    | Error e -> Error e)
                | _ -> Error (path ^ ": corrupt journal header"))))
end

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type summary = {
  total : int;
  ok : int;
  degraded : int;
  exhausted : int;
  thrashed : int;
  failed : int;
  retried : int;
  quarantined : int;
  chaos_kills : int;
}

type status =
  | Complete of { report_path : string; summary : summary }
  | Interrupted of { completed : int; total : int }

let report_path ~journal = journal ^ ".report.json"

(* Normalise an outcome's JSON through one print/parse round-trip. The
   printer's float format reaches a fixed point after one trip, so a
   fresh outcome and one replayed from the journal (already printed and
   parsed once) serialise to identical bytes — the keystone of
   byte-identical resumed reports. *)
let normalize_json j =
  match Json.of_string_opt (Json.to_string j) with
  | Some j' -> j'
  | None -> j

let quarantined_outcome failures =
  Metrics.Failed
    {
      Metrics.reason = Supervisor.describe_failures failures;
      exn_name = "Campaign.Quarantined";
      fault_stats = None;
      partial = None;
    }

let take n xs =
  let rec go k acc = function
    | x :: tl when k > 0 -> go (k - 1) (x :: acc) tl
    | _ -> List.rev acc
  in
  go n [] xs

let run ?(jobs = 1) ?(backend = `Fork) ?chaos ?stop_after ?(resume = false)
    ?journal_override ?(log = ignore) t =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let* () = if jobs < 1 then Error "jobs must be >= 1" else Ok () in
  let* () =
    match (backend, chaos) with
    | (`Domains | `Seq), Some _ ->
        Error
          "chaos requires the fork backend (only a worker process can be \
           SIGKILLed)"
    | _ -> Ok ()
  in
  let* () =
    match stop_after with
    | Some k when k < 1 -> Error "stop_after must be >= 1"
    | _ -> Ok ()
  in
  let path = Option.value journal_override ~default:t.journal in
  let cs = cells t in
  let n = List.length cs in
  let cell_tbl = Hashtbl.create n in
  List.iter (fun c -> Hashtbl.replace cell_tbl c.digest c) cs;
  let* () =
    if Hashtbl.length cell_tbl < n then
      Error "campaign enumerates duplicate cells (identical plan digests)"
    else Ok ()
  in
  let cdigest = campaign_digest_of_cells cs in
  let existing = Sys.file_exists path in
  let* () =
    if existing && not resume then
      Error
        (path
       ^ ": journal already exists; resume it (--resume) or delete it — \
          never silently overwritten")
    else Ok ()
  in
  let* prior, dropped =
    if existing then Journal.load ~path ~expect_digest:cdigest
    else Ok ([], 0)
  in
  if dropped > 0 then begin
    (* the torn record is exactly the bytes after the last newline; cut
       them off so this session's appends don't fuse onto the garbage
       and corrupt the journal mid-file for the next load *)
    (match String.rindex_opt (read_file path) '\n' with
    | Some i -> Unix.truncate path (i + 1)
    | None -> ());
    log
      (Printf.sprintf "%s: discarded %d torn trailing record" path dropped)
  end;
  let done_tbl = Hashtbl.create n in
  let* () =
    List.fold_left
      (fun acc (e : Journal.entry) ->
        let* () = acc in
        if not (Hashtbl.mem cell_tbl e.Journal.cell) then
          Error
            (Printf.sprintf "%s: journal records unknown cell %s" path
               e.Journal.cell)
        else begin
          if not (Hashtbl.mem done_tbl e.Journal.cell) then
            Hashtbl.replace done_tbl e.Journal.cell e;
          Ok ()
        end)
      (Ok ()) prior
  in
  let pending =
    List.filter (fun c -> not (Hashtbl.mem done_tbl c.digest)) cs
  in
  let todo, interrupted =
    match stop_after with
    | Some k when k < List.length pending -> (take k pending, true)
    | _ -> (pending, false)
  in
  if not existing then
    Journal.create ~path ~name:t.name ~digest:cdigest ~cells:n;
  let stats =
    ref
      {
        Supervisor.retried = 0;
        quarantined = 0;
        chaos_kills = 0;
        deadline_kills = 0;
        workers_spawned = 0;
        workers_lost = 0;
      }
  in
  if todo <> [] then begin
    let items = Array.of_list todo in
    let fd = Unix.openfile path [ O_WRONLY; O_APPEND ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let finished = ref (Hashtbl.length done_tbl) in
        let on_result i outcome_cell =
          let c = items.(i) in
          let attempts, outcome =
            match outcome_cell with
            | Supervisor.Done { value; attempts; _ } -> (attempts, value)
            | Supervisor.Quarantined { attempts; failures } ->
                (attempts, quarantined_outcome failures)
          in
          let entry =
            {
              Journal.cell = c.digest;
              label = c.label;
              attempts;
              outcome_label = Metrics.outcome_label outcome;
              outcome = Metrics.outcome_to_json outcome;
            }
          in
          Journal.append fd entry;
          Hashtbl.replace done_tbl c.digest entry;
          incr finished;
          log
            (Printf.sprintf "[%d/%d] %-44s %s%s" !finished n c.label
               entry.Journal.outcome_label
               (if attempts > 1 then Printf.sprintf " (attempt %d)" attempts
                else ""))
        in
        let _cells, st =
          Supervisor.run ~jobs ~backend ~force_fork:true
            ?deadline_s:t.deadline_s ~attempts:t.retry.attempts
            ~backoff_s:t.retry.backoff_s ?chaos ~on_result
            (fun c -> Run.exec c.plan)
            items
        in
        stats := st)
  end;
  if interrupted then
    Ok (Interrupted { completed = Hashtbl.length done_tbl; total = n })
  else begin
    (* every cell accounted for: consolidate, in spec order *)
    let count lbl =
      List.length
        (List.filter
           (fun c ->
             (Hashtbl.find done_tbl c.digest).Journal.outcome_label = lbl)
           cs)
    in
    let ok = count "ok"
    and degraded = count "degraded"
    and exhausted = count "exhausted"
    and thrashed = count "thrashed"
    and failed = count "failed" in
    let cell_json c =
      let e = Hashtbl.find done_tbl c.digest in
      Json.Obj
        [
          ("cell", Json.Str c.digest);
          ("label", Json.Str c.label);
          ("outcome_label", Json.Str e.Journal.outcome_label);
          ("outcome", normalize_json e.Journal.outcome);
        ]
    in
    (* session-only stats (retries, chaos) stay out of the report so an
       interrupted-and-resumed campaign consolidates byte-identically *)
    let report =
      Json.Obj
        [
          ("schema", Json.Str report_schema);
          ("campaign", Json.Str t.name);
          ("campaign_digest", Json.Str cdigest);
          ("cells", Json.List (List.map cell_json cs));
          ( "summary",
            Json.Obj
              [
                ("total", Json.int n);
                ("ok", Json.int ok);
                ("degraded", Json.int degraded);
                ("exhausted", Json.int exhausted);
                ("thrashed", Json.int thrashed);
                ("failed", Json.int failed);
              ] );
        ]
    in
    let rpath = report_path ~journal:path in
    write_file_atomic rpath (Json.to_string report ^ "\n");
    let st = !stats in
    Ok
      (Complete
         {
           report_path = rpath;
           summary =
             {
               total = n;
               ok;
               degraded;
               exhausted;
               thrashed;
               failed;
               retried = st.Supervisor.retried;
               quarantined = st.Supervisor.quarantined;
               chaos_kills = st.Supervisor.chaos_kills;
             };
         })
  end

(** Experiment runner: one collector × workload × heap size × physical
    memory × pressure schedule → metrics.

    Each run builds a fresh virtual machine: clock, VMM with the given
    frame count, one simulated process per JVM instance plus (when a
    schedule is given) a [signalmem] process. The mutators are stepped in
    slices; the pressure schedule is applied between slices. *)

type setup = {
  collector : string;  (** registry name *)
  spec : Workload.Spec.t;
  heap_bytes : int;
  frames : int;  (** physical memory, in pages *)
  pressure : Workload.Pressure.t;
  ops_per_slice : int;
  costs : Vmsim.Costs.t;  (** the machine's cost model *)
  iterations : int;
      (** the paper's compile-and-reset methodology (§5.1): run the
          workload this many times, with a full collection between
          iterations, and measure only the last — so measurement starts
          on a warmed, pre-fragmented heap. Default 1. *)
  faults : Faults.Fault_plan.spec option;
      (** fault-injection plan threaded into the machine's VMM and swap
          device; its scripted spikes are added to [pressure] *)
  fault_seed : int;  (** seed for the plan — same seed, same schedule *)
  verify : bool;
      (** run the {!Gc_common.Verify} heap verifier and the collector's
          own invariant check after a completed run; violations turn the
          outcome into [Failed] *)
  trace : Telemetry.Sink.t option;
      (** telemetry sink attached to the machine's VMM for the run; with
          [None] (the default) every emission site reduces to a branch,
          and results are bit-identical to an untraced run *)
}

val default_slice : int

val default_fault_seed : int

val setup :
  ?frames:int ->
  ?pressure:Workload.Pressure.t ->
  ?ops_per_slice:int ->
  ?costs:Vmsim.Costs.t ->
  ?iterations:int ->
  ?faults:Faults.Fault_plan.spec ->
  ?fault_seed:int ->
  ?verify:bool ->
  ?trace:Telemetry.Sink.t ->
  collector:string ->
  spec:Workload.Spec.t ->
  heap_bytes:int ->
  unit ->
  setup
(** [frames] defaults to a pressure-free machine (4× heap + slack);
    [costs] to {!Vmsim.Costs.default} (the paper's disk); [faults] to no
    injection; [verify] to off. *)

val run : setup -> Metrics.outcome
(** Runs in per-cell isolation: any exception other than the two
    resource outcomes is caught and recorded as [Metrics.Failed] with
    the fault counters and partial stats, never propagated. *)

val run_pair : setup -> setup -> Metrics.outcome * Metrics.outcome
(** Figure 7: two instances sharing one machine (and one frame pool),
    interleaved slice by slice. The two setups must agree on [frames];
    pressure comes only from their combined footprints. *)

(** Experiment runner: N (collector × workload × heap size) processes ×
    physical memory × pressure schedule → per-process metrics.

    A run is described by a {!Plan}: an immutable value built with
    {!Plan.make} and refined by [with_*] combinators, then executed
    with {!exec} (primary process's outcome) or {!exec_all} (every
    process's outcome). Each execution builds a fresh {!Machine}:
    clock, VMM with the given frame count, one simulated process per
    JVM instance — a plan may host several, sharing the frame pool —
    plus (when a schedule is given) a [signalmem] process. The mutators
    are stepped in slices under the plan's scheduling policy; the
    pressure schedule is applied between rounds.

    {[
      Run.Plan.make ~collector:"BC" ~spec ~heap_bytes
      |> Run.Plan.with_frames 900
      |> Run.Plan.with_iterations 2
      |> Run.Plan.with_process ~collector:"GenMS" ~spec:other
      |> Run.exec_all
    ]} *)

module Plan : sig
  type proc = private {
    collector : string;  (** collector registry name *)
    workload : Workload.Catalog.params;  (** batch spec or serving spec *)
    heap_bytes : int;
    share : int;  (** slice weight under [Proportional] *)
    priority : int;  (** ordering under [Priority]; higher wins *)
  }

  type t

  val make : collector:string -> spec:Workload.Spec.t -> heap_bytes:int -> t
  (** A single-process batch plan with the defaults: ample frames (no
      pressure), no faults, one iteration, no verification, no trace,
      round-robin scheduling. *)

  val make_workload :
    collector:string ->
    workload:Workload.Catalog.params ->
    heap_bytes:int ->
    t
  (** {!make}, generalised over both workload families. *)

  val of_workload :
    collector:string -> workload:Workload.Catalog.info -> heap_bytes:int -> t
  (** {!make_workload} on a registry entry — plans name workloads the
      same way they name collectors. *)

  val with_workload : Workload.Catalog.info -> t -> t
  (** Replace the {e primary} process's workload with a registry
      entry's. *)

  val with_workload_params : Workload.Catalog.params -> t -> t

  val with_frames : int -> t -> t
  (** Physical memory, in pages. Default: room for every process's heap
      plus slack (4× total heap pages + 2048). *)

  val with_pressure : Workload.Pressure.t -> t -> t

  val with_ops_per_slice : int -> t -> t

  val with_costs : Vmsim.Costs.t -> t -> t
  (** The machine's cost model; defaults to {!Vmsim.Costs.default}
      (the paper's disk). *)

  val with_iterations : int -> t -> t
  (** The paper's compile-and-reset methodology (§5.1): run the
      workload this many times, with a full collection between
      iterations, and measure only the last — so measurement starts on
      a warmed, pre-fragmented heap. Default 1. *)

  val with_faults : ?seed:int -> Faults.Fault_plan.spec -> t -> t
  (** Fault-injection plan threaded into the machine's VMM and swap
      device; its scripted spikes are added to the pressure schedule.
      [seed] defaults to {!default_fault_seed} — same seed, same
      schedule. *)

  val with_verify : t -> t
  (** Run the {!Gc_common.Verify} heap oracle and every collector's own
      invariant check after a completed run; violations turn the
      outcome into [Failed]. *)

  val with_trace : Telemetry.Sink.t -> t -> t
  (** Attach a telemetry sink to the machine's VMM for the run; without
      one every emission site reduces to a branch, and results are
      bit-identical to an untraced run. *)

  val with_policy : Machine.policy -> t -> t

  val with_event_cap : int -> t -> t
  (** Per-cell budget on total virtual mutator events (slices dispatched
      x ops per slice); a run that exceeds it dies on
      {!Machine.Budget_exceeded} and is recorded as a [Failed] cell.
      The campaign runner's guard against one runaway configuration
      stalling an unattended sweep. Default: unbounded. *)

  val with_address_base : int -> t -> t
  (** First page of the machine's shared address space (default 16).
      Bases near 2^30 exercise the sparse page table: the harness's
      memory stays proportional to touched pages, and simulated metrics
      are independent of the base — only the page numbers in traces
      shift — provided the base preserves word alignment (is congruent
      to the old base mod 63): residency clustering groups pages into
      63-bit words, so an unaligned base legitimately changes which
      pages share a discard granule. Appended to {!canonical} only when
      set, so existing plan digests are unchanged. *)

  val with_controller : ?window_ns:int -> string -> t -> t
  (** Attach an online memory controller (a {!Control.Registry} policy
      name) deciding every [window_ns] of virtual time (default 5 ms).
      Each process gets its own controller instance, actuating its own
      collector's {!Gc_common.Collector.tuning} knobs; on a shared
      machine the instances compete for the one frame pool. Raises
      [Failure] on an unknown policy name. Appended to {!canonical} only
      when set, so existing plan digests are unchanged; without a
      controller the run is bit-identical to seed. *)

  val with_share : int -> t -> t
  (** Slice weight of the {e primary} process under [Proportional]. *)

  val with_priority : int -> t -> t
  (** Priority of the {e primary} process under [Priority]. *)

  val with_process :
    ?share:int ->
    ?priority:int ->
    ?heap_bytes:int ->
    collector:string ->
    spec:Workload.Spec.t ->
    t ->
    t
  (** Add another batch mutator process to the machine. [heap_bytes]
      defaults to the primary's. Processes may use different collectors
      — each gets its own collector instance and heap; they share the
      clock, the frame pool and the swap device. *)

  val with_process_workload :
    ?share:int ->
    ?priority:int ->
    ?heap_bytes:int ->
    collector:string ->
    workload:Workload.Catalog.params ->
    t ->
    t
  (** {!with_process} over either family — e.g. a serving process
      contended by a batch cohabitant. *)

  val procs : t -> proc list
  (** Primary first, in scheduling order. *)

  val nprocs : t -> int

  val primary : t -> proc

  val collector : t -> string
  (** Of the primary process. *)

  val workload : t -> Workload.Catalog.params
  (** Of the primary process. *)

  val workload_name : t -> string

  val spec : t -> Workload.Spec.t
  (** Of the primary process; raises [Invalid_argument] when it runs a
      serving workload — use {!workload}. *)

  val heap_bytes : t -> int
  (** Of the primary process. *)

  val iterations : t -> int

  val traced : t -> bool

  val event_cap : t -> int option

  val address_base : t -> int option

  val controller : t -> (string * int) option
  (** Policy name and decision window, when one is attached. *)

  val frames : t -> int
  (** The explicit frame count, or the ample default. *)

  val canonical : t -> string
  (** Canonical text of every plan field that can influence the run's
      simulated outcome — processes (collector, full workload spec,
      heap, share, priority), frames, slice size, iterations, pressure,
      cost model, fault spec and seed, verify, policy, event cap and
      (when set) address base. The trace sink is excluded: tracing is
      proven zero-overhead, so a traced and an untraced run are the same
      cell. *)

  val digest : t -> string
  (** Hex MD5 of {!canonical} — the stable cell key the campaign
      journal uses to decide, across processes and sessions, whether a
      recorded outcome belongs to this exact configuration. *)
end

val default_slice : int

val default_fault_seed : int

val ample_frames : heap_bytes:int -> int
(** A pressure-free machine for one heap of this size. *)

val exec : Plan.t -> Metrics.outcome
(** Execute the plan and return the {e primary} process's outcome. Runs
    in per-cell isolation: any exception other than the two resource
    outcomes is caught and recorded as [Metrics.Failed] with the fault
    counters and partial stats, never propagated. *)

val exec_all : Plan.t -> Metrics.outcome list
(** Every process's outcome, in plan order. Each process's metrics
    window opens when its workload loads and closes when its own
    mutator finishes. On a resource failure ([Exhausted] / [Thrashed] /
    [Failed]) the whole machine goes down and every process reports the
    same outcome (the primary carries any partial stats). *)

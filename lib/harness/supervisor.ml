type backend = [ `Fork | `Domains | `Seq ]

type failure =
  | Raised of { exn_name : string; reason : string; backtrace : string }
  | Crashed of { status : Unix.process_status }
  | Hung of { deadline_s : float }
  | Truncated

type 'a cell =
  | Done of { value : 'a; attempts : int; failures : failure list }
  | Quarantined of { attempts : int; failures : failure list }

type chaos = { chaos_seed : int; kill_prob : float; max_kills : int }

type stats = {
  mutable retried : int;
  mutable quarantined : int;
  mutable chaos_kills : int;
  mutable deadline_kills : int;
  mutable workers_spawned : int;
  mutable workers_lost : int;
}

let fresh_stats () =
  {
    retried = 0;
    quarantined = 0;
    chaos_kills = 0;
    deadline_kills = 0;
    workers_spawned = 0;
    workers_lost = 0;
  }

let signal_name =
  let names =
    [
      (Sys.sigabrt, "SIGABRT");
      (Sys.sigalrm, "SIGALRM");
      (Sys.sigfpe, "SIGFPE");
      (Sys.sighup, "SIGHUP");
      (Sys.sigill, "SIGILL");
      (Sys.sigint, "SIGINT");
      (Sys.sigkill, "SIGKILL");
      (Sys.sigpipe, "SIGPIPE");
      (Sys.sigquit, "SIGQUIT");
      (Sys.sigsegv, "SIGSEGV");
      (Sys.sigterm, "SIGTERM");
      (Sys.sigusr1, "SIGUSR1");
      (Sys.sigusr2, "SIGUSR2");
      (Sys.sigstop, "SIGSTOP");
      (Sys.sigtstp, "SIGTSTP");
      (Sys.sigxcpu, "SIGXCPU");
      (Sys.sigxfsz, "SIGXFSZ");
    ]
  in
  fun s ->
    match List.assoc_opt s names with
    | Some n -> n
    | None -> Printf.sprintf "signal %d" s

let string_of_status = function
  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)

let describe_failure = function
  | Raised { exn_name; reason; backtrace } ->
      if backtrace = "" then Printf.sprintf "raised %s: %s" exn_name reason
      else
        Printf.sprintf "raised %s: %s\n%s" exn_name reason
          (String.trim backtrace)
  | Crashed { status } ->
      Printf.sprintf "worker %s while running this cell"
        (string_of_status status)
  | Hung { deadline_s } ->
      Printf.sprintf
        "worker blew the %.3gs cell deadline and was SIGKILLed" deadline_s
  | Truncated -> "worker died mid-record: truncated result stream"

let describe_failures = function
  | [] -> "worker lost before returning this result"
  | fs ->
      (* most recent first: that's the attempt that exhausted the budget *)
      let newest_first = List.rev fs in
      let head = describe_failure (List.hd newest_first) in
      let earlier =
        List.mapi
          (fun i f ->
            Printf.sprintf "  (earlier attempt %d: %s)"
              (List.length newest_first - 1 - i)
              (describe_failure f))
          (List.tl newest_first)
      in
      String.concat "\n" (head :: earlier)

(* Worker-raised payload crossing the pipe: (slot name, message, backtrace). *)
type raised = string * string * string

let default_backoff_s = 0.1

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)

(* Leases arrive as ASCII "N\n" lines; EOF (or a negative lease) means
   shut down. Each result goes back as one raw Marshal record — its own
   header carries the payload length, so the parent can reframe the
   byte stream without any blocking read. *)
let child_loop work_rd res_wr f (items : 'a array) =
  Printexc.record_backtrace true;
  let ic = Unix.in_channel_of_descr work_rd in
  let oc = Unix.out_channel_of_descr res_wr in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line -> (
        match int_of_string_opt (String.trim line) with
        | None -> ()
        | Some idx when idx < 0 -> ()
        | Some idx ->
            let r : ('b, raised) result =
              match f items.(idx) with
              | v -> Ok v
              | exception e ->
                  let bt = Printexc.get_backtrace () in
                  Error (Printexc.exn_slot_name e, Printexc.to_string e, bt)
            in
            Marshal.to_channel oc (idx, r) [];
            flush oc;
            loop ())
  in
  (try loop () with _ -> ());
  try flush oc with _ -> ()

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)

type worker = {
  pid : int;
  work_wr : Unix.file_descr;
  res_rd : Unix.file_descr;
  pending : Buffer.t;  (* bytes read but not yet a whole record *)
  mutable in_flight : int option;
  mutable deadline : float;  (* wall clock; infinity when idle/no limit *)
}

type decoded = Records of (int * (Obj.t, raised) result) list | Corrupt

(* Pull every complete Marshal record out of the worker's byte buffer,
   leaving any partial tail in place. *)
let decode_pending w : decoded =
  let s = Buffer.contents w.pending in
  let b = Bytes.unsafe_of_string s in
  let len = String.length s in
  let pos = ref 0 in
  let out = ref [] in
  let corrupt = ref false in
  (try
     while (not !corrupt) && len - !pos >= Marshal.header_size do
       match Marshal.data_size b !pos with
       | exception Failure _ -> corrupt := true
       | dsize ->
           if len - !pos >= Marshal.header_size + dsize then begin
             (match Marshal.from_bytes b !pos with
             | v -> out := v :: !out
             | exception _ -> corrupt := true);
             pos := !pos + Marshal.header_size + dsize
           end
           else raise Exit
     done
   with Exit -> ());
  if !corrupt then Corrupt
  else begin
    if !pos > 0 then begin
      Buffer.clear w.pending;
      Buffer.add_substring w.pending s !pos (len - !pos)
    end;
    Records (List.rev !out)
  end

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Sequential fallback (jobs <= 1, no forking requested)               *)

let run_sequential ~attempts ~backoff_s ~on_result f items =
  let stats = fresh_stats () in
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  let cell_of i x =
    let failures = ref [] in
    let rec go attempt =
      match f x with
      | v ->
          Done { value = v; attempts = attempt; failures = List.rev !failures }
      | exception e ->
          let fl =
            Raised
              {
                exn_name = Printexc.exn_slot_name e;
                reason = Printexc.to_string e;
                backtrace = Printexc.get_backtrace ();
              }
          in
          failures := fl :: !failures;
          if attempt >= attempts then begin
            stats.quarantined <- stats.quarantined + 1;
            Quarantined { attempts = attempt; failures = List.rev !failures }
          end
          else begin
            stats.retried <- stats.retried + 1;
            Unix.sleepf
              (Float.min
                 (backoff_s *. Float.pow 2.0 (float_of_int (attempt - 1)))
                 (backoff_s *. 8.0));
            go (attempt + 1)
          end
    in
    let c = go 1 in
    on_result i c;
    c
  in
  let out = Array.mapi cell_of items in
  Printexc.record_backtrace prev;
  (out, stats)

(* ------------------------------------------------------------------ *)
(* Shared-memory execution on the domain pool                          *)

(* Cells run as closures on pooled domains; no Marshal, no pipes. The
   retry loop runs inside the worker (same backoff schedule as the
   sequential path), so a cell's whole attempt history stays on one
   domain; stats are tallied in the coordinating domain as completions
   stream back, because [stats] is a plain mutable record. Deadlines and
   chaos don't exist here: a domain cannot be SIGKILLed, so runaway
   cells are bounded by plan event caps instead, and [run] rejects
   [chaos] for this backend up front. *)
let run_domains ~jobs ~attempts ~backoff_s ~on_result f items =
  let stats = fresh_stats () in
  let pool = Domain_pool.get ~jobs:(min jobs (Array.length items)) in
  stats.workers_spawned <- Domain_pool.jobs pool;
  let cell_of x =
    let failures = ref [] in
    let rec go attempt =
      match f x with
      | v ->
          Done { value = v; attempts = attempt; failures = List.rev !failures }
      | exception e ->
          let fl =
            Raised
              {
                exn_name = Printexc.exn_slot_name e;
                reason = Printexc.to_string e;
                backtrace = Printexc.get_backtrace ();
              }
          in
          failures := fl :: !failures;
          if attempt >= attempts then
            Quarantined { attempts = attempt; failures = List.rev !failures }
          else begin
            Unix.sleepf
              (Float.min
                 (backoff_s *. Float.pow 2.0 (float_of_int (attempt - 1)))
                 (backoff_s *. 8.0));
            go (attempt + 1)
          end
    in
    go 1
  in
  (* a pool-level Error means the retry wrapper itself raised (it never
     should): surface it as a first-attempt quarantine, not a crash *)
  let to_cell = function
    | Ok c -> c
    | Error (e, backtrace) ->
        Quarantined
          {
            attempts = 1;
            failures =
              [
                Raised
                  {
                    exn_name = Printexc.exn_slot_name e;
                    reason = Printexc.to_string e;
                    backtrace;
                  };
              ];
          }
  in
  let out =
    Domain_pool.run pool
      ~on_result:(fun i r ->
        let c = to_cell r in
        (match c with
        | Done { attempts = a; _ } -> stats.retried <- stats.retried + (a - 1)
        | Quarantined { attempts = a; _ } ->
            stats.retried <- stats.retried + (a - 1);
            stats.quarantined <- stats.quarantined + 1);
        on_result i c)
      cell_of items
  in
  (Array.map to_cell out, stats)

(* ------------------------------------------------------------------ *)
(* Supervised forked execution                                         *)

let run_forked ~jobs ~deadline_s ~attempts:max_attempts ~backoff_s ~chaos
    ~on_result f items =
  if Domain_pool.ever_created () then
    invalid_arg
      "Supervisor: the fork backend is unavailable — a domain pool was \
       already created in this process, and the OCaml runtime forbids \
       Unix.fork from then on; run fork-backend work first or use \
       --backend domains";
  let n = Array.length items in
  let stats = fresh_stats () in
  let results : 'b cell option array = Array.make n None in
  let tried = Array.make n 0 in
  let failures : failure list array = Array.make n [] in
  let queue = Queue.create () in
  Array.iteri (fun i _ -> Queue.add i queue) items;
  let retry_at = ref ([] : (float * int) list) in
  let remaining = ref n in
  let workers = ref ([] : worker list) in
  let chaos_rng = Option.map (fun c -> Random.State.make [| c.chaos_seed |]) chaos in
  let chaos_budget =
    ref (match chaos with Some c -> c.max_kills | None -> 0)
  in
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let now () = Unix.gettimeofday () in

  let finalize idx cell =
    results.(idx) <- Some cell;
    decr remaining;
    on_result idx cell
  in
  let insert_retry at idx =
    let rec ins = function
      | [] -> [ (at, idx) ]
      | (a, _) :: _ as l when at < a -> (at, idx) :: l
      | x :: tl -> x :: ins tl
    in
    retry_at := ins !retry_at
  in
  let record_failure idx fl =
    failures.(idx) <- fl :: failures.(idx);
    if tried.(idx) >= max_attempts then begin
      stats.quarantined <- stats.quarantined + 1;
      finalize idx
        (Quarantined
           { attempts = tried.(idx); failures = List.rev failures.(idx) })
    end
    else begin
      stats.retried <- stats.retried + 1;
      let delay =
        Float.min
          (backoff_s *. Float.pow 2.0 (float_of_int (tried.(idx) - 1)))
          (backoff_s *. 8.0)
      in
      insert_retry (now () +. delay) idx
    end
  in
  let record_done idx v =
    finalize idx
      (Done
         { value = v; attempts = tried.(idx); failures = List.rev failures.(idx) })
  in

  let spawn () =
    flush stdout;
    flush stderr;
    let work_rd, work_wr = Unix.pipe ~cloexec:false () in
    let res_rd, res_wr = Unix.pipe ~cloexec:false () in
    (* the parent-side ends of every live sibling, to close in the child:
       a leaked work_wr copy would keep a sibling from ever seeing EOF *)
    let inherited =
      List.concat_map (fun w -> [ w.work_wr; w.res_rd ]) !workers
    in
    match Unix.fork () with
    | 0 ->
        close_noerr work_wr;
        close_noerr res_rd;
        List.iter close_noerr inherited;
        child_loop work_rd res_wr f items;
        (* _exit, not exit: no at_exit, and the parent's stdio buffers
           inherited by the fork must not be flushed a second time *)
        Unix._exit 0
    | pid ->
        close_noerr work_rd;
        close_noerr res_wr;
        stats.workers_spawned <- stats.workers_spawned + 1;
        let w =
          {
            pid;
            work_wr;
            res_rd;
            pending = Buffer.create 256;
            in_flight = None;
            deadline = infinity;
          }
        in
        workers := !workers @ [ w ];
        w
  in
  let remove_worker w =
    close_noerr w.work_wr;
    close_noerr w.res_rd;
    workers := List.filter (fun x -> x.pid <> w.pid) !workers;
    stats.workers_lost <- stats.workers_lost + 1
  in
  let reap w =
    match Unix.waitpid [] w.pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> (
        match Unix.waitpid [] w.pid with _, status -> status)
  in
  (* Kill a worker we have decided against; classify its in-flight cell. *)
  let kill_worker w how =
    (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    let status = reap w in
    remove_worker w;
    match (w.in_flight, how) with
    | None, _ -> ()
    | Some idx, `Chaos ->
        stats.chaos_kills <- stats.chaos_kills + 1;
        (* our own fault: re-queue without charging an attempt *)
        tried.(idx) <- tried.(idx) - 1;
        Queue.add idx queue
    | Some idx, `Deadline d ->
        stats.deadline_kills <- stats.deadline_kills + 1;
        record_failure idx (Hung { deadline_s = d })
    | Some idx, `Corrupt ->
        ignore status;
        record_failure idx Truncated
  in
  let worker_eof w =
    let status = reap w in
    let partial = Buffer.length w.pending > 0 in
    let in_flight = w.in_flight in
    remove_worker w;
    match in_flight with
    | None -> ()
    | Some idx ->
        if partial then record_failure idx Truncated
        else record_failure idx (Crashed { status })
  in
  let read_buf = Bytes.create 65536 in
  let handle_readable w =
    match Unix.read w.res_rd read_buf 0 (Bytes.length read_buf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | 0 -> worker_eof w
    | k -> (
        Buffer.add_subbytes w.pending read_buf 0 k;
        match decode_pending w with
        | Corrupt -> kill_worker w `Corrupt
        | Records rs ->
            List.iter
              (fun (idx, r) ->
                if w.in_flight = Some idx then begin
                  w.in_flight <- None;
                  w.deadline <- infinity
                end;
                match r with
                | Ok v -> record_done idx (Obj.obj v)
                | Error (exn_name, reason, backtrace) ->
                    record_failure idx (Raised { exn_name; reason; backtrace }))
              rs)
  in
  let write_lease w idx =
    let line = Bytes.of_string (string_of_int idx ^ "\n") in
    let rec put off =
      if off < Bytes.length line then
        let k = Unix.write w.work_wr line off (Bytes.length line - off) in
        put (off + k)
    in
    put 0
  in
  let idle_worker () = List.find_opt (fun w -> w.in_flight = None) !workers in
  let dispatch () =
    let continue = ref true in
    while !continue && not (Queue.is_empty queue) do
      let candidate =
        match idle_worker () with
        | Some w -> Some w
        | None -> if List.length !workers < jobs then Some (spawn ()) else None
      in
      match candidate with
      | None -> continue := false
      | Some w -> (
          let idx = Queue.peek queue in
          tried.(idx) <- tried.(idx) + 1;
          match write_lease w idx with
          | () ->
              ignore (Queue.pop queue);
              w.in_flight <- Some idx;
              w.deadline <-
                (match deadline_s with
                | None -> infinity
                | Some d -> now () +. d);
              (* self-chaos: maybe SIGKILL the worker we just leased to *)
              (match (chaos, chaos_rng) with
              | Some c, Some rng
                when !chaos_budget > 0 && Random.State.float rng 1.0 < c.kill_prob
                ->
                  decr chaos_budget;
                  kill_worker w `Chaos
              | _ -> ())
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
              (* died while idle: not this cell's fault — un-charge it *)
              tried.(idx) <- tried.(idx) - 1;
              ignore (reap w);
              remove_worker w)
    done
  in
  while !remaining > 0 do
    (* promote due retries into the work queue *)
    let t = now () in
    let due, later = List.partition (fun (at, _) -> at <= t) !retry_at in
    retry_at := later;
    List.iter (fun (_, idx) -> Queue.add idx queue) due;
    dispatch ();
    if !remaining > 0 then begin
      let busy = List.filter (fun w -> w.in_flight <> None) !workers in
      if busy = [] then begin
        (* nothing in flight: we must be waiting out a retry backoff *)
        match !retry_at with
        | [] -> if Queue.is_empty queue then assert false
        | (at, _) :: _ ->
            let dt = at -. now () in
            if dt > 0.0 then Unix.sleepf (Float.min dt 0.05)
      end
      else begin
        let next_deadline =
          List.fold_left (fun acc w -> Float.min acc w.deadline) infinity busy
        in
        let next_retry =
          match !retry_at with [] -> infinity | (at, _) :: _ -> at
        in
        let timeout =
          let next = Float.min next_deadline next_retry in
          if next = infinity then -1.0 else Float.max 0.0 (next -. now ())
        in
        (match Unix.select (List.map (fun w -> w.res_rd) busy) [] [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | readable, _, _ ->
            List.iter
              (fun w -> if List.mem w.res_rd readable then handle_readable w)
              busy);
        (* deadline sweep: anyone still in flight past their budget dies *)
        let t = now () in
        List.iter
          (fun w ->
            if
              List.exists (fun x -> x.pid = w.pid) !workers
              && w.in_flight <> None && w.deadline <= t
            then
              kill_worker w
                (`Deadline (Option.value deadline_s ~default:infinity)))
          busy
      end
    end
  done;
  (* orderly shutdown: EOF on every lease pipe, then reap *)
  List.iter (fun w -> close_noerr w.work_wr) !workers;
  List.iter
    (fun w ->
      (try ignore (Unix.waitpid [] w.pid)
       with Unix.Unix_error _ -> ());
      close_noerr w.res_rd)
    !workers;
  ignore (Sys.signal Sys.sigpipe old_sigpipe);
  (Array.map (function Some c -> c | None -> assert false) results, stats)

let run ~jobs ?backend ?deadline_s ?(attempts = 1)
    ?(backoff_s = default_backoff_s) ?chaos ?(force_fork = false)
    ?(on_result = fun _ _ -> ()) f items =
  if attempts < 1 then invalid_arg "Supervisor.run: attempts";
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf "Supervisor.run: jobs must be >= 1 (got %d)" jobs);
  let n = Array.length items in
  if n = 0 then ([||], fresh_stats ())
  else
    let jobs = min jobs n in
    match Option.value backend ~default:`Fork with
    | `Seq -> run_sequential ~attempts ~backoff_s ~on_result f items
    | `Domains ->
        if chaos <> None then
          invalid_arg
            "Supervisor.run: chaos requires the fork backend (only a worker \
             process can be SIGKILLed)";
        run_domains ~jobs ~attempts ~backoff_s ~on_result f items
    | `Fork ->
        if jobs <= 1 && not force_fork then
          run_sequential ~attempts ~backoff_s ~on_result f items
        else
          run_forked ~jobs ~deadline_s ~attempts ~backoff_s ~chaos ~on_result
            f items

(** Leased work-queue supervision of forked workers.

    The engine under {!Parallel} and {!Campaign}: items are dispatched
    to forked worker processes one lease at a time, the parent
    [select]s on every busy worker's result pipe with a per-cell
    wall-clock deadline, and any way a worker can misbehave — crash,
    hang, get SIGKILLed, or cut its result stream mid-record — costs
    only the one cell it was leased, which is retried with bounded
    backoff on a fresh worker and quarantined only after its attempt
    budget is spent. The queue itself never aborts.

    Work runs in forked children, so the work function needs no
    marshalling; only each item's {e result} crosses a pipe and must be
    plain marshallable data. Results come back in input order.

    Since the {!Domain_pool} rewrite the engine is backend-selectable:
    the same supervision surface can run cells on a shared-memory pool
    of OCaml 5 domains ([`Domains]) or inline ([`Seq]) instead of
    forked workers — see {!run}. *)

type backend = [ `Fork | `Domains | `Seq ]
(** How cells execute. [`Fork]: supervised forked worker processes —
    crash isolation, per-cell deadlines, chaos. [`Domains]: the shared
    {!Domain_pool} — no fork/Marshal cost, work stealing, results as
    heap values; no kill-based supervision (deadlines and chaos are
    rejected/ignored), and once chosen, [Unix.fork] is unavailable for
    the rest of the process. [`Seq]: inline in this process (retries
    still apply). All three produce byte-identical cell values — the
    simulation runs in virtual time. *)

type failure =
  | Raised of { exn_name : string; reason : string; backtrace : string }
      (** the work function raised inside the worker; [backtrace] is the
          worker-side [Printexc] backtrace (possibly empty) *)
  | Crashed of { status : Unix.process_status }
      (** the worker process died without returning the cell — the
          status says how: nonzero exit or a signal *)
  | Hung of { deadline_s : float }
      (** the worker blew the per-cell wall-clock deadline and was
          SIGKILLed *)
  | Truncated
      (** the worker died mid-record: bytes arrived but never completed
          a marshalled result *)

type 'a cell =
  | Done of { value : 'a; attempts : int; failures : failure list }
      (** completed, possibly after retries; [failures] lists the
          attempts that failed first, oldest first *)
  | Quarantined of { attempts : int; failures : failure list }
      (** every attempt failed; the cell is reported, never rerun *)

type chaos = {
  chaos_seed : int;  (** same seed, same kill schedule *)
  kill_prob : float;  (** P(SIGKILL the worker right after a lease) *)
  max_kills : int;  (** hard bound, so chaos always terminates *)
}
(** Self-chaos: the supervisor SIGKILLs its own workers at random
    lease points to prove recovery. A chaos kill re-queues the
    in-flight cell {e without} charging an attempt — the failure was
    the supervisor's own doing. *)

type stats = {
  mutable retried : int;  (** failed attempts that were re-queued *)
  mutable quarantined : int;
  mutable chaos_kills : int;
  mutable deadline_kills : int;
  mutable workers_spawned : int;
  mutable workers_lost : int;  (** died for any reason, incl. kills *)
}

val string_of_status : Unix.process_status -> string
(** ["exited with code 9"], ["killed by signal SIGKILL"], ... *)

val describe_failure : failure -> string

val describe_failures : failure list -> string
(** Multi-line: the most recent failure first, earlier attempts
    indented under it — the string {!Parallel} and campaign quarantine
    reports thread into [Metrics.Failed.reason]. *)

val run :
  jobs:int ->
  ?backend:backend ->
  ?deadline_s:float ->
  ?attempts:int ->
  ?backoff_s:float ->
  ?chaos:chaos ->
  ?force_fork:bool ->
  ?on_result:(int -> 'b cell -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b cell array * stats
(** [run ~jobs f items] computes [f items.(i)] for every [i] under
    supervision and returns the per-cell results in input order.
    [jobs < 1] raises [Invalid_argument] — there is no silent
    sequential fallback.

    [backend] selects the engine (default [`Fork], the historical
    behaviour). [deadline_s] is the per-cell wall-clock budget
    (default: none); [attempts] the total tries per cell (default 1);
    [backoff_s] the base retry delay, doubled per failed attempt and
    capped at 8x (default 0.1 s). Under [`Fork] with [jobs <= 1] and
    [force_fork] unset the cells run sequentially in this process —
    retries still apply, but there are no workers to supervise, so
    [deadline_s] and [chaos] are ignored. [force_fork] keeps the forked
    path even at [jobs = 1], for callers (the campaign runner) that
    need deadline enforcement and crash isolation regardless of
    fan-out.

    Under [`Domains] the cells run on the process-wide {!Domain_pool}
    with work stealing; retries run inside the worker domain with the
    same backoff schedule. [chaos] raises [Invalid_argument] (nothing
    to SIGKILL) and [deadline_s] is ignored (a domain cannot be killed
    mid-cell — bound runaway cells with [Run.Plan.with_event_cap]
    instead). The fork backend additionally raises if a domain pool was
    ever created in this process: the OCaml runtime forbids [Unix.fork]
    from that point on, so order fork-backend work first.

    [on_result] fires in completion order as each cell finalises
    (done or quarantined), always in the calling domain — the campaign
    journal's append point. *)

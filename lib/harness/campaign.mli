(** Supervised, resumable experiment campaigns.

    A campaign is a declarative sweep — collectors x workloads x
    heap-size multipliers x fault plans x pressure schedules — executed
    under the {!Supervisor} with per-cell budgets (wall-clock deadline
    and virtual-event cap), bounded retry/backoff, and a crash-safe
    append-only JSONL journal. Each completed cell is journaled under a
    stable digest of its {!Run.Plan} ({!Run.Plan.digest}), so a
    campaign interrupted anywhere — a SIGKILLed worker, a dead parent,
    a power cut mid-record — resumes by replaying the journal and
    skipping finished cells, and its consolidated report is
    byte-identical to an uninterrupted run's: the simulation is
    deterministic in virtual time, and the report orders cells by spec,
    not by completion.

    In the style of bci_code's resumable logged campaigns: the spec
    file is the experiment, the journal is the ground truth, and the
    harness babysits itself. *)

type retry = { attempts : int; backoff_s : float }

type t = {
  name : string;
  collectors : string list;  (** registry names *)
  workloads : string list;  (** benchmark names *)
  volume : float;  (** allocation-volume scale for every cell *)
  heap_multipliers : float list;  (** x the workload's paper min heap *)
  fault_plans : string list;  (** {!Faults.Fault_plan.spec_of_string} *)
  pressures : string list;  (** see {!pressure_of_string} *)
  controllers : string list;
      (** ["off"] or {!Control.Registry} policy names; the innermost
          sweep axis. Defaults to [["off"]], under which cells enumerate
          exactly as in controller-less specs. *)
  fault_seed : int;
  iterations : int;
  frames_fraction : float option;
      (** physical frames as a fraction of the cell's heap pages;
          [None] = ample (no pressure from scarcity) *)
  deadline_s : float option;  (** per-cell wall-clock budget *)
  event_cap : int option;  (** per-cell virtual-event budget *)
  retry : retry;
  journal : string;  (** journal path (CLI can override) *)
}

type cell = {
  index : int;
  label : string;  (** e.g. ["BC/_202_jess x2 faults=none press=none"] *)
  digest : string;  (** {!Run.Plan.digest} of [plan] — the journal key *)
  plan : Run.Plan.t;
}

val schema_version : string
(** ["bcgc-campaign/1"] — both the spec's and the journal's schema. *)

val pressure_of_string : string -> (Workload.Pressure.t, string) result
(** ["none"], ["steady:PAGES"], ["steady:PAGES\@FRAC"] (engage at
    progress FRAC instead of 0.1), or ["ramp:INIT:STEP:STEP_MS:MAX"]. *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Parse and validate a campaign spec: every collector must be
    registered, every workload known, every fault plan and pressure
    schedule well-formed. *)

val of_file : string -> (t, string) result

val cells : t -> cell list
(** The full cross product, in deterministic spec order (collector
    outermost, pressure innermost) — the order journals and reports are
    keyed to. *)

val campaign_digest : t -> string
(** Digest over the ordered cell digests; a journal records it, and
    resuming against a spec that enumerates a different cell set is
    refused rather than silently mixed. *)

(** The journal: one JSON record per line, one completed cell per
    record. The header line carries the schema and campaign digest;
    each entry is appended with a single [write] and fsynced, so a
    crash can tear at most the final line — which {!Journal.load}
    discards rather than fails on. *)
module Journal : sig
  type entry = {
    cell : string;  (** the cell digest *)
    label : string;
    attempts : int;
    outcome_label : string;
    outcome : Telemetry.Json.t;  (** {!Metrics.outcome_to_json} *)
  }

  val load :
    path:string ->
    expect_digest:string ->
    (entry list * int, string) result
  (** Entries in journal order, plus the number of discarded torn
      trailing records (0 or 1). [Error] on a missing/corrupt header, a
      campaign-digest mismatch, or corruption anywhere but the tail. *)
end

type summary = {
  total : int;
  ok : int;
  degraded : int;
  exhausted : int;
  thrashed : int;
  failed : int;  (** includes quarantined cells *)
  retried : int;  (** this session's failed attempts that were retried *)
  quarantined : int;  (** this session *)
  chaos_kills : int;  (** this session *)
}

type status =
  | Complete of { report_path : string; summary : summary }
  | Interrupted of { completed : int; total : int }
      (** stopped early by [stop_after]; the journal holds [completed]
          cells and a [--resume] run will finish the rest *)

val report_path : journal:string -> string
(** [journal ^ ".report.json"]. *)

val run :
  ?jobs:int ->
  ?backend:Supervisor.backend ->
  ?chaos:Supervisor.chaos ->
  ?stop_after:int ->
  ?resume:bool ->
  ?journal_override:string ->
  ?log:(string -> unit) ->
  t ->
  (status, string) result
(** Execute the campaign under supervision. Without [resume], an
    existing journal is an error (delete it or resume it — never
    silently overwrite); with it, journaled cells are skipped and the
    journal extended in place. [stop_after] caps how many cells this
    invocation completes (an interruption drill for tests and CI).
    [chaos] SIGKILLs workers at random lease points to prove recovery;
    chaos kills re-queue the in-flight cell without charging an
    attempt, so a chaotic run still converges and reports identically.
    When every cell is accounted for, the consolidated report is
    written atomically (write + rename) to {!report_path} and the
    campaign completes.

    [backend] selects the execution engine (default [`Fork], which
    forks even at [jobs = 1] for crash isolation). Under [`Domains]
    cells run on the shared-memory domain pool: journal appends still
    happen only in this (coordinating) domain, one writer, same fsync
    discipline, so journals and reports come out byte-identical to a
    forked run; [chaos] is rejected (nothing to SIGKILL) and the spec's
    [deadline_s] is not enforced. *)

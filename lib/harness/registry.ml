module Gc_config = Gc_common.Gc_config

let fixed_nursery_bytes = 4 * 1024 * 1024 / Workload.Benchmarks.scale

(* One registry entry. The old parallel string lists ([names],
   [ablation_names]) are derived from [all] below; [create]/[config_for]
   go through [find]. *)
type info = {
  name : string;  (** unique registry key, e.g. ["BC-fixed"] *)
  family : string;  (** base collector, e.g. ["BC"] *)
  variant : string option;  (** [None] for the canonical configuration *)
  ablation : bool;  (** BC ablation (bench-only), not a headline entry *)
  doc : string;  (** one-line description for [bcgc list] *)
  config : heap_bytes:int -> Gc_config.t;
  factory : Gc_common.Collector.factory;
}

let plain ~heap_bytes = Gc_config.make ~heap_bytes ()

let fixed_nursery ~heap_bytes =
  Gc_config.make ~heap_bytes ~nursery:(Gc_config.Fixed fixed_nursery_bytes) ()

let bc_opts f ~heap_bytes =
  Gc_config.make ~heap_bytes ~bc:(f Gc_config.default_bc_opts) ()

let entry ?variant ?(ablation = false) ~family ~doc ~config factory =
  let name =
    match variant with None -> family | Some v -> family ^ "-" ^ v
  in
  { name; family; variant; ablation; doc; config; factory }

let all =
  [
    entry ~family:"BC" ~doc:"bookmarking collector (the paper's BC)"
      ~config:plain Bookmarking.Bc.factory;
    entry ~family:"BC" ~variant:"resize"
      ~doc:"BC with bookmarks disabled: heap resizing only"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.bookmarks_enabled = false }))
      Bookmarking.Bc.factory;
    entry ~family:"BC" ~variant:"fixed" ~doc:"BC with the fixed nursery"
      ~config:fixed_nursery Bookmarking.Bc.factory;
    entry ~family:"GenMS"
      ~doc:"generational mark-sweep, Appel-style flexible nursery"
      ~config:plain Baselines.Gen_ms.factory;
    entry ~family:"GenMS" ~variant:"fixed" ~doc:"GenMS with the fixed nursery"
      ~config:fixed_nursery Baselines.Gen_ms.factory;
    entry ~family:"GenMS" ~variant:"coop"
      ~doc:"GenMS with Cooper-style discard-only cooperation (§6)"
      ~config:(fun ~heap_bytes ->
        Gc_config.make ~heap_bytes ~cooperative_discard:true ())
      Baselines.Gen_ms.factory;
    entry ~family:"GenCopy" ~doc:"generational copying collector"
      ~config:plain Baselines.Gen_copy.factory;
    entry ~family:"GenCopy" ~variant:"fixed"
      ~doc:"GenCopy with the fixed nursery" ~config:fixed_nursery
      Baselines.Gen_copy.factory;
    entry ~family:"CopyMS" ~doc:"copying nursery over a mark-sweep old space"
      ~config:plain Baselines.Copy_ms.factory;
    entry ~family:"MarkSweep" ~doc:"whole-heap mark-sweep" ~config:plain
      Baselines.Mark_sweep.factory;
    entry ~family:"SemiSpace" ~doc:"two-space copying" ~config:plain
      Baselines.Semi_space.factory;
    (* BC ablations (bench targets only) *)
    entry ~family:"BC" ~variant:"noaggr" ~ablation:true
      ~doc:"BC without aggressive empty-page discards"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.aggressive_discard = false }))
      Bookmarking.Bc.factory;
    entry ~family:"BC" ~variant:"nocons" ~ablation:true
      ~doc:"BC without conservative page bookmarks"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.conservative_clear = false }))
      Bookmarking.Bc.factory;
    entry ~family:"BC" ~variant:"nocompact" ~ablation:true
      ~doc:"BC with the compacting collection disabled"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.compaction_enabled = false }))
      Bookmarking.Bc.factory;
    entry ~family:"BC" ~variant:"reserve0" ~ablation:true
      ~doc:"BC with no reserve pages"
      ~config:(bc_opts (fun o -> { o with Gc_config.reserve_pages = 0 }))
      Bookmarking.Bc.factory;
    entry ~family:"BC" ~variant:"reserve32" ~ablation:true
      ~doc:"BC with a 32-page reserve"
      ~config:(bc_opts (fun o -> { o with Gc_config.reserve_pages = 32 }))
      Bookmarking.Bc.factory;
    entry ~family:"BC" ~variant:"ptraware" ~ablation:true
      ~doc:"BC with pointer-aware victim selection (8 candidates)"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.pointer_aware_victims = 8 }))
      Bookmarking.Bc.factory;
    entry ~family:"BC" ~variant:"noregrow" ~ablation:true
      ~doc:"BC that never regrows the heap after pressure lifts"
      ~config:(bc_opts (fun o -> { o with Gc_config.regrow = false }))
      Bookmarking.Bc.factory;
  ]

let find name = List.find_opt (fun i -> i.name = name) all

(* Thin derivations keeping the old API shape. *)
let names =
  List.filter_map (fun i -> if i.ablation then None else Some i.name) all

let ablation_names =
  List.filter_map (fun i -> if i.ablation then Some i.name else None) all

let unknown name =
  invalid_arg (Printf.sprintf "Registry: unknown collector %S" name)

let config_for ~name ~heap_bytes =
  match find name with Some i -> i.config ~heap_bytes | None -> unknown name

let create ~name ~heap_bytes heap =
  match find name with
  | Some i -> i.factory (i.config ~heap_bytes) heap
  | None -> unknown name

module Gc_config = Gc_common.Gc_config

let fixed_nursery_bytes = 4 * 1024 * 1024 / Workload.Benchmarks.scale

(* One registry entry. The old parallel string lists ([names],
   [ablation_names]) are derived from [all] below; [create]/[config_for]
   go through [find]. *)
type info = {
  name : string;  (** unique registry key, e.g. ["BC-fixed"] *)
  family : string;  (** base collector, e.g. ["BC"] *)
  variant : string option;  (** [None] for the canonical configuration *)
  ablation : bool;  (** BC ablation (bench-only), not a headline entry *)
  doc : string;  (** one-line description for [bcgc list] *)
  config : heap_bytes:int -> Gc_config.t;
  factory : Gc_common.Collector.factory;
}

let plain ~heap_bytes = Gc_config.make ~heap_bytes ()

let fixed_nursery ~heap_bytes =
  Gc_config.make ~heap_bytes ~nursery:(Gc_config.Fixed fixed_nursery_bytes) ()

let bc_opts f ~heap_bytes =
  Gc_config.make ~heap_bytes ~bc:(f Gc_config.default_bc_opts) ()

(* Entries are built from the implementation modules themselves
   ({!Gc_common.Collector.S}): the family name, the default doc line and
   the factory all come from the module, so an entry only states what is
   special about it (variant tag, config tweak, overriding doc). *)
let entry ?variant ?(ablation = false) ?doc ~config
    (module C : Gc_common.Collector.S) =
  let family = C.name in
  let name =
    match variant with None -> family | Some v -> family ^ "-" ^ v
  in
  let doc = match doc with Some d -> d | None -> C.doc in
  { name; family; variant; ablation; doc; config; factory = C.factory }

let bc = (module Bookmarking.Bc : Gc_common.Collector.S)

let all =
  [
    entry ~config:plain bc;
    entry ~variant:"resize" ~doc:"BC with bookmarks disabled: heap resizing only"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.bookmarks_enabled = false }))
      bc;
    entry ~variant:"fixed" ~doc:"BC with the fixed nursery"
      ~config:fixed_nursery bc;
    entry ~config:plain (module Baselines.Gen_ms);
    entry ~variant:"fixed" ~doc:"GenMS with the fixed nursery"
      ~config:fixed_nursery
      (module Baselines.Gen_ms);
    entry ~variant:"coop"
      ~doc:"GenMS with Cooper-style discard-only cooperation (§6)"
      ~config:(fun ~heap_bytes ->
        Gc_config.make ~heap_bytes ~cooperative_discard:true ())
      (module Baselines.Gen_ms);
    entry ~config:plain (module Baselines.Gen_copy);
    entry ~variant:"fixed" ~doc:"GenCopy with the fixed nursery"
      ~config:fixed_nursery
      (module Baselines.Gen_copy);
    entry ~config:plain (module Baselines.Copy_ms);
    entry ~config:plain (module Baselines.Mark_sweep);
    entry ~config:plain (module Baselines.Semi_space);
    (* BC ablations (bench targets only) *)
    entry ~variant:"noaggr" ~ablation:true
      ~doc:"BC without aggressive empty-page discards"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.aggressive_discard = false }))
      bc;
    entry ~variant:"nocons" ~ablation:true
      ~doc:"BC without conservative page bookmarks"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.conservative_clear = false }))
      bc;
    entry ~variant:"nocompact" ~ablation:true
      ~doc:"BC with the compacting collection disabled"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.compaction_enabled = false }))
      bc;
    entry ~variant:"reserve0" ~ablation:true ~doc:"BC with no reserve pages"
      ~config:(bc_opts (fun o -> { o with Gc_config.reserve_pages = 0 }))
      bc;
    entry ~variant:"reserve32" ~ablation:true ~doc:"BC with a 32-page reserve"
      ~config:(bc_opts (fun o -> { o with Gc_config.reserve_pages = 32 }))
      bc;
    entry ~variant:"ptraware" ~ablation:true
      ~doc:"BC with pointer-aware victim selection (8 candidates)"
      ~config:
        (bc_opts (fun o -> { o with Gc_config.pointer_aware_victims = 8 }))
      bc;
    entry ~variant:"noregrow" ~ablation:true
      ~doc:"BC that never regrows the heap after pressure lifts"
      ~config:(bc_opts (fun o -> { o with Gc_config.regrow = false }))
      bc;
  ]

let find name = List.find_opt (fun i -> i.name = name) all

(* Thin derivations keeping the old API shape. *)
let names =
  List.filter_map (fun i -> if i.ablation then None else Some i.name) all

let ablation_names =
  List.filter_map (fun i -> if i.ablation then Some i.name else None) all

let unknown name =
  invalid_arg (Printf.sprintf "Registry: unknown collector %S" name)

let config_for ~name ~heap_bytes =
  match find name with Some i -> i.config ~heap_bytes | None -> unknown name

let create ~name ~heap_bytes heap =
  match find name with
  | Some i -> i.factory (i.config ~heap_bytes) heap
  | None -> unknown name

(* The typed instantiation path: callers resolve an [info] once (or hold
   one statically) and apply it to a machine process — no second
   string lookup between "which collector" and "build it". *)
let instantiate i proc =
  let c =
    i.factory
      (i.config ~heap_bytes:(Machine.heap_bytes proc))
      (Machine.heap proc)
  in
  Machine.set_collector proc c;
  c

let instantiate_name ~name proc =
  match find name with Some i -> instantiate i proc | None -> unknown name

(** A first-class simulated machine hosting N mutator processes.

    One [Machine.t] owns the resources every JVM instance on the box
    shares — the virtual clock, the VMM with its fixed frame pool and
    swap device, the address space, the optional fault plan and
    telemetry sink — while each {!process} gets its own simulated OS
    process, heap and collector instance. This is the substrate for the
    paper's §5 multi-JVM experiments: processes compete for frames
    through the kernel's global LRU, so one instance's allocation storm
    evicts another's cold pages.

    Processes are stepped in allocation slices by a pluggable
    {!policy}. All time is virtual and every cost is charged
    explicitly, so a machine run is deterministic: the same spawns,
    specs and policy produce bit-identical clocks and metrics.

    The module deliberately does not know about {!Registry}; collector
    instantiation is injected via {!set_collector} (see
    [Registry.instantiate]), which is what lets one machine host two
    different collectors without string-keyed lookups. *)

type t

(** How the machine interleaves its processes. Each scheduling round
    ends with one pressure-schedule application and (when tracing) one
    [Alloc_slice] event, whatever the policy. *)
type policy =
  | Round_robin  (** every unfinished process runs one slice per round *)
  | Proportional
      (** every unfinished process runs [share] slices per round —
          weighted fair share, e.g. 3:1 CPU time *)
  | Priority
      (** only the highest-priority unfinished process runs; lower
          priorities only start once it finishes (batch background
          work). Ties break in spawn order. *)

type process

exception Budget_exceeded of string
(** Raised by {!run} when a virtual-event cap is exceeded; see
    [event_cap] there. *)

val default_slice : int
(** Allocation operations per scheduling slice (256). *)

val create :
  ?costs:Vmsim.Costs.t ->
  ?faults:Faults.Fault_plan.t ->
  ?trace:Telemetry.Sink.t ->
  ?policy:policy ->
  ?first_page:int ->
  frames:int ->
  unit ->
  t
(** A fresh machine: new clock, a VMM with [frames] physical pages (and
    the fault plan routed into its notice/swap paths), one shared
    address space. [policy] defaults to [Round_robin]. [first_page]
    (default 16) sets the address-space base: giant bases (pages near
    2^30) exercise the sparse page table — memory stays proportional to
    touched pages — and simulated metrics are independent of the base
    (only page {e numbers} shift) as long as the base keeps the same
    alignment mod 63, the residency layer's word granule. *)

val clock : t -> Vmsim.Clock.t

val vmm : t -> Vmsim.Vmm.t

val address_space : t -> Heapsim.Address_space.t

val fault_plan : t -> Faults.Fault_plan.t option

val policy : t -> policy

val set_policy : t -> policy -> unit

val processes : t -> process list
(** In spawn order. *)

val spawn :
  ?share:int -> ?priority:int -> t -> name:string -> heap_bytes:int -> process
(** Add a process (and its heap, over the machine's shared address
    space) to the machine. [share] (default 1) is the slice weight
    under [Proportional]; [priority] (default 0, higher wins) orders
    processes under [Priority]. The collector must be attached with
    {!set_collector} before the process can load a workload. *)

val name : process -> string

val pid : process -> int

val vm_process : process -> Vmsim.Process.t

val heap : process -> Heapsim.Heap.t

val heap_bytes : process -> int

val set_collector : process -> Gc_common.Collector.t -> unit

val collector : process -> Gc_common.Collector.t
(** Raises [Invalid_argument] if no collector was attached. *)

val load : process -> Workload.Catalog.params -> unit
(** Open the process's measurement window at the current virtual time,
    then build its workload driver (batch mutator or serving request
    loop) over the attached collector. A serving driver inherits the
    machine's telemetry sink for per-request events. May be called
    again to run a second workload on the same (warmed) process. *)

val load_spec : process -> Workload.Spec.t -> unit
(** [load] on a bare batch spec. *)

val warm_up :
  process ->
  iterations:int ->
  ops_per_slice:int ->
  Workload.Catalog.params ->
  unit
(** The paper's §5.1 compile-and-reset methodology: run the workload
    [iterations - 1] times to completion, with a full collection after
    each, so the measured run starts on a warmed, pre-fragmented
    heap. A no-op when [iterations <= 1]. *)

val reset_window : process -> unit
(** Zero the process's GC and VM counters (residency gauges survive, as
    the pages are still mapped) so the next {!load} measures only the
    final iteration. The caller clears any shared trace sink itself —
    the sink belongs to the machine, not to one process. *)

val finish_ns : process -> int option
(** Virtual time at which the process's mutator finished, once it has. *)

val window_start_ns : process -> int

val allocated_bytes : process -> int
(** Through the current workload driver; 0 before {!load}. *)

val serving_summary : process -> Workload.Slo.summary option
(** Latency percentiles and SLO-violation windows accumulated by a
    serving workload; [None] before {!load} or for batch workloads. *)

val set_controller :
  process -> window_ns:int -> Control.Controller.t -> unit
(** Attach an online memory controller to the process. Each elapsed
    [window_ns] of virtual time during {!run}, the controller receives a
    windowed sample (GC/VM snapshot diffs plus residency and free-frame
    gauges), and its decision is actuated through the collector's
    {!Gc_common.Collector.tuning} interface. Deciding costs no virtual
    time; an unattached (or inert) controller leaves the run
    bit-identical. Requires {!set_collector} first. Each process on a
    shared machine gets its own controller instance — they compete for
    the one frame pool through their own collectors. *)

val controller_instance : process -> Control.Controller.t option

val control_summary : process -> Control.Controller.summary option
(** Decision/transition counts, peak and final degradation state, and
    the decision-trace digest; [None] when no controller is attached. *)

val run :
  ?pressure:Workload.Pressure.t ->
  ?ops_per_slice:int ->
  ?event_cap:int ->
  t ->
  unit
(** Step every loaded process under the machine's policy until all have
    finished, applying [pressure] (driven by the first process's
    progress) between rounds. Raises [Invalid_argument] if some process
    has no mutator loaded; propagates [Heap_exhausted] / [Thrashing] —
    on a shared machine a resource failure takes the whole box down,
    and the caller decides how to report the cohabitants.

    [event_cap] bounds the run's total virtual mutator events (slices
    dispatched x ops per slice); exceeding it raises {!Budget_exceeded},
    which the harness records as a [Failed] cell — the per-cell budget
    that keeps one runaway configuration from stalling an unattended
    campaign. Unset (the default), the loop is exactly the historical
    one. *)

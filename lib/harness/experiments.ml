module Spec = Workload.Spec
module Pressure = Workload.Pressure
module Plan = Run.Plan

type mode = Quick | Full

(* --------------------------------------------------------------- *)
(* Sweep parameters per mode                                        *)

type params = {
  label : string;
  suite_volume : float;  (* volume scale for the 9-benchmark sweeps *)
  pjbb_volume : float;  (* volume scale for the pseudoJBB experiments *)
  minheap_volume : float;
  f2_multipliers : float list;  (* of the paper's min heap *)
  f3_heap_mb : float list;  (* scaled MB (paper MB / 8) *)
  dyn_available : float list;  (* fraction of the heap kept available *)
  f6_available : (string * float) list;
  f7_available : float list;  (* fraction of the two heaps combined *)
  include_marksweep : bool;
}

let params = function
  | Quick ->
      {
        label = "quick";
        suite_volume = 0.12;
        pjbb_volume = 0.5;
        minheap_volume = 0.15;
        f2_multipliers = [ 1.25; 1.5; 2.0; 3.0 ];
        f3_heap_mb = [ 10.0; 12.5; 16.25 ];
        dyn_available = [ 1.0; 0.7; 0.5; 0.4; 0.33 ];
        f6_available = [ ("moderate", 0.75); ("severe", 0.45) ];
        f7_available = [ 0.8; 0.55 ];
        include_marksweep = false;
      }
  | Full ->
      {
        label = "full";
        suite_volume = 0.5;
        pjbb_volume = 1.0;
        minheap_volume = 0.3;
        f2_multipliers = [ 1.1; 1.25; 1.5; 1.75; 2.0; 2.5; 3.0 ];
        f3_heap_mb = [ 10.0; 11.25; 12.5; 13.75; 15.0; 16.25 ];
        dyn_available = [ 1.1; 0.9; 0.75; 0.6; 0.5; 0.4; 0.33 ];
        f6_available = [ ("moderate", 0.75); ("severe", 0.45) ];
        f7_available = [ 0.9; 0.75; 0.6; 0.5 ];
        include_marksweep = true;
      }

let mb x = int_of_float (x *. 1_048_576.)

let baseline_collectors _p =
  [ "BC"; "GenMS"; "GenCopy"; "CopyMS"; "MarkSweep"; "SemiSpace" ]

(* Collectors compared under pressure (the paper omits MarkSweep there:
   "runs with this collector can take hours"). *)
let pressure_collectors = [ "BC"; "BC-resize"; "GenMS"; "GenCopy"; "CopyMS"; "SemiSpace" ]

(* --------------------------------------------------------------- *)
(* Parallel cell driver                                             *)

(* Worker count for the experiment matrices (bcgc bench -j N). Cells are
   independent machines in virtual time, so results are byte-identical
   whatever the fan-out; every sweep below computes its whole cell list
   first and prints afterwards, keeping the output stable too.

   Coordinator-only state, deliberately: these knobs are set once by the
   CLI before any sweep runs, never from worker domains, so they need no
   de-globalization for the domain-pool backend. *)
let jobs = ref 1

let set_jobs n =
  if n < 1 then
    invalid_arg
      (Printf.sprintf "Experiments.set_jobs: jobs must be >= 1 (got %d)" n);
  jobs := n

let get_jobs () = !jobs

(* None = pick per sweep (sequential at -j 1, forked wider), exactly the
   pre-backend behaviour. *)
let backend : Supervisor.backend option ref = ref None

let set_backend b = backend := b

let get_backend () = !backend

let run_cells plans = Parallel.outcomes ~jobs:!jobs ?backend:!backend plans

let rec chunk n = function
  | [] -> []
  | xs ->
      let rec take k acc rest =
        if k = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: tl -> take (k - 1) (x :: acc) tl
      in
      let row, rest = take n [] xs in
      row :: chunk n rest

(* Flat fan-out, reassembled into rows of [width] cells. *)
let run_matrix ~width plans = chunk width (run_cells plans)

let map_cells ~fallback f xs =
  Parallel.map ~jobs:!jobs ?backend:!backend f xs
  |> List.map (function Ok v -> v | Error msg -> fallback msg)

let lost_worker reason =
  Metrics.Failed
    {
      Metrics.reason;
      exn_name = "Parallel.Worker_lost";
      fault_stats = None;
      partial = None;
    }

(* Two-process cells (figure 7, mixed, multiprocess): one plan, both
   outcomes. *)
let run_pairs plans =
  map_cells
    ~fallback:(fun msg ->
      let f = lost_worker msg in
      (f, f))
    (fun plan ->
      match Run.exec_all plan with
      | [ a; b ] -> (a, b)
      | _ -> invalid_arg "run_pairs: plan must have exactly two processes")
    plans

(* --------------------------------------------------------------- *)
(* Table 1                                                          *)

let min_heap_probe ~volume_scale specs =
  map_cells
    ~fallback:(fun _ -> None)
    (fun spec -> Minheap.find ~volume_scale ~collector:"BC" ~spec ())
    specs

let table1 mode =
  let p = params mode in
  Printf.printf "\n== Table 1: benchmark statistics (all bytes = paper/8, %s mode) ==\n"
    p.label;
  let min_heaps =
    min_heap_probe ~volume_scale:p.minheap_volume Workload.Catalog.batch_specs
  in
  let rows =
    List.map2
      (fun spec min_heap ->
        [
          spec.Spec.name;
          Table.fmt_bytes spec.Spec.total_alloc_bytes;
          Table.fmt_bytes spec.Spec.paper_min_heap_bytes;
          (match min_heap with
          | Some b -> Table.fmt_bytes b
          | None -> "-");
          (match min_heap with
          | Some b ->
              Printf.sprintf "%.2f"
                (float_of_int b /. float_of_int spec.Spec.paper_min_heap_bytes)
          | None -> "-");
        ])
      Workload.Catalog.batch_specs min_heaps
  in
  Table.print_table
    ~header:
      [ "Benchmark"; "Total Alloc"; "Paper Min Heap"; "Measured Min Heap"; "ratio" ]
    ~rows

(* --------------------------------------------------------------- *)
(* Shared runners                                                   *)

let elapsed_opt = function
  | Metrics.Completed m -> Some (Metrics.elapsed_s m)
  | Metrics.Exhausted _ | Metrics.Thrashed _ | Metrics.Failed _ -> None

let pause_opt = function
  | Metrics.Completed m -> Some m.Metrics.avg_pause_ms
  | Metrics.Exhausted _ | Metrics.Thrashed _ | Metrics.Failed _ -> None

(* --------------------------------------------------------------- *)
(* Figure 2                                                         *)

let figure2 mode =
  let p = params mode in
  let collectors = baseline_collectors p in
  (* the heap-size axis is relative to each benchmark's measured minimum
     heap (Table 1's measured column), as in the paper *)
  let min_heaps =
    List.map2
      (fun spec measured ->
        (spec, Option.value measured ~default:spec.Spec.paper_min_heap_bytes))
      Workload.Catalog.batch_specs
      (min_heap_probe ~volume_scale:p.minheap_volume Workload.Catalog.batch_specs)
  in
  (* one flat fan-out: multiplier × benchmark × collector *)
  let plans =
    List.concat_map
      (fun mult ->
        List.concat_map
          (fun (spec, min_heap) ->
            let spec = Spec.scale_volume spec p.suite_volume in
            let heap_bytes = int_of_float (mult *. float_of_int min_heap) in
            List.map
              (fun collector -> Plan.make ~collector ~spec ~heap_bytes)
              collectors)
          min_heaps)
      p.f2_multipliers
  in
  let by_mult =
    chunk (List.length min_heaps)
      (run_matrix ~width:(List.length collectors) plans)
  in
  let rows =
    List.map2
      (fun mult per_bench ->
        (* per benchmark, elapsed per collector; then geomean of the
           ratios to BC over the benchmarks where both completed *)
        let per_bench = List.map (List.map elapsed_opt) per_bench in
        let cells =
          List.mapi
            (fun i _collector ->
              let ratios =
                List.filter_map
                  (fun bench_results ->
                    match (List.nth bench_results 0, List.nth bench_results i) with
                    | Some bc, Some c -> Some (c /. bc)
                    | _ -> None)
                  per_bench
              in
              if ratios = [] then None
              else Some (Repro_util.Summary.geomean ratios))
            collectors
        in
        (Printf.sprintf "%.2fx" mult, cells))
      p.f2_multipliers by_mult
  in
  Table.print_series
    ~title:
      "Figure 2: geomean execution time relative to BC (no memory pressure)"
    ~x_label:"heap" ~columns:collectors ~rows

(* --------------------------------------------------------------- *)
(* Figure 3                                                         *)

let steady_plan ~collector ~spec ~heap_bytes =
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 128 in
  let pressure =
    Pressure.Steady { after_progress = 0.1; pin_pages = heap_pages * 6 / 10 }
  in
  Plan.make ~collector ~spec ~heap_bytes
  |> Plan.with_frames frames
  |> Plan.with_pressure pressure

let figure3 mode =
  let p = params mode in
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  let results =
    List.combine p.f3_heap_mb
      (run_matrix
         ~width:(List.length pressure_collectors)
         (List.concat_map
            (fun heap_mb ->
              List.map
                (fun collector ->
                  steady_plan ~collector ~spec ~heap_bytes:(mb heap_mb))
                pressure_collectors)
            p.f3_heap_mb))
  in
  Table.print_series
    ~title:
      "Figure 3(a): steady pressure (40% of heap available): execution time \
       (s), pseudoJBB"
    ~x_label:"heap(MB/8)" ~columns:pressure_collectors
    ~rows:
      (List.map
         (fun (heap_mb, outcomes) ->
           (Printf.sprintf "%.2f" heap_mb, List.map elapsed_opt outcomes))
         results);
  Table.print_series
    ~title:"Figure 3(b): steady pressure: average GC pause (ms), pseudoJBB"
    ~x_label:"heap(MB/8)" ~columns:pressure_collectors
    ~rows:
      (List.map
         (fun (heap_mb, outcomes) ->
           (Printf.sprintf "%.2f" heap_mb, List.map pause_opt outcomes))
         results)

(* --------------------------------------------------------------- *)
(* Figures 4, 5, 6: dynamic pressure                                *)

let pjbb_heap_bytes = 77 * 1_048_576 / Workload.Benchmarks.scale

let dynamic_plan ?costs ?trace ~collector ~spec ~available_frac () =
  let heap_bytes = pjbb_heap_bytes in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 256 in
  let available = int_of_float (available_frac *. float_of_int heap_pages) in
  let pin_target = max 0 (frames - available) in
  let initial_pages = min pin_target (mb 3.75 / Vmsim.Page.size) in
  (* The paper ramps 1 MB every 100 ms against minutes-long runs; our
     virtual runs are shorter, so the step interval is scaled for the ramp
     to complete within roughly the first 40% of an unpressured run. *)
  let expected_ns = spec.Spec.total_alloc_bytes * 5 in
  let steps = max 1 ((pin_target - initial_pages + 31) / 32) in
  let step_ns = max 1_000_000 (2 * expected_ns / (5 * steps)) in
  let pressure =
    Pressure.Ramp
      {
        after_progress = 0.1;
        initial_pages;
        pages_per_step = 32;  (* 1 MB/8 per step *)
        step_ns;
        max_pages = pin_target;
      }
  in
  Plan.make ~collector ~spec ~heap_bytes
  |> Plan.with_frames frames
  |> Plan.with_pressure pressure
  |> (match costs with None -> Fun.id | Some c -> Plan.with_costs c)
  |> match trace with None -> Fun.id | Some s -> Plan.with_trace s

let dynamic_outcomes p collectors =
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  List.combine p.dyn_available
    (run_matrix
       ~width:(List.length collectors)
       (List.concat_map
          (fun available_frac ->
            List.map
              (fun collector ->
                dynamic_plan ~collector ~spec ~available_frac ())
              collectors)
          p.dyn_available))

let figure45 mode =
  let p = params mode in
  let results = dynamic_outcomes p pressure_collectors in
  Table.print_series
    ~title:"Figure 4: dynamic pressure: average GC pause (ms), pseudoJBB"
    ~x_label:"avail/heap" ~columns:pressure_collectors
    ~rows:
      (List.map
         (fun (frac, outcomes) ->
           (Printf.sprintf "%.2f" frac, List.map pause_opt outcomes))
         results);
  Table.print_series
    ~title:"Figure 5(a): dynamic pressure: execution time (s), pseudoJBB"
    ~x_label:"avail/heap" ~columns:pressure_collectors
    ~rows:
      (List.map
         (fun (frac, outcomes) ->
           (Printf.sprintf "%.2f" frac, List.map elapsed_opt outcomes))
         results);
  let fixed = [ "BC-fixed"; "GenMS-fixed"; "GenCopy-fixed" ] in
  (* the fixed-nursery footprint is smaller, so paging only starts at
     lower availability: extend the sweep downwards *)
  let fixed_results =
    dynamic_outcomes { p with dyn_available = p.dyn_available @ [ 0.28; 0.22 ] } fixed
  in
  Table.print_series
    ~title:
      "Figure 5(b): dynamic pressure, fixed-size (4MB/8) nurseries: \
       execution time (s)"
    ~x_label:"avail/heap" ~columns:fixed
    ~rows:
      (List.map
         (fun (frac, outcomes) ->
           (Printf.sprintf "%.2f" frac, List.map elapsed_opt outcomes))
         fixed_results)

let figure6 mode =
  let p = params mode in
  let collectors =
    pressure_collectors @ if p.include_marksweep then [ "MarkSweep" ] else []
  in
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  let windows =
    (* log-spaced windows, 1 ms .. 100 s (virtual) *)
    List.init 11 (fun i ->
        int_of_float (1e6 *. Float.pow 10.0 (float_of_int i /. 2.0)))
  in
  let outcome_rows =
    run_matrix
      ~width:(List.length collectors)
      (List.concat_map
         (fun (_tag, available_frac) ->
           List.map
             (fun collector ->
               dynamic_plan ~collector ~spec ~available_frac ())
             collectors)
         p.f6_available)
  in
  List.iter2
    (fun (tag, available_frac) outcomes ->
      let curves =
        List.map
          (function
            | Metrics.Completed m ->
                Some
                  (Bmu.curve ~pauses:m.Metrics.pauses
                     ~total_ns:m.Metrics.elapsed_ns ~windows)
            | Metrics.Exhausted _ | Metrics.Thrashed _ | Metrics.Failed _ ->
                None)
          outcomes
      in
      Table.print_series
        ~title:
          (Printf.sprintf
             "Figure 6 (%s pressure, %.0f%% of heap available): BMU by \
              window size"
             tag (100. *. available_frac))
        ~x_label:"window(ms)" ~columns:collectors
        ~rows:
          (List.mapi
             (fun i w ->
               ( Printf.sprintf "%.1f" (float_of_int w /. 1e6),
                 List.map
                   (function
                     | Some curve -> Some (snd (List.nth curve i))
                     | None -> None)
                   curves ))
             windows))
    p.f6_available outcome_rows

(* --------------------------------------------------------------- *)
(* Figure 7                                                         *)

(* Two instances of [collector] (the second on a shifted workload seed)
   sharing one machine. *)
let pair_plan ?(coworker : string option) ~collector ~spec ~heap_bytes ~frames
    () =
  let coworker = Option.value coworker ~default:collector in
  Plan.make ~collector ~spec ~heap_bytes
  |> Plan.with_frames frames
  |> Plan.with_process ~collector:coworker
       ~spec:{ spec with Spec.seed = spec.Spec.seed + 17 }

let figure7 mode =
  let p = params mode in
  let collectors = [ "BC"; "GenMS"; "GenCopy"; "CopyMS"; "SemiSpace" ] in
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  let heap_bytes = pjbb_heap_bytes in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let results =
    List.combine p.f7_available
      (chunk (List.length collectors)
         (run_pairs
            (List.concat_map
               (fun frac ->
                 let frames =
                   max 512
                     (int_of_float (frac *. float_of_int (2 * heap_pages)))
                 in
                 List.map
                   (fun collector ->
                     pair_plan ~collector ~spec ~heap_bytes ~frames ())
                   collectors)
               p.f7_available)))
  in
  let elapsed_pair (a, b) =
    match (a, b) with
    | Metrics.Completed ma, Metrics.Completed mb ->
        Some (Float.max (Metrics.elapsed_s ma) (Metrics.elapsed_s mb))
    | _ -> None
  in
  let pause_pair (a, b) =
    match (a, b) with
    | Metrics.Completed ma, Metrics.Completed mb ->
        Some ((ma.Metrics.avg_pause_ms +. mb.Metrics.avg_pause_ms) /. 2.0)
    | _ -> None
  in
  Table.print_series
    ~title:"Figure 7(a): two instances of pseudoJBB: total elapsed time (s)"
    ~x_label:"avail/(2*heap)" ~columns:collectors
    ~rows:
      (List.map
         (fun (frac, outcomes) ->
           (Printf.sprintf "%.2f" frac, List.map elapsed_pair outcomes))
         results);
  Table.print_series
    ~title:"Figure 7(b): two instances: average GC pause (ms)"
    ~x_label:"avail/(2*heap)" ~columns:collectors
    ~rows:
      (List.map
         (fun (frac, outcomes) ->
           (Printf.sprintf "%.2f" frac, List.map pause_pair outcomes))
         results)

(* --------------------------------------------------------------- *)
(* Ablations                                                        *)

let ablation mode =
  let p = params mode in
  (* every registered BC-family entry (canonical, variants, ablations),
     then the generational yardsticks *)
  let variants =
    List.filter_map
      (fun (i : Registry.info) ->
        if i.Registry.family = "BC" then Some i.Registry.name else None)
      Registry.all
    @ [ "GenMS"; "GenMS-coop" ]
  in
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  (* severe enough that discarding alone cannot absorb the pressure *)
  let frac = 0.38 in
  let outcomes =
    run_cells
      (List.map
         (fun collector ->
           dynamic_plan ~collector ~spec ~available_frac:frac ())
         variants)
  in
  let rows =
    List.map2
      (fun collector outcome ->
        match outcome with
        | Metrics.Completed m ->
            [
              collector;
              Table.fmt_seconds (Metrics.elapsed_s m);
              Table.fmt_ms m.Metrics.avg_pause_ms;
              string_of_int m.Metrics.major_faults;
              string_of_int m.Metrics.gc_major_faults;
              string_of_int m.Metrics.discards;
              string_of_int m.Metrics.relinquished;
            ]
        | Metrics.Exhausted msg -> [ collector; "exhausted: " ^ msg ]
        | Metrics.Thrashed msg -> [ collector; "thrashed: " ^ msg ]
        | Metrics.Failed f -> [ collector; "failed: " ^ f.Metrics.reason ])
      variants outcomes
  in
  Printf.printf
    "\n== Ablations: BC variants under dynamic pressure (38%% of heap \
     available) ==\n";
  Table.print_table
    ~header:
      [ "variant"; "time(s)"; "avg pause(ms)"; "faults"; "gc faults"; "discards"; "relinquished" ]
    ~rows

(* ---------------------------------------------------------------- *)
(* Beyond the paper: SSD swap                                         *)

let ssd mode =
  let p = params mode in
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  let collectors = [ "BC"; "GenMS"; "GenCopy"; "CopyMS" ] in
  let devices = [ ("disk(5ms)", Vmsim.Costs.default); ("ssd(80us)", Vmsim.Costs.ssd) ] in
  let combos =
    List.concat_map
      (fun (tag, costs) ->
        List.map (fun frac -> (tag, costs, frac)) [ 0.5; 0.4 ])
      devices
  in
  let rows =
    List.map2
      (fun (tag, _, frac) outcomes ->
        (Printf.sprintf "%s@%.2f" tag frac, List.map elapsed_opt outcomes))
      combos
      (run_matrix
         ~width:(List.length collectors)
         (List.concat_map
            (fun (_, costs, frac) ->
              List.map
                (fun collector ->
                  dynamic_plan ~costs ~collector ~spec ~available_frac:frac ())
                collectors)
            combos))
  in
  Table.print_series
    ~title:
      "Beyond the paper: disk vs SSD swap under dynamic pressure (s)"
    ~x_label:"device@avail" ~columns:collectors ~rows

(* ---------------------------------------------------------------- *)
(* Beyond the paper: recovery from a transient spike                  *)

let recovery mode =
  let p = params mode in
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  let heap_bytes = pjbb_heap_bytes in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 256 in
  let collectors = [ "BC"; "BC-noregrow"; "GenMS" ] in
  let run collector =
    (* pin down to 45% of the heap between 20% and 50% progress; the run
       finishes with memory abundant again. Hand-rolled machine: the
       pressure schedule here reacts to progress in ways Pressure.t
       doesn't express. *)
    let machine = Machine.create ~frames () in
    let clock = Machine.clock machine in
    let proc = Machine.spawn machine ~name:"jvm" ~heap_bytes in
    let c = Registry.instantiate_name ~name:collector proc in
    let signalmem =
      Workload.Signalmem.create (Machine.vmm machine)
        (Machine.address_space machine)
    in
    let mutator = Workload.Mutator.create spec c in
    let release_ns = ref None in
    let total = float_of_int spec.Spec.total_alloc_bytes in
    (try
       while not (Workload.Mutator.step mutator ~ops:Run.default_slice) do
         let prog =
           float_of_int (Workload.Mutator.allocated_bytes mutator) /. total
         in
         if prog >= 0.15 && prog < 0.35 then begin
           let want = frames - (heap_pages * 35 / 100) in
           let have = Workload.Signalmem.pinned_pages signalmem in
           if have < want then Workload.Signalmem.pin_pages signalmem (want - have)
         end
         else if prog >= 0.35 && !release_ns = None then begin
           Workload.Signalmem.unpin_all signalmem;
           release_ns := Some (Vmsim.Clock.now clock)
         end
       done;
       let finish = Vmsim.Clock.now clock in
       let after =
         match !release_ns with
         | Some t0 -> Vmsim.Clock.ns_to_s (finish - t0)
         | None -> Float.nan
       in
       Some (Vmsim.Clock.ns_to_s finish, after)
     with Gc_common.Collector.Heap_exhausted _ | Vmsim.Vmm.Thrashing _ -> None)
  in
  let results = map_cells ~fallback:(fun _ -> None) run collectors in
  Printf.printf
    "\n== Beyond the paper: recovery after a transient spike (pin to 35%% \
     between 15%%-35%% progress) ==\n";
  Table.print_table
    ~header:[ "collector"; "total(s)"; "after release(s)" ]
    ~rows:
      (List.map2
         (fun collector result ->
           match result with
           | Some (total_s, after_s) ->
               [
                 collector;
                 Table.fmt_seconds total_s;
                 Table.fmt_seconds after_s;
               ]
           | None -> [ collector; "failed"; "-" ])
         collectors results)

(* ---------------------------------------------------------------- *)
(* Beyond the paper: heterogeneous cohabitation                       *)

let mixed mode =
  let p = params mode in
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  let heap_bytes = pjbb_heap_bytes in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = 2 * heap_pages * 6 / 10 in
  let pairings = [ ("BC", "BC"); ("GenMS", "GenMS"); ("BC", "GenMS") ] in
  let results =
    run_pairs
      (List.map
         (fun (a, b) ->
           pair_plan ~collector:a ~coworker:b ~spec ~heap_bytes ~frames ())
         pairings)
  in
  let describe tag = function
    | Metrics.Completed m ->
        [
          tag;
          Table.fmt_seconds (Metrics.elapsed_s m);
          Table.fmt_ms m.Metrics.avg_pause_ms;
          string_of_int m.Metrics.major_faults;
        ]
    | Metrics.Exhausted _ -> [ tag; "exhausted"; "-"; "-" ]
    | Metrics.Thrashed _ -> [ tag; "thrashed"; "-"; "-" ]
    | Metrics.Failed _ -> [ tag; "failed"; "-"; "-" ]
  in
  Printf.printf
    "\n== Beyond the paper: two collectors sharing one machine (60%% of \
     their combined heaps) ==\n";
  Table.print_table
    ~header:[ "instance"; "time(s)"; "avg pause(ms)"; "faults" ]
    ~rows:
      (List.concat
         (List.map2
            (fun (a, b) (ra, rb) ->
              [ describe (a ^ " (with " ^ b ^ ")") ra;
                describe (b ^ " (with " ^ a ^ ")") rb ])
            pairings results))

(* ---------------------------------------------------------------- *)
(* Multiprocess contention (§5: two JVMs competing for memory)        *)

let multiprocess mode =
  let p = params mode in
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  let heap_bytes = pjbb_heap_bytes in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  (* enough physical memory for one instance to run comfortably, nothing
     like enough for two: 55% of the combined heaps, as in the paper's
     §5 dual-JVM runs. Solo rows use the same frame count, so the only
     new variable in the contended rows is the competing process. *)
  let frames = max 512 (2 * heap_pages * 55 / 100) in
  let collectors = [ "BC"; "GenMS"; "GenCopy"; "CopyMS"; "SemiSpace" ] in
  let competitor = "GenMS" in
  let solo collector =
    Plan.make ~collector ~spec ~heap_bytes |> Plan.with_frames frames
  in
  let solos = run_cells (List.map solo collectors) in
  let contended =
    run_pairs
      (List.map
         (fun collector ->
           pair_plan ~collector ~coworker:competitor ~spec ~heap_bytes
             ~frames ())
         collectors)
  in
  let fmt_opt f = function Some v -> f v | None -> "-" in
  let label_of = function
    | Metrics.Completed _ -> "ok"
    | o -> Metrics.outcome_label o
  in
  let rows =
    List.map2
      (fun collector (solo_o, (victim_o, _comp_o)) ->
        let slowdown =
          match (elapsed_opt solo_o, elapsed_opt victim_o) with
          | Some s, Some c when s > 0. -> Printf.sprintf "%.1fx" (c /. s)
          | _ -> label_of victim_o
        in
        let p95 = function
          | Metrics.Completed m -> Some m.Metrics.p95_pause_ms
          | _ -> None
        in
        let faults = function
          | Metrics.Completed m -> string_of_int m.Metrics.major_faults
          | _ -> "-"
        in
        [
          collector;
          fmt_opt Table.fmt_seconds (elapsed_opt solo_o);
          fmt_opt Table.fmt_seconds (elapsed_opt victim_o);
          slowdown;
          fmt_opt Table.fmt_ms (p95 solo_o);
          fmt_opt Table.fmt_ms (p95 victim_o);
          faults victim_o;
        ])
      collectors
      (List.combine solos contended)
  in
  Printf.printf
    "\n== Multiprocess (§5): each collector vs a competing %s instance \
     (55%% of combined heaps, %s mode) ==\n"
    competitor p.label;
  Table.print_table
    ~header:
      [ "collector"; "solo(s)"; "contended(s)"; "slowdown"; "solo p95(ms)";
        "contended p95(ms)"; "faults" ]
    ~rows;
  (* scheduling policies: the same BC + GenMS machine under round-robin,
     3:1 proportional share and strict priority — per-process windows
     make the interference visible from both sides *)
  let policies =
    [
      ("round-robin", Fun.id);
      ( "proportional 3:1",
        fun plan ->
          plan |> Plan.with_share 3 |> Plan.with_policy Machine.Proportional
      );
      ( "priority BC",
        fun plan ->
          plan |> Plan.with_priority 1 |> Plan.with_policy Machine.Priority );
    ]
  in
  let policy_results =
    run_pairs
      (List.map
         (fun (_, refine) ->
           refine
             (pair_plan ~collector:"BC" ~coworker:competitor ~spec
                ~heap_bytes ~frames ()))
         policies)
  in
  Printf.printf
    "\n== Multiprocess: BC + %s under different scheduling policies ==\n"
    competitor;
  Table.print_table
    ~header:
      [ "policy"; "BC time(s)"; "BC p95(ms)"; Printf.sprintf "%s time(s)" competitor;
        Printf.sprintf "%s p95(ms)" competitor ]
    ~rows:
      (List.map2
         (fun (tag, _) (bc_o, comp_o) ->
           let time o = fmt_opt Table.fmt_seconds (elapsed_opt o) in
           let p95 = function
             | Metrics.Completed m -> Table.fmt_ms m.Metrics.p95_pause_ms
             | o -> Metrics.outcome_label o
           in
           [ tag; time bc_o; p95 bc_o; time comp_o; p95 comp_o ])
         policies policy_results)

(* ---------------------------------------------------------------- *)
(* Beyond the paper: graceful degradation under an unreliable kernel  *)

let fault_spec =
  (* the reference plan from the robustness study: ~30% of eviction
     notices lost, occasional swap I/O errors, two swap-full episodes
     and one scripted pressure spike *)
  {
    Faults.Fault_plan.none with
    Faults.Fault_plan.drop_eviction = 0.3;
    drop_resident = 0.1;
    delay_notice = 0.1;
    swap_write_error = 0.02;
    swap_read_error = 0.01;
    swap_full_episodes = 2;
    spike_count = 1;
  }

let faults mode =
  let p = params mode in
  let collectors = [ "BC"; "GenMS" ] in
  let describe name outcome =
    let label = Metrics.outcome_label outcome in
    let stats =
      match outcome with
      | Metrics.Completed m -> m.Metrics.faults
      | Metrics.Failed f -> f.Metrics.fault_stats
      | Metrics.Exhausted _ | Metrics.Thrashed _ -> None
    in
    let injected =
      match stats with
      | Some s -> Format.asprintf "%a" Faults.Fault_plan.pp_stats s
      | None -> "-"
    in
    let detail =
      match outcome with
      | Metrics.Completed m -> Table.fmt_seconds (Metrics.elapsed_s m)
      | Metrics.Failed f -> f.Metrics.exn_name
      | Metrics.Exhausted _ | Metrics.Thrashed _ -> "-"
    in
    [ name; label; detail; injected ]
  in
  let cells =
    List.concat_map
      (fun spec ->
        let spec = Spec.scale_volume spec p.suite_volume in
        let heap_bytes = max (2 * spec.Spec.paper_min_heap_bytes) 1_500_000 in
        let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
        let frames = heap_pages + 192 in
        let pressure =
          Pressure.Steady
            { after_progress = 0.1; pin_pages = heap_pages * 4 / 10 }
        in
        List.map
          (fun collector ->
            ( spec.Spec.name ^ "/" ^ collector,
              Plan.make ~collector ~spec ~heap_bytes
              |> Plan.with_frames frames
              |> Plan.with_pressure pressure
              |> Plan.with_faults fault_spec
              |> Plan.with_verify ))
          collectors)
      Workload.Catalog.batch_specs
  in
  let outcomes = run_cells (List.map snd cells) in
  Printf.printf
    "\n== Beyond the paper: fault injection (drop 30%% of eviction notices, \
     swap errors, 2 swap-full episodes) ==\n";
  Table.print_table
    ~header:[ "benchmark/collector"; "outcome"; "time(s)/exn"; "injected" ]
    ~rows:(List.map2 (fun (name, _) o -> describe name o) cells outcomes);
  (* The same reference fault plan against a serving workload: BC and a
     GenMS coworker share one memory-tight machine, and each process
     gets its own SLO verdict — does the tail survive an unreliable
     kernel, not just complete under one? *)
  let srv_volume = match mode with Quick -> 0.35 | Full -> 1.0 in
  let scale_srv (s : Workload.Request.spec) =
    match
      Workload.Catalog.scale_volume (Workload.Catalog.Serving_spec s)
        srv_volume
    with
    | Workload.Catalog.Serving_spec s -> s
    | Workload.Catalog.Batch_spec _ -> assert false
  in
  let srv = scale_srv Workload.Catalog.srv_shaped in
  let coworker =
    (* a distinct arrival stream, same shape — the processes must not
       fault in lockstep *)
    scale_srv
      {
        Workload.Catalog.srv_shaped with
        Workload.Request.seed = Workload.Catalog.srv_shaped.Workload.Request.seed + 17;
      }
  in
  let heap_bytes =
    2 * Workload.Catalog.base_heap_bytes (Workload.Catalog.Serving_spec srv)
  in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let total_pages = 2 * heap_pages in
  let frames = total_pages + 128 in
  let available = int_of_float (0.62 *. float_of_int total_pages) in
  let pin = max 0 (frames - available) in
  let srv_plan =
    Plan.make_workload ~collector:"BC"
      ~workload:(Workload.Catalog.Serving_spec srv) ~heap_bytes
    |> Plan.with_process_workload ~collector:"GenMS"
         ~workload:(Workload.Catalog.Serving_spec coworker)
    |> Plan.with_frames frames
    |> Plan.with_ops_per_slice 16
    |> Plan.with_pressure
         (Pressure.Steady { after_progress = 0.0; pin_pages = pin })
    |> Plan.with_faults fault_spec
    |> Plan.with_verify
  in
  let bc_o, gen_o =
    match run_pairs [ srv_plan ] with
    | [ pair ] -> pair
    | _ -> assert false
  in
  let serving_of = function
    | Metrics.Completed m -> m.Metrics.serving
    | Metrics.Exhausted _ | Metrics.Thrashed _ | Metrics.Failed _ -> None
  in
  let msf ns = float_of_int ns /. 1e6 in
  let srv_row pname outcome =
    let label = Metrics.outcome_label outcome in
    let injected =
      match outcome with
      | Metrics.Completed { Metrics.faults = Some s; _ } ->
          Format.asprintf "%a" Faults.Fault_plan.pp_stats s
      | _ -> "-"
    in
    match serving_of outcome with
    | Some s ->
        [
          pname;
          label;
          Printf.sprintf "%.2f" (msf s.Workload.Slo.p50_ns);
          Printf.sprintf "%.2f" (msf s.Workload.Slo.p999_ns);
          string_of_int s.Workload.Slo.violations;
          (if Workload.Slo.meets_p999 s then "meets p999"
           else "violates p999");
          injected;
        ]
    | None -> [ pname; label; "-"; "-"; "-"; "-"; injected ]
  in
  Printf.printf
    "\n== Fault injection x serving: %s, BC + GenMS on one machine (62%% \
     of combined heaps) ==\n"
    srv.Workload.Request.name;
  Table.print_table
    ~header:
      [ "process"; "outcome"; "p50(ms)"; "p999(ms)"; "viol"; "verdict";
        "injected" ]
    ~rows:[ srv_row "BC (primary)" bc_o; srv_row "GenMS (coworker)" gen_o ]

(* ---------------------------------------------------------------- *)
(* Closed-loop controller matrix                                      *)

(* A light plan the threshold/pi controllers should ride through
   without ever leaving Normal/Pressure... *)
let benign_fault_spec =
  {
    Faults.Fault_plan.none with
    Faults.Fault_plan.drop_eviction = 0.1;
    delay_notice = 0.05;
  }

(* ...and a hostile one: most notices lost, swap errors, repeated
   scripted spikes — the regime the degradation ladder exists for. *)
let storm_fault_spec =
  {
    Faults.Fault_plan.none with
    Faults.Fault_plan.drop_eviction = 0.5;
    drop_resident = 0.2;
    delay_notice = 0.2;
    swap_write_error = 0.03;
    swap_read_error = 0.02;
    swap_full_episodes = 2;
    spike_count = 3;
    spike_pages = 256;
  }

let control_statics = [ "off"; "static"; "static-tight" ]

let control_adaptives = [ "threshold"; "pi" ]

let control mode =
  let p = params mode in
  (* a longer run than the fault matrix uses: the control loop needs a
     timeline — many decision windows, several collections — to react
     within. A cliff of pressure that lands and collects inside one
     window is static-tuning territory by construction. *)
  let volume = min 1.0 (6.0 *. p.suite_volume) in
  let spec =
    Spec.scale_volume
      (List.find
         (fun s -> s.Spec.name = "_202_jess")
         Workload.Catalog.batch_specs)
      volume
  in
  let heap_bytes = max (2 * spec.Spec.paper_min_heap_bytes) 1_500_000 in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 192 in
  let fault_plans =
    match mode with
    | Quick -> [ ("none", None); ("storm", Some storm_fault_spec) ]
    | Full ->
        [
          ("none", None);
          ("benign", Some benign_fault_spec);
          ("storm", Some storm_fault_spec);
        ]
  in
  let pressures =
    [
      ( "steady",
        Pressure.Steady
          { after_progress = 0.1; pin_pages = heap_pages * 4 / 10 } );
      ( "ramp",
        Pressure.Ramp
          {
            after_progress = 0.05;
            initial_pages = heap_pages / 8;
            pages_per_step = heap_pages / 32;
            step_ns = 10_000_000;
            max_pages = heap_pages * 11 / 20;
          } );
    ]
  in
  (* 1 ms decision windows: the ramp steps every 10 ms, so the
     controller gets several looks between pressure increments *)
  let window_ns = 1_000_000 in
  let controllers = control_statics @ control_adaptives in
  let cells =
    List.concat_map
      (fun (fname, fplan) ->
        List.concat_map
          (fun (pname, pressure) ->
            List.map
              (fun controller ->
                let plan =
                  Plan.make ~collector:"BC" ~spec ~heap_bytes
                  |> Plan.with_frames frames
                  |> Plan.with_pressure pressure
                  |> (match fplan with
                     | None -> Fun.id
                     | Some f -> Plan.with_faults f)
                  |>
                  match controller with
                  | "off" -> Fun.id
                  | name -> Plan.with_controller ~window_ns name
                in
                ((controller, fname, pname), plan))
              controllers)
          pressures)
      fault_plans
  in
  let outcomes = run_cells (List.map snd cells) in
  let tagged = List.combine (List.map fst cells) outcomes in
  (* exact nearest-rank p99 over the cell's recorded pauses — Metrics
     precomputes p50/p95/max only *)
  let p99_pause_ms (m : Metrics.t) =
    match List.sort compare (List.map snd m.Metrics.pauses) with
    | [] -> 0.0
    | ds ->
        let n = List.length ds in
        let idx =
          max 0 (int_of_float (ceil (0.99 *. float_of_int n)) - 1)
        in
        float_of_int (List.nth ds idx) /. 1e6
  in
  let control_of = function
    | Metrics.Completed m -> m.Metrics.control
    | Metrics.Exhausted _ | Metrics.Thrashed _ | Metrics.Failed _ -> None
  in
  Printf.printf
    "\n== Closed-loop controllers: BC/%s, controllers x fault plans x \
     pressure schedules (%s mode) ==\n"
    spec.Spec.name p.label;
  Table.print_table
    ~header:
      [ "controller"; "faults"; "pressure"; "outcome"; "time(s)";
        "failsafe"; "p99(ms)"; "mfaults"; "peak"; "final" ]
    ~rows:
      (List.map
         (fun ((controller, fname, pname), outcome) ->
           let base = [ controller; fname; pname ] in
           match outcome with
           | Metrics.Completed m ->
               base
               @ [
                   Metrics.outcome_label outcome;
                   Table.fmt_seconds (Metrics.elapsed_s m);
                   string_of_int m.Metrics.failsafes;
                   Printf.sprintf "%.2f" (p99_pause_ms m);
                   string_of_int m.Metrics.major_faults;
                 ]
               @ (match control_of outcome with
                 | Some c ->
                     [
                       Control.Controller.state_name
                         c.Control.Controller.peak_state;
                       Control.Controller.state_name
                         c.Control.Controller.final_state;
                     ]
                 | None -> [ "-"; "-" ])
           | o ->
               base
               @ [ Metrics.outcome_label o; "-"; "-"; "-"; "-"; "-"; "-" ])
         tagged);
  (* Verdicts. On a fault plan the adaptive controllers must earn their
     keep against every static configuration (fewer failsafe
     collections, or the same with a lower p99 pause); on the no-fault
     plan they must not cost anything (elapsed within noise of the best
     static). *)
  let cell controller fname pname =
    List.assoc_opt (controller, fname, pname) tagged
  in
  let completed = function
    | Some (Metrics.Completed m) -> Some m
    | _ -> None
  in
  let configs =
    List.concat_map
      (fun (fname, _) -> List.map (fun (pname, _) -> (fname, pname)) pressures)
      fault_plans
  in
  List.iter
    (fun (fname, pname) ->
      List.iter
        (fun adaptive ->
          match completed (cell adaptive fname pname) with
          | None ->
              Printf.printf
                "control verdict: %s did not complete on %s/%s\n" adaptive
                fname pname
          | Some a ->
              if fname = "none" then (
                let worst_ratio =
                  List.fold_left
                    (fun acc static ->
                      match completed (cell static fname pname) with
                      | None -> acc
                      | Some s ->
                          max acc
                            (float_of_int a.Metrics.elapsed_ns
                            /. float_of_int s.Metrics.elapsed_ns))
                    0.0 control_statics
                in
                if worst_ratio <= 1.05 then
                  Printf.printf
                    "control verdict: %s within noise of statics on \
                     %s/%s (worst ratio %.3f)\n"
                    adaptive fname pname worst_ratio
                else
                  Printf.printf
                    "control verdict: %s SLOWER than a static on %s/%s \
                     (worst ratio %.3f)\n"
                    adaptive fname pname worst_ratio)
              else
                let beats static =
                  match completed (cell static fname pname) with
                  | None -> true (* the static died; surviving wins *)
                  | Some s ->
                      (* the issue's disjunction verbatim: a forced
                         fail-safe that buys a lower tail is a win, not
                         a tie-breaker loss *)
                      a.Metrics.failsafes < s.Metrics.failsafes
                      || p99_pause_ms a < p99_pause_ms s
                in
                if List.for_all beats control_statics then
                  Printf.printf
                    "control verdict: %s beats every static on %s/%s \
                     (failsafes=%d p99=%.2fms)\n"
                    adaptive fname pname a.Metrics.failsafes
                    (p99_pause_ms a)
                else
                  Printf.printf
                    "control verdict: %s does not dominate statics on \
                     %s/%s\n"
                    adaptive fname pname)
        control_adaptives)
    configs

(* ---------------------------------------------------------------- *)
(* Telemetry trace export                                             *)

let trace_export mode =
  let p = params mode in
  let spec = Spec.scale_volume Workload.Benchmarks.pseudojbb p.pjbb_volume in
  let cells = [ ("BC", 0.4); ("GenMS", 0.4) ] in
  let dir = Sys.getenv_opt "CSV_DIR" in
  List.iter
    (fun (collector, available_frac) ->
      let sink = Telemetry.Sink.create () in
      let outcome =
        Run.exec (dynamic_plan ~trace:sink ~collector ~spec ~available_frac ())
      in
      Printf.printf "\n== Trace: %s/pseudoJBB at %.2f available (%s mode) ==\n"
        collector available_frac p.label;
      (match outcome with
      | Metrics.Completed m -> Format.printf "%a@." Metrics.pp m
      | o -> Format.printf "%s@." (Metrics.outcome_label o));
      Format.printf "%a@?" Telemetry.Report.pp sink;
      match dir with
      | None -> ()
      | Some dir ->
          let base =
            Printf.sprintf "%s/trace-%s-%.0f" dir collector
              (available_frac *. 100.)
          in
          let metadata =
            ("outcome",
             Telemetry.Json.Str (Metrics.outcome_label outcome))
            ::
            (match outcome with
            | Metrics.Completed m -> [ ("metrics", Metrics.to_json m) ]
            | _ -> [])
          in
          let oc = open_out (base ^ ".json") in
          Telemetry.Export.write_chrome_json ~metadata sink oc;
          close_out oc;
          let buf = Buffer.create 4096 in
          Telemetry.Export.csv sink buf;
          let oc = open_out (base ^ ".csv") in
          Buffer.output_buffer oc buf;
          close_out oc;
          Printf.printf "wrote %s.json and %s.csv\n" base base)
    cells

(* ---------------------------------------------------------------- *)
(* Supervised campaign demo                                           *)

let campaign mode =
  let volume = match mode with Quick -> 0.02 | Full -> 0.2 in
  (* temp_file creates the file; Campaign.run refuses to overwrite an
     existing journal, so take the fresh name and drop the file *)
  let journal = Filename.temp_file "bcgc-campaign" ".journal" in
  Sys.remove journal;
  let c =
    {
      Campaign.name =
        (match mode with Quick -> "demo-quick" | Full -> "demo-full");
      collectors = [ "BC"; "GenMS" ];
      workloads = [ "_202_jess" ];
      volume;
      heap_multipliers = [ 2.0; 3.0 ];
      fault_plans = [ "none"; "drop-evict=0.3,spikes=1" ];
      pressures = [ "none"; "steady:300" ];
      controllers = [ "off" ];
      fault_seed = Run.default_fault_seed;
      iterations = 1;
      frames_fraction = None;
      deadline_s = Some 120.;
      event_cap = None;
      retry = { Campaign.attempts = 2; backoff_s = 0.25 };
      journal;
    }
  in
  Printf.printf "\n== Campaign: %d cells over %d worker(s), journal %s ==\n"
    (List.length (Campaign.cells c))
    (get_jobs ()) journal;
  match
    Campaign.run ~jobs:(get_jobs ())
      ~log:(fun m -> Printf.printf "%s\n%!" m)
      c
  with
  | Ok (Campaign.Complete { report_path; summary = s }) ->
      Printf.printf
        "summary: %d cells — %d ok, %d degraded, %d exhausted, %d \
         thrashed, %d failed\nreport: %s\n"
        s.Campaign.total s.Campaign.ok s.Campaign.degraded
        s.Campaign.exhausted s.Campaign.thrashed s.Campaign.failed
        report_path
  | Ok (Campaign.Interrupted _) ->
      (* unreachable without stop_after *)
      Printf.printf "campaign interrupted\n"
  | Error e -> Printf.printf "campaign error: %s\n" e

(* ---------------------------------------------------------------- *)
(* Beyond the paper: request-serving SLO matrix                       *)

let slo_collectors = [ "BC"; "GenMS"; "GenCopy" ]

(* A serving cell under paging: physical memory holds [available_frac]
   of the heap for the whole serving window (pinned at progress 0, while
   only the freshly-built cache is resident — so the pin itself evicts
   nothing the mutator will touch again). From then on the pages that
   spill out are the coldest ones: request garbage the collector has
   moved past. Bookmarking discards or skips those; a whole-heap
   collection has to fault every one of them back. *)
let slo_plan ~collector ~workload ~available_frac ~mult =
  let heap_bytes =
    int_of_float
      (mult *. float_of_int (Workload.Catalog.base_heap_bytes workload))
  in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 128 in
  let available =
    int_of_float (available_frac *. float_of_int heap_pages)
  in
  let pin = max 0 (frames - available) in
  Plan.make_workload ~collector ~workload ~heap_bytes
  |> Plan.with_frames frames
  (* fine slices: the pressure schedule is checked between slices, and
     the pin must land at the start of the window (cache hot, nothing
     evictable) rather than midway through it *)
  |> Plan.with_ops_per_slice 16
  |> Plan.with_pressure
       (Pressure.Steady { after_progress = 0.0; pin_pages = pin })

let slo_summary = function
  | Metrics.Completed m -> m.Metrics.serving
  | Metrics.Exhausted _ | Metrics.Thrashed _ | Metrics.Failed _ -> None

let ms ns = float_of_int ns /. 1e6

let slo_report_schema = "bcgc-slo-report/1"

(* The report is the bench's machine-readable artifact; it must parse
   back (each cell's summary through [Slo.of_json]) before we let the
   file stand — the smoke target relies on this self-validation. *)
let validate_slo_report text =
  let open Telemetry.Json in
  match of_string_opt text with
  | None -> Error "report is not valid JSON"
  | Some j -> (
      match Option.bind (member "schema" j) str_opt with
      | Some s when s = slo_report_schema -> (
          match Option.bind (member "cells" j) to_list_opt with
          | None -> Error "report has no cells array"
          | Some cells ->
              let bad =
                List.filter
                  (fun c ->
                    match member "slo" c with
                    | None -> false (* non-completed cell: no summary *)
                    | Some s -> Workload.Slo.of_json s = None)
                  cells
              in
              if bad = [] then Ok (List.length cells)
              else Error "a cell's slo summary does not round-trip")
      | Some s -> Error (Printf.sprintf "unexpected schema %S" s)
      | None -> Error "report has no schema field")

let slo ?out mode =
  let p = params mode in
  let volume, shapes, mults, available_frac =
    match mode with
    | Quick -> (0.35, [ "srv_shaped"; "srv_flash" ], [ 2.0 ], 0.62)
    | Full ->
        ( 1.0,
          [ "srv_shaped"; "srv_flash"; "srv_diurnal"; "srv_pausing" ],
          [ 1.5; 2.0; 3.0 ],
          0.62 )
  in
  let workload_of name =
    match Workload.Catalog.find_opt name with
    | None -> invalid_arg ("Experiments.slo: unknown workload " ^ name)
    | Some i ->
        if volume = 1.0 then i.Workload.Catalog.params
        else Workload.Catalog.scale_volume i.Workload.Catalog.params volume
  in
  let cells =
    List.concat_map
      (fun wname ->
        let workload = workload_of wname in
        List.concat_map
          (fun mult ->
            List.map
              (fun collector ->
                ( (wname, mult, collector),
                  slo_plan ~collector ~workload ~available_frac ~mult ))
              slo_collectors)
          mults)
      shapes
  in
  let outcomes = run_cells (List.map snd cells) in
  let tagged = List.combine (List.map fst cells) outcomes in
  Printf.printf
    "\n\
     == Beyond the paper: request-serving SLO matrix (%.0f%% of heap \
     available, %s mode) ==\n"
    (available_frac *. 100.) p.label;
  Table.print_table
    ~header:
      [
        "workload"; "x"; "collector"; "p50(ms)"; "p99(ms)"; "p999(ms)";
        "slo(ms)"; "viol"; "windows"; "faults";
      ]
    ~rows:
      (List.map
         (fun ((wname, mult, collector), outcome) ->
           match slo_summary outcome with
           | Some s ->
               [
                 wname;
                 Printf.sprintf "%g" mult;
                 collector;
                 Printf.sprintf "%.2f" (ms s.Workload.Slo.p50_ns);
                 Printf.sprintf "%.2f" (ms s.Workload.Slo.p99_ns);
                 Printf.sprintf "%.2f" (ms s.Workload.Slo.p999_ns);
                 Printf.sprintf "%.0f" (ms s.Workload.Slo.slo_ns);
                 string_of_int s.Workload.Slo.violations;
                 string_of_int (List.length s.Workload.Slo.windows);
                 (match outcome with
                 | Metrics.Completed m -> string_of_int m.Metrics.major_faults
                 | _ -> "-");
               ]
           | None ->
               [
                 wname; Printf.sprintf "%g" mult; collector;
                 "-"; "-"; "-"; "-"; "-"; "-";
                 Metrics.outcome_label outcome;
               ])
         tagged);
  (* Configurations where bookmarking holds the tail under paging and a
     whole-heap baseline does not — the experiment's point. *)
  let configs =
    List.concat_map
      (fun wname -> List.map (fun mult -> (wname, mult)) mults)
      shapes
  in
  let verdicts =
    List.filter_map
      (fun (wname, mult) ->
        let meets collector =
          List.exists
            (fun ((w, m, c), o) ->
              w = wname && m = mult && c = collector
              &&
              match slo_summary o with
              | Some s -> Workload.Slo.meets_p999 s
              | None -> false)
            tagged
        in
        let holders = List.filter meets slo_collectors in
        let violators =
          List.filter (fun c -> not (meets c)) slo_collectors
        in
        if List.mem "BC" holders && violators <> [] then
          Some (wname, mult, holders, violators)
        else None)
      configs
  in
  List.iter
    (fun (wname, mult, holders, violators) ->
      Printf.printf "%s x%g: p999 SLO met by %s; violated by %s\n" wname
        mult
        (String.concat ", " holders)
        (String.concat ", " violators))
    verdicts;
  if verdicts = [] then
    Printf.printf "no configuration separated the collectors on p999\n";
  match out with
  | None -> ()
  | Some path ->
      let open Telemetry.Json in
      let cell_json ((wname, mult, collector), outcome) =
        Obj
          ([
             ("workload", Str wname);
             ("heap_multiplier", Num mult);
             ("collector", Str collector);
             ("outcome", Str (Metrics.outcome_label outcome));
           ]
          @
          match slo_summary outcome with
          | Some s -> [ ("slo", Workload.Slo.to_json s) ]
          | None -> [])
      in
      let report =
        Obj
          [
            ("schema", Str slo_report_schema);
            ("mode", Str p.label);
            ("available_frac", Num available_frac);
            ("cells", List (List.map cell_json tagged));
            ( "holds_p999",
              List
                (List.map
                   (fun (wname, mult, holders, violators) ->
                     Obj
                       [
                         ("workload", Str wname);
                         ("heap_multiplier", Num mult);
                         ("meets", List (List.map (fun c -> Str c) holders));
                         ( "violates",
                           List (List.map (fun c -> Str c) violators) );
                       ])
                   verdicts) );
          ]
      in
      let text = to_string report in
      (match validate_slo_report text with
      | Ok n -> Printf.printf "slo report: %d cells, self-validated\n" n
      | Error e -> failwith ("slo report failed self-validation: " ^ e));
      let oc = open_out path in
      output_string oc text;
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path

let all mode =
  table1 mode;
  figure2 mode;
  figure3 mode;
  figure45 mode;
  figure6 mode;
  figure7 mode;
  ablation mode;
  ssd mode;
  recovery mode;
  mixed mode;
  multiprocess mode;
  faults mode

(** Typed collector registry.

    Each collector the harness can instantiate is described by one
    {!info} record; [all] is the single source of truth, and the legacy
    string lists ([names], [ablation_names]) are derived from it. *)

type info = {
  name : string;  (** unique registry key, e.g. ["BC-fixed"] *)
  family : string;  (** base collector, e.g. ["BC"] *)
  variant : string option;  (** [None] for the canonical configuration *)
  ablation : bool;  (** BC ablation (bench-only), not a headline entry *)
  doc : string;  (** one-line description for [bcgc list] *)
  config : heap_bytes:int -> Gc_common.Gc_config.t;
  factory : Gc_common.Collector.factory;
}

val all : info list
(** Every registered collector, headline entries first, then the BC
    ablations, in presentation order. *)

val find : string -> info option

val names : string list
(** Headline collector names, including variants:
    ["BC"; "BC-resize"; "BC-fixed"; "GenMS"; "GenMS-fixed"; "GenMS-coop";
     "GenCopy"; "GenCopy-fixed"; "CopyMS"; "MarkSweep"; "SemiSpace"].
    "GenMS-coop" is the Cooper-style discard-only cooperative collector
    of the paper's related work (§6). Derived from {!all}. *)

val ablation_names : string list
(** BC ablation variants (bench targets only). Derived from {!all}. *)

val fixed_nursery_bytes : int
(** Nursery size used by the "-fixed" variants (the paper's 4 MB,
    scaled: 512 KB). *)

val create : name:string -> heap_bytes:int -> Heapsim.Heap.t -> Gc_common.Collector.t
(** Instantiate a collector by name with an appropriate configuration.
    Raises [Invalid_argument] on unknown names. *)

val instantiate : info -> Machine.process -> Gc_common.Collector.t
(** Build the collector described by [info] over a machine process's
    heap (sized by the process's [heap_bytes]) and attach it to the
    process. The typed path: resolve the [info] once, instantiate as
    many times as there are processes — no string-keyed double
    lookup. *)

val instantiate_name : name:string -> Machine.process -> Gc_common.Collector.t
(** [instantiate] after a single [find]; raises [Invalid_argument] on
    unknown names. *)

val config_for : name:string -> heap_bytes:int -> Gc_common.Gc_config.t

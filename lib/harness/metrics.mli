(** Results of one measured run. *)

type t = {
  collector : string;
  workload : string;
  heap_bytes : int;
  elapsed_ns : int;  (** virtual time from run start to workload finish *)
  gc_ns : int;
  minor : int;
  full : int;
  compacting : int;
  avg_pause_ms : float;
  p50_pause_ms : float;
  p95_pause_ms : float;
  max_pause_ms : float;
  major_faults : int;  (** all of the process's major faults *)
  gc_major_faults : int;  (** major faults incurred inside collections *)
  evictions : int;
  discards : int;
  relinquished : int;
  footprint_pages : int;  (** high-water heap pages *)
  allocated_bytes : int;
  pauses : (int * int) list;  (** (start, duration), for BMU *)
  faults : Faults.Fault_plan.stats option;
      (** what the fault plan injected during the run, when one ran *)
}

type failure = {
  reason : string;  (** the exception's message *)
  exn_name : string;  (** its constructor, for triage *)
  fault_stats : Faults.Fault_plan.stats option;
  partial : t option;  (** whatever stats survived up to the failure *)
}

type outcome =
  | Completed of t
  | Exhausted of string  (** the heap was too small *)
  | Thrashed of string  (** physical memory could not hold the floor *)
  | Failed of failure
      (** the run died on an unexpected exception; the cell is recorded,
          the rest of the matrix keeps going *)

val elapsed_s : t -> float

val outcome_label : outcome -> string
(** ["ok"], ["degraded"] (completed with faults injected), ["exhausted"],
    ["thrashed"] or ["failed"] — the per-cell summary tag. *)

val of_run :
  ?faults:Faults.Fault_plan.stats ->
  collector:Gc_common.Collector.t ->
  workload:string ->
  start_ns:int ->
  end_ns:int ->
  unit ->
  t

val pp : Format.formatter -> t -> unit

val pp_outcome : Format.formatter -> outcome -> unit

(** Results of one measured run. *)

type t = {
  collector : string;
  workload : string;
  heap_bytes : int;
  elapsed_ns : int;  (** virtual time from run start to workload finish *)
  gc_ns : int;
  minor : int;
  full : int;
  compacting : int;
  failsafes : int;  (** fail-safe collections (§3.5) folded into [full] *)
  avg_pause_ms : float;
  p50_pause_ms : float;
  p95_pause_ms : float;
  max_pause_ms : float;
  major_faults : int;  (** all of the process's major faults *)
  gc_major_faults : int;  (** major faults incurred inside collections *)
  evictions : int;
  discards : int;
  relinquished : int;
  footprint_pages : int;  (** high-water heap pages *)
  resident_peak_pages : int;
      (** high-water pages of the process actually backed by frames
          during the window — the residency the machine's other
          processes had to live with *)
  allocated_bytes : int;
  pauses : (int * int) list;  (** (start, duration), for BMU *)
  faults : Faults.Fault_plan.stats option;
      (** what the fault plan injected during the run, when one ran *)
  serving : Workload.Slo.summary option;
      (** request-latency percentiles and SLO-violation windows; only
          for serving workloads — batch cells serialise exactly as
          before *)
  control : Control.Controller.summary option;
      (** the online controller's decision/transition counts, peak and
          final degradation state and decision-trace digest; only when a
          controller ran — controller-off cells serialise exactly as
          before *)
}

type failure = {
  reason : string;  (** the exception's message *)
  exn_name : string;  (** its constructor, for triage *)
  fault_stats : Faults.Fault_plan.stats option;
  partial : t option;  (** whatever stats survived up to the failure *)
}

type outcome =
  | Completed of t
  | Exhausted of string  (** the heap was too small *)
  | Thrashed of string  (** physical memory could not hold the floor *)
  | Failed of failure
      (** the run died on an unexpected exception; the cell is recorded,
          the rest of the matrix keeps going *)

val elapsed_s : t -> float

val outcome_label : outcome -> string
(** ["ok"], ["degraded"] (completed, but with faults injected or after
    fail-safe collections), ["exhausted"], ["thrashed"] or ["failed"] —
    the per-cell summary tag. *)

val of_snapshots :
  ?faults:Faults.Fault_plan.stats ->
  ?serving:Workload.Slo.summary ->
  ?control:Control.Controller.summary ->
  collector:string ->
  workload:string ->
  heap_bytes:int ->
  gc:Gc_common.Gc_stats.snapshot ->
  vm:Vmsim.Vm_stats.snapshot ->
  start_ns:int ->
  end_ns:int ->
  unit ->
  t
(** Build a cell purely from immutable snapshots; [diff] two snapshots
    to measure any sub-interval of a run. *)

val of_run :
  ?faults:Faults.Fault_plan.stats ->
  ?serving:Workload.Slo.summary ->
  ?control:Control.Controller.summary ->
  collector:Gc_common.Collector.t ->
  workload:string ->
  start_ns:int ->
  end_ns:int ->
  unit ->
  t
(** Snapshot the collector's stats (and its process's VM counters) now
    and build the cell via {!of_snapshots}. *)

val to_json : t -> Telemetry.Json.t
(** The one serialisation path for a cell: bench CSV/JSON dumps, the
    trace exporter's metadata and the campaign journal all use this. *)

val outcome_to_json : outcome -> Telemetry.Json.t
(** Serialise a whole outcome, failures included — [Failed] keeps its
    full provenance (exception name, reason with any backtrace, the
    injected-fault counters and partial stats), so a campaign journal's
    quarantine records are actionable without rerunning the cell. *)

val pp : Format.formatter -> t -> unit

val pp_outcome : Format.formatter -> outcome -> unit

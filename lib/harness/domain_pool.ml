(* Persistent pool of OCaml 5 domains executing experiment cells in
   shared memory, with Chase–Lev work stealing across per-domain deques
   (see Ws_deque). The shared-memory counterpart of the forked
   Supervisor: no fork, no Marshal, results are ordinary heap values.

   Execution is round-based. The coordinator (the domain that calls
   [run]) waits until every worker is parked, loads the per-worker
   deques — owner-only pushes are safe precisely because the owners are
   parked — then bumps the epoch and broadcasts. Workers drain their own
   deque LIFO and steal FIFO from peers when empty; a round never grows
   (cells do not spawn cells), so one clean sweep over every deque
   proves a worker is done. Completions stream back to the coordinator
   through a mutex-protected queue, so the [on_result] callback (the
   campaign journal's append point) always runs in the coordinating
   domain, in completion order — single writer, same as the fork
   supervisor's select loop.

   Results land in a spec-order array: slot [i] is written by whichever
   worker ran cell [i], and the completion handshake through the mutex
   orders that write before the coordinator's read.

   One process-wide constraint shapes everything around this module:
   once any domain has ever been spawned, the OCaml runtime refuses
   [Unix.fork] for the remainder of the process — even after every
   domain is joined. So fork-backend work must run before the first
   [create]/[get], and [ever_created] lets the Supervisor turn the
   runtime's late failure into an actionable error. *)

type stats = { steals : int; executed : int array }

type t = {
  jobs : int;
  deques : (unit -> unit) Ws_deque.t array;  (* one per worker *)
  mutex : Mutex.t;
  work_ready : Condition.t;  (* workers: new epoch or shutdown *)
  progress : Condition.t;  (* coordinator: completion landed / worker parked *)
  mutable epoch : int;
  mutable live_tasks : int;  (* cells not yet finished this round *)
  mutable idle : int;  (* workers parked awaiting an epoch *)
  mutable stopping : bool;
  mutable in_run : bool;
  completions : int Queue.t;  (* finished cell indices, completion order *)
  steals : int Atomic.t;
  executed : int array;  (* per-worker cells run this round; owner-written *)
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

(* --- worker side --------------------------------------------------- *)

let run_task t me ~stolen task =
  if stolen then Atomic.incr t.steals;
  t.executed.(me) <- t.executed.(me) + 1;
  task ()

(* Drain until every deque is empty: own deque first (cheap owner pops),
   then one stealing sweep over the peers; any successful steal restarts
   the cycle. Rounds are closed (no task spawns tasks), so a full sweep
   that finds nothing is conclusive. *)
let drain t me =
  let rec own () =
    match Ws_deque.pop t.deques.(me) with
    | Some task ->
        run_task t me ~stolen:false task;
        own ()
    | None -> steal 0
  and steal k =
    if k < t.jobs - 1 then
      let victim = (me + 1 + k) mod t.jobs in
      match Ws_deque.steal t.deques.(victim) with
      | Some task ->
          run_task t me ~stolen:true task;
          own ()
      | None -> steal (k + 1)
  in
  own ()

let worker t me () =
  (* backtrace recording is domain-local state *)
  Printexc.record_backtrace true;
  let seen = ref 0 in
  let live = ref true in
  while !live do
    Mutex.lock t.mutex;
    t.idle <- t.idle + 1;
    if t.idle = t.jobs then Condition.signal t.progress;
    while t.epoch = !seen && not t.stopping do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      live := false
    end
    else begin
      seen := t.epoch;
      t.idle <- t.idle - 1;
      Mutex.unlock t.mutex;
      drain t me
    end
  done

(* --- coordinator side ---------------------------------------------- *)

let ever = Atomic.make false

let ever_created () = Atomic.get ever

let create ~jobs =
  if jobs < 1 then
    invalid_arg
      (Printf.sprintf "Domain_pool.create: jobs must be >= 1 (got %d)" jobs);
  Atomic.set ever true;
  let t =
    {
      jobs;
      deques = Array.init jobs (fun _ -> Ws_deque.create ());
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      progress = Condition.create ();
      epoch = 0;
      live_tasks = 0;
      idle = 0;
      stopping = false;
      in_run = false;
      completions = Queue.create ();
      steals = Atomic.make 0;
      executed = Array.make jobs 0;
      domains = [];
    }
  in
  t.domains <- List.init jobs (fun me -> Domain.spawn (worker t me));
  t

let complete t idx =
  Mutex.lock t.mutex;
  Queue.add idx t.completions;
  t.live_tasks <- t.live_tasks - 1;
  Condition.signal t.progress;
  Mutex.unlock t.mutex

let default_partition i = i

let run t ?(partition = default_partition) ?on_result f xs =
  let n = Array.length xs in
  let results = Array.make n None in
  if n > 0 then begin
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.run: pool is shut down"
    end;
    if t.in_run then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.run: reentrant run on the same pool"
    end;
    t.in_run <- true;
    (* quiesce: owner-only deque pushes below need every worker parked *)
    while t.idle < t.jobs do
      Condition.wait t.progress t.mutex
    done;
    Atomic.set t.steals 0;
    Array.fill t.executed 0 t.jobs 0;
    Queue.clear t.completions;
    for i = 0 to n - 1 do
      let task () =
        (match f xs.(i) with
        | v -> results.(i) <- Some (Ok v)
        | exception e ->
            let bt = Printexc.get_backtrace () in
            results.(i) <- Some (Error (e, bt)));
        complete t i
      in
      let w = ((partition i mod t.jobs) + t.jobs) mod t.jobs in
      Ws_deque.push t.deques.(w) task
    done;
    t.live_tasks <- n;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_ready;
    (* completion pump: deliver on_result here, in the coordinating
       domain, in completion order — the single-writer append point *)
    let delivered = ref 0 in
    while !delivered < n do
      while Queue.is_empty t.completions && t.live_tasks > 0 do
        Condition.wait t.progress t.mutex
      done;
      while not (Queue.is_empty t.completions) do
        let idx = Queue.pop t.completions in
        incr delivered;
        match on_result with
        | None -> ()
        | Some g ->
            (* the callback may append+fsync a journal: don't hold the
               pool lock over it *)
            Mutex.unlock t.mutex;
            (match results.(idx) with
            | Some r -> g idx r
            | None -> assert false);
            Mutex.lock t.mutex
      done
    done;
    (* wait for workers to park so the next round may refill the deques *)
    while t.idle < t.jobs do
      Condition.wait t.progress t.mutex
    done;
    t.in_run <- false;
    Mutex.unlock t.mutex
  end;
  Array.map (function Some r -> r | None -> assert false) results

let last_stats t =
  { steals = Atomic.get t.steals; executed = Array.copy t.executed }

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopping then Mutex.unlock t.mutex
  else if t.in_run then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.shutdown: pool is mid-run"
  end
  else begin
    t.stopping <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* --- shared pool ---------------------------------------------------- *)

(* One process-wide pool reused across rounds so repeated sweeps (bench
   matrices, campaigns) don't pay domain spawns per call. Coordinator-
   only state, like Experiments.jobs: rounds are driven from one
   coordinating domain at a time ([run] rejects reentrancy). *)
let global : t option ref = ref None

let get ~jobs =
  match !global with
  | Some p when p.jobs = jobs && not p.stopping -> p
  | prior ->
      Option.iter (fun p -> if not p.stopping then shutdown p) prior;
      let p = create ~jobs in
      global := Some p;
      p

let shutdown_global () =
  Option.iter shutdown !global;
  global := None

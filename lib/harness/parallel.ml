let default_jobs () = Domain.recommended_domain_count ()

let wrap f x =
  match f x with v -> Ok v | exception e -> Error (Printexc.to_string e)

(* Worker [k] computes items k, k+jobs, k+2*jobs, ... and streams
   [(index, result)] pairs down its pipe. The parent drains every pipe
   to EOF before reaping, so a worker can never block on a full pipe
   while the parent sits in waitpid. *)
let forked_map ~jobs f items =
  let n = Array.length items in
  flush stdout;
  flush stderr;
  let spawn k =
    let rd, wr = Unix.pipe ~cloexec:false () in
    match Unix.fork () with
    | 0 ->
        Unix.close rd;
        let oc = Unix.out_channel_of_descr wr in
        (try
           let i = ref k in
           while !i < n do
             Marshal.to_channel oc (!i, wrap f items.(!i)) [];
             i := !i + jobs
           done;
           flush oc
         with _ -> ( try flush oc with _ -> ()));
        (* _exit, not exit: no at_exit, and the parent's stdio buffers
           inherited by the fork must not be flushed a second time *)
        Unix._exit 0
    | pid ->
        Unix.close wr;
        (pid, rd)
  in
  let workers = List.init jobs spawn in
  let results =
    Array.make n (Error "worker died before returning this result")
  in
  List.iter
    (fun (pid, rd) ->
      let ic = Unix.in_channel_of_descr rd in
      (try
         while true do
           let i, r = (Marshal.from_channel ic : int * ('b, string) result) in
           results.(i) <- r
         done
       with End_of_file | Failure _ -> ());
      close_in ic;
      ignore (Unix.waitpid [] pid))
    workers;
  Array.to_list results

let map ~jobs f xs =
  let items = Array.of_list xs in
  let jobs = min jobs (Array.length items) in
  if jobs <= 1 then Array.to_list (Array.map (wrap f) items)
  else forked_map ~jobs f items

let outcomes ~jobs plans =
  let jobs =
    if List.exists Run.Plan.traced plans then 1 else jobs
  in
  map ~jobs Run.exec plans
  |> List.map (function
       | Ok o -> o
       | Error reason ->
           Metrics.Failed
             {
               Metrics.reason;
               exn_name = "Parallel.Worker_lost";
               fault_stats = None;
               partial = None;
             })

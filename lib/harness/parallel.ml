let default_jobs () = Domain.recommended_domain_count ()

let wrap f x =
  match f x with
  | v -> Ok v
  | exception e ->
      let bt = Printexc.get_backtrace () in
      Error
        (if bt = "" then Printexc.to_string e
         else Printexc.to_string e ^ "\n" ^ String.trim bt)

let error_of_cell = function
  | Supervisor.Done _ -> assert false
  | Supervisor.Quarantined { failures; _ } ->
      Supervisor.describe_failures failures

let check_jobs ~who jobs =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "%s: jobs must be >= 1 (got %d)" who jobs)

let map ~jobs ?backend ?deadline_s ?(attempts = 1) f xs =
  check_jobs ~who:"Parallel.map" jobs;
  let items = Array.of_list xs in
  let jobs = min jobs (max 1 (Array.length items)) in
  let backend =
    match backend with
    | Some b -> b
    | None -> if jobs <= 1 then `Seq else `Fork
  in
  if backend = `Seq && deadline_s = None && attempts = 1 then
    (* plain in-process sweep: same results, no forks, no supervision *)
    Array.to_list (Array.map (wrap f) items)
  else
    let cells, _stats =
      Supervisor.run ~jobs ~backend ?deadline_s ~attempts f items
    in
    Array.to_list
      (Array.map
         (function
           | Supervisor.Done { value; _ } -> Ok value
           | Supervisor.Quarantined _ as c -> Error (error_of_cell c))
         cells)

(* Headline constructor name for a quarantined cell: the last (budget-
   exhausting) failure decides. *)
let exn_name_of_failures failures =
  match List.rev failures with
  | Supervisor.Raised { exn_name; _ } :: _ -> exn_name
  | Supervisor.Crashed _ :: _ -> "Parallel.Worker_crashed"
  | Supervisor.Hung _ :: _ -> "Parallel.Worker_deadline"
  | Supervisor.Truncated :: _ -> "Parallel.Worker_truncated"
  | [] -> "Parallel.Worker_lost"

let failed_outcome failures =
  Metrics.Failed
    {
      Metrics.reason = Supervisor.describe_failures failures;
      exn_name = exn_name_of_failures failures;
      fault_stats = None;
      partial = None;
    }

let outcomes ~jobs ?backend ?deadline_s ?attempts plans =
  check_jobs ~who:"Parallel.outcomes" jobs;
  let traced = List.exists Run.Plan.traced plans in
  let backend =
    match backend with
    (* a sink filled in a forked child dies with the child's heap; the
       domain pool shares this heap, so only the fork backend downgrades *)
    | Some `Fork when traced -> `Seq
    | Some b -> b
    | None -> if traced || jobs <= 1 then `Seq else `Fork
  in
  let items = Array.of_list plans in
  let jobs = min jobs (max 1 (Array.length items)) in
  if backend = `Seq && deadline_s = None && attempts = None then
    (* Run.exec already isolates per-cell failures; nothing to supervise *)
    List.map Run.exec plans
  else
    let cells, _stats =
      Supervisor.run ~jobs ~backend ?deadline_s ?attempts Run.exec items
    in
    Array.to_list
      (Array.map
         (function
           | Supervisor.Done { value; _ } -> value
           | Supervisor.Quarantined { failures; _ } -> failed_outcome failures)
         cells)

(* Chase–Lev work-stealing deque (Chase & Lev, "Dynamic Circular
   Work-Stealing Deque", SPAA 2005), on OCaml 5 atomics.

   One domain owns the deque: only it may [push] and [pop], both at the
   bottom. Any other domain may [steal] from the top. The owner's
   operations are cheap (no CAS except the single-element race); thieves
   contend on a CAS over [top].

   Slot values are themselves atomics, not plain array cells: the OCaml
   memory model only promises a thief reading a plain cell some value
   that was once there, while an [Atomic.t] read synchronises with the
   write it observes. Cells here are whole experiment runs (milliseconds
   of work), so the extra indirection per transfer is noise.

   Invariants the operations rely on:
   - [top] is monotonically increasing (never decremented), so a
     successful CAS [top: t -> t+1] proves no other claim of index [t]
     happened — there is no ABA.
   - a slot in [top, bottom) always holds [Some _]: [push] fills the
     slot before publishing the new [bottom], and only the claimant of
     an index empties it.
   - [grow] (owner-only) copies the live window into a fresh array of
     fresh atomics; a thief still holding the old array reads values
     the owner will never mutate again, and its claim is still
     arbitrated by the shared [top]. *)

type 'a t = {
  mutable buf : 'a option Atomic.t array;  (* length always a power of 2 *)
  top : int Atomic.t;  (* next index to steal *)
  bottom : int Atomic.t;  (* next index to push *)
}

let min_capacity = 16

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = min_capacity) () =
  if capacity < 1 then invalid_arg "Ws_deque.create: capacity";
  let cap = pow2 capacity min_capacity in
  {
    buf = Array.init cap (fun _ -> Atomic.make None);
    top = Atomic.make 0;
    bottom = Atomic.make 0;
  }

let length q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

let is_empty q = length q = 0

let slot buf i = buf.(i land (Array.length buf - 1))

(* Owner-only. Doubles the buffer, copying the live window [t, b). *)
let grow q t b =
  let buf' = Array.init (2 * Array.length q.buf) (fun _ -> Atomic.make None) in
  for i = t to b - 1 do
    Atomic.set (slot buf' i) (Atomic.get (slot q.buf i))
  done;
  q.buf <- buf'

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  if b - t >= Array.length q.buf then grow q t b;
  Atomic.set (slot q.buf b) (Some x);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* empty: restore the canonical empty state *)
    Atomic.set q.bottom t;
    None
  end
  else if b > t then
    (* more than one element: index [b] is unreachable by thieves *)
    Atomic.exchange (slot q.buf b) None
  else begin
    (* exactly one element: race any thief for it via [top] *)
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (t + 1);
    if won then Atomic.exchange (slot q.buf b) None else None
  end

let rec steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = q.buf in
    let v = Atomic.get (slot buf t) in
    if Atomic.compare_and_set q.top t (t + 1) then
      (* the CAS arbitrates: we own index [t], and [v] was its value
         (monotone [top] rules out ABA; see the invariants above) *)
      v
    else steal q (* lost to another thief or the owner's last-element pop *)
  end

(* Owner-only, quiescent: drop any claimed-but-lingering references so a
   pooled deque does not pin the last round's cells across rounds. *)
let reset q =
  Array.iter (fun s -> Atomic.set s None) q.buf;
  let t = Atomic.get q.top in
  Atomic.set q.bottom t

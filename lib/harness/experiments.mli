(** The paper's evaluation (§5), one entry per table and figure.

    Each function runs the simulation sweep and prints the table's rows or
    the figure's data series. [Quick] mode uses reduced allocation volumes
    and coarser sweeps (minutes); [Full] uses the complete scaled
    parameters. *)

type mode = Quick | Full

val set_jobs : int -> unit
(** Fan the independent cells of each sweep out over this many workers
    (see {!Parallel}); default 1 (sequential). Simulation is
    deterministic in virtual time and every sweep computes its whole
    matrix before printing, so the output is byte-identical whatever
    the worker count.
    @raise Invalid_argument when the count is [< 1]. *)

val get_jobs : unit -> int

val set_backend : Supervisor.backend option -> unit
(** Execution backend for the sweeps ([bcgc bench --backend]): forked
    workers, the shared-memory domain pool, or inline. [None] (the
    default) picks per sweep — sequential at [-j 1], forked wider. *)

val get_backend : unit -> Supervisor.backend option

val table1 : mode -> unit
(** Table 1: total allocation and measured minimum heap per benchmark,
    against the paper's (scaled) numbers. *)

val figure2 : mode -> unit
(** Fig. 2: geometric mean execution time relative to BC across all nine
    benchmarks, as a function of relative heap size, without memory
    pressure. *)

val figure3 : mode -> unit
(** Fig. 3(a,b): steady memory pressure (40% of the heap available):
    execution time and average GC pause vs heap size, pseudoJBB. *)

val figure45 : mode -> unit
(** Figs. 4 and 5(a,b): dynamically growing memory pressure: average GC
    pause and execution time vs available memory, including the
    fixed-nursery variants and BC w/Resizing-only. *)

val figure6 : mode -> unit
(** Fig. 6(a,b): bounded mutator utilization curves under moderate and
    severe dynamic pressure. *)

val figure7 : mode -> unit
(** Fig. 7(a,b): two simultaneous instances of pseudoJBB: execution time
    and average GC pause vs available memory. *)

val ablation : mode -> unit
(** Design-choice ablations under dynamic pressure: bookmarks off,
    aggressive discarding off, conservative clearing off, compaction off,
    reserve sizing, fixed nursery. *)

val ssd : mode -> unit
(** Beyond the paper: repeat the dynamic-pressure comparison with a
    modern flash swap device (~80 µs faults instead of ~5 ms). The
    memory/disk latency gap is the paper's premise; this quantifies how
    much of BC's advantage it carries. *)

val recovery : mode -> unit
(** Beyond the paper (§7's concern): a brief memory-pressure spike that
    later releases. Compares full BC (which regrows its footprint target)
    against a no-regrow variant and GenMS, reporting the time spent after
    the release. *)

val mixed : mode -> unit
(** Beyond the paper: heterogeneous cohabitation. Two instances share one
    memory-tight machine in three pairings (BC+BC, GenMS+GenMS,
    BC+GenMS) — does the cooperative collector get exploited by a paging
    neighbour that never gives memory back? *)

val multiprocess : mode -> unit
(** The paper's shared-machine scenario (§5) head-on: each collector runs
    pseudoJBB solo and then again beside a competing GenMS instance on
    one {!Machine} with 55% of the combined heaps in physical memory,
    reporting per-process slowdown, p95 pause and fault counts — BC
    degrades gracefully where the baselines page-storm. A second table
    re-runs the BC+GenMS pairing under the round-robin, proportional-
    share and priority scheduling policies. *)

val faults : mode -> unit
(** Beyond the paper: robustness matrix. Every benchmark × {BC, GenMS}
    under a standard fault plan (≈30% of eviction notices dropped, swap
    I/O errors, two swap-full episodes, a scripted pressure spike) with
    the post-run invariant verifier on; prints per-cell
    ok/degraded/failed outcomes and the injected-fault counters. A
    second table runs the same fault plan against a serving workload
    (BC + a GenMS coworker sharing one memory-tight machine) and prints
    each process's request-latency percentiles and p999 SLO verdict. *)

val control : mode -> unit
(** Closed-loop adaptive memory control: BC on jess across every
    registered controller (plus controller-off) × fault plans (none /
    benign / storm) × two pressure schedules (steady, ramp); prints
    per-cell outcome, failsafe count, p99 pause and the controller's
    peak/final degradation state, then ["control verdict:"] lines —
    each adaptive controller must beat every static configuration on a
    fault plan (fewer failsafes, or equal with a lower p99 pause) while
    staying within noise of the statics with no faults. Not part of
    {!all}. *)

val trace_export : mode -> unit
(** Telemetry showcase: run BC and GenMS on pseudoJBB under dynamic
    pressure with a trace sink attached, print the per-phase report, and
    (when [CSV_DIR] is set) write Chrome trace JSON + event CSV files —
    the JSON embeds the cell's {!Metrics.to_json}, the single
    serialisation path. Not part of {!all}. *)

val slo : ?out:string -> mode -> unit
(** Beyond the paper: request-serving tail latency under paging. Runs
    the serving workloads (shaped and flash arrival shapes in [Quick];
    plus diurnal and pausing, over three heap multipliers, in [Full])
    against {BC, GenMS, GenCopy} with 55% of the heap in physical
    memory; prints p50/p99/p999 request latency, SLO-violation counts
    and violation windows per cell, then the configurations where BC
    meets the p999 bound that a whole-heap collector violates. [out]
    writes a self-validated ["bcgc-slo-report/1"] JSON report. Not part
    of {!all}. *)

val campaign : mode -> unit
(** Demo of the supervised {!Campaign} runner: a 16-cell sweep
    ({BC, GenMS} × jess × two heaps × {no faults, a fault plan} × {no
    pressure, steady pressure}) journaled to a temp file and
    consolidated into a report, fanned over {!get_jobs} supervised
    workers. Not part of {!all}. *)

val all : mode -> unit
(** Everything above, in paper order, plus the SSD, recovery,
    cohabitation, multiprocess and fault-injection studies. *)

module Fault_plan = Faults.Fault_plan

type setup = {
  collector : string;
  spec : Workload.Spec.t;
  heap_bytes : int;
  frames : int;
  pressure : Workload.Pressure.t;
  ops_per_slice : int;
  costs : Vmsim.Costs.t;
  iterations : int;
  faults : Fault_plan.spec option;
  fault_seed : int;
  verify : bool;
  trace : Telemetry.Sink.t option;
}

let default_slice = 256

let default_fault_seed = 0x5eed

let ample_frames ~heap_bytes =
  (4 * Vmsim.Page.count_for_bytes heap_bytes) + 2048

let setup ?frames ?(pressure = Workload.Pressure.None_)
    ?(ops_per_slice = default_slice) ?(costs = Vmsim.Costs.default)
    ?(iterations = 1) ?faults ?(fault_seed = default_fault_seed)
    ?(verify = false) ?trace ~collector ~spec ~heap_bytes () =
  if iterations < 1 then invalid_arg "Run.setup: iterations";
  let frames =
    match frames with Some f -> f | None -> ample_frames ~heap_bytes
  in
  {
    collector;
    spec;
    heap_bytes;
    frames;
    pressure;
    ops_per_slice;
    costs;
    iterations;
    faults;
    fault_seed;
    verify;
    trace;
  }

type instance = {
  mutator : Workload.Mutator.t;
  coll : Gc_common.Collector.t;
  mutable finish_ns : int option;
}

let run_instances ~clock ~vmm ~address_space ~pressure ?plan ~ops_per_slice
    instances specs =
  let signalmem = Workload.Signalmem.create vmm address_space in
  let ramp_start = ref None in
  let unseen_spikes =
    ref (match plan with Some p -> Fault_plan.spikes p | None -> [])
  in
  let apply_pressure () =
    (* drive the schedule off the first instance's progress *)
    let inst = List.hd instances and spec = List.hd specs in
    let prog =
      float_of_int (Workload.Mutator.allocated_bytes inst.mutator)
      /. float_of_int (max 1 spec.Workload.Spec.total_alloc_bytes)
    in
    let now = Vmsim.Clock.now clock in
    (match !ramp_start with
    | None -> (
        match Workload.Pressure.after_progress pressure with
        | Some after when prog >= after -> ramp_start := Some now
        | Some _ | None -> ())
    | Some _ -> ());
    (match plan with
    | Some p ->
        let opened, rest =
          List.partition (fun (from, _, _) -> prog >= from) !unseen_spikes
        in
        List.iter (fun _ -> Fault_plan.note_spike_applied p) opened;
        unseen_spikes := rest
    | None -> ());
    let start_ns = Option.value !ramp_start ~default:now in
    let due =
      Workload.Pressure.due_pages pressure ~now_ns:now ~start_ns
        ~progress:prog
    in
    let have = Workload.Signalmem.pinned_pages signalmem in
    if due > have then Workload.Signalmem.pin_pages signalmem (due - have)
    else if due < have then
      (* a pressure spike receding: give the frames back *)
      Workload.Signalmem.unpin_pages signalmem (have - due)
  in
  let all_done () =
    List.for_all (fun inst -> inst.finish_ns <> None) instances
  in
  (* one Alloc_slice event per scheduling round: ops per slice plus the
     cumulative allocation volume (a Chrome counter track) *)
  let slice_event () =
    match Vmsim.Vmm.trace vmm with
    | None -> ()
    | Some sink ->
        let bytes =
          List.fold_left
            (fun acc inst ->
              acc + Workload.Mutator.allocated_bytes inst.mutator)
            0 instances
        in
        Telemetry.Sink.emit sink
          ~ts_ns:(Vmsim.Clock.now clock)
          Telemetry.Event.Alloc_slice ops_per_slice bytes
  in
  while not (all_done ()) do
    List.iter
      (fun inst ->
        if inst.finish_ns = None then begin
          let finished =
            Workload.Mutator.step inst.mutator ~ops:ops_per_slice
          in
          if finished then inst.finish_ns <- Some (Vmsim.Clock.now clock)
        end)
      instances;
    slice_event ();
    apply_pressure ()
  done

let exn_name e = Printexc.exn_slot_name e

let make_plan s = Option.map (Fault_plan.create ~seed:s.fault_seed) s.faults

let effective_pressure s plan =
  match plan with
  | None -> s.pressure
  | Some p -> Workload.Pressure.with_spikes s.pressure (Fault_plan.spikes p)

let run s =
  let clock = Vmsim.Clock.create () in
  let plan = make_plan s in
  let vmm =
    Vmsim.Vmm.create ~costs:s.costs ?faults:plan ~clock ~frames:s.frames ()
  in
  Vmsim.Vmm.set_trace vmm s.trace;
  let proc = Vmsim.Vmm.create_process vmm ~name:"jvm" in
  let heap = Heapsim.Heap.create vmm proc in
  let fault_stats () = Option.map Fault_plan.stats plan in
  let start_ns = ref (Vmsim.Clock.now clock) in
  let coll = ref None in
  let workload = s.spec.Workload.Spec.name in
  let partial () =
    (* best-effort snapshot of whatever the run accumulated *)
    match !coll with
    | None -> None
    | Some c -> (
        try
          Some
            (Metrics.of_run ?faults:(fault_stats ()) ~collector:c ~workload
               ~start_ns:!start_ns ~end_ns:(Vmsim.Clock.now clock) ())
        with _ -> None)
  in
  try
    let c = Registry.create ~name:s.collector ~heap_bytes:s.heap_bytes heap in
    coll := Some c;
    (* warm-up iterations (§5.1): run, then collect away their residue *)
    for i = 2 to s.iterations do
      ignore i;
      let warm = Workload.Mutator.create s.spec c in
      while not (Workload.Mutator.step warm ~ops:s.ops_per_slice) do
        ()
      done;
      c.Gc_common.Collector.collect ()
    done;
    if s.iterations > 1 then begin
      (* measure the final iteration only *)
      Gc_common.Gc_stats.reset c.Gc_common.Collector.stats;
      Vmsim.Vm_stats.reset (Vmsim.Process.stats proc);
      (* ... and keep the trace aligned with the measured interval *)
      Option.iter Telemetry.Sink.clear s.trace
    end;
    start_ns := Vmsim.Clock.now clock;
    let mutator = Workload.Mutator.create s.spec c in
    let inst = { mutator; coll = c; finish_ns = None } in
    run_instances ~clock ~vmm
      ~address_space:(Heapsim.Heap.address_space heap)
      ~pressure:(effective_pressure s plan) ?plan
      ~ops_per_slice:s.ops_per_slice [ inst ] [ s.spec ];
    let end_ns = Option.value inst.finish_ns ~default:(Vmsim.Clock.now clock) in
    if s.verify then begin
      Gc_common.Verify.heap heap;
      c.Gc_common.Collector.check_invariants ()
    end;
    Metrics.Completed
      (Metrics.of_run ?faults:(fault_stats ()) ~collector:c ~workload
         ~start_ns:!start_ns ~end_ns ())
  with
  | Gc_common.Collector.Heap_exhausted msg -> Metrics.Exhausted msg
  | Vmsim.Vmm.Thrashing msg -> Metrics.Thrashed msg
  | e ->
      (* one failing cell must not kill the whole matrix: record the
         exception, the injected-fault counters and any partial stats *)
      Metrics.Failed
        {
          Metrics.reason = Printexc.to_string e;
          exn_name = exn_name e;
          fault_stats = fault_stats ();
          partial = partial ();
        }

let run_pair a b =
  assert (a.frames = b.frames);
  let clock = Vmsim.Clock.create () in
  let plan = make_plan a in
  let vmm =
    Vmsim.Vmm.create ~costs:a.costs ?faults:plan ~clock ~frames:a.frames ()
  in
  Vmsim.Vmm.set_trace vmm a.trace;
  let shared_as = Heapsim.Address_space.create () in
  let fault_stats () = Option.map Fault_plan.stats plan in
  let make s tag =
    let proc = Vmsim.Vmm.create_process vmm ~name:tag in
    let heap = Heapsim.Heap.create_with vmm proc ~address_space:shared_as in
    let coll = Registry.create ~name:s.collector ~heap_bytes:s.heap_bytes heap in
    let mutator = Workload.Mutator.create s.spec coll in
    { mutator; coll; finish_ns = None }
  in
  try
    let start_ns = Vmsim.Clock.now clock in
    let ia = make a "jvm-a" in
    let ib = make b "jvm-b" in
    run_instances ~clock ~vmm ~address_space:shared_as
      ~pressure:(effective_pressure a plan) ?plan
      ~ops_per_slice:a.ops_per_slice [ ia; ib ] [ a.spec; b.spec ];
    let result inst s =
      Metrics.Completed
        (Metrics.of_run ?faults:(fault_stats ()) ~collector:inst.coll
           ~workload:s.spec.Workload.Spec.name ~start_ns
           ~end_ns:
             (Option.value inst.finish_ns ~default:(Vmsim.Clock.now clock)) ())
    in
    (result ia a, result ib b)
  with
  | Gc_common.Collector.Heap_exhausted msg ->
      (Metrics.Exhausted msg, Metrics.Exhausted msg)
  | Vmsim.Vmm.Thrashing msg -> (Metrics.Thrashed msg, Metrics.Thrashed msg)
  | e ->
      let failure =
        Metrics.Failed
          {
            Metrics.reason = Printexc.to_string e;
            exn_name = exn_name e;
            fault_stats = fault_stats ();
            partial = None;
          }
      in
      (failure, failure)

module Fault_plan = Faults.Fault_plan

let default_slice = Machine.default_slice

let default_fault_seed = 0x5eed

let ample_frames ~heap_bytes =
  (4 * Vmsim.Page.count_for_bytes heap_bytes) + 2048

module Plan = struct
  type proc = {
    collector : string;
    workload : Workload.Catalog.params;
    heap_bytes : int;
    share : int;
    priority : int;
  }

  type t = {
    procs : proc list;  (* head = primary process *)
    frames : int option;
    pressure : Workload.Pressure.t;
    ops_per_slice : int;
    costs : Vmsim.Costs.t;
    iterations : int;
    faults : Fault_plan.spec option;
    fault_seed : int;
    verify : bool;
    trace : Telemetry.Sink.t option;
    policy : Machine.policy;
    event_cap : int option;
    (* address-space base page; None = the Address_space default (16).
       Giant bases exercise the sparse page table. *)
    address_base : int option;
    (* online memory controller: registry policy name and decision
       window in virtual ns; None = no controller (bit-identical to the
       historical runs). One instance per process. *)
    controller : (string * int) option;
  }

  let make_workload ~collector ~workload ~heap_bytes =
    {
      procs = [ { collector; workload; heap_bytes; share = 1; priority = 0 } ];
      frames = None;
      pressure = Workload.Pressure.None_;
      ops_per_slice = default_slice;
      costs = Vmsim.Costs.default;
      iterations = 1;
      faults = None;
      fault_seed = default_fault_seed;
      verify = false;
      trace = None;
      policy = Machine.Round_robin;
      event_cap = None;
      address_base = None;
      controller = None;
    }

  let make ~collector ~spec ~heap_bytes =
    make_workload ~collector ~workload:(Workload.Catalog.Batch_spec spec)
      ~heap_bytes

  let of_workload ~collector ~workload ~heap_bytes =
    make_workload ~collector ~workload:workload.Workload.Catalog.params
      ~heap_bytes

  let with_workload_params workload t =
    match t.procs with
    | p :: rest -> { t with procs = { p with workload } :: rest }
    | [] -> assert false

  let with_workload info t =
    with_workload_params info.Workload.Catalog.params t

  let with_frames frames t = { t with frames = Some frames }

  let with_pressure pressure t = { t with pressure }

  let with_ops_per_slice ops_per_slice t =
    if ops_per_slice < 1 then invalid_arg "Plan.with_ops_per_slice";
    { t with ops_per_slice }

  let with_costs costs t = { t with costs }

  let with_iterations iterations t =
    if iterations < 1 then invalid_arg "Plan.with_iterations";
    { t with iterations }

  let with_faults ?(seed = default_fault_seed) spec t =
    { t with faults = Some spec; fault_seed = seed }

  let with_verify t = { t with verify = true }

  let with_trace sink t = { t with trace = Some sink }

  let with_policy policy t = { t with policy }

  let with_event_cap event_cap t =
    if event_cap < 1 then invalid_arg "Plan.with_event_cap";
    { t with event_cap = Some event_cap }

  let with_address_base base t =
    if base < 0 then invalid_arg "Plan.with_address_base";
    { t with address_base = Some base }

  let default_control_window_ns = 5_000_000

  let with_controller ?(window_ns = default_control_window_ns) name t =
    if window_ns < 1 then invalid_arg "Plan.with_controller: window_ns";
    (* validate eagerly: a plan naming an unknown policy should fail at
       construction, not deep inside a campaign worker *)
    ignore (Control.Registry.find name);
    { t with controller = Some (name, window_ns) }

  let with_share share t =
    match t.procs with
    | p :: rest -> { t with procs = { p with share } :: rest }
    | [] -> assert false

  let with_priority priority t =
    match t.procs with
    | p :: rest -> { t with procs = { p with priority } :: rest }
    | [] -> assert false

  let with_process_workload ?(share = 1) ?(priority = 0) ?heap_bytes
      ~collector ~workload t =
    let heap_bytes =
      match heap_bytes with
      | Some b -> b
      | None -> (List.hd t.procs).heap_bytes
    in
    {
      t with
      procs =
        t.procs @ [ { collector; workload; heap_bytes; share; priority } ];
    }

  let with_process ?share ?priority ?heap_bytes ~collector ~spec t =
    with_process_workload ?share ?priority ?heap_bytes ~collector
      ~workload:(Workload.Catalog.Batch_spec spec) t

  let procs t = t.procs

  let nprocs t = List.length t.procs

  let primary t = List.hd t.procs

  let collector t = (primary t).collector

  let workload t = (primary t).workload

  let workload_name t = Workload.Catalog.params_name (workload t)

  let spec t =
    match (primary t).workload with
    | Workload.Catalog.Batch_spec s -> s
    | Workload.Catalog.Serving_spec s ->
        invalid_arg
          (Printf.sprintf
             "Plan.spec: %S is a serving workload; use Plan.workload"
             s.Workload.Request.name)

  let heap_bytes t = (primary t).heap_bytes

  let iterations t = t.iterations

  let traced t = t.trace <> None

  let event_cap t = t.event_cap

  let address_base t = t.address_base

  let controller t = t.controller

  (* Frames needed to run without any physical-memory pressure: room for
     every process's heap plus slack. *)
  let frames t =
    match t.frames with
    | Some f -> f
    | None ->
        ample_frames
          ~heap_bytes:
            (List.fold_left (fun acc p -> acc + p.heap_bytes) 0 t.procs)

  (* Canonical text of everything that can influence a run's outcome.
     The trace sink is excluded on purpose: tracing is proven
     zero-overhead (bit-identical metrics), so a traced and an untraced
     run are the same cell. Field order is part of the format — changing
     it invalidates every journal, so append, don't reorder. *)
  let canonical t =
    let b = Buffer.create 512 in
    let spec_fields (s : Workload.Spec.t) =
      Printf.bprintf b
        "%s;%d;%d;%d;%.17g;%d;%d;%.17g;%.17g;%d;%.17g;%.17g;%.17g;%d;%d"
        s.Workload.Spec.name s.total_alloc_bytes s.immortal_bytes
        s.window_bytes s.long_frac s.mean_size s.max_size s.large_frac
        s.array_frac s.nrefs_mean s.mutation_rate s.access_rate
        s.cold_access_frac s.paper_min_heap_bytes s.seed
    in
    (* The serving encoding is new in bcgc-plan/1 and cannot collide
       with the batch one (no batch spec name contains "serving:"); the
       batch encoding is byte-identical to the historical format, so
       every pre-existing digest — hence every campaign journal cell
       key — is preserved. *)
    let serving_fields (s : Workload.Request.spec) =
      Printf.bprintf b
        "serving:%s;%s;%d;%d;%d;%.17g;%d;%d;%d;%d;%d;%d;%d"
        s.Workload.Request.name
        (Workload.Shapes.to_string s.shape)
        s.duration_ns s.req_alloc_bytes s.req_mean_size s.session_frac
        s.cache_bytes s.cache_entry_size s.cache_reads s.slo_ns s.window_ns
        s.base_heap_bytes s.seed
    in
    let workload_fields = function
      | Workload.Catalog.Batch_spec s -> spec_fields s
      | Workload.Catalog.Serving_spec s -> serving_fields s
    in
    let rec pressure p =
      match p with
      | Workload.Pressure.None_ -> Buffer.add_string b "none"
      | Workload.Pressure.Steady { after_progress; pin_pages } ->
          Printf.bprintf b "steady(%.17g,%d)" after_progress pin_pages
      | Workload.Pressure.Ramp
          { after_progress; initial_pages; pages_per_step; step_ns; max_pages }
        ->
          Printf.bprintf b "ramp(%.17g,%d,%d,%d,%d)" after_progress
            initial_pages pages_per_step step_ns max_pages
      | Workload.Pressure.Spikes { base; spikes } ->
          Buffer.add_string b "spikes(";
          pressure base;
          List.iter
            (fun (s : Workload.Pressure.spike) ->
              Printf.bprintf b ",[%.17g,%.17g,%d]" s.from_progress
                s.until_progress s.pages)
            spikes;
          Buffer.add_char b ')'
    in
    Buffer.add_string b "bcgc-plan/1|procs=";
    List.iter
      (fun p ->
        Printf.bprintf b "{%s|" p.collector;
        workload_fields p.workload;
        Printf.bprintf b "|%d|%d|%d}" p.heap_bytes p.share p.priority)
      t.procs;
    Printf.bprintf b "|frames=%d|slice=%d|iters=%d" (frames t)
      t.ops_per_slice t.iterations;
    Buffer.add_string b "|pressure=";
    pressure t.pressure;
    let c = t.costs in
    Printf.bprintf b "|costs=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d"
      c.Vmsim.Costs.minor_fault_ns c.major_fault_ns c.protection_fault_ns
      c.syscall_ns c.swap_write_ns c.alloc_ns c.alloc_byte_ns
      c.freelist_alloc_extra_ns c.access_ns c.gc_object_ns c.gc_byte_copy_ns
      c.gc_page_sweep_ns c.gc_setup_ns;
    (match t.faults with
    | None -> Buffer.add_string b "|faults=none"
    | Some spec ->
        Printf.bprintf b "|faults=%s@%d"
          (Fault_plan.spec_to_string spec)
          t.fault_seed);
    Printf.bprintf b "|verify=%b|policy=%s|event_cap=%s" t.verify
      (match t.policy with
      | Machine.Round_robin -> "rr"
      | Machine.Proportional -> "prop"
      | Machine.Priority -> "prio")
      (match t.event_cap with None -> "none" | Some n -> string_of_int n);
    (* Appended only when non-default, so every historical canonical
       string — hence every campaign-journal digest — is byte-identical
       for plans that never set a base. *)
    (match t.address_base with
    | None -> ()
    | Some base -> Printf.bprintf b "|base=%d" base);
    (* same append-only discipline as |base= *)
    (match t.controller with
    | None -> ()
    | Some (name, window_ns) ->
        Printf.bprintf b "|controller=%s@%d" name window_ns);
    Buffer.contents b

  let digest t = Digest.to_hex (Digest.string (canonical t))
end

let exn_name e = Printexc.exn_slot_name e

(* Process names: the historical "jvm" for a single process, "jvm-a",
   "jvm-b", ... when several share the machine. *)
let proc_names n =
  if n = 1 then [ "jvm" ]
  else
    List.init n (fun i ->
        if i < 26 then Printf.sprintf "jvm-%c" (Char.chr (Char.code 'a' + i))
        else Printf.sprintf "jvm-%d" (i + 1))

let effective_pressure (p : Plan.t) plan =
  match plan with
  | None -> p.Plan.pressure
  | Some fp ->
      Workload.Pressure.with_spikes p.Plan.pressure (Fault_plan.spikes fp)

let exec_all (p : Plan.t) =
  let n = Plan.nprocs p in
  let plan = Option.map (Fault_plan.create ~seed:p.Plan.fault_seed) p.Plan.faults in
  let m =
    Machine.create ~costs:p.Plan.costs ?faults:plan ?trace:p.Plan.trace
      ~policy:p.Plan.policy ?first_page:p.Plan.address_base
      ~frames:(Plan.frames p) ()
  in
  let clock = Machine.clock m in
  let fault_stats () = Option.map Fault_plan.stats plan in
  let mprocs =
    List.map2
      (fun (pr : Plan.proc) name ->
        Machine.spawn ~share:pr.Plan.share ~priority:pr.Plan.priority m ~name
          ~heap_bytes:pr.Plan.heap_bytes)
      p.Plan.procs (proc_names n)
  in
  let pairs = List.combine p.Plan.procs mprocs in
  let partial () =
    (* best-effort snapshot of whatever the primary accumulated *)
    match pairs with
    | (pr, mp) :: _ -> (
        match
          try Some (Machine.collector mp) with Invalid_argument _ -> None
        with
        | None -> None
        | Some c -> (
            try
              Some
                (Metrics.of_run ?faults:(fault_stats ())
                   ?serving:(Machine.serving_summary mp)
                   ?control:(Machine.control_summary mp) ~collector:c
                   ~workload:(Workload.Catalog.params_name pr.Plan.workload)
                   ~start_ns:(Machine.window_start_ns mp)
                   ~end_ns:(Vmsim.Clock.now clock) ())
            with _ -> None))
    | [] -> None
  in
  try
    List.iter
      (fun ((pr : Plan.proc), mp) ->
        ignore (Registry.instantiate_name ~name:pr.Plan.collector mp))
      pairs;
    (* warm-up iterations (§5.1): run, then collect away their residue *)
    List.iter
      (fun ((pr : Plan.proc), mp) ->
        Machine.warm_up mp ~iterations:p.Plan.iterations
          ~ops_per_slice:p.Plan.ops_per_slice pr.Plan.workload)
      pairs;
    if p.Plan.iterations > 1 then begin
      (* measure the final iteration only *)
      List.iter (fun (_, mp) -> Machine.reset_window mp) pairs;
      (* ... and keep the trace aligned with the measured interval *)
      Option.iter Telemetry.Sink.clear p.Plan.trace
    end;
    List.iter
      (fun ((pr : Plan.proc), mp) -> Machine.load mp pr.Plan.workload)
      pairs;
    (* controllers attach after the measurement window opens, so their
       first window diffs against the measured run's baseline (not the
       warm-up residue). One instance per process. *)
    (match p.Plan.controller with
    | None -> ()
    | Some (cname, window_ns) ->
        List.iter
          (fun ((pr : Plan.proc), mp) ->
            let cfg =
              {
                Control.Controller.heap_pages =
                  Vmsim.Page.count_for_bytes pr.Plan.heap_bytes;
                frames = Plan.frames p;
                window_ns;
              }
            in
            Machine.set_controller mp ~window_ns
              (Control.Registry.instantiate ~name:cname cfg))
          pairs);
    Machine.run
      ~pressure:(effective_pressure p plan)
      ~ops_per_slice:p.Plan.ops_per_slice ?event_cap:p.Plan.event_cap m;
    if p.Plan.verify then
      List.iter
        (fun (_, mp) ->
          Gc_common.Verify.heap (Machine.heap mp);
          (Machine.collector mp).Gc_common.Collector.check_invariants ())
        pairs;
    List.map
      (fun ((pr : Plan.proc), mp) ->
        let end_ns =
          Option.value (Machine.finish_ns mp)
            ~default:(Vmsim.Clock.now clock)
        in
        Metrics.Completed
          (Metrics.of_run ?faults:(fault_stats ())
             ?serving:(Machine.serving_summary mp)
             ?control:(Machine.control_summary mp)
             ~collector:(Machine.collector mp)
             ~workload:(Workload.Catalog.params_name pr.Plan.workload)
             ~start_ns:(Machine.window_start_ns mp) ~end_ns ()))
      pairs
  with
  | Gc_common.Collector.Heap_exhausted msg ->
      List.map (fun _ -> Metrics.Exhausted msg) p.Plan.procs
  | Vmsim.Vmm.Thrashing msg ->
      List.map (fun _ -> Metrics.Thrashed msg) p.Plan.procs
  | e ->
      (* one failing cell must not kill the whole matrix: record the
         exception, the injected-fault counters and any partial stats
         (for the primary; cohabitants share the machine's fate) *)
      let failure partial =
        Metrics.Failed
          {
            Metrics.reason = Printexc.to_string e;
            exn_name = exn_name e;
            fault_stats = fault_stats ();
            partial;
          }
      in
      List.mapi
        (fun i _ -> failure (if i = 0 then partial () else None))
        p.Plan.procs

let exec p =
  match exec_all p with o :: _ -> o | [] -> assert false

module Gc_stats = Gc_common.Gc_stats

type t = {
  collector : string;
  workload : string;
  heap_bytes : int;
  elapsed_ns : int;
  gc_ns : int;
  minor : int;
  full : int;
  compacting : int;
  avg_pause_ms : float;
  p50_pause_ms : float;
  p95_pause_ms : float;
  max_pause_ms : float;
  major_faults : int;
  gc_major_faults : int;
  evictions : int;
  discards : int;
  relinquished : int;
  footprint_pages : int;
  allocated_bytes : int;
  pauses : (int * int) list;
  faults : Faults.Fault_plan.stats option;
}

type failure = {
  reason : string;
  exn_name : string;
  fault_stats : Faults.Fault_plan.stats option;
  partial : t option;
}

type outcome =
  | Completed of t
  | Exhausted of string
  | Thrashed of string
  | Failed of failure

let elapsed_s t = Vmsim.Clock.ns_to_s t.elapsed_ns

let of_run ?faults ~collector ~workload ~start_ns ~end_ns () =
  let stats = collector.Gc_common.Collector.stats in
  let pstats =
    Vmsim.Process.stats
      (Heapsim.Heap.process collector.Gc_common.Collector.heap)
  in
  {
    collector = collector.Gc_common.Collector.name;
    workload;
    heap_bytes =
      collector.Gc_common.Collector.config.Gc_common.Gc_config.heap_bytes;
    elapsed_ns = end_ns - start_ns;
    gc_ns = Gc_stats.total_gc_ns stats;
    minor = Gc_stats.count stats Gc_stats.Minor;
    full = Gc_stats.count stats Gc_stats.Full;
    compacting = Gc_stats.count stats Gc_stats.Compacting;
    avg_pause_ms = Gc_stats.avg_pause_ms stats;
    p50_pause_ms = Gc_stats.pause_percentile_ms stats 0.5;
    p95_pause_ms = Gc_stats.pause_percentile_ms stats 0.95;
    max_pause_ms = Gc_stats.max_pause_ms stats;
    major_faults = pstats.Vmsim.Vm_stats.major_faults;
    gc_major_faults = Gc_stats.gc_major_faults stats;
    evictions = pstats.Vmsim.Vm_stats.evictions;
    discards = pstats.Vmsim.Vm_stats.discards;
    relinquished = pstats.Vmsim.Vm_stats.relinquished;
    footprint_pages = Gc_stats.max_heap_pages stats;
    allocated_bytes = Gc_stats.allocated_bytes stats;
    pauses =
      List.map
        (fun p -> (p.Gc_stats.start_ns, p.Gc_stats.duration_ns))
        (Gc_stats.pauses stats);
    faults;
  }

(* How did the cell fare? "degraded" means it completed while faults
   were actually being injected — the graceful-degradation regime. *)
let outcome_label = function
  | Completed { faults = Some stats; _ }
    when Faults.Fault_plan.injected_total stats > 0 ->
      "degraded"
  | Completed _ -> "ok"
  | Exhausted _ -> "exhausted"
  | Thrashed _ -> "thrashed"
  | Failed _ -> "failed"

let pp ppf t =
  Format.fprintf ppf
    "%s/%s heap=%dKB: %.3fs (gc %.3fs) pauses avg=%.2fms p50=%.2fms \
     p95=%.2fms max=%.2fms gc=[%d minor, %d full, %d compact] faults=%d \
     (gc %d) evict=%d discard=%d relinq=%d"
    t.collector t.workload (t.heap_bytes / 1024)
    (Vmsim.Clock.ns_to_s t.elapsed_ns)
    (Vmsim.Clock.ns_to_s t.gc_ns)
    t.avg_pause_ms t.p50_pause_ms t.p95_pause_ms t.max_pause_ms t.minor
    t.full t.compacting t.major_faults
    t.gc_major_faults t.evictions t.discards t.relinquished;
  match t.faults with
  | Some stats when Faults.Fault_plan.injected_total stats > 0 ->
      Format.fprintf ppf " [%a]" Faults.Fault_plan.pp_stats stats
  | Some _ | None -> ()

let pp_outcome ppf = function
  | Completed m -> pp ppf m
  | Exhausted msg -> Format.fprintf ppf "exhausted: %s" msg
  | Thrashed msg -> Format.fprintf ppf "thrashed: %s" msg
  | Failed f -> (
      Format.fprintf ppf "failed (%s): %s" f.exn_name f.reason;
      (match f.fault_stats with
      | Some stats -> Format.fprintf ppf " [%a]" Faults.Fault_plan.pp_stats stats
      | None -> ());
      match f.partial with
      | Some m -> Format.fprintf ppf "@ partial: %a" pp m
      | None -> ())

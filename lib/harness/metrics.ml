module Gc_stats = Gc_common.Gc_stats
module Json = Telemetry.Json

type t = {
  collector : string;
  workload : string;
  heap_bytes : int;
  elapsed_ns : int;
  gc_ns : int;
  minor : int;
  full : int;
  compacting : int;
  failsafes : int;
  avg_pause_ms : float;
  p50_pause_ms : float;
  p95_pause_ms : float;
  max_pause_ms : float;
  major_faults : int;
  gc_major_faults : int;
  evictions : int;
  discards : int;
  relinquished : int;
  footprint_pages : int;
  resident_peak_pages : int;
  allocated_bytes : int;
  pauses : (int * int) list;
  faults : Faults.Fault_plan.stats option;
  serving : Workload.Slo.summary option;
  control : Control.Controller.summary option;
}

type failure = {
  reason : string;
  exn_name : string;
  fault_stats : Faults.Fault_plan.stats option;
  partial : t option;
}

type outcome =
  | Completed of t
  | Exhausted of string
  | Thrashed of string
  | Failed of failure

let elapsed_s t = Vmsim.Clock.ns_to_s t.elapsed_ns

(* Derive a result purely from immutable snapshots — a cell can be built
   for any interval by [diff]ing two snapshots, and the collector's
   mutable counters are read exactly once. *)
let of_snapshots ?faults ?serving ?control ~collector ~workload ~heap_bytes
    ~gc ~vm ~start_ns ~end_ns () =
  {
    collector;
    workload;
    heap_bytes;
    elapsed_ns = end_ns - start_ns;
    gc_ns = gc.Gc_stats.Snapshot.total_gc_ns;
    minor = gc.Gc_stats.Snapshot.minor;
    full = gc.Gc_stats.Snapshot.full;
    compacting = gc.Gc_stats.Snapshot.compacting;
    failsafes = gc.Gc_stats.Snapshot.failsafes;
    avg_pause_ms = Gc_stats.Snapshot.avg_pause_ms gc;
    p50_pause_ms = Gc_stats.Snapshot.pause_percentile_ms gc 0.5;
    p95_pause_ms = Gc_stats.Snapshot.pause_percentile_ms gc 0.95;
    max_pause_ms = Gc_stats.Snapshot.max_pause_ms gc;
    major_faults = vm.Vmsim.Vm_stats.Snapshot.major_faults;
    gc_major_faults = gc.Gc_stats.Snapshot.gc_major_faults;
    evictions = vm.Vmsim.Vm_stats.Snapshot.evictions;
    discards = vm.Vmsim.Vm_stats.Snapshot.discards;
    relinquished = vm.Vmsim.Vm_stats.Snapshot.relinquished;
    footprint_pages = gc.Gc_stats.Snapshot.max_heap_pages;
    resident_peak_pages = vm.Vmsim.Vm_stats.Snapshot.peak_resident_pages;
    allocated_bytes = gc.Gc_stats.Snapshot.allocated_bytes;
    pauses =
      List.map
        (fun p -> (p.Gc_stats.start_ns, p.Gc_stats.duration_ns))
        gc.Gc_stats.Snapshot.pauses;
    faults;
    serving;
    control;
  }

let of_run ?faults ?serving ?control ~collector ~workload ~start_ns ~end_ns ()
    =
  let gc = Gc_stats.snapshot collector.Gc_common.Collector.stats in
  let vm =
    Vmsim.Vm_stats.snapshot
      (Vmsim.Process.stats
         (Heapsim.Heap.process collector.Gc_common.Collector.heap))
  in
  of_snapshots ?faults ?serving ?control
    ~collector:collector.Gc_common.Collector.name
    ~workload
    ~heap_bytes:
      collector.Gc_common.Collector.config.Gc_common.Gc_config.heap_bytes
    ~gc ~vm ~start_ns ~end_ns ()

(* How did the cell fare? "degraded" means it completed, but only under
   duress: faults were actually injected, or the collector had to fall
   back to a fail-safe whole-heap collection (§3.5). *)
let outcome_label = function
  | Completed { faults = Some stats; _ }
    when Faults.Fault_plan.injected_total stats > 0 ->
      "degraded"
  | Completed { failsafes; _ } when failsafes > 0 -> "degraded"
  | Completed _ -> "ok"
  | Exhausted _ -> "exhausted"
  | Thrashed _ -> "thrashed"
  | Failed _ -> "failed"

(* The one serialisation path for a cell: the bench CSV dump, the
   trace exporter's metadata and the campaign journal all go through
   this. *)
let fault_json (s : Faults.Fault_plan.stats) =
  Json.Obj
    [
      ("dropped_eviction", Json.int s.Faults.Fault_plan.dropped_eviction);
      ("dropped_resident", Json.int s.Faults.Fault_plan.dropped_resident);
      ("delayed", Json.int s.Faults.Fault_plan.delayed);
      ("duplicated", Json.int s.Faults.Fault_plan.duplicated);
      ("reordered_flushes", Json.int s.Faults.Fault_plan.reordered_flushes);
      ("swap_write_errors", Json.int s.Faults.Fault_plan.swap_write_errors);
      ("swap_read_errors", Json.int s.Faults.Fault_plan.swap_read_errors);
      ("swap_full_rejections", Json.int s.Faults.Fault_plan.swap_full_rejections);
      ("spikes_applied", Json.int s.Faults.Fault_plan.spikes_applied);
      ("injected_total", Json.int (Faults.Fault_plan.injected_total s));
    ]

let to_json t =
  (* the "serving" key is conditional: batch cells serialise exactly as
     they always have, which the bit-identity golden matrix depends on *)
  let serving =
    match t.serving with
    | None -> []
    | Some s -> [ ("serving", Workload.Slo.to_json s) ]
  in
  (* the "control" key is conditional for the same reason: controller-off
     cells serialise byte-identically to the committed golden matrices *)
  let control =
    match t.control with
    | None -> []
    | Some (c : Control.Controller.summary) ->
        [
          ( "control",
            Json.Obj
              [
                ("policy", Json.Str c.policy);
                ("decisions", Json.int c.decisions);
                ("transitions", Json.int c.transitions);
                ( "final_state",
                  Json.Str (Control.Controller.state_name c.final_state) );
                ( "peak_state",
                  Json.Str (Control.Controller.state_name c.peak_state) );
                ("forced_failsafes", Json.int c.forced_failsafes);
                ("trace_digest", Json.Str c.trace_digest);
              ] );
        ]
  in
  Json.Obj
    ([
      ("collector", Json.Str t.collector);
      ("workload", Json.Str t.workload);
      ("heap_bytes", Json.int t.heap_bytes);
      ("elapsed_ns", Json.int t.elapsed_ns);
      ("gc_ns", Json.int t.gc_ns);
      ("minor", Json.int t.minor);
      ("full", Json.int t.full);
      ("compacting", Json.int t.compacting);
      ("failsafes", Json.int t.failsafes);
      ("avg_pause_ms", Json.Num t.avg_pause_ms);
      ("p50_pause_ms", Json.Num t.p50_pause_ms);
      ("p95_pause_ms", Json.Num t.p95_pause_ms);
      ("max_pause_ms", Json.Num t.max_pause_ms);
      ("major_faults", Json.int t.major_faults);
      ("gc_major_faults", Json.int t.gc_major_faults);
      ("evictions", Json.int t.evictions);
      ("discards", Json.int t.discards);
      ("relinquished", Json.int t.relinquished);
      ("footprint_pages", Json.int t.footprint_pages);
      ("resident_peak_pages", Json.int t.resident_peak_pages);
      ("allocated_bytes", Json.int t.allocated_bytes);
      ( "pauses",
        Json.List
          (List.map
             (fun (s, d) -> Json.List [ Json.int s; Json.int d ])
             t.pauses) );
      ( "faults",
        match t.faults with None -> Json.Null | Some s -> fault_json s );
    ]
    @ serving @ control)

(* Whole-outcome serialisation, for the campaign journal and its
   consolidated reports: every constructor round-trips, and Failed
   carries its full provenance (exception name, reason with backtrace,
   injected-fault counters, partial stats) so quarantine reports stay
   actionable offline. *)
let outcome_to_json = function
  | Completed m ->
      Json.Obj [ ("status", Json.Str "completed"); ("metrics", to_json m) ]
  | Exhausted msg ->
      Json.Obj [ ("status", Json.Str "exhausted"); ("message", Json.Str msg) ]
  | Thrashed msg ->
      Json.Obj [ ("status", Json.Str "thrashed"); ("message", Json.Str msg) ]
  | Failed f ->
      Json.Obj
        [
          ("status", Json.Str "failed");
          ("exn", Json.Str f.exn_name);
          ("reason", Json.Str f.reason);
          ( "fault_stats",
            match f.fault_stats with
            | None -> Json.Null
            | Some s -> fault_json s );
          ( "partial",
            match f.partial with None -> Json.Null | Some m -> to_json m );
        ]

let pp ppf t =
  Format.fprintf ppf
    "%s/%s heap=%dKB: %.3fs (gc %.3fs) pauses avg=%.2fms p50=%.2fms \
     p95=%.2fms max=%.2fms gc=[%d minor, %d full, %d compact] faults=%d \
     (gc %d) evict=%d discard=%d relinq=%d"
    t.collector t.workload (t.heap_bytes / 1024)
    (Vmsim.Clock.ns_to_s t.elapsed_ns)
    (Vmsim.Clock.ns_to_s t.gc_ns)
    t.avg_pause_ms t.p50_pause_ms t.p95_pause_ms t.max_pause_ms t.minor
    t.full t.compacting t.major_faults
    t.gc_major_faults t.evictions t.discards t.relinquished;
  if t.failsafes > 0 then Format.fprintf ppf " failsafe=%d" t.failsafes;
  (match t.faults with
  | Some stats when Faults.Fault_plan.injected_total stats > 0 ->
      Format.fprintf ppf " [%a]" Faults.Fault_plan.pp_stats stats
  | Some _ | None -> ());
  (match t.serving with
  | Some s -> Format.fprintf ppf "@   serving: %a" Workload.Slo.pp s
  | None -> ());
  match t.control with
  | Some c -> Format.fprintf ppf "@   %a" Control.Controller.pp_summary c
  | None -> ()

let pp_outcome ppf = function
  | Completed m -> pp ppf m
  | Exhausted msg -> Format.fprintf ppf "exhausted: %s" msg
  | Thrashed msg -> Format.fprintf ppf "thrashed: %s" msg
  | Failed f -> (
      Format.fprintf ppf "failed (%s): %s" f.exn_name f.reason;
      (match f.fault_stats with
      | Some stats -> Format.fprintf ppf " [%a]" Faults.Fault_plan.pp_stats stats
      | None -> ());
      match f.partial with
      | Some m -> Format.fprintf ppf "@ partial: %a" pp m
      | None -> ())

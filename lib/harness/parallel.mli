(** Fork-based fan-out of independent runs across supervised Unix
    workers.

    The whole simulation is deterministic in virtual time, so farming
    cells of an experiment matrix out to forked worker processes and
    marshalling the results back produces byte-identical metrics to a
    sequential sweep — only the wall-clock changes. Results always come
    back in input order, whatever order the workers finish in.

    Since the {!Supervisor} rewrite the fan-out is a leased work queue,
    not a strided assignment: each worker holds exactly one cell at a
    time, so a worker that crashes, hangs past the deadline, or cuts
    its result stream costs only that one in-flight cell — results it
    already streamed are kept, and the failure report names the cell,
    the worker's exit status or fatal signal, and (for in-worker
    exceptions) the backtrace. *)

val default_jobs : unit -> int
(** Worker count matching the machine's available cores. *)

val wrap : ('a -> 'b) -> 'a -> ('b, string) result
(** Apply [f], catching any exception into [Error]; the payload is the
    exception text plus the captured backtrace (when one was recorded),
    so a failure threaded into [Metrics.Failed.reason] is actionable. *)

val map :
  jobs:int ->
  ?backend:Supervisor.backend ->
  ?deadline_s:float ->
  ?attempts:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, string) result list
(** [map ~jobs f xs] applies [f] to every item across [jobs] workers
    and returns per-item results in input order. [jobs < 1] raises
    [Invalid_argument]. An item whose [f] raises yields [Error] with
    the exception text and backtrace; an item whose worker dies or
    hangs yields [Error] naming the process status or the blown
    deadline. [deadline_s] bounds each item's wall-clock (fork backend
    only); [attempts] retries a failed item that many times in total
    (default 1 — no retry). [backend] picks the engine explicitly; left
    unset, [jobs <= 1] runs sequentially in this process and anything
    wider forks.

    Under the fork backend [f]'s result must be marshallable (plain
    data: no closures, no custom blocks) and workers run with their own
    copy of the heap, so mutations made by [f] are invisible to the
    parent. Under [`Domains] results are ordinary heap values and no
    copy exists — cells share this process's memory. *)

val outcomes :
  jobs:int ->
  ?backend:Supervisor.backend ->
  ?deadline_s:float ->
  ?attempts:int ->
  Run.Plan.t list ->
  Metrics.outcome list
(** {!map} specialised to executing plans: each plan runs through
    {!Run.exec}, and a lost, hung or crashed worker surfaces as a
    [Metrics.Failed] cell whose [reason] carries the supervisor's
    diagnosis (exit status / signal / deadline, plus any backtrace), so
    matrix printers need no second error path. Plans carrying a trace
    sink never cross a fork — a sink filled in a forked child would be
    thrown away with the child's heap — so under the (default) fork
    backend they downgrade to a sequential in-process sweep; the
    [`Domains] backend runs them in parallel, sinks and all, because
    pooled domains share this heap. *)

(** Fork-based fan-out of independent runs across Unix workers.

    The whole simulation is deterministic in virtual time, so farming
    cells of an experiment matrix out to forked worker processes and
    marshalling the results back produces byte-identical metrics to a
    sequential sweep — only the wall-clock changes. Results always come
    back in input order, whatever order the workers finish in.

    Failure isolation is per item twice over: {!Run.exec} already turns
    a cell's exception into [Metrics.Failed] inside the worker, and if
    a worker process itself dies (segfault, kill, marshal failure) only
    its unfinished items are reported as [Error] — the rest of the
    matrix is unaffected. *)

val default_jobs : unit -> int
(** Worker count matching the machine's available cores. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> ('b, string) result list
(** [map ~jobs f xs] applies [f] to every item, fanning out across
    [jobs] forked workers (items are strided round-robin, so the
    assignment is deterministic), and returns per-item results in input
    order. An item whose [f] raises yields [Error] with the exception
    text; items lost to a dead worker yield [Error] too. With
    [jobs <= 1], or fewer items than that, runs sequentially in this
    process — same results, no forks.

    [f]'s result must be marshallable (plain data: no closures, no
    custom blocks); workers run with their own copy of the heap, so
    mutations made by [f] are invisible to the parent. *)

val outcomes : jobs:int -> Run.Plan.t list -> Metrics.outcome list
(** {!map} specialised to executing plans: each plan runs through
    {!Run.exec}, and a lost worker's items surface as [Metrics.Failed]
    cells rather than [Error]s, so matrix printers need no second
    error path. Plans carrying a trace sink run sequentially in this
    process whatever [jobs] says — a sink filled in a forked child
    would be thrown away with the child's heap. *)

(* Wall-clock performance microbenchmarks for the simulator itself.

   Everything else in the harness measures *virtual* time — the simulated
   clock the paper's results are stated in. This module measures *real*
   time: how many simulated page touches, allocations and field accesses
   per wall-clock second the implementation sustains, and how long a full
   collection or a reclaim storm takes to simulate. Those numbers bound
   how large a heap, how many frames and how many co-scheduled processes
   we can afford to simulate, so they are recorded (as BENCH_perf.json at
   the repo root) to track the repo's performance trajectory PR over PR.

   Wall-clock numbers are machine-dependent by nature; the committed
   baseline is a snapshot for trend comparison, not a golden. Virtual-time
   results must never depend on anything here. *)

module Json = Telemetry.Json

let schema_version = "bcgc-perf/1"

let default_repetitions = 5

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Sample statistics                                                    *)

type dist = {
  median : float;
  iqr_lo : float;  (* 25th percentile *)
  iqr_hi : float;  (* 75th percentile *)
  samples : float list;  (* in run order *)
}

(* Linear-interpolated percentile of a sorted array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Perf.percentile: no samples"
  else if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let dist_of_samples samples =
  let sorted = Array.of_list samples in
  Array.sort compare sorted;
  {
    median = percentile sorted 0.5;
    iqr_lo = percentile sorted 0.25;
    iqr_hi = percentile sorted 0.75;
    samples;
  }

(* Run [f] [warmups] times unrecorded, then [reps] measured times. [f]
   returns the wall-seconds its hot loop took (setup excluded); [per]
   scales each sample (ops per rep for a rate, 1.0 for a duration).
   Two warm-up passes by default: the first still pays one-time costs
   outside the benchmark's own setup (code paths compiling their inline
   caches warm, the major heap growing to the working set), which is
   exactly the profile of the historical write_ref outlier — a first
   measured sample ~30% under the rest of its set. *)
let default_warmups = 2

let measure ?(warmups = default_warmups) ~reps ~per f =
  for _ = 1 to warmups do
    ignore (f () : float)
  done;
  let samples =
    List.init reps (fun _ ->
        let s = f () in
        if s <= 0.0 then per /. 1e-9 else per /. s)
  in
  dist_of_samples samples

let dist_json d =
  [
    ("median", Json.Num d.median);
    ("iqr_lo", Json.Num d.iqr_lo);
    ("iqr_hi", Json.Num d.iqr_hi);
    ("samples", Json.List (List.map (fun s -> Json.Num s) d.samples));
  ]

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: the touch chain                                     *)

(* Resident touches: every page is in a frame, so each touch is the pure
   fast path — no fault, no reclaim, no swap. This is the dominant cost
   of every simulation and the headline number of the suite. *)
let bench_touch_resident () =
  let pages = 2048 in
  let iters = 2_000_000 in
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames:(pages + 64) () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"perf" in
  Vmsim.Vmm.map_range vmm proc ~first_page:0 ~npages:pages;
  for p = 0 to pages - 1 do
    Vmsim.Vmm.touch vmm p
  done;
  let p = ref 0 in
  let t0 = now () in
  for _ = 1 to iters do
    Vmsim.Vmm.touch vmm !p;
    incr p;
    if !p >= pages then p := 0
  done;
  (float_of_int iters, now () -. t0)

(* Batched resident spans: the same all-resident working set as
   [bench_touch_resident], touched through [Vmm.touch_span] so whole
   runs collapse into per-chunk flag stores and one clock skip. The
   headline for the event-skipping path: it must beat the per-touch
   ceiling above. One op = one page touched. *)
let bench_touch_span_resident () =
  let pages = 2048 in
  let spans = 4_000 in
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames:(pages + 64) () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"perf" in
  Vmsim.Vmm.map_range vmm proc ~first_page:0 ~npages:pages;
  for p = 0 to pages - 1 do
    Vmsim.Vmm.touch vmm p
  done;
  let t0 = now () in
  for _ = 1 to spans do
    Vmsim.Vmm.touch_span vmm ~first_page:0 pages
  done;
  (float_of_int (spans * pages), now () -. t0)

(* Sparse giant address spaces: map, fault in and unmap ranges with page
   numbers beyond 2^30, a fresh chunk per round. Bounds the cost of
   materialising page-table/LRU/bitset chunks on demand — the dense
   tables this replaced would have tried to allocate gigabytes here.
   One op = one page mapped + touched + unmapped. *)
let bench_sparse_map_giant () =
  let npages = 512 in
  let rounds = 400 in
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames:(npages + 64) () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"perf" in
  let t0 = now () in
  for r = 0 to rounds - 1 do
    (* one 8192-page stride per round: every round lands in new chunks *)
    let first_page = (1 lsl 30) + (r * 8192) in
    Vmsim.Vmm.map_range vmm proc ~first_page ~npages;
    Vmsim.Vmm.touch_span vmm ~first_page npages;
    Vmsim.Vmm.unmap_range vmm ~first_page ~npages
  done;
  (float_of_int (rounds * npages), now () -. t0)

(* Faulting touches: four times more pages than frames, swept
   sequentially, so the LRU streams — most touches reload from swap and
   push an eviction. Exercises reclaim, the swap device and notices. *)
let bench_touch_faulting () =
  let pages = 1024 in
  let frames = 256 in
  let iters = 60_000 in
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"perf" in
  Vmsim.Vmm.map_range vmm proc ~first_page:0 ~npages:pages;
  let p = ref 0 in
  let t0 = now () in
  for _ = 1 to iters do
    Vmsim.Vmm.touch vmm ~write:true !p;
    incr p;
    if !p >= pages then p := 0
  done;
  (float_of_int iters, now () -. t0)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: the heap substrate                                  *)

let perf_heap ~npages =
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~clock ~frames:(npages + 64) () in
  let proc = Vmsim.Vmm.create_process vmm ~name:"perf" in
  Vmsim.Vmm.map_range vmm proc ~first_page:0 ~npages;
  Heapsim.Heap.create vmm proc

(* Alloc/free churn in the evacuation pattern: fill pages densely with
   small objects, then displace and free them in address order — exactly
   what a copying pass does, and the worst case for a linear-scan page
   map. One op = one alloc or one free. *)
let bench_alloc_free () =
  let heap = perf_heap ~npages:64 in
  let objects = Heapsim.Heap.objects heap in
  let obj_size = 64 in
  let per_batch = 2048 in
  let batches = 60 in
  let ids = Array.make per_batch (-1) in
  let t0 = now () in
  for _ = 1 to batches do
    for i = 0 to per_batch - 1 do
      let id = Heapsim.Object_table.alloc objects ~size:obj_size ~nrefs:0 ~kind:`Scalar in
      Heapsim.Heap.place heap id ~addr:(i * obj_size);
      ids.(i) <- id
    done;
    for i = 0 to per_batch - 1 do
      Heapsim.Heap.free_object heap ids.(i)
    done
  done;
  (float_of_int (2 * per_batch * batches), now () -. t0)

let ref_bench ~write () =
  let nobjs = 1024 in
  let obj_size = 128 in
  let heap = perf_heap ~npages:(1 + (nobjs * obj_size / Vmsim.Page.size)) in
  let objects = Heapsim.Heap.objects heap in
  let ids =
    Array.init nobjs (fun i ->
        let id =
          Heapsim.Object_table.alloc objects ~size:obj_size ~nrefs:4
            ~kind:`Scalar
        in
        Heapsim.Heap.place heap id ~addr:(i * obj_size);
        Heapsim.Heap.touch_object heap id;
        id)
  in
  let iters = 1_000_000 in
  let i = ref 0 in
  let t0 = now () in
  for _ = 1 to iters do
    let id = ids.(!i) in
    if write then
      Heapsim.Heap.write_ref heap id (!i land 3) ids.((!i + 7) land (nobjs - 1))
    else ignore (Heapsim.Heap.read_ref heap id (!i land 3));
    incr i;
    if !i >= nobjs then i := 0
  done;
  (float_of_int iters, now () -. t0)

let bench_read_ref () = ref_bench ~write:false ()

let bench_write_ref () = ref_bench ~write:true ()

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: the experiment drivers                              *)

(* 64 deliberately short cells: small heaps, 1% volume. Short cells are
   where driver overhead dominates — the fork backend pays a worker
   spawn amortised over the sweep plus Marshal + pipe + select per
   cell, the domain pool only a deque push/pop per cell — so this pair
   is the scaling story of the two engines. One op = one cell. *)
let driver_cells = 64

let driver_spec =
  {
    (Workload.Spec.scale_volume Workload.Benchmarks.compress 0.01)
    with
    Workload.Spec.immortal_bytes = 60_000;
    window_bytes = 30_000;
  }

let driver_plans () =
  Array.init driver_cells (fun i ->
      let collector = if i land 1 = 0 then "BC" else "GenMS" in
      let heap_bytes = (512 * 1024) + ((i land 3) * 16_384) in
      Run.Plan.make ~collector ~spec:driver_spec ~heap_bytes)

let driver_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

(* [force_fork] so the fork number is honest even at one core: the fork
   backend's defining costs (spawn, Marshal, pipes, select) are paid
   regardless of fan-out. NOTE the suite must run the fork sweep —
   warm-ups included — before the domains sweep ever creates a pool:
   the runtime forbids Unix.fork once any domain was spawned. The
   [micro_benches] list order below is that ordering. *)
let bench_driver_sweep ~backend () =
  let plans = driver_plans () in
  let jobs = driver_jobs () in
  let t0 = now () in
  let cells, _ = Supervisor.run ~jobs ~backend ~force_fork:true Run.exec plans in
  ignore (cells : Metrics.outcome Supervisor.cell array);
  (float_of_int driver_cells, now () -. t0)

let bench_driver_fork_sweep () = bench_driver_sweep ~backend:`Fork ()

let bench_driver_domains_sweep () = bench_driver_sweep ~backend:`Domains ()

(* ------------------------------------------------------------------ *)
(* Per-collector wall times                                             *)

let perf_spec =
  {
    (Workload.Spec.scale_volume Workload.Benchmarks.compress 0.05)
    with
    Workload.Spec.immortal_bytes = 300_000;
    window_bytes = 120_000;
  }

let heap_bytes = 1024 * 1024

(* Wall time of one forced full collection on a populated heap
   (averaged over a small inner loop; a single collection can be
   too short to time reliably). *)
let bench_full_collection ~collector () =
  let clock = Vmsim.Clock.create () in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let vmm =
    Vmsim.Vmm.create ~clock ~frames:((4 * heap_pages) + 2048) ()
  in
  let proc = Vmsim.Vmm.create_process vmm ~name:"perf" in
  let heap = Heapsim.Heap.create vmm proc in
  let c = Registry.create ~name:collector ~heap_bytes heap in
  let mutator = Workload.Mutator.create perf_spec c in
  while not (Workload.Mutator.step mutator ~ops:1024) do () done;
  let inner = 8 in
  let t0 = now () in
  for _ = 1 to inner do
    c.Gc_common.Collector.collect ()
  done;
  ((now () -. t0) *. 1e3 /. float_of_int inner, ())

(* Wall time to simulate a whole run under steady memory pressure —
   the reclaim storm keeps the VMM's eviction and fault paths hot. *)
let bench_reclaim_storm ~collector () =
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let plan =
    Run.Plan.make ~collector ~spec:perf_spec ~heap_bytes
    |> Run.Plan.with_frames (heap_pages + 128)
    |> Run.Plan.with_pressure
         (Workload.Pressure.Steady
            { after_progress = 0.1; pin_pages = heap_pages * 4 / 10 })
  in
  let t0 = now () in
  let outcome = Run.exec plan in
  ((now () -. t0) *. 1e3, Metrics.outcome_label outcome)

(* Duration benchmarks report milliseconds (lower is better); reuse
   [measure] by sampling the duration directly. *)
let measure_ms ?(warmups = default_warmups) ~reps f =
  let last = ref None in
  let sample () =
    let ms, extra = f () in
    last := Some extra;
    ms
  in
  for _ = 1 to warmups do
    ignore (sample () : float)
  done;
  let samples = List.init reps (fun _ -> sample ()) in
  (dist_of_samples samples, !last)

(* ------------------------------------------------------------------ *)
(* The suite                                                            *)

type t = {
  repetitions : int;
  micro : (string * dist) list;  (* name -> ops per wall second *)
  collectors : (string * dist * dist * string) list;
      (* name, full-collection ms, reclaim-storm ms, storm outcome *)
}

(* Order matters at the end: driver_fork_sweep must precede
   driver_domains_sweep — fork is impossible once a domain exists. *)
let micro_benches =
  [
    ("touch_resident", bench_touch_resident);
    ("touch_span_resident", bench_touch_span_resident);
    ("touch_faulting", bench_touch_faulting);
    ("sparse_map_giant", bench_sparse_map_giant);
    ("alloc_free", bench_alloc_free);
    ("read_ref", bench_read_ref);
    ("write_ref", bench_write_ref);
    ("driver_fork_sweep", bench_driver_fork_sweep);
    ("driver_domains_sweep", bench_driver_domains_sweep);
  ]

let run ?(repetitions = default_repetitions) ?(progress = fun _ -> ()) () =
  if repetitions < 1 then invalid_arg "Perf.run: repetitions";
  let micro =
    List.map
      (fun (name, bench) ->
        progress (Printf.sprintf "micro: %s" name);
        let ops = ref 0.0 in
        let d =
          measure ~reps:repetitions ~per:1.0 (fun () ->
              let o, s = bench () in
              ops := o;
              s /. o)
        in
        (* [measure] computed 1/seconds-per-op = ops/sec *)
        (name, d))
      micro_benches
  in
  (* the driver sweeps leave idle pooled domains behind; join them so
     the collector wall-times below run in a single-domain process *)
  Domain_pool.shutdown_global ();
  let collectors =
    List.map
      (fun name ->
        progress (Printf.sprintf "collector: %s" name);
        let full, _ = measure_ms ~reps:repetitions (bench_full_collection ~collector:name) in
        let storm, outcome =
          measure_ms ~reps:repetitions (bench_reclaim_storm ~collector:name)
        in
        (name, full, storm, Option.value outcome ~default:"unknown"))
      Registry.names
  in
  { repetitions; micro; collectors }

let to_json r =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("repetitions", Json.int r.repetitions);
      ("page_size", Json.int Vmsim.Page.size);
      ( "micro",
        Json.List
          (List.map
             (fun (name, d) ->
               Json.Obj
                 (("name", Json.Str name)
                 :: ("unit", Json.Str "ops_per_sec")
                 :: dist_json d))
             r.micro) );
      ( "collectors",
        Json.List
          (List.map
             (fun (name, full, storm, outcome) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("full_collection_ms", Json.Obj (dist_json full));
                   ("reclaim_storm_ms", Json.Obj (dist_json storm));
                   ("outcome", Json.Str outcome);
                 ])
             r.collectors) );
    ]

let pp ppf r =
  Format.fprintf ppf "perf suite (%d repetitions, page size %d):@." r.repetitions
    Vmsim.Page.size;
  List.iter
    (fun (name, d) ->
      Format.fprintf ppf "  %-16s %12.0f ops/s  [iqr %.0f..%.0f]@." name
        d.median d.iqr_lo d.iqr_hi)
    r.micro;
  List.iter
    (fun (name, full, storm, outcome) ->
      Format.fprintf ppf
        "  %-16s full %8.3f ms  storm %8.3f ms  (%s)@." name full.median
        storm.median outcome)
    r.collectors

let default_output = "BENCH_perf.json"

let write_file ?(path = default_output) r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json r));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Validation: the perf-smoke CI step parses the file back and checks
   the keys later PRs will compare. *)

let required_micro = List.map fst micro_benches

let validate json =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match Option.bind (Json.member "schema" json) Json.str_opt with
    | Some s when s = schema_version -> Ok ()
    | Some s -> Error (Printf.sprintf "unexpected schema %S" s)
    | None -> Error "missing \"schema\""
  in
  let* () =
    match Option.bind (Json.member "repetitions" json) Json.num_opt with
    | Some n when n >= 1.0 -> Ok ()
    | Some _ -> Error "\"repetitions\" must be >= 1"
    | None -> Error "missing \"repetitions\""
  in
  let median_of entry =
    Option.bind (Json.member "median" entry) Json.num_opt
  in
  let* micro =
    match Option.bind (Json.member "micro" json) Json.to_list_opt with
    | Some l -> Ok l
    | None -> Error "missing \"micro\" list"
  in
  let name_of e = Option.bind (Json.member "name" e) Json.str_opt in
  let* () =
    List.fold_left
      (fun acc want ->
        let* () = acc in
        match
          List.find_opt (fun e -> name_of e = Some want) micro
        with
        | None -> Error (Printf.sprintf "missing micro benchmark %S" want)
        | Some e -> (
            match median_of e with
            | Some m when m > 0.0 -> Ok ()
            | Some _ | None ->
                Error (Printf.sprintf "micro %S has no positive median" want)))
      (Ok ()) required_micro
  in
  let* collectors =
    match Option.bind (Json.member "collectors" json) Json.to_list_opt with
    | Some [] -> Error "\"collectors\" is empty"
    | Some l -> Ok l
    | None -> Error "missing \"collectors\" list"
  in
  List.fold_left
    (fun acc e ->
      let* () = acc in
      let name = Option.value (name_of e) ~default:"?" in
      let sub key =
        match Option.bind (Json.member key e) median_of with
        | Some m when m >= 0.0 -> Ok ()
        | Some _ | None ->
            Error (Printf.sprintf "collector %S: missing %s.median" name key)
      in
      let* () = sub "full_collection_ms" in
      sub "reclaim_storm_ms")
    (Ok ()) collectors

let read_json_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | content -> (
      match Json.of_string_opt content with
      | None -> Error (Printf.sprintf "%s is not valid JSON" path)
      | Some json -> Ok json)

let validate_file path =
  Result.bind (read_json_file path) validate

(* ------------------------------------------------------------------ *)
(* Regression guard: a fresh run against the committed baseline. Rates
   (micro, ops/s) may not drop more than [tolerance] below the baseline
   median; collector wall times (ms) may not rise more than [tolerance]
   above it. The fresh side uses its {e best} sample (fastest rate,
   shortest duration): a genuine code regression slows every sample,
   while a transient load burst on a shared CI box slows only some — so
   best-vs-median keeps the guard meaningful without making it flaky.
   Entries present on only one side are skipped — a freshly added micro
   has no baseline to regress against, and a retired one no fresh
   number — so the guard stays usable across suite changes. *)

let default_guard_tolerance = 0.20

let guard ?(tolerance = default_guard_tolerance) ~baseline fresh =
  if tolerance <= 0.0 then invalid_arg "Perf.guard: tolerance";
  let name_of e = Option.bind (Json.member "name" e) Json.str_opt in
  let median_of e = Option.bind (Json.member "median" e) Json.num_opt in
  let errs = ref [] in
  let tripped = ref [] in
  (* [who] is the offending benchmark's name, kept separately so the
     error report can lead with a one-line summary of which benchmarks
     tripped, not just a wall of per-line diagnostics *)
  let fail ~who fmt =
    Printf.ksprintf
      (fun s ->
        errs := s :: !errs;
        if not (List.mem who !tripped) then tripped := who :: !tripped)
      fmt
  in
  let base_micro =
    Option.value ~default:[]
      (Option.bind (Json.member "micro" baseline) Json.to_list_opt)
  in
  List.iter
    (fun (name, d) ->
      match
        Option.bind
          (List.find_opt (fun e -> name_of e = Some name) base_micro)
          median_of
      with
      | Some old when old > 0.0 ->
          let best = List.fold_left Float.max d.median d.samples in
          if best < (1.0 -. tolerance) *. old then
            fail ~who:name
              "micro %s: best %.3e ops/s is %.0f%% below baseline %.3e" name
              best
              (100.0 *. (1.0 -. (best /. old)))
              old
      | Some _ | None -> ())
    fresh.micro;
  let base_coll =
    Option.value ~default:[]
      (Option.bind (Json.member "collectors" baseline) Json.to_list_opt)
  in
  List.iter
    (fun (name, full, storm, _) ->
      match List.find_opt (fun e -> name_of e = Some name) base_coll with
      | None -> ()
      | Some e ->
          let check key (d : dist) =
            match Option.bind (Json.member key e) median_of with
            | Some old when old > 0.0 ->
                let best = List.fold_left Float.min d.median d.samples in
                if best > (1.0 +. tolerance) *. old then
                  fail
                    ~who:(Printf.sprintf "%s.%s" name key)
                    "collector %s: %s best %.3f ms is %.0f%% above baseline \
                     %.3f"
                    name key best
                    (100.0 *. ((best /. old) -. 1.0))
                    old
            | Some _ | None -> ()
          in
          check "full_collection_ms" full;
          check "reclaim_storm_ms" storm)
    fresh.collectors;
  match List.rev !errs with
  | [] -> Ok ()
  | l ->
      let who = List.rev !tripped in
      Error
        (Printf.sprintf "%d benchmark(s) tripped the guard: %s"
           (List.length who) (String.concat ", " who)
        :: l)

let guard_file ?tolerance ~baseline_path fresh =
  match read_json_file baseline_path with
  | Error msg -> Error [ msg ]
  | Ok baseline -> (
      match validate baseline with
      | Error msg -> Error [ Printf.sprintf "%s: %s" baseline_path msg ]
      | Ok () -> guard ?tolerance ~baseline fresh)

(** Persistent pool of OCaml 5 domains executing experiment cells in
    shared memory, with work stealing across per-domain Chase–Lev
    deques ({!Ws_deque}).

    The shared-memory counterpart of the forked {!Supervisor} engine:
    cells run as ordinary closures on pooled domains — no fork, no
    Marshal, results come back as heap values in spec order. The
    simulation is deterministic in virtual time, so a pool sweep is
    byte-identical to a sequential or forked one; only the wall-clock
    changes. What the pool gives up relative to fork is isolation: a
    cell that corrupts memory or diverges takes the process with it
    (cells are expected to contain their own failures, as {!Run.exec}
    does), and chaos/deadline kills don't exist because a domain cannot
    be SIGKILLed.

    {b Fork interaction.} The OCaml runtime permanently refuses
    [Unix.fork] once any domain has ever been spawned — joining them
    does not restore it. Run fork-backend work before the first
    {!create}/{!get} of the process; {!ever_created} is how the fork
    paths detect the situation and fail with a real error. *)

type t

type stats = {
  steals : int;  (** cells executed by a non-owner domain last round *)
  executed : int array;  (** per-worker cells executed last round *)
}

val create : jobs:int -> t
(** Spawn a pool of [jobs] worker domains (parked between rounds).
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val run :
  t ->
  ?partition:(int -> int) ->
  ?on_result:(int -> ('b, exn * string) result -> unit) ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn * string) result array
(** [run t f xs] executes every [f xs.(i)] on the pool and returns the
    per-cell results in spec (input) order. A cell whose [f] raises
    yields [Error (exn, backtrace)].

    [partition i] names the worker whose deque initially receives cell
    [i] (default: round-robin by index, taken mod the pool size) —
    load skew is then repaired by stealing. [on_result] fires in the
    {e coordinating} domain, in completion order, as each cell finishes:
    the campaign journal's single-writer append point.

    Must be called from one coordinating domain at a time; reentrant
    calls on the same pool raise [Invalid_argument]. *)

val last_stats : t -> stats
(** Steal and per-worker execution counters of the round that {!run}
    last completed. *)

val shutdown : t -> unit
(** Stop and join every worker domain. Idempotent. *)

val get : jobs:int -> t
(** The process-wide shared pool, created on first use and recreated
    (after an orderly {!shutdown}) when [jobs] changes. Coordinator-only
    state, like [Experiments.set_jobs]. *)

val shutdown_global : unit -> unit
(** Shut down the shared pool, if any. Idle pooled domains are parked
    on a condition variable and cost nothing, but wall-clock-sensitive
    callers (the perf suite) shut them down anyway. *)

val ever_created : unit -> bool
(** Whether any pool was ever created in this process — from then on
    the runtime forbids [Unix.fork], permanently. *)

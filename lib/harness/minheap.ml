let works ~collector ~spec ~heap_bytes =
  match Run.exec (Run.Plan.make ~collector ~spec ~heap_bytes) with
  | Metrics.Completed _ -> true
  | Metrics.Exhausted _ | Metrics.Thrashed _ | Metrics.Failed _ -> false

let find ?(granularity_bytes = 64 * 1024) ?lo_bytes ?hi_bytes
    ?(volume_scale = 0.5) ~collector ~spec () =
  let spec = Workload.Spec.scale_volume spec volume_scale in
  let live = Workload.Spec.live_estimate_bytes spec in
  let lo = Option.value lo_bytes ~default:(max granularity_bytes live) in
  let hi =
    Option.value hi_bytes
      ~default:(max (4 * spec.Workload.Spec.paper_min_heap_bytes) (4 * live))
  in
  if not (works ~collector ~spec ~heap_bytes:hi) then None
  else begin
    (* invariant: [hi] works, [lo - 1] region unknown/failing *)
    let lo = ref lo and hi = ref hi in
    while !hi - !lo > granularity_bytes do
      let mid = !lo + ((!hi - !lo) / 2) in
      if works ~collector ~spec ~heap_bytes:mid then hi := mid else lo := mid
    done;
    Some !hi
  end

module Fault_plan = Faults.Fault_plan

type policy = Round_robin | Proportional | Priority

exception Budget_exceeded of string

(* Per-process controller attachment: the policy instance plus the
   snapshot pair its next window will diff against. *)
type ctl = {
  ctl_c : Control.Controller.t;
  window_ns : int;
  mutable next_ns : int;
  mutable prev_gc : Gc_common.Gc_stats.snapshot;
  mutable prev_vm : Vmsim.Vm_stats.snapshot;
  mutable windows : int;
}

type process = {
  name : string;
  vproc : Vmsim.Process.t;
  heap : Heapsim.Heap.t;
  heap_bytes : int;
  share : int;
  priority : int;
  trace : Telemetry.Sink.t option;  (* the machine's sink, for serving *)
  mutable collector : Gc_common.Collector.t option;
  mutable driver : Workload.Driver.t option;
  mutable workload : Workload.Catalog.params option;
  mutable finish_ns : int option;
  mutable window_start_ns : int;
  mutable control : ctl option;
}

type t = {
  clock : Vmsim.Clock.t;
  vmm : Vmsim.Vmm.t;
  address_space : Heapsim.Address_space.t;
  plan : Fault_plan.t option;
  trace : Telemetry.Sink.t option;
  mutable policy : policy;
  mutable procs : process list;  (* spawn order *)
}

let default_slice = 256

let create ?(costs = Vmsim.Costs.default) ?faults ?trace
    ?(policy = Round_robin) ?first_page ~frames () =
  let clock = Vmsim.Clock.create () in
  let vmm = Vmsim.Vmm.create ~costs ?faults:faults ~clock ~frames () in
  Vmsim.Vmm.set_trace vmm trace;
  {
    clock;
    vmm;
    address_space = Heapsim.Address_space.create ?first_page ();
    plan = faults;
    trace;
    policy;
    procs = [];
  }

let clock t = t.clock

let vmm t = t.vmm

let address_space t = t.address_space

let fault_plan t = t.plan

let policy t = t.policy

let set_policy t p = t.policy <- p

let processes t = t.procs

let spawn ?(share = 1) ?(priority = 0) t ~name ~heap_bytes =
  if share < 1 then invalid_arg "Machine.spawn: share";
  let vproc = Vmsim.Vmm.create_process t.vmm ~name in
  let heap =
    Heapsim.Heap.create_with t.vmm vproc ~address_space:t.address_space
  in
  let p =
    {
      name;
      vproc;
      heap;
      heap_bytes;
      share;
      priority;
      trace = t.trace;
      collector = None;
      driver = None;
      workload = None;
      finish_ns = None;
      window_start_ns = Vmsim.Clock.now t.clock;
      control = None;
    }
  in
  t.procs <- t.procs @ [ p ];
  p

let name p = p.name

let pid p = Vmsim.Process.pid p.vproc

let vm_process p = p.vproc

let heap p = p.heap

let heap_bytes p = p.heap_bytes

let set_collector p c = p.collector <- Some c

let collector p =
  match p.collector with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Machine: process %S has no collector" p.name)

let load p workload =
  let c = collector p in
  p.window_start_ns <- Vmsim.Clock.now (Heapsim.Heap.clock p.heap);
  p.workload <- Some workload;
  p.finish_ns <- None;
  p.driver <- Some (Workload.Catalog.driver ?sink:p.trace workload c)

let load_spec p spec = load p (Workload.Catalog.Batch_spec spec)

let warm_up p ~iterations ~ops_per_slice workload =
  let c = collector p in
  for i = 2 to iterations do
    ignore i;
    (* warm iterations are unmeasured: no per-request telemetry *)
    let warm = Workload.Catalog.driver workload c in
    while not (warm.Workload.Driver.step ~ops:ops_per_slice) do () done;
    c.Gc_common.Collector.collect ()
  done

let reset_window p =
  (match p.collector with
  | Some c -> Gc_common.Gc_stats.reset c.Gc_common.Collector.stats
  | None -> ());
  Vmsim.Vm_stats.reset (Vmsim.Process.stats p.vproc)

let finish_ns p = p.finish_ns

let window_start_ns p = p.window_start_ns

let allocated_bytes p =
  match p.driver with
  | Some d -> d.Workload.Driver.allocated_bytes ()
  | None -> 0

let serving_summary p =
  match p.driver with
  | Some d -> d.Workload.Driver.serving ()
  | None -> None

let set_controller p ~window_ns c =
  if window_ns < 1 then invalid_arg "Machine.set_controller: window_ns";
  let gc =
    match p.collector with
    | Some col -> Gc_common.Gc_stats.snapshot col.Gc_common.Collector.stats
    | None ->
        invalid_arg
          (Printf.sprintf
             "Machine.set_controller: process %S has no collector" p.name)
  in
  p.control <-
    Some
      {
        ctl_c = c;
        window_ns;
        next_ns = Vmsim.Clock.now (Heapsim.Heap.clock p.heap) + window_ns;
        prev_gc = gc;
        prev_vm = Vmsim.Vm_stats.snapshot (Vmsim.Process.stats p.vproc);
        windows = 0;
      }

let controller_instance p = Option.map (fun c -> c.ctl_c) p.control

let control_summary p =
  Option.map (fun c -> Control.Controller.summary c.ctl_c) p.control

let driver_exn p =
  match p.driver with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf "Machine.run: process %S has no workload loaded"
           p.name)

(* One slice of one process; records its finish time on completion. *)
let step_slice t ~ops_per_slice p =
  if p.finish_ns = None then begin
    let finished = (driver_exn p).Workload.Driver.step ~ops:ops_per_slice in
    if finished then p.finish_ns <- Some (Vmsim.Clock.now t.clock)
  end

let run ?(pressure = Workload.Pressure.None_) ?(ops_per_slice = default_slice)
    ?event_cap t =
  (match t.procs with
  | [] -> invalid_arg "Machine.run: no processes"
  | ps -> List.iter (fun p -> ignore (driver_exn p)) ps);
  let first = List.hd t.procs in
  let first_driver = driver_exn first in
  let signalmem = Workload.Signalmem.create t.vmm t.address_space in
  let ramp_start = ref None in
  let unseen_spikes =
    ref (match t.plan with Some p -> Fault_plan.spikes p | None -> [])
  in
  let apply_pressure () =
    (* drive the schedule off the first process's progress *)
    let prog = first_driver.Workload.Driver.progress () in
    let now = Vmsim.Clock.now t.clock in
    (match !ramp_start with
    | None -> (
        match Workload.Pressure.after_progress pressure with
        | Some after when prog >= after -> ramp_start := Some now
        | Some _ | None -> ())
    | Some _ -> ());
    let jumped =
      match t.plan with
      | Some p ->
          let opened, rest =
            List.partition (fun (from, _, _) -> prog >= from) !unseen_spikes
          in
          List.iter (fun _ -> Fault_plan.note_spike_applied p) opened;
          unseen_spikes := rest;
          (* a spike whose whole [from,until) window was jumped within one
             round — a skipped span fast-forwarded progress past it — must
             still fire at its virtual timestamp: pin its pages for exactly
             this round (the schedule's own due_pages sees it as already
             receded). Next round jumped is 0 again and the pin retires. *)
          List.fold_left
            (fun acc (_, until, pages) ->
              if prog >= until then acc + pages else acc)
            0 opened
      | None -> 0
    in
    let start_ns = Option.value !ramp_start ~default:now in
    let due =
      jumped
      + Workload.Pressure.due_pages pressure ~now_ns:now ~start_ns
          ~progress:prog
    in
    let have = Workload.Signalmem.pinned_pages signalmem in
    if due > have then Workload.Signalmem.pin_pages signalmem (due - have)
    else if due < have then
      (* a pressure spike receding: give the frames back *)
      Workload.Signalmem.unpin_pages signalmem (have - due)
  in
  let all_done () = List.for_all (fun p -> p.finish_ns <> None) t.procs in
  (* one Alloc_slice event per scheduling round: ops per slice plus the
     cumulative allocation volume (a Chrome counter track); on a
     multi-process machine, one Proc_progress per process so the trace
     can attribute the volume *)
  let slice_event () =
    match t.trace with
    | None -> ()
    | Some sink ->
        let bytes =
          List.fold_left (fun acc p -> acc + allocated_bytes p) 0 t.procs
        in
        let now = Vmsim.Clock.now t.clock in
        Telemetry.Sink.emit sink ~ts_ns:now Telemetry.Event.Alloc_slice
          ops_per_slice bytes;
        match t.procs with
        | [] | [ _ ] -> ()
        | ps ->
            List.iter
              (fun p ->
                Telemetry.Sink.emit sink ~ts_ns:now
                  Telemetry.Event.Proc_progress (pid p) (allocated_bytes p))
              ps
  in
  (* virtual-event budget: every slice dispatched to an unfinished
     process spends ops_per_slice events; a runaway cell trips the cap
     instead of spinning an unattended campaign forever *)
  let spent = ref 0 in
  let step p =
    if p.finish_ns = None then spent := !spent + ops_per_slice;
    step_slice t ~ops_per_slice p
  in
  (* One controller decision per elapsed window per live process: diff
     the process's stat snapshots, let the policy decide, actuate via
     the collector's tuning interface. The controller is a virtual-time
     observer — deciding costs nothing on the clock — so with no
     controller attached (or an inert one) the run is bit-identical. *)
  let control_tick () =
    List.iter
      (fun p ->
        match p.control with
        | None -> ()
        | Some ctl ->
            let now = Vmsim.Clock.now t.clock in
            if p.finish_ns = None && now >= ctl.next_ns then begin
              let c = collector p in
              let gc_now =
                Gc_common.Gc_stats.snapshot c.Gc_common.Collector.stats
              in
              let vm_now =
                Vmsim.Vm_stats.snapshot (Vmsim.Process.stats p.vproc)
              in
              let dgc = Gc_common.Gc_stats.Snapshot.diff ctl.prev_gc gc_now in
              let dvm = Vmsim.Vm_stats.Snapshot.diff ctl.prev_vm vm_now in
              ctl.prev_gc <- gc_now;
              ctl.prev_vm <- vm_now;
              let sample =
                {
                  Control.Controller.window_ns = ctl.window_ns;
                  major_faults = dvm.Vmsim.Vm_stats.Snapshot.major_faults;
                  minor_faults = dvm.Vmsim.Vm_stats.Snapshot.minor_faults;
                  evictions = dvm.Vmsim.Vm_stats.Snapshot.evictions;
                  notices = dvm.Vmsim.Vm_stats.Snapshot.eviction_notices;
                  discards = dvm.Vmsim.Vm_stats.Snapshot.discards;
                  resident_pages = vm_now.Vmsim.Vm_stats.Snapshot.resident_pages;
                  free_frames = Vmsim.Vmm.free_frames t.vmm;
                  heap_pages =
                    Gc_common.Gc_config.heap_pages
                      c.Gc_common.Collector.config;
                  allocated_bytes =
                    dgc.Gc_common.Gc_stats.Snapshot.allocated_bytes;
                  p99_pause_ms =
                    Gc_common.Gc_stats.Snapshot.pause_percentile_ms dgc 0.99;
                  failsafes = dgc.Gc_common.Gc_stats.Snapshot.failsafes;
                }
              in
              let before = Control.Controller.state ctl.ctl_c in
              let d = Control.Controller.decide ctl.ctl_c sample in
              let tu = c.Gc_common.Collector.tuning in
              (match d.Control.Controller.act.Control.Controller.target with
              | Control.Controller.Keep -> ()
              | Control.Controller.Clear ->
                  tu.Gc_common.Collector.set_target_pages None
              | Control.Controller.Cap n ->
                  tu.Gc_common.Collector.set_target_pages (Some n));
              tu.Gc_common.Collector.set_notice_batch
                d.Control.Controller.act.Control.Controller.notice_batch;
              tu.Gc_common.Collector.set_relinquish_extra
                d.Control.Controller.act.Control.Controller.relinquish_extra;
              if d.Control.Controller.act.Control.Controller.force_failsafe
              then tu.Gc_common.Collector.request_failsafe ();
              (match t.trace with
              | None -> ()
              | Some sink ->
                  Telemetry.Sink.emit sink ~ts_ns:now
                    Telemetry.Event.Control_decision
                    (Control.Controller.state_code d.Control.Controller.state)
                    ctl.windows;
                  if d.Control.Controller.state <> before then
                    Telemetry.Sink.emit sink ~ts_ns:now
                      Telemetry.Event.Control_state_change
                      (Control.Controller.state_code before)
                      (Control.Controller.state_code
                         d.Control.Controller.state));
              ctl.windows <- ctl.windows + 1;
              ctl.next_ns <- now + ctl.window_ns
            end)
      t.procs
  in
  let round () =
    match t.policy with
    | Round_robin -> List.iter step t.procs
    | Proportional ->
        List.iter
          (fun p ->
            for _ = 1 to p.share do
              step p
            done)
          t.procs
    | Priority -> (
        let best =
          List.fold_left
            (fun acc p ->
              if p.finish_ns <> None then acc
              else
                match acc with
                | Some b when b.priority >= p.priority -> acc
                | _ -> Some p)
            None t.procs
        in
        match best with Some p -> step p | None -> ())
  in
  while not (all_done ()) do
    round ();
    slice_event ();
    apply_pressure ();
    control_tick ();
    match event_cap with
    | Some cap when !spent > cap ->
        raise
          (Budget_exceeded
             (Printf.sprintf
                "virtual-event budget exceeded: %d mutator ops > cap %d"
                !spent cap))
    | Some _ | None -> ()
  done

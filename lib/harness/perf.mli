(** Wall-clock performance microbenchmarks for the simulator itself.

    Everything else in the harness measures {e virtual} time — the
    simulated clock the paper's results are stated in. This module
    measures {e real} time: how many simulated page touches, allocations
    and field accesses per wall-clock second the implementation sustains,
    and how long a full collection or a reclaim storm takes to simulate.
    Those numbers bound how large a heap, how many frames and how many
    co-scheduled processes we can afford to simulate, so each PR records
    them (as [BENCH_perf.json] at the repo root) to track the repo's
    performance trajectory.

    Wall-clock numbers are machine-dependent by nature; the committed
    baseline is a snapshot for trend comparison, not a golden. Virtual-
    time results must never depend on anything here — the bit-identity
    test ([test/test_identity.ml]) enforces that. *)

type dist = {
  median : float;
  iqr_lo : float;  (** 25th percentile *)
  iqr_hi : float;  (** 75th percentile *)
  samples : float list;  (** in run order *)
}

type t = {
  repetitions : int;
  micro : (string * dist) list;  (** name -> ops per wall second *)
  collectors : (string * dist * dist * string) list;
      (** name, full-collection ms, reclaim-storm ms, storm outcome *)
}

val schema_version : string
(** The ["schema"] tag written into the JSON ("bcgc-perf/1"). *)

val default_repetitions : int

val default_output : string
(** ["BENCH_perf.json"]. *)

val required_micro : string list
(** Microbenchmark names the suite always carries (touch_resident,
    touch_span_resident, touch_faulting, sparse_map_giant, alloc_free,
    read_ref, write_ref, driver_fork_sweep, driver_domains_sweep);
    {!validate} requires a positive median for each. *)

val default_warmups : int
(** Unrecorded warm-up passes before the timed repetitions (2): the
    first pass still pays one-time process costs — inline caches, major
    heap growth to the working set — which is what made single-warm-up
    [write_ref] samples flaky. *)

val run : ?repetitions:int -> ?progress:(string -> unit) -> unit -> t
(** Run the whole suite: {!default_warmups} warm-up passes plus
    [repetitions] measured repetitions of every microbenchmark, then
    the per-collector full collection and reclaim-storm wall times for
    each headline registry entry. [progress] is called with a label as
    each benchmark starts.

    The driver sweeps run 64 short experiment cells through
    {!Supervisor.run} on the fork backend and then on the domain pool
    (in that order — fork is impossible once a domain exists); the pool
    is shut down again before the collector wall-times run. *)

val to_json : t -> Telemetry.Json.t

val write_file : ?path:string -> t -> unit
(** Serialise to [path] (default {!default_output}). *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary table (medians with IQR). *)

val validate : Telemetry.Json.t -> (unit, string) Stdlib.result
(** Check a parsed [BENCH_perf.json] carries the schema tag, at least
    one repetition, a positive median for every required microbenchmark
    and both wall-time medians for every collector — the keys later PRs
    compare. *)

val validate_file : string -> (unit, string) Stdlib.result

val default_guard_tolerance : float
(** Allowed median regression before {!guard} fails (0.20 = 20%). *)

val guard :
  ?tolerance:float ->
  baseline:Telemetry.Json.t ->
  t ->
  (unit, string list) Stdlib.result
(** Compare a fresh run against a parsed baseline [BENCH_perf.json].
    Fails when a micro's {e best} fresh sample drops more than
    [tolerance] below the baseline median, or a collector wall-time's
    best (shortest) sample rises more than [tolerance] above it —
    best-vs-median because a genuine regression slows every sample
    while a transient load burst slows only some. Benchmarks present on
    only one side are skipped, so the guard survives suite additions
    and retirements. [Error] leads with a one-line summary naming every
    benchmark that tripped, followed by one line per regression. *)

val guard_file :
  ?tolerance:float ->
  baseline_path:string ->
  t ->
  (unit, string list) Stdlib.result
(** {!guard} against a baseline file; the file must parse and
    {!validate}. *)

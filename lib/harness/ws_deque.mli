(** Chase–Lev work-stealing deque on OCaml 5 atomics.

    A single {e owner} domain pushes and pops at the bottom; any number
    of {e thief} domains steal from the top. This is the per-domain
    run queue under {!Domain_pool}: the coordinator loads each worker's
    deque while the pool is quiescent, the worker drains its own deque
    LIFO, and idle workers steal the oldest cell from a loaded peer.

    Thread-safety contract: [push], [pop] and [reset] may only be called
    by the deque's owner (or while no other domain touches the deque);
    [steal] may be called from any domain, concurrently with the owner's
    operations and with other thieves. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty deque. [capacity] is a hint (rounded up to a power of two,
    minimum 16); the buffer doubles on demand. *)

val push : 'a t -> 'a -> unit
(** Owner-only: add at the bottom. *)

val pop : 'a t -> 'a option
(** Owner-only: remove the most recently pushed element, or [None] when
    the deque is empty (losing the last element to a concurrent thief
    counts as empty). *)

val steal : 'a t -> 'a option
(** Thief: remove the {e oldest} element, or [None] when the deque is
    empty. Safe from any domain; retries internally on contention. *)

val length : 'a t -> int
(** Snapshot size; exact only while the deque is quiescent. *)

val is_empty : 'a t -> bool

val reset : 'a t -> unit
(** Owner-only, quiescent: empty the deque and clear lingering slot
    references so pooled deques do not pin the previous round's data. *)

module Rng = Repro_util.Rng

type spec = {
  drop_eviction : float;
  drop_resident : float;
  delay_notice : float;
  duplicate_notice : float;
  reorder : float;
  swap_write_error : float;
  swap_read_error : float;
  swap_full_episodes : int;
  swap_full_len : int;
  swap_full_every : int;
  spike_count : int;
  spike_pages : int;
}

let none =
  {
    drop_eviction = 0.;
    drop_resident = 0.;
    delay_notice = 0.;
    duplicate_notice = 0.;
    reorder = 0.;
    swap_write_error = 0.;
    swap_read_error = 0.;
    swap_full_episodes = 0;
    swap_full_len = 8;
    swap_full_every = 64;
    spike_count = 0;
    spike_pages = 128;
  }

let spec_of_string s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else
    let parse_field spec kv =
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "fault spec: expected key=value, got %S" kv)
      | Some i -> (
          let key = String.trim (String.sub kv 0 i) in
          let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
          let prob set =
            match float_of_string_opt v with
            | Some p when p >= 0. && p <= 1. -> Ok (set p)
            | _ -> Error (Printf.sprintf "fault spec: %s wants a probability in [0,1], got %S" key v)
          in
          let count set =
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok (set n)
            | _ -> Error (Printf.sprintf "fault spec: %s wants a non-negative integer, got %S" key v)
          in
          match key with
          | "drop" | "drop-evict" -> prob (fun p -> { spec with drop_eviction = p })
          | "drop-resident" -> prob (fun p -> { spec with drop_resident = p })
          | "delay" -> prob (fun p -> { spec with delay_notice = p })
          | "dup" -> prob (fun p -> { spec with duplicate_notice = p })
          | "reorder" -> prob (fun p -> { spec with reorder = p })
          | "swap-write-err" -> prob (fun p -> { spec with swap_write_error = p })
          | "swap-read-err" -> prob (fun p -> { spec with swap_read_error = p })
          | "swap-full" -> count (fun n -> { spec with swap_full_episodes = n })
          | "swap-full-len" -> count (fun n -> { spec with swap_full_len = n })
          | "swap-full-every" -> count (fun n -> { spec with swap_full_every = n })
          | "spikes" -> count (fun n -> { spec with spike_count = n })
          | "spike-pages" -> count (fun n -> { spec with spike_pages = n })
          | _ -> Error (Printf.sprintf "fault spec: unknown key %S" key))
    in
    String.split_on_char ',' s
    |> List.filter (fun kv -> String.trim kv <> "")
    |> List.fold_left
         (fun acc kv -> Result.bind acc (fun spec -> parse_field spec kv))
         (Ok none)

let spec_to_string spec =
  let fields = ref [] in
  let add key s = fields := (key ^ "=" ^ s) :: !fields in
  let prob key v dflt = if v <> dflt then add key (Printf.sprintf "%g" v) in
  let count key v dflt = if v <> dflt then add key (string_of_int v) in
  prob "drop-evict" spec.drop_eviction none.drop_eviction;
  prob "drop-resident" spec.drop_resident none.drop_resident;
  prob "delay" spec.delay_notice none.delay_notice;
  prob "dup" spec.duplicate_notice none.duplicate_notice;
  prob "reorder" spec.reorder none.reorder;
  prob "swap-write-err" spec.swap_write_error none.swap_write_error;
  prob "swap-read-err" spec.swap_read_error none.swap_read_error;
  count "swap-full" spec.swap_full_episodes none.swap_full_episodes;
  count "swap-full-len" spec.swap_full_len none.swap_full_len;
  count "swap-full-every" spec.swap_full_every none.swap_full_every;
  count "spikes" spec.spike_count none.spike_count;
  count "spike-pages" spec.spike_pages none.spike_pages;
  match List.rev !fields with [] -> "none" | fs -> String.concat "," fs

type stats = {
  mutable dropped_eviction : int;
  mutable dropped_resident : int;
  mutable delayed : int;
  mutable duplicated : int;
  mutable reordered_flushes : int;
  mutable swap_write_errors : int;
  mutable swap_read_errors : int;
  mutable swap_full_rejections : int;
  mutable spikes_applied : int;
}

let fresh_stats () =
  {
    dropped_eviction = 0;
    dropped_resident = 0;
    delayed = 0;
    duplicated = 0;
    reordered_flushes = 0;
    swap_write_errors = 0;
    swap_read_errors = 0;
    swap_full_rejections = 0;
    spikes_applied = 0;
  }

let injected_total s =
  s.dropped_eviction + s.dropped_resident + s.delayed + s.duplicated
  + s.reordered_flushes + s.swap_write_errors + s.swap_read_errors
  + s.swap_full_rejections + s.spikes_applied

let pp_stats ppf s =
  Format.fprintf ppf
    "faults: dropped=%d+%d delayed=%d dup=%d reordered=%d swap-err=%dw/%dr \
     swap-full=%d spikes=%d"
    s.dropped_eviction s.dropped_resident s.delayed s.duplicated
    s.reordered_flushes s.swap_write_errors s.swap_read_errors
    s.swap_full_rejections s.spikes_applied

type t = {
  seed : int;
  spec : spec;
  rng : Rng.t;  (** decision stream: one draw per decision point *)
  stats : stats;
  spikes : (float * float * int) list;
  (* Scripted device-full episodes: count down successful writes until the
     next episode opens, then reject [in_episode] writes in a row. *)
  mutable episodes_left : int;
  mutable writes_until_episode : int;
  mutable in_episode : int;
  mutable consecutive_read_errors : int;
}

let episode_gap spec rng =
  let base = max 1 spec.swap_full_every in
  base + Rng.int rng base

let make_spikes spec rng =
  (* Fix the whole spike script at creation so later decision draws don't
     perturb it. Spikes live in (0.1, 0.9) of workload progress and never
     start before the previous one ends. *)
  let rec build i at acc =
    if i >= spec.spike_count || at >= 0.85 then List.rev acc
    else
      let start = at +. (0.05 +. (Rng.float rng 1.0 *. 0.15)) in
      let stop = start +. 0.05 +. (Rng.float rng 1.0 *. 0.1) in
      if start >= 0.9 then List.rev acc
      else build (i + 1) stop ((start, min stop 0.95, spec.spike_pages) :: acc)
  in
  build 0 0.05 []

let create ~seed spec =
  let script_rng = Rng.create seed in
  let spikes = make_spikes spec script_rng in
  let rng = Rng.split script_rng in
  {
    seed;
    spec;
    rng;
    stats = fresh_stats ();
    spikes;
    episodes_left = spec.swap_full_episodes;
    writes_until_episode = episode_gap spec script_rng;
    in_episode = 0;
    consecutive_read_errors = 0;
  }

let seed t = t.seed
let spec t = t.spec
let stats t = t.stats
let spikes t = t.spikes

type notice = Eviction | Resident
type notice_decision = Deliver | Drop | Delay | Duplicate

let on_notice t which =
  let spec = t.spec in
  let drop =
    match which with
    | Eviction -> spec.drop_eviction
    | Resident -> spec.drop_resident
  in
  if drop = 0. && spec.delay_notice = 0. && spec.duplicate_notice = 0. then
    Deliver
  else
    let u = Rng.float t.rng 1.0 in
    if u < drop then (
      (match which with
      | Eviction -> t.stats.dropped_eviction <- t.stats.dropped_eviction + 1
      | Resident -> t.stats.dropped_resident <- t.stats.dropped_resident + 1);
      Drop)
    else if u < drop +. spec.delay_notice then (
      t.stats.delayed <- t.stats.delayed + 1;
      Delay)
    else if u < drop +. spec.delay_notice +. spec.duplicate_notice then (
      t.stats.duplicated <- t.stats.duplicated + 1;
      Duplicate)
    else Deliver

let reorder_pending t =
  t.spec.reorder > 0.
  && Rng.float t.rng 1.0 < t.spec.reorder
  &&
  (t.stats.reordered_flushes <- t.stats.reordered_flushes + 1;
   true)

type swap_decision = Proceed | Io_error | Device_full

let on_swap_write t =
  if t.in_episode > 0 then (
    t.in_episode <- t.in_episode - 1;
    t.stats.swap_full_rejections <- t.stats.swap_full_rejections + 1;
    Device_full)
  else if t.episodes_left > 0 && t.writes_until_episode <= 0 then (
    t.episodes_left <- t.episodes_left - 1;
    t.in_episode <- max 1 t.spec.swap_full_len - 1;
    t.writes_until_episode <- episode_gap t.spec t.rng;
    t.stats.swap_full_rejections <- t.stats.swap_full_rejections + 1;
    Device_full)
  else if
    t.spec.swap_write_error > 0. && Rng.float t.rng 1.0 < t.spec.swap_write_error
  then (
    t.stats.swap_write_errors <- t.stats.swap_write_errors + 1;
    Io_error)
  else (
    if t.episodes_left > 0 then
      t.writes_until_episode <- t.writes_until_episode - 1;
    Proceed)

let on_swap_read t =
  if
    t.spec.swap_read_error > 0.
    && t.consecutive_read_errors < 2
    && Rng.float t.rng 1.0 < t.spec.swap_read_error
  then (
    t.consecutive_read_errors <- t.consecutive_read_errors + 1;
    t.stats.swap_read_errors <- t.stats.swap_read_errors + 1;
    Io_error)
  else (
    t.consecutive_read_errors <- 0;
    Proceed)

let note_spike_applied t =
  t.stats.spikes_applied <- t.stats.spikes_applied + 1

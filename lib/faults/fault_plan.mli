(** Deterministic fault injection for the simulated kernel.

    The paper's bookmarking collector is built for an {e unreliable}
    channel: eviction notices are asynchronous signals that can arrive
    late, be dropped under load, or race with a running collection
    (§3.4), and the swap device can fill or fail transiently. A
    [Fault_plan] is a seeded schedule of such misbehaviours; the VMM and
    swap device consult it at each notification and I/O point, so the same
    seed and spec reproduce the exact same fault schedule on every run.

    The plan is pure policy: it only answers "what goes wrong now?" and
    counts what it injected. The mechanisms that degrade gracefully in
    response live in {!Vmsim.Vmm}, {!Vmsim.Swap} and the collectors. *)

type spec = {
  drop_eviction : float;  (** P(drop a pre-eviction notice) *)
  drop_resident : float;  (** P(drop a made-resident notice) *)
  delay_notice : float;  (** P(queue a notice for late delivery) *)
  duplicate_notice : float;  (** P(deliver a notice a second time, late) *)
  reorder : float;  (** P(a late-delivery flush runs in reverse order) *)
  swap_write_error : float;  (** P(transient I/O error on a swap write) *)
  swap_read_error : float;  (** P(transient I/O error on a swap read) *)
  swap_full_episodes : int;  (** scripted device-full episodes *)
  swap_full_len : int;  (** writes rejected per episode *)
  swap_full_every : int;  (** mean successful writes between episodes *)
  spike_count : int;  (** scripted memory-pressure spikes *)
  spike_pages : int;  (** frames pinned per spike *)
}

val none : spec
(** All probabilities zero, no episodes, no spikes. *)

val spec_of_string : string -> (spec, string) result
(** Parse a plan like ["drop-evict=0.3,swap-full=2,spikes=1"]. Keys:
    [drop-evict] (alias [drop]), [drop-resident], [delay], [dup],
    [reorder], [swap-write-err], [swap-read-err], [swap-full],
    [swap-full-len], [swap-full-every], [spikes], [spike-pages]. The
    string ["none"] is {!none}. *)

val spec_to_string : spec -> string
(** Round-trips through {!spec_of_string}; ["none"] when nothing is
    enabled. *)

type stats = {
  mutable dropped_eviction : int;
  mutable dropped_resident : int;
  mutable delayed : int;
  mutable duplicated : int;
  mutable reordered_flushes : int;
  mutable swap_write_errors : int;
  mutable swap_read_errors : int;
  mutable swap_full_rejections : int;
  mutable spikes_applied : int;
}

val injected_total : stats -> int
(** Sum of every injected-fault counter. *)

val pp_stats : Format.formatter -> stats -> unit

type t

val create : seed:int -> spec -> t

val seed : t -> int

val spec : t -> spec

val stats : t -> stats
(** Counters of faults actually injected so far. *)

(** {1 Decision points} *)

type notice = Eviction | Resident

type notice_decision = Deliver | Drop | Delay | Duplicate
(** [Duplicate] means: deliver now {e and} once more at the next flush. *)

val on_notice : t -> notice -> notice_decision

val reorder_pending : t -> bool
(** Should this flush of delayed notices run in reverse order? *)

type swap_decision = Proceed | Io_error | Device_full

val on_swap_write : t -> swap_decision

val on_swap_read : t -> swap_decision
(** Never [Device_full]. Read errors are guaranteed transient: the plan
    never injects more than two consecutive ones, so any bounded retry of
    three or more attempts makes progress. *)

val spikes : t -> (float * float * int) list
(** Scripted pressure spikes as [(from_progress, until_progress, pages)]
    triples, fixed at {!create} from the seed. *)

val note_spike_applied : t -> unit
(** Record that a scripted spike actually pinned memory. *)

(* Two-level sparse bit set.

   The flat word array became a liability once address spaces moved to
   page numbers near 2^30: a single [set] at a giant index would allocate
   gigabytes of zeros. Words are now grouped into fixed-size chunks hanging
   off a root array; a chunk is materialised the first time a bit inside it
   is set. Never-touched chunks all alias one shared all-zero sentinel, so
   reads below capacity stay branch-free array indexing and cost nothing in
   memory. The sentinel is never written: every mutation goes through
   [materialize] first ([clear] and [reset] on a sentinel chunk are no-ops
   by construction — there is nothing to clear). *)

let bits_per_word = 63
(* OCaml ints: use 63 usable bits per word on 64-bit platforms. *)

let chunk_words = 512
(* 512 words x 63 bits = 32256 bits (~4 KB) per materialised chunk. *)

let chunk_bits = chunk_words * bits_per_word

let zero_chunk : int array = Array.make chunk_words 0
(* Shared sentinel for never-touched chunks. MUST never be mutated. *)

type t = { mutable chunks : int array array }

let create ?(capacity = 0) () =
  { chunks = Array.make (max 1 ((capacity / chunk_bits) + 1)) zero_chunk }

(* Grow the root so chunk index [c] is addressable (still sentinel). *)
let ensure_root t c =
  if c >= Array.length t.chunks then begin
    let len' = max (c + 1) (2 * Array.length t.chunks) in
    let chunks' = Array.make len' zero_chunk in
    Array.blit t.chunks 0 chunks' 0 (Array.length t.chunks);
    t.chunks <- chunks'
  end

let materialize t c =
  ensure_root t c;
  let chunk = t.chunks.(c) in
  if chunk == zero_chunk then begin
    let fresh = Array.make chunk_words 0 in
    t.chunks.(c) <- fresh;
    fresh
  end
  else chunk

let set t i =
  if i < 0 then invalid_arg "Bitset.set: negative index";
  let w = i / bits_per_word in
  let chunk = materialize t (w / chunk_words) in
  let cw = w mod chunk_words in
  chunk.(cw) <- chunk.(cw) lor (1 lsl (i mod bits_per_word))

let clear t i =
  if i >= 0 then begin
    let w = i / bits_per_word in
    let c = w / chunk_words in
    if c < Array.length t.chunks then begin
      let chunk = t.chunks.(c) in
      if chunk != zero_chunk then begin
        let cw = w mod chunk_words in
        chunk.(cw) <- chunk.(cw) land lnot (1 lsl (i mod bits_per_word))
      end
    end
  end

let mem t i =
  i >= 0
  &&
  let w = i / bits_per_word in
  let c = w / chunk_words in
  c < Array.length t.chunks
  && t.chunks.(c).(w mod chunk_words) land (1 lsl (i mod bits_per_word)) <> 0

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x lsr 1) (acc + (x land 1)) in
  loop x 0

let cardinal t =
  let acc = ref 0 in
  Array.iter
    (fun chunk ->
      if chunk != zero_chunk then
        Array.iter (fun w -> acc := !acc + popcount w) chunk)
    t.chunks;
  !acc

let capacity t = Array.length t.chunks * chunk_bits

let reset t =
  (* Drop materialised chunks back to the sentinel, keeping root capacity. *)
  Array.fill t.chunks 0 (Array.length t.chunks) zero_chunk

let iter f t =
  Array.iteri
    (fun c chunk ->
      if chunk != zero_chunk then
        let base = c * chunk_words in
        Array.iteri
          (fun cw word ->
            if word <> 0 then
              for b = 0 to bits_per_word - 1 do
                if word land (1 lsl b) <> 0 then
                  f (((base + cw) * bits_per_word) + b)
              done)
          chunk)
    t.chunks

let first_set_from t i =
  let i = max i 0 in
  let nchunks = Array.length t.chunks in
  let word_at w = t.chunks.(w / chunk_words).(w mod chunk_words) in
  let rec scan_word w b =
    let c = w / chunk_words in
    if c >= nchunks then None
    else if t.chunks.(c) == zero_chunk then
      (* whole chunk empty: jump to the next chunk boundary *)
      scan_word ((c + 1) * chunk_words) 0
    else if b >= bits_per_word || word_at w = 0 then scan_word (w + 1) 0
    else if word_at w land (1 lsl b) <> 0 then Some ((w * bits_per_word) + b)
    else scan_word w (b + 1)
  in
  scan_word (i / bits_per_word) (i mod bits_per_word)

let word_peers t i =
  let w = i / bits_per_word in
  let c = w / chunk_words in
  if c >= Array.length t.chunks then []
  else begin
    let word = t.chunks.(c).(w mod chunk_words) in
    let acc = ref [] in
    for b = bits_per_word - 1 downto 0 do
      if word land (1 lsl b) <> 0 then acc := ((w * bits_per_word) + b) :: !acc
    done;
    !acc
  end

(** Growable sparse bit sets indexed by non-negative integers.

    Used for page residency maps (BC's bit array of §3.3.1), card tables and
    mark bitmaps. Storage is a two-level chunked array: memory is
    proportional to the number of ~32 Kbit chunks actually containing set
    bits, so giant sparse index spaces (page numbers near 2^30) are cheap.
    The set grows automatically on [set]; [mem] on an index beyond the
    current capacity is [false]. *)

type t

val create : ?capacity:int -> unit -> t

val set : t -> int -> unit

val clear : t -> int -> unit

val mem : t -> int -> bool

val cardinal : t -> int
(** Number of set bits (O(words)). *)

val capacity : t -> int
(** Current capacity in bits; indices below this are stored explicitly. *)

val reset : t -> unit
(** Clear every bit, keeping capacity. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over set bits in increasing order. *)

val first_set_from : t -> int -> int option
(** [first_set_from t i] is the smallest set index [>= i], if any. *)

val word_peers : t -> int -> int list
(** [word_peers t i] lists all set indices sharing [i]'s 64-bit word —
    BC's aggressive same-word discarding granularity (§3.4.3). *)

(** Whole-heap segregated-fit mark-sweep (Jikes RVM's MarkSweep plan).

    No nursery, no copying: every collection marks the full transitive
    closure and sweeps every heap page. Under memory pressure this is the
    paper's worst performer — marking and sweeping fault on every evicted
    heap page. *)

val max_cell : int
(** Largest cell handled by the mark-sweep space; bigger objects go to the
    large object space. *)

val factory : Gc_common.Collector.factory

val name : string

val doc : string

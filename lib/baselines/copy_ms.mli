(** CopyMS (Jikes RVM): bump allocation into a copy space, whole-heap
    collections that evacuate survivors into a mark-sweep mature space.

    "A variant of GenMS which performs only whole heap garbage
    collections" — no remembered sets, no nursery barrier. *)

val factory : Gc_common.Collector.factory

val name : string

val doc : string

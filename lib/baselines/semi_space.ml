module Vec = Repro_util.Vec
module Collector = Gc_common.Collector
module Charge = Gc_common.Charge
module Gc_stats = Gc_common.Gc_stats

let name = "SemiSpace"

let doc = "two-space copying"

let los_threshold = 8180

type t = {
  heap : Heapsim.Heap.t;
  config : Gc_common.Gc_config.t;
  stats : Gc_stats.t;
  spaces : Gc_common.Bump_space.t array;
  mutable to_idx : int;
  mutable ss_objects : Heapsim.Obj_id.t Vec.t;
  los : Gc_common.Large_object_space.t;
  mutable epoch : int;
}

let half_bytes t = t.config.Gc_common.Gc_config.heap_bytes / 2

let total_pages t =
  Gc_common.Bump_space.used_pages t.spaces.(0)
  + Gc_common.Bump_space.used_pages t.spaces.(1)
  + Gc_common.Large_object_space.pages_in_use t.los

let collect t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Full
    (fun () ->
      Charge.setup t.heap;
      t.epoch <- t.epoch + 1;
      let from_idx = t.to_idx in
      t.to_idx <- 1 - t.to_idx;
      let to_space = t.spaces.(t.to_idx) in
      Gc_common.Bump_space.reset to_space;
      let objects = Heapsim.Heap.objects t.heap in
      Gc_common.Tracer.run
        ~roots:(fun enqueue -> Heapsim.Heap.iter_roots t.heap enqueue)
        ~visit:(fun id ~enqueue ->
          if Heapsim.Object_table.scratch objects id <> t.epoch then begin
            Heapsim.Object_table.set_scratch objects id t.epoch;
            if Heapsim.Object_table.space objects id = Space_tag.nursery then begin
              let size = Heapsim.Object_table.size objects id in
              match
                Gc_common.Bump_space.alloc to_space ~bytes:size
                  ~limit_bytes:(half_bytes t)
              with
              | None ->
                  raise
                    (Collector.Heap_exhausted
                       (name ^ ": survivors overflow the copy reserve"))
              | Some addr ->
                  Trace_util.copy_object t.heap id ~new_addr:addr;
                  Heapsim.Object_table.iter_refs objects id (fun _ target ->
                      enqueue target)
            end
            else begin
              (* large object: mark for the LOS sweep *)
              Heapsim.Object_table.set_marked objects id true;
              Charge.object_visit t.heap;
              Heapsim.Heap.touch_object t.heap ~write:true id;
              Heapsim.Object_table.iter_refs objects id (fun _ target ->
                  enqueue target)
            end
          end);
      (* reap unreached copy-space objects *)
      let survivors = Vec.create () in
      Vec.iter
        (fun id ->
          if Heapsim.Object_table.scratch objects id = t.epoch then
            Vec.push survivors id
          else Heapsim.Heap.free_object t.heap id)
        t.ss_objects;
      t.ss_objects <- survivors;
      Gc_common.Bump_space.reset t.spaces.(from_idx);
      Gc_common.Large_object_space.sweep t.los;
      Gc_stats.note_heap_pages t.stats (total_pages t))

let alloc t ~size ~nrefs ~kind =
  Collector.charge_alloc t.heap ~bytes:size;
  Gc_stats.record_alloc t.stats ~bytes:size;
  let objects = Heapsim.Heap.objects t.heap in
  if size > los_threshold then begin
    let grow ~npages =
      total_pages t + npages
      <= Gc_common.Gc_config.heap_pages t.config
    in
    let addr =
      match Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow with
      | Some addr -> Some addr
      | None ->
          collect t;
          Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow
    in
    match addr with
    | None -> raise (Collector.Heap_exhausted (name ^ ": large object"))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.los;
        Gc_common.Large_object_space.note_object t.los id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end
  else begin
    let try_alloc () =
      Gc_common.Bump_space.alloc t.spaces.(t.to_idx) ~bytes:size
        ~limit_bytes:(half_bytes t)
    in
    let addr =
      match try_alloc () with
      | Some addr -> Some addr
      | None ->
          collect t;
          try_alloc ()
    in
    match addr with
    | None ->
        raise
          (Collector.Heap_exhausted
             (Printf.sprintf "%s: cannot allocate %d bytes" name size))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.nursery;
        Vec.push t.ss_objects id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end

let check_invariants t =
  let objects = Heapsim.Heap.objects t.heap in
  let to_space = t.spaces.(t.to_idx) in
  Vec.iter
    (fun id ->
      if Heapsim.Object_table.is_live objects id then
        assert
          (Gc_common.Bump_space.contains to_space
             (Heapsim.Object_table.addr objects id)))
    t.ss_objects

let factory config heap =
  let half_pages = max 1 (Gc_common.Gc_config.heap_pages config / 2) in
  let t =
    {
      heap;
      config;
      stats = Gc_stats.create ();
      spaces =
        [|
          Gc_common.Bump_space.create heap ~name:"ss0" ~npages:half_pages;
          Gc_common.Bump_space.create heap ~name:"ss1" ~npages:half_pages;
        |];
      to_idx = 0;
      ss_objects = Vec.create ();
      los = Gc_common.Large_object_space.create heap ~name:"los";
      epoch = 0;
    }
  in
  {
    Collector.name;
    heap;
    config;
    alloc = (fun ~size ~nrefs ~kind -> alloc t ~size ~nrefs ~kind);
    collect = (fun () -> collect t);
    stats = t.stats;
    footprint_pages = (fun () -> total_pages t);
    check_invariants = (fun () -> check_invariants t);
    tuning = Collector.no_tuning;
  }

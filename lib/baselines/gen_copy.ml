module Vec = Repro_util.Vec
module Collector = Gc_common.Collector
module Charge = Gc_common.Charge
module Gc_stats = Gc_common.Gc_stats

let name = "GenCopy"

let doc = "generational copying collector"

let fixed_nursery_name = "GenCopy-fixed"

let los_threshold = 8180

type t = {
  heap : Heapsim.Heap.t;
  config : Gc_common.Gc_config.t;
  stats : Gc_stats.t;
  nursery : Gc_common.Bump_space.t;
  nursery_objects : Heapsim.Obj_id.t Vec.t;
  mature : Gc_common.Bump_space.t array;
  mutable to_idx : int;
  mutable mature_objects : Heapsim.Obj_id.t Vec.t;
  los : Gc_common.Large_object_space.t;
  remset : Gc_common.Remset.t;
  mutable epoch : int;
}

let budget_bytes t = t.config.Gc_common.Gc_config.heap_bytes

let half_bytes t = budget_bytes t / 2

let mature_used t = Gc_common.Bump_space.used_bytes t.mature.(t.to_idx)

let total_pages t =
  Gc_common.Bump_space.used_pages t.nursery
  + Gc_common.Bump_space.used_pages t.mature.(0)
  + Gc_common.Bump_space.used_pages t.mature.(1)
  + Gc_common.Large_object_space.pages_in_use t.los

let nursery_limit t =
  (* the mature space and its copy reserve both count against the budget *)
  Gen_shared.nursery_limit t.config ~mature_bytes:(2 * mature_used t)

let in_young t id =
  Heapsim.Object_table.space (Heapsim.Heap.objects t.heap) id
  = Space_tag.nursery

let copy_into t space id =
  let objects = Heapsim.Heap.objects t.heap in
  let size = Heapsim.Object_table.size objects id in
  match Gc_common.Bump_space.alloc space ~bytes:size ~limit_bytes:(half_bytes t) with
  | None ->
      raise
        (Collector.Heap_exhausted (name ^ ": mature semispace overflow"))
  | Some addr ->
      Trace_util.copy_object t.heap id ~new_addr:addr;
      Heapsim.Object_table.set_space objects id Space_tag.mature

let minor t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Minor
    (fun () ->
      Charge.setup t.heap;
      t.epoch <- t.epoch + 1;
      let to_space = t.mature.(t.to_idx) in
      let survivors = Vec.create () in
      Gen_shared.minor_trace t.heap ~epoch:t.epoch
        ~in_young:(in_young t)
        ~copy_young:(fun id ->
          copy_into t to_space id;
          Vec.push survivors id)
        ~extra_roots:(fun enqueue ->
          Gen_shared.seed_remset t.heap t.remset enqueue);
      Gen_shared.reap_young t.heap t.nursery_objects ~epoch:t.epoch;
      Vec.iter (Vec.push t.mature_objects) survivors;
      Gc_common.Bump_space.reset t.nursery;
      Gc_stats.note_heap_pages t.stats (total_pages t))

let full t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Full
    (fun () ->
      Charge.setup t.heap;
      t.epoch <- t.epoch + 1;
      let objects = Heapsim.Heap.objects t.heap in
      let from_idx = t.to_idx in
      t.to_idx <- 1 - t.to_idx;
      let to_space = t.mature.(t.to_idx) in
      Gc_common.Bump_space.reset to_space;
      let new_mature = Vec.create () in
      Gen_shared.full_trace t.heap ~epoch:t.epoch
        ~in_young:(fun id ->
          in_young t id
          || Heapsim.Object_table.space objects id = Space_tag.mature)
        ~copy_young:(fun id ->
          copy_into t to_space id;
          Vec.push new_mature id)
        ~on_old:(fun id -> Heapsim.Object_table.set_marked objects id true);
      (* reap dead nursery and dead old-mature objects *)
      Gen_shared.reap_young t.heap t.nursery_objects ~epoch:t.epoch;
      Vec.iter
        (fun id ->
          if
            Heapsim.Object_table.is_live objects id
            && Heapsim.Object_table.scratch objects id <> t.epoch
          then Heapsim.Heap.free_object t.heap id)
        t.mature_objects;
      t.mature_objects <- new_mature;
      Gc_common.Bump_space.reset t.mature.(from_idx);
      Gc_common.Bump_space.reset t.nursery;
      Gc_common.Remset.clear t.remset;
      Gc_common.Large_object_space.sweep t.los;
      Gc_stats.note_heap_pages t.stats (total_pages t))

(* Survivors of a nursery collection land in the current mature
   semispace; when the reserve cannot take a whole nursery, do a full
   (flipping) collection first. *)
let mature_can_absorb t =
  half_bytes t - mature_used t
  >= Gc_common.Bump_space.used_bytes t.nursery

let alloc t ~size ~nrefs ~kind =
  Collector.charge_alloc t.heap ~bytes:size;
  Gc_stats.record_alloc t.stats ~bytes:size;
  let objects = Heapsim.Heap.objects t.heap in
  if size > los_threshold then begin
    let grow ~npages =
      total_pages t + npages <= Gc_common.Gc_config.heap_pages t.config
    in
    let addr =
      match Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow with
      | Some addr -> Some addr
      | None ->
          full t;
          Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow
    in
    match addr with
    | None -> raise (Collector.Heap_exhausted (name ^ ": large object"))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.los;
        Gc_common.Large_object_space.note_object t.los id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end
  else begin
    let try_alloc () =
      Gc_common.Bump_space.alloc t.nursery ~bytes:size
        ~limit_bytes:(nursery_limit t)
    in
    let addr =
      match try_alloc () with
      | Some addr -> Some addr
      | None -> (
          if mature_can_absorb t then minor t else full t;
          match try_alloc () with
          | Some addr -> Some addr
          | None ->
              full t;
              try_alloc ())
    in
    match addr with
    | None ->
        raise
          (Collector.Heap_exhausted
             (Printf.sprintf "%s: cannot allocate %d bytes" name size))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.nursery;
        Vec.push t.nursery_objects id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end

let check_invariants t =
  let objects = Heapsim.Heap.objects t.heap in
  Vec.iter
    (fun id ->
      if Heapsim.Object_table.is_live objects id then
        assert (
          Heapsim.Object_table.space objects id <> Space_tag.mature
          || Gc_common.Bump_space.contains
               t.mature.(t.to_idx)
               (Heapsim.Object_table.addr objects id)))
    t.mature_objects

let factory config heap =
  let pages = Gc_common.Gc_config.heap_pages config in
  let half_pages = max 1 (pages / 2) in
  let t =
    {
      heap;
      config;
      stats = Gc_stats.create ();
      nursery = Gc_common.Bump_space.create heap ~name:"nursery" ~npages:pages;
      nursery_objects = Vec.create ();
      mature =
        [|
          Gc_common.Bump_space.create heap ~name:"mature0" ~npages:half_pages;
          Gc_common.Bump_space.create heap ~name:"mature1" ~npages:half_pages;
        |];
      to_idx = 0;
      mature_objects = Vec.create ();
      los = Gc_common.Large_object_space.create heap ~name:"los";
      remset = Gc_common.Remset.create ();
      epoch = 0;
    }
  in
  Heapsim.Heap.set_write_barrier heap (fun ~src ~field ~old_target:_ ~target ->
      let objects = Heapsim.Heap.objects heap in
      if
        (not (Heapsim.Obj_id.is_null target))
        && Heapsim.Object_table.space objects target = Space_tag.nursery
        && Heapsim.Object_table.space objects src <> Space_tag.nursery
      then Gc_common.Remset.record t.remset ~src ~field);
  let display_name =
    match config.Gc_common.Gc_config.nursery with
    | Gc_common.Gc_config.Appel -> name
    | Gc_common.Gc_config.Fixed _ -> fixed_nursery_name
  in
  {
    Collector.name = display_name;
    heap;
    config;
    alloc = (fun ~size ~nrefs ~kind -> alloc t ~size ~nrefs ~kind);
    collect = (fun () -> full t);
    stats = t.stats;
    footprint_pages = (fun () -> total_pages t);
    check_invariants = (fun () -> check_invariants t);
    tuning = Collector.no_tuning;
  }

(** Two-space copying collection (Jikes RVM's SemiSpace plan).

    Half the heap is a copy reserve; every collection evacuates the live
    set into the other half with a Cheney-style trace. VM-oblivious: the
    from-space pages stay mapped and polluted until reused. *)

val factory : Gc_common.Collector.factory

val name : string

val doc : string

(** Appel-style generational collection with a copying mature space
    (Jikes RVM's GenCopy).

    Nursery survivors are evacuated into the current mature semispace;
    full collections flip the mature semispaces. Half the mature budget is
    always a copy reserve. *)

val factory : Gc_common.Collector.factory

val name : string

val doc : string

val fixed_nursery_name : string

module Vec = Repro_util.Vec
module Collector = Gc_common.Collector
module Charge = Gc_common.Charge
module Gc_stats = Gc_common.Gc_stats

let name = "CopyMS"

let doc = "copying nursery over a mark-sweep old space"

type t = {
  heap : Heapsim.Heap.t;
  config : Gc_common.Gc_config.t;
  stats : Gc_stats.t;
  copy_space : Gc_common.Bump_space.t;
  copy_objects : Heapsim.Obj_id.t Vec.t;
  ms : Gc_common.Ms_space.t;
  los : Gc_common.Large_object_space.t;
  mutable epoch : int;
}

let budget_pages t = Gc_common.Gc_config.heap_pages t.config

let min_copy_pages = Vmsim.Page.count_for_bytes Gen_shared.min_nursery_bytes

let mature_pages t =
  Gc_common.Ms_space.pages_acquired t.ms
  + Gc_common.Large_object_space.pages_in_use t.los

let total_pages t =
  mature_pages t + Gc_common.Bump_space.used_pages t.copy_space

let copy_limit t =
  Gen_shared.nursery_limit t.config
    ~mature_bytes:(mature_pages t * Vmsim.Page.size)

let in_young t id =
  Heapsim.Object_table.space (Heapsim.Heap.objects t.heap) id
  = Space_tag.nursery

let copy_young t id =
  let objects = Heapsim.Heap.objects t.heap in
  let size = Heapsim.Object_table.size objects id in
  let grow () = mature_pages t + 1 <= budget_pages t - min_copy_pages in
  match Gc_common.Ms_space.alloc t.ms ~bytes:size ~grow with
  | None ->
      raise
        (Collector.Heap_exhausted
           (name ^ ": mature space cannot absorb copy-space survivors"))
  | Some addr ->
      Trace_util.copy_object t.heap id ~new_addr:addr;
      Heapsim.Object_table.set_space objects id Space_tag.mature;
      (* survivors must outlive the sweep that follows the trace *)
      Heapsim.Object_table.set_marked objects id true

let collect t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Full
    (fun () ->
      Charge.setup t.heap;
      t.epoch <- t.epoch + 1;
      let objects = Heapsim.Heap.objects t.heap in
      Gen_shared.full_trace t.heap ~epoch:t.epoch
        ~in_young:(in_young t)
        ~copy_young:(copy_young t)
        ~on_old:(fun id -> Heapsim.Object_table.set_marked objects id true);
      Gen_shared.reap_young t.heap t.copy_objects ~epoch:t.epoch;
      Gc_common.Bump_space.reset t.copy_space;
      Gc_common.Ms_space.sweep t.ms;
      Gc_common.Large_object_space.sweep t.los;
      Gc_stats.note_heap_pages t.stats (total_pages t))

let alloc t ~size ~nrefs ~kind =
  Collector.charge_alloc t.heap ~bytes:size;
  Gc_stats.record_alloc t.stats ~bytes:size;
  let objects = Heapsim.Heap.objects t.heap in
  if size > Gc_common.Ms_space.max_cell t.ms then begin
    let grow ~npages = mature_pages t + npages <= budget_pages t in
    let addr =
      match Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow with
      | Some addr -> Some addr
      | None ->
          collect t;
          Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow
    in
    match addr with
    | None -> raise (Collector.Heap_exhausted (name ^ ": large object"))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.los;
        Gc_common.Large_object_space.note_object t.los id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end
  else begin
    let try_alloc () =
      Gc_common.Bump_space.alloc t.copy_space ~bytes:size
        ~limit_bytes:(copy_limit t)
    in
    let addr =
      match try_alloc () with
      | Some addr -> Some addr
      | None ->
          collect t;
          try_alloc ()
    in
    match addr with
    | None ->
        raise
          (Collector.Heap_exhausted
             (Printf.sprintf "%s: cannot allocate %d bytes" name size))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.nursery;
        Vec.push t.copy_objects id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end

let check_invariants t =
  let objects = Heapsim.Heap.objects t.heap in
  Vec.iter
    (fun id ->
      if Heapsim.Object_table.is_live objects id then
        assert (
          Heapsim.Object_table.space objects id <> Space_tag.nursery
          || Gc_common.Bump_space.contains t.copy_space
               (Heapsim.Object_table.addr objects id)))
    t.copy_objects

let factory config heap =
  let t =
    {
      heap;
      config;
      stats = Gc_stats.create ();
      copy_space =
        Gc_common.Bump_space.create heap ~name:"copy"
          ~npages:(Gc_common.Gc_config.heap_pages config);
      copy_objects = Vec.create ();
      ms = Gc_common.Ms_space.create heap ~name:"ms" ~max_cell:Mark_sweep.max_cell;
      los = Gc_common.Large_object_space.create heap ~name:"los";
      epoch = 0;
    }
  in
  {
    Collector.name;
    heap;
    config;
    alloc = (fun ~size ~nrefs ~kind -> alloc t ~size ~nrefs ~kind);
    collect = (fun () -> collect t);
    stats = t.stats;
    footprint_pages = (fun () -> total_pages t);
    check_invariants = (fun () -> check_invariants t);
    tuning = Collector.no_tuning;
  }

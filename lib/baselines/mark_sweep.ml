module Collector = Gc_common.Collector
module Charge = Gc_common.Charge
module Gc_stats = Gc_common.Gc_stats

let max_cell = 2048

let name = "MarkSweep"

let doc = "whole-heap mark-sweep"

type t = {
  heap : Heapsim.Heap.t;
  config : Gc_common.Gc_config.t;
  ms : Gc_common.Ms_space.t;
  los : Gc_common.Large_object_space.t;
  stats : Gc_stats.t;
}

let total_pages t =
  Gc_common.Ms_space.pages_acquired t.ms
  + Gc_common.Large_object_space.pages_in_use t.los

let collect t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Full
    (fun () ->
      Charge.setup t.heap;
      Trace_util.mark_all t.heap;
      Gc_common.Ms_space.sweep t.ms;
      Gc_common.Large_object_space.sweep t.los;
      Gc_stats.note_heap_pages t.stats (total_pages t))

let budget_pages t = Gc_common.Gc_config.heap_pages t.config

let alloc_addr t ~size =
  if size > max_cell then
    Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow:(fun ~npages ->
        total_pages t + npages <= budget_pages t)
  else
    Gc_common.Ms_space.alloc t.ms ~bytes:size ~grow:(fun () ->
        total_pages t + 1 <= budget_pages t)

let alloc t ~size ~nrefs ~kind =
  Collector.charge_alloc t.heap ~bytes:size;
  (* free-list allocation costs more than a bump pointer *)
  Vmsim.Clock.advance
    (Heapsim.Heap.clock t.heap)
    (Heapsim.Heap.costs t.heap).Vmsim.Costs.freelist_alloc_extra_ns;
  Gc_stats.record_alloc t.stats ~bytes:size;
  let addr =
    match alloc_addr t ~size with
    | Some addr -> addr
    | None -> (
        collect t;
        match alloc_addr t ~size with
        | Some addr -> addr
        | None ->
            raise
              (Collector.Heap_exhausted
                 (Printf.sprintf "%s: cannot allocate %d bytes in %d-byte heap"
                    name size t.config.Gc_common.Gc_config.heap_bytes)))
  in
  let objects = Heapsim.Heap.objects t.heap in
  let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
  Heapsim.Heap.place t.heap id ~addr;
  let space =
    if size > max_cell then Space_tag.los else Space_tag.mature
  in
  Heapsim.Object_table.set_space objects id space;
  if space = Space_tag.los then
    Gc_common.Large_object_space.note_object t.los id;
  Heapsim.Heap.touch_object t.heap ~write:true id;
  id

let check_invariants t =
  let objects = Heapsim.Heap.objects t.heap in
  Heapsim.Object_table.iter_live objects (fun id ->
      assert (not (Heapsim.Object_table.marked objects id));
      assert (Heapsim.Object_table.addr objects id >= 0))

let factory config heap =
  let t =
    {
      heap;
      config;
      ms = Gc_common.Ms_space.create heap ~name:"ms" ~max_cell;
      los = Gc_common.Large_object_space.create heap ~name:"los";
      stats = Gc_stats.create ();
    }
  in
  {
    Collector.name;
    heap;
    config;
    alloc = (fun ~size ~nrefs ~kind -> alloc t ~size ~nrefs ~kind);
    collect = (fun () -> collect t);
    stats = t.stats;
    footprint_pages = (fun () -> total_pages t);
    check_invariants = (fun () -> check_invariants t);
    tuning = Collector.no_tuning;
  }

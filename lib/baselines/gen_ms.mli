(** Appel-style generational collection with a mark-sweep mature space
    (Jikes RVM's GenMS) — the paper's high-throughput baseline.

    A bump-pointer nursery absorbs allocation; nursery collections
    evacuate survivors into segregated-fit cells via a remembered set.
    Full-heap collections mark everything and sweep every mature page,
    which is what makes GenMS page catastrophically under memory
    pressure. *)

val factory : Gc_common.Collector.factory

val name : string

val doc : string

val fixed_nursery_name : string
(** Display name used for the fixed-size-nursery variant (Figure 5(b)). *)

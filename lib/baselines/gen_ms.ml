module Vec = Repro_util.Vec
module Collector = Gc_common.Collector
module Charge = Gc_common.Charge
module Gc_stats = Gc_common.Gc_stats

let name = "GenMS"

let doc = "generational mark-sweep, Appel-style flexible nursery"

let fixed_nursery_name = "GenMS-fixed"

type t = {
  heap : Heapsim.Heap.t;
  config : Gc_common.Gc_config.t;
  stats : Gc_stats.t;
  nursery : Gc_common.Bump_space.t;
  nursery_objects : Heapsim.Obj_id.t Vec.t;
  ms : Gc_common.Ms_space.t;
  los : Gc_common.Large_object_space.t;
  remset : Gc_common.Remset.t;
  mutable epoch : int;
}

let budget_pages t = Gc_common.Gc_config.heap_pages t.config

let min_nursery_pages = Vmsim.Page.count_for_bytes Gen_shared.min_nursery_bytes

let mature_pages t =
  Gc_common.Ms_space.pages_acquired t.ms
  + Gc_common.Large_object_space.pages_in_use t.los

let total_pages t =
  mature_pages t + Gc_common.Bump_space.used_pages t.nursery

let grow_ms t () = mature_pages t + 1 <= budget_pages t - min_nursery_pages

let nursery_limit t =
  Gen_shared.nursery_limit t.config
    ~mature_bytes:(mature_pages t * Vmsim.Page.size)

let in_young t id =
  Heapsim.Object_table.space (Heapsim.Heap.objects t.heap) id
  = Space_tag.nursery

(* Evacuate a (first-visited) nursery object into a mature cell. *)
let copy_young t id =
  let objects = Heapsim.Heap.objects t.heap in
  let size = Heapsim.Object_table.size objects id in
  match Gc_common.Ms_space.alloc t.ms ~bytes:size ~grow:(grow_ms t) with
  | None ->
      raise
        (Collector.Heap_exhausted
           (name ^ ": mature space cannot absorb nursery survivors"))
  | Some addr ->
      Trace_util.copy_object t.heap id ~new_addr:addr;
      Heapsim.Object_table.set_space objects id Space_tag.mature

let minor t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Minor
    (fun () ->
      Charge.setup t.heap;
      t.epoch <- t.epoch + 1;
      Gen_shared.minor_trace t.heap ~epoch:t.epoch
        ~in_young:(in_young t)
        ~copy_young:(copy_young t)
        ~extra_roots:(fun enqueue ->
          Gen_shared.seed_remset t.heap t.remset enqueue);
      Gen_shared.reap_young t.heap t.nursery_objects ~epoch:t.epoch;
      Gc_common.Bump_space.reset t.nursery;
      Gc_stats.note_heap_pages t.stats (total_pages t))

let full t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Full
    (fun () ->
      Charge.setup t.heap;
      t.epoch <- t.epoch + 1;
      let objects = Heapsim.Heap.objects t.heap in
      Gen_shared.full_trace t.heap ~epoch:t.epoch
        ~in_young:(in_young t)
        ~copy_young:(fun id ->
          copy_young t id;
          (* survivors must outlive the coming sweep *)
          Heapsim.Object_table.set_marked objects id true)
        ~on_old:(fun id -> Heapsim.Object_table.set_marked objects id true);
      Gen_shared.reap_young t.heap t.nursery_objects ~epoch:t.epoch;
      Gc_common.Bump_space.reset t.nursery;
      Gc_common.Remset.clear t.remset;
      Gc_common.Ms_space.sweep t.ms;
      Gc_common.Large_object_space.sweep t.los;
      Gc_stats.note_heap_pages t.stats (total_pages t))

(* The mature space must be able to absorb a whole nursery of survivors;
   when it cannot, collect the whole heap first. *)
let mature_can_absorb t =
  let growable_bytes =
    max 0 (budget_pages t - min_nursery_pages - mature_pages t)
    * Vmsim.Page.size
  in
  Gc_common.Ms_space.free_bytes t.ms + growable_bytes
  >= Gc_common.Bump_space.used_bytes t.nursery

let alloc t ~size ~nrefs ~kind =
  Collector.charge_alloc t.heap ~bytes:size;
  Gc_stats.record_alloc t.stats ~bytes:size;
  let objects = Heapsim.Heap.objects t.heap in
  if size > Gc_common.Ms_space.max_cell t.ms then begin
    let grow ~npages = mature_pages t + npages <= budget_pages t in
    let addr =
      match Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow with
      | Some addr -> Some addr
      | None ->
          full t;
          Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow
    in
    match addr with
    | None -> raise (Collector.Heap_exhausted (name ^ ": large object"))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.los;
        Gc_common.Large_object_space.note_object t.los id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end
  else begin
    let try_alloc () =
      Gc_common.Bump_space.alloc t.nursery ~bytes:size
        ~limit_bytes:(nursery_limit t)
    in
    let addr =
      match try_alloc () with
      | Some addr -> Some addr
      | None -> (
          if mature_can_absorb t then minor t else full t;
          match try_alloc () with
          | Some addr -> Some addr
          | None ->
              full t;
              try_alloc ())
    in
    match addr with
    | None ->
        raise
          (Collector.Heap_exhausted
             (Printf.sprintf "%s: cannot allocate %d bytes" name size))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.nursery;
        Vec.push t.nursery_objects id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end

let check_invariants t =
  let objects = Heapsim.Heap.objects t.heap in
  Vec.iter
    (fun id ->
      if Heapsim.Object_table.is_live objects id then
        assert (
          Heapsim.Object_table.space objects id <> Space_tag.nursery
          || Gc_common.Bump_space.contains t.nursery
               (Heapsim.Object_table.addr objects id)))
    t.nursery_objects

(* Cooper et al. (1992): tell the VM manager about empty pages so they
   can leave memory without writeback. Candidates are the nursery pages
   above the bump pointer (reset after each collection) and wholly empty
   mark-sweep pages; unlike BC there is no bookmarking, no victim
   processing and no footprint target. *)
let register_cooperative t =
  let heap = t.heap in
  let vmm = Heapsim.Heap.vmm heap in
  let page_map = Heapsim.Heap.page_map heap in
  let discardable page =
    Heapsim.Page_map.count_on page_map page = 0
    && Vmsim.Vmm.is_resident vmm page
    && (let first = Gc_common.Bump_space.first_page t.nursery in
        (page >= first
        && page < first + Gc_common.Bump_space.npages t.nursery)
        || Gc_common.Ms_space.owns_page t.ms page)
  in
  let find_discardable () =
    let found = ref None in
    let first = Gc_common.Bump_space.first_page t.nursery in
    let used =
      Vmsim.Page.count_for_bytes (Gc_common.Bump_space.used_bytes t.nursery)
    in
    (* nursery pages between the bump pointer and the high-water mark *)
    let page = ref (first + used) in
    while !found = None && !page < first + Gc_common.Bump_space.npages t.nursery
    do
      if discardable !page then found := Some !page;
      incr page
    done;
    if !found = None then
      Gc_common.Ms_space.iter_pages t.ms (fun p ->
          if !found = None && discardable p then found := Some p);
    !found
  in
  Vmsim.Process.register (Heapsim.Heap.process heap)
    {
      Vmsim.Process.on_eviction_notice =
        (fun victim ->
          if discardable victim then Vmsim.Vmm.madvise_dontneed vmm victim
          else
            match find_discardable () with
            | Some page -> Vmsim.Vmm.madvise_dontneed vmm page
            | None -> ());
      on_resident = (fun _ -> ());
      on_protection_fault = (fun _ -> ());
    }

let factory config heap =
  let t =
    {
      heap;
      config;
      stats = Gc_stats.create ();
      nursery =
        Gc_common.Bump_space.create heap ~name:"nursery"
          ~npages:(Gc_common.Gc_config.heap_pages config);
      nursery_objects = Vec.create ();
      ms = Gc_common.Ms_space.create heap ~name:"ms" ~max_cell:Mark_sweep.max_cell;
      los = Gc_common.Large_object_space.create heap ~name:"los";
      remset = Gc_common.Remset.create ();
      epoch = 0;
    }
  in
  Heapsim.Heap.set_write_barrier heap (fun ~src ~field ~old_target:_ ~target ->
      let objects = Heapsim.Heap.objects heap in
      if
        (not (Heapsim.Obj_id.is_null target))
        && Heapsim.Object_table.space objects target = Space_tag.nursery
        && Heapsim.Object_table.space objects src <> Space_tag.nursery
      then Gc_common.Remset.record t.remset ~src ~field);
  if config.Gc_common.Gc_config.cooperative_discard then
    register_cooperative t;
  let display_name =
    if config.Gc_common.Gc_config.cooperative_discard then "GenMS-coop"
    else
      match config.Gc_common.Gc_config.nursery with
      | Gc_common.Gc_config.Appel -> name
      | Gc_common.Gc_config.Fixed _ -> fixed_nursery_name
  in
  {
    Collector.name = display_name;
    heap;
    config;
    alloc = (fun ~size ~nrefs ~kind -> alloc t ~size ~nrefs ~kind);
    collect = (fun () -> full t);
    stats = t.stats;
    footprint_pages = (fun () -> total_pages t);
    check_invariants = (fun () -> check_invariants t);
    tuning = Collector.no_tuning;
  }

(* Controller registry — policies are named and instantiated exactly
   like collectors (see Gc_common.Collector / Harness.Registry): entries
   are built from the implementation modules themselves, and plans refer
   to them by name. *)

type info = {
  name : string;
  doc : string;
  create : Controller.config -> Controller.t;
}

let entry (module P : Controller.S) =
  { name = P.name; doc = P.doc; create = P.create }

let all =
  [
    entry (module Policies.Static);
    entry (module Policies.Static_tight);
    entry (module Policies.Threshold);
    entry (module Policies.Pi);
  ]

let names () = List.map (fun i -> i.name) all

let find_opt name = List.find_opt (fun i -> i.name = name) all

let find name =
  match find_opt name with
  | Some i -> i
  | None ->
      failwith
        (Printf.sprintf "unknown controller %S (expected one of: %s)" name
           (String.concat ", " (names ())))

let instantiate ~name config = (find name).create config

(* Online memory controller core.

   A controller instance consumes one windowed telemetry [sample] per
   decision window and returns a [decision]: a degradation [state] for
   observability plus an [actuation] the harness applies through the
   collector's tuning interface (Gc_common.Collector.tuning). The
   controller itself never touches the simulation — it is a pure
   decision function over window diffs, so it costs no virtual time and
   a controller whose actuations are all defaults leaves the run
   bit-identical.

   Every decision is appended to an internal text trace; [summary]
   digests it, which is what the determinism tests pin: same seed +
   plan digest => byte-identical decision trace. *)

(* Staged degradation. Severity is the code order: downgrades walk one
   level per quiet window (after the dwell), upgrades jump directly. *)
type state = Normal | Pressure | Emergency | Failsafe

let state_code = function
  | Normal -> 0
  | Pressure -> 1
  | Emergency -> 2
  | Failsafe -> 3

let state_of_code = function
  | 0 -> Normal
  | 1 -> Pressure
  | 2 -> Emergency
  | 3 -> Failsafe
  | n -> invalid_arg (Printf.sprintf "Control.Controller.state_of_code: %d" n)

let state_name = function
  | Normal -> "normal"
  | Pressure -> "pressure"
  | Emergency -> "emergency"
  | Failsafe -> "failsafe"

let all_states = [ Normal; Pressure; Emergency; Failsafe ]

(* One decision window's sensor readings. Counters are window deltas
   (from Gc_stats/Vm_stats snapshot diffs); [resident_pages] and
   [free_frames] are gauges read at the window's end. *)
type sample = {
  window_ns : int;
  major_faults : int;
  minor_faults : int;
  evictions : int;
  notices : int;
  discards : int;
  resident_pages : int;
  free_frames : int;
  heap_pages : int;
  allocated_bytes : int;
  p99_pause_ms : float;
  failsafes : int;
}

(* What to do with the collector's footprint target this window. [Keep]
   leaves whatever the collector's own notice handling set — the only
   value under which a controller cannot perturb BC's §3.3.3 resizing. *)
type target = Keep | Clear | Cap of int

type actuation = {
  target : target;
  notice_batch : int;
  relinquish_extra : int;
  force_failsafe : bool;
}

let inert_actuation =
  { target = Keep; notice_batch = 1; relinquish_extra = 0;
    force_failsafe = false }

type decision = { state : state; act : actuation }

type config = { heap_pages : int; frames : int; window_ns : int }

type summary = {
  policy : string;
  decisions : int;
  transitions : int;
  final_state : state;
  peak_state : state;
  forced_failsafes : int;
  trace_digest : string;
}

type t = {
  policy : string;
  decide_raw : sample -> decision;
  trace : Buffer.t;
  mutable ndecisions : int;
  mutable ntransitions : int;
  mutable cur_state : state;
  mutable peak : state;
  mutable forced : int;
}

let make ~policy ~decide =
  {
    policy;
    decide_raw = decide;
    trace = Buffer.create 512;
    ndecisions = 0;
    ntransitions = 0;
    cur_state = Normal;
    peak = Normal;
    forced = 0;
  }

let policy t = t.policy

let state t = t.cur_state

let target_text = function
  | Keep -> "keep"
  | Clear -> "clear"
  | Cap n -> Printf.sprintf "cap:%d" n

(* The wrapper every consumer calls: runs the policy, books transition /
   peak / forced-failsafe counters and appends one deterministic trace
   line per window. *)
let decide t sample =
  let d = t.decide_raw sample in
  if d.state <> t.cur_state then t.ntransitions <- t.ntransitions + 1;
  if state_code d.state > state_code t.peak then t.peak <- d.state;
  if d.act.force_failsafe then t.forced <- t.forced + 1;
  t.cur_state <- d.state;
  Buffer.add_string t.trace
    (Printf.sprintf
       "w%d %s tgt=%s batch=%d rel=%d ff=%b | mf=%d ev=%d not=%d res=%d \
        free=%d p99=%.3f fs=%d\n"
       t.ndecisions (state_name d.state) (target_text d.act.target)
       d.act.notice_batch d.act.relinquish_extra d.act.force_failsafe
       sample.major_faults sample.evictions sample.notices
       sample.resident_pages sample.free_frames sample.p99_pause_ms
       sample.failsafes);
  t.ndecisions <- t.ndecisions + 1;
  d

let trace_text t = Buffer.contents t.trace

let summary t =
  {
    policy = t.policy;
    decisions = t.ndecisions;
    transitions = t.ntransitions;
    final_state = t.cur_state;
    peak_state = t.peak;
    forced_failsafes = t.forced;
    trace_digest = Digest.to_hex (Digest.string (Buffer.contents t.trace));
  }

let pp_summary ppf (s : summary) =
  Format.fprintf ppf
    "control: %s decisions=%d transitions=%d peak=%s final=%s \
     forced-failsafes=%d"
    s.policy s.decisions s.transitions (state_name s.peak_state)
    (state_name s.final_state) s.forced_failsafes

(* The interface a controller policy module satisfies; registered like
   collectors (see Control.Registry). *)
module type S = sig
  val name : string

  val doc : string

  val create : config -> t
end

(* ------------------------------------------------------------------ *)
(* Shared degradation state machine                                     *)

(* The Normal -> Pressure -> Emergency -> Failsafe ladder with hysteresis
   and minimum dwell, shared by every adaptive policy (they differ in
   what they *actuate*, not in how they classify pressure):

   - Upward transitions are immediate — a fault storm must not wait out
     a dwell timer. Escalation signals: any major fault or a notice
     burst (Pressure), a heavy fault window (Emergency).
   - Downward transitions require [dwell] consecutive quiet windows
     (hysteresis: the quiet bar is stricter than the escalation bar, so
     the machine cannot flap on a boundary signal), then step down one
     level per window.
   - The watchdog counts no-progress windows — fault count rising (or
     held) while the residency gauge is flat — and, from Emergency,
     forces one fail-safe collection and enters Failsafe rather than
     letting the process thrash. Recovery leaves Failsafe through the
     normal quiet path (to Pressure, then Normal). *)
module Fsm = struct
  type fsm = {
    frames : int;
    dwell : int;
    mutable st : state;
    mutable quiet_streak : int;
    mutable rising_streak : int;
    mutable prev_faults : int;
    mutable prev_resident : int;
  }

  let pressure_faults = 1
  let emergency_faults = 8
  let pressure_notices = 4
  let low_free_div = 8 (* free < frames/8 counts as a pressure signal *)
  let default_dwell = 3
  let watchdog_windows = 3

  let create ?(dwell = default_dwell) ~frames () =
    {
      frames;
      dwell;
      st = Normal;
      quiet_streak = 0;
      rising_streak = 0;
      prev_faults = 0;
      prev_resident = -1;
    }

  (* Returns the new state and whether the watchdog fired this window. *)
  let step f (s : sample) =
    let pressure_signal =
      s.major_faults >= pressure_faults
      || s.notices >= pressure_notices
      || s.free_frames * low_free_div < f.frames
    in
    let emergency_signal = s.major_faults >= emergency_faults in
    (* no-progress detector: fault rate strictly rising, residency flat.
       A steady (non-escalating) fault plateau is Emergency's job, not
       the watchdog's — forcing a whole-heap fail-safe there would add
       the very faults it is trying to stop. *)
    let resident_flat =
      f.prev_resident >= 0
      && abs (s.resident_pages - f.prev_resident) * 32
         <= max 32 s.resident_pages
    in
    if s.major_faults > 0 && s.major_faults > f.prev_faults && resident_flat
    then f.rising_streak <- f.rising_streak + 1
    else f.rising_streak <- 0;
    f.prev_faults <- s.major_faults;
    f.prev_resident <- s.resident_pages;
    if pressure_signal then f.quiet_streak <- 0
    else f.quiet_streak <- f.quiet_streak + 1;
    let forced = ref false in
    (match f.st with
    | Normal ->
        if emergency_signal then f.st <- Emergency
        else if pressure_signal then f.st <- Pressure
    | Pressure ->
        if emergency_signal then f.st <- Emergency
        else if f.quiet_streak >= f.dwell then f.st <- Normal
    | Emergency ->
        if f.rising_streak >= watchdog_windows then begin
          (* thrashing without progress: force the §3.5 fail-safe *)
          forced := true;
          f.rising_streak <- 0;
          f.st <- Failsafe
        end
        else if f.quiet_streak >= f.dwell then f.st <- Pressure
    | Failsafe ->
        (* the forced collection rebuilt liveness; leave through the
           quiet path once the storm subsides *)
        if f.quiet_streak >= f.dwell then f.st <- Pressure);
    (f.st, !forced)
end

(* The built-in controller policies.

   Two statics (the baselines every adaptive policy is pitted against)
   and two adaptives sharing the Controller.Fsm degradation ladder but
   differing in how they drive the footprint target: a pure
   threshold+hysteresis table, and a proportional-integral loop on the
   fault-rate error. *)

open Controller

let floor_pages = 64

(* ------------------------------------------------------------------ *)

(* Static baseline: observes and labels every window Normal, actuates
   nothing — the collector behaves exactly as with no controller, but
   the decision trace and telemetry events are still emitted. The
   denominator of every adaptive-vs-static verdict. *)
module Static = struct
  let name = "static"

  let doc = "inert baseline: observe only, never actuate"

  let create (_ : config) =
    make ~policy:name ~decide:(fun _ ->
        { state = Normal; act = inert_actuation })
end

(* Static-aggressive: one fixed tight configuration applied every
   window, whatever the weather — batched notice handling, proactive
   relinquish, and a footprint cap at 3/4 of physical memory. Wins under
   sustained pressure, pays for it everywhere else; the adaptive
   policies exist to get the former without the latter. *)
module Static_tight = struct
  let name = "static-tight"

  let doc = "fixed aggressive config: batch=4 relinquish=2, cap at 3/4 frames"

  let create (cfg : config) =
    let cap = max floor_pages (min cfg.heap_pages (cfg.frames * 3 / 4)) in
    make ~policy:name ~decide:(fun _ ->
        {
          state = Normal;
          act =
            {
              target = Cap cap;
              notice_batch = 4;
              relinquish_extra = 2;
              force_failsafe = false;
            };
        })
end

(* Per-state actuation table shared by the adaptive policies: how hard
   to reclaim at each degradation stage. The footprint cap leads and the
   cooperative knobs (batched discards, proactive bookmark-and-evict)
   trail: capping early — on the low-free-frames signal, before any
   faulting — keeps the footprint inside physical memory so the VMM
   never has to evict behind the collector's back, whereas batching and
   extra relinquish surrender pages that must be faulted back at 5 ms
   apiece, which only pays once the machine is already deep in a storm.
   `bench control` shows both halves: the staged table beats every
   static on the spiked steady-pressure storm, while static-tight —
   the same knobs applied unconditionally — death-spirals when a large
   transient spike lands on its permanently surrendered pages. *)
let staged_batch = function
  | Normal -> 1
  | Pressure -> 1
  | Emergency -> 1
  | Failsafe -> 4

let staged_relinquish = function
  | Normal -> 0
  | Pressure -> 0
  | Emergency -> 0
  | Failsafe -> 2

(* Threshold + hysteresis: the Fsm classifies the window, a fixed table
   actuates it. The footprint cap is deliberately mild — a fraction of
   physical memory, never of the residency gauge: under paging the gauge
   reads the squeezed residency, and capping below the working set just
   converts pressure into extra full collections. Returning to Normal
   clears the controller's cap exactly once. *)
module Threshold = struct
  let name = "threshold"

  let doc = "staged threshold+hysteresis table over the degradation ladder"

  let create (cfg : config) =
    let fsm = Fsm.create ~frames:cfg.frames () in
    let prev = ref Normal in
    let frame_cap num den =
      Cap (max floor_pages (min cfg.heap_pages (cfg.frames * num / den)))
    in
    make ~policy:name ~decide:(fun s ->
        let st, forced = Fsm.step fsm s in
        let target =
          match st with
          | Normal -> if !prev <> Normal then Clear else Keep
          | Pressure | Emergency -> frame_cap 3 4
          | Failsafe -> frame_cap 5 8
        in
        prev := st;
        {
          state = st;
          act =
            {
              target;
              notice_batch = staged_batch st;
              relinquish_extra = staged_relinquish st;
              force_failsafe = forced;
            };
        })
end

(* Proportional-integral on the fault-rate error, modulating trim below
   a staged base cap. Entering any degraded state anchors the cap at 3/4
   of physical memory (the early, pre-fault actuation the ablation
   singled out — a fault-rate error signal alone cannot act before the
   first fault); the PI loop then deepens the trim smoothly toward the
   Failsafe floor of 5/8 while the fault rate exceeds the setpoint, and
   quiet windows bleed the integral back. Returning to Normal clears
   the cap. The Fsm still labels the window and runs the watchdog. *)
module Pi = struct
  let name = "pi"

  let doc = "PI loop on fault-rate error, trimming below a staged base cap"

  let setpoint = 0.5 (* tolerated major faults per window *)
  let kp = 4.0 (* trim pages per fault of proportional error *)
  let ki = 2.0 (* trim pages per fault-window of accumulated error *)

  let create (cfg : config) =
    let fsm = Fsm.create ~frames:cfg.frames () in
    let base_cap = max floor_pages (min cfg.heap_pages (cfg.frames * 3 / 4)) in
    (* at full windup the cap bottoms out at 5/8 of physical memory —
       the Failsafe stage's cap, approached smoothly instead of stepped *)
    let max_trim = max 0 ((cfg.frames * 3 / 4) - (cfg.frames * 5 / 8)) in
    let integral_max = float_of_int max_trim /. ki in
    let integral = ref 0.0 in
    let prev = ref Normal in
    make ~policy:name ~decide:(fun s ->
        let st, forced = Fsm.step fsm s in
        let err = float_of_int s.major_faults -. setpoint in
        integral := max 0.0 (min integral_max (!integral +. err));
        let u = (kp *. err) +. (ki *. !integral) in
        let trim = max 0 (min max_trim (int_of_float u)) in
        let target =
          match st with
          | Normal -> if !prev <> Normal then Clear else Keep
          | Pressure | Emergency | Failsafe ->
              Cap (max floor_pages (base_cap - trim))
        in
        prev := st;
        {
          state = st;
          act =
            {
              target;
              notice_batch = staged_batch st;
              relinquish_extra = staged_relinquish st;
              force_failsafe = forced;
            };
        })
end

(* Flag bits packed in a per-object status byte. *)
let flag_live = 1

let flag_marked = 2

let flag_bookmarked = 4

let flag_array = 8

type t = {
  mutable size : int array;
  mutable addr : int array;
  mutable refs : int array array;
  mutable flags : Bytes.t;
  mutable space : int array;
  mutable scratch : int array;
  mutable page_slot : int array;
  mutable next_id : int;
  free_ids : int Repro_util.Vec.t;
  mutable live : int;
  mutable live_bytes : int;
}

let empty_refs = [||]

let create () =
  {
    size = Array.make 1024 0;
    addr = Array.make 1024 (-1);
    refs = Array.make 1024 empty_refs;
    flags = Bytes.make 1024 '\000';
    space = Array.make 1024 0;
    scratch = Array.make 1024 (-1);
    page_slot = Array.make 1024 (-1);
    next_id = 0;
    free_ids = Repro_util.Vec.create ();
    live = 0;
    live_bytes = 0;
  }

let grow t =
  let cap = Array.length t.size in
  let cap' = cap * 2 in
  let grow_arr a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.size <- grow_arr t.size 0;
  t.addr <- grow_arr t.addr (-1);
  t.refs <- grow_arr t.refs empty_refs;
  t.space <- grow_arr t.space 0;
  t.scratch <- grow_arr t.scratch (-1);
  t.page_slot <- grow_arr t.page_slot (-1);
  let flags' = Bytes.make cap' '\000' in
  Bytes.blit t.flags 0 flags' 0 cap;
  t.flags <- flags'

let get_flags t id = Char.code (Bytes.get t.flags id)

let set_flags t id v = Bytes.set t.flags id (Char.chr v)

let is_live t id =
  id >= 0 && id < t.next_id && get_flags t id land flag_live <> 0

let check t id =
  if not (is_live t id) then
    invalid_arg (Printf.sprintf "Object_table: dead or invalid object #%d" id)

let alloc t ~size ~nrefs ~kind =
  if size <= 0 then invalid_arg "Object_table.alloc: size must be positive";
  if nrefs < 0 then invalid_arg "Object_table.alloc: negative nrefs";
  let id =
    if Repro_util.Vec.is_empty t.free_ids then begin
      if t.next_id >= Array.length t.size then grow t;
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      id
    end
    else Repro_util.Vec.pop t.free_ids
  in
  t.size.(id) <- size;
  t.addr.(id) <- -1;
  t.refs.(id) <- (if nrefs = 0 then empty_refs else Array.make nrefs Obj_id.null);
  t.space.(id) <- 0;
  t.scratch.(id) <- -1;
  t.page_slot.(id) <- -1;
  set_flags t id (flag_live lor match kind with `Array -> flag_array | `Scalar -> 0);
  t.live <- t.live + 1;
  t.live_bytes <- t.live_bytes + size;
  id

let free t id =
  check t id;
  t.live <- t.live - 1;
  t.live_bytes <- t.live_bytes - t.size.(id);
  t.refs.(id) <- empty_refs;
  set_flags t id 0;
  Repro_util.Vec.push t.free_ids id

let size t id =
  check t id;
  t.size.(id)

let kind t id =
  check t id;
  if get_flags t id land flag_array <> 0 then `Array else `Scalar

let addr t id =
  check t id;
  t.addr.(id)

let set_addr t id a =
  check t id;
  t.addr.(id) <- a

let nrefs t id =
  check t id;
  Array.length t.refs.(id)

let get_ref t id field =
  check t id;
  t.refs.(id).(field)

let set_ref t id field target =
  check t id;
  t.refs.(id).(field) <- target

let iter_refs t id f =
  check t id;
  let refs = t.refs.(id) in
  for field = 0 to Array.length refs - 1 do
    if not (Obj_id.is_null refs.(field)) then f field refs.(field)
  done

let get_bit t id bit =
  check t id;
  get_flags t id land bit <> 0

let set_bit t id bit v =
  check t id;
  let f = get_flags t id in
  set_flags t id (if v then f lor bit else f land lnot bit)

let marked t id = get_bit t id flag_marked

let set_marked t id v = set_bit t id flag_marked v

let bookmarked t id = get_bit t id flag_bookmarked

let set_bookmarked t id v = set_bit t id flag_bookmarked v

let space t id =
  check t id;
  t.space.(id)

let set_space t id v =
  check t id;
  t.space.(id) <- v

let scratch t id =
  check t id;
  t.scratch.(id)

let set_scratch t id v =
  check t id;
  t.scratch.(id) <- v

let page_slot t id =
  check t id;
  t.page_slot.(id)

let set_page_slot t id v =
  check t id;
  t.page_slot.(id) <- v

let live_count t = t.live

let live_bytes t = t.live_bytes

let iter_live t f =
  for id = 0 to t.next_id - 1 do
    if get_flags t id land flag_live <> 0 then f id
  done

let capacity t = t.next_id

(** Structure-of-arrays storage for simulated heap objects.

    Each live object has a size in bytes, a simulated byte address, an
    array of reference fields, a header with status bits (mark and
    bookmark, as in the paper's one-word Jikes header), a collector-defined
    space tag and a collector-defined scratch word. Ids of freed objects
    are recycled. *)

type t

val create : unit -> t

val alloc : t -> size:int -> nrefs:int -> kind:[ `Scalar | `Array ] -> Obj_id.t
(** Register a new object. Its address starts unset ([-1]); the collector
    must {!set_addr} before the object is used. *)

val free : t -> Obj_id.t -> unit
(** Recycle an object id. Accessing a freed id afterwards is a program
    error detected by the table. *)

val is_live : t -> Obj_id.t -> bool
(** True when the id denotes an allocated, not-yet-freed object. *)

val size : t -> Obj_id.t -> int

val kind : t -> Obj_id.t -> [ `Scalar | `Array ]

val addr : t -> Obj_id.t -> int

val set_addr : t -> Obj_id.t -> int -> unit

val nrefs : t -> Obj_id.t -> int

val get_ref : t -> Obj_id.t -> int -> Obj_id.t

val set_ref : t -> Obj_id.t -> int -> Obj_id.t -> unit

val iter_refs : t -> Obj_id.t -> (int -> Obj_id.t -> unit) -> unit
(** [iter_refs t o f] calls [f field target] for each non-null field. *)

(** {1 Header bits} *)

val marked : t -> Obj_id.t -> bool

val set_marked : t -> Obj_id.t -> bool -> unit

val bookmarked : t -> Obj_id.t -> bool

val set_bookmarked : t -> Obj_id.t -> bool -> unit

(** {1 Collector scratch} *)

val space : t -> Obj_id.t -> int
(** Collector-defined space tag (0 initially). *)

val set_space : t -> Obj_id.t -> int -> unit

val scratch : t -> Obj_id.t -> int
(** Collector-defined scratch word (-1 initially; reset on {!alloc}). *)

val set_scratch : t -> Obj_id.t -> int -> unit

val page_slot : t -> Obj_id.t -> int
(** Back-index into the page map: this object's slot in its {e first}
    page's bucket, or -1 while unplaced. Maintained by [Heap.place] /
    [Heap.displace] so bucket removal is O(1) instead of a scan. *)

val set_page_slot : t -> Obj_id.t -> int -> unit

(** {1 Whole-table queries} *)

val live_count : t -> int

val live_bytes : t -> int

val iter_live : t -> (Obj_id.t -> unit) -> unit

val capacity : t -> int
(** Upper bound (exclusive) on ids ever returned; for sizing side tables. *)

module Vec = Repro_util.Vec

(* page -> objects-with-first-page-here index, stored as a two-level
   chunked table so sparse address spaces (first pages near 2^30) cost
   memory proportional to populated 4096-page chunks. Never-touched chunks
   alias one shared all-None sentinel, which is never written: [bucket]
   materialises a private chunk before inserting. *)

let chunk_shift = 12

let chunk_pages = 1 lsl chunk_shift

let chunk_mask = chunk_pages - 1

let sentinel : int Vec.t option array = Array.make chunk_pages None

type t = { mutable chunks : int Vec.t option array array }

let create () = { chunks = Array.make 1 sentinel }

let ensure t page =
  let c = page lsr chunk_shift in
  if c >= Array.length t.chunks then begin
    let len' = max (c + 1) (2 * Array.length t.chunks) in
    let chunks' = Array.make len' sentinel in
    Array.blit t.chunks 0 chunks' 0 (Array.length t.chunks);
    t.chunks <- chunks'
  end;
  if t.chunks.(c) == sentinel then t.chunks.(c) <- Array.make chunk_pages None

let slot_of t page =
  let c = page lsr chunk_shift in
  if c < Array.length t.chunks then t.chunks.(c).(page land chunk_mask)
  else None

let bucket t page =
  ensure t page;
  let chunk = t.chunks.(page lsr chunk_shift) in
  match chunk.(page land chunk_mask) with
  | Some v -> v
  | None ->
      let v = Vec.create () in
      chunk.(page land chunk_mask) <- Some v;
      v

let add t ~page id =
  let v = bucket t page in
  Vec.push v id;
  Vec.length v - 1

let missing page id =
  invalid_arg
    (Printf.sprintf "Page_map.remove: object #%d not on page %d" id page)

(* Swap-remove bucket slot [i]; when that relocates the former last
   element, tell the caller so any stored back-index can be fixed up. *)
let remove_slot v ~moved i =
  ignore (Vec.swap_remove v i : int);
  if i < Vec.length v then moved (Vec.get v i) i

let remove t ~page ?slot ?(moved = fun _ _ -> ()) id =
  let v = bucket t page in
  match slot with
  | Some s when s >= 0 && s < Vec.length v && Vec.get v s = id ->
      remove_slot v ~moved s
  | Some _ | None ->
      (* no (valid) slot hint: linear scan, as for the non-first pages of
         a multi-page object *)
      let n = Vec.length v in
      let rec find i =
        if i >= n then missing page id
        else if Vec.get v i = id then remove_slot v ~moved i
        else find (i + 1)
      in
      find 0

let objects_on t page =
  if page < 0 then [||]
  else match slot_of t page with None -> [||] | Some v -> Vec.to_array v

let count_on t page =
  if page < 0 then 0
  else match slot_of t page with None -> 0 | Some v -> Vec.length v

let iter_on t page f =
  if page >= 0 then
    match slot_of t page with None -> () | Some v -> Vec.iter f v

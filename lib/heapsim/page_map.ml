module Vec = Repro_util.Vec

type t = { mutable table : int Vec.t option array }

let create () = { table = Array.make 1024 None }

let ensure t page =
  let cap = Array.length t.table in
  if page >= cap then begin
    let cap' = max (page + 1) (cap * 2) in
    let table' = Array.make cap' None in
    Array.blit t.table 0 table' 0 cap;
    t.table <- table'
  end

let bucket t page =
  ensure t page;
  match t.table.(page) with
  | Some v -> v
  | None ->
      let v = Vec.create () in
      t.table.(page) <- Some v;
      v

let add t ~page id =
  let v = bucket t page in
  Vec.push v id;
  Vec.length v - 1

let missing page id =
  invalid_arg
    (Printf.sprintf "Page_map.remove: object #%d not on page %d" id page)

(* Swap-remove bucket slot [i]; when that relocates the former last
   element, tell the caller so any stored back-index can be fixed up. *)
let remove_slot v ~moved i =
  ignore (Vec.swap_remove v i : int);
  if i < Vec.length v then moved (Vec.get v i) i

let remove t ~page ?slot ?(moved = fun _ _ -> ()) id =
  let v = bucket t page in
  match slot with
  | Some s when s >= 0 && s < Vec.length v && Vec.get v s = id ->
      remove_slot v ~moved s
  | Some _ | None ->
      (* no (valid) slot hint: linear scan, as for the non-first pages of
         a multi-page object *)
      let n = Vec.length v in
      let rec find i =
        if i >= n then missing page id
        else if Vec.get v i = id then remove_slot v ~moved i
        else find (i + 1)
      in
      find 0

let objects_on t page =
  if page < 0 || page >= Array.length t.table then [||]
  else match t.table.(page) with None -> [||] | Some v -> Vec.to_array v

let count_on t page =
  if page < 0 || page >= Array.length t.table then 0
  else match t.table.(page) with None -> 0 | Some v -> Vec.length v

let iter_on t page f =
  if page >= 0 && page < Array.length t.table then
    match t.table.(page) with None -> () | Some v -> Vec.iter f v

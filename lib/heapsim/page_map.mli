(** Reverse index from pages to the objects they hold.

    BC locates objects on a page from superpage-header metadata (§4); the
    baseline collectors never need the index. The simulation keeps it
    for every space so that page scanning, sweeping and invariant checks
    are uniform. Objects spanning several pages appear on each. *)

type t

val create : unit -> t

val add : t -> page:int -> Obj_id.t -> int
(** Register the object; returns its slot in the page's bucket. The slot
    stays valid until a later [remove] on the same page relocates it
    (reported through that call's [moved]). *)

val remove : t -> page:int -> ?slot:int -> ?moved:(Obj_id.t -> int -> unit)
  -> Obj_id.t -> unit
(** Remove one occurrence; the object must be registered on the page.
    With a valid [slot] hint (from {!add}, kept current via [moved]) the
    removal is O(1); otherwise it scans the bucket. Removal swap-fills
    the vacated slot from the bucket's tail: when that relocates another
    object's entry, [moved] is called with that object and its new slot
    so the caller can fix any stored back-index. *)

val objects_on : t -> int -> Obj_id.t array
(** Snapshot of the objects registered on a page (safe to mutate the map
    while iterating the snapshot). *)

val count_on : t -> int -> int

val iter_on : t -> int -> (Obj_id.t -> unit) -> unit
(** Iterate without snapshotting; the callback must not mutate the map. *)

type write_barrier =
  src:Obj_id.t -> field:int -> old_target:Obj_id.t -> target:Obj_id.t -> unit

type t = {
  vmm : Vmsim.Vmm.t;
  proc : Vmsim.Process.t;
  objects : Object_table.t;
  page_map : Page_map.t;
  address_space : Address_space.t;
  mutable barrier : write_barrier;
  mutable roots : (Obj_id.t -> unit) -> unit;
}

let no_barrier ~src:_ ~field:_ ~old_target:_ ~target:_ = ()

let create_with vmm proc ~address_space =
  {
    vmm;
    proc;
    objects = Object_table.create ();
    page_map = Page_map.create ();
    address_space;
    barrier = no_barrier;
    roots = (fun _ -> ());
  }

let create vmm proc = create_with vmm proc ~address_space:(Address_space.create ())

let vmm t = t.vmm

let process t = t.proc

let objects t = t.objects

let page_map t = t.page_map

let address_space t = t.address_space

let clock t = Vmsim.Vmm.clock t.vmm

let costs t = Vmsim.Vmm.costs t.vmm

(* Page arithmetic is hand-inlined: dev-profile builds pass -opaque, so
   [Vmsim.Page.of_addr] is a real call (with a division by a loaded
   value) on every object access. Addresses are non-negative, so the
   division is a shift. Verified at module init. *)
let () = assert (Vmsim.Page.size = 4096)

let[@inline] page_of_addr addr = addr lsr 12

let first_page t id = page_of_addr (Object_table.addr t.objects id)

let last_page t id =
  let addr = Object_table.addr t.objects id in
  page_of_addr (addr + Object_table.size t.objects id - 1)

let iter_pages t id f =
  let addr = Object_table.addr t.objects id in
  assert (addr >= 0);
  for page = page_of_addr addr to last_page t id do
    f page
  done

let place t id ~addr =
  assert (Object_table.addr t.objects id < 0);
  Object_table.set_addr t.objects id addr;
  let fp = page_of_addr addr in
  (* only the first page's slot is back-indexed; the rare multi-page
     object still scans its tail pages' buckets on removal *)
  Object_table.set_page_slot t.objects id (Page_map.add t.page_map ~page:fp id);
  for page = fp + 1 to last_page t id do
    ignore (Page_map.add t.page_map ~page id : int)
  done

(* A bucket removal swap-fills the hole from the tail: if the relocated
   entry belongs to an object whose first page this is, its stored slot
   must follow. *)
let fix_moved t page moved_id slot =
  if page_of_addr (Object_table.addr t.objects moved_id) = page then
    Object_table.set_page_slot t.objects moved_id slot

let displace t id =
  if Object_table.addr t.objects id >= 0 then begin
    let fp = first_page t id and lp = last_page t id in
    Page_map.remove t.page_map ~page:fp
      ~slot:(Object_table.page_slot t.objects id)
      ~moved:(fix_moved t fp) id;
    for page = fp + 1 to lp do
      Page_map.remove t.page_map ~page ~moved:(fix_moved t page) id
    done;
    Object_table.set_addr t.objects id (-1);
    Object_table.set_page_slot t.objects id (-1)
  end

let free_object t id =
  displace t id;
  Object_table.free t.objects id

(* Object accesses are the next-hottest path after Vmm.touch. Almost
   every object fits on one page, so skip the [iter_pages] closure and
   touch the page directly; multi-page objects take the loop. *)
let touch_object t ?(write = false) id =
  let objs = t.objects in
  let addr = Object_table.addr objs id in
  assert (addr >= 0);
  let fp = page_of_addr addr in
  let lp = page_of_addr (addr + Object_table.size objs id - 1) in
  if fp = lp then Vmsim.Vmm.touch t.vmm ~write fp
  else
    (* multi-page object: a batched span — resident runs cost one clock
       skip instead of per-page steps, bit-identical to the loop *)
    Vmsim.Vmm.touch_span t.vmm ~write ~first_page:fp (lp - fp + 1)

let set_write_barrier t barrier = t.barrier <- barrier

let set_roots t roots = t.roots <- roots

let iter_roots t f = t.roots f

let charge_access t = Vmsim.Clock.advance (clock t) (costs t).Vmsim.Costs.access_ns

let read_ref t id field =
  charge_access t;
  touch_object t ~write:false id;
  Object_table.get_ref t.objects id field

let write_ref t id field target =
  charge_access t;
  touch_object t ~write:true id;
  let old_target = Object_table.get_ref t.objects id field in
  t.barrier ~src:id ~field ~old_target ~target;
  Object_table.set_ref t.objects id field target

let access t ?(write = false) id =
  charge_access t;
  touch_object t ~write id

(* One packed status byte per page, the flag half of the VMM's
   struct-of-arrays page table. Keeping all six booleans in a single
   Bytes.t means the touch fast path reads and writes exactly one byte
   per access instead of dereferencing a boxed record.

   All accessors use unsafe byte access: the VMM guarantees [page] is
   below the table length before calling in (the touch fast path has
   already bounds-checked), and re-checking here would put a second
   branch on the hottest loads in the simulator. *)

type set = Bytes.t

let dirty = 1

let referenced = 2

let protected_ = 4

let pinned = 8

let in_swap = 16

let surrendered = 32

let all = [ dirty; referenced; protected_; pinned; in_swap; surrendered ]

let create n = Bytes.make n '\000'

let length (b : set) = Bytes.length b

(* Grow to [n] bytes, preserving contents; new pages start all-clear. *)
let grow (b : set) n =
  let b' = Bytes.make n '\000' in
  Bytes.blit b 0 b' 0 (Bytes.length b);
  b'

let[@inline] byte (b : set) page = Char.code (Bytes.unsafe_get b page)

let[@inline] set_byte (b : set) page v =
  Bytes.unsafe_set b page (Char.unsafe_chr v)

let[@inline] get (b : set) page bit = byte b page land bit <> 0

let[@inline] set (b : set) page bit = set_byte b page (byte b page lor bit)

let[@inline] clear (b : set) page bit =
  set_byte b page (byte b page land lnot bit land 0xff)

let[@inline] put (b : set) page bit v =
  if v then set b page bit else clear b page bit

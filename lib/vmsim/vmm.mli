(** The simulated virtual memory manager.

    Models the paper's extended Linux 2.4.20 kernel (§4.1): an approximate
    global LRU with an active list (clock / second chance) and an inactive
    FIFO, batched reclaim, demand zero-fill, a swap device, and the
    cooperative extensions the paper adds — pre-eviction notices delivered
    to registered processes, made-resident notices, [vm_relinquish],
    [madvise(MADV_DONTNEED)], [mprotect] upcalls and [mlock] pinning.

    Every page access in the simulation goes through {!touch}; this is the
    single point where reference bits, dirty bits, faults and the disk
    penalty are accounted.

    The address space is backed by {!Page_table}, a sparse two-level
    chunked table: memory is proportional to the pages actually mapped,
    so giant (2^30-page) address spaces are cheap, and runs of resident
    touches can be batched with {!touch_span}'s event-skipping clock. *)

(** The sparse two-level page table.

    A root array of chunk pointers; each chunk holds the struct-of-arrays
    page metadata (state bytes, packed {!Page_flags}, owner pids) for a
    fixed [chunk_pages]-page span and is materialised lazily on first
    {!Page_table.map}. Never-materialised chunks all alias one shared
    all-zero {!Page_table.sentinel}, so lookups anywhere in the address
    space are plain array indexing and never allocate.

    Invariants:
    - [owner_pid t page = 0] means the page was {e never} mapped (pid 0 is
      reserved); a page unmapped after use keeps its last owner with state
      unmapped, preserving the "never mapped" / "unmapped after use"
      distinction the error paths rely on.
    - The sentinel is never written; every writer materialises first.
    - A chunk, once materialised, is never replaced — pointers into its
      arrays (e.g. the VMM's touch-path chunk cache) stay valid for the
      table's lifetime.

    The chunk span (4096 pages) is aligned with the block granularity the
    planned Immix/zone collector family reasons about, and the module is
    exported so that family can reuse the table without reaching into
    [Vmm] internals. Treat the chunk arrays as read-only outside [Vmm]:
    like {!Page_flags.set}, they are exposed raw so hot paths can index
    them without a cross-module call. *)
module Page_table : sig
  type t

  type chunk = {
    states : Bytes.t;  (** one state byte per page *)
    flags : Page_flags.set;  (** one packed flag byte per page *)
    owners : int array;  (** owner pid per page; 0 = never mapped *)
  }

  val chunk_shift : int
  (** [page lsr chunk_shift] is the chunk index. *)

  val chunk_pages : int
  (** Pages per chunk ([1 lsl chunk_shift] = 4096). *)

  val chunk_mask : int
  (** [page land chunk_mask] is the index within the chunk. *)

  val sentinel : chunk
  (** The shared all-zero chunk that never-materialised slots alias. *)

  val create : unit -> t

  val state : t -> int -> int
  (** Page state byte; 0 (unmapped) for any never-materialised page,
      including pages beyond the root array and negative pages. *)

  val owner_pid : t -> int -> int
  (** Owning pid, or 0 if the page was never mapped. *)

  val flag : t -> int -> int -> bool
  (** [flag t page bit] tests a {!Page_flags} bit; false wherever the
      sentinel answers. *)

  val chunk_of : t -> int -> chunk
  (** The chunk covering a page — possibly {!sentinel}. Total for every
      [int], so lookups need no bounds check of their own. *)

  val is_materialized : t -> int -> bool

  val materialize : t -> int -> chunk
  (** The chunk covering a page, materialising (and growing the root) as
      needed. *)

  val map : t -> page:int -> pid:int -> unit
  (** Low-level mapping: stamp the page untouched with the given owner,
      materialising its chunk. Validation (already-mapped checks,
      accounting) is the caller's job — [Vmm.map_range] is the checked
      entry point. *)

  val materialized_chunks : t -> int
  (** Number of materialised chunks — the table's real memory footprint
      ([materialized_chunks * chunk_pages] pages of metadata) regardless
      of how high the page numbers reach. *)

  val iter_chunks : t -> (chunk_index:int -> chunk -> unit) -> unit
  (** Iterate materialised chunks in address order; sentinel (never
      touched) chunks are skipped, so iteration is O(touched pages). *)
end

type t

exception Thrashing of string
(** Raised when a frame is needed but every resident page is pinned. *)

(** {1 Construction} *)

val create :
  ?costs:Costs.t ->
  ?reclaim_batch:int ->
  ?swap_capacity_pages:int ->
  ?faults:Faults.Fault_plan.t ->
  clock:Clock.t ->
  frames:int ->
  unit ->
  t
(** [create ~clock ~frames ()] builds a VMM with [frames] physical page
    frames. [reclaim_batch] (default 16) is the eviction cluster size: the
    kernel frees that many frames per reclaim pass, so available memory
    fluctuates in steps, as §3.4.3 describes. [swap_capacity_pages] bounds
    the swap device (default unlimited); a capacity-full device fails
    evictions gracefully (the reclaimer moves on to other victims and
    counts a stall) rather than raising out of the paging path.

    [faults] attaches a fault-injection plan: pre-eviction and
    made-resident notices may then be dropped, delayed, duplicated or
    reordered, and swap I/O may fail transiently or reject writes during
    scripted device-full episodes. Delayed/duplicated notices are
    delivered at the next top-level {!touch}. Protection-fault upcalls are
    never faulted: they model synchronous hardware traps. *)

val create_process : t -> name:string -> Process.t

val clock : t -> Clock.t

val costs : t -> Costs.t

val swap : t -> Swap.t
(** The swap device (occupancy and I/O accounting). *)

(** {1 Address space} *)

val map_range : t -> Process.t -> first_page:int -> npages:int -> unit
(** Map fresh zero-fill pages owned by the process ([mmap]). *)

val unmap_range : t -> first_page:int -> npages:int -> unit

val owner : t -> int -> Process.t option

(** {1 Access} *)

val touch : t -> ?write:bool -> int -> unit
(** [touch t page] performs a memory access: sets the reference bit,
    zero-fills on first touch (minor fault), reloads from swap (major
    fault, charging the disk penalty) and delivers protection-fault and
    made-resident upcalls as appropriate. *)

val touch_span : t -> ?write:bool -> ?cost_ns:int -> first_page:int -> int -> unit
(** [touch_span t ~first_page npages] touches [npages] consecutive pages,
    by definition exactly equivalent to

    {[ for page = first_page to first_page + npages - 1 do
         Clock.advance (clock t) cost_ns; touch t ~write page
       done ]}

    but detecting runs of resident, unprotected pages and fast-forwarding
    the clock by [run * cost_ns] in O(1) ({!Clock.skip}) instead of
    stepping per touch. Resident fast-path touches emit no events, deliver
    no notices and never advance the clock, so the batching is invisible:
    all simulated metrics, timestamps and fault interleavings are
    bit-identical to the per-page loop. The first faulting, protected,
    swapped or unmapped page falls back to one per-page step.
    [cost_ns] defaults to 0 (pure touches, no per-access charge). *)

val set_span_skipping : bool -> unit
(** Globally disable ([false]) or re-enable ([true], the default) span
    skipping: with it off, {!touch_span} runs the literal per-page loop.
    Exists so determinism tests can prove traces are byte-identical both
    ways; simulation results must never depend on the setting. *)

val span_skipping_enabled : unit -> bool

val is_resident : t -> int -> bool
(** [mincore]: true when the page is in a physical frame. *)

val is_swapped : t -> int -> bool

val is_protected : t -> int -> bool

val is_dirty : t -> int -> bool

(** {1 Cooperative system calls} *)

val madvise_dontneed : t -> int -> unit
(** Discard the page's contents: its frame (if any) is freed without
    writeback and its next touch zero-fills. No-op on unmapped pages. *)

val vm_relinquish : t -> int list -> unit
(** The paper's new system call: voluntarily surrender pages. They move to
    the tail of the inactive queue and are evicted on the next reclaim pass
    without a further notice. *)

val mprotect : t -> int -> protect:bool -> unit
(** Toggle access protection. Touching a protected page delivers the
    owner's protection-fault upcall (the handler is expected to
    unprotect). *)

val mlock : t -> int -> unit
(** Touch and pin the page: it becomes unevictable until {!munlock}. *)

val munlock : t -> int -> unit

(** {1 Capacity} *)

val capacity : t -> int

val set_capacity : t -> int -> unit
(** Change the number of physical frames, reclaiming immediately when
    shrinking below current residency. *)

val resident_count : t -> int

val free_frames : t -> int

val pinned_count : t -> int

(** {1 Tracing} *)

val set_trace : t -> Telemetry.Sink.t option -> unit
(** Attach (or detach) a telemetry sink. With no sink attached, every
    emission site is a single branch and return — no allocation and no
    clock advance, so tracing cannot perturb virtual-time results. *)

val trace : t -> Telemetry.Sink.t option

(** {1 Statistics} *)

val stats : t -> Vm_stats.t
(** Global counters. Per-process counters live in {!Process.stats}. *)

val pending_notice_count : t -> int
(** Notices the fault plan has held back and not yet delivered. *)

val count_resident_owned : t -> Process.t -> int
(** Resident pages owned by a process: an O(1) read of the process's
    [Vm_stats.resident_pages] gauge, which every residency transition
    maintains. Debug builds cross-check it against a scan of the
    materialised chunks. *)

val page_table : t -> Page_table.t
(** The backing sparse page table, for introspection (e.g. asserting that
    a giant address space materialised only O(touched) chunks) and for
    future collector families that reason at chunk granularity. Mutate it
    only through the [Vmm] entry points. *)

val coldest_pages : t -> owner:Process.t -> n:int -> int list
(** Up to [n] of the owner's reclaim-coldest resident pages, coldest
    first (inactive list from its tail, then the active list from its
    tail). Supports the paper's §7 exploration of smarter victim
    selection: the collector may prefer a slightly warmer page whose
    eviction creates less false garbage. *)

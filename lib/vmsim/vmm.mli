(** The simulated virtual memory manager.

    Models the paper's extended Linux 2.4.20 kernel (§4.1): an approximate
    global LRU with an active list (clock / second chance) and an inactive
    FIFO, batched reclaim, demand zero-fill, a swap device, and the
    cooperative extensions the paper adds — pre-eviction notices delivered
    to registered processes, made-resident notices, [vm_relinquish],
    [madvise(MADV_DONTNEED)], [mprotect] upcalls and [mlock] pinning.

    Every page access in the simulation goes through {!touch}; this is the
    single point where reference bits, dirty bits, faults and the disk
    penalty are accounted. *)

type t

exception Thrashing of string
(** Raised when a frame is needed but every resident page is pinned. *)

(** {1 Construction} *)

val create :
  ?costs:Costs.t ->
  ?reclaim_batch:int ->
  ?swap_capacity_pages:int ->
  ?faults:Faults.Fault_plan.t ->
  clock:Clock.t ->
  frames:int ->
  unit ->
  t
(** [create ~clock ~frames ()] builds a VMM with [frames] physical page
    frames. [reclaim_batch] (default 16) is the eviction cluster size: the
    kernel frees that many frames per reclaim pass, so available memory
    fluctuates in steps, as §3.4.3 describes. [swap_capacity_pages] bounds
    the swap device (default unlimited); a capacity-full device fails
    evictions gracefully (the reclaimer moves on to other victims and
    counts a stall) rather than raising out of the paging path.

    [faults] attaches a fault-injection plan: pre-eviction and
    made-resident notices may then be dropped, delayed, duplicated or
    reordered, and swap I/O may fail transiently or reject writes during
    scripted device-full episodes. Delayed/duplicated notices are
    delivered at the next top-level {!touch}. Protection-fault upcalls are
    never faulted: they model synchronous hardware traps. *)

val create_process : t -> name:string -> Process.t

val clock : t -> Clock.t

val costs : t -> Costs.t

val swap : t -> Swap.t
(** The swap device (occupancy and I/O accounting). *)

(** {1 Address space} *)

val map_range : t -> Process.t -> first_page:int -> npages:int -> unit
(** Map fresh zero-fill pages owned by the process ([mmap]). *)

val unmap_range : t -> first_page:int -> npages:int -> unit

val owner : t -> int -> Process.t option

(** {1 Access} *)

val touch : t -> ?write:bool -> int -> unit
(** [touch t page] performs a memory access: sets the reference bit,
    zero-fills on first touch (minor fault), reloads from swap (major
    fault, charging the disk penalty) and delivers protection-fault and
    made-resident upcalls as appropriate. *)

val is_resident : t -> int -> bool
(** [mincore]: true when the page is in a physical frame. *)

val is_swapped : t -> int -> bool

val is_protected : t -> int -> bool

val is_dirty : t -> int -> bool

(** {1 Cooperative system calls} *)

val madvise_dontneed : t -> int -> unit
(** Discard the page's contents: its frame (if any) is freed without
    writeback and its next touch zero-fills. No-op on unmapped pages. *)

val vm_relinquish : t -> int list -> unit
(** The paper's new system call: voluntarily surrender pages. They move to
    the tail of the inactive queue and are evicted on the next reclaim pass
    without a further notice. *)

val mprotect : t -> int -> protect:bool -> unit
(** Toggle access protection. Touching a protected page delivers the
    owner's protection-fault upcall (the handler is expected to
    unprotect). *)

val mlock : t -> int -> unit
(** Touch and pin the page: it becomes unevictable until {!munlock}. *)

val munlock : t -> int -> unit

(** {1 Capacity} *)

val capacity : t -> int

val set_capacity : t -> int -> unit
(** Change the number of physical frames, reclaiming immediately when
    shrinking below current residency. *)

val resident_count : t -> int

val free_frames : t -> int

val pinned_count : t -> int

(** {1 Tracing} *)

val set_trace : t -> Telemetry.Sink.t option -> unit
(** Attach (or detach) a telemetry sink. With no sink attached, every
    emission site is a single branch and return — no allocation and no
    clock advance, so tracing cannot perturb virtual-time results. *)

val trace : t -> Telemetry.Sink.t option

(** {1 Statistics} *)

val stats : t -> Vm_stats.t
(** Global counters. Per-process counters live in {!Process.stats}. *)

val pending_notice_count : t -> int
(** Notices the fault plan has held back and not yet delivered. *)

val count_resident_owned : t -> Process.t -> int
(** Resident pages owned by a process: an O(1) read of the process's
    [Vm_stats.resident_pages] gauge, which every residency transition
    maintains. Debug builds cross-check it against a full-table scan. *)

val coldest_pages : t -> owner:Process.t -> n:int -> int list
(** Up to [n] of the owner's reclaim-coldest resident pages, coldest
    first (inactive list from its tail, then the active list from its
    tail). Supports the paper's §7 exploration of smarter victim
    selection: the collector may prefer a slightly warmer page whose
    eviction creates less false garbage. *)

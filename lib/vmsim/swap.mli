(** The swap device: slot accounting for evicted pages.

    Tracks which pages currently have a swap copy, the device's occupancy
    high-water mark, and I/O counts. The paper's testbed had 2 GB of local
    swap; an optional capacity models device exhaustion, and an optional
    {!Faults.Fault_plan} injects transient I/O errors and scripted
    device-full episodes. *)

type t

exception Full
(** Raised by {!write} when the device is at capacity, or during an
    injected device-full episode. *)

exception Io_error
(** Raised by {!write}/{!read} on an injected transient I/O error. The
    caller may retry: injected errors are bounded, never permanent. *)

val create : ?capacity_pages:int -> ?faults:Faults.Fault_plan.t -> unit -> t
(** [capacity_pages] defaults to unlimited; [faults] to no injection. *)

val write : t -> int -> unit
(** Store (or refresh) the page's swap copy. *)

val read : t -> int -> unit
(** Count a read of the page's copy; the copy remains valid. Raises
    [Invalid_argument] when the page has no copy. *)

val drop : t -> int -> unit
(** Invalidate the page's copy ([madvise], unmap). No-op when absent. *)

val has_copy : t -> int -> bool

val occupancy_pages : t -> int

val high_water_pages : t -> int

val writes : t -> int

val reads : t -> int

val write_errors : t -> int
(** Injected write I/O errors observed by this device. *)

val read_errors : t -> int
(** Injected read I/O errors observed by this device. *)

(** Packed per-page status flags.

    One byte per page holds the six page-state booleans the VMM tracks
    (dirty, referenced, protected, pinned, in-swap, surrendered), so the
    touch fast path touches exactly one byte of flag state per access.

    Accessors use unchecked byte access for speed: callers must keep
    [page] below {!length} (the VMM bounds-checks once at the top of
    [touch] and grows the table in [map_range]). *)

type set = Bytes.t
(** Deliberately transparent: dev-profile builds pass [-opaque], which
    defeats cross-module inlining, so the VMM's touch fast path works on
    the raw bytes directly (it asserts the bit layout at init). Treat it
    as abstract everywhere else. *)

(** {1 Flag bits} *)

val dirty : int

val referenced : int

val protected_ : int

val pinned : int

val in_swap : int

val surrendered : int

val all : int list
(** Every flag bit, for exhaustive round-trip tests. *)

(** {1 Storage} *)

val create : int -> set
(** [create n] makes flags for [n] pages, all clear. *)

val length : set -> int

val grow : set -> int -> set
(** [grow b n] copies into a fresh [n]-page set; new pages are clear. *)

(** {1 Access} *)

val get : set -> int -> int -> bool
(** [get b page bit] — is [bit] set on [page]? *)

val set : set -> int -> int -> unit

val clear : set -> int -> int -> unit

val put : set -> int -> int -> bool -> unit
(** [put b page bit v] sets or clears. *)

val byte : set -> int -> int
(** The raw packed byte (for saving/restoring a page's whole state). *)

val set_byte : set -> int -> int -> unit

type t = {
  capacity_pages : int option;
  faults : Faults.Fault_plan.t option;
  slots : (int, unit) Hashtbl.t;
  mutable high_water : int;
  mutable writes : int;
  mutable reads : int;
  mutable write_errors : int;
  mutable read_errors : int;
}

exception Full
exception Io_error

let create ?capacity_pages ?faults () =
  {
    capacity_pages;
    faults;
    slots = Hashtbl.create 256;
    high_water = 0;
    writes = 0;
    reads = 0;
    write_errors = 0;
    read_errors = 0;
  }

let occupancy_pages t = Hashtbl.length t.slots

let write t page =
  (match t.faults with
  | None -> ()
  | Some plan -> (
      match Faults.Fault_plan.on_swap_write plan with
      | Faults.Fault_plan.Proceed -> ()
      | Faults.Fault_plan.Io_error ->
          t.write_errors <- t.write_errors + 1;
          raise Io_error
      | Faults.Fault_plan.Device_full -> raise Full));
  if not (Hashtbl.mem t.slots page) then begin
    (match t.capacity_pages with
    | Some cap when occupancy_pages t >= cap -> raise Full
    | Some _ | None -> ());
    Hashtbl.add t.slots page ()
  end;
  t.writes <- t.writes + 1;
  if occupancy_pages t > t.high_water then t.high_water <- occupancy_pages t

let read t page =
  if not (Hashtbl.mem t.slots page) then
    invalid_arg (Printf.sprintf "Swap.read: page %d has no swap copy" page);
  (match t.faults with
  | None -> ()
  | Some plan -> (
      match Faults.Fault_plan.on_swap_read plan with
      | Faults.Fault_plan.Proceed | Faults.Fault_plan.Device_full -> ()
      | Faults.Fault_plan.Io_error ->
          t.read_errors <- t.read_errors + 1;
          raise Io_error));
  t.reads <- t.reads + 1

let drop t page = Hashtbl.remove t.slots page

let has_copy t page = Hashtbl.mem t.slots page

let high_water_pages t = t.high_water

let writes t = t.writes

let reads t = t.reads

let write_errors t = t.write_errors

let read_errors t = t.read_errors

type t = { mutable now_ns : int }

let create () = { now_ns = 0 }

let now t = t.now_ns

let advance t ns =
  assert (ns >= 0);
  t.now_ns <- t.now_ns + ns

(* Event skipping: [skip t ~events:n ~cost_ns] is exactly [n] calls to
   [advance t cost_ns] folded into one addition, so a batch of uniform
   events can fast-forward virtual time in O(1). *)
let skip t ~events ~cost_ns =
  assert (events >= 0 && cost_ns >= 0);
  t.now_ns <- t.now_ns + (events * cost_ns)

let ns_to_ms ns = float_of_int ns /. 1e6

let ns_to_s ns = float_of_int ns /. 1e9

let seconds t = ns_to_s t.now_ns

exception Thrashing of string

module Fault_plan = Faults.Fault_plan

type pstate = Unmapped | Untouched | Resident | Swapped

type pinfo = {
  mutable state : pstate;
  mutable owner : Process.t;
  mutable dirty : bool;
  mutable referenced : bool;
  mutable protected_ : bool;
  mutable pinned : bool;
  mutable in_swap : bool;
  mutable surrendered : bool;
}

type t = {
  clock : Clock.t;
  costs : Costs.t;
  swap : Swap.t;
  faults : Fault_plan.t option;
  (* notices the fault plan held back (delayed or duplicated), delivered
     at the next top-level page access *)
  pending_notices : (Fault_plan.notice * int) Queue.t;
  reclaim_batch : int;
  mutable pages : pinfo option array;
  lru : Lru.t;
  mutable capacity : int;
  mutable resident : int;
  mutable pinned : int;
  mutable next_pid : int;
  stats : Vm_stats.t;
  mutable in_reclaim : bool;
  mutable delivering : bool;
  mutable trace : Telemetry.Sink.t option;
}

(* Trace emission: with no sink attached this is one branch and a return
   — no allocation, and never a clock advance, so attaching (or not
   attaching) a sink cannot change virtual-time results. *)
let[@inline] ev t kind a b =
  match t.trace with
  | None -> ()
  | Some sink -> Telemetry.Sink.emit sink ~ts_ns:(Clock.now t.clock) kind a b

let[@inline] ev_inject t which page =
  match t.trace with
  | None -> ()
  | Some sink ->
      Telemetry.Sink.emit sink ~ts_ns:(Clock.now t.clock)
        Telemetry.Event.Fault_injected
        (Telemetry.Event.injection_code which)
        page

let create ?(costs = Costs.default) ?(reclaim_batch = 16) ?swap_capacity_pages
    ?faults ~clock ~frames () =
  if frames <= 0 then invalid_arg "Vmm.create: frames must be positive";
  {
    clock;
    costs;
    swap = Swap.create ?capacity_pages:swap_capacity_pages ?faults ();
    faults;
    pending_notices = Queue.create ();
    reclaim_batch;
    pages = Array.make 256 None;
    lru = Lru.create ();
    capacity = frames;
    resident = 0;
    pinned = 0;
    next_pid = 1;
    stats = Vm_stats.create ();
    in_reclaim = false;
    delivering = false;
    trace = None;
  }

(* Attach a telemetry sink ([None] detaches). The swap device shares it so
   injected swap faults are stamped at their exact decision point. *)
let set_trace t sink = t.trace <- sink

let trace t = t.trace

let clock t = t.clock

let costs t = t.costs

let swap t = t.swap

let create_process t ~name =
  let p = Process.create ~pid:t.next_pid ~name in
  t.next_pid <- t.next_pid + 1;
  p

let capacity t = t.capacity

let resident_count t = t.resident

let free_frames t = t.capacity - t.resident

let pinned_count t = t.pinned

let stats t = t.stats

let info t page =
  if page < 0 || page >= Array.length t.pages then None else t.pages.(page)

let info_exn t page =
  match info t page with
  | Some pi -> pi
  | None -> invalid_arg (Printf.sprintf "Vmm: page %d is unmapped" page)

let ensure_table t page =
  let cap = Array.length t.pages in
  if page >= cap then begin
    let cap' = max (page + 1) (cap * 2) in
    let pages' = Array.make cap' None in
    Array.blit t.pages 0 pages' 0 cap;
    t.pages <- pages'
  end

let map_range t proc ~first_page ~npages =
  ensure_table t (first_page + npages - 1);
  for p = first_page to first_page + npages - 1 do
    match t.pages.(p) with
    | Some pi when pi.state <> Unmapped ->
        invalid_arg (Printf.sprintf "Vmm.map_range: page %d already mapped" p)
    | Some pi ->
        pi.state <- Untouched;
        pi.owner <- proc
    | None ->
        t.pages.(p) <-
          Some
            {
              state = Untouched;
              owner = proc;
              dirty = false;
              referenced = false;
              protected_ = false;
              pinned = false;
              in_swap = false;
              surrendered = false;
            }
  done

let owner t page =
  match info t page with
  | Some pi when pi.state <> Unmapped -> Some pi.owner
  | Some _ | None -> None

let is_resident t page =
  match info t page with Some pi -> pi.state = Resident | None -> false

let is_swapped t page =
  match info t page with Some pi -> pi.state = Swapped | None -> false

let is_protected t page =
  match info t page with Some pi -> pi.protected_ | None -> false

let is_dirty t page =
  match info t page with Some pi -> pi.dirty | None -> false

(* Every residency transition funnels through here so the global count,
   the global gauge and the owning process's gauge stay in lock-step;
   [Vm_stats.resident_pages] is what surfaces per-process residency to
   the harness without an O(pages) scan. *)
let note_residency t pi delta =
  t.resident <- t.resident + delta;
  Vm_stats.add_resident t.stats delta;
  Vm_stats.add_resident (Process.stats pi.owner) delta

(* Drop a page's frame without writeback. The page must be resident and
   unpinned. *)
let release_frame t page pi =
  if Lru.membership t.lru page <> None then Lru.remove t.lru page;
  pi.state <- Untouched;
  pi.dirty <- false;
  pi.in_swap <- false;
  pi.surrendered <- false;
  note_residency t pi (-1)

(* Attempt the swap write behind an eviction, with bounded
   retry-with-backoff on transient I/O errors. Returns false when the
   device is full or the error persisted past the retry budget. *)
let swap_write_retrying t page =
  let max_attempts = 8 in
  let rec go attempt =
    match Swap.write t.swap page with
    | () -> true
    | exception Swap.Io_error ->
        ev_inject t Telemetry.Event.Swap_write_error page;
        t.stats.Vm_stats.swap_retries <- t.stats.Vm_stats.swap_retries + 1;
        (* linear backoff: each retry waits one more write-slot *)
        Clock.advance t.clock (attempt * t.costs.Costs.swap_write_ns);
        if attempt >= max_attempts then false else go (attempt + 1)
    | exception Swap.Full ->
        ev_inject t Telemetry.Event.Swap_full page;
        t.stats.Vm_stats.swap_stalls <- t.stats.Vm_stats.swap_stalls + 1;
        false
  in
  go 1

(* Write a resident, unlisted page out to swap. Returns false — leaving
   the page resident, back on the active list — when the swap device
   refuses the write; the reclaim loop then moves on to other victims. *)
let swap_out t page pi =
  assert (pi.state = Resident && not pi.pinned);
  let wrote =
    if pi.dirty || not pi.in_swap then begin
      if swap_write_retrying t page then begin
        Clock.advance t.clock t.costs.Costs.swap_write_ns;
        ev t Telemetry.Event.Swap_write page (Process.pid pi.owner);
        t.stats.Vm_stats.swap_outs <- t.stats.Vm_stats.swap_outs + 1;
        (Process.stats pi.owner).Vm_stats.swap_outs <-
          (Process.stats pi.owner).Vm_stats.swap_outs + 1;
        pi.in_swap <- true;
        true
      end
      else false
    end
    else true
  in
  if wrote then begin
    pi.state <- Swapped;
    pi.dirty <- false;
    pi.surrendered <- false;
    pi.referenced <- false;
    note_residency t pi (-1);
    ev t Telemetry.Event.Eviction page (Process.pid pi.owner);
    t.stats.Vm_stats.evictions <- t.stats.Vm_stats.evictions + 1;
    (Process.stats pi.owner).Vm_stats.evictions <-
      (Process.stats pi.owner).Vm_stats.evictions + 1;
    true
  end
  else begin
    (* eviction failed: the page stays resident and re-enters the LRU so
       a later pass can retry once the device recovers *)
    pi.referenced <- false;
    pi.surrendered <- false;
    if Lru.membership t.lru page = None then Lru.push_active_head t.lru page;
    false
  end

(* Move up to [n] pages from the active tail into the inactive list,
   giving referenced pages a second chance. Returns how many moved. *)
(* Deliver a pre-eviction notice now, counting it as delivered. *)
let deliver_eviction_notice t pi h victim =
  ev t Telemetry.Event.Eviction_notice victim (Process.pid pi.owner);
  t.stats.Vm_stats.eviction_notices <- t.stats.Vm_stats.eviction_notices + 1;
  (Process.stats pi.owner).Vm_stats.eviction_notices <-
    (Process.stats pi.owner).Vm_stats.eviction_notices + 1;
  h.Process.on_eviction_notice victim

(* Route a notice through the fault plan: deliver it, drop it, queue it
   for late delivery, or deliver now and again later. [deliver] performs
   the immediate delivery (and its accounting). *)
let route_notice t kind page deliver =
  let decision =
    match t.faults with
    | None -> Fault_plan.Deliver
    | Some plan -> Fault_plan.on_notice plan kind
  in
  match decision with
  | Fault_plan.Deliver -> deliver ()
  | Fault_plan.Drop ->
      ev_inject t
        (match kind with
        | Fault_plan.Eviction -> Telemetry.Event.Dropped_eviction
        | Fault_plan.Resident -> Telemetry.Event.Dropped_resident)
        page
  | Fault_plan.Delay ->
      ev_inject t Telemetry.Event.Delayed_notice page;
      Queue.add (kind, page) t.pending_notices
  | Fault_plan.Duplicate ->
      ev_inject t Telemetry.Event.Duplicated_notice page;
      deliver ();
      Queue.add (kind, page) t.pending_notices

let refill_inactive t n =
  let moved = ref 0 in
  let attempts = ref 0 in
  let budget = (2 * Lru.active_size t.lru) + 2 in
  while !moved < n && !attempts < budget do
    incr attempts;
    match Lru.active_tail t.lru with
    | None -> attempts := budget
    | Some page ->
        let pi = info_exn t page in
        Lru.remove t.lru page;
        if pi.referenced then begin
          pi.referenced <- false;
          Lru.push_active_head t.lru page
        end
        else begin
          Lru.push_inactive_head t.lru page;
          incr moved
        end
  done;
  !moved

(* Reclaim frames until [free_frames t >= target], raising only when even
   [required] frames cannot be freed (the batch beyond [required] is
   opportunistic clustering). Delivers pre-eviction notices to registered
   owners; handlers may veto (touch), discard (madvise) or surrender
   (vm_relinquish) pages, all of which this loop observes. *)
let reclaim t ~required ~target =
  if t.in_reclaim then ()
  else begin
    t.in_reclaim <- true;
    Fun.protect ~finally:(fun () -> t.in_reclaim <- false) @@ fun () ->
    let budget =
      (4 * (Lru.active_size t.lru + Lru.inactive_size t.lru)) + 64
    in
    let scanned = ref 0 in
    while free_frames t < target && !scanned < budget do
      incr scanned;
      if Lru.inactive_size t.lru = 0 then begin
        if refill_inactive t t.reclaim_batch = 0 then
          raise
            (Thrashing
               (Printf.sprintf
                  "need %d free frames but all %d resident pages are pinned \
                   or unreclaimable"
                  target t.resident))
      end
      else begin
        match Lru.inactive_tail t.lru with
        | None -> ()
        | Some victim ->
            let pi = info_exn t victim in
            Lru.remove t.lru victim;
            if pi.referenced then begin
              (* second chance; a touch also cancels a pending surrender
                 (the page's owner was already told it reloaded) *)
              pi.referenced <- false;
              pi.surrendered <- false;
              Lru.push_active_head t.lru victim
            end
            else if pi.surrendered then ignore (swap_out t victim pi)
            else begin
              (* Pre-eviction notice: the page is still resident and its
                 owner may react before the PTE is unmapped. Only
                 registered owners receive (and are billed for) one; the
                 fault plan may lose or hold the signal, in which case the
                 eviction proceeds as if the owner stayed silent. *)
              (match Process.handlers pi.owner with
              | Some h ->
                  route_notice t Fault_plan.Eviction victim (fun () ->
                      deliver_eviction_notice t pi h victim)
              | None -> ());
              if Lru.membership t.lru victim <> None then
                (* handler repositioned the page (vm_relinquish) *)
                ()
              else if pi.state <> Resident then
                (* handler discarded it *)
                ()
              else if free_frames t >= target || pi.referenced then begin
                (* pressure relieved, or the owner vetoed by touching *)
                pi.referenced <- false;
                Lru.push_active_head t.lru victim
              end
              else ignore (swap_out t victim pi)
            end
      end
    done;
    (* Desperation: the cooperative pass failed (every candidate vetoed or
       re-referenced). A real kernel overrides user hints under severe
       pressure: evict the coldest unpinned pages without notices. *)
    if free_frames t < required then begin
      (* A failed swap write re-queues the victim, so bound the number of
         attempts or a permanently full device would spin forever. *)
      let attempts = ref 0 in
      let max_attempts = (2 * t.resident) + 16 in
      let steal tail remove =
        while
          free_frames t < required && !attempts < max_attempts
          && tail () <> None
        do
          match tail () with
          | None -> ()
          | Some victim ->
              incr attempts;
              let pi = info_exn t victim in
              remove victim;
              pi.referenced <- false;
              if swap_out t victim pi then begin
                ev t Telemetry.Event.Forced_eviction victim
                  (Process.pid pi.owner);
                t.stats.Vm_stats.forced_evictions <-
                  t.stats.Vm_stats.forced_evictions + 1;
                (Process.stats pi.owner).Vm_stats.forced_evictions <-
                  (Process.stats pi.owner).Vm_stats.forced_evictions + 1
              end
        done
      in
      steal (fun () -> Lru.inactive_tail t.lru) (Lru.remove t.lru);
      steal (fun () -> Lru.active_tail t.lru) (Lru.remove t.lru)
    end;
    if free_frames t < required then
      raise
        (Thrashing
           (Printf.sprintf "reclaim gave up: %d free of %d required"
              (free_frames t) required));
    ev t Telemetry.Event.Gauge_resident t.resident (free_frames t)
  end

(* Make room for one more resident page, freeing a cluster when memory is
   tight so availability moves in batches. *)
let ensure_frame t =
  if free_frames t < 1 then
    reclaim t ~required:1
      ~target:(min t.reclaim_batch (max 1 (t.capacity - t.pinned)))

let count_fault t pi ~major =
  let pstats = Process.stats pi.owner in
  if major then begin
    t.stats.Vm_stats.major_faults <- t.stats.Vm_stats.major_faults + 1;
    pstats.Vm_stats.major_faults <- pstats.Vm_stats.major_faults + 1;
    t.stats.Vm_stats.swap_ins <- t.stats.Vm_stats.swap_ins + 1;
    pstats.Vm_stats.swap_ins <- pstats.Vm_stats.swap_ins + 1
  end
  else begin
    t.stats.Vm_stats.minor_faults <- t.stats.Vm_stats.minor_faults + 1;
    pstats.Vm_stats.minor_faults <- pstats.Vm_stats.minor_faults + 1
  end

let deliver_protection_fault t page pi =
  Clock.advance t.clock t.costs.Costs.protection_fault_ns;
  ev t Telemetry.Event.Protection_fault page (Process.pid pi.owner);
  t.stats.Vm_stats.protection_faults <- t.stats.Vm_stats.protection_faults + 1;
  (Process.stats pi.owner).Vm_stats.protection_faults <-
    (Process.stats pi.owner).Vm_stats.protection_faults + 1;
  match Process.handlers pi.owner with
  | Some h -> h.Process.on_protection_fault page
  | None -> pi.protected_ <- false

(* Read the page's swap copy, retrying past injected transient errors.
   The fault plan bounds consecutive read errors, so the retry budget is
   never exhausted by injection alone. *)
let swap_read_retrying t page =
  let max_attempts = 6 in
  let rec go attempt =
    match Swap.read t.swap page with
    | () -> ()
    | exception Swap.Io_error ->
        ev_inject t Telemetry.Event.Swap_read_error page;
        t.stats.Vm_stats.swap_retries <- t.stats.Vm_stats.swap_retries + 1;
        Clock.advance t.clock (attempt * t.costs.Costs.swap_write_ns);
        if attempt >= max_attempts then
          raise
            (Thrashing
               (Printf.sprintf "swap read of page %d failed %d times" page
                  max_attempts))
        else go (attempt + 1)
  in
  go 1

let rec do_touch t ~write page =
  let pi = info_exn t page in
  match pi.state with
  | Unmapped -> invalid_arg (Printf.sprintf "Vmm.touch: page %d unmapped" page)
  | Resident ->
      pi.referenced <- true;
      if write then pi.dirty <- true;
      if pi.protected_ then begin
        deliver_protection_fault t page pi;
        (* retry the access if the handler unprotected the page; if it did
           not, the access proceeds anyway (the handler owns the policy) *)
        if not pi.protected_ then do_touch t ~write page
      end
  | Untouched ->
      Clock.advance t.clock t.costs.Costs.minor_fault_ns;
      ev t Telemetry.Event.Minor_fault page (Process.pid pi.owner);
      count_fault t pi ~major:false;
      ensure_frame t;
      pi.state <- Resident;
      pi.referenced <- true;
      pi.dirty <- write;
      note_residency t pi 1;
      if not pi.pinned then Lru.push_active_head t.lru page
  | Swapped ->
      swap_read_retrying t page;
      Clock.advance t.clock t.costs.Costs.major_fault_ns;
      ev t Telemetry.Event.Swap_read page (Process.pid pi.owner);
      ev t Telemetry.Event.Major_fault page (Process.pid pi.owner);
      count_fault t pi ~major:true;
      ensure_frame t;
      pi.state <- Resident;
      pi.referenced <- true;
      pi.dirty <- write;
      pi.surrendered <- false;
      note_residency t pi 1;
      if not pi.pinned then Lru.push_active_head t.lru page;
      (* made-resident notice (the fault plan may lose it — the
         protection upcall below is the reliable backstop), then any
         protection upcall *)
      (match Process.handlers pi.owner with
      | Some h ->
          route_notice t Fault_plan.Resident page (fun () ->
              ev t Telemetry.Event.Made_resident page (Process.pid pi.owner);
              h.Process.on_resident page)
      | None -> ());
      if pi.protected_ then deliver_protection_fault t page pi

(* Late delivery of notices the fault plan held back. Notices for pages
   that have since been unmapped, or whose owner unregistered, are
   quietly discarded; everything else is delivered as-is — possibly
   stale, possibly a duplicate — which is exactly the unreliability the
   consumers must tolerate. *)
let flush_pending_notices t =
  if
    (not t.delivering) && (not t.in_reclaim)
    && not (Queue.is_empty t.pending_notices)
  then begin
    t.delivering <- true;
    Fun.protect ~finally:(fun () -> t.delivering <- false) @@ fun () ->
    let items = List.of_seq (Queue.to_seq t.pending_notices) in
    Queue.clear t.pending_notices;
    let items =
      match t.faults with
      | Some plan when Fault_plan.reorder_pending plan ->
          ev_inject t Telemetry.Event.Reordered_flush 0;
          List.rev items
      | Some _ | None -> items
    in
    List.iter
      (fun (kind, page) ->
        match info t page with
        | Some pi when pi.state <> Unmapped -> (
            match Process.handlers pi.owner with
            | Some h -> (
                match kind with
                | Fault_plan.Eviction -> deliver_eviction_notice t pi h page
                | Fault_plan.Resident ->
                    ev t Telemetry.Event.Made_resident page
                      (Process.pid pi.owner);
                    h.Process.on_resident page)
            | None -> ())
        | Some _ | None -> ())
      items
  end

let touch t ?(write = false) page =
  flush_pending_notices t;
  do_touch t ~write page

let unmap_range t ~first_page ~npages =
  for p = first_page to first_page + npages - 1 do
    match info t p with
    | None -> ()
    | Some pi ->
        if pi.state = Resident then begin
          if pi.pinned then begin
            pi.pinned <- false;
            t.pinned <- t.pinned - 1;
            note_residency t pi (-1)
          end
          else release_frame t p pi
        end;
        Swap.drop t.swap p;
        pi.state <- Unmapped;
        pi.in_swap <- false;
        pi.protected_ <- false
  done

let madvise_dontneed t page =
  match info t page with
  | None -> ()
  | Some pi -> (
      Clock.advance t.clock t.costs.Costs.syscall_ns;
      match pi.state with
      | Unmapped | Untouched -> ()
      | Resident ->
          if pi.pinned then invalid_arg "Vmm.madvise_dontneed: page is pinned";
          release_frame t page pi;
          ev t Telemetry.Event.Discard page (Process.pid pi.owner);
          t.stats.Vm_stats.discards <- t.stats.Vm_stats.discards + 1;
          (Process.stats pi.owner).Vm_stats.discards <-
            (Process.stats pi.owner).Vm_stats.discards + 1
      | Swapped ->
          Swap.drop t.swap page;
          pi.state <- Untouched;
          pi.in_swap <- false;
          pi.dirty <- false;
          ev t Telemetry.Event.Discard page (Process.pid pi.owner);
          t.stats.Vm_stats.discards <- t.stats.Vm_stats.discards + 1;
          (Process.stats pi.owner).Vm_stats.discards <-
            (Process.stats pi.owner).Vm_stats.discards + 1)

let vm_relinquish t pages =
  Clock.advance t.clock t.costs.Costs.syscall_ns;
  List.iter
    (fun page ->
      match info t page with
      | None -> ()
      | Some pi ->
          if pi.state = Resident && not pi.pinned then begin
            pi.referenced <- false;
            pi.surrendered <- true;
            if Lru.membership t.lru page <> None then Lru.remove t.lru page;
            Lru.push_inactive_tail t.lru page;
            ev t Telemetry.Event.Relinquish page (Process.pid pi.owner);
            t.stats.Vm_stats.relinquished <- t.stats.Vm_stats.relinquished + 1;
            (Process.stats pi.owner).Vm_stats.relinquished <-
              (Process.stats pi.owner).Vm_stats.relinquished + 1
          end)
    pages

let mprotect t page ~protect =
  Clock.advance t.clock t.costs.Costs.syscall_ns;
  let pi = info_exn t page in
  pi.protected_ <- protect

let mlock t page =
  let pi = info_exn t page in
  (* locking must not fire protection upcalls; lock the raw frame *)
  if pi.state <> Resident then touch t ~write:false page;
  if not pi.pinned then begin
    pi.pinned <- true;
    t.pinned <- t.pinned + 1;
    if Lru.membership t.lru page <> None then Lru.remove t.lru page
  end

let munlock t page =
  let pi = info_exn t page in
  if pi.pinned then begin
    pi.pinned <- false;
    t.pinned <- t.pinned - 1;
    if pi.state = Resident then Lru.push_active_head t.lru page
  end

let set_capacity t frames =
  if frames <= 0 then invalid_arg "Vmm.set_capacity";
  t.capacity <- frames;
  if free_frames t < 0 then reclaim t ~required:0 ~target:0

let coldest_pages t ~owner ~n =
  let acc = ref [] in
  let count = ref 0 in
  let consider page =
    if !count < n then
      match info t page with
      | Some pi when Process.pid pi.owner = Process.pid owner ->
          acc := page :: !acc;
          incr count
      | Some _ | None -> ()
  in
  Lru.iter_inactive_from_tail t.lru consider;
  Lru.iter_active_from_tail t.lru consider;
  List.rev !acc

let pending_notice_count t = Queue.length t.pending_notices

let count_resident_owned t proc =
  let n = ref 0 in
  Array.iter
    (function
      | Some pi
        when pi.state = Resident && Process.pid pi.owner = Process.pid proc ->
          incr n
      | Some _ | None -> ())
    t.pages;
  !n

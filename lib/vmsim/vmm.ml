exception Thrashing of string

module Fault_plan = Faults.Fault_plan

(* Page states, one byte per page in the struct-of-arrays table. *)
let st_unmapped = 0

let st_untouched = 1

let st_resident = 2

let st_swapped = 3

(* The sparse two-level page table.

   PR 4's flat struct-of-arrays table made the touch fast path cheap but
   still cost O(address-space) memory: one state byte, one flag byte and
   one owner word per *addressable* page. That caps machines well below
   the paper's "run the big benchmark in a big heap" regime — a 2^30-page
   space would eat gigabytes before the first touch. Pages are therefore
   grouped into fixed 4096-page chunks hanging off a root array; a chunk
   keeps the struct-of-arrays layout (state bytes + packed Page_flags +
   owner pids) and is materialised on the first [map] inside its span, so
   memory is proportional to *touched* chunks. Never-touched chunks all
   alias one shared all-zero sentinel: reads anywhere report
   state = unmapped / owner = 0 with plain array indexing, and the
   sentinel is NEVER written (every writer materialises first).

   The chunk span is 4 KB of state per chunk and is deliberately aligned
   with the block granularity that a future Immix/zone collector family
   wants to reason about (Nofl's block/line layout), which is why the
   module is exported with a first-class signature rather than kept as
   private plumbing. *)
module Page_table = struct
  let chunk_shift = 12

  let chunk_pages = 1 lsl chunk_shift

  let chunk_mask = chunk_pages - 1

  type chunk = {
    states : Bytes.t;
    flags : Page_flags.set;
    owners : int array;
  }

  let sentinel =
    {
      states = Bytes.make chunk_pages '\000';
      flags = Page_flags.create chunk_pages;
      owners = Array.make chunk_pages 0;
    }

  type t = { mutable chunks : chunk array; mutable materialized : int }

  let create () = { chunks = Array.make 1 sentinel; materialized = 0 }

  (* Total pages covered by materialised chunks — the table's actual
     memory footprint, independent of how high the page numbers go. *)
  let materialized_chunks t = t.materialized

  let[@inline] chunk_of t page =
    let c = page lsr chunk_shift in
    if c < Array.length t.chunks then Array.unsafe_get t.chunks c
    else sentinel

  let[@inline] is_materialized t page = chunk_of t page != sentinel

  let[@inline] state t page =
    Char.code (Bytes.unsafe_get (chunk_of t page).states (page land chunk_mask))

  let[@inline] owner_pid t page =
    Array.unsafe_get (chunk_of t page).owners (page land chunk_mask)

  let[@inline] flag t page bit =
    Page_flags.get (chunk_of t page).flags (page land chunk_mask) bit

  let materialize t page =
    let c = page lsr chunk_shift in
    if c >= Array.length t.chunks then begin
      let len' = max (c + 1) (2 * Array.length t.chunks) in
      let chunks' = Array.make len' sentinel in
      Array.blit t.chunks 0 chunks' 0 (Array.length t.chunks);
      t.chunks <- chunks'
    end;
    let chunk = t.chunks.(c) in
    if chunk == sentinel then begin
      let fresh =
        {
          states = Bytes.make chunk_pages '\000';
          flags = Page_flags.create chunk_pages;
          owners = Array.make chunk_pages 0;
        }
      in
      t.chunks.(c) <- fresh;
      t.materialized <- t.materialized + 1;
      fresh
    end
    else chunk

  (* Low-level mapping: stamp [page] untouched with owner [pid],
     materialising its chunk. No already-mapped check — [Vmm.map_range]
     owns validation and error wording. *)
  let map t ~page ~pid =
    let chunk = materialize t page in
    let s = page land chunk_mask in
    Bytes.unsafe_set chunk.states s (Char.unsafe_chr st_untouched);
    Array.unsafe_set chunk.owners s pid

  let iter_chunks t f =
    Array.iteri
      (fun chunk_index chunk ->
        if chunk != sentinel then f ~chunk_index chunk)
      t.chunks
end

(* pid -> process side table, chunked with the same lazy strategy (256
   pids per chunk) so thousand-process machines don't pre-size arrays. *)
let proc_shift = 8

let proc_chunk = 1 lsl proc_shift

let proc_mask = proc_chunk - 1

let no_procs : Process.t option array = Array.make proc_chunk None
(* Shared sentinel chunk of the procs table. MUST never be written. *)

type t = {
  clock : Clock.t;
  costs : Costs.t;
  swap : Swap.t;
  faults : Fault_plan.t option;
  (* notices the fault plan held back (delayed or duplicated), delivered
     at the next top-level page access *)
  pending_notices : (Fault_plan.notice * int) Queue.t;
  reclaim_batch : int;
  pt : Page_table.t;
  (* last-chunk cache for the touch fast path: [fast_ci] is the chunk
     index whose (materialised) state/flag bytes are cached below, or -1.
     Chunks are never replaced once materialised, so a cached chunk can
     never go stale; the cache only ever holds materialised chunks. *)
  mutable fast_ci : int;
  mutable fast_states : Bytes.t;
  mutable fast_flags : Page_flags.set;
  mutable procs : Process.t option array array;
  lru : Lru.t;
  mutable capacity : int;
  mutable resident : int;
  mutable pinned : int;
  mutable next_pid : int;
  stats : Vm_stats.t;
  mutable in_reclaim : bool;
  mutable delivering : bool;
  (* true iff [pending_notices] is nonempty: the touch fast path tests
     one immediate instead of poking the queue on every access *)
  mutable notices_pending : bool;
  mutable trace : Telemetry.Sink.t option;
}

(* Trace emission: with no sink attached this is one branch and a return
   — no allocation, and never a clock advance, so attaching (or not
   attaching) a sink cannot change virtual-time results. *)
let[@inline] ev t kind a b =
  match t.trace with
  | None -> ()
  | Some sink -> Telemetry.Sink.emit sink ~ts_ns:(Clock.now t.clock) kind a b

let[@inline] ev_inject t which page =
  match t.trace with
  | None -> ()
  | Some sink ->
      Telemetry.Sink.emit sink ~ts_ns:(Clock.now t.clock)
        Telemetry.Event.Fault_injected
        (Telemetry.Event.injection_code which)
        page

let create ?(costs = Costs.default) ?(reclaim_batch = 16) ?swap_capacity_pages
    ?faults ~clock ~frames () =
  if frames <= 0 then invalid_arg "Vmm.create: frames must be positive";
  {
    clock;
    costs;
    swap = Swap.create ?capacity_pages:swap_capacity_pages ?faults ();
    faults;
    pending_notices = Queue.create ();
    reclaim_batch;
    pt = Page_table.create ();
    fast_ci = -1;
    fast_states = Page_table.sentinel.Page_table.states;
    fast_flags = Page_table.sentinel.Page_table.flags;
    procs = Array.make 1 no_procs;
    lru = Lru.create ();
    capacity = frames;
    resident = 0;
    pinned = 0;
    next_pid = 1;
    stats = Vm_stats.create ();
    in_reclaim = false;
    delivering = false;
    notices_pending = false;
    trace = None;
  }

(* Attach a telemetry sink ([None] detaches). The swap device shares it so
   injected swap faults are stamped at their exact decision point. *)
let set_trace t sink = t.trace <- sink

let trace t = t.trace

let clock t = t.clock

let costs t = t.costs

let swap t = t.swap

let page_table t = t.pt

let[@inline] find_proc t pid =
  let c = pid lsr proc_shift in
  let chunk =
    if c < Array.length t.procs then Array.unsafe_get t.procs c else no_procs
  in
  Array.unsafe_get chunk (pid land proc_mask)

let create_process t ~name =
  let p = Process.create ~pid:t.next_pid ~name in
  t.next_pid <- t.next_pid + 1;
  let pid = Process.pid p in
  let c = pid lsr proc_shift in
  if c >= Array.length t.procs then begin
    let len' = max (c + 1) (2 * Array.length t.procs) in
    let procs' = Array.make len' no_procs in
    Array.blit t.procs 0 procs' 0 (Array.length t.procs);
    t.procs <- procs'
  end;
  if t.procs.(c) == no_procs then t.procs.(c) <- Array.make proc_chunk None;
  t.procs.(c).(pid land proc_mask) <- Some p;
  p

let capacity t = t.capacity

let resident_count t = t.resident

let free_frames t = t.capacity - t.resident

let pinned_count t = t.pinned

let stats t = t.stats

(* {2 Page-table accessors}

   Reads go through the chunk table and are safe for any page number:
   out-of-root or never-materialised pages read the shared sentinel
   (state unmapped, owner 0, flags clear). Writers must only run on pages
   whose chunk is materialised — which every call site guarantees by
   checking mapped-ness first (mapping materialises) — asserted below. *)

let[@inline] pstate t page = Page_table.state t.pt page

let[@inline] set_pstate t page s =
  assert (Page_table.is_materialized t.pt page);
  Bytes.unsafe_set
    (Page_table.chunk_of t.pt page).Page_table.states
    (page land Page_table.chunk_mask)
    (Char.unsafe_chr s)

let[@inline] opid t page = Page_table.owner_pid t.pt page

let[@inline] owner_proc t page =
  match find_proc t (opid t page) with Some p -> p | None -> assert false

(* [info t page = None] in the old record table meant "slot never
   mapped"; that is [owner_pid = 0] here (map_range always records an
   owner and never clears it). *)
let[@inline] ever_mapped t page = opid t page <> 0

let check_mapped t page =
  if not (ever_mapped t page) then
    invalid_arg (Printf.sprintf "Vmm: page %d is unmapped" page)

(* Per-page flag helpers over the chunked flag bytes. *)

let[@inline] fget t page bit = Page_table.flag t.pt page bit

let[@inline] fset t page bit =
  assert (Page_table.is_materialized t.pt page);
  Page_flags.set
    (Page_table.chunk_of t.pt page).Page_table.flags
    (page land Page_table.chunk_mask)
    bit

let[@inline] fclear t page bit =
  assert (Page_table.is_materialized t.pt page);
  Page_flags.clear
    (Page_table.chunk_of t.pt page).Page_table.flags
    (page land Page_table.chunk_mask)
    bit

let[@inline] fput t page bit v = if v then fset t page bit else fclear t page bit

let map_range t proc ~first_page ~npages =
  let pid = Process.pid proc in
  for p = first_page to first_page + npages - 1 do
    if pstate t p <> st_unmapped then
      invalid_arg (Printf.sprintf "Vmm.map_range: page %d already mapped" p);
    (* a reused slot keeps its residual flag bits, as the record table's
       reused pinfo did; fresh slots start all-clear *)
    Page_table.map t.pt ~page:p ~pid
  done

let owner t page =
  if ever_mapped t page && pstate t page <> st_unmapped then
    Some (owner_proc t page)
  else None

let is_resident t page = pstate t page = st_resident

let is_swapped t page = pstate t page = st_swapped

let is_protected t page = fget t page Page_flags.protected_

let is_dirty t page = fget t page Page_flags.dirty

(* Every residency transition funnels through here so the global count,
   the global gauge and the owning process's gauge stay in lock-step;
   [Vm_stats.resident_pages] is what surfaces per-process residency to
   the harness without an O(pages) scan. *)
let note_residency t page delta =
  t.resident <- t.resident + delta;
  Vm_stats.add_resident t.stats delta;
  Vm_stats.add_resident (Process.stats (owner_proc t page)) delta

(* Drop a page's frame without writeback. The page must be resident and
   unpinned. *)
let release_frame t page =
  ignore (Lru.remove_if_present t.lru page : bool);
  set_pstate t page st_untouched;
  fclear t page Page_flags.dirty;
  fclear t page Page_flags.in_swap;
  fclear t page Page_flags.surrendered;
  note_residency t page (-1)

(* Attempt the swap write behind an eviction, with bounded
   retry-with-backoff on transient I/O errors. Returns false when the
   device is full or the error persisted past the retry budget. *)
let swap_write_retrying t page =
  let max_attempts = 8 in
  let rec go attempt =
    match Swap.write t.swap page with
    | () -> true
    | exception Swap.Io_error ->
        ev_inject t Telemetry.Event.Swap_write_error page;
        t.stats.Vm_stats.swap_retries <- t.stats.Vm_stats.swap_retries + 1;
        (* linear backoff: each retry waits one more write-slot *)
        Clock.advance t.clock (attempt * t.costs.Costs.swap_write_ns);
        if attempt >= max_attempts then false else go (attempt + 1)
    | exception Swap.Full ->
        ev_inject t Telemetry.Event.Swap_full page;
        t.stats.Vm_stats.swap_stalls <- t.stats.Vm_stats.swap_stalls + 1;
        false
  in
  go 1

(* Write a resident, unlisted page out to swap. Returns false — leaving
   the page resident, back on the active list — when the swap device
   refuses the write; the reclaim loop then moves on to other victims. *)
let swap_out t page =
  assert (pstate t page = st_resident && not (fget t page Page_flags.pinned));
  let wrote =
    if fget t page Page_flags.dirty || not (fget t page Page_flags.in_swap)
    then begin
      if swap_write_retrying t page then begin
        let pstats = Process.stats (owner_proc t page) in
        Clock.advance t.clock t.costs.Costs.swap_write_ns;
        ev t Telemetry.Event.Swap_write page (Process.pid (owner_proc t page));
        t.stats.Vm_stats.swap_outs <- t.stats.Vm_stats.swap_outs + 1;
        pstats.Vm_stats.swap_outs <- pstats.Vm_stats.swap_outs + 1;
        fset t page Page_flags.in_swap;
        true
      end
      else false
    end
    else true
  in
  if wrote then begin
    set_pstate t page st_swapped;
    fclear t page Page_flags.dirty;
    fclear t page Page_flags.surrendered;
    fclear t page Page_flags.referenced;
    note_residency t page (-1);
    ev t Telemetry.Event.Eviction page (Process.pid (owner_proc t page));
    t.stats.Vm_stats.evictions <- t.stats.Vm_stats.evictions + 1;
    let pstats = Process.stats (owner_proc t page) in
    pstats.Vm_stats.evictions <- pstats.Vm_stats.evictions + 1;
    true
  end
  else begin
    (* eviction failed: the page stays resident and re-enters the LRU so
       a later pass can retry once the device recovers *)
    fclear t page Page_flags.referenced;
    fclear t page Page_flags.surrendered;
    if Lru.membership t.lru page = None then Lru.push_active_head t.lru page;
    false
  end

(* Deliver a pre-eviction notice now, counting it as delivered. *)
let deliver_eviction_notice t h victim =
  ev t Telemetry.Event.Eviction_notice victim
    (Process.pid (owner_proc t victim));
  t.stats.Vm_stats.eviction_notices <- t.stats.Vm_stats.eviction_notices + 1;
  let pstats = Process.stats (owner_proc t victim) in
  pstats.Vm_stats.eviction_notices <- pstats.Vm_stats.eviction_notices + 1;
  h.Process.on_eviction_notice victim

(* Route a notice through the fault plan: deliver it, drop it, queue it
   for late delivery, or deliver now and again later. [deliver] performs
   the immediate delivery (and its accounting). *)
let route_notice t kind page deliver =
  let decision =
    match t.faults with
    | None -> Fault_plan.Deliver
    | Some plan -> Fault_plan.on_notice plan kind
  in
  match decision with
  | Fault_plan.Deliver -> deliver ()
  | Fault_plan.Drop ->
      ev_inject t
        (match kind with
        | Fault_plan.Eviction -> Telemetry.Event.Dropped_eviction
        | Fault_plan.Resident -> Telemetry.Event.Dropped_resident)
        page
  | Fault_plan.Delay ->
      ev_inject t Telemetry.Event.Delayed_notice page;
      Queue.add (kind, page) t.pending_notices;
      t.notices_pending <- true;
      (* the touch fast path has no pending-notices test: it relies on a
         raised flag invalidating the chunk cache (see [touch]) *)
      t.fast_ci <- -1
  | Fault_plan.Duplicate ->
      ev_inject t Telemetry.Event.Duplicated_notice page;
      deliver ();
      Queue.add (kind, page) t.pending_notices;
      t.notices_pending <- true;
      t.fast_ci <- -1

(* Move up to [n] pages from the active tail into the inactive list,
   giving referenced pages a second chance. Returns how many moved. *)
let refill_inactive t n =
  let moved = ref 0 in
  let attempts = ref 0 in
  let budget = (2 * Lru.active_size t.lru) + 2 in
  while !moved < n && !attempts < budget do
    incr attempts;
    match Lru.active_tail t.lru with
    | None -> attempts := budget
    | Some page ->
        check_mapped t page;
        Lru.remove t.lru page;
        if fget t page Page_flags.referenced then begin
          fclear t page Page_flags.referenced;
          Lru.push_active_head t.lru page
        end
        else begin
          Lru.push_inactive_head t.lru page;
          incr moved
        end
  done;
  !moved

(* Reclaim frames until [free_frames t >= target], raising only when even
   [required] frames cannot be freed (the batch beyond [required] is
   opportunistic clustering). Delivers pre-eviction notices to registered
   owners; handlers may veto (touch), discard (madvise) or surrender
   (vm_relinquish) pages, all of which this loop observes. *)
let reclaim t ~required ~target =
  if t.in_reclaim then ()
  else begin
    t.in_reclaim <- true;
    Fun.protect ~finally:(fun () -> t.in_reclaim <- false) @@ fun () ->
    let budget =
      (4 * (Lru.active_size t.lru + Lru.inactive_size t.lru)) + 64
    in
    let scanned = ref 0 in
    while free_frames t < target && !scanned < budget do
      incr scanned;
      if Lru.inactive_size t.lru = 0 then begin
        if refill_inactive t t.reclaim_batch = 0 then
          raise
            (Thrashing
               (Printf.sprintf
                  "need %d free frames but all %d resident pages are pinned \
                   or unreclaimable"
                  target t.resident))
      end
      else begin
        match Lru.inactive_tail t.lru with
        | None -> ()
        | Some victim ->
            check_mapped t victim;
            Lru.remove t.lru victim;
            if fget t victim Page_flags.referenced then begin
              (* second chance; a touch also cancels a pending surrender
                 (the page's owner was already told it reloaded) *)
              fclear t victim Page_flags.referenced;
              fclear t victim Page_flags.surrendered;
              Lru.push_active_head t.lru victim
            end
            else if fget t victim Page_flags.surrendered then
              ignore (swap_out t victim)
            else begin
              (* Pre-eviction notice: the page is still resident and its
                 owner may react before the PTE is unmapped. Only
                 registered owners receive (and are billed for) one; the
                 fault plan may lose or hold the signal, in which case the
                 eviction proceeds as if the owner stayed silent. *)
              (match Process.handlers (owner_proc t victim) with
              | Some h ->
                  route_notice t Fault_plan.Eviction victim (fun () ->
                      deliver_eviction_notice t h victim)
              | None -> ());
              if Lru.membership t.lru victim <> None then
                (* handler repositioned the page (vm_relinquish) *)
                ()
              else if pstate t victim <> st_resident then
                (* handler discarded it *)
                ()
              else if
                free_frames t >= target || fget t victim Page_flags.referenced
              then begin
                (* pressure relieved, or the owner vetoed by touching *)
                fclear t victim Page_flags.referenced;
                Lru.push_active_head t.lru victim
              end
              else ignore (swap_out t victim)
            end
      end
    done;
    (* Desperation: the cooperative pass failed (every candidate vetoed or
       re-referenced). A real kernel overrides user hints under severe
       pressure: evict the coldest unpinned pages without notices. *)
    if free_frames t < required then begin
      (* A failed swap write re-queues the victim, so bound the number of
         attempts or a permanently full device would spin forever. *)
      let attempts = ref 0 in
      let max_attempts = (2 * t.resident) + 16 in
      let steal tail remove =
        while
          free_frames t < required && !attempts < max_attempts
          && tail () <> None
        do
          match tail () with
          | None -> ()
          | Some victim ->
              incr attempts;
              check_mapped t victim;
              remove victim;
              fclear t victim Page_flags.referenced;
              if swap_out t victim then begin
                ev t Telemetry.Event.Forced_eviction victim
                  (Process.pid (owner_proc t victim));
                t.stats.Vm_stats.forced_evictions <-
                  t.stats.Vm_stats.forced_evictions + 1;
                let pstats = Process.stats (owner_proc t victim) in
                pstats.Vm_stats.forced_evictions <-
                  pstats.Vm_stats.forced_evictions + 1
              end
        done
      in
      steal (fun () -> Lru.inactive_tail t.lru) (Lru.remove t.lru);
      steal (fun () -> Lru.active_tail t.lru) (Lru.remove t.lru)
    end;
    if free_frames t < required then
      raise
        (Thrashing
           (Printf.sprintf "reclaim gave up: %d free of %d required"
              (free_frames t) required));
    ev t Telemetry.Event.Gauge_resident t.resident (free_frames t)
  end

(* Make room for one more resident page, freeing a cluster when memory is
   tight so availability moves in batches. *)
let ensure_frame t =
  if free_frames t < 1 then
    reclaim t ~required:1
      ~target:(min t.reclaim_batch (max 1 (t.capacity - t.pinned)))

let count_fault t page ~major =
  let pstats = Process.stats (owner_proc t page) in
  if major then begin
    t.stats.Vm_stats.major_faults <- t.stats.Vm_stats.major_faults + 1;
    pstats.Vm_stats.major_faults <- pstats.Vm_stats.major_faults + 1;
    t.stats.Vm_stats.swap_ins <- t.stats.Vm_stats.swap_ins + 1;
    pstats.Vm_stats.swap_ins <- pstats.Vm_stats.swap_ins + 1
  end
  else begin
    t.stats.Vm_stats.minor_faults <- t.stats.Vm_stats.minor_faults + 1;
    pstats.Vm_stats.minor_faults <- pstats.Vm_stats.minor_faults + 1
  end

let deliver_protection_fault t page =
  Clock.advance t.clock t.costs.Costs.protection_fault_ns;
  ev t Telemetry.Event.Protection_fault page (Process.pid (owner_proc t page));
  t.stats.Vm_stats.protection_faults <- t.stats.Vm_stats.protection_faults + 1;
  let pstats = Process.stats (owner_proc t page) in
  pstats.Vm_stats.protection_faults <- pstats.Vm_stats.protection_faults + 1;
  match Process.handlers (owner_proc t page) with
  | Some h -> h.Process.on_protection_fault page
  | None -> fclear t page Page_flags.protected_

(* Read the page's swap copy, retrying past injected transient errors.
   The fault plan bounds consecutive read errors, so the retry budget is
   never exhausted by injection alone. *)
let swap_read_retrying t page =
  let max_attempts = 6 in
  let rec go attempt =
    match Swap.read t.swap page with
    | () -> ()
    | exception Swap.Io_error ->
        ev_inject t Telemetry.Event.Swap_read_error page;
        t.stats.Vm_stats.swap_retries <- t.stats.Vm_stats.swap_retries + 1;
        Clock.advance t.clock (attempt * t.costs.Costs.swap_write_ns);
        if attempt >= max_attempts then
          raise
            (Thrashing
               (Printf.sprintf "swap read of page %d failed %d times" page
                  max_attempts))
        else go (attempt + 1)
  in
  go 1

(* The touch slow path: everything except an unprotected resident hit. *)
let rec do_touch t ~write page =
  let s = pstate t page in
  if s = st_resident then begin
    fset t page Page_flags.referenced;
    if write then fset t page Page_flags.dirty;
    if fget t page Page_flags.protected_ then begin
      deliver_protection_fault t page;
      (* retry the access if the handler unprotected the page; if it did
         not, the access proceeds anyway (the handler owns the policy) *)
      if not (fget t page Page_flags.protected_) then do_touch t ~write page
    end
  end
  else if s = st_untouched then begin
    Clock.advance t.clock t.costs.Costs.minor_fault_ns;
    ev t Telemetry.Event.Minor_fault page (Process.pid (owner_proc t page));
    count_fault t page ~major:false;
    ensure_frame t;
    set_pstate t page st_resident;
    fset t page Page_flags.referenced;
    fput t page Page_flags.dirty write;
    note_residency t page 1;
    if not (fget t page Page_flags.pinned) then Lru.push_active_head t.lru page
  end
  else if s = st_swapped then begin
    swap_read_retrying t page;
    Clock.advance t.clock t.costs.Costs.major_fault_ns;
    ev t Telemetry.Event.Swap_read page (Process.pid (owner_proc t page));
    ev t Telemetry.Event.Major_fault page (Process.pid (owner_proc t page));
    count_fault t page ~major:true;
    ensure_frame t;
    set_pstate t page st_resident;
    fset t page Page_flags.referenced;
    fput t page Page_flags.dirty write;
    fclear t page Page_flags.surrendered;
    note_residency t page 1;
    if not (fget t page Page_flags.pinned) then Lru.push_active_head t.lru page;
    (* made-resident notice (the fault plan may lose it — the
       protection upcall below is the reliable backstop), then any
       protection upcall *)
    (match Process.handlers (owner_proc t page) with
    | Some h ->
        route_notice t Fault_plan.Resident page (fun () ->
            ev t Telemetry.Event.Made_resident page
              (Process.pid (owner_proc t page));
            h.Process.on_resident page)
    | None -> ());
    if fget t page Page_flags.protected_ then deliver_protection_fault t page
  end
  else if opid t page = 0 then
    invalid_arg (Printf.sprintf "Vmm: page %d is unmapped" page)
  else invalid_arg (Printf.sprintf "Vmm.touch: page %d unmapped" page)

(* Late delivery of notices the fault plan held back. Notices for pages
   that have since been unmapped, or whose owner unregistered, are
   quietly discarded; everything else is delivered as-is — possibly
   stale, possibly a duplicate — which is exactly the unreliability the
   consumers must tolerate. *)
let flush_pending_notices t =
  if
    (not t.delivering) && (not t.in_reclaim)
    && not (Queue.is_empty t.pending_notices)
  then begin
    t.delivering <- true;
    Fun.protect ~finally:(fun () -> t.delivering <- false) @@ fun () ->
    let items = List.of_seq (Queue.to_seq t.pending_notices) in
    Queue.clear t.pending_notices;
    (* handlers below may enqueue fresh notices, which re-raise the flag *)
    t.notices_pending <- false;
    let items =
      match t.faults with
      | Some plan when Fault_plan.reorder_pending plan ->
          ev_inject t Telemetry.Event.Reordered_flush 0;
          List.rev items
      | Some _ | None -> items
    in
    List.iter
      (fun (kind, page) ->
        if ever_mapped t page && pstate t page <> st_unmapped then
          match Process.handlers (owner_proc t page) with
          | Some h -> (
              match kind with
              | Fault_plan.Eviction -> deliver_eviction_notice t h page
              | Fault_plan.Resident ->
                  ev t Telemetry.Event.Made_resident page
                    (Process.pid (owner_proc t page));
                  h.Process.on_resident page)
          | None -> ())
      items
  end

(* The fast path below hard-codes the Page_flags bit layout: dev-profile
   builds pass -opaque, which turns Page_flags accessors into real calls
   and its constants into module-block loads, so going through the module
   would put two calls and a stack frame on the hottest loop in the
   simulator. Verified against the real layout at module init. *)
let () =
  assert (
    Page_flags.referenced = 2 && Page_flags.dirty = 1
    && Page_flags.protected_ = 4)

(* Chunk-cache miss: flush any pending notices (a raised flag always
   invalidates the cache — see [route_notice] — so a cache hit implies no
   pending notices and the fast path below carries no notices test at
   all), install the page's chunk and take one touch step on it. Only
   materialised chunks are ever cached — a materialised chunk is never
   replaced, so the cached bytes cannot go stale. A sentinel
   (never-mapped) chunk means the page was never mapped.

   The single touch step is taken directly on the chunk rather than by
   retrying through the cache: a flush may itself enqueue fresh notices
   (re-invalidating the cache), and the historical semantics flush at
   most once per touch. For the same reason the cache is only installed
   when the flush left nothing pending. *)
let touch_miss t ~write page =
  if t.notices_pending then flush_pending_notices t;
  let chunk = Page_table.chunk_of t.pt page in
  if chunk != Page_table.sentinel then begin
    let states = chunk.Page_table.states
    and flags = chunk.Page_table.flags in
    if not t.notices_pending then begin
      t.fast_ci <- page lsr Page_table.chunk_shift;
      t.fast_states <- states;
      t.fast_flags <- flags
    end;
    let s = page land Page_table.chunk_mask in
    if Char.code (Bytes.get states s) = st_resident then begin
      let f = Char.code (Bytes.get flags s) in
      if f land 4 (* protected_ *) = 0 then
        Bytes.set flags s
          (Char.unsafe_chr
             (f lor if write then 3 (* referenced+dirty *) else 2))
      else do_touch t ~write page
    end
    else do_touch t ~write page
  end
  else invalid_arg (Printf.sprintf "Vmm: page %d is unmapped" page)

(* The hot path of the whole simulator: every simulated byte the mutator
   or a collector touches lands here. The fast path — page in the cached
   chunk, resident, unprotected — is a shift + compare against the
   cached chunk index, one state-byte load and one flag-byte
   read-modify-write. There is no pending-notices test: enqueuing a
   notice invalidates the chunk cache, so a hit proves the queue is
   empty and [touch_miss] flushes on the way back in. A chunk-cache miss
   refreshes the cache through [touch_miss] and everything else drops to
   [do_touch].

   Negative pages cannot false-hit the cache: [page lsr chunk_shift] on a
   negative argument yields a huge positive index far above any chunk the
   root array could hold, so the compare fails and [touch_miss] reports
   the page unmapped, preserving the error wording. *)
let touch t ?(write = false) page =
  if page lsr Page_table.chunk_shift = t.fast_ci then begin
    let s = page land Page_table.chunk_mask in
    if Char.code (Bytes.unsafe_get t.fast_states s) = st_resident then begin
      let f = Char.code (Bytes.unsafe_get t.fast_flags s) in
      if f land 4 (* protected_ *) = 0 then
        Bytes.unsafe_set t.fast_flags s
          (Char.unsafe_chr
             (f lor if write then 3 (* referenced+dirty *) else 2))
      else do_touch t ~write page
    end
    else do_touch t ~write page
  end
  else touch_miss t ~write page

(* {2 Batched spans and the event-skipping clock}

   [touch_span] is defined as exactly equivalent to

     for page = first_page to first_page + npages - 1 do
       Clock.advance clock cost_ns; touch t ~write page
     done

   and the equivalence is what makes the skipping invisible: a resident,
   unprotected touch takes the fast path above, which emits no events,
   delivers no notices and never advances the clock — so a run of such
   touches commutes with its own clock advances. The batched form ORs the
   flag bits per page (the only observable effect) and fast-forwards the
   clock once by run_length * cost_ns ([Clock.skip]); the first page that
   is faulting, protected, swapped or outside a materialised chunk falls
   back to one per-page step, where faults interleave with clock advances
   exactly as in the sequential definition. Pending notices are flushed at
   the same points a per-page loop would flush them: resident fast-path
   touches never enqueue notices, so the flag can only be raised by a
   slow page — after which the loop re-checks per page.

   [set_span_skipping false] forces the literal per-page loop; the
   determinism test compares traces produced both ways byte-for-byte. *)

(* Atomic, not a plain ref: the harness's domain-pool backend runs
   machines concurrently in one process, and this is process-wide mode
   state every machine reads on the touch_span hot path. It is toggled
   only while machines are quiescent (the determinism test), so a
   sequentially-consistent read costs nothing measurable against the
   span bookkeeping around it. *)
let span_skipping = Atomic.make true

let set_span_skipping b = Atomic.set span_skipping b

let span_skipping_enabled () = Atomic.get span_skipping

let touch_span t ?(write = false) ?(cost_ns = 0) ~first_page npages =
  if not (Atomic.get span_skipping) then
    for page = first_page to first_page + npages - 1 do
      if cost_ns > 0 then Clock.advance t.clock cost_ns;
      touch t ~write page
    done
  else begin
    let last = first_page + npages - 1 in
    let p = ref first_page in
    while !p <= last do
      if t.notices_pending then begin
        (* a slow page enqueued notices: take the literal per-page step so
           the flush happens exactly where the sequential loop flushes *)
        if cost_ns > 0 then Clock.advance t.clock cost_ns;
        touch t ~write !p;
        incr p
      end
      else begin
        let page = !p in
        let chunk = Page_table.chunk_of t.pt page in
        if chunk == Page_table.sentinel then begin
          (* never-mapped chunk: the per-page step raises, as touch would *)
          if cost_ns > 0 then Clock.advance t.clock cost_ns;
          touch t ~write page;
          incr p
        end
        else begin
          let states = chunk.Page_table.states
          and flags = chunk.Page_table.flags in
          let s0 = page land Page_table.chunk_mask in
          let smax =
            min (Page_table.chunk_mask) (s0 + (last - page))
          in
          let orbits = if write then 3 (* referenced+dirty *) else 2 in
          (* extend the resident, unprotected run as far as it reaches *)
          let s = ref s0 in
          let running = ref true in
          while !running && !s <= smax do
            if Char.code (Bytes.unsafe_get states !s) = st_resident then begin
              let f = Char.code (Bytes.unsafe_get flags !s) in
              if f land 4 (* protected_ *) = 0 then begin
                Bytes.unsafe_set flags !s (Char.unsafe_chr (f lor orbits));
                incr s
              end
              else running := false
            end
            else running := false
          done;
          let run = !s - s0 in
          if run > 0 && cost_ns > 0 then
            Clock.skip t.clock ~events:run ~cost_ns;
          p := page + run;
          if !s <= smax then begin
            (* the run stopped on a slow page still inside the span *)
            if cost_ns > 0 then Clock.advance t.clock cost_ns;
            touch t ~write !p;
            incr p
          end
        end
      end
    done
  end

let unmap_range t ~first_page ~npages =
  for p = first_page to first_page + npages - 1 do
    if ever_mapped t p then begin
      if pstate t p = st_resident then begin
        if fget t p Page_flags.pinned then begin
          fclear t p Page_flags.pinned;
          t.pinned <- t.pinned - 1;
          note_residency t p (-1)
        end
        else release_frame t p
      end;
      Swap.drop t.swap p;
      set_pstate t p st_unmapped;
      fclear t p Page_flags.in_swap;
      fclear t p Page_flags.protected_
    end
  done

let madvise_dontneed t page =
  if ever_mapped t page then begin
    Clock.advance t.clock t.costs.Costs.syscall_ns;
    let s = pstate t page in
    if s = st_resident then begin
      if fget t page Page_flags.pinned then
        invalid_arg "Vmm.madvise_dontneed: page is pinned";
      release_frame t page;
      ev t Telemetry.Event.Discard page (Process.pid (owner_proc t page));
      t.stats.Vm_stats.discards <- t.stats.Vm_stats.discards + 1;
      let pstats = Process.stats (owner_proc t page) in
      pstats.Vm_stats.discards <- pstats.Vm_stats.discards + 1
    end
    else if s = st_swapped then begin
      Swap.drop t.swap page;
      set_pstate t page st_untouched;
      fclear t page Page_flags.in_swap;
      fclear t page Page_flags.dirty;
      ev t Telemetry.Event.Discard page (Process.pid (owner_proc t page));
      t.stats.Vm_stats.discards <- t.stats.Vm_stats.discards + 1;
      let pstats = Process.stats (owner_proc t page) in
      pstats.Vm_stats.discards <- pstats.Vm_stats.discards + 1
    end
  end

let vm_relinquish t pages =
  Clock.advance t.clock t.costs.Costs.syscall_ns;
  List.iter
    (fun page ->
      if
        ever_mapped t page
        && pstate t page = st_resident
        && not (fget t page Page_flags.pinned)
      then begin
        fclear t page Page_flags.referenced;
        fset t page Page_flags.surrendered;
        ignore (Lru.remove_if_present t.lru page : bool);
        Lru.push_inactive_tail t.lru page;
        ev t Telemetry.Event.Relinquish page (Process.pid (owner_proc t page));
        t.stats.Vm_stats.relinquished <- t.stats.Vm_stats.relinquished + 1;
        let pstats = Process.stats (owner_proc t page) in
        pstats.Vm_stats.relinquished <- pstats.Vm_stats.relinquished + 1
      end)
    pages

let mprotect t page ~protect =
  Clock.advance t.clock t.costs.Costs.syscall_ns;
  check_mapped t page;
  fput t page Page_flags.protected_ protect

let mlock t page =
  check_mapped t page;
  (* locking must not fire protection upcalls; lock the raw frame *)
  if pstate t page <> st_resident then touch t ~write:false page;
  if not (fget t page Page_flags.pinned) then begin
    fset t page Page_flags.pinned;
    t.pinned <- t.pinned + 1;
    ignore (Lru.remove_if_present t.lru page : bool)
  end

let munlock t page =
  check_mapped t page;
  if fget t page Page_flags.pinned then begin
    fclear t page Page_flags.pinned;
    t.pinned <- t.pinned - 1;
    if pstate t page = st_resident then Lru.push_active_head t.lru page
  end

let set_capacity t frames =
  if frames <= 0 then invalid_arg "Vmm.set_capacity";
  t.capacity <- frames;
  if free_frames t < 0 then reclaim t ~required:0 ~target:0

let coldest_pages t ~owner ~n =
  let pid = Process.pid owner in
  let acc = ref [] in
  let count = ref 0 in
  let consider page =
    if !count < n && opid t page = pid then begin
      acc := page :: !acc;
      incr count
    end
  in
  Lru.iter_inactive_from_tail t.lru consider;
  Lru.iter_active_from_tail t.lru consider;
  List.rev !acc

let pending_notice_count t = Queue.length t.pending_notices

(* O(materialised pages) scan, kept as the debug cross-check for the
   gauge below. Only materialised chunks are visited, so the scan stays
   proportional to touched pages even on 2^30-page address spaces. *)
let debug_count_resident_owned t proc =
  let pid = Process.pid proc in
  let n = ref 0 in
  Page_table.iter_chunks t.pt (fun ~chunk_index:_ chunk ->
      for s = 0 to Page_table.chunk_pages - 1 do
        if
          Char.code (Bytes.unsafe_get chunk.Page_table.states s) = st_resident
          && Array.unsafe_get chunk.Page_table.owners s = pid
        then incr n
      done);
  !n

(* Per-process residency is maintained incrementally by [note_residency],
   so this is a gauge read; the materialised-chunk scan survives only as
   an assertion (compiled out with -noassert). *)
let count_resident_owned t proc =
  let n = (Process.stats proc).Vm_stats.resident_pages in
  assert (n = debug_count_resident_owned t proc);
  n

exception Thrashing of string

module Fault_plan = Faults.Fault_plan

(* Page states, one byte per page in the struct-of-arrays table. *)
let st_unmapped = 0

let st_untouched = 1

let st_resident = 2

let st_swapped = 3

(* The page table is struct-of-arrays: a state byte, a packed flag byte
   (Page_flags) and an owner pid per page, sized together. The touch
   fast path then reads two bytes and writes one instead of chasing a
   boxed record through an option. [owner_pid] doubles as the "was this
   page ever mapped" bit: 0 means the slot has never been used (the old
   table's [None]), while an unmapped-after-use page keeps its last
   owner with state [st_unmapped] — exactly the distinction the record
   table made, so error paths and syscall accounting are unchanged. *)
type t = {
  clock : Clock.t;
  costs : Costs.t;
  swap : Swap.t;
  faults : Fault_plan.t option;
  (* notices the fault plan held back (delayed or duplicated), delivered
     at the next top-level page access *)
  pending_notices : (Fault_plan.notice * int) Queue.t;
  reclaim_batch : int;
  mutable table_len : int;
  mutable state : Bytes.t;
  mutable flags : Page_flags.set;
  mutable owner_pid : int array;
  (* pid -> process side table; pids are dense from 1 *)
  mutable procs : Process.t option array;
  lru : Lru.t;
  mutable capacity : int;
  mutable resident : int;
  mutable pinned : int;
  mutable next_pid : int;
  stats : Vm_stats.t;
  mutable in_reclaim : bool;
  mutable delivering : bool;
  (* true iff [pending_notices] is nonempty: the touch fast path tests
     one immediate instead of poking the queue on every access *)
  mutable notices_pending : bool;
  mutable trace : Telemetry.Sink.t option;
}

(* Trace emission: with no sink attached this is one branch and a return
   — no allocation, and never a clock advance, so attaching (or not
   attaching) a sink cannot change virtual-time results. *)
let[@inline] ev t kind a b =
  match t.trace with
  | None -> ()
  | Some sink -> Telemetry.Sink.emit sink ~ts_ns:(Clock.now t.clock) kind a b

let[@inline] ev_inject t which page =
  match t.trace with
  | None -> ()
  | Some sink ->
      Telemetry.Sink.emit sink ~ts_ns:(Clock.now t.clock)
        Telemetry.Event.Fault_injected
        (Telemetry.Event.injection_code which)
        page

let create ?(costs = Costs.default) ?(reclaim_batch = 16) ?swap_capacity_pages
    ?faults ~clock ~frames () =
  if frames <= 0 then invalid_arg "Vmm.create: frames must be positive";
  {
    clock;
    costs;
    swap = Swap.create ?capacity_pages:swap_capacity_pages ?faults ();
    faults;
    pending_notices = Queue.create ();
    reclaim_batch;
    table_len = 256;
    state = Bytes.make 256 '\000';
    flags = Page_flags.create 256;
    owner_pid = Array.make 256 0;
    procs = Array.make 16 None;
    lru = Lru.create ();
    capacity = frames;
    resident = 0;
    pinned = 0;
    next_pid = 1;
    stats = Vm_stats.create ();
    in_reclaim = false;
    delivering = false;
    notices_pending = false;
    trace = None;
  }

(* Attach a telemetry sink ([None] detaches). The swap device shares it so
   injected swap faults are stamped at their exact decision point. *)
let set_trace t sink = t.trace <- sink

let trace t = t.trace

let clock t = t.clock

let costs t = t.costs

let swap t = t.swap

let create_process t ~name =
  let p = Process.create ~pid:t.next_pid ~name in
  t.next_pid <- t.next_pid + 1;
  let pid = Process.pid p in
  if pid >= Array.length t.procs then begin
    let procs' = Array.make (max (pid + 1) (2 * Array.length t.procs)) None in
    Array.blit t.procs 0 procs' 0 (Array.length t.procs);
    t.procs <- procs'
  end;
  t.procs.(pid) <- Some p;
  p

let capacity t = t.capacity

let resident_count t = t.resident

let free_frames t = t.capacity - t.resident

let pinned_count t = t.pinned

let stats t = t.stats

(* {2 Struct-of-arrays accessors}

   All unsafe accesses are behind an explicit bounds check: every entry
   point either checks [page < t.table_len] itself or reaches the page
   through the LRU lists, whose members are always in-table. *)

let[@inline] pstate t page = Char.code (Bytes.unsafe_get t.state page)

let[@inline] set_pstate t page s =
  Bytes.unsafe_set t.state page (Char.unsafe_chr s)

let[@inline] opid t page = Array.unsafe_get t.owner_pid page

let[@inline] owner_proc t page =
  match t.procs.(opid t page) with Some p -> p | None -> assert false

(* [info t page = None] in the record table meant "slot never mapped";
   that is [opid = 0] here (map_range always records an owner and never
   clears it). *)
let[@inline] in_table t page = page >= 0 && page < t.table_len

let[@inline] ever_mapped t page = in_table t page && opid t page <> 0

let check_mapped t page =
  if not (ever_mapped t page) then
    invalid_arg (Printf.sprintf "Vmm: page %d is unmapped" page)

let ensure_table t page =
  if page >= t.table_len then begin
    let cap' = max (page + 1) (t.table_len * 2) in
    let state' = Bytes.make cap' '\000' in
    Bytes.blit t.state 0 state' 0 t.table_len;
    t.state <- state';
    t.flags <- Page_flags.grow t.flags cap';
    let owner' = Array.make cap' 0 in
    Array.blit t.owner_pid 0 owner' 0 t.table_len;
    t.owner_pid <- owner';
    t.table_len <- cap'
  end

let map_range t proc ~first_page ~npages =
  ensure_table t (first_page + npages - 1);
  let pid = Process.pid proc in
  for p = first_page to first_page + npages - 1 do
    if pstate t p <> st_unmapped then
      invalid_arg (Printf.sprintf "Vmm.map_range: page %d already mapped" p);
    (* a reused slot keeps its residual flag bits, as the record table's
       reused pinfo did; fresh slots start all-clear *)
    set_pstate t p st_untouched;
    Array.unsafe_set t.owner_pid p pid
  done

let owner t page =
  if ever_mapped t page && pstate t page <> st_unmapped then
    Some (owner_proc t page)
  else None

let is_resident t page = in_table t page && pstate t page = st_resident

let is_swapped t page = in_table t page && pstate t page = st_swapped

let is_protected t page =
  in_table t page && Page_flags.get t.flags page Page_flags.protected_

let is_dirty t page =
  in_table t page && Page_flags.get t.flags page Page_flags.dirty

(* Every residency transition funnels through here so the global count,
   the global gauge and the owning process's gauge stay in lock-step;
   [Vm_stats.resident_pages] is what surfaces per-process residency to
   the harness without an O(pages) scan. *)
let note_residency t page delta =
  t.resident <- t.resident + delta;
  Vm_stats.add_resident t.stats delta;
  Vm_stats.add_resident (Process.stats (owner_proc t page)) delta

(* Drop a page's frame without writeback. The page must be resident and
   unpinned. *)
let release_frame t page =
  ignore (Lru.remove_if_present t.lru page : bool);
  set_pstate t page st_untouched;
  Page_flags.clear t.flags page Page_flags.dirty;
  Page_flags.clear t.flags page Page_flags.in_swap;
  Page_flags.clear t.flags page Page_flags.surrendered;
  note_residency t page (-1)

(* Attempt the swap write behind an eviction, with bounded
   retry-with-backoff on transient I/O errors. Returns false when the
   device is full or the error persisted past the retry budget. *)
let swap_write_retrying t page =
  let max_attempts = 8 in
  let rec go attempt =
    match Swap.write t.swap page with
    | () -> true
    | exception Swap.Io_error ->
        ev_inject t Telemetry.Event.Swap_write_error page;
        t.stats.Vm_stats.swap_retries <- t.stats.Vm_stats.swap_retries + 1;
        (* linear backoff: each retry waits one more write-slot *)
        Clock.advance t.clock (attempt * t.costs.Costs.swap_write_ns);
        if attempt >= max_attempts then false else go (attempt + 1)
    | exception Swap.Full ->
        ev_inject t Telemetry.Event.Swap_full page;
        t.stats.Vm_stats.swap_stalls <- t.stats.Vm_stats.swap_stalls + 1;
        false
  in
  go 1

(* Write a resident, unlisted page out to swap. Returns false — leaving
   the page resident, back on the active list — when the swap device
   refuses the write; the reclaim loop then moves on to other victims. *)
let swap_out t page =
  assert (
    pstate t page = st_resident
    && not (Page_flags.get t.flags page Page_flags.pinned));
  let wrote =
    if
      Page_flags.get t.flags page Page_flags.dirty
      || not (Page_flags.get t.flags page Page_flags.in_swap)
    then begin
      if swap_write_retrying t page then begin
        let pstats = Process.stats (owner_proc t page) in
        Clock.advance t.clock t.costs.Costs.swap_write_ns;
        ev t Telemetry.Event.Swap_write page (Process.pid (owner_proc t page));
        t.stats.Vm_stats.swap_outs <- t.stats.Vm_stats.swap_outs + 1;
        pstats.Vm_stats.swap_outs <- pstats.Vm_stats.swap_outs + 1;
        Page_flags.set t.flags page Page_flags.in_swap;
        true
      end
      else false
    end
    else true
  in
  if wrote then begin
    set_pstate t page st_swapped;
    Page_flags.clear t.flags page Page_flags.dirty;
    Page_flags.clear t.flags page Page_flags.surrendered;
    Page_flags.clear t.flags page Page_flags.referenced;
    note_residency t page (-1);
    ev t Telemetry.Event.Eviction page (Process.pid (owner_proc t page));
    t.stats.Vm_stats.evictions <- t.stats.Vm_stats.evictions + 1;
    let pstats = Process.stats (owner_proc t page) in
    pstats.Vm_stats.evictions <- pstats.Vm_stats.evictions + 1;
    true
  end
  else begin
    (* eviction failed: the page stays resident and re-enters the LRU so
       a later pass can retry once the device recovers *)
    Page_flags.clear t.flags page Page_flags.referenced;
    Page_flags.clear t.flags page Page_flags.surrendered;
    if Lru.membership t.lru page = None then Lru.push_active_head t.lru page;
    false
  end

(* Deliver a pre-eviction notice now, counting it as delivered. *)
let deliver_eviction_notice t h victim =
  ev t Telemetry.Event.Eviction_notice victim
    (Process.pid (owner_proc t victim));
  t.stats.Vm_stats.eviction_notices <- t.stats.Vm_stats.eviction_notices + 1;
  let pstats = Process.stats (owner_proc t victim) in
  pstats.Vm_stats.eviction_notices <- pstats.Vm_stats.eviction_notices + 1;
  h.Process.on_eviction_notice victim

(* Route a notice through the fault plan: deliver it, drop it, queue it
   for late delivery, or deliver now and again later. [deliver] performs
   the immediate delivery (and its accounting). *)
let route_notice t kind page deliver =
  let decision =
    match t.faults with
    | None -> Fault_plan.Deliver
    | Some plan -> Fault_plan.on_notice plan kind
  in
  match decision with
  | Fault_plan.Deliver -> deliver ()
  | Fault_plan.Drop ->
      ev_inject t
        (match kind with
        | Fault_plan.Eviction -> Telemetry.Event.Dropped_eviction
        | Fault_plan.Resident -> Telemetry.Event.Dropped_resident)
        page
  | Fault_plan.Delay ->
      ev_inject t Telemetry.Event.Delayed_notice page;
      Queue.add (kind, page) t.pending_notices;
      t.notices_pending <- true
  | Fault_plan.Duplicate ->
      ev_inject t Telemetry.Event.Duplicated_notice page;
      deliver ();
      Queue.add (kind, page) t.pending_notices;
      t.notices_pending <- true

(* Move up to [n] pages from the active tail into the inactive list,
   giving referenced pages a second chance. Returns how many moved. *)
let refill_inactive t n =
  let moved = ref 0 in
  let attempts = ref 0 in
  let budget = (2 * Lru.active_size t.lru) + 2 in
  while !moved < n && !attempts < budget do
    incr attempts;
    match Lru.active_tail t.lru with
    | None -> attempts := budget
    | Some page ->
        check_mapped t page;
        Lru.remove t.lru page;
        if Page_flags.get t.flags page Page_flags.referenced then begin
          Page_flags.clear t.flags page Page_flags.referenced;
          Lru.push_active_head t.lru page
        end
        else begin
          Lru.push_inactive_head t.lru page;
          incr moved
        end
  done;
  !moved

(* Reclaim frames until [free_frames t >= target], raising only when even
   [required] frames cannot be freed (the batch beyond [required] is
   opportunistic clustering). Delivers pre-eviction notices to registered
   owners; handlers may veto (touch), discard (madvise) or surrender
   (vm_relinquish) pages, all of which this loop observes. *)
let reclaim t ~required ~target =
  if t.in_reclaim then ()
  else begin
    t.in_reclaim <- true;
    Fun.protect ~finally:(fun () -> t.in_reclaim <- false) @@ fun () ->
    let budget =
      (4 * (Lru.active_size t.lru + Lru.inactive_size t.lru)) + 64
    in
    let scanned = ref 0 in
    while free_frames t < target && !scanned < budget do
      incr scanned;
      if Lru.inactive_size t.lru = 0 then begin
        if refill_inactive t t.reclaim_batch = 0 then
          raise
            (Thrashing
               (Printf.sprintf
                  "need %d free frames but all %d resident pages are pinned \
                   or unreclaimable"
                  target t.resident))
      end
      else begin
        match Lru.inactive_tail t.lru with
        | None -> ()
        | Some victim ->
            check_mapped t victim;
            Lru.remove t.lru victim;
            if Page_flags.get t.flags victim Page_flags.referenced then begin
              (* second chance; a touch also cancels a pending surrender
                 (the page's owner was already told it reloaded) *)
              Page_flags.clear t.flags victim Page_flags.referenced;
              Page_flags.clear t.flags victim Page_flags.surrendered;
              Lru.push_active_head t.lru victim
            end
            else if Page_flags.get t.flags victim Page_flags.surrendered then
              ignore (swap_out t victim)
            else begin
              (* Pre-eviction notice: the page is still resident and its
                 owner may react before the PTE is unmapped. Only
                 registered owners receive (and are billed for) one; the
                 fault plan may lose or hold the signal, in which case the
                 eviction proceeds as if the owner stayed silent. *)
              (match Process.handlers (owner_proc t victim) with
              | Some h ->
                  route_notice t Fault_plan.Eviction victim (fun () ->
                      deliver_eviction_notice t h victim)
              | None -> ());
              if Lru.membership t.lru victim <> None then
                (* handler repositioned the page (vm_relinquish) *)
                ()
              else if pstate t victim <> st_resident then
                (* handler discarded it *)
                ()
              else if
                free_frames t >= target
                || Page_flags.get t.flags victim Page_flags.referenced
              then begin
                (* pressure relieved, or the owner vetoed by touching *)
                Page_flags.clear t.flags victim Page_flags.referenced;
                Lru.push_active_head t.lru victim
              end
              else ignore (swap_out t victim)
            end
      end
    done;
    (* Desperation: the cooperative pass failed (every candidate vetoed or
       re-referenced). A real kernel overrides user hints under severe
       pressure: evict the coldest unpinned pages without notices. *)
    if free_frames t < required then begin
      (* A failed swap write re-queues the victim, so bound the number of
         attempts or a permanently full device would spin forever. *)
      let attempts = ref 0 in
      let max_attempts = (2 * t.resident) + 16 in
      let steal tail remove =
        while
          free_frames t < required && !attempts < max_attempts
          && tail () <> None
        do
          match tail () with
          | None -> ()
          | Some victim ->
              incr attempts;
              check_mapped t victim;
              remove victim;
              Page_flags.clear t.flags victim Page_flags.referenced;
              if swap_out t victim then begin
                ev t Telemetry.Event.Forced_eviction victim
                  (Process.pid (owner_proc t victim));
                t.stats.Vm_stats.forced_evictions <-
                  t.stats.Vm_stats.forced_evictions + 1;
                let pstats = Process.stats (owner_proc t victim) in
                pstats.Vm_stats.forced_evictions <-
                  pstats.Vm_stats.forced_evictions + 1
              end
        done
      in
      steal (fun () -> Lru.inactive_tail t.lru) (Lru.remove t.lru);
      steal (fun () -> Lru.active_tail t.lru) (Lru.remove t.lru)
    end;
    if free_frames t < required then
      raise
        (Thrashing
           (Printf.sprintf "reclaim gave up: %d free of %d required"
              (free_frames t) required));
    ev t Telemetry.Event.Gauge_resident t.resident (free_frames t)
  end

(* Make room for one more resident page, freeing a cluster when memory is
   tight so availability moves in batches. *)
let ensure_frame t =
  if free_frames t < 1 then
    reclaim t ~required:1
      ~target:(min t.reclaim_batch (max 1 (t.capacity - t.pinned)))

let count_fault t page ~major =
  let pstats = Process.stats (owner_proc t page) in
  if major then begin
    t.stats.Vm_stats.major_faults <- t.stats.Vm_stats.major_faults + 1;
    pstats.Vm_stats.major_faults <- pstats.Vm_stats.major_faults + 1;
    t.stats.Vm_stats.swap_ins <- t.stats.Vm_stats.swap_ins + 1;
    pstats.Vm_stats.swap_ins <- pstats.Vm_stats.swap_ins + 1
  end
  else begin
    t.stats.Vm_stats.minor_faults <- t.stats.Vm_stats.minor_faults + 1;
    pstats.Vm_stats.minor_faults <- pstats.Vm_stats.minor_faults + 1
  end

let deliver_protection_fault t page =
  Clock.advance t.clock t.costs.Costs.protection_fault_ns;
  ev t Telemetry.Event.Protection_fault page (Process.pid (owner_proc t page));
  t.stats.Vm_stats.protection_faults <- t.stats.Vm_stats.protection_faults + 1;
  let pstats = Process.stats (owner_proc t page) in
  pstats.Vm_stats.protection_faults <- pstats.Vm_stats.protection_faults + 1;
  match Process.handlers (owner_proc t page) with
  | Some h -> h.Process.on_protection_fault page
  | None -> Page_flags.clear t.flags page Page_flags.protected_

(* Read the page's swap copy, retrying past injected transient errors.
   The fault plan bounds consecutive read errors, so the retry budget is
   never exhausted by injection alone. *)
let swap_read_retrying t page =
  let max_attempts = 6 in
  let rec go attempt =
    match Swap.read t.swap page with
    | () -> ()
    | exception Swap.Io_error ->
        ev_inject t Telemetry.Event.Swap_read_error page;
        t.stats.Vm_stats.swap_retries <- t.stats.Vm_stats.swap_retries + 1;
        Clock.advance t.clock (attempt * t.costs.Costs.swap_write_ns);
        if attempt >= max_attempts then
          raise
            (Thrashing
               (Printf.sprintf "swap read of page %d failed %d times" page
                  max_attempts))
        else go (attempt + 1)
  in
  go 1

(* The touch slow path: everything except an unprotected resident hit.
   [page] is known to be in-table here. *)
let rec do_touch t ~write page =
  let s = pstate t page in
  if s = st_resident then begin
    Page_flags.set t.flags page Page_flags.referenced;
    if write then Page_flags.set t.flags page Page_flags.dirty;
    if Page_flags.get t.flags page Page_flags.protected_ then begin
      deliver_protection_fault t page;
      (* retry the access if the handler unprotected the page; if it did
         not, the access proceeds anyway (the handler owns the policy) *)
      if not (Page_flags.get t.flags page Page_flags.protected_) then
        do_touch t ~write page
    end
  end
  else if s = st_untouched then begin
    Clock.advance t.clock t.costs.Costs.minor_fault_ns;
    ev t Telemetry.Event.Minor_fault page (Process.pid (owner_proc t page));
    count_fault t page ~major:false;
    ensure_frame t;
    set_pstate t page st_resident;
    Page_flags.set t.flags page Page_flags.referenced;
    Page_flags.put t.flags page Page_flags.dirty write;
    note_residency t page 1;
    if not (Page_flags.get t.flags page Page_flags.pinned) then
      Lru.push_active_head t.lru page
  end
  else if s = st_swapped then begin
    swap_read_retrying t page;
    Clock.advance t.clock t.costs.Costs.major_fault_ns;
    ev t Telemetry.Event.Swap_read page (Process.pid (owner_proc t page));
    ev t Telemetry.Event.Major_fault page (Process.pid (owner_proc t page));
    count_fault t page ~major:true;
    ensure_frame t;
    set_pstate t page st_resident;
    Page_flags.set t.flags page Page_flags.referenced;
    Page_flags.put t.flags page Page_flags.dirty write;
    Page_flags.clear t.flags page Page_flags.surrendered;
    note_residency t page 1;
    if not (Page_flags.get t.flags page Page_flags.pinned) then
      Lru.push_active_head t.lru page;
    (* made-resident notice (the fault plan may lose it — the
       protection upcall below is the reliable backstop), then any
       protection upcall *)
    (match Process.handlers (owner_proc t page) with
    | Some h ->
        route_notice t Fault_plan.Resident page (fun () ->
            ev t Telemetry.Event.Made_resident page
              (Process.pid (owner_proc t page));
            h.Process.on_resident page)
    | None -> ());
    if Page_flags.get t.flags page Page_flags.protected_ then
      deliver_protection_fault t page
  end
  else if opid t page = 0 then
    invalid_arg (Printf.sprintf "Vmm: page %d is unmapped" page)
  else invalid_arg (Printf.sprintf "Vmm.touch: page %d unmapped" page)

(* Late delivery of notices the fault plan held back. Notices for pages
   that have since been unmapped, or whose owner unregistered, are
   quietly discarded; everything else is delivered as-is — possibly
   stale, possibly a duplicate — which is exactly the unreliability the
   consumers must tolerate. *)
let flush_pending_notices t =
  if
    (not t.delivering) && (not t.in_reclaim)
    && not (Queue.is_empty t.pending_notices)
  then begin
    t.delivering <- true;
    Fun.protect ~finally:(fun () -> t.delivering <- false) @@ fun () ->
    let items = List.of_seq (Queue.to_seq t.pending_notices) in
    Queue.clear t.pending_notices;
    (* handlers below may enqueue fresh notices, which re-raise the flag *)
    t.notices_pending <- false;
    let items =
      match t.faults with
      | Some plan when Fault_plan.reorder_pending plan ->
          ev_inject t Telemetry.Event.Reordered_flush 0;
          List.rev items
      | Some _ | None -> items
    in
    List.iter
      (fun (kind, page) ->
        if ever_mapped t page && pstate t page <> st_unmapped then
          match Process.handlers (owner_proc t page) with
          | Some h -> (
              match kind with
              | Fault_plan.Eviction -> deliver_eviction_notice t h page
              | Fault_plan.Resident ->
                  ev t Telemetry.Event.Made_resident page
                    (Process.pid (owner_proc t page));
                  h.Process.on_resident page)
          | None -> ())
      items
  end

(* The fast path below hard-codes the Page_flags bit layout: dev-profile
   builds pass -opaque, which turns Page_flags accessors into real calls
   and its constants into module-block loads, so going through the module
   would put two calls and a stack frame on the hottest loop in the
   simulator. Verified against the real layout at module init. *)
let () =
  assert (
    Page_flags.referenced = 2 && Page_flags.dirty = 1
    && Page_flags.protected_ = 4)

(* The hot path of the whole simulator: every simulated byte the mutator
   or a collector touches lands here. The fast path — page in-table,
   resident, unprotected — is one immediate test (pending notices), a
   bounds check, one state-byte load and one flag-byte read-modify-write;
   everything else drops to [do_touch]. *)
let touch t ?(write = false) page =
  if t.notices_pending then flush_pending_notices t;
  if page >= 0 && page < t.table_len then begin
    if Char.code (Bytes.unsafe_get t.state page) = st_resident then begin
      let f = Char.code (Bytes.unsafe_get t.flags page) in
      if f land 4 (* protected_ *) = 0 then
        Bytes.unsafe_set t.flags page
          (Char.unsafe_chr
             (f lor if write then 3 (* referenced+dirty *) else 2))
      else do_touch t ~write page
    end
    else do_touch t ~write page
  end
  else invalid_arg (Printf.sprintf "Vmm: page %d is unmapped" page)

let unmap_range t ~first_page ~npages =
  for p = first_page to first_page + npages - 1 do
    if ever_mapped t p then begin
      if pstate t p = st_resident then begin
        if Page_flags.get t.flags p Page_flags.pinned then begin
          Page_flags.clear t.flags p Page_flags.pinned;
          t.pinned <- t.pinned - 1;
          note_residency t p (-1)
        end
        else release_frame t p
      end;
      Swap.drop t.swap p;
      set_pstate t p st_unmapped;
      Page_flags.clear t.flags p Page_flags.in_swap;
      Page_flags.clear t.flags p Page_flags.protected_
    end
  done

let madvise_dontneed t page =
  if ever_mapped t page then begin
    Clock.advance t.clock t.costs.Costs.syscall_ns;
    let s = pstate t page in
    if s = st_resident then begin
      if Page_flags.get t.flags page Page_flags.pinned then
        invalid_arg "Vmm.madvise_dontneed: page is pinned";
      release_frame t page;
      ev t Telemetry.Event.Discard page (Process.pid (owner_proc t page));
      t.stats.Vm_stats.discards <- t.stats.Vm_stats.discards + 1;
      let pstats = Process.stats (owner_proc t page) in
      pstats.Vm_stats.discards <- pstats.Vm_stats.discards + 1
    end
    else if s = st_swapped then begin
      Swap.drop t.swap page;
      set_pstate t page st_untouched;
      Page_flags.clear t.flags page Page_flags.in_swap;
      Page_flags.clear t.flags page Page_flags.dirty;
      ev t Telemetry.Event.Discard page (Process.pid (owner_proc t page));
      t.stats.Vm_stats.discards <- t.stats.Vm_stats.discards + 1;
      let pstats = Process.stats (owner_proc t page) in
      pstats.Vm_stats.discards <- pstats.Vm_stats.discards + 1
    end
  end

let vm_relinquish t pages =
  Clock.advance t.clock t.costs.Costs.syscall_ns;
  List.iter
    (fun page ->
      if
        ever_mapped t page
        && pstate t page = st_resident
        && not (Page_flags.get t.flags page Page_flags.pinned)
      then begin
        Page_flags.clear t.flags page Page_flags.referenced;
        Page_flags.set t.flags page Page_flags.surrendered;
        ignore (Lru.remove_if_present t.lru page : bool);
        Lru.push_inactive_tail t.lru page;
        ev t Telemetry.Event.Relinquish page (Process.pid (owner_proc t page));
        t.stats.Vm_stats.relinquished <- t.stats.Vm_stats.relinquished + 1;
        let pstats = Process.stats (owner_proc t page) in
        pstats.Vm_stats.relinquished <- pstats.Vm_stats.relinquished + 1
      end)
    pages

let mprotect t page ~protect =
  Clock.advance t.clock t.costs.Costs.syscall_ns;
  check_mapped t page;
  Page_flags.put t.flags page Page_flags.protected_ protect

let mlock t page =
  check_mapped t page;
  (* locking must not fire protection upcalls; lock the raw frame *)
  if pstate t page <> st_resident then touch t ~write:false page;
  if not (Page_flags.get t.flags page Page_flags.pinned) then begin
    Page_flags.set t.flags page Page_flags.pinned;
    t.pinned <- t.pinned + 1;
    ignore (Lru.remove_if_present t.lru page : bool)
  end

let munlock t page =
  check_mapped t page;
  if Page_flags.get t.flags page Page_flags.pinned then begin
    Page_flags.clear t.flags page Page_flags.pinned;
    t.pinned <- t.pinned - 1;
    if pstate t page = st_resident then Lru.push_active_head t.lru page
  end

let set_capacity t frames =
  if frames <= 0 then invalid_arg "Vmm.set_capacity";
  t.capacity <- frames;
  if free_frames t < 0 then reclaim t ~required:0 ~target:0

let coldest_pages t ~owner ~n =
  let pid = Process.pid owner in
  let acc = ref [] in
  let count = ref 0 in
  let consider page =
    if !count < n && in_table t page && opid t page = pid then begin
      acc := page :: !acc;
      incr count
    end
  in
  Lru.iter_inactive_from_tail t.lru consider;
  Lru.iter_active_from_tail t.lru consider;
  List.rev !acc

let pending_notice_count t = Queue.length t.pending_notices

(* O(pages) scan, kept as the debug cross-check for the gauge below. *)
let debug_count_resident_owned t proc =
  let pid = Process.pid proc in
  let n = ref 0 in
  for page = 0 to t.table_len - 1 do
    if pstate t page = st_resident && opid t page = pid then incr n
  done;
  !n

(* Per-process residency is maintained incrementally by [note_residency],
   so this is a gauge read; the full-table scan survives only as an
   assertion (compiled out with -noassert). *)
let count_resident_owned t proc =
  let n = (Process.stats proc).Vm_stats.resident_pages in
  assert (n = debug_count_resident_owned t proc);
  n

type list_kind = Active | Inactive

(* Intrusive doubly-linked lists over page numbers, stored in growable
   parallel arrays. -1 is the null link. [where_] holds 0 = on no list,
   1 = active, 2 = inactive. *)
type t = {
  mutable next : int array;
  mutable prev : int array;
  mutable where_ : Bytes.t;
  mutable active_head : int;
  mutable active_tail : int;
  mutable inactive_head : int;
  mutable inactive_tail : int;
  mutable active_size : int;
  mutable inactive_size : int;
}

let create () =
  {
    next = Array.make 64 (-1);
    prev = Array.make 64 (-1);
    where_ = Bytes.make 64 '\000';
    active_head = -1;
    active_tail = -1;
    inactive_head = -1;
    inactive_tail = -1;
    active_size = 0;
    inactive_size = 0;
  }

let ensure t page =
  let cap = Array.length t.next in
  if page >= cap then begin
    let cap' = max (page + 1) (cap * 2) in
    let grow_int a =
      let a' = Array.make cap' (-1) in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.next <- grow_int t.next;
    t.prev <- grow_int t.prev;
    let w' = Bytes.make cap' '\000' in
    Bytes.blit t.where_ 0 w' 0 cap;
    t.where_ <- w'
  end

let where t page =
  if page >= Bytes.length t.where_ then 0
  else Char.code (Bytes.get t.where_ page)

let set_where t page w = Bytes.set t.where_ page (Char.chr w)

let membership t page =
  match where t page with
  | 0 -> None
  | 1 -> Some Active
  | 2 -> Some Inactive
  | _ -> assert false

(* Link [page] before [succ] (or at tail when [succ] = -1) of the list
   described by the given head/tail accessors. *)

let push_head t page ~kind =
  ensure t page;
  if where t page <> 0 then invalid_arg "Lru: page already on a list";
  begin
    match kind with
    | Active ->
        t.prev.(page) <- -1;
        t.next.(page) <- t.active_head;
        if t.active_head >= 0 then t.prev.(t.active_head) <- page
        else t.active_tail <- page;
        t.active_head <- page;
        t.active_size <- t.active_size + 1;
        set_where t page 1
    | Inactive ->
        t.prev.(page) <- -1;
        t.next.(page) <- t.inactive_head;
        if t.inactive_head >= 0 then t.prev.(t.inactive_head) <- page
        else t.inactive_tail <- page;
        t.inactive_head <- page;
        t.inactive_size <- t.inactive_size + 1;
        set_where t page 2
  end

let push_active_head t page = push_head t page ~kind:Active

let push_inactive_head t page = push_head t page ~kind:Inactive

let push_inactive_tail t page =
  ensure t page;
  if where t page <> 0 then invalid_arg "Lru: page already on a list";
  t.next.(page) <- -1;
  t.prev.(page) <- t.inactive_tail;
  if t.inactive_tail >= 0 then t.next.(t.inactive_tail) <- page
  else t.inactive_head <- page;
  t.inactive_tail <- page;
  t.inactive_size <- t.inactive_size + 1;
  set_where t page 2

let remove t page =
  let w = where t page in
  if w = 0 then invalid_arg "Lru.remove: page not on a list";
  let np = t.next.(page) and pp = t.prev.(page) in
  if pp >= 0 then t.next.(pp) <- np;
  if np >= 0 then t.prev.(np) <- pp;
  begin
    match w with
    | 1 ->
        if t.active_head = page then t.active_head <- np;
        if t.active_tail = page then t.active_tail <- pp;
        t.active_size <- t.active_size - 1
    | 2 ->
        if t.inactive_head = page then t.inactive_head <- np;
        if t.inactive_tail = page then t.inactive_tail <- pp;
        t.inactive_size <- t.inactive_size - 1
    | _ -> assert false
  end;
  t.next.(page) <- -1;
  t.prev.(page) <- -1;
  set_where t page 0

(* Remove a page that may or may not be listed in a single [where_]
   probe; the membership-then-remove idiom at call sites paid for that
   lookup twice. *)
let remove_if_present t page =
  if where t page = 0 then false
  else begin
    remove t page;
    true
  end

let active_tail t = if t.active_tail >= 0 then Some t.active_tail else None

let inactive_tail t =
  if t.inactive_tail >= 0 then Some t.inactive_tail else None

let active_size t = t.active_size

let inactive_size t = t.inactive_size

let iter_from_tail tail t f =
  let rec loop p =
    if p >= 0 then begin
      let prev = t.prev.(p) in
      f p;
      loop prev
    end
  in
  loop tail

let iter_inactive_from_tail t f = iter_from_tail t.inactive_tail t f

let iter_active_from_tail t f = iter_from_tail t.active_tail t f

type list_kind = Active | Inactive

(* Intrusive doubly-linked lists over page numbers. -1 is the null link.
   [where_] holds 0 = on no list, 1 = active, 2 = inactive.

   Storage is a two-level chunked table so that page numbers near 2^30
   cost memory proportional to the pages actually queued, not the address
   space: a root array of chunks, each chunk holding parallel [next]/
   [prev]/[where_] arrays for a 4096-page span. Never-touched chunks alias
   one shared all-empty sentinel ([where_] all zero, links all -1), so
   reads anywhere report "on no list" without allocating. The sentinel is
   never written: [ensure] materialises a private chunk before any push,
   and links are only ever written for pages already on a list (hence
   already materialised). *)

let chunk_shift = 12

let chunk_pages = 1 lsl chunk_shift

let chunk_mask = chunk_pages - 1

type chunk = { next : int array; prev : int array; where_ : Bytes.t }

let sentinel =
  {
    next = Array.make chunk_pages (-1);
    prev = Array.make chunk_pages (-1);
    where_ = Bytes.make chunk_pages '\000';
  }

type t = {
  mutable chunks : chunk array;
  mutable active_head : int;
  mutable active_tail : int;
  mutable inactive_head : int;
  mutable inactive_tail : int;
  mutable active_size : int;
  mutable inactive_size : int;
}

let create () =
  {
    chunks = Array.make 1 sentinel;
    active_head = -1;
    active_tail = -1;
    inactive_head = -1;
    inactive_tail = -1;
    active_size = 0;
    inactive_size = 0;
  }

let ensure t page =
  let c = page lsr chunk_shift in
  if c >= Array.length t.chunks then begin
    let len' = max (c + 1) (2 * Array.length t.chunks) in
    let chunks' = Array.make len' sentinel in
    Array.blit t.chunks 0 chunks' 0 (Array.length t.chunks);
    t.chunks <- chunks'
  end;
  if t.chunks.(c) == sentinel then
    t.chunks.(c) <-
      {
        next = Array.make chunk_pages (-1);
        prev = Array.make chunk_pages (-1);
        where_ = Bytes.make chunk_pages '\000';
      }

let chunk_of t page =
  let c = page lsr chunk_shift in
  if c < Array.length t.chunks then Array.unsafe_get t.chunks c else sentinel

let where t page = Char.code (Bytes.get (chunk_of t page).where_ (page land chunk_mask))

let set_where t page w = Bytes.set (chunk_of t page).where_ (page land chunk_mask) (Char.chr w)

let nxt t page = (chunk_of t page).next.(page land chunk_mask)

let prv t page = (chunk_of t page).prev.(page land chunk_mask)

let set_nxt t page v = (chunk_of t page).next.(page land chunk_mask) <- v

let set_prv t page v = (chunk_of t page).prev.(page land chunk_mask) <- v

let membership t page =
  match where t page with
  | 0 -> None
  | 1 -> Some Active
  | 2 -> Some Inactive
  | _ -> assert false

(* Link [page] at the head of the list described by [kind]. *)

let push_head t page ~kind =
  ensure t page;
  if where t page <> 0 then invalid_arg "Lru: page already on a list";
  begin
    match kind with
    | Active ->
        set_prv t page (-1);
        set_nxt t page t.active_head;
        if t.active_head >= 0 then set_prv t t.active_head page
        else t.active_tail <- page;
        t.active_head <- page;
        t.active_size <- t.active_size + 1;
        set_where t page 1
    | Inactive ->
        set_prv t page (-1);
        set_nxt t page t.inactive_head;
        if t.inactive_head >= 0 then set_prv t t.inactive_head page
        else t.inactive_tail <- page;
        t.inactive_head <- page;
        t.inactive_size <- t.inactive_size + 1;
        set_where t page 2
  end

let push_active_head t page = push_head t page ~kind:Active

let push_inactive_head t page = push_head t page ~kind:Inactive

let push_inactive_tail t page =
  ensure t page;
  if where t page <> 0 then invalid_arg "Lru: page already on a list";
  set_nxt t page (-1);
  set_prv t page t.inactive_tail;
  if t.inactive_tail >= 0 then set_nxt t t.inactive_tail page
  else t.inactive_head <- page;
  t.inactive_tail <- page;
  t.inactive_size <- t.inactive_size + 1;
  set_where t page 2

let remove t page =
  let w = where t page in
  if w = 0 then invalid_arg "Lru.remove: page not on a list";
  let np = nxt t page and pp = prv t page in
  if pp >= 0 then set_nxt t pp np;
  if np >= 0 then set_prv t np pp;
  begin
    match w with
    | 1 ->
        if t.active_head = page then t.active_head <- np;
        if t.active_tail = page then t.active_tail <- pp;
        t.active_size <- t.active_size - 1
    | 2 ->
        if t.inactive_head = page then t.inactive_head <- np;
        if t.inactive_tail = page then t.inactive_tail <- pp;
        t.inactive_size <- t.inactive_size - 1
    | _ -> assert false
  end;
  set_nxt t page (-1);
  set_prv t page (-1);
  set_where t page 0

(* Remove a page that may or may not be listed in a single [where_]
   probe; the membership-then-remove idiom at call sites paid for that
   lookup twice. *)
let remove_if_present t page =
  if where t page = 0 then false
  else begin
    remove t page;
    true
  end

let active_tail t = if t.active_tail >= 0 then Some t.active_tail else None

let inactive_tail t =
  if t.inactive_tail >= 0 then Some t.inactive_tail else None

let active_size t = t.active_size

let inactive_size t = t.inactive_size

let iter_from_tail tail t f =
  let rec loop p =
    if p >= 0 then begin
      let prev = prv t p in
      f p;
      loop prev
    end
  in
  loop tail

let iter_inactive_from_tail t f = iter_from_tail t.inactive_tail t f

let iter_active_from_tail t f = iter_from_tail t.active_tail t f

(** Page replacement queues, modelled on the Linux 2.4 VM.

    Two intrusive doubly-linked lists over page numbers: the {e active}
    list (managed with a clock / second-chance policy by the caller) and
    the {e inactive} list (a FIFO from whose tail pages are reclaimed).
    Membership is exclusive. All operations are O(1) except iteration. *)

type t

type list_kind = Active | Inactive

val create : unit -> t

val push_active_head : t -> int -> unit
(** Insert at the head of the active list (most recently used end). The
    page must not already be on a list. *)

val push_inactive_head : t -> int -> unit
(** Insert at the head of the inactive list (furthest from reclaim). *)

val push_inactive_tail : t -> int -> unit
(** Insert at the tail of the inactive list — the next reclaim victim.
    Used by [vm_relinquish]: voluntarily surrendered pages are "placed at
    the end of the inactive queue from which they are quickly swapped
    out". *)

val remove : t -> int -> unit
(** Remove a page from whichever list holds it. The page must be on a
    list. *)

val remove_if_present : t -> int -> bool
(** [remove_if_present t page] removes [page] if it is on a list and
    says whether it was. One membership probe, unlike
    [membership]-then-[remove]. *)

val membership : t -> int -> list_kind option

val active_tail : t -> int option
(** Least-recently-used end of the active list. *)

val inactive_tail : t -> int option
(** Next reclaim victim. *)

val active_size : t -> int

val inactive_size : t -> int

val iter_inactive_from_tail : t -> (int -> unit) -> unit
(** Iterate inactive pages from reclaim end to head. The callback must not
    mutate the lists. *)

val iter_active_from_tail : t -> (int -> unit) -> unit
(** Iterate active pages from the least-recently-used end. The callback
    must not mutate the lists. *)

type t = {
  mutable minor_faults : int;
  mutable major_faults : int;
  mutable protection_faults : int;
  mutable evictions : int;
  mutable discards : int;
  mutable relinquished : int;
  mutable eviction_notices : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable forced_evictions : int;
  mutable swap_retries : int;
  mutable swap_stalls : int;
}

let create () =
  {
    minor_faults = 0;
    major_faults = 0;
    protection_faults = 0;
    evictions = 0;
    discards = 0;
    relinquished = 0;
    eviction_notices = 0;
    swap_ins = 0;
    swap_outs = 0;
    forced_evictions = 0;
    swap_retries = 0;
    swap_stalls = 0;
  }

let reset t =
  t.minor_faults <- 0;
  t.major_faults <- 0;
  t.protection_faults <- 0;
  t.evictions <- 0;
  t.discards <- 0;
  t.relinquished <- 0;
  t.eviction_notices <- 0;
  t.swap_ins <- 0;
  t.swap_outs <- 0;
  t.forced_evictions <- 0;
  t.swap_retries <- 0;
  t.swap_stalls <- 0

let pp ppf t =
  Format.fprintf ppf
    "minor:%d major:%d prot:%d evict:%d discard:%d relinq:%d notices:%d \
     swapin:%d swapout:%d forced:%d retries:%d stalls:%d"
    t.minor_faults t.major_faults t.protection_faults t.evictions t.discards
    t.relinquished t.eviction_notices t.swap_ins t.swap_outs t.forced_evictions
    t.swap_retries t.swap_stalls

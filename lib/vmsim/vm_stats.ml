type t = {
  mutable minor_faults : int;
  mutable major_faults : int;
  mutable protection_faults : int;
  mutable evictions : int;
  mutable discards : int;
  mutable relinquished : int;
  mutable eviction_notices : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable forced_evictions : int;
  mutable swap_retries : int;
  mutable swap_stalls : int;
  mutable resident_pages : int;
  mutable peak_resident_pages : int;
}

let create () =
  {
    minor_faults = 0;
    major_faults = 0;
    protection_faults = 0;
    evictions = 0;
    discards = 0;
    relinquished = 0;
    eviction_notices = 0;
    swap_ins = 0;
    swap_outs = 0;
    forced_evictions = 0;
    swap_retries = 0;
    swap_stalls = 0;
    resident_pages = 0;
    peak_resident_pages = 0;
  }

(* Pages resident right now is a gauge, not a counter: opening a fresh
   measurement window must not zero it (the pages are still mapped), so
   [reset] keeps the gauge and restarts the high-water mark from it. *)
let add_resident t delta =
  t.resident_pages <- t.resident_pages + delta;
  if t.resident_pages > t.peak_resident_pages then
    t.peak_resident_pages <- t.resident_pages

let reset t =
  t.minor_faults <- 0;
  t.major_faults <- 0;
  t.protection_faults <- 0;
  t.evictions <- 0;
  t.discards <- 0;
  t.relinquished <- 0;
  t.eviction_notices <- 0;
  t.swap_ins <- 0;
  t.swap_outs <- 0;
  t.forced_evictions <- 0;
  t.swap_retries <- 0;
  t.swap_stalls <- 0;
  t.peak_resident_pages <- t.resident_pages

(* Immutable view of the counters at one instant. Mid-run samplers
   (telemetry gauges, per-phase attribution) take two snapshots and
   [diff] them instead of reading mutable fields twice and risking a
   torn pair. *)
module Snapshot = struct
  type t = {
    minor_faults : int;
    major_faults : int;
    protection_faults : int;
    evictions : int;
    discards : int;
    relinquished : int;
    eviction_notices : int;
    swap_ins : int;
    swap_outs : int;
    forced_evictions : int;
    swap_retries : int;
    swap_stalls : int;
    resident_pages : int;
    peak_resident_pages : int;
  }

  (* [diff earlier later]: counters accumulated between the two.
     [resident_pages] is a gauge, so the diff carries its net change;
     [peak_resident_pages] is a high-water mark, so the later snapshot
     wins (matching [Gc_stats.diff] for [max_heap_pages]). *)
  let diff a b =
    {
      minor_faults = b.minor_faults - a.minor_faults;
      major_faults = b.major_faults - a.major_faults;
      protection_faults = b.protection_faults - a.protection_faults;
      evictions = b.evictions - a.evictions;
      discards = b.discards - a.discards;
      relinquished = b.relinquished - a.relinquished;
      eviction_notices = b.eviction_notices - a.eviction_notices;
      swap_ins = b.swap_ins - a.swap_ins;
      swap_outs = b.swap_outs - a.swap_outs;
      forced_evictions = b.forced_evictions - a.forced_evictions;
      swap_retries = b.swap_retries - a.swap_retries;
      swap_stalls = b.swap_stalls - a.swap_stalls;
      resident_pages = b.resident_pages - a.resident_pages;
      peak_resident_pages = b.peak_resident_pages;
    }
end

type snapshot = Snapshot.t

let snapshot t : snapshot =
  {
    Snapshot.minor_faults = t.minor_faults;
    major_faults = t.major_faults;
    protection_faults = t.protection_faults;
    evictions = t.evictions;
    discards = t.discards;
    relinquished = t.relinquished;
    eviction_notices = t.eviction_notices;
    swap_ins = t.swap_ins;
    swap_outs = t.swap_outs;
    forced_evictions = t.forced_evictions;
    swap_retries = t.swap_retries;
    swap_stalls = t.swap_stalls;
    resident_pages = t.resident_pages;
    peak_resident_pages = t.peak_resident_pages;
  }

let diff = Snapshot.diff

let pp ppf t =
  Format.fprintf ppf
    "minor:%d major:%d prot:%d evict:%d discard:%d relinq:%d notices:%d \
     swapin:%d swapout:%d forced:%d retries:%d stalls:%d resident:%d peak:%d"
    t.minor_faults t.major_faults t.protection_faults t.evictions t.discards
    t.relinquished t.eviction_notices t.swap_ins t.swap_outs t.forced_evictions
    t.swap_retries t.swap_stalls t.resident_pages t.peak_resident_pages

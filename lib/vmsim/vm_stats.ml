type t = {
  mutable minor_faults : int;
  mutable major_faults : int;
  mutable protection_faults : int;
  mutable evictions : int;
  mutable discards : int;
  mutable relinquished : int;
  mutable eviction_notices : int;
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable forced_evictions : int;
  mutable swap_retries : int;
  mutable swap_stalls : int;
}

let create () =
  {
    minor_faults = 0;
    major_faults = 0;
    protection_faults = 0;
    evictions = 0;
    discards = 0;
    relinquished = 0;
    eviction_notices = 0;
    swap_ins = 0;
    swap_outs = 0;
    forced_evictions = 0;
    swap_retries = 0;
    swap_stalls = 0;
  }

let reset t =
  t.minor_faults <- 0;
  t.major_faults <- 0;
  t.protection_faults <- 0;
  t.evictions <- 0;
  t.discards <- 0;
  t.relinquished <- 0;
  t.eviction_notices <- 0;
  t.swap_ins <- 0;
  t.swap_outs <- 0;
  t.forced_evictions <- 0;
  t.swap_retries <- 0;
  t.swap_stalls <- 0

(* Immutable view of the counters at one instant. Mid-run samplers
   (telemetry gauges, per-phase attribution) take two snapshots and
   [diff] them instead of reading mutable fields twice and risking a
   torn pair. *)
module Snapshot = struct
  type t = {
    minor_faults : int;
    major_faults : int;
    protection_faults : int;
    evictions : int;
    discards : int;
    relinquished : int;
    eviction_notices : int;
    swap_ins : int;
    swap_outs : int;
    forced_evictions : int;
    swap_retries : int;
    swap_stalls : int;
  }

  (* [diff earlier later]: counters accumulated between the two. *)
  let diff a b =
    {
      minor_faults = b.minor_faults - a.minor_faults;
      major_faults = b.major_faults - a.major_faults;
      protection_faults = b.protection_faults - a.protection_faults;
      evictions = b.evictions - a.evictions;
      discards = b.discards - a.discards;
      relinquished = b.relinquished - a.relinquished;
      eviction_notices = b.eviction_notices - a.eviction_notices;
      swap_ins = b.swap_ins - a.swap_ins;
      swap_outs = b.swap_outs - a.swap_outs;
      forced_evictions = b.forced_evictions - a.forced_evictions;
      swap_retries = b.swap_retries - a.swap_retries;
      swap_stalls = b.swap_stalls - a.swap_stalls;
    }
end

type snapshot = Snapshot.t

let snapshot t : snapshot =
  {
    Snapshot.minor_faults = t.minor_faults;
    major_faults = t.major_faults;
    protection_faults = t.protection_faults;
    evictions = t.evictions;
    discards = t.discards;
    relinquished = t.relinquished;
    eviction_notices = t.eviction_notices;
    swap_ins = t.swap_ins;
    swap_outs = t.swap_outs;
    forced_evictions = t.forced_evictions;
    swap_retries = t.swap_retries;
    swap_stalls = t.swap_stalls;
  }

let diff = Snapshot.diff

let pp ppf t =
  Format.fprintf ppf
    "minor:%d major:%d prot:%d evict:%d discard:%d relinq:%d notices:%d \
     swapin:%d swapout:%d forced:%d retries:%d stalls:%d"
    t.minor_faults t.major_faults t.protection_faults t.evictions t.discards
    t.relinquished t.eviction_notices t.swap_ins t.swap_outs t.forced_evictions
    t.swap_retries t.swap_stalls

(** Virtual time.

    A single global clock advanced by every charged cost. Runs are
    deterministic: the clock only moves when the simulation charges work
    to it. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time in nanoseconds. *)

val advance : t -> int -> unit
(** Advance the clock by the given (non-negative) number of nanoseconds. *)

val skip : t -> events:int -> cost_ns:int -> unit
(** [skip t ~events:n ~cost_ns] fast-forwards the clock by [n * cost_ns]
    in one step — bit-identical to [n] successive [advance t cost_ns]
    calls, since integer addition is associative. The event-skipping half
    of {!Vmm.touch_span}: runs of uniform, event-free work are charged in
    O(1) instead of O(n). *)

val seconds : t -> float
(** [now] in seconds. *)

val ns_to_ms : int -> float

val ns_to_s : int -> float

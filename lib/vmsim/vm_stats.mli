(** Paging-event counters, kept globally and per process. *)

type t = {
  mutable minor_faults : int;
  mutable major_faults : int;
  mutable protection_faults : int;
  mutable evictions : int;  (** pages written out / unmapped under pressure *)
  mutable discards : int;  (** pages freed via [madvise_dontneed] *)
  mutable relinquished : int;  (** pages surrendered via [vm_relinquish] *)
  mutable eviction_notices : int;  (** pre-eviction signals delivered *)
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable forced_evictions : int;
      (** desperation evictions that overrode owner vetoes *)
  mutable swap_retries : int;
      (** swap I/O attempts retried after a transient error *)
  mutable swap_stalls : int;
      (** evictions abandoned because the swap device stayed unavailable *)
}

val create : unit -> t

val reset : t -> unit

val pp : Format.formatter -> t -> unit

(** Paging-event counters, kept globally and per process. *)

type t = {
  mutable minor_faults : int;
  mutable major_faults : int;
  mutable protection_faults : int;
  mutable evictions : int;  (** pages written out / unmapped under pressure *)
  mutable discards : int;  (** pages freed via [madvise_dontneed] *)
  mutable relinquished : int;  (** pages surrendered via [vm_relinquish] *)
  mutable eviction_notices : int;  (** pre-eviction signals delivered *)
  mutable swap_ins : int;
  mutable swap_outs : int;
  mutable forced_evictions : int;
      (** desperation evictions that overrode owner vetoes *)
  mutable swap_retries : int;
      (** swap I/O attempts retried after a transient error *)
  mutable swap_stalls : int;
      (** evictions abandoned because the swap device stayed unavailable *)
  mutable resident_pages : int;
      (** gauge: pages of this owner currently backed by a frame *)
  mutable peak_resident_pages : int;
      (** high-water mark of [resident_pages] since creation or [reset] *)
}

val create : unit -> t

val add_resident : t -> int -> unit
(** Adjust the [resident_pages] gauge by a (possibly negative) delta,
    updating [peak_resident_pages]. Called by the VMM on every
    residency transition; one call per page. *)

val reset : t -> unit
(** Zero the counters. [resident_pages] is a gauge and survives — the
    pages are still mapped — and [peak_resident_pages] restarts from
    the current gauge value. *)

(** Immutable view of the counters at one instant. *)
module Snapshot : sig
  type t = {
    minor_faults : int;
    major_faults : int;
    protection_faults : int;
    evictions : int;
    discards : int;
    relinquished : int;
    eviction_notices : int;
    swap_ins : int;
    swap_outs : int;
    forced_evictions : int;
    swap_retries : int;
    swap_stalls : int;
    resident_pages : int;
    peak_resident_pages : int;
  }

  val diff : t -> t -> t
  (** [diff earlier later]: counters accumulated between the two.
      [resident_pages] becomes the net gauge change; the later
      [peak_resident_pages] wins. *)
end

type snapshot = Snapshot.t

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot

val pp : Format.formatter -> t -> unit

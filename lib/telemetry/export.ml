(* Exporters over a sink's retained events.

   - [chrome_json]: Chrome trace_event JSON (the "JSON Array Format" with
     a traceEvents wrapper), loadable in chrome://tracing and Perfetto.
     GC phases become duration ("B"/"E") events; notices, faults and swap
     I/O become instants ("i"); gauges become counter ("C") events.
   - [csv]: one row per event, for results/ series and spreadsheet work.
   - [ascii_timeline]: a terminal rendering — one lane per event group,
     time bucketed into a fixed-width strip. *)

let us_of_ns ns = float_of_int ns /. 1e3

let instant_name (e : Event.t) =
  match e.Event.kind with
  | Event.Fault_injected ->
      "inject:" ^ Event.injection_name (Event.injection_of_code e.Event.a)
  | k -> Event.kind_name k

let chrome_event (e : Event.t) =
  let dur_phase ph =
    Json.Obj
      [
        ("name", Json.Str (Event.phase_name (Event.phase_of_code e.Event.a)));
        ("cat", Json.Str "gc");
        ("ph", Json.Str ph);
        ("ts", Json.Num (us_of_ns e.Event.ts_ns));
        ("pid", Json.int e.Event.b);
        ("tid", Json.int e.Event.b);
      ]
  in
  let instant cat args =
    Json.Obj
      [
        ("name", Json.Str (instant_name e));
        ("cat", Json.Str cat);
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("ts", Json.Num (us_of_ns e.Event.ts_ns));
        ("pid", Json.int e.Event.b);
        ("tid", Json.int e.Event.b);
        ("args", Json.Obj args);
      ]
  in
  let counter name args =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "C");
        ("ts", Json.Num (us_of_ns e.Event.ts_ns));
        ("pid", Json.int 0);
        ("args", Json.Obj args);
      ]
  in
  match e.Event.kind with
  | Event.Phase_begin -> dur_phase "B"
  | Event.Phase_end -> dur_phase "E"
  | Event.Alloc_slice ->
      counter "allocated" [ ("bytes", Json.int e.Event.b) ]
  | Event.Pressure_step ->
      counter "pinned-pages" [ ("pages", Json.int e.Event.a) ]
  | Event.Gauge_resident ->
      counter "frames"
        [ ("resident", Json.int e.Event.a); ("free", Json.int e.Event.b) ]
  | Event.Proc_progress ->
      (* per-process counter track: pid comes from the payload, unlike the
         machine-wide counters which live on pid 0 *)
      Json.Obj
        [
          ("name", Json.Str "proc-allocated");
          ("ph", Json.Str "C");
          ("ts", Json.Num (us_of_ns e.Event.ts_ns));
          ("pid", Json.int e.Event.a);
          ("args", Json.Obj [ ("bytes", Json.int e.Event.b) ]);
        ]
  | Event.Fault_injected -> instant "fault" [ ("page", Json.int e.Event.b) ]
  | Event.Request_arrival -> instant "srv" [ ("req", Json.int e.Event.a) ]
  | Event.Request_done ->
      (* b carries the latency, not a pid: book it on pid 0 *)
      Json.Obj
        [
          ("name", Json.Str "request-done");
          ("cat", Json.Str "srv");
          ("ph", Json.Str "i");
          ("s", Json.Str "t");
          ("ts", Json.Num (us_of_ns e.Event.ts_ns));
          ("pid", Json.int 0);
          ("tid", Json.int 0);
          ( "args",
            Json.Obj
              [
                ("req", Json.int e.Event.a);
                ("latency_ns", Json.int e.Event.b);
              ] );
        ]
  | Event.Control_decision ->
      (* a carries the state code, b the window index: book on pid 0 *)
      Json.Obj
        [
          ("name", Json.Str "control-decision");
          ("cat", Json.Str "ctl");
          ("ph", Json.Str "i");
          ("s", Json.Str "t");
          ("ts", Json.Num (us_of_ns e.Event.ts_ns));
          ("pid", Json.int 0);
          ("tid", Json.int 0);
          ( "args",
            Json.Obj
              [
                ("state", Json.int e.Event.a);
                ("window", Json.int e.Event.b);
              ] );
        ]
  | Event.Control_state_change ->
      Json.Obj
        [
          ("name", Json.Str "control-state-change");
          ("cat", Json.Str "ctl");
          ("ph", Json.Str "i");
          ("s", Json.Str "t");
          ("ts", Json.Num (us_of_ns e.Event.ts_ns));
          ("pid", Json.int 0);
          ("tid", Json.int 0);
          ( "args",
            Json.Obj
              [ ("from", Json.int e.Event.a); ("to", Json.int e.Event.b) ] );
        ]
  | Event.Eviction_notice | Event.Made_resident | Event.Major_fault
  | Event.Minor_fault | Event.Protection_fault | Event.Eviction
  | Event.Forced_eviction | Event.Discard | Event.Relinquish
  | Event.Swap_read | Event.Swap_write ->
      instant "vm" [ ("page", Json.int e.Event.a) ]

(* Close any phases still open at the end of the stream so the JSON is
   well-formed for viewers that insist on balanced B/E pairs. *)
let closing_events sink =
  let nphases = List.length Event.all_phases in
  let open_stack = Array.make nphases None in
  Sink.iter sink (fun e ->
      match e.Event.kind with
      | Event.Phase_begin -> open_stack.(e.Event.a) <- Some e.Event.b
      | Event.Phase_end -> open_stack.(e.Event.a) <- None
      | _ -> ());
  let _, last = Sink.span_ns sink in
  let acc = ref [] in
  Array.iteri
    (fun i owner ->
      match owner with
      | None -> ()
      | Some pid ->
          acc :=
            Json.Obj
              [
                ("name", Json.Str (Event.phase_name (Event.phase_of_code i)));
                ("cat", Json.Str "gc");
                ("ph", Json.Str "E");
                ("ts", Json.Num (us_of_ns last));
                ("pid", Json.int pid);
                ("tid", Json.int pid);
              ]
            :: !acc)
    open_stack;
  !acc

let chrome_json ?(metadata = []) sink =
  let events = ref [] in
  Sink.iter sink (fun e -> events := chrome_event e :: !events);
  let events = List.rev_append !events (closing_events sink) in
  Json.Obj
    (("traceEvents", Json.List events)
     ::
     ("displayTimeUnit", Json.Str "ms")
     ::
     ("otherData",
      Json.Obj
        (("emitted", Json.int (Sink.total sink))
         :: ("dropped", Json.int (Sink.dropped sink))
         :: metadata))
     :: [])

let write_chrome_json ?metadata sink oc =
  output_string oc (Json.to_string (chrome_json ?metadata sink));
  output_char oc '\n'

let csv_header = "ts_ns,kind,a,b"

let csv sink buf =
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  Sink.iter sink (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%d,%d\n" e.Event.ts_ns
           (Event.kind_name e.Event.kind)
           e.Event.a e.Event.b))

(* ------------------------------------------------------------------ *)
(* ASCII timeline                                                      *)

type lane = { label : string; marks : int array }

let lane_of (e : Event.t) =
  match e.Event.kind with
  | Event.Phase_begin | Event.Phase_end -> (
      match Event.phase_of_code e.Event.a with
      | Event.Minor -> Some 0
      | Event.Full | Event.Failsafe -> Some 1
      | Event.Compacting -> Some 2
      | _ -> None (* sub-phases would just shadow their collection *))
  | Event.Major_fault -> Some 3
  | Event.Eviction_notice -> Some 4
  | Event.Eviction | Event.Forced_eviction -> Some 5
  | Event.Discard | Event.Relinquish -> Some 6
  | Event.Swap_read | Event.Swap_write -> Some 7
  | Event.Fault_injected -> Some 8
  | Event.Pressure_step -> Some 9
  | Event.Request_done -> Some 10
  | Event.Control_state_change -> Some 11
  | _ -> None

let lane_labels =
  [| "minor gc"; "full gc"; "compacting"; "major fault"; "evict notice";
     "eviction"; "discard"; "swap io"; "injected"; "pressure"; "requests";
     "control" |]

let ascii_timeline ?(width = 72) sink ppf =
  let first, last = Sink.span_ns sink in
  let span = max 1 (last - first) in
  let lanes =
    Array.map (fun label -> { label; marks = Array.make width 0 }) lane_labels
  in
  Sink.iter sink (fun e ->
      match lane_of e with
      | None -> ()
      | Some l ->
          let col =
            min (width - 1) ((e.Event.ts_ns - first) * width / span)
          in
          lanes.(l).marks.(col) <- lanes.(l).marks.(col) + 1);
  Format.fprintf ppf "timeline: %.3fms .. %.3fms (%.3fms span)@."
    (float_of_int first /. 1e6)
    (float_of_int last /. 1e6)
    (float_of_int span /. 1e6);
  Array.iter
    (fun lane ->
      if Array.exists (fun n -> n > 0) lane.marks then begin
        Format.fprintf ppf "%12s |" lane.label;
        Array.iter
          (fun n ->
            let c =
              if n = 0 then ' '
              else if n < 3 then '.'
              else if n < 10 then ':'
              else if n < 50 then '*'
              else '#'
            in
            Format.pp_print_char ppf c)
          lane.marks;
        Format.fprintf ppf "|@."
      end)
    lanes

(* Event taxonomy for the structured trace.

   An event is a (timestamp, kind, a, b) quadruple; [a] and [b] are
   integer payloads whose meaning depends on the kind (documented on each
   constructor). Keeping the payload as two plain ints means a sink can
   store events in pre-allocated flat arrays and emission never allocates,
   even with tracing on. *)

(* GC phase spans. The first four are whole collections (one per
   [Gc_stats.pause_kind], plus the §3.5 fail-safe which the pause clock
   books as Full); the rest are sub-phases BC emits inside a collection. *)
type phase =
  | Minor
  | Full
  | Compacting
  | Failsafe
  | Mark  (* full-heap marking, bookmarks as roots *)
  | Sweep  (* superpage + LOS sweep *)
  | Evacuate  (* nursery evacuation into the mature space *)
  | Bookmark_scan  (* scanning a victim page before surrendering it *)
  | Reconcile  (* replaying kernel truth lost to an unreliable channel *)

let phase_code = function
  | Minor -> 0
  | Full -> 1
  | Compacting -> 2
  | Failsafe -> 3
  | Mark -> 4
  | Sweep -> 5
  | Evacuate -> 6
  | Bookmark_scan -> 7
  | Reconcile -> 8

let phase_of_code = function
  | 0 -> Minor
  | 1 -> Full
  | 2 -> Compacting
  | 3 -> Failsafe
  | 4 -> Mark
  | 5 -> Sweep
  | 6 -> Evacuate
  | 7 -> Bookmark_scan
  | 8 -> Reconcile
  | n -> invalid_arg (Printf.sprintf "Telemetry.Event.phase_of_code: %d" n)

let phase_name = function
  | Minor -> "minor"
  | Full -> "full"
  | Compacting -> "compacting"
  | Failsafe -> "failsafe"
  | Mark -> "mark"
  | Sweep -> "sweep"
  | Evacuate -> "evacuate"
  | Bookmark_scan -> "bookmark-scan"
  | Reconcile -> "reconcile"

let all_phases =
  [ Minor; Full; Compacting; Failsafe; Mark; Sweep; Evacuate; Bookmark_scan;
    Reconcile ]

(* Collection-level phases (the "GC phase kinds" a trace summary and the
   CI smoke check reason about, as opposed to BC-internal sub-phases). *)
let collection_phases = [ Minor; Full; Compacting; Failsafe ]

(* Injected-fault codes carried by [Fault_injected]. *)
type injection =
  | Dropped_eviction
  | Dropped_resident
  | Delayed_notice
  | Duplicated_notice
  | Reordered_flush
  | Swap_write_error
  | Swap_read_error
  | Swap_full
  | Pressure_spike

let injection_code = function
  | Dropped_eviction -> 0
  | Dropped_resident -> 1
  | Delayed_notice -> 2
  | Duplicated_notice -> 3
  | Reordered_flush -> 4
  | Swap_write_error -> 5
  | Swap_read_error -> 6
  | Swap_full -> 7
  | Pressure_spike -> 8

let injection_of_code = function
  | 0 -> Dropped_eviction
  | 1 -> Dropped_resident
  | 2 -> Delayed_notice
  | 3 -> Duplicated_notice
  | 4 -> Reordered_flush
  | 5 -> Swap_write_error
  | 6 -> Swap_read_error
  | 7 -> Swap_full
  | 8 -> Pressure_spike
  | n -> invalid_arg (Printf.sprintf "Telemetry.Event.injection_of_code: %d" n)

let injection_name = function
  | Dropped_eviction -> "dropped-eviction"
  | Dropped_resident -> "dropped-resident"
  | Delayed_notice -> "delayed-notice"
  | Duplicated_notice -> "duplicated-notice"
  | Reordered_flush -> "reordered-flush"
  | Swap_write_error -> "swap-write-error"
  | Swap_read_error -> "swap-read-error"
  | Swap_full -> "swap-full"
  | Pressure_spike -> "pressure-spike"

(* Every constructor is constant: storing a kind is storing an immediate.
   Payload conventions:
     Phase_begin / Phase_end    a = phase code             b = owner pid
     Alloc_slice                a = ops done so far        b = allocated bytes
     Eviction_notice            a = page                   b = owner pid
     Made_resident              a = page                   b = owner pid
     Major_fault / Minor_fault /
     Protection_fault           a = page                   b = owner pid
     Eviction / Forced_eviction a = page                   b = owner pid
     Discard / Relinquish       a = page                   b = owner pid
     Swap_read / Swap_write     a = page                   b = owner pid
     Fault_injected             a = injection code         b = page (or 0)
     Pressure_step              a = pinned pages now       b = delta (+/-)
     Gauge_resident             a = resident frames        b = free frames
     Proc_progress              a = owner pid              b = allocated bytes
     Request_arrival            a = request index          b = owner pid
     Request_done               a = request index          b = latency ns
     Control_decision           a = controller state code  b = window index
     Control_state_change       a = old state code         b = new state code *)
type kind =
  | Phase_begin
  | Phase_end
  | Alloc_slice
  | Eviction_notice
  | Made_resident
  | Major_fault
  | Minor_fault
  | Protection_fault
  | Eviction
  | Forced_eviction
  | Discard
  | Relinquish
  | Swap_read
  | Swap_write
  | Fault_injected
  | Pressure_step
  | Gauge_resident
  | Proc_progress
  | Request_arrival
  | Request_done
  | Control_decision
  | Control_state_change

let kind_code = function
  | Phase_begin -> 0
  | Phase_end -> 1
  | Alloc_slice -> 2
  | Eviction_notice -> 3
  | Made_resident -> 4
  | Major_fault -> 5
  | Minor_fault -> 6
  | Protection_fault -> 7
  | Eviction -> 8
  | Forced_eviction -> 9
  | Discard -> 10
  | Relinquish -> 11
  | Swap_read -> 12
  | Swap_write -> 13
  | Fault_injected -> 14
  | Pressure_step -> 15
  | Gauge_resident -> 16
  | Proc_progress -> 17
  | Request_arrival -> 18
  | Request_done -> 19
  | Control_decision -> 20
  | Control_state_change -> 21

let kind_count = 22

let all_kinds =
  [ Phase_begin; Phase_end; Alloc_slice; Eviction_notice; Made_resident;
    Major_fault; Minor_fault; Protection_fault; Eviction; Forced_eviction;
    Discard; Relinquish; Swap_read; Swap_write; Fault_injected; Pressure_step;
    Gauge_resident; Proc_progress; Request_arrival; Request_done;
    Control_decision; Control_state_change ]

let kind_name = function
  | Phase_begin -> "phase-begin"
  | Phase_end -> "phase-end"
  | Alloc_slice -> "alloc-slice"
  | Eviction_notice -> "eviction-notice"
  | Made_resident -> "made-resident"
  | Major_fault -> "major-fault"
  | Minor_fault -> "minor-fault"
  | Protection_fault -> "protection-fault"
  | Eviction -> "eviction"
  | Forced_eviction -> "forced-eviction"
  | Discard -> "discard"
  | Relinquish -> "relinquish"
  | Swap_read -> "swap-read"
  | Swap_write -> "swap-write"
  | Fault_injected -> "fault-injected"
  | Pressure_step -> "pressure-step"
  | Gauge_resident -> "gauge-resident"
  | Proc_progress -> "proc-progress"
  | Request_arrival -> "request-arrival"
  | Request_done -> "request-done"
  | Control_decision -> "control-decision"
  | Control_state_change -> "control-state-change"

(* Decoded view handed to consumers (exporters, summaries, tests). *)
type t = { ts_ns : int; kind : kind; a : int; b : int }

let pp ppf e =
  Format.fprintf ppf "%d %s" e.ts_ns (kind_name e.kind);
  match e.kind with
  | Phase_begin | Phase_end ->
      Format.fprintf ppf " %s" (phase_name (phase_of_code e.a))
  | Fault_injected ->
      Format.fprintf ppf " %s page=%d" (injection_name (injection_of_code e.a))
        e.b
  | Alloc_slice -> Format.fprintf ppf " ops=%d bytes=%d" e.a e.b
  | Pressure_step -> Format.fprintf ppf " pinned=%d delta=%+d" e.a e.b
  | Gauge_resident -> Format.fprintf ppf " resident=%d free=%d" e.a e.b
  | Proc_progress -> Format.fprintf ppf " pid=%d bytes=%d" e.a e.b
  | Request_arrival -> Format.fprintf ppf " req=%d pid=%d" e.a e.b
  | Request_done -> Format.fprintf ppf " req=%d latency=%dns" e.a e.b
  | Control_decision -> Format.fprintf ppf " state=%d window=%d" e.a e.b
  | Control_state_change -> Format.fprintf ppf " %d->%d" e.a e.b
  | _ -> Format.fprintf ppf " page=%d pid=%d" e.a e.b

(* Derived views of a sink's event stream: per-phase duration histograms,
   per-kind counts, and an ASCII summary for the terminal. All of this is
   computed from the retained ring (plus the exact counters), never
   maintained online, so the emission fast path stays four array writes. *)

type phase_stat = {
  phase : Event.phase;
  count : int;  (* completed spans seen in the retained window *)
  total_ns : int;
  max_ns : int;
  hist : Histogram.t;
}

(* Pair Phase_begin/Phase_end events per phase. Spans of the same phase
   never nest (a nested collection reuses the outer pause; sub-phases are
   distinct phase values), so one open-timestamp slot per phase suffices.
   Unmatched begins (still open, or whose end fell off the ring) are
   ignored. *)
let phases sink =
  let nphases = List.length Event.all_phases in
  let open_ts = Array.make nphases (-1) in
  let stats =
    Array.init nphases (fun i ->
        {
          phase = Event.phase_of_code i;
          count = 0;
          total_ns = 0;
          max_ns = 0;
          hist = Histogram.create ();
        })
  in
  Sink.iter sink (fun e ->
      match e.Event.kind with
      | Event.Phase_begin -> open_ts.(e.Event.a) <- e.Event.ts_ns
      | Event.Phase_end ->
          let i = e.Event.a in
          if open_ts.(i) >= 0 then begin
            let d = e.Event.ts_ns - open_ts.(i) in
            open_ts.(i) <- -1;
            let s = stats.(i) in
            Histogram.add s.hist d;
            stats.(i) <-
              {
                s with
                count = s.count + 1;
                total_ns = s.total_ns + d;
                max_ns = max s.max_ns d;
              }
          end
      | _ -> ());
  List.filter (fun s -> s.count > 0) (Array.to_list stats)

let kind_counts sink =
  List.filter_map
    (fun kind ->
      let n = Sink.count sink kind in
      if n > 0 then Some (kind, n) else None)
    Event.all_kinds

(* Collection-level phases observed anywhere in the run (exact even after
   the ring wraps: a span's begin and end both bump the Phase_begin /
   Phase_end counters, and sub-phase spans only occur inside collections,
   so we re-derive from retained events but fall back to counters for
   presence). *)
let observed_collection_phases sink =
  let seen = Array.make (List.length Event.all_phases) false in
  Sink.iter sink (fun e ->
      match e.Event.kind with
      | Event.Phase_begin | Event.Phase_end -> seen.(e.Event.a) <- true
      | _ -> ());
  List.filter
    (fun p -> seen.(Event.phase_code p))
    Event.collection_phases

let pp ppf sink =
  let first, last = Sink.span_ns sink in
  Format.fprintf ppf
    "trace: %d events retained (%d emitted, %d dropped), %.3fms window@."
    (Sink.length sink) (Sink.total sink) (Sink.dropped sink)
    (float_of_int (last - first) /. 1e6);
  List.iter
    (fun (kind, n) ->
      Format.fprintf ppf "  %-18s %d@." (Event.kind_name kind) n)
    (kind_counts sink);
  match phases sink with
  | [] -> ()
  | stats ->
      Format.fprintf ppf "phases:@.";
      List.iter
        (fun s ->
          Format.fprintf ppf "  %-14s n=%-5d total=%.3fms mean=%.3fms max=%.3fms@."
            (Event.phase_name s.phase) s.count
            (float_of_int s.total_ns /. 1e6)
            (Histogram.mean_ns s.hist /. 1e6)
            (float_of_int s.max_ns /. 1e6))
        stats

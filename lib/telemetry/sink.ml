(* Pre-allocated ring buffer of trace events plus exact per-kind counters.

   The ring holds the newest [capacity] events (older ones are overwritten
   — [dropped] says how many); the counter array is updated on every
   emission, so totals stay exact even after the ring wraps. Emission
   writes four flat array slots and bumps two counters: no allocation, no
   clock interaction, so attaching a sink can never change virtual-time
   results. *)

type t = {
  ts : int array;
  kinds : Event.kind array;
  a : int array;
  b : int array;
  capacity : int;
  mutable next : int;  (* next write index in the ring *)
  mutable total : int;  (* events ever emitted *)
  counts : int array;  (* per-kind emission totals, indexed by kind code *)
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Telemetry.Sink.create: capacity";
  {
    ts = Array.make capacity 0;
    kinds = Array.make capacity Event.Phase_begin;
    a = Array.make capacity 0;
    b = Array.make capacity 0;
    capacity;
    next = 0;
    total = 0;
    counts = Array.make Event.kind_count 0;
  }

let capacity t = t.capacity

let total t = t.total

let length t = min t.total t.capacity

let dropped t = max 0 (t.total - t.capacity)

let emit t ~ts_ns kind a b =
  let i = t.next in
  t.ts.(i) <- ts_ns;
  t.kinds.(i) <- kind;
  t.a.(i) <- a;
  t.b.(i) <- b;
  t.next <- (if i + 1 = t.capacity then 0 else i + 1);
  t.total <- t.total + 1;
  let c = Event.kind_code kind in
  t.counts.(c) <- t.counts.(c) + 1

let count t kind = t.counts.(Event.kind_code kind)

let clear t =
  t.next <- 0;
  t.total <- 0;
  Array.fill t.counts 0 Event.kind_count 0

(* Iterate the retained events, oldest first. *)
let iter t f =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  for i = 0 to n - 1 do
    let j = (start + i) mod t.capacity in
    f { Event.ts_ns = t.ts.(j); kind = t.kinds.(j); a = t.a.(j); b = t.b.(j) }
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let span_ns t =
  let n = length t in
  if n = 0 then (0, 0)
  else begin
    let first = ref max_int and last = ref min_int in
    iter t (fun e ->
        if e.Event.ts_ns < !first then first := e.Event.ts_ns;
        if e.Event.ts_ns > !last then last := e.Event.ts_ns);
    (!first, !last)
  end

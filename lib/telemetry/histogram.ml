(* Power-of-two duration histogram: bucket i holds durations in
   [2^i, 2^(i+1)) nanoseconds, with an exact count, sum and max. *)

let nbuckets = 48

type t = {
  buckets : int array;
  mutable count : int;
  mutable total_ns : int;
  mutable max_ns : int;
}

let create () =
  { buckets = Array.make nbuckets 0; count = 0; total_ns = 0; max_ns = 0 }

let bucket_of_ns ns =
  if ns <= 0 then 0
  else begin
    let b = ref 0 in
    let v = ref ns in
    while !v > 1 do
      v := !v lsr 1;
      incr b
    done;
    min !b (nbuckets - 1)
  end

let bucket_lo i = if i = 0 then 0 else 1 lsl i

let add t ns =
  let ns = max 0 ns in
  t.buckets.(bucket_of_ns ns) <- t.buckets.(bucket_of_ns ns) + 1;
  t.count <- t.count + 1;
  t.total_ns <- t.total_ns + ns;
  if ns > t.max_ns then t.max_ns <- ns

let count t = t.count

let total_ns t = t.total_ns

let max_ns t = t.max_ns

let mean_ns t = if t.count = 0 then 0.0 else float_of_int t.total_ns /. float_of_int t.count

(* Smallest bucket upper bound below which at least [p] of the samples
   fall — a conservative percentile from bucketed data. *)
let percentile_ns t p =
  if t.count = 0 then 0
  else begin
    let want =
      int_of_float (ceil (p *. float_of_int t.count)) |> max 1 |> min t.count
    in
    let seen = ref 0 and result = ref (2 * t.max_ns) in
    (try
       for i = 0 to nbuckets - 1 do
         seen := !seen + t.buckets.(i);
         if !seen >= want then begin
           result := min t.max_ns (bucket_lo (i + 1));
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let iter_nonempty t f =
  Array.iteri (fun i n -> if n > 0 then f ~lo_ns:(bucket_lo i) ~count:n) t.buckets

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else begin
    Format.fprintf ppf "n=%d mean=%.3fms max=%.3fms" t.count
      (mean_ns t /. 1e6)
      (float_of_int t.max_ns /. 1e6);
    iter_nonempty t (fun ~lo_ns ~count ->
        Format.fprintf ppf " [>=%.3fms:%d]" (float_of_int lo_ns /. 1e6) count)
  end

(* Minimal JSON tree, printer and recursive-descent parser — enough to
   write Chrome trace_event files and to validate/summarise them without
   pulling in an external dependency. Numbers are kept as floats (ints
   print without a fractional part); strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.6g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

type parser_state = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st lit v =
  if
    st.pos + String.length lit <= String.length st.s
    && String.sub st.s st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    v
  end
  else fail st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string"
    else begin
      let c = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (if st.pos >= String.length st.s then fail st "bad escape"
           else
             let e = st.s.[st.pos] in
             st.pos <- st.pos + 1;
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
                 if st.pos + 4 > String.length st.s then fail st "bad \\u"
                 else begin
                   let hex = String.sub st.s st.pos 4 in
                   st.pos <- st.pos + 4;
                   match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail st "bad \\u"
                   | Some code ->
                       (* raw codepoint; fine for the ASCII we emit *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
                 end
             | _ -> fail st "bad escape");
          go ()
      | c -> Buffer.add_char buf c; go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let numchar c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && numchar st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> Num f
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        expect st '}';
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              fields ((k, v) :: acc)
          | Some '}' ->
              expect st '}';
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        expect st ']';
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              items (v :: acc)
          | Some ']' ->
              expect st ']';
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* Accessors for consumers walking parsed trees. *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List items -> Some items | _ -> None

let str_opt = function Str s -> Some s | _ -> None

let num_opt = function Num f -> Some f | _ -> None

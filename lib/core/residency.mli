(** BC's in-runtime page residency bit array (§3.3.1).

    "To limit overhead due to communication with the virtual memory
    manager, BC tracks page residency internally." The collector consults
    this — never the kernel — when deciding which pointers to follow, and
    keeps it synchronised from allocation, eviction notices and reload
    events. The footprint estimate drives heap-size limiting (§3.3.3). *)

type t

val create : unit -> t

val mark_resident : t -> int -> unit

val mark_evicted : t -> int -> unit

val is_resident : t -> int -> bool

val footprint_pages : t -> int
(** Number of pages currently believed resident. *)

val iter_resident : t -> (int -> unit) -> unit
(** Visit every page believed resident — the belief side of the
    kernel-reconciliation pass run when notices may have been lost. *)

val word_empty_peers : t -> int -> (int -> bool) -> int list
(** [word_empty_peers t page is_empty] lists the pages sharing [page]'s
    bit-array word that are resident and satisfy [is_empty] — the
    aggressive-discard granularity of §3.4.3. [page] itself is included
    when it qualifies. *)

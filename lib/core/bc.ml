module Vec = Repro_util.Vec
module Bitset = Repro_util.Bitset
module Collector = Gc_common.Collector
module Charge = Gc_common.Charge
module Gc_stats = Gc_common.Gc_stats
module Gc_config = Gc_common.Gc_config
module Space_tag = Baselines.Space_tag

let name = "BC"

let doc = "bookmarking collector (the paper's BC)"

let resizing_only_name = "BC-resize"

let los_threshold = Gc_common.Size_class.max_cell

(* Never shrink the target footprint below this many pages. *)
let footprint_floor_pages = 32

type ledger_entry = {
  sps : Superpage.sp list;  (* incoming counters incremented *)
  targets : Heapsim.Obj_id.t list;  (* resident targets whose bookmark
                                       count we incremented *)
  self : Heapsim.Obj_id.t list;  (* conservative self-bookmarks *)
  nonsp : bool;  (* counted one global cover for non-resident targets
                    outside the superpage space (nursery / LOS) *)
}

type t = {
  heap : Heapsim.Heap.t;
  config : Gc_config.t;
  opts : Gc_config.bc_opts;
  stats : Gc_stats.t;
  nursery : Gc_common.Bump_space.t;
  nursery_objects : Heapsim.Obj_id.t Vec.t;
  sp_space : Superpage.t;
  los : Gc_common.Large_object_space.t;
  cards : Gc_common.Card_table.t;
  wbuf : Gc_common.Write_buffer.t;
  residency : Residency.t;
  discarded : Bitset.t;  (* madvised pages: non-resident but cheap to reuse *)
  sp_seen : Bitset.t;  (* superpage indexes whose pages are tracked *)
  ledger : (int, ledger_entry) Hashtbl.t;
      (* evicted page -> exactly which superpage counters and which
         objects' bookmark counts its eviction scan incremented. The paper
         recomputes this from the reloaded page's pointers; we keep an
         exact ledger so the invariants survive object motion between
         eviction and reload. *)
  bookmark_counts : (int, int) Hashtbl.t;
      (* object id -> number of evicted pages whose summary covers it;
         the object-header bookmark bit is set iff the count is positive.
         The paper stores only the bit and clears approximately; exact
         counts keep clearing sound in every interleaving. *)
  empty_candidates : int Vec.t;
  pending_roots : Heapsim.Obj_id.t Vec.t;
      (* objects bookmarked while a trace is running; re-seeded so mid-GC
         evictions cannot hide connectivity *)
  mutable target_footprint : int option;  (* pages; None = config limit *)
  mutable controller_cap : int option;
      (* external footprint cap (controller knob); composes with
         [target_footprint] by [min] so §3.3.3's own adaptation keeps
         running below it rather than clobbering it on the next notice *)
  mutable notice_batch : int;
      (* empty pages surrendered per eviction notice (controller knob;
         default 1 = historical behaviour) *)
  mutable relinquish_extra : int;
      (* extra coldest pages bookmarked-and-evicted per notice beyond the
         victim (controller knob; default 0 = historical behaviour) *)
  mutable epoch : int;
  mutable in_gc : bool;
  mutable gc_requested : bool;
  sp_deferred : (int, Heapsim.Obj_id.t list ref) Hashtbl.t;
      (* superpage index -> self-covers waiting for its incoming counter
         to reach zero (§3.4.2's deferred conservative clearing) *)
  nonsp_deferred : Heapsim.Obj_id.t Vec.t;
  mutable nonsp_incoming : int;
      (* evicted pages with pointers to non-resident nursery/LOS targets *)
  mutable evicted_count : int;
  mutable failsafe_count : int;
  mutable failsafe_needed : bool;
      (* set when an unreliable kernel left our accounting inconsistent
         (counter underflow, handler failure); the next collection runs
         the §3.5 fail-safe, which rebuilds liveness from scratch *)
  mutable spurious_resident : int;
      (* made-resident signals for pages the kernel does not actually
         hold — acting on one would release covers still needed *)
  mutable reconciled : int;
      (* lost notices detected and replayed against kernel truth *)
  mutable handler_faults : int;
      (* exceptions swallowed inside paging-signal handlers *)
}

(* ------------------------------------------------------------------ *)
(* Residency                                                           *)

let resident_ok t page =
  Residency.is_resident t.residency page || Bitset.mem t.discarded page

let obj_resident t id =
  let ok = ref true in
  Heapsim.Heap.iter_pages t.heap id (fun page ->
      if not (resident_ok t page) then ok := false);
  !ok

(* Track the pages of a freshly placed object in the residency map. *)
let note_placed t id =
  Heapsim.Heap.iter_pages t.heap id (fun page ->
      Bitset.clear t.discarded page;
      Residency.mark_resident t.residency page)

let track_new_superpage t (sp : Superpage.sp) =
  if not (Bitset.mem t.sp_seen sp.Superpage.index) then begin
    Bitset.set t.sp_seen sp.Superpage.index;
    for
      page = sp.Superpage.first_page
      to sp.Superpage.first_page + Vmsim.Page.pages_per_superpage - 1
    do
      Bitset.clear t.discarded page;
      Residency.mark_resident t.residency page
    done;
    (* metadata write: the header page is touched and stays resident *)
    Vmsim.Vmm.touch (Heapsim.Heap.vmm t.heap) ~write:true
      sp.Superpage.first_page
  end

(* ------------------------------------------------------------------ *)
(* Heap sizing (§3.3.3)                                                *)

let effective_heap_pages t =
  let config_pages = Gc_config.heap_pages t.config in
  let own =
    match t.target_footprint with
    | None -> config_pages
    | Some target -> min config_pages (max target footprint_floor_pages)
  in
  match t.controller_cap with
  | None -> own
  | Some cap -> min own (max cap footprint_floor_pages)

let min_nursery_pages =
  Vmsim.Page.count_for_bytes Baselines.Gen_shared.min_nursery_bytes

let mature_pages t =
  Superpage.pages_acquired t.sp_space
  + Gc_common.Large_object_space.pages_in_use t.los

let total_pages t = mature_pages t + Gc_common.Bump_space.used_pages t.nursery

let nursery_limit t =
  let effective_bytes = effective_heap_pages t * Vmsim.Page.size in
  match t.config.Gc_config.nursery with
  | Gc_config.Fixed n -> max n Baselines.Gen_shared.min_nursery_bytes
  | Gc_config.Appel ->
      let free = effective_bytes - (mature_pages t * Vmsim.Page.size) in
      max (free / 2) Baselines.Gen_shared.min_nursery_bytes

let grow_sp t () =
  let needed = mature_pages t + Vmsim.Page.pages_per_superpage in
  if needed <= effective_heap_pages t - min_nursery_pages then true
  else begin
    let config_pages = Gc_config.heap_pages t.config in
    if needed <= config_pages - min_nursery_pages then begin
      (* growing past the footprint target "when this is necessary for
         program completion" (§3.3.3) — at the price of paging *)
      t.target_footprint <- Some (needed + min_nursery_pages);
      true
    end
    else false
  end

let shrink_target t =
  (* "uses the new estimate as the target footprint" (§3.3.3): the target
     tracks the current footprint rather than ratcheting monotonically *)
  let current = Residency.footprint_pages t.residency in
  t.target_footprint <- Some (max footprint_floor_pages (current - 1))

(* ------------------------------------------------------------------ *)
(* Empty-page discarding (§3.3.2, §3.4.3)                              *)

let page_has_objects t page =
  Heapsim.Page_map.count_on (Heapsim.Heap.page_map t.heap) page > 0

let header_in_use t page =
  Superpage.is_header_page t.sp_space page
  &&
  match Superpage.sp_of_page t.sp_space page with
  | Some sp -> sp.Superpage.cells_total > 0
  | None -> false

let discardable t page =
  Residency.is_resident t.residency page
  && (not (header_in_use t page))
  && (not (page_has_objects t page))
  && (Superpage.owns_page t.sp_space page
     ||
     let first = Gc_common.Bump_space.first_page t.nursery in
     page >= first && page < first + Gc_common.Bump_space.npages t.nursery)

let discard_page t page =
  Vmsim.Vmm.madvise_dontneed (Heapsim.Heap.vmm t.heap) page;
  Residency.mark_evicted t.residency page;
  Bitset.set t.discarded page

(* Discard [page] and, aggressively, every discardable page sharing its
   residency-bitmap word (§3.4.3). Returns how many pages were freed. *)
let discard_with_peers t page =
  if t.opts.Gc_config.aggressive_discard then begin
    let peers =
      Residency.word_empty_peers t.residency page (discardable t)
    in
    List.iter (discard_page t) peers;
    List.length peers
  end
  else begin
    discard_page t page;
    1
  end

(* Pop a validated empty page from the candidate store. *)
let rec find_discardable t =
  if Vec.is_empty t.empty_candidates then None
  else begin
    let page = Vec.pop t.empty_candidates in
    if discardable t page then Some page else find_discardable t
  end

let count_valid_candidates t ~limit =
  let n = ref 0 in
  let i = ref (Vec.length t.empty_candidates - 1) in
  while !n < limit && !i >= 0 do
    if discardable t (Vec.get t.empty_candidates !i) then incr n;
    decr i
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Bookmarking (§3.4)                                                  *)

(* Add one evicted-page cover to an object's bookmark. *)
let bookmark_ref t id =
  let objects = Heapsim.Heap.objects t.heap in
  let n = Option.value (Hashtbl.find_opt t.bookmark_counts id) ~default:0 in
  Hashtbl.replace t.bookmark_counts id (n + 1);
  if n = 0 then begin
    Heapsim.Object_table.set_bookmarked objects id true;
    if t.in_gc then Vec.push t.pending_roots id
  end

(* Release one cover; the bit clears when the last cover goes (§3.4.2). *)
let bookmark_unref t id =
  let objects = Heapsim.Heap.objects t.heap in
  if Heapsim.Object_table.is_live objects id then
    match Hashtbl.find_opt t.bookmark_counts id with
    | Some n when n > 1 -> Hashtbl.replace t.bookmark_counts id (n - 1)
    | Some _ ->
        Hashtbl.remove t.bookmark_counts id;
        Heapsim.Object_table.set_bookmarked objects id false
    | None -> ()

(* Scan a victim page, bookmark the targets of its outgoing references,
   bump the targets' superpage incoming counters (once per target
   superpage), conservatively bookmark the page's own objects, then
   surrender the page. *)
let bookmark_and_evict t victim =
  let heap = t.heap in
  let objects = Heapsim.Heap.objects heap in
  let vmm = Heapsim.Heap.vmm heap in
  (* scanning reads the victim page (still resident) *)
  Vmsim.Vmm.touch vmm ~write:false victim;
  let incremented : (int, Superpage.sp) Hashtbl.t = Hashtbl.create 8 in
  let counted = ref [] in
  let selves = ref [] in
  let nonsp = ref false in
  let on_page = Heapsim.Page_map.objects_on (Heapsim.Heap.page_map heap) victim in
  Array.iter
    (fun id ->
      Charge.object_visit heap;
      Heapsim.Object_table.iter_refs objects id (fun _field target ->
          (* stale references out of floating garbage may dangle *)
          if Heapsim.Object_table.is_live objects target then begin
            (* counters live in always-resident superpage headers, so they
               are updated for every target — even non-resident ones; the
               bookmark bit lives in the target's own header and is only
               set when that is resident (conservative page bookmarks plus
               the counter cover the rest) *)
            (match Superpage.sp_of_addr t.sp_space
                     (Heapsim.Object_table.addr objects target)
             with
            | Some tsp when not (Hashtbl.mem incremented tsp.Superpage.index)
              ->
                Hashtbl.add incremented tsp.Superpage.index tsp;
                tsp.Superpage.incoming <- tsp.Superpage.incoming + 1
            | Some _ -> ()
            | None ->
                (* nursery / LOS target: one global cover per victim page
                   keeps their conservative self-bookmarks deferred *)
                if not (obj_resident t target) then nonsp := true);
            if obj_resident t target then begin
              bookmark_ref t target;
              counted := target :: !counted
            end
          end);
      (* conservative bookmark on the evictee itself *)
      bookmark_ref t id;
      selves := id :: !selves)
    on_page;
  if !nonsp then t.nonsp_incoming <- t.nonsp_incoming + 1;
  (match Hashtbl.find_opt t.ledger victim with
  | None -> ()
  | Some stale ->
      (* the page was surrendered, reloaded behind our back and is being
         evicted again: release the previous increments first *)
      List.iter
        (fun (sp : Superpage.sp) ->
          if sp.Superpage.incoming > 0 then
            sp.Superpage.incoming <- sp.Superpage.incoming - 1)
        stale.sps;
      List.iter (bookmark_unref t) stale.targets;
      List.iter (bookmark_unref t) stale.self;
      if stale.nonsp && t.nonsp_incoming > 0 then
        t.nonsp_incoming <- t.nonsp_incoming - 1);
  Hashtbl.replace t.ledger victim
    {
      sps = Hashtbl.fold (fun _ sp acc -> sp :: acc) incremented [];
      targets = !counted;
      self = !selves;
      nonsp = !nonsp;
    };
  Residency.mark_evicted t.residency victim;
  Bitset.clear t.discarded victim;
  Superpage.note_page_evicted t.sp_space victim;
  t.evicted_count <- t.evicted_count + 1;
  (* prevent the eviction race (§3.4), then surrender the page *)
  Vmsim.Vmm.mprotect vmm victim ~protect:true;
  Vmsim.Vmm.vm_relinquish vmm [ victim ]

let bookmark_and_evict t victim =
  Gc_common.Pause.span t.heap Telemetry.Event.Bookmark_scan (fun () ->
      bookmark_and_evict t victim)

(* A page of ours came back (mutator fault or protection-fault upcall):
   update residency, release its ledger entry, clear now-unnecessary
   bookmarks (§3.4.2) and re-remember its old-to-young pointers. *)
let page_reloaded t page =
  let heap = t.heap in
  let objects = Heapsim.Heap.objects heap in
  let vmm = Heapsim.Heap.vmm heap in
  if not (Vmsim.Vmm.is_resident vmm page) then
    (* A made-resident signal for a page the kernel does not hold: a
       duplicated or badly delayed notice from an unreliable channel.
       Releasing the ledger entry of a page that is still on disk would
       drop covers the next trace needs, so ignore it — the genuine
       reload will raise its own (reliable) protection-fault upcall. *)
    t.spurious_resident <- t.spurious_resident + 1
  else begin
    if not (resident_ok t page) then begin
      if t.evicted_count > 0 then t.evicted_count <- t.evicted_count - 1;
      Residency.mark_resident t.residency page;
      Bitset.clear t.discarded page;
      Superpage.note_page_resident t.sp_space page ~resident:(resident_ok t);
      let on_page =
        Heapsim.Page_map.objects_on (Heapsim.Heap.page_map heap) page
      in
      Array.iter
        (fun id ->
          Charge.object_visit heap;
          (* the page's pointers may include old-to-young edges whose
             bookmarks we are about to release: re-remember them *)
          if Heapsim.Object_table.nrefs objects id > 0 then
            Gc_common.Card_table.mark_addr t.cards
              (Heapsim.Object_table.addr objects id))
        on_page
    end;
    if Vmsim.Vmm.is_protected vmm page then
      (* protection-fault race window (§3.4), or the normal unprotect on
         the reload path *)
      Vmsim.Vmm.mprotect vmm page ~protect:false;
    (* The ledger entry goes whenever the kernel confirms the page back,
       even if our own belief already said resident — under an unreliable
       notice channel the two can disagree (a duplicated reload event, or
       a handler fault that applied the residency half of a previous
       replay); a kernel-resident page never needs covers. *)
    (match Hashtbl.find_opt t.ledger page with
    | None -> ()
    | Some entry ->
        Hashtbl.remove t.ledger page;
        List.iter
          (fun (sp : Superpage.sp) ->
            if sp.Superpage.incoming > 0 then
              sp.Superpage.incoming <- sp.Superpage.incoming - 1
            else
              (* counter underflow: some notice was lost or replayed out
                 of order; schedule the fail-safe to rebuild the exact
                 state rather than guessing *)
              t.failsafe_needed <- true;
            (* a superpage whose incoming count reaches zero releases its
               deferred conservative bookmarks (§3.4.2) *)
            if sp.Superpage.incoming = 0 then
              match Hashtbl.find_opt t.sp_deferred sp.Superpage.index with
              | None -> ()
              | Some ids ->
                  Hashtbl.remove t.sp_deferred sp.Superpage.index;
                  List.iter (bookmark_unref t) !ids)
          entry.sps;
        if entry.nonsp then begin
          if t.nonsp_incoming > 0 then
            t.nonsp_incoming <- t.nonsp_incoming - 1
          else t.failsafe_needed <- true;
          if t.nonsp_incoming = 0 then begin
            Vec.iter (bookmark_unref t) t.nonsp_deferred;
            Vec.clear t.nonsp_deferred
          end
        end;
        (* release the covers of this page's resident targets *)
        List.iter (bookmark_unref t) entry.targets;
        (* conservative self-bookmarks: released only once no evicted
           page can still point into this page's container (§3.4.2) *)
        if t.opts.Gc_config.conservative_clear then begin
          match Superpage.sp_of_page t.sp_space page with
          | Some sp ->
              if sp.Superpage.incoming = 0 then
                List.iter (bookmark_unref t) entry.self
              else begin
                let ids =
                  match Hashtbl.find_opt t.sp_deferred sp.Superpage.index with
                  | Some ids -> ids
                  | None ->
                      let ids = ref [] in
                      Hashtbl.add t.sp_deferred sp.Superpage.index ids;
                      ids
                in
                ids := entry.self @ !ids
              end
          | None ->
              if t.nonsp_incoming = 0 then
                List.iter (bookmark_unref t) entry.self
              else
                List.iter (Vec.push t.nonsp_deferred) entry.self
        end)
  end

(* Reconcile BC's residency beliefs with kernel truth (§3.3.1 keeps them
   "synchronised from eviction notices and reload events" — under an
   unreliable channel those events can be lost, so a collection first
   replays whatever the kernel did behind our back). Lost made-resident
   notices become late ledger releases; lost eviction notices become late
   bookmark-and-evict scans (paying the reload fault the paper's prompt
   notice would have avoided) or, for pages that must stay resident, a
   veto touch. *)
let reconcile_with_kernel t =
  let vmm = Heapsim.Heap.vmm t.heap in
  (* lost made-resident notices: ledger pages the kernel reloaded *)
  let reloaded =
    Hashtbl.fold
      (fun page _ acc ->
        if Vmsim.Vmm.is_resident vmm page then page :: acc else acc)
      t.ledger []
  in
  List.iter
    (fun page ->
      t.reconciled <- t.reconciled + 1;
      page_reloaded t page)
    reloaded;
  (* lost eviction notices: pages believed resident the kernel swapped *)
  let stale = ref [] in
  Residency.iter_resident t.residency (fun page ->
      if Vmsim.Vmm.is_swapped vmm page then stale := page :: !stale);
  let nursery_first = Gc_common.Bump_space.first_page t.nursery in
  let nursery_limit = nursery_first + Gc_common.Bump_space.npages t.nursery in
  List.iter
    (fun page ->
      t.reconciled <- t.reconciled + 1;
      if
        header_in_use t page
        || (page >= nursery_first && page < nursery_limit
           && page_has_objects t page)
      then
        (* metadata and populated nursery pages must stay resident *)
        Vmsim.Vmm.touch vmm ~write:false page
      else if t.opts.Gc_config.bookmarks_enabled then
        (* late eviction protocol: reload, scan, bookmark, surrender *)
        bookmark_and_evict t page
      else begin
        Residency.mark_evicted t.residency page;
        Bitset.clear t.discarded page;
        Superpage.note_page_evicted t.sp_space page;
        t.evicted_count <- t.evicted_count + 1
      end)
    !stale

let reconcile_with_kernel t =
  Gc_common.Pause.span t.heap Telemetry.Event.Reconcile (fun () ->
      reconcile_with_kernel t)

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)

let follow_ok t id =
  (not t.opts.Gc_config.bookmarks_enabled) || obj_resident t id

(* Secondary roots: every bookmarked object (§3.4.1). The paper finds
   them by scanning superpages with a nonzero incoming count plus the
   nursery and LOS; we iterate the exact bookmarked set, charging a visit
   per candidate, which models the same scan cost without re-deriving the
   set from page contents. *)
let bookmark_roots t enqueue =
  if
    t.opts.Gc_config.bookmarks_enabled
    && Hashtbl.length t.bookmark_counts > 0
  then begin
    let objects = Heapsim.Heap.objects t.heap in
    Hashtbl.iter
      (fun id _count ->
        Charge.object_visit t.heap;
        if Heapsim.Object_table.is_live objects id then enqueue id)
      t.bookmark_counts
  end

(* An object is marked in the current collection cycle iff its scratch
   word holds the cycle's epoch. Epochs never need clearing, so marks
   left by an aborted collection cannot poison the next one (the moral
   equivalent of flipping the mark sense per cycle, as MMTk does). *)
let is_marked t id =
  Heapsim.Object_table.scratch (Heapsim.Heap.objects t.heap) id = t.epoch

let set_mark t id =
  Heapsim.Object_table.set_scratch (Heapsim.Heap.objects t.heap) id t.epoch

(* Full-heap marking: never follows references to evicted objects (their
   liveness is covered by bookmarks); with bookmarks disabled it behaves
   like a stock tracer and faults. *)
let mark_heap t ~follow =
  let objects = Heapsim.Heap.objects t.heap in
  let trace roots =
    Gc_common.Tracer.run ~roots ~visit:(fun id ~enqueue ->
        if
          Heapsim.Object_table.is_live objects id
          && follow id
          && not (is_marked t id)
        then begin
          set_mark t id;
          Charge.object_visit t.heap;
          Heapsim.Heap.touch_object t.heap ~write:true id;
          Heapsim.Object_table.iter_refs objects id (fun _ target ->
              enqueue target)
        end)
  in
  trace (fun enqueue ->
      Heapsim.Heap.iter_roots t.heap enqueue;
      bookmark_roots t enqueue);
  while not (Vec.is_empty t.pending_roots) do
    let pending = Vec.to_list t.pending_roots in
    Vec.clear t.pending_roots;
    trace (fun enqueue -> List.iter enqueue pending)
  done

let mark_heap t ~follow =
  Gc_common.Pause.span t.heap Telemetry.Event.Mark (fun () ->
      mark_heap t ~follow)

let obj_pages_allowed heap id ~resident =
  let ok = ref true in
  Heapsim.Heap.iter_pages heap id (fun page ->
      if not (resident page) then ok := false);
  !ok

(* Sweep the mature superpages, visiting only pages allowed by
   [resident]; evicted pages are left untouched, their objects preserved
   (§3.4.1). Newly empty data pages become discard candidates. *)
let sweep_superpages t ~resident =
  let heap = t.heap in
  let objects = Heapsim.Heap.objects heap in
  let page_map = Heapsim.Heap.page_map heap in
  let vmm = Heapsim.Heap.vmm heap in
  Superpage.iter_sps t.sp_space (fun sp ->
      for
        page = sp.Superpage.first_page
        to sp.Superpage.first_page + Vmsim.Page.pages_per_superpage - 1
      do
        if resident page && Heapsim.Page_map.count_on page_map page > 0 then begin
          Charge.page_sweep heap;
          Vmsim.Vmm.touch vmm ~write:true page;
          Array.iter
            (fun id ->
              (* process each object from its first page only, and only
                 when every page it spans may be visited *)
              if
                Heapsim.Heap.first_page heap id = page
                && obj_pages_allowed heap id ~resident
                && (not (is_marked t id))
                && not (Heapsim.Object_table.bookmarked objects id)
              then begin
                let addr = Heapsim.Object_table.addr objects id in
                Heapsim.Heap.free_object heap id;
                Superpage.free_cell t.sp_space sp ~addr
              end)
            (Heapsim.Page_map.objects_on page_map page);
          if
            Heapsim.Page_map.count_on page_map page = 0
            && page <> sp.Superpage.first_page
          then Vec.push t.empty_candidates page
        end
      done)

let sweep_superpages t ~resident =
  Gc_common.Pause.span t.heap Telemetry.Event.Sweep (fun () ->
      sweep_superpages t ~resident)

(* Sweep the large object space in place: unmarked, unbookmarked, fully
   visitable objects are freed; evicted ones are preserved. *)
let sweep_los t ~resident =
  let heap = t.heap in
  let objects = Heapsim.Heap.objects heap in
  let vmm = Heapsim.Heap.vmm heap in
  let survivors = Vec.create () in
  Gc_common.Large_object_space.iter_objects t.los (fun id ->
      Charge.object_visit heap;
      if
        is_marked t id
        || Heapsim.Object_table.bookmarked objects id
        || not (obj_pages_allowed heap id ~resident)
      then Vec.push survivors id
      else begin
        let first_page = Heapsim.Heap.first_page heap id in
        let npages =
          Gc_common.Large_object_space.range_pages t.los ~first_page
        in
        Heapsim.Heap.free_object heap id;
        for page = first_page to first_page + npages - 1 do
          Residency.mark_evicted t.residency page;
          Bitset.clear t.discarded page
        done;
        Vmsim.Vmm.unmap_range vmm ~first_page ~npages;
        Gc_common.Large_object_space.forget_range t.los ~first_page
      end);
  Gc_common.Large_object_space.replace_objects t.los survivors

let sweep_los t ~resident =
  Gc_common.Pause.span t.heap Telemetry.Event.Sweep (fun () ->
      sweep_los t ~resident)

(* ------------------------------------------------------------------ *)
(* Evacuation into the mature space                                    *)

let sp_kind_of = function `Scalar -> Superpage.Scalar | `Array -> Superpage.Array

(* Copy one nursery object into a mature cell. *)
let sp_copy_young t id =
  let objects = Heapsim.Heap.objects t.heap in
  let size = Heapsim.Object_table.size objects id in
  let kind = sp_kind_of (Heapsim.Object_table.kind objects id) in
  match
    Superpage.alloc t.sp_space ~bytes:size ~kind ~grow:(grow_sp t)
      ~resident:(resident_ok t)
  with
  | None ->
      raise
        (Collector.Heap_exhausted
           (name ^ ": mature space cannot absorb nursery survivors"))
  | Some (addr, sp) ->
      track_new_superpage t sp;
      Baselines.Trace_util.copy_object t.heap id ~new_addr:addr;
      Heapsim.Object_table.set_space objects id Space_tag.mature;
      note_placed t id

(* Seeds for a nursery collection: the filtered write buffer, the card
   table (skipping — and re-marking — cards on evicted pages; their
   nursery referents are covered by bookmarks) and bookmarked nursery
   objects (§3.1, §3.4). *)
let remembered_roots t enqueue =
  let objects = Heapsim.Heap.objects t.heap in
  let follow_src src =
    (not t.opts.Gc_config.bookmarks_enabled) || obj_resident t src
  in
  Gc_common.Write_buffer.drain t.wbuf (fun ~src ~field ->
      if
        Heapsim.Object_table.is_live objects src
        && field < Heapsim.Object_table.nrefs objects src
        && follow_src src
      then begin
        Charge.object_visit t.heap;
        Heapsim.Heap.touch_object t.heap ~write:false src;
        enqueue (Heapsim.Object_table.get_ref objects src field)
      end);
  let page_map = Heapsim.Heap.page_map t.heap in
  let requeue = ref [] in
  Gc_common.Card_table.drain t.cards (fun card_addr ->
      let page = Vmsim.Page.of_addr card_addr in
      if
        (not t.opts.Gc_config.bookmarks_enabled)
        || resident_ok t page
      then begin
        Vmsim.Vmm.touch (Heapsim.Heap.vmm t.heap) ~write:false page;
        Heapsim.Page_map.iter_on page_map page (fun id ->
            let a = Heapsim.Object_table.addr objects id in
            let sz = Heapsim.Object_table.size objects id in
            if
              a < card_addr + Gc_common.Card_table.card_bytes
              && a + sz > card_addr
            then begin
              Charge.object_visit t.heap;
              Heapsim.Object_table.iter_refs objects id (fun _ target ->
                  enqueue target)
            end)
      end
      else requeue := card_addr :: !requeue);
  List.iter (Gc_common.Card_table.mark_addr t.cards) !requeue;
  Vec.iter
    (fun id ->
      if
        Heapsim.Object_table.is_live objects id
        && Heapsim.Object_table.bookmarked objects id
      then enqueue id)
    t.nursery_objects

let in_young t id =
  Heapsim.Object_table.space (Heapsim.Heap.objects t.heap) id
  = Space_tag.nursery

(* Retire the (now fully evacuated or dead) nursery: its touched pages
   become discard candidates. *)
let retire_nursery_pages t =
  let used = Gc_common.Bump_space.used_pages t.nursery in
  let first = Gc_common.Bump_space.first_page t.nursery in
  Gc_common.Bump_space.reset t.nursery;
  for page = first to first + used - 1 do
    Vec.push t.empty_candidates page
  done

let oracle_enabled =
  match Sys.getenv_opt "BC_ORACLE" with Some _ -> true | None -> false

(* Debugging aid (set BC_ORACLE=1): after every collection, walk the
   object graph from the roots and fail loudly if a reachable object was
   freed. Far stronger than any assertion when bisecting a new bookmark
   or compaction change; off by default because it is O(live) per GC. *)
let oracle t tag =
  if oracle_enabled then begin
    let objects = Heapsim.Heap.objects t.heap in
    let seen = Hashtbl.create 1024 in
    let rec visit src id =
      if id >= 0 && not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        if not (Heapsim.Object_table.is_live objects id) then
          failwith
            (Printf.sprintf "BC %s freed reachable #%d (from #%d)" tag id src)
        else
          Heapsim.Object_table.iter_refs objects id (fun _ tgt -> visit id tgt)
      end
    in
    Heapsim.Heap.iter_roots t.heap (fun id -> visit (-2) id)
  end

let with_gc t f =
  t.in_gc <- true;
  Fun.protect ~finally:(fun () -> t.in_gc <- false) f

(* Under extreme pressure even nursery pages may have been surrendered;
   a collection must reload them (paying the faults) before it can
   evacuate and reset the nursery. *)
let reload_nursery t =
  let vmm = Heapsim.Heap.vmm t.heap in
  let first = Gc_common.Bump_space.first_page t.nursery in
  let used = Gc_common.Bump_space.used_pages t.nursery in
  for page = first to first + used - 1 do
    if not (resident_ok t page) then Vmsim.Vmm.touch vmm ~write:false page
  done

let minor t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Minor (fun () ->
      reload_nursery t;
      with_gc t @@ fun () ->
      Charge.setup t.heap;
      t.epoch <- t.epoch + 1;
      let run extra =
        Baselines.Gen_shared.minor_trace t.heap ~epoch:t.epoch
          ~in_young:(in_young t)
          ~copy_young:(fun id -> sp_copy_young t id)
          ~extra_roots:extra
      in
      run (remembered_roots t);
      (* eviction during the trace may have bookmarked nursery objects *)
      while not (Vec.is_empty t.pending_roots) do
        let pending = Vec.to_list t.pending_roots in
        Vec.clear t.pending_roots;
        run (fun enqueue -> List.iter enqueue pending)
      done;
      Baselines.Gen_shared.reap_young t.heap t.nursery_objects ~epoch:t.epoch;
      retire_nursery_pages t;
      oracle t "minor";
      Gc_stats.note_heap_pages t.stats (total_pages t))

(* Evacuate marked nursery survivors after a full mark; the sweep that
   just ran has refilled the mature free lists. Abort-safe: when a copy
   fails (heap exhausted), the not-yet-moved survivors stay registered as
   nursery objects. *)
let evacuate_nursery t =
  let objects = Heapsim.Heap.objects t.heap in
  let keep = Vec.create () in
  Vec.iter
    (fun id ->
      if
        Heapsim.Object_table.is_live objects id
        && (is_marked t id || Heapsim.Object_table.bookmarked objects id)
      then Vec.push keep id
      else if Heapsim.Object_table.is_live objects id then
        Heapsim.Heap.free_object t.heap id)
    t.nursery_objects;
  Vec.clear t.nursery_objects;
  let n = Vec.length keep in
  let i = ref 0 in
  (try
     while !i < n do
       sp_copy_young t (Vec.get keep !i);
       incr i
     done
   with e ->
     (* the rest are still nursery residents *)
     for j = !i to n - 1 do
       Vec.push t.nursery_objects (Vec.get keep j)
     done;
     raise e);
  retire_nursery_pages t

let evacuate_nursery t =
  Gc_common.Pause.span t.heap Telemetry.Event.Evacuate (fun () ->
      evacuate_nursery t)

let clear_remembered t =
  Gc_common.Write_buffer.drain t.wbuf (fun ~src:_ ~field:_ -> ());
  Gc_common.Card_table.drain t.cards (fun _ -> ())

(* Recycle empty superpages and offer all their pages — headers included —
   for discarding. *)
let recycle_and_offer t =
  Superpage.recycle_empty t.sp_space ~resident:(resident_ok t);
  Superpage.iter_sps t.sp_space (fun sp ->
      if sp.Superpage.cells_total = 0 then
        for
          page = sp.Superpage.first_page
          to sp.Superpage.first_page + Vmsim.Page.pages_per_superpage - 1
        do
          Vec.push t.empty_candidates page
        done)

let full t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Full (fun () ->
      reload_nursery t;
      with_gc t @@ fun () ->
      Charge.setup t.heap;
      reconcile_with_kernel t;
      t.epoch <- t.epoch + 1;
      mark_heap t ~follow:(follow_ok t);
      let resident =
        if t.opts.Gc_config.bookmarks_enabled then resident_ok t
        else fun _ -> true
      in
      sweep_superpages t ~resident;
      sweep_los t ~resident;
      (* recycle what the sweep emptied before evacuating the nursery:
         the survivors may need those superpages *)
      recycle_and_offer t;
      evacuate_nursery t;
      clear_remembered t;
      recycle_and_offer t;
      oracle t "full";
      Gc_stats.note_heap_pages t.stats (total_pages t))

(* ------------------------------------------------------------------ *)
(* Compacting collection (§3.2, §3.4.1)                                *)

let compact t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Compacting (fun () ->
      reload_nursery t;
      with_gc t @@ fun () ->
      Charge.setup t.heap;
      reconcile_with_kernel t;
      t.epoch <- t.epoch + 1;
      mark_heap t ~follow:(follow_ok t);
      let resident =
        if t.opts.Gc_config.bookmarks_enabled then resident_ok t
        else fun _ -> true
      in
      let objects = Heapsim.Heap.objects t.heap in
      let page_map = Heapsim.Heap.page_map t.heap in
      let nsp = Superpage.sp_count t.sp_space in
      let marked_on = Array.make (max nsp 1) 0 in
      let dead_on = Array.make (max nsp 1) 0 in
      let forced = Array.make (max nsp 1) false in
      let is_target = Array.make (max nsp 1) false in
      let nclasses = Gc_common.Size_class.count * 2 in
      let demand = Array.make nclasses 0 in
      let idx_of (sp : Superpage.sp) =
        (sp.Superpage.cls * 2)
        + match sp.Superpage.kind with Superpage.Scalar -> 0 | Superpage.Array -> 1
      in
      (* per-superpage census of marked and dead objects *)
      let census (sp : Superpage.sp) f =
        for
          page = sp.Superpage.first_page
          to sp.Superpage.first_page + Vmsim.Page.pages_per_superpage - 1
        do
          if resident page then
            Heapsim.Page_map.iter_on page_map page (fun id ->
                if
                  Heapsim.Heap.first_page t.heap id = page
                  && obj_pages_allowed t.heap id ~resident
                then f id)
        done
      in
      Superpage.iter_sps t.sp_space (fun sp ->
          let i = sp.Superpage.index in
          if
            sp.Superpage.incoming > 0
            || sp.Superpage.evicted_data_pages > 0
          then forced.(i) <- true;
          census sp (fun id ->
              if is_marked t id then begin
                marked_on.(i) <- marked_on.(i) + 1;
                demand.(idx_of sp) <- demand.(idx_of sp) + 1;
                if Heapsim.Object_table.bookmarked objects id then
                  forced.(i) <- true
              end
              else if not (Heapsim.Object_table.bookmarked objects id) then
                dead_on.(i) <- dead_on.(i) + 1));
      (* select the minimum target set per (class, kind) *)
      let by_idx = Hashtbl.create 32 in
      Superpage.iter_sps t.sp_space (fun sp ->
          if sp.Superpage.cells_total > 0 then begin
            let key = idx_of sp in
            let existing =
              Option.value (Hashtbl.find_opt by_idx key) ~default:[]
            in
            Hashtbl.replace by_idx key (sp :: existing)
          end);
      let target_pools = Hashtbl.create 32 in
      Hashtbl.iter
        (fun key sps ->
          let capacity (sp : Superpage.sp) =
            marked_on.(sp.Superpage.index)
            + dead_on.(sp.Superpage.index)
            + Vec.length sp.Superpage.free
          in
          let covered = ref 0 in
          let pool = Vec.create () in
          let choose sp =
            is_target.(sp.Superpage.index) <- true;
            Vec.push pool sp;
            covered := !covered + capacity sp
          in
          let forced_sps, others =
            List.partition (fun (sp : Superpage.sp) -> forced.(sp.Superpage.index)) sps
          in
          List.iter choose forced_sps;
          let sorted =
            List.sort
              (fun (a : Superpage.sp) (b : Superpage.sp) ->
                compare marked_on.(b.Superpage.index) marked_on.(a.Superpage.index))
              others
          in
          List.iter
            (fun sp -> if !covered < demand.(key) then choose sp)
            sorted;
          Hashtbl.replace target_pools key pool)
        by_idx;
      (* sweep the dead; epoch marks survive for the move pass *)
      sweep_superpages t ~resident;
      sweep_los t ~resident;
      (* forward marked objects off the non-target superpages *)
      let pool_alloc key =
        match Hashtbl.find_opt target_pools key with
        | None -> None
        | Some pool ->
            let rec go i =
              if i >= Vec.length pool then None
              else
                match
                  Superpage.alloc_on t.sp_space (Vec.get pool i)
                    ~resident:(resident_ok t)
                with
                | Some addr -> Some addr
                | None -> go (i + 1)
            in
            go 0
      in
      Superpage.iter_sps t.sp_space (fun sp ->
          if (not is_target.(sp.Superpage.index)) && sp.Superpage.cells_total > 0
          then
            census sp (fun id ->
                if
                  is_marked t id
                  && not (Heapsim.Object_table.bookmarked objects id)
                then begin
                  let key = idx_of sp in
                  let addr =
                    match pool_alloc key with
                    | Some addr -> Some addr
                    | None -> (
                        (* selection shortfall: fall back to a fresh cell *)
                        match
                          Superpage.alloc t.sp_space
                            ~bytes:(Heapsim.Object_table.size objects id)
                            ~kind:(sp_kind_of (Heapsim.Object_table.kind objects id))
                            ~grow:(grow_sp t) ~resident:(resident_ok t)
                        with
                        | Some (addr, nsp) ->
                            track_new_superpage t nsp;
                            Some addr
                        | None -> None)
                  in
                  match addr with
                  | None ->
                      raise
                        (Collector.Heap_exhausted
                           (name ^ ": compaction ran out of target space"))
                  | Some addr ->
                      Baselines.Trace_util.copy_object t.heap id ~new_addr:addr;
                      note_placed t id
                end));
      recycle_and_offer t;
      evacuate_nursery t;
      clear_remembered t;
      recycle_and_offer t;
      oracle t "compact";
      Gc_stats.note_heap_pages t.stats (total_pages t))

(* ------------------------------------------------------------------ *)
(* Completeness fail-safe (§3.5)                                       *)

let failsafe t =
  Gc_common.Pause.run t.stats t.heap Gc_stats.Full (fun () ->
      Gc_common.Pause.span t.heap Telemetry.Event.Failsafe @@ fun () ->
      reload_nursery t;
      with_gc t @@ fun () ->
      t.failsafe_count <- t.failsafe_count + 1;
      Gc_stats.note_failsafe t.stats;
      Charge.setup t.heap;
      reconcile_with_kernel t;
      let objects = Heapsim.Heap.objects t.heap in
      (* discard every bookmark and counter; the traversal below rebuilds
         exact liveness, touching evicted pages as it goes *)
      Heapsim.Object_table.iter_live objects (fun id ->
          Heapsim.Object_table.set_bookmarked objects id false);
      Hashtbl.reset t.bookmark_counts;
      Superpage.iter_sps t.sp_space (fun sp -> sp.Superpage.incoming <- 0);
      Hashtbl.reset t.ledger;
      Hashtbl.reset t.sp_deferred;
      Vec.clear t.nonsp_deferred;
      t.nonsp_incoming <- 0;
      let everywhere _ = true in
      t.epoch <- t.epoch + 1;
      mark_heap t ~follow:everywhere;
      sweep_superpages t ~resident:everywhere;
      sweep_los t ~resident:everywhere;
      recycle_and_offer t;
      evacuate_nursery t;
      clear_remembered t;
      t.target_footprint <- None;
      recycle_and_offer t;
      (* whatever inconsistency scheduled us is now rebuilt from scratch *)
      t.failsafe_needed <- false;
      Gc_stats.note_heap_pages t.stats (total_pages t))

(* ------------------------------------------------------------------ *)
(* VM cooperation handlers (§3.3–§3.4)                                 *)

let maybe_request_gc t =
  if
    (not t.in_gc)
    && count_valid_candidates t ~limit:(t.opts.Gc_config.reserve_pages + 1)
       <= t.opts.Gc_config.reserve_pages
  then t.gc_requested <- true

let in_nursery_region t page =
  let first = Gc_common.Bump_space.first_page t.nursery in
  page >= first && page < first + Gc_common.Bump_space.npages t.nursery

let our_page t page =
  in_nursery_region t page
  || Superpage.owns_page t.sp_space page
  || Gc_common.Large_object_space.owns_page t.los page

(* §7: the victim's outgoing-pointer count, used to prefer evicting
   pointer-free pages (no false garbage, nothing to bookmark). Objects
   without reference fields need no scan (the superpage header says so),
   so only pointer-bearing objects are charged. *)
let pointer_score t page =
  let objects = Heapsim.Heap.objects t.heap in
  let score = ref 0 in
  Heapsim.Page_map.iter_on (Heapsim.Heap.page_map t.heap) page (fun id ->
      if Heapsim.Object_table.nrefs objects id > 0 then begin
        Charge.object_visit t.heap;
        Heapsim.Object_table.iter_refs objects id (fun _ _ -> incr score)
      end);
  !score

(* Pick the eviction victim among the kernel's choice and the next
   coldest candidates, minimising outgoing pointers; ties keep the
   kernel's (LRU) preference. *)
let choose_victim t victim =
  let n = t.opts.Gc_config.pointer_aware_victims in
  if n <= 0 then victim
  else begin
    let evictable page =
      page = victim
      || (our_page t page
         && (not (header_in_use t page))
         && (not (in_nursery_region t page && page_has_objects t page))
         && Residency.is_resident t.residency page)
    in
    let candidates =
      victim
      :: List.filter evictable
           (Vmsim.Vmm.coldest_pages (Heapsim.Heap.vmm t.heap)
              ~owner:(Heapsim.Heap.process t.heap) ~n)
    in
    let best, _ =
      List.fold_left
        (fun (best, best_score) page ->
          let score = pointer_score t page in
          if score < best_score then (page, score) else (best, best_score))
        (victim, pointer_score t victim)
        candidates
    in
    best
  end

(* Controller batching: after a notice's first discard, surrender up to
   [notice_batch - 1] further empty pages, amortising notice handling
   under sustained pressure. A no-op at the default batch of 1. *)
let discard_batch_extra t =
  let remaining = ref (t.notice_batch - 1) in
  let exhausted = ref false in
  while !remaining > 0 && not !exhausted do
    (match find_discardable t with
    | Some page -> ignore (discard_with_peers t page)
    | None -> exhausted := true);
    decr remaining
  done

(* Controller relinquish aggressiveness: beyond the kernel's chosen
   victim, proactively bookmark-and-evict up to [relinquish_extra] of our
   coldest evictable pages — trading our own cold pages for headroom
   before the kernel has to ask again. A no-op at the default of 0. *)
let relinquish_beyond_victim t ~victim =
  if t.relinquish_extra > 0 && t.opts.Gc_config.bookmarks_enabled then begin
    let evictable page =
      page <> victim
      && our_page t page
      && (not (header_in_use t page))
      && (not (in_nursery_region t page && page_has_objects t page))
      && Residency.is_resident t.residency page
    in
    let cold =
      List.filter evictable
        (Vmsim.Vmm.coldest_pages (Heapsim.Heap.vmm t.heap)
           ~owner:(Heapsim.Heap.process t.heap)
           ~n:(2 * t.relinquish_extra))
    in
    let rec evict n = function
      | page :: rest when n > 0 ->
          if Residency.is_resident t.residency page then
            bookmark_and_evict t page;
          evict (n - 1) rest
      | _ -> ()
    in
    evict t.relinquish_extra cold
  end

let handle_eviction_notice t victim =
  let vmm = Heapsim.Heap.vmm t.heap in
  if our_page t victim then begin
    if header_in_use t victim then
      (* metadata of a live superpage must stay resident: veto (§3.4) *)
      Vmsim.Vmm.touch vmm ~write:false victim
    else begin
      (* the heap footprint exceeds available memory: shrink (§3.3.3) *)
      shrink_target t;
      if discardable t victim then begin
        ignore (discard_with_peers t victim);
        discard_batch_extra t;
        maybe_request_gc t
      end
      else begin
        match find_discardable t with
        | Some page ->
            ignore (discard_with_peers t page);
            discard_batch_extra t;
            maybe_request_gc t
        | None ->
            (* no empty page in the store: ask for a collection at the
               next allocation (the reserve discipline of §3.4.3 — a
               collection inside the eviction path would need frames the
               machine does not have), and deal with the victim now *)
            t.gc_requested <- true;
            if in_nursery_region t victim && page_has_objects t victim then
              (* nursery pages are about to be reused: veto (§3.4). If
                 everything is vetoed the kernel's desperation pass will
                 still make progress, and the collection just requested
                 turns these pages into discardable ones. *)
              Vmsim.Vmm.touch vmm ~write:false victim
            else if t.opts.Gc_config.bookmarks_enabled then begin
              let chosen = choose_victim t victim in
              if chosen <> victim then
                (* keep the kernel's choice in memory instead *)
                Vmsim.Vmm.touch vmm ~write:false victim;
              bookmark_and_evict t chosen;
              relinquish_beyond_victim t ~victim:chosen
            end
            else begin
              (* resizing-only variant: let the page go to disk *)
              Residency.mark_evicted t.residency victim;
              Bitset.clear t.discarded victim;
              Superpage.note_page_evicted t.sp_space victim;
              t.evicted_count <- t.evicted_count + 1
            end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let mature_can_absorb t =
  let growable_bytes =
    max 0 (effective_heap_pages t - min_nursery_pages - mature_pages t)
    * Vmsim.Page.size
  in
  Superpage.free_bytes t.sp_space + growable_bytes
  >= Gc_common.Bump_space.used_bytes t.nursery

(* Escalation ladder: nursery GC, full GC, compaction, growing past the
   footprint target (at the price of paging), and finally the
   completeness fail-safe. *)
(* Pressure bursts overshoot the footprint estimate (evictions are
   batched), so reclaim the slack the kernel is no longer using: raise the
   target by the machine's free frames (§7 sketches this regrowth). *)
let maybe_regrow t =
  if not t.opts.Gc_config.regrow then ()
  else
    match t.target_footprint with
    | None -> ()
    | Some target ->
      let free = Vmsim.Vmm.free_frames (Heapsim.Heap.vmm t.heap) in
      if free > 32 then t.target_footprint <- Some (target + free - 16)

(* Under memory pressure, the space-minimising collection is the
   compacting one (§2: BC "minimizes space consumption by performing
   compaction when under memory pressure"). *)
let full_or_compact t =
  if t.target_footprint <> None && t.opts.Gc_config.compaction_enabled then
    compact t
  else full t

let escalations t =
  [
    (fun () ->
      maybe_regrow t;
      if t.failsafe_needed && t.opts.Gc_config.bookmarks_enabled then begin
        (* detected inconsistency: rebuild exact liveness rather than
           trusting damaged summaries (§3.5 used as a recovery path) *)
        t.gc_requested <- false;
        failsafe t
      end
      else if t.gc_requested then begin
        t.gc_requested <- false;
        full_or_compact t
      end
      else if mature_can_absorb t then begin
        try minor t
        with Collector.Heap_exhausted _ ->
          (* a full trace recovers the aborted nursery collection *)
          full t
      end
      else full_or_compact t);
    (fun () -> full t);
    (fun () -> if t.opts.Gc_config.compaction_enabled then compact t);
    (fun () ->
      if t.target_footprint <> None then begin
        t.target_footprint <- None;
        full t
      end);
    (fun () ->
      if t.opts.Gc_config.bookmarks_enabled && t.evicted_count > 0 then
        failsafe t);
  ]

let rec run_escalations t try_alloc = function
  | [] -> None
  | stage :: rest -> (
      (match stage () with
      | () -> ()
      | exception Collector.Heap_exhausted _ -> ());
      match try_alloc () with
      | Some addr -> Some addr
      | None -> run_escalations t try_alloc rest)

let alloc t ~size ~nrefs ~kind =
  Collector.charge_alloc t.heap ~bytes:size;
  Gc_stats.record_alloc t.stats ~bytes:size;
  let objects = Heapsim.Heap.objects t.heap in
  if size > los_threshold then begin
    let grow ~npages = mature_pages t + npages <= effective_heap_pages t in
    let try_alloc () =
      Gc_common.Large_object_space.alloc t.los ~bytes:size ~grow
    in
    let addr =
      match try_alloc () with
      | Some addr -> Some addr
      | None -> run_escalations t try_alloc (List.tl (escalations t))
    in
    match addr with
    | None -> raise (Collector.Heap_exhausted (name ^ ": large object"))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.los;
        Gc_common.Large_object_space.note_object t.los id;
        note_placed t id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end
  else begin
    let try_alloc () =
      Gc_common.Bump_space.alloc t.nursery ~bytes:size
        ~limit_bytes:(nursery_limit t)
    in
    let addr =
      match try_alloc () with
      | Some addr -> Some addr
      | None -> run_escalations t try_alloc (escalations t)
    in
    match addr with
    | None ->
        raise
          (Collector.Heap_exhausted
             (Printf.sprintf "%s: cannot allocate %d bytes in %d-byte heap"
                name size t.config.Gc_config.heap_bytes))
    | Some addr ->
        let id = Heapsim.Object_table.alloc objects ~size ~nrefs ~kind in
        Heapsim.Heap.place t.heap id ~addr;
        Heapsim.Object_table.set_space objects id Space_tag.nursery;
        Vec.push t.nursery_objects id;
        note_placed t id;
        Heapsim.Heap.touch_object t.heap ~write:true id;
        id
  end

(* ------------------------------------------------------------------ *)
(* Invariant checking (tests)                                          *)

let check_invariants t =
  (* a detected-but-not-yet-repaired inconsistency is allowed to exist
     between collections; repair it before judging the invariants *)
  if t.failsafe_needed && t.opts.Gc_config.bookmarks_enabled then
    failsafe t;
  let objects = Heapsim.Heap.objects t.heap in
  (* incoming counters equal the ledger's per-superpage totals *)
  let expected = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _page entry ->
      List.iter
        (fun (sp : Superpage.sp) ->
          let i = sp.Superpage.index in
          Hashtbl.replace expected i
            (1 + Option.value (Hashtbl.find_opt expected i) ~default:0))
        entry.sps)
    t.ledger;
  Superpage.iter_sps t.sp_space (fun sp ->
      let want =
        Option.value (Hashtbl.find_opt expected sp.Superpage.index) ~default:0
      in
      if sp.Superpage.incoming <> want then
        failwith
          (Printf.sprintf
             "BC invariant: superpage %d incoming=%d but ledger says %d"
             sp.Superpage.index sp.Superpage.incoming want));
  (* evicted pages tracked by the ledger are indeed non-resident *)
  Hashtbl.iter
    (fun page _ ->
      if Residency.is_resident t.residency page then
        failwith (Printf.sprintf "BC invariant: ledger page %d is resident" page))
    t.ledger;
  (* the bookmark bit mirrors a positive bookmark count *)
  Heapsim.Object_table.iter_live objects (fun id ->
      let bit = Heapsim.Object_table.bookmarked objects id in
      let counted = Hashtbl.mem t.bookmark_counts id in
      if bit <> counted then
        failwith
          (Printf.sprintf "BC invariant: object #%d bit=%b counted=%b" id bit
             counted));
  (* per-superpage cell accounting: free + blocked + live occupants never
     exceed the carved cell count *)
  Superpage.iter_sps t.sp_space (fun sp ->
      if sp.Superpage.cells_total > 0 then begin
        let occupied = Superpage.live_count t.sp_space sp in
        let free = Vec.length sp.Superpage.free in
        let blocked = Vec.length sp.Superpage.blocked in
        if free + blocked + occupied > sp.Superpage.cells_total then
          failwith
            (Printf.sprintf
               "BC invariant: superpage %d cells %d < free %d + blocked %d + \
                live %d"
               sp.Superpage.index sp.Superpage.cells_total free blocked
               occupied)
      end);
  (* every live object has a placement, and mature objects sit on a
     superpage of their own size class *)
  Heapsim.Object_table.iter_live objects (fun id ->
      let addr = Heapsim.Object_table.addr objects id in
      assert (addr >= 0);
      if Heapsim.Object_table.space objects id = Space_tag.mature then
        match Superpage.sp_of_addr t.sp_space addr with
        | None -> failwith "BC invariant: mature object outside superpages"
        | Some sp ->
            let cell = Gc_common.Size_class.cell_size sp.Superpage.cls in
            if Heapsim.Object_table.size objects id > cell then
              failwith "BC invariant: object larger than its cell")

(* ------------------------------------------------------------------ *)
(* Factory and debug access                                            *)

type debug = {
  superpages : Superpage.t;
  residency : Residency.t;
  evicted_pages : unit -> int;
  bookmarked_count : unit -> int;
  incoming_total : unit -> int;
  ledger_total : unit -> int;
  failsafe_count : unit -> int;
  target_footprint : unit -> int option;
  spurious_resident : unit -> int;
  reconciled : unit -> int;
  handler_faults : unit -> int;
}

(* Process-wide instance registry keyed by the collector's stats record
   (physical identity). Collectors are created concurrently once the
   harness runs cells on the domain pool, so registration and lookup
   take a lock; entries are immutable pairs, so readers need nothing
   more. *)
let debug_registry : (Gc_stats.t * debug) list ref = ref []

let debug_registry_lock = Mutex.create ()

let register_debug stats debug =
  Mutex.lock debug_registry_lock;
  debug_registry := (stats, debug) :: !debug_registry;
  Mutex.unlock debug_registry_lock

let find_debug stats =
  Mutex.lock debug_registry_lock;
  let r = List.find_opt (fun (s, _) -> s == stats) !debug_registry in
  Mutex.unlock debug_registry_lock;
  r

let make_debug t =
  {
    superpages = t.sp_space;
    residency = t.residency;
    evicted_pages = (fun () -> t.evicted_count);
    bookmarked_count =
      (fun () ->
        let objects = Heapsim.Heap.objects t.heap in
        let n = ref 0 in
        Heapsim.Object_table.iter_live objects (fun id ->
            if Heapsim.Object_table.bookmarked objects id then incr n);
        !n);
    incoming_total =
      (fun () ->
        let n = ref 0 in
        Superpage.iter_sps t.sp_space (fun sp ->
            n := !n + sp.Superpage.incoming);
        !n);
    ledger_total =
      (fun () ->
        Hashtbl.fold (fun _ e acc -> acc + List.length e.sps) t.ledger 0);
    failsafe_count = (fun () -> t.failsafe_count);
    target_footprint = (fun () -> t.target_footprint);
    spurious_resident = (fun () -> t.spurious_resident);
    reconciled = (fun () -> t.reconciled);
    handler_faults = (fun () -> t.handler_faults);
  }

let debug_of (c : Collector.t) =
  match find_debug c.Collector.stats with
  | Some (_, debug) -> debug
  | None -> invalid_arg "Bc.debug_of: not a bookmarking collector instance"

let factory config heap =
  let opts = config.Gc_config.bc in
  let cards = Gc_common.Card_table.create () in
  let objects = Heapsim.Heap.objects heap in
  let wbuf =
    Gc_common.Write_buffer.create ~cards
      ~src_addr:(fun id -> Heapsim.Object_table.addr objects id)
      ~filterable:(fun id ->
        Heapsim.Object_table.is_live objects id
        && Heapsim.Object_table.space objects id <> Space_tag.nursery)
      ()
  in
  let t =
    {
      heap;
      config;
      opts;
      stats = Gc_stats.create ();
      nursery =
        Gc_common.Bump_space.create heap ~name:"nursery"
          ~npages:(Gc_config.heap_pages config);
      nursery_objects = Vec.create ();
      sp_space = Superpage.create heap;

      los = Gc_common.Large_object_space.create heap ~name:"los";
      cards;
      wbuf;
      residency = Residency.create ();
      discarded = Bitset.create ();
      sp_seen = Bitset.create ();
      ledger = Hashtbl.create 64;
      bookmark_counts = Hashtbl.create 64;
      sp_deferred = Hashtbl.create 16;
      nonsp_deferred = Vec.create ();
      nonsp_incoming = 0;
      empty_candidates = Vec.create ();
      pending_roots = Vec.create ();
      target_footprint = None;
      controller_cap = None;
      notice_batch = 1;
      relinquish_extra = 0;
      epoch = 0;
      in_gc = false;
      gc_requested = false;
      evicted_count = 0;
      failsafe_count = 0;
      failsafe_needed = false;
      spurious_resident = 0;
      reconciled = 0;
      handler_faults = 0;
    }
  in
  Superpage.set_on_acquire t.sp_space (fun sp -> track_new_superpage t sp);
  Heapsim.Heap.set_write_barrier heap (fun ~src ~field ~old_target:_ ~target ->
      if
        (not (Heapsim.Obj_id.is_null target))
        && Heapsim.Object_table.space objects target = Space_tag.nursery
        && Heapsim.Object_table.space objects src <> Space_tag.nursery
      then Gc_common.Write_buffer.record t.wbuf ~src ~field);
  (* register for paging signals (§4.1). A signal handler must never
     take down the mutator: programming-error exceptions are swallowed,
     counted, and converted into a scheduled fail-safe collection, which
     rebuilds exact state. Resource exceptions (Thrashing, heap
     exhaustion) still propagate — they are the caller's to handle. *)
  let guarded f page =
    try f page
    with Failure _ | Invalid_argument _ | Assert_failure _ | Not_found ->
      t.handler_faults <- t.handler_faults + 1;
      t.failsafe_needed <- true
  in
  Vmsim.Process.register (Heapsim.Heap.process heap)
    {
      Vmsim.Process.on_eviction_notice =
        guarded (fun page -> handle_eviction_notice t page);
      on_resident = guarded (fun page -> page_reloaded t page);
      on_protection_fault = guarded (fun page -> page_reloaded t page);
    };
  let display_name =
    if opts.Gc_config.bookmarks_enabled then
      match config.Gc_config.nursery with
      | Gc_config.Appel -> name
      | Gc_config.Fixed _ -> name ^ "-fixed"
    else resizing_only_name
  in
  let collector =
    {
      Collector.name = display_name;
      heap;
      config;
      alloc = (fun ~size ~nrefs ~kind -> alloc t ~size ~nrefs ~kind);
      collect = (fun () -> full t);
      stats = t.stats;
      footprint_pages = (fun () -> total_pages t);
      check_invariants = (fun () -> check_invariants t);
      tuning =
        {
          Collector.set_target_pages =
            (fun target ->
              t.controller_cap <-
                Option.map (max footprint_floor_pages) target);
          set_notice_batch = (fun n -> t.notice_batch <- max 1 n);
          set_relinquish_extra = (fun n -> t.relinquish_extra <- max 0 n);
          request_failsafe =
            (fun () ->
              (* deferred to the next allocation's escalation ladder —
                 forcing a collection inside the decision path would need
                 frames the machine may not have (§3.4.3's reserve
                 discipline applies to the controller too) *)
              if t.opts.Gc_config.bookmarks_enabled then
                t.failsafe_needed <- true
              else t.gc_requested <- true);
          target_pages = (fun () -> t.controller_cap);
        };
    }
  in
  register_debug t.stats (make_debug t);
  collector

(** The bookmarking collector (BC) — the paper's contribution.

    A generational collector with a bump-pointer nursery, a compacting
    mature space over {!Superpage}s and a page-based large object space,
    that cooperates with the virtual memory manager to eliminate
    GC-induced paging:

    - it reacts to pre-eviction notices by discarding empty pages, by
      shrinking its heap to the current footprint, or — when a
      non-discardable page must go — by {e bookmarking}: scanning the
      victim for outgoing pointers, summarising them as single bits in the
      targets' headers plus per-superpage incoming counters, then
      surrendering the page via [vm_relinquish] (§3.3–3.4);
    - full collections start from bookmarked objects as secondary roots,
      never touch evicted pages, and sweep only resident pages (§3.4.1);
    - bookmarks are cleared when evicted pages reload (§3.4.2);
    - when mark-sweep frees too little it falls back to a two-pass
      compacting collection whose targets include every superpage holding
      bookmarked objects or evicted pages (§3.2, §3.4.1);
    - completeness is preserved by a fail-safe full traversal that
      discards all bookmarks and touches evicted pages, used only on heap
      exhaustion (§3.5).

    The [bookmarks_enabled = false] configuration is the paper's
    "BC w/Resizing only" variant: it still discards empty pages and limits
    the heap to its footprint, but pays faults like the baselines when the
    collector visits evicted pages. *)

val name : string

val doc : string

val resizing_only_name : string

val factory : Gc_common.Collector.factory
(** Builds a BC instance according to [config.bc] and registers its
    paging-signal handlers on the heap's process. *)

(** {1 Introspection (tests, experiments)} *)

type debug = {
  superpages : Superpage.t;
  residency : Residency.t;
  evicted_pages : unit -> int;
  bookmarked_count : unit -> int;
  incoming_total : unit -> int;
  ledger_total : unit -> int;
  failsafe_count : unit -> int;
  target_footprint : unit -> int option;
  spurious_resident : unit -> int;
      (** made-resident signals ignored because the kernel disagreed *)
  reconciled : unit -> int;
      (** lost notices detected and replayed at collection entry *)
  handler_faults : unit -> int;
      (** exceptions swallowed inside paging-signal handlers *)
}

val debug_of : Gc_common.Collector.t -> debug
(** Internal state of a BC collector instance, for tests and experiment
    instrumentation. Raises [Invalid_argument] on non-BC collectors. *)

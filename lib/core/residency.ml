module Bitset = Repro_util.Bitset

type t = { bits : Bitset.t; mutable footprint : int }

let create () = { bits = Bitset.create (); footprint = 0 }

let mark_resident t page =
  if not (Bitset.mem t.bits page) then begin
    Bitset.set t.bits page;
    t.footprint <- t.footprint + 1
  end

let mark_evicted t page =
  if Bitset.mem t.bits page then begin
    Bitset.clear t.bits page;
    t.footprint <- t.footprint - 1
  end

let is_resident t page = Bitset.mem t.bits page

let footprint_pages t = t.footprint

let iter_resident t f = Bitset.iter f t.bits

let word_empty_peers t page is_empty =
  List.filter is_empty (Bitset.word_peers t.bits page)

(** The paper's [signalmem] pressure generator (§5.1).

    "signalmem uses mmap to allocate a large array, touches these pages,
    and then pins them in memory with mlock." A separate simulated
    process pins pages on a virtual-time schedule, squeezing the memory
    available to the measured runtime. *)

type t

val create : Vmsim.Vmm.t -> Heapsim.Address_space.t -> t

val pin_pages : t -> int -> unit
(** Pin [n] more pages right now (mmap + touch + mlock). *)

val unpin_pages : t -> int -> unit
(** Release the [n] most recently pinned pages (a pressure spike
    receding): they are unlocked and discarded ([madvise_dontneed]), so
    their frames return to the free pool immediately — a receding burst
    models a competing process freeing its memory, not merely making it
    evictable. *)

val unpin_all : t -> unit

val pinned_pages : t -> int

val process : t -> Vmsim.Process.t

(** The workload registry: a uniform, typed catalogue over both
    workload families, mirroring the collector registry
    ({!Harness.Registry}).

    Batch workloads are the nine Table 1 specs; serving workloads are
    the request-serving family, one per load shape. Lookups return
    options — no bare [Not_found] — and every entry carries a factory
    building the machine-facing {!Driver}. *)

type family = Batch | Serving

type params = Batch_spec of Spec.t | Serving_spec of Request.spec

type info = {
  name : string;
  family : family;
  doc : string;
  params : params;
  factory : ?sink:Telemetry.Sink.t -> Gc_common.Collector.t -> Driver.t;
      (** instantiate the workload over a collector; [sink] receives
          per-request telemetry (serving only) *)
}

val family_name : family -> string

val family_of_params : params -> family

val params_name : params -> string

val scale : int
(** The denominator applied to the paper's byte quantities (8). *)

val scale_volume : params -> float -> params
(** Batch: scale the allocation volume. Serving: stretch the arrival
    window. Neither touches the live set. *)

val base_heap_bytes : params -> int
(** The unit for relative-heap-size sweeps: Table 1's minimum heap for
    batch, the calibrated baseline for serving. *)

val live_estimate_bytes : params -> int

val seed : params -> int

val with_shape : Shapes.t -> params -> params
(** Override a serving workload's load shape (the campaign grammar's
    [name\@shape]); raises [Invalid_argument] on a batch workload. *)

val driver :
  ?sink:Telemetry.Sink.t -> params -> Gc_common.Collector.t -> Driver.t
(** What {!info.factory} closes over, usable on bare params. *)

val make : ?doc:string -> params -> info
(** Wrap ad-hoc params (e.g. a spec file) as a registry entry. *)

val of_batch : ?doc:string -> Spec.t -> info

val of_serving : ?doc:string -> Request.spec -> info

(** {1 The registered workloads} *)

val srv_fixed : Request.spec

val srv_rampup : Request.spec

val srv_pausing : Request.spec

val srv_shaped : Request.spec

val srv_diurnal : Request.spec

val srv_flash : Request.spec

val all : info list
(** The nine Table 1 batch specs (in Table 1 order), then the serving
    family. *)

val find_opt : string -> info option

val names : unit -> string list

val batch_specs : Spec.t list

val serving_specs : Request.spec list

val pp : Format.formatter -> info -> unit

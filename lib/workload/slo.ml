(* Per-request latency accounting: exact percentiles over the recorded
   samples and SLO-violation windows over fixed virtual-time buckets.

   Latency here is open-loop latency — finish time minus *scheduled*
   arrival time — so a GC pause that stalls the mutator shows up as
   queueing delay on every request that arrived during the pause. *)

module Json = Telemetry.Json

type window = {
  from_ns : int;
  until_ns : int;
  violations : int;
  requests : int;
}

type summary = {
  requests : int;
  slo_ns : int;
  window_ns : int;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
  violations : int;
  windows : window list;  (* maximal violating spans, in time order *)
  violation_ns : int;  (* total span of violating windows *)
  throughput_rps : float;
}

(* Nearest-rank percentile over an ascending-sorted array: the smallest
   sample s.t. at least [p] of the samples are <= it. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank =
      int_of_float (ceil (p *. float_of_int n)) |> max 1 |> min n
    in
    sorted.(rank - 1)
  end

let default_window_ns = 100_000_000 (* 100 ms *)

(* [samples] are (finish_ns, latency_ns) pairs, in any order. The run
   interval [start_ns, end_ns) is cut into [window_ns] buckets; a bucket
   with at least one violating request is a violating window, and
   adjacent violating windows merge into maximal spans. *)
let of_samples ~slo_ns ?(window_ns = default_window_ns) ~start_ns ~end_ns
    samples =
  if slo_ns <= 0 then invalid_arg "Slo.of_samples: slo_ns";
  if window_ns <= 0 then invalid_arg "Slo.of_samples: window_ns";
  let n = Array.length samples in
  let latencies = Array.map snd samples in
  Array.sort compare latencies;
  let span = max 1 (end_ns - start_ns) in
  let nwindows = ((span + window_ns - 1) / window_ns) + 1 in
  let win_requests = Array.make nwindows 0 in
  let win_violations = Array.make nwindows 0 in
  let total_lat = ref 0.0 in
  let violations = ref 0 in
  Array.iter
    (fun (finish_ns, latency_ns) ->
      total_lat := !total_lat +. float_of_int latency_ns;
      let w =
        (max 0 (finish_ns - start_ns)) / window_ns |> min (nwindows - 1)
      in
      win_requests.(w) <- win_requests.(w) + 1;
      if latency_ns > slo_ns then begin
        incr violations;
        win_violations.(w) <- win_violations.(w) + 1
      end)
    samples;
  (* merge runs of violating windows into maximal spans *)
  let windows = ref [] in
  let cur = ref None in
  for w = 0 to nwindows - 1 do
    if win_violations.(w) > 0 then
      cur :=
        Some
          (match !cur with
          | None ->
              {
                from_ns = start_ns + (w * window_ns);
                until_ns = start_ns + ((w + 1) * window_ns);
                violations = win_violations.(w);
                requests = win_requests.(w);
              }
          | Some c ->
              {
                c with
                until_ns = start_ns + ((w + 1) * window_ns);
                violations = c.violations + win_violations.(w);
                requests = c.requests + win_requests.(w);
              })
    else
      match !cur with
      | Some c ->
          windows := c :: !windows;
          cur := None
      | None -> ()
  done;
  (match !cur with Some c -> windows := c :: !windows | None -> ());
  let windows = List.rev !windows in
  let violation_ns =
    List.fold_left (fun acc w -> acc + (w.until_ns - w.from_ns)) 0 windows
  in
  {
    requests = n;
    slo_ns;
    window_ns;
    mean_ns = (if n = 0 then 0.0 else !total_lat /. float_of_int n);
    p50_ns = percentile latencies 0.5;
    p99_ns = percentile latencies 0.99;
    p999_ns = percentile latencies 0.999;
    max_ns = (if n = 0 then 0 else latencies.(n - 1));
    violations = !violations;
    windows;
    violation_ns;
    throughput_rps =
      float_of_int n /. (float_of_int span /. 1e9);
  }

let meets_p999 t = t.p999_ns <= t.slo_ns

let to_json t =
  Json.Obj
    [
      ("requests", Json.int t.requests);
      ("slo_ns", Json.int t.slo_ns);
      ("window_ns", Json.int t.window_ns);
      ("mean_ns", Json.Num t.mean_ns);
      ("p50_ns", Json.int t.p50_ns);
      ("p99_ns", Json.int t.p99_ns);
      ("p999_ns", Json.int t.p999_ns);
      ("max_ns", Json.int t.max_ns);
      ("violations", Json.int t.violations);
      ("violation_ns", Json.int t.violation_ns);
      ("throughput_rps", Json.Num t.throughput_rps);
      ( "windows",
        Json.List
          (List.map
             (fun w ->
               Json.List
                 [
                   Json.int w.from_ns;
                   Json.int w.until_ns;
                   Json.int w.violations;
                   Json.int w.requests;
                 ])
             t.windows) );
    ]

let of_json j =
  let open Json in
  let int_field k = Option.bind (member k j) num_opt |> Option.map int_of_float in
  let num_field k = Option.bind (member k j) num_opt in
  match
    ( int_field "requests",
      int_field "slo_ns",
      int_field "window_ns",
      num_field "mean_ns",
      int_field "p50_ns",
      int_field "p99_ns",
      int_field "p999_ns",
      int_field "max_ns",
      int_field "violations",
      int_field "violation_ns",
      num_field "throughput_rps" )
  with
  | ( Some requests,
      Some slo_ns,
      Some window_ns,
      Some mean_ns,
      Some p50_ns,
      Some p99_ns,
      Some p999_ns,
      Some max_ns,
      Some violations,
      Some violation_ns,
      Some throughput_rps ) ->
      let windows =
        match Option.bind (member "windows" j) to_list_opt with
        | None -> []
        | Some items ->
            List.filter_map
              (fun item ->
                match to_list_opt item with
                | Some [ a; b; c; d ] -> (
                    match
                      (num_opt a, num_opt b, num_opt c, num_opt d)
                    with
                    | Some a, Some b, Some c, Some d ->
                        Some
                          {
                            from_ns = int_of_float a;
                            until_ns = int_of_float b;
                            violations = int_of_float c;
                            requests = int_of_float d;
                          }
                    | _ -> None)
                | _ -> None)
              items
      in
      Some
        {
          requests;
          slo_ns;
          window_ns;
          mean_ns;
          p50_ns;
          p99_ns;
          p999_ns;
          max_ns;
          violations;
          windows;
          violation_ns;
          throughput_rps;
        }
  | _ -> None

let ms ns = float_of_int ns /. 1e6

let pp ppf t =
  Format.fprintf ppf
    "%d req @ %.1f rps: p50=%.3fms p99=%.3fms p999=%.3fms max=%.3fms \
     (slo %.1fms: %d violations in %d windows, %.1fms violating)"
    t.requests t.throughput_rps (ms t.p50_ns) (ms t.p99_ns) (ms t.p999_ns)
    (ms t.max_ns) (ms t.slo_ns) t.violations (List.length t.windows)
    (ms t.violation_ns)

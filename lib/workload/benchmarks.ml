let scale = 8

let s bytes = bytes / scale

(* A template with suite-typical behaviour; each benchmark overrides the
   demographics that distinguish it. *)
let base =
  {
    Spec.name = "base";
    total_alloc_bytes = 0;
    immortal_bytes = 0;
    window_bytes = 0;
    long_frac = 0.05;
    mean_size = 48;
    max_size = 1024;
    large_frac = 0.0;
    array_frac = 0.25;
    nrefs_mean = 2;
    mutation_rate = 0.3;
    access_rate = 2.0;
    cold_access_frac = 0.03;
    paper_min_heap_bytes = 0;
    seed = 0;
  }

let compress =
  {
    base with
    Spec.name = "_201_compress";
    total_alloc_bytes = s 109_190_172;
    paper_min_heap_bytes = s 16_777_216;
    immortal_bytes = 960_000;
    window_bytes = 400_000;
    (* compression buffers: few, large, array-heavy objects *)
    mean_size = 192;
    max_size = 4096;
    large_frac = 0.004;
    array_frac = 0.7;
    nrefs_mean = 1;
    long_frac = 0.02;
    seed = 101;
  }

let jess =
  {
    base with
    Spec.name = "_202_jess";
    total_alloc_bytes = s 267_602_628;
    paper_min_heap_bytes = s 12_582_912;
    immortal_bytes = 610_000;
    window_bytes = 400_000;
    (* expert system: many tiny short-lived facts *)
    mean_size = 40;
    long_frac = 0.03;
    mutation_rate = 0.5;
    seed = 102;
  }

let raytrace =
  {
    base with
    Spec.name = "_205_raytrace";
    total_alloc_bytes = s 92_381_448;
    paper_min_heap_bytes = s 14_680_064;
    immortal_bytes = 875_000;
    window_bytes = 420_000;
    mean_size = 36;
    nrefs_mean = 3;
    long_frac = 0.03;
    seed = 103;
  }

let db =
  {
    base with
    Spec.name = "_209_db";
    total_alloc_bytes = s 61_216_580;
    paper_min_heap_bytes = s 19_922_944;
    (* in-memory database: low allocation over a big, hot live set *)
    immortal_bytes = 1_360_000;
    window_bytes = 375_000;
    long_frac = 0.02;
    access_rate = 4.0;
    cold_access_frac = 0.2;
    seed = 104;
  }

let javac =
  {
    base with
    Spec.name = "_213_javac";
    total_alloc_bytes = s 181_468_984;
    paper_min_heap_bytes = s 19_922_944;
    (* compiler: large long-lived ASTs and symbol tables *)
    immortal_bytes = 1_200_000;
    window_bytes = 700_000;
    long_frac = 0.06;
    nrefs_mean = 3;
    mutation_rate = 0.5;
    seed = 105;
  }

let jack =
  {
    base with
    Spec.name = "_228_jack";
    total_alloc_bytes = s 250_486_124;
    paper_min_heap_bytes = s 11_534_336;
    immortal_bytes = 495_000;
    window_bytes = 345_000;
    mean_size = 44;
    long_frac = 0.02;
    seed = 106;
  }

let ipsixql =
  {
    base with
    Spec.name = "ipsixql";
    total_alloc_bytes = s 350_889_840;
    paper_min_heap_bytes = s 11_534_336;
    (* XML queries: bursts of short-lived tree nodes *)
    immortal_bytes = 465_000;
    window_bytes = 335_000;
    nrefs_mean = 3;
    long_frac = 0.015;
    seed = 107;
  }

let jython =
  {
    base with
    Spec.name = "jython";
    total_alloc_bytes = s 770_632_824;
    paper_min_heap_bytes = s 11_534_336;
    (* interpreter: extreme allocation rate, almost everything dies young *)
    immortal_bytes = 480_000;
    window_bytes = 370_000;
    mean_size = 40;
    long_frac = 0.008;
    access_rate = 1.5;
    seed = 108;
  }

let pseudojbb =
  {
    base with
    Spec.name = "pseudoJBB";
    total_alloc_bytes = s 233_172_290;
    paper_min_heap_bytes = s 35_651_584;
    (* "pseudoJBB initially allocates a few immortal objects and then
       allocates only short-lived objects" (§5.3.2) *)
    immortal_bytes = 3_000_000;
    window_bytes = 660_000;
    long_frac = 0.015;
    access_rate = 2.5;
    cold_access_frac = 0.05;
    seed = 109;
  }


(* Load shapes for the request-serving workloads: a deterministic
   requests-per-second envelope over virtual time. The first four are
   adapted from Clue2's workload catalogue (shaped / rampup / pausing /
   fixed); diurnal and flash model the two crowd patterns a public
   service actually sees. *)

type t =
  | Fixed of { rps : float }
  | Rampup of { from_rps : float; to_rps : float; over_s : float }
  | Pausing of { rps : float; on_s : float; off_s : float }
  | Shaped of { points : (float * float) list }
  | Diurnal of { base_rps : float; peak_rps : float; period_s : float }
  | Flash of { base_rps : float; spike_rps : float; at_s : float; for_s : float }

let pi = 4.0 *. atan 1.0

let validate = function
  | Fixed { rps } -> if rps < 0.0 then invalid_arg "Shapes: fixed rps < 0"
  | Rampup { from_rps; to_rps; over_s } ->
      if from_rps < 0.0 || to_rps < 0.0 then
        invalid_arg "Shapes: rampup rps < 0";
      if over_s <= 0.0 then invalid_arg "Shapes: rampup over_s <= 0"
  | Pausing { rps; on_s; off_s } ->
      if rps < 0.0 then invalid_arg "Shapes: pausing rps < 0";
      if on_s <= 0.0 || off_s < 0.0 then invalid_arg "Shapes: pausing period"
  | Shaped { points } ->
      if points = [] then invalid_arg "Shapes: shaped needs >= 1 point";
      List.iter
        (fun (at, rps) ->
          if at < 0.0 || rps < 0.0 then invalid_arg "Shapes: shaped point")
        points;
      let rec ordered = function
        | (a, _) :: ((b, _) :: _ as rest) ->
            if b <= a then invalid_arg "Shapes: shaped points not increasing";
            ordered rest
        | _ -> ()
      in
      ordered points
  | Diurnal { base_rps; peak_rps; period_s } ->
      if base_rps < 0.0 || peak_rps < base_rps then
        invalid_arg "Shapes: diurnal needs peak >= base >= 0";
      if period_s <= 0.0 then invalid_arg "Shapes: diurnal period <= 0"
  | Flash { base_rps; spike_rps; at_s; for_s } ->
      if base_rps < 0.0 || spike_rps < 0.0 then
        invalid_arg "Shapes: flash rps < 0";
      if at_s < 0.0 || for_s <= 0.0 then invalid_arg "Shapes: flash window"

(* Requests per (virtual) second at [at_s] seconds into the run. *)
let rate t ~at_s =
  let at_s = max 0.0 at_s in
  match t with
  | Fixed { rps } -> rps
  | Rampup { from_rps; to_rps; over_s } ->
      if at_s >= over_s then to_rps
      else from_rps +. ((to_rps -. from_rps) *. at_s /. over_s)
  | Pausing { rps; on_s; off_s } ->
      let period = on_s +. off_s in
      let phase = Float.rem at_s period in
      if phase < on_s then rps else 0.0
  | Shaped { points } -> (
      match points with
      | [] -> 0.0
      | (t0, r0) :: _ when at_s <= t0 -> r0
      | points ->
          let rec interp = function
            | [ (_, r) ] -> r
            | (t0, r0) :: (((t1, r1) :: _) as rest) ->
                if at_s <= t1 then
                  r0 +. ((r1 -. r0) *. (at_s -. t0) /. (t1 -. t0))
                else interp rest
            | [] -> 0.0
          in
          interp points)
  | Diurnal { base_rps; peak_rps; period_s } ->
      base_rps
      +. (peak_rps -. base_rps)
         *. 0.5
         *. (1.0 -. cos (2.0 *. pi *. at_s /. period_s))
  | Flash { base_rps; spike_rps; at_s = spike_at; for_s } ->
      if at_s >= spike_at && at_s < spike_at +. for_s then spike_rps
      else base_rps

(* An upper bound on [rate] over all time — the thinning envelope for
   the arrival sampler. *)
let peak_rate = function
  | Fixed { rps } -> rps
  | Rampup { from_rps; to_rps; _ } -> Float.max from_rps to_rps
  | Pausing { rps; _ } -> rps
  | Shaped { points } ->
      List.fold_left (fun acc (_, r) -> Float.max acc r) 0.0 points
  | Diurnal { peak_rps; _ } -> peak_rps
  | Flash { base_rps; spike_rps; _ } -> Float.max base_rps spike_rps

(* Canonical text, stable under round-trip: the grammar the campaign
   spec and [Run.Plan.canonical] both use. *)
let fs f =
  (* shortest representation that round-trips for grammar-sized floats *)
  let s = Printf.sprintf "%.12g" f in
  s

let to_string = function
  | Fixed { rps } -> Printf.sprintf "fixed:%s" (fs rps)
  | Rampup { from_rps; to_rps; over_s } ->
      Printf.sprintf "rampup:%s:%s:%s" (fs from_rps) (fs to_rps) (fs over_s)
  | Pausing { rps; on_s; off_s } ->
      Printf.sprintf "pausing:%s:%s:%s" (fs rps) (fs on_s) (fs off_s)
  | Shaped { points } ->
      Printf.sprintf "shaped:%s"
        (String.concat ","
           (List.map (fun (at, r) -> Printf.sprintf "%s=%s" (fs at) (fs r)) points))
  | Diurnal { base_rps; peak_rps; period_s } ->
      Printf.sprintf "diurnal:%s:%s:%s" (fs base_rps) (fs peak_rps)
        (fs period_s)
  | Flash { base_rps; spike_rps; at_s; for_s } ->
      Printf.sprintf "flash:%s:%s:%s:%s" (fs base_rps) (fs spike_rps) (fs at_s)
        (fs for_s)

let failf fmt = Printf.ksprintf failwith fmt

let float_of s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> failf "load shape: bad number %S" s

let of_string s =
  let t =
    match String.index_opt s ':' with
    | None -> failf "load shape %S: expected KIND:ARGS" s
    | Some i -> (
        let kind = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        let args () = String.split_on_char ':' rest in
        match (kind, args ()) with
        | "fixed", [ rps ] -> Fixed { rps = float_of rps }
        | "rampup", [ from_rps; to_rps; over_s ] ->
            Rampup
              {
                from_rps = float_of from_rps;
                to_rps = float_of to_rps;
                over_s = float_of over_s;
              }
        | "pausing", [ rps; on_s; off_s ] ->
            Pausing
              {
                rps = float_of rps;
                on_s = float_of on_s;
                off_s = float_of off_s;
              }
        | "shaped", [ pts ] ->
            let point p =
              match String.split_on_char '=' p with
              | [ at; r ] -> (float_of at, float_of r)
              | _ -> failf "load shape: bad shaped point %S" p
            in
            Shaped
              { points = List.map point (String.split_on_char ',' pts) }
        | "diurnal", [ base_rps; peak_rps; period_s ] ->
            Diurnal
              {
                base_rps = float_of base_rps;
                peak_rps = float_of peak_rps;
                period_s = float_of period_s;
              }
        | "flash", [ base_rps; spike_rps; at_s; for_s ] ->
            Flash
              {
                base_rps = float_of base_rps;
                spike_rps = float_of spike_rps;
                at_s = float_of at_s;
                for_s = float_of for_s;
              }
        | kind, _ ->
            failf
              "load shape %S: unknown kind %S (expected \
               fixed|rampup|pausing|shaped|diurnal|flash)"
              s kind)
  in
  (try validate t with Invalid_argument m -> failwith m);
  t

let pp ppf t = Format.pp_print_string ppf (to_string t)

(** The synthetic mutator: a step-able driver that exercises a collector
    according to a {!Spec}.

    Structure of the object graph:
    - a chain of {e immortal} objects built at start-up, rooted at its
      head — the cold data whose pages become eviction victims under
      memory pressure;
    - a ring of {e window segments}: rooted arrays of reference slots.
      Long-lived allocations are stored into ring slots (a mature-to-young
      pointer store that exercises write barriers); each insertion
      un-roots the slot's previous occupant, which eventually dies;
    - {e short-lived} allocations that receive a few references to window
      objects and are dropped at the end of their operation.

    The driver is step-able so the harness can interleave several
    processes and drive memory-pressure schedules between steps. *)

type t

val create : ?trace:Trace.t -> Spec.t -> Gc_common.Collector.t -> t
(** Builds the immortal chain and window segments (allocating through the
    collector) and installs the root enumerator on the heap. When [trace]
    is given, every heap operation (and root change) is recorded into it
    for later {!Trace.replay}. *)

val step : t -> ops:int -> bool
(** Run up to [ops] allocation operations; returns [true] once the spec's
    allocation volume has been reached. *)

val finished : t -> bool

val allocated_bytes : t -> int

val ops_done : t -> int

val spec : t -> Spec.t

module Vec = Repro_util.Vec

type t = {
  vmm : Vmsim.Vmm.t;
  address_space : Heapsim.Address_space.t;
  proc : Vmsim.Process.t;
  pinned : int Vec.t;
}

let create vmm address_space =
  {
    vmm;
    address_space;
    proc = Vmsim.Vmm.create_process vmm ~name:"signalmem";
    pinned = Vec.create ();
  }

(* One Pressure_step event per pin/unpin batch: new pinned total plus the
   signed delta. No sink, no work. *)
let step_event t ~delta =
  if delta <> 0 then
    match Vmsim.Vmm.trace t.vmm with
    | None -> ()
    | Some sink ->
        Telemetry.Sink.emit sink
          ~ts_ns:(Vmsim.Clock.now (Vmsim.Vmm.clock t.vmm))
          Telemetry.Event.Pressure_step (Vec.length t.pinned) delta

let pin_pages t n =
  if n > 0 then begin
    let first_page = Heapsim.Address_space.reserve t.address_space ~npages:n in
    Vmsim.Vmm.map_range t.vmm t.proc ~first_page ~npages:n;
    for page = first_page to first_page + n - 1 do
      Vmsim.Vmm.touch t.vmm ~write:true page;
      Vmsim.Vmm.mlock t.vmm page;
      Vec.push t.pinned page
    done;
    step_event t ~delta:n
  end

(* A receding burst models a competing process freeing its memory, so the
   frames must actually return to the pool: munlock alone would leave the
   pages resident and the machine permanently short of free frames. *)
let unpin_pages t n =
  let released = min n (Vec.length t.pinned) in
  for _ = 1 to released do
    let page = Vec.pop t.pinned in
    Vmsim.Vmm.munlock t.vmm page;
    Vmsim.Vmm.madvise_dontneed t.vmm page
  done;
  step_event t ~delta:(-released)

let unpin_all t =
  let released = Vec.length t.pinned in
  Vec.iter (fun page -> Vmsim.Vmm.munlock t.vmm page) t.pinned;
  Vec.clear t.pinned;
  step_event t ~delta:(-released)

let pinned_pages t = Vec.length t.pinned

let process t = t.proc

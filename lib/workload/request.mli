(** Request-serving workloads: an open-loop arrival process over a
    long-lived cache/session heap.

    Arrivals are scheduled by thinning a Poisson process at the shape's
    peak rate against its instantaneous rate — deterministic for a given
    seed. Each request allocates a short-lived working set wired into
    the cache, performs cache reads, and may promote session state into
    the rooted cache/session ring. Latency is open-loop (finish minus
    {e scheduled} arrival), so a GC pause stalls the queue and every
    request arriving during it pays the delay — the mechanism by which
    paging-induced pauses blow the tail percentiles. *)

type spec = {
  name : string;
  shape : Shapes.t;  (** requests-per-second envelope *)
  duration_ns : int;  (** arrival window; the queue drains after it *)
  req_alloc_bytes : int;  (** short-lived bytes allocated per request *)
  req_mean_size : int;  (** mean object size inside a request *)
  session_frac : float;
      (** fraction of requests promoting state into the session ring *)
  cache_bytes : int;  (** long-lived cache built before serving starts *)
  cache_entry_size : int;
  cache_reads : int;  (** cache lookups per request *)
  slo_ns : int;  (** per-request latency objective *)
  window_ns : int;  (** SLO violation-window width *)
  base_heap_bytes : int;
      (** unit for relative-heap-size sweeps, like the batch specs'
          [paper_min_heap_bytes] *)
  seed : int;
}

val validate : spec -> unit
(** Raises [Invalid_argument] on out-of-range fields. *)

val scale_volume : spec -> float -> spec
(** Stretch the arrival window (more requests, same live set) — the
    serving analogue of {!Spec.scale_volume}. *)

val live_estimate_bytes : spec -> int

val pp_spec : Format.formatter -> spec -> unit

type t

val create : ?sink:Telemetry.Sink.t -> spec -> Gc_common.Collector.t -> t
(** Install roots, build the cache (unmeasured warm-up), open the
    serving window at the current virtual time and schedule the first
    arrival. [sink] receives [Request_arrival] / [Request_done]
    events. *)

val step : t -> ops:int -> bool
(** Run up to [ops] scheduler steps — each serves one queued request,
    or advances virtual time to the next arrival when idle. Returns
    [true] once the arrival window has closed and the queue drained. *)

val finished : t -> bool

val allocated_bytes : t -> int

val ops_done : t -> int

val requests_done : t -> int

val spec : t -> spec

val progress : t -> float
(** Elapsed fraction of the arrival window, in [\[0, 1\]]. *)

val summary : t -> Slo.summary
(** Percentiles and violation windows over everything served so far. *)

val histogram : t -> Telemetry.Histogram.t
(** The power-of-two latency histogram fed alongside the exact
    samples. *)

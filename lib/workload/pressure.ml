type spike = { from_progress : float; until_progress : float; pages : int }

type t =
  | None_
  | Steady of { after_progress : float; pin_pages : int }
  | Ramp of {
      after_progress : float;
      initial_pages : int;
      pages_per_step : int;
      step_ns : int;
      max_pages : int;
    }
  | Spikes of { base : t; spikes : spike list }

let rec due_pages t ~now_ns ~start_ns ~progress =
  match t with
  | None_ -> 0
  | Steady { after_progress; pin_pages } ->
      if progress >= after_progress then pin_pages else 0
  | Ramp { after_progress; initial_pages; pages_per_step; step_ns; max_pages }
    ->
      if progress < after_progress then 0
      else begin
        let steps = (now_ns - start_ns) / step_ns in
        min max_pages (initial_pages + (steps * pages_per_step))
      end
  | Spikes { base; spikes } ->
      due_pages base ~now_ns ~start_ns ~progress
      + List.fold_left
          (fun acc s ->
            if progress >= s.from_progress && progress < s.until_progress then
              acc + s.pages
            else acc)
          0 spikes

let rec after_progress = function
  | None_ -> None
  | Steady { after_progress = p; _ } | Ramp { after_progress = p; _ } -> Some p
  | Spikes { base; _ } -> after_progress base

let with_spikes t triples =
  match
    List.filter_map
      (fun (from_progress, until_progress, pages) ->
        if pages > 0 && until_progress > from_progress then
          Some { from_progress; until_progress; pages }
        else None)
      triples
  with
  | [] -> t
  | spikes -> Spikes { base = t; spikes }

let rec pp ppf = function
  | None_ -> Format.pp_print_string ppf "none"
  | Steady { after_progress; pin_pages } ->
      Format.fprintf ppf "steady(%d pages @ %.0f%%)" pin_pages
        (100.0 *. after_progress)
  | Ramp { initial_pages; pages_per_step; step_ns; max_pages; _ } ->
      Format.fprintf ppf "ramp(%d + %d/%.0fms -> %d pages)" initial_pages
        pages_per_step
        (float_of_int step_ns /. 1e6)
        max_pages
  | Spikes { base; spikes } ->
      Format.fprintf ppf "%a + %d spike(s)" pp base (List.length spikes)

module Vec = Repro_util.Vec
module Rng = Repro_util.Rng
module Collector = Gc_common.Collector

let slots_per_segment = 64

let los_threshold = Gc_common.Size_class.max_cell

type t = {
  spec : Spec.t;
  collector : Collector.t;
  rng : Rng.t;
  segments : Heapsim.Obj_id.t array;
  window_slots : int;
  mutable ring_pos : int;
  immortal : Heapsim.Obj_id.t Vec.t;
  mutable allocated_bytes : int;
  mutable ops : int;
  mutable finished : bool;
  trace : Trace.t option;
  birth : (Heapsim.Obj_id.t, int) Hashtbl.t;  (* id -> birth index *)
  mutable births : int;
}

let emit t e = match t.trace with Some tr -> Trace.record tr e | None -> ()

let birth_of t id = Hashtbl.find t.birth id

let sample_size t =
  let s = t.spec in
  if s.Spec.large_frac > 0.0 && Rng.float t.rng 1.0 < s.Spec.large_frac then
    los_threshold + 4 + Rng.int t.rng Vmsim.Page.size
  else begin
    let extra = max 1 (s.Spec.mean_size - 8) in
    let size = 8 + Rng.int t.rng (2 * extra) in
    min size s.Spec.max_size
  end

let sample_nrefs t =
  let mean = t.spec.Spec.nrefs_mean in
  if mean <= 0 then 0 else min 8 (Rng.int t.rng ((2 * mean) + 1))

let sample_kind t =
  if Rng.float t.rng 1.0 < t.spec.Spec.array_frac then `Array else `Scalar

let heap t = t.collector.Collector.heap

(* Read a random window slot; may be null early on. The read touches the
   segment's pages, so it is recorded as an access. *)
let random_window_member t =
  let slot = Rng.int t.rng t.window_slots in
  let segment = t.segments.(slot / slots_per_segment) in
  (match t.trace with
  | Some tr -> Trace.record tr (Trace.Access (Hashtbl.find t.birth segment))
  | None -> ());
  Heapsim.Heap.read_ref (heap t) segment (slot mod slots_per_segment)

(* A recorded pointer store. *)
let write t src field target =
  if t.trace <> None then
    emit t
      (Trace.Write
         { src = birth_of t src; field; target = birth_of t target });
  Heapsim.Heap.write_ref (heap t) src field target

let access t id =
  if t.trace <> None then emit t (Trace.Access (birth_of t id));
  Heapsim.Heap.access (heap t) id

let store_in_window t id =
  let slot = t.ring_pos in
  t.ring_pos <- (t.ring_pos + 1) mod t.window_slots;
  let segment = t.segments.(slot / slots_per_segment) in
  write t segment (slot mod slots_per_segment) id

let alloc t ~size ~nrefs ~kind =
  let id = t.collector.Collector.alloc ~size ~nrefs ~kind in
  t.allocated_bytes <- t.allocated_bytes + size;
  if t.trace <> None then begin
    emit t (Trace.Alloc { size; nrefs; array = kind = `Array });
    Hashtbl.replace t.birth id t.births;
    t.births <- t.births + 1
  end;
  id

let create ?trace spec collector =
  let rng = Rng.create spec.Spec.seed in
  let window_slots =
    max slots_per_segment
      (spec.Spec.window_bytes / max 8 spec.Spec.mean_size)
  in
  let nsegments = (window_slots + slots_per_segment - 1) / slots_per_segment in
  let t =
    {
      spec;
      collector;
      rng;
      segments = Array.make nsegments Heapsim.Obj_id.null;
      window_slots = nsegments * slots_per_segment;
      ring_pos = 0;
      immortal = Vec.create ();
      allocated_bytes = 0;
      ops = 0;
      finished = false;
      trace;
      birth = Hashtbl.create 1024;
      births = 0;
    }
  in
  (* Roots must be installed before the first allocation: tiny heaps
     collect during start-up. Each immortal object links to its
     predecessor, so rooting the most recent one keeps the whole chain. *)
  Heapsim.Heap.set_roots (heap t) (fun f ->
      Array.iter
        (fun id -> if not (Heapsim.Obj_id.is_null id) then f id)
        t.segments;
      if not (Vec.is_empty t.immortal) then f (Vec.top t.immortal));
  (* window segments: rooted arrays of reference slots *)
  for i = 0 to nsegments - 1 do
    t.segments.(i) <-
      alloc t
        ~size:((slots_per_segment * Gc_common.Size_class.word) + 16)
        ~nrefs:slots_per_segment ~kind:`Array;
    if t.trace <> None then emit t (Trace.Root (birth_of t t.segments.(i)))
  done;
  (* the cold immortal chain; only the most recent link is a root *)
  let n_immortal = max 1 (spec.Spec.immortal_bytes / max 8 spec.Spec.mean_size) in
  for _ = 1 to n_immortal do
    let id = alloc t ~size:(max 8 spec.Spec.mean_size) ~nrefs:1 ~kind:`Scalar in
    if t.trace <> None then begin
      emit t (Trace.Root (birth_of t id));
      if not (Vec.is_empty t.immortal) then
        emit t (Trace.Unroot (birth_of t (Vec.top t.immortal)))
    end;
    if not (Vec.is_empty t.immortal) then
      write t id 0 (Vec.top t.immortal);
    Vec.push t.immortal id
  done;
  t

let one_op t =
  let s = t.spec in
  let size = sample_size t in
  let nrefs = sample_nrefs t in
  let id = alloc t ~size ~nrefs ~kind:(sample_kind t) in
  (* wire some fields to live data *)
  for field = 0 to nrefs - 1 do
    if Rng.float t.rng 1.0 < 0.5 then begin
      let target =
        if Rng.float t.rng 1.0 < 0.1 && not (Vec.is_empty t.immortal) then
          Vec.get t.immortal (Rng.int t.rng (Vec.length t.immortal))
        else random_window_member t
      in
      if not (Heapsim.Obj_id.is_null target) then write t id field target
    end
  done;
  (* promote a fraction of allocations into the long-lived window *)
  if Rng.float t.rng 1.0 < s.Spec.long_frac then store_in_window t id;
  (* extra pointer mutations between window members *)
  let mutations = int_of_float s.Spec.mutation_rate in
  let frac = s.Spec.mutation_rate -. float_of_int mutations in
  let mutations =
    mutations + if Rng.float t.rng 1.0 < frac then 1 else 0
  in
  for _ = 1 to mutations do
    let target = random_window_member t in
    if not (Heapsim.Obj_id.is_null target) then store_in_window t target
  done;
  (* reads over the live data, mostly hot (window), sometimes cold *)
  let accesses = int_of_float s.Spec.access_rate in
  let frac = s.Spec.access_rate -. float_of_int accesses in
  let accesses = accesses + if Rng.float t.rng 1.0 < frac then 1 else 0 in
  for _ = 1 to accesses do
    if
      Rng.float t.rng 1.0 < s.Spec.cold_access_frac
      && not (Vec.is_empty t.immortal)
    then
      access t (Vec.get t.immortal (Rng.int t.rng (Vec.length t.immortal)))
    else begin
      let target = random_window_member t in
      if not (Heapsim.Obj_id.is_null target) then access t target
    end
  done;
  t.ops <- t.ops + 1

let step t ~ops =
  if not t.finished then begin
    let i = ref 0 in
    while (not t.finished) && !i < ops do
      one_op t;
      if t.allocated_bytes >= t.spec.Spec.total_alloc_bytes then
        t.finished <- true;
      incr i
    done
  end;
  t.finished

let finished t = t.finished

let allocated_bytes t = t.allocated_bytes

let ops_done t = t.ops

let spec t = t.spec

module Vec = Repro_util.Vec
module Rng = Repro_util.Rng
module Collector = Gc_common.Collector

let slots_per_segment = 64

(* A request-serving workload: an open-loop arrival process where each
   simulated request allocates a short-lived working set against a
   long-lived cache/session heap. All rates are over virtual time, so a
   run is deterministic for a given (spec, collector, machine). *)
type spec = {
  name : string;
  shape : Shapes.t;  (* requests-per-second envelope *)
  duration_ns : int;  (* arrival window; the run drains the queue after *)
  req_alloc_bytes : int;  (* short-lived bytes allocated per request *)
  req_mean_size : int;  (* mean object size inside a request *)
  session_frac : float;  (* fraction of requests that promote state into
                            the cache/session ring *)
  cache_bytes : int;  (* long-lived cache built before serving starts *)
  cache_entry_size : int;
  cache_reads : int;  (* cache lookups per request *)
  slo_ns : int;  (* per-request latency objective *)
  window_ns : int;  (* SLO violation-window width *)
  base_heap_bytes : int;  (* the heap-multiplier unit, like Table 1's
                             minimum heap for the batch specs *)
  seed : int;
}

let validate s =
  Shapes.validate s.shape;
  if s.duration_ns <= 0 then invalid_arg "Request: duration_ns";
  if s.req_alloc_bytes <= 0 then invalid_arg "Request: req_alloc_bytes";
  if s.req_mean_size < 8 then invalid_arg "Request: req_mean_size";
  if s.session_frac < 0.0 || s.session_frac > 1.0 then
    invalid_arg "Request: session_frac";
  if s.cache_bytes <= 0 then invalid_arg "Request: cache_bytes";
  if s.cache_entry_size < 8 then invalid_arg "Request: cache_entry_size";
  if s.cache_reads < 0 then invalid_arg "Request: cache_reads";
  if s.slo_ns <= 0 then invalid_arg "Request: slo_ns";
  if s.window_ns <= 0 then invalid_arg "Request: window_ns";
  if s.base_heap_bytes <= 0 then invalid_arg "Request: base_heap_bytes"

(* Volume scaling stretches the arrival window (more requests at the
   same rate), mirroring [Spec.scale_volume]'s more-allocation-same-live
   contract. *)
let scale_volume s factor =
  if factor <= 0.0 then invalid_arg "Request.scale_volume";
  {
    s with
    duration_ns =
      max 1_000_000 (int_of_float (float_of_int s.duration_ns *. factor));
  }

let live_estimate_bytes s = s.cache_bytes

let pp_spec ppf s =
  Format.fprintf ppf
    "%s: shape=%s over %.2fs, %dB/request (mean %dB), cache %dKB, slo %.1fms"
    s.name (Shapes.to_string s.shape)
    (Vmsim.Clock.ns_to_s s.duration_ns)
    s.req_alloc_bytes s.req_mean_size (s.cache_bytes / 1024)
    (float_of_int s.slo_ns /. 1e6)

type t = {
  spec : spec;
  collector : Collector.t;
  rng : Rng.t;
  sink : Telemetry.Sink.t option;
  pid : int;
  segments : Heapsim.Obj_id.t array;  (* rooted cache/session ring *)
  cache_slots : int;
  mutable ring_pos : int;
  start_ns : int;  (* serving window opens after the cache is built *)
  end_ns : int;  (* last instant an arrival can be scheduled *)
  peak_rate : float;  (* thinning envelope; 0 = no arrivals at all *)
  mutable next_arrival_ns : int;
  mutable arrivals_done : bool;
  pending : int Queue.t;  (* scheduled arrival times, FIFO *)
  mutable arrived : int;
  mutable served : int;
  samples : (int * int) Vec.t;  (* (finish_ns, latency_ns) *)
  hist : Telemetry.Histogram.t;
  mutable allocated_bytes : int;
  mutable ops : int;
  mutable finished : bool;
}

let clock t = Heapsim.Heap.clock t.collector.Collector.heap

let now t = Vmsim.Clock.now (clock t)

let heap t = t.collector.Collector.heap

(* Sample the next arrival instant after [from_ns] by thinning a
   homogeneous Poisson process at [peak_rate] against the shape's
   instantaneous rate (Lewis–Shedler). Candidates advance by >= 1 ns, so
   the scan always terminates at [end_ns]. *)
let rec sample_arrival t from_ns =
  if t.peak_rate <= 0.0 then None
  else begin
    let gap_s = Rng.exponential t.rng (1.0 /. t.peak_rate) in
    let cand = from_ns + max 1 (int_of_float (gap_s *. 1e9)) in
    if cand > t.end_ns then None
    else begin
      let at_s = float_of_int (cand - t.start_ns) /. 1e9 in
      let r = Shapes.rate t.spec.shape ~at_s in
      if Rng.float t.rng 1.0 < r /. t.peak_rate then Some cand
      else sample_arrival t cand
    end
  end

let emit t ~ts_ns kind a b =
  match t.sink with
  | Some sink -> Telemetry.Sink.emit sink ~ts_ns kind a b
  | None -> ()

(* Enqueue every arrival scheduled up to [now] — after a long GC pause
   this books the whole backlog at once, which is exactly the open-loop
   queueing the latency percentiles must see. *)
let generate_arrivals t now =
  while (not t.arrivals_done) && t.next_arrival_ns <= now do
    Queue.add t.next_arrival_ns t.pending;
    emit t ~ts_ns:t.next_arrival_ns Telemetry.Event.Request_arrival t.arrived
      t.pid;
    t.arrived <- t.arrived + 1;
    match sample_arrival t t.next_arrival_ns with
    | Some ns -> t.next_arrival_ns <- ns
    | None -> t.arrivals_done <- true
  done

let alloc t ~size ~nrefs ~kind =
  let id = t.collector.Collector.alloc ~size ~nrefs ~kind in
  t.allocated_bytes <- t.allocated_bytes + size;
  id

let random_cache_member t =
  let slot = Rng.int t.rng t.cache_slots in
  let segment = t.segments.(slot / slots_per_segment) in
  Heapsim.Heap.read_ref (heap t) segment (slot mod slots_per_segment)

let store_in_ring t id =
  let slot = t.ring_pos in
  t.ring_pos <- (t.ring_pos + 1) mod t.cache_slots;
  let segment = t.segments.(slot / slots_per_segment) in
  Heapsim.Heap.write_ref (heap t) segment (slot mod slots_per_segment) id

(* Serve one request to completion: allocate its working set, hit the
   cache, maybe promote session state, then record the open-loop
   latency against the scheduled arrival time. *)
let serve t arrival_ns =
  let s = t.spec in
  let nobjs = max 1 (s.req_alloc_bytes / max 8 s.req_mean_size) in
  let last = ref Heapsim.Obj_id.null in
  for _ = 1 to nobjs do
    let extra = max 1 (s.req_mean_size - 8) in
    let size = 8 + Rng.int t.rng (2 * extra) in
    let id = alloc t ~size ~nrefs:2 ~kind:`Scalar in
    (* wire the working set into the cache: reads plus one ref store *)
    if Rng.float t.rng 1.0 < 0.5 then begin
      let target = random_cache_member t in
      if not (Heapsim.Obj_id.is_null target) then
        Heapsim.Heap.write_ref (heap t) id 0 target
    end;
    last := id
  done;
  for _ = 1 to s.cache_reads do
    let target = random_cache_member t in
    if not (Heapsim.Obj_id.is_null target) then
      Heapsim.Heap.access (heap t) target
  done;
  (* session state: a slice of this request's working set outlives it *)
  if
    Rng.float t.rng 1.0 < s.session_frac
    && not (Heapsim.Obj_id.is_null !last)
  then store_in_ring t !last;
  let finish_ns = now t in
  let latency_ns = max 0 (finish_ns - arrival_ns) in
  Vec.push t.samples (finish_ns, latency_ns);
  Telemetry.Histogram.add t.hist latency_ns;
  emit t ~ts_ns:finish_ns Telemetry.Event.Request_done t.served latency_ns;
  t.served <- t.served + 1

let create ?sink spec collector =
  validate spec;
  let rng = Rng.create spec.seed in
  let cache_slots =
    max slots_per_segment (spec.cache_bytes / max 8 spec.cache_entry_size)
  in
  let nsegments = (cache_slots + slots_per_segment - 1) / slots_per_segment in
  let t =
    {
      spec;
      collector;
      rng;
      sink;
      pid =
        Vmsim.Process.pid
          (Heapsim.Heap.process collector.Collector.heap);
      segments = Array.make nsegments Heapsim.Obj_id.null;
      cache_slots = nsegments * slots_per_segment;
      ring_pos = 0;
      start_ns = 0;
      end_ns = 0;
      peak_rate = Shapes.peak_rate spec.shape;
      next_arrival_ns = 0;
      arrivals_done = false;
      pending = Queue.create ();
      arrived = 0;
      served = 0;
      samples = Vec.create ();
      hist = Telemetry.Histogram.create ();
      allocated_bytes = 0;
      ops = 0;
      finished = false;
    }
  in
  (* Roots before the first allocation, as in [Mutator]: the segment
     array pins the cache/session ring; everything else may die. *)
  Heapsim.Heap.set_roots (heap t) (fun f ->
      Array.iter
        (fun id -> if not (Heapsim.Obj_id.is_null id) then f id)
        t.segments);
  for i = 0 to nsegments - 1 do
    t.segments.(i) <-
      alloc t
        ~size:((slots_per_segment * Gc_common.Size_class.word) + 16)
        ~nrefs:slots_per_segment ~kind:`Array
  done;
  (* pre-populate every cache slot with a long-lived entry *)
  for slot = 0 to t.cache_slots - 1 do
    let id =
      alloc t ~size:(max 8 spec.cache_entry_size) ~nrefs:1 ~kind:`Scalar
    in
    let segment = t.segments.(slot / slots_per_segment) in
    Heapsim.Heap.write_ref (heap t) segment (slot mod slots_per_segment) id
  done;
  (* the serving window opens now — cache warm-up is not measured *)
  let start_ns = now t in
  let t = { t with start_ns; end_ns = start_ns + spec.duration_ns } in
  (match sample_arrival t start_ns with
  | Some ns -> t.next_arrival_ns <- ns
  | None -> t.arrivals_done <- true);
  t

let one_op t =
  let n = now t in
  generate_arrivals t n;
  (if Queue.is_empty t.pending then begin
     if t.arrivals_done then t.finished <- true
     else begin
       (* open-loop idle: advance virtual time to the next arrival *)
       Vmsim.Clock.advance (clock t) (max 1 (t.next_arrival_ns - n));
       generate_arrivals t (now t)
     end
   end);
  (match Queue.take_opt t.pending with
  | Some arrival_ns -> serve t arrival_ns
  | None -> ());
  t.ops <- t.ops + 1

let step t ~ops =
  if not t.finished then begin
    let i = ref 0 in
    while (not t.finished) && !i < ops do
      one_op t;
      incr i
    done
  end;
  t.finished

let finished t = t.finished

let allocated_bytes t = t.allocated_bytes

let ops_done t = t.ops

let requests_done t = t.served

let spec t = t.spec

(* Serving progress for the pressure schedules: elapsed fraction of the
   arrival window (the queue drain after it counts as done). *)
let progress t =
  if t.finished then 1.0
  else
    Float.min 1.0
      (float_of_int (now t - t.start_ns) /. float_of_int t.spec.duration_ns)

let summary t =
  Slo.of_samples ~slo_ns:t.spec.slo_ns ~window_ns:t.spec.window_ns
    ~start_ns:t.start_ns
    ~end_ns:(max (now t) (t.start_ns + 1))
    (Vec.to_array t.samples)

let histogram t = t.hist

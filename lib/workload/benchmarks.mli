(** The paper's benchmark suite (Table 1), as synthetic workload specs.

    Byte quantities are the paper's scaled by 1/8 (pages stay 4 KB).
    "Total Bytes Alloc" comes straight from Table 1; live-set and
    behavioural parameters are calibrated per benchmark so that measured
    minimum heaps land near Table 1's "Min. Heap" column (scaled):
    e.g. _209_db is small-allocation / big-live-set, _213_javac holds a
    large long-lived structure, pseudoJBB "initially allocates a few
    immortal objects and then allocates only short-lived objects".

    This module only defines the nine specs; enumeration and lookup by
    name go through the {!Catalog} registry ([Catalog.batch_specs] /
    [Catalog.find_opt]), which covers both workload families and never
    raises on a miss. *)

val compress : Spec.t

val jess : Spec.t

val raytrace : Spec.t

val db : Spec.t

val javac : Spec.t

val jack : Spec.t

val ipsixql : Spec.t

val jython : Spec.t

val pseudojbb : Spec.t

val scale : int
(** The denominator applied to the paper's byte quantities (8). *)

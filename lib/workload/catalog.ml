(* The workload registry: one uniform, typed catalogue over both
   families — the nine Table 1 batch specs and the request-serving
   workloads — mirroring the collector registry's info records. *)

type family = Batch | Serving

type params = Batch_spec of Spec.t | Serving_spec of Request.spec

type info = {
  name : string;
  family : family;
  doc : string;
  params : params;
  factory :
    ?sink:Telemetry.Sink.t -> Gc_common.Collector.t -> Driver.t;
}

let family_name = function Batch -> "batch" | Serving -> "serving"

let family_of_params = function
  | Batch_spec _ -> Batch
  | Serving_spec _ -> Serving

let params_name = function
  | Batch_spec s -> s.Spec.name
  | Serving_spec s -> s.Request.name

let scale = Benchmarks.scale

let scale_volume p factor =
  match p with
  | Batch_spec s -> Batch_spec (Spec.scale_volume s factor)
  | Serving_spec s -> Serving_spec (Request.scale_volume s factor)

let base_heap_bytes = function
  | Batch_spec s -> s.Spec.paper_min_heap_bytes
  | Serving_spec s -> s.Request.base_heap_bytes

let live_estimate_bytes = function
  | Batch_spec s -> Spec.live_estimate_bytes s
  | Serving_spec s -> Request.live_estimate_bytes s

let seed = function
  | Batch_spec s -> s.Spec.seed
  | Serving_spec s -> s.Request.seed

let with_shape shape = function
  | Serving_spec s -> Serving_spec { s with Request.shape }
  | Batch_spec _ ->
      invalid_arg "Catalog.with_shape: batch workloads have no load shape"

let driver ?sink p collector =
  match p with
  | Batch_spec s ->
      ignore sink;
      Driver.of_mutator (Mutator.create s collector)
  | Serving_spec s -> Driver.of_request (Request.create ?sink s collector)

let make ?(doc = "") params =
  {
    name = params_name params;
    family = family_of_params params;
    doc;
    params;
    factory = (fun ?sink c -> driver ?sink params c);
  }

let of_batch ?doc s = make ?doc (Batch_spec s)

let of_serving ?doc s = make ?doc (Serving_spec s)

(* ------------------------------------------------------------------ *)
(* The serving family: one workload per load shape, sharing the same
   cache/request demographics so only the arrival envelope differs.
   Calibration: ~260 allocations per request puts the healthy service
   time near 50 us, so the shapes' 1.5-3k rps leave headroom — tail
   latency then measures scheduler queueing behind GC pauses, not
   saturation. *)

let serving_base =
  {
    Request.name = "srv_base";
    shape = Shapes.Fixed { rps = 1500.0 };
    duration_ns = 2_000_000_000;
    req_alloc_bytes = 16_384;
    req_mean_size = 64;
    session_frac = 0.2;
    cache_bytes = 1_572_864;
    cache_entry_size = 96;
    cache_reads = 4;
    slo_ns = 10_000_000;
    window_ns = 100_000_000;
    base_heap_bytes = 6 * 1024 * 1024;
    seed = 0;
  }

let srv_fixed =
  {
    serving_base with
    Request.name = "srv_fixed";
    shape = Shapes.Fixed { rps = 1500.0 };
    seed = 201;
  }

let srv_rampup =
  {
    serving_base with
    Request.name = "srv_rampup";
    shape = Shapes.Rampup { from_rps = 200.0; to_rps = 2500.0; over_s = 1.5 };
    seed = 202;
  }

let srv_pausing =
  {
    serving_base with
    Request.name = "srv_pausing";
    shape = Shapes.Pausing { rps = 2000.0; on_s = 0.25; off_s = 0.25 };
    seed = 203;
  }

let srv_shaped =
  {
    serving_base with
    Request.name = "srv_shaped";
    shape =
      Shapes.Shaped
        {
          points =
            [ (0.0, 300.0); (0.5, 1800.0); (1.0, 600.0); (1.5, 2200.0);
              (2.0, 400.0) ];
        };
    seed = 204;
  }

let srv_diurnal =
  {
    serving_base with
    Request.name = "srv_diurnal";
    shape =
      Shapes.Diurnal { base_rps = 400.0; peak_rps = 2200.0; period_s = 1.0 };
    seed = 205;
  }

let srv_flash =
  {
    serving_base with
    Request.name = "srv_flash";
    shape =
      Shapes.Flash
        { base_rps = 600.0; spike_rps = 3000.0; at_s = 0.8; for_s = 0.4 };
    seed = 206;
  }

let all =
  [
    of_batch ~doc:"SPECjvm98 compression: few large array-heavy buffers"
      Benchmarks.compress;
    of_batch ~doc:"SPECjvm98 expert system: many tiny short-lived facts"
      Benchmarks.jess;
    of_batch ~doc:"SPECjvm98 ray tracer" Benchmarks.raytrace;
    of_batch ~doc:"SPECjvm98 in-memory database: big hot live set"
      Benchmarks.db;
    of_batch ~doc:"SPECjvm98 compiler: large long-lived ASTs"
      Benchmarks.javac;
    of_batch ~doc:"SPECjvm98 parser generator" Benchmarks.jack;
    of_batch ~doc:"XML query engine: bursts of short-lived tree nodes"
      Benchmarks.ipsixql;
    of_batch ~doc:"Python interpreter: extreme allocation rate"
      Benchmarks.jython;
    of_batch ~doc:"SPECjbb2000 port: immortal start-up, then short-lived"
      Benchmarks.pseudojbb;
    of_serving ~doc:"serving under a constant request rate" srv_fixed;
    of_serving ~doc:"serving under a linear user ramp-up" srv_rampup;
    of_serving ~doc:"serving under on/off request bursts" srv_pausing;
    of_serving ~doc:"serving under a custom piecewise load envelope"
      srv_shaped;
    of_serving ~doc:"serving under a sinusoidal day/night cycle" srv_diurnal;
    of_serving ~doc:"serving through a flash crowd" srv_flash;
  ]

let find_opt name =
  List.find_opt (fun info -> info.name = name) all

let names () = List.map (fun info -> info.name) all

let batch_specs =
  List.filter_map
    (fun info ->
      match info.params with Batch_spec s -> Some s | Serving_spec _ -> None)
    all

let serving_specs =
  List.filter_map
    (fun info ->
      match info.params with Serving_spec s -> Some s | Batch_spec _ -> None)
    all

let pp ppf info =
  Format.fprintf ppf "%-14s %-8s %s" info.name (family_name info.family)
    info.doc

(** Per-request latency accounting for the serving workloads.

    Latency is open-loop: finish time minus {e scheduled} arrival time,
    so a GC pause that stalls the mutator surfaces as queueing delay on
    every request that arrived during the pause. Percentiles are exact
    (nearest-rank over all recorded samples, not bucketed); violation
    windows cut the run into fixed virtual-time buckets and merge
    adjacent violating buckets into maximal spans. *)

type window = {
  from_ns : int;
  until_ns : int;
  violations : int;  (** requests over the SLO inside the span *)
  requests : int;  (** all requests that finished inside the span *)
}

type summary = {
  requests : int;
  slo_ns : int;
  window_ns : int;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
  violations : int;  (** requests with latency > [slo_ns] *)
  windows : window list;  (** maximal violating spans, in time order *)
  violation_ns : int;  (** summed span of violating windows *)
  throughput_rps : float;
}

val percentile : int array -> float -> int
(** [percentile sorted p] is the nearest-rank percentile of an
    ascending-sorted array: the smallest sample such that at least [p]
    of the samples are [<=] it. 0 on an empty array. *)

val default_window_ns : int
(** 100 ms of virtual time. *)

val of_samples :
  slo_ns:int ->
  ?window_ns:int ->
  start_ns:int ->
  end_ns:int ->
  (int * int) array ->
  summary
(** [of_samples ~slo_ns ~start_ns ~end_ns samples] summarises
    [(finish_ns, latency_ns)] pairs (any order) over the run interval.
    Raises [Invalid_argument] on non-positive [slo_ns]/[window_ns]. *)

val meets_p999 : summary -> bool
(** Did the tail hold: [p999_ns <= slo_ns]. *)

val to_json : summary -> Telemetry.Json.t

val of_json : Telemetry.Json.t -> summary option
(** Inverse of {!to_json}; [None] when required fields are missing. *)

val pp : Format.formatter -> summary -> unit

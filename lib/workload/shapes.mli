(** Load shapes: deterministic requests-per-second envelopes over
    virtual time, driving the open-loop arrival process of the
    request-serving workloads.

    The first four kinds are adapted from Clue2's workload catalogue
    ([shaped] / [rampup] / [pausing] / [fixed]); [diurnal] and [flash]
    model the daily cycle and the flash crowd. All times are in virtual
    seconds from the start of the serving window. *)

type t =
  | Fixed of { rps : float }  (** constant rate *)
  | Rampup of { from_rps : float; to_rps : float; over_s : float }
      (** linear ramp, then holds [to_rps] *)
  | Pausing of { rps : float; on_s : float; off_s : float }
      (** bursts: [on_s] seconds at [rps], then [off_s] seconds idle *)
  | Shaped of { points : (float * float) list }
      (** piecewise-linear [(at_s, rps)] custom envelope; constant
          before the first and after the last point *)
  | Diurnal of { base_rps : float; peak_rps : float; period_s : float }
      (** sinusoidal day cycle between [base_rps] and [peak_rps] *)
  | Flash of { base_rps : float; spike_rps : float; at_s : float; for_s : float }
      (** flash crowd: [base_rps] except a [spike_rps] plateau during
          [[at_s, at_s + for_s)] *)

val validate : t -> unit
(** Raises [Invalid_argument] on negative rates, non-positive periods
    or non-increasing shaped points. *)

val rate : t -> at_s:float -> float
(** Requests per virtual second at [at_s] seconds into the run. *)

val peak_rate : t -> float
(** An upper bound on {!rate} over all time — the thinning envelope
    used by the arrival sampler. *)

val to_string : t -> string
(** Canonical grammar text ([fixed:RPS], [rampup:FROM:TO:OVER_S],
    [pausing:RPS:ON_S:OFF_S], [shaped:T0=R0,T1=R1,...],
    [diurnal:BASE:PEAK:PERIOD_S], [flash:BASE:SPIKE:AT_S:FOR_S]).
    Stable: used verbatim in [Run.Plan.canonical] and the campaign
    spec grammar. *)

val of_string : string -> t
(** Parse the {!to_string} grammar; raises [Failure] with a message
    naming the offending field. *)

val pp : Format.formatter -> t -> unit

(* The uniform step-able interface the harness machine drives: batch
   mutators and request-serving mutators behave identically from the
   scheduler's point of view, and only differ in how progress is
   measured and whether they produce a serving summary. *)

type t = {
  step : ops:int -> bool;
  finished : unit -> bool;
  allocated_bytes : unit -> int;
  ops_done : unit -> int;
  progress : unit -> float;
  serving : unit -> Slo.summary option;
}

let of_mutator m =
  let total =
    max 1 (Mutator.spec m).Spec.total_alloc_bytes
  in
  {
    step = (fun ~ops -> Mutator.step m ~ops);
    finished = (fun () -> Mutator.finished m);
    allocated_bytes = (fun () -> Mutator.allocated_bytes m);
    ops_done = (fun () -> Mutator.ops_done m);
    progress =
      (fun () ->
        float_of_int (Mutator.allocated_bytes m) /. float_of_int total);
    serving = (fun () -> None);
  }

let of_request r =
  {
    step = (fun ~ops -> Request.step r ~ops);
    finished = (fun () -> Request.finished r);
    allocated_bytes = (fun () -> Request.allocated_bytes r);
    ops_done = (fun () -> Request.ops_done r);
    progress = (fun () -> Request.progress r);
    serving = (fun () -> Some (Request.summary r));
  }

(** Memory-pressure schedules (§5.3).

    Schedules are driven by the harness between mutator steps: given the
    current virtual time and workload progress, {!due_pages} says how many
    pages [signalmem] should have pinned by now. *)

type spike = { from_progress : float; until_progress : float; pages : int }
(** A transient burst: [pages] extra pages pinned while the workload's
    progress lies in [[from_progress, until_progress)]. *)

type t =
  | None_  (** no pressure (§5.2) *)
  | Steady of { after_progress : float; pin_pages : int }
      (** pin [pin_pages] once allocation progress passes
          [after_progress] (the paper pins 60% of the heap size at the
          start of the measured iteration) *)
  | Ramp of {
      after_progress : float;
      initial_pages : int;
      pages_per_step : int;
      step_ns : int;
      max_pages : int;
    }
      (** the dynamic schedule of §5.3.2: pin [initial_pages], then
          [pages_per_step] more every [step_ns], up to [max_pages] *)
  | Spikes of { base : t; spikes : spike list }
      (** [base] plus scripted transient bursts — pressure rises when a
          spike opens and {e falls} when it closes, so the harness must
          unpin as well as pin *)

val due_pages : t -> now_ns:int -> start_ns:int -> progress:float -> int
(** Pages that should be pinned at this instant. [progress] is the
    workload's allocated fraction in [0,1]; the ramp's clock starts at the
    first call past [after_progress] ([start_ns]). *)

val after_progress : t -> float option
(** Progress threshold at which the base schedule engages (spikes keep
    their own windows); [None] when there is no base pressure. *)

val with_spikes : t -> (float * float * int) list -> t
(** Wrap a schedule with [(from, until, pages)] spike triples, dropping
    empty ones; returns the schedule unchanged when none remain. *)

val pp : Format.formatter -> t -> unit

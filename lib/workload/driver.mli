(** The uniform step-able mutator interface the harness machine
    schedules: built from either a batch {!Mutator} or a serving
    {!Request} workload. *)

type t = {
  step : ops:int -> bool;
  finished : unit -> bool;
  allocated_bytes : unit -> int;
  ops_done : unit -> int;
  progress : unit -> float;
      (** batch: allocated / total; serving: elapsed fraction of the
          arrival window — what the pressure schedules key on *)
  serving : unit -> Slo.summary option;
      (** latency summary so far; [None] for batch workloads *)
}

val of_mutator : Mutator.t -> t

val of_request : Request.t -> t

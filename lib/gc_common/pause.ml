let phase_of_kind : Gc_stats.pause_kind -> Telemetry.Event.phase = function
  | Gc_stats.Minor -> Telemetry.Event.Minor
  | Gc_stats.Full -> Telemetry.Event.Full
  | Gc_stats.Compacting -> Telemetry.Event.Compacting

(* Bracket [f] in a Phase_begin/Phase_end pair when the heap's VMM has a
   telemetry sink attached. Without one this is a branch and a call — no
   allocation, no clock advance. *)
let span heap phase f =
  match Vmsim.Vmm.trace (Heapsim.Heap.vmm heap) with
  | None -> f ()
  | Some sink ->
      let clock = Heapsim.Heap.clock heap in
      let pid = Vmsim.Process.pid (Heapsim.Heap.process heap) in
      let code = Telemetry.Event.phase_code phase in
      Telemetry.Sink.emit sink
        ~ts_ns:(Vmsim.Clock.now clock)
        Telemetry.Event.Phase_begin code pid;
      Fun.protect
        ~finally:(fun () ->
          Telemetry.Sink.emit sink
            ~ts_ns:(Vmsim.Clock.now clock)
            Telemetry.Event.Phase_end code pid)
        f

let run stats heap kind f =
  let pstats = Vmsim.Process.stats (Heapsim.Heap.process heap) in
  let before = pstats.Vmsim.Vm_stats.major_faults in
  Gc_stats.time_pause stats (Heapsim.Heap.clock heap) kind (fun () ->
      span heap (phase_of_kind kind) (fun () ->
          Fun.protect
            ~finally:(fun () ->
              Gc_stats.add_gc_faults stats
                (pstats.Vmsim.Vm_stats.major_faults - before))
            f))

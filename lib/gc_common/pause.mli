(** Pause accounting wrapper: records the collection's virtual-time
    interval {e and} the major faults the collector incurred during it —
    the paper's key observable (BC's collections fault on no pages).

    When the heap's VMM has a telemetry sink attached, [run] also
    brackets the collection in a [Phase_begin]/[Phase_end] event pair, so
    a trace shows every pause as a span. *)

val run :
  Gc_stats.t ->
  Heapsim.Heap.t ->
  Gc_stats.pause_kind ->
  (unit -> 'a) ->
  'a

val span : Heapsim.Heap.t -> Telemetry.Event.phase -> (unit -> 'a) -> 'a
(** [span heap phase f] brackets [f] in a begin/end event pair for
    [phase] when a sink is attached; otherwise just runs [f]. Collectors
    use this for their internal sub-phases (mark, sweep, evacuate,
    bookmark scan, kernel reconcile, fail-safe). *)

module Heap = Heapsim.Heap
module Object_table = Heapsim.Object_table
module Page_map = Heapsim.Page_map

let fail fmt = Printf.ksprintf (fun msg -> failwith ("verify: " ^ msg)) fmt

(* Every live object is placed and registered on each page it spans. *)
let check_placements heap =
  let objects = Heap.objects heap in
  let page_map = Heap.page_map heap in
  Object_table.iter_live objects (fun id ->
      let addr = Object_table.addr objects id in
      if addr < 0 then fail "live object #%d has no placement" id;
      Heap.iter_pages heap id (fun page ->
          if not (Array.exists (( = ) id) (Page_map.objects_on page_map page))
          then
            fail "live object #%d spans page %d but is not in the page map"
              id page))

(* Every page-map entry on a page hosting live objects denotes a live
   object that actually spans the page, and such pages are mapped in the
   VMM and owned by the heap's process. *)
let check_pages heap =
  let objects = Heap.objects heap in
  let page_map = Heap.page_map heap in
  let vmm = Heap.vmm heap in
  let our_pid = Vmsim.Process.pid (Heap.process heap) in
  let pages = Hashtbl.create 256 in
  Object_table.iter_live objects (fun id ->
      Heap.iter_pages heap id (fun page ->
          if not (Hashtbl.mem pages page) then Hashtbl.add pages page ()));
  Hashtbl.iter
    (fun page () ->
      Page_map.iter_on page_map page (fun id ->
          if not (Object_table.is_live objects id) then
            fail "page %d lists dead object #%d" page id;
          let spans = ref false in
          Heap.iter_pages heap id (fun p -> if p = page then spans := true);
          if not !spans then
            fail "page %d lists object #%d which does not span it" page id);
      (match Vmsim.Vmm.owner vmm page with
      | None -> fail "page %d hosts live objects but is unmapped" page
      | Some proc ->
          if Vmsim.Process.pid proc <> our_pid then
            fail "page %d hosts our objects but belongs to pid %d" page
              (Vmsim.Process.pid proc)))
    pages

(* No two live objects overlap in the address space. *)
let check_overlap heap =
  let objects = Heap.objects heap in
  let placed = ref [] in
  Object_table.iter_live objects (fun id ->
      let addr = Object_table.addr objects id in
      if addr >= 0 then placed := (addr, Object_table.size objects id, id) :: !placed);
  let sorted =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) !placed
  in
  let rec scan = function
    | (a1, s1, id1) :: ((a2, _, id2) :: _ as rest) ->
        if a1 + s1 > a2 then
          fail "objects #%d [%d,%d) and #%d [%d,...) overlap" id1 a1 (a1 + s1)
            id2 a2;
        scan rest
    | _ -> ()
  in
  scan sorted

(* Everything reachable from the roots is live: a reachable dangling
   reference means liveness summaries (marks, bookmarks) lost an edge. *)
let check_reachability heap =
  let objects = Heap.objects heap in
  let seen = Hashtbl.create 1024 in
  let stack = ref [] in
  let enqueue src id =
    if not (Heapsim.Obj_id.is_null id) && not (Hashtbl.mem seen id) then begin
      if not (Object_table.is_live objects id) then
        (match src with
        | None -> fail "root references freed object #%d" id
        | Some s -> fail "reachable object #%d references freed object #%d" s id);
      Hashtbl.add seen id ();
      stack := id :: !stack
    end
  in
  Heap.iter_roots heap (fun id -> enqueue None id);
  let rec drain () =
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        Object_table.iter_refs objects id (fun _field target ->
            enqueue (Some id) target);
        drain ()
  in
  drain ()

let heap h =
  check_placements h;
  check_pages h;
  check_overlap h;
  check_reachability h

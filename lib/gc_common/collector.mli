(** The collector interface seen by workloads and the harness.

    A collector instance is a record of closures over its private state;
    all collectors — the bookmarking collector and the five baselines —
    present this same interface. *)

exception Heap_exhausted of string
(** Raised by [alloc] when a request cannot be satisfied even after a full
    collection at the configured maximum heap size. *)

type t = {
  name : string;
  heap : Heapsim.Heap.t;
  config : Gc_config.t;
  alloc : size:int -> nrefs:int -> kind:[ `Scalar | `Array ] -> Heapsim.Obj_id.t;
      (** Allocate, placing and (first-)touching the object; may trigger
          collections. Raises {!Heap_exhausted}. *)
  collect : unit -> unit;  (** Force a full collection. *)
  stats : Gc_stats.t;
  footprint_pages : unit -> int;
      (** Pages currently mapped by the heap's spaces (high-level footprint,
          not residency). *)
  check_invariants : unit -> unit;
      (** Internal consistency checks for tests; may be expensive. *)
}

type factory = Gc_config.t -> Heapsim.Heap.t -> t
(** Collectors are factories from a configuration and a fresh heap. *)

(** The interface every collector implementation module satisfies.
    Passing implementations around as [(module S)] lets the registry
    build entries from the modules themselves — family name, default
    doc line and factory come from one place — instead of re-stating
    them per entry and keying a second string lookup at instantiation
    time. *)
module type S = sig
  val name : string
  (** Canonical family name (["BC"], ["GenMS"], ...). *)

  val doc : string
  (** One-line description of the canonical configuration. *)

  val factory : factory
end

val charge_alloc : Heapsim.Heap.t -> bytes:int -> unit
(** Charge the mutator-side allocation cost (shared by all collectors). *)

(** The collector interface seen by workloads and the harness.

    A collector instance is a record of closures over its private state;
    all collectors — the bookmarking collector and the five baselines —
    present this same interface. *)

exception Heap_exhausted of string
(** Raised by [alloc] when a request cannot be satisfied even after a full
    collection at the configured maximum heap size. *)

type tuning = {
  set_target_pages : int option -> unit;
      (** Cap the collector's footprint at [Some n] pages (clamped to its
          own floor), or lift the cap with [None]. The online
          controller's primary actuator. The cap {e composes} with the
          collector's own footprint adaptation (BC's §3.3.3 target) by
          [min], so the collector keeps adapting below the cap instead of
          clobbering it on the next eviction notice. *)
  set_notice_batch : int -> unit;
      (** Empty discardable pages surrendered per eviction notice
          (default 1): batching amortises notice handling under
          sustained pressure. *)
  set_relinquish_extra : int -> unit;
      (** Extra coldest pages bookmarked-and-evicted per notice beyond
          the victim itself (default 0) — the [vm_relinquish]
          aggressiveness knob. *)
  request_failsafe : unit -> unit;
      (** Schedule a fail-safe collection (§3.5) at the next allocation;
          the controller watchdog's escape hatch out of a no-progress
          window. *)
  target_pages : unit -> int option;
      (** The current footprint target, when one is set. *)
}
(** Online-control actuators a collector may expose. Collectors without
    these knobs use {!no_tuning}, under which every setter is a no-op —
    an unactuated collector behaves bit-identically to one with no
    controller attached. *)

val no_tuning : tuning

type t = {
  name : string;
  heap : Heapsim.Heap.t;
  config : Gc_config.t;
  alloc : size:int -> nrefs:int -> kind:[ `Scalar | `Array ] -> Heapsim.Obj_id.t;
      (** Allocate, placing and (first-)touching the object; may trigger
          collections. Raises {!Heap_exhausted}. *)
  collect : unit -> unit;  (** Force a full collection. *)
  stats : Gc_stats.t;
  footprint_pages : unit -> int;
      (** Pages currently mapped by the heap's spaces (high-level footprint,
          not residency). *)
  check_invariants : unit -> unit;
      (** Internal consistency checks for tests; may be expensive. *)
  tuning : tuning;
      (** Online-control actuators; {!no_tuning} for collectors without
          them. *)
}

type factory = Gc_config.t -> Heapsim.Heap.t -> t
(** Collectors are factories from a configuration and a fresh heap. *)

(** The interface every collector implementation module satisfies.
    Passing implementations around as [(module S)] lets the registry
    build entries from the modules themselves — family name, default
    doc line and factory come from one place — instead of re-stating
    them per entry and keying a second string lookup at instantiation
    time. *)
module type S = sig
  val name : string
  (** Canonical family name (["BC"], ["GenMS"], ...). *)

  val doc : string
  (** One-line description of the canonical configuration. *)

  val factory : factory
end

val charge_alloc : Heapsim.Heap.t -> bytes:int -> unit
(** Charge the mutator-side allocation cost (shared by all collectors). *)

(** Per-collector statistics: collection counts, pause intervals (for
    average/maximum pauses and the BMU curves of Figure 6), allocation
    volume and footprint high-water marks. *)

type pause_kind = Minor | Full | Compacting

type pause = { start_ns : int; duration_ns : int; kind : pause_kind }

type t

val create : unit -> t

val reset : t -> unit
(** Clear all counters and pause records (measurement methodology: warm
    up, reset, measure). *)

val record_alloc : t -> bytes:int -> unit

val time_pause : t -> Vmsim.Clock.t -> pause_kind -> (unit -> 'a) -> 'a
(** Run a collection, recording its virtual-time interval as a pause. *)

val note_heap_pages : t -> int -> unit
(** Record the current heap footprint in pages (high-water tracked). *)

val add_gc_faults : t -> int -> unit
(** Account major faults that occurred during collections. *)

val gc_major_faults : t -> int

val note_failsafe : t -> unit
(** Record a fail-safe collection (§3.5): the run completed, but only by
    falling back to a non-cooperative whole-heap collection. Feeds the
    "degraded" outcome label. *)

val failsafes : t -> int

val pauses : t -> pause list
(** In start-time order. *)

val count : t -> pause_kind -> int

val collections : t -> int

val total_gc_ns : t -> int

val allocated_bytes : t -> int

val allocated_objects : t -> int

val max_heap_pages : t -> int

val avg_pause_ms : t -> float

val max_pause_ms : t -> float

val pause_percentile_ms : t -> float -> float
(** [pause_percentile_ms t p] for [p] in [0,1]: nearest-rank percentile of
    pause durations in milliseconds; 0 with no pauses. *)

(** {1 Snapshots}

    Immutable views of the counters at one instant. Consumers derive
    results from snapshots (and interval [diff]s) instead of reading the
    live mutable record. *)

module Snapshot : sig
  type t = {
    minor : int;
    full : int;
    compacting : int;
    total_gc_ns : int;
    allocated_bytes : int;
    allocated_objects : int;
    max_heap_pages : int;
    gc_major_faults : int;
    failsafes : int;
    pauses : pause list;  (** in start-time order *)
  }

  val diff : t -> t -> t
  (** [diff earlier later]: activity between the two snapshots. Counters
      subtract; the footprint high-water and pause suffix come from the
      later snapshot. *)

  val collections : t -> int

  val avg_pause_ms : t -> float

  val max_pause_ms : t -> float

  val pause_percentile_ms : t -> float -> float
end

type snapshot = Snapshot.t

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot

val pp : Format.formatter -> t -> unit

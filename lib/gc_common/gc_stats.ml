module Vec = Repro_util.Vec

type pause_kind = Minor | Full | Compacting

type pause = { start_ns : int; duration_ns : int; kind : pause_kind }

type t = {
  pauses : pause Vec.t;
  mutable minor : int;
  mutable full : int;
  mutable compacting : int;
  mutable total_gc_ns : int;
  mutable allocated_bytes : int;
  mutable allocated_objects : int;
  mutable max_heap_pages : int;
  mutable in_pause : bool;
  mutable gc_major_faults : int;
  mutable failsafes : int;
}

let create () =
  {
    pauses = Vec.create ();
    minor = 0;
    full = 0;
    compacting = 0;
    total_gc_ns = 0;
    allocated_bytes = 0;
    allocated_objects = 0;
    max_heap_pages = 0;
    in_pause = false;
    gc_major_faults = 0;
    failsafes = 0;
  }

let reset t =
  Repro_util.Vec.clear t.pauses;
  t.minor <- 0;
  t.full <- 0;
  t.compacting <- 0;
  t.total_gc_ns <- 0;
  t.allocated_bytes <- 0;
  t.allocated_objects <- 0;
  t.max_heap_pages <- 0;
  t.gc_major_faults <- 0;
  t.failsafes <- 0

let record_alloc t ~bytes =
  t.allocated_bytes <- t.allocated_bytes + bytes;
  t.allocated_objects <- t.allocated_objects + 1

let bump_kind t = function
  | Minor -> t.minor <- t.minor + 1
  | Full -> t.full <- t.full + 1
  | Compacting -> t.compacting <- t.compacting + 1

let time_pause t clock kind f =
  if t.in_pause then
    (* nested collection (e.g. a minor GC escalating to full): the outer
       pause interval already covers this work *)
    f ()
  else begin
    t.in_pause <- true;
    let start_ns = Vmsim.Clock.now clock in
    let finish () =
      let duration_ns = Vmsim.Clock.now clock - start_ns in
      Vec.push t.pauses { start_ns; duration_ns; kind };
      bump_kind t kind;
      t.total_gc_ns <- t.total_gc_ns + duration_ns;
      t.in_pause <- false
    in
    match f () with
    | result ->
        finish ();
        result
    | exception e ->
        finish ();
        raise e
  end

let add_gc_faults t n = t.gc_major_faults <- t.gc_major_faults + n

let gc_major_faults t = t.gc_major_faults

let note_failsafe t = t.failsafes <- t.failsafes + 1

let failsafes t = t.failsafes

let note_heap_pages t pages =
  if pages > t.max_heap_pages then t.max_heap_pages <- pages

let pauses t = Vec.to_list t.pauses

let count t = function
  | Minor -> t.minor
  | Full -> t.full
  | Compacting -> t.compacting

let collections t = t.minor + t.full + t.compacting

let total_gc_ns t = t.total_gc_ns

let allocated_bytes t = t.allocated_bytes

let allocated_objects t = t.allocated_objects

let max_heap_pages t = t.max_heap_pages

let avg_pause_ms t =
  let n = Vec.length t.pauses in
  if n = 0 then 0.0
  else
    Vec.fold_left (fun acc p -> acc +. Vmsim.Clock.ns_to_ms p.duration_ns) 0.0
      t.pauses
    /. float_of_int n

let max_pause_ms t =
  Vec.fold_left
    (fun acc p -> Float.max acc (Vmsim.Clock.ns_to_ms p.duration_ns))
    0.0 t.pauses

let pause_percentile_ms t p =
  Repro_util.Summary.percentile p
    (List.map
       (fun pause -> Vmsim.Clock.ns_to_ms pause.duration_ns)
       (pauses t))

(* Immutable view of a collector's counters at one instant. [Metrics]
   consumes these rather than reaching into the mutable record, so a
   result can be derived for any interval ([diff]) — e.g. excluding the
   warm-up iterations — without the collector cooperating. *)
module Snapshot = struct
  type t = {
    minor : int;
    full : int;
    compacting : int;
    total_gc_ns : int;
    allocated_bytes : int;
    allocated_objects : int;
    max_heap_pages : int;
    gc_major_faults : int;
    failsafes : int;
    pauses : pause list;  (** in start-time order *)
  }

  (* [diff earlier later]: activity between the two. Counters subtract;
     the footprint high-water and the pause suffix come from the later
     snapshot (a high-water mark is not additive). *)
  let diff a b =
    {
      minor = b.minor - a.minor;
      full = b.full - a.full;
      compacting = b.compacting - a.compacting;
      total_gc_ns = b.total_gc_ns - a.total_gc_ns;
      allocated_bytes = b.allocated_bytes - a.allocated_bytes;
      allocated_objects = b.allocated_objects - a.allocated_objects;
      max_heap_pages = b.max_heap_pages;
      gc_major_faults = b.gc_major_faults - a.gc_major_faults;
      failsafes = b.failsafes - a.failsafes;
      pauses =
        (let skip = List.length a.pauses in
         List.filteri (fun i _ -> i >= skip) b.pauses);
    }

  let collections s = s.minor + s.full + s.compacting

  let pause_ms s = List.map (fun p -> Vmsim.Clock.ns_to_ms p.duration_ns) s.pauses

  let avg_pause_ms s =
    match pause_ms s with
    | [] -> 0.0
    | ms -> List.fold_left ( +. ) 0.0 ms /. float_of_int (List.length ms)

  let max_pause_ms s = List.fold_left Float.max 0.0 (pause_ms s)

  let pause_percentile_ms s p = Repro_util.Summary.percentile p (pause_ms s)
end

type snapshot = Snapshot.t

let snapshot t : snapshot =
  {
    Snapshot.minor = t.minor;
    full = t.full;
    compacting = t.compacting;
    total_gc_ns = t.total_gc_ns;
    allocated_bytes = t.allocated_bytes;
    allocated_objects = t.allocated_objects;
    max_heap_pages = t.max_heap_pages;
    gc_major_faults = t.gc_major_faults;
    failsafes = t.failsafes;
    pauses = pauses t;
  }

let diff = Snapshot.diff

let pp ppf t =
  Format.fprintf ppf
    "minor:%d full:%d compact:%d gc:%.1fms avg-pause:%.2fms max-pause:%.2fms \
     alloc:%dB/%d objs heap-max:%d pages"
    t.minor t.full t.compacting
    (Vmsim.Clock.ns_to_ms t.total_gc_ns)
    (avg_pause_ms t) (max_pause_ms t) t.allocated_bytes t.allocated_objects
    t.max_heap_pages

(** Post-collection heap/VM invariant verifier.

    Cross-checks the three views of the heap that must agree no matter
    what the kernel (or an injected fault plan) did: the object table,
    the page map, and the VMM's page states. Runs after collections in
    tests and under the CLI's [--verify] flag; collector-specific
    invariants (BC's ledger/counter accounting) live with each collector
    in {!Collector.t.check_invariants}. *)

val heap : Heapsim.Heap.t -> unit
(** Raises [Failure "verify: ..."] on the first violation found:

    - a live object without a placement, or missing from the page map on
      a page it spans;
    - a page-map entry for a dead object, or for an object that does not
      actually span that page;
    - two live objects overlapping in the address space;
    - a page hosting live objects that is unmapped, or owned by a
      process other than the heap's;
    - an object reachable from the roots holding a reference to a freed
      object (a dangling pointer — the failure mode of releasing
      bookmark covers too early). *)

exception Heap_exhausted of string

type t = {
  name : string;
  heap : Heapsim.Heap.t;
  config : Gc_config.t;
  alloc : size:int -> nrefs:int -> kind:[ `Scalar | `Array ] -> Heapsim.Obj_id.t;
  collect : unit -> unit;
  stats : Gc_stats.t;
  footprint_pages : unit -> int;
  check_invariants : unit -> unit;
}

type factory = Gc_config.t -> Heapsim.Heap.t -> t

module type S = sig
  val name : string

  val doc : string

  val factory : factory
end

let charge_alloc heap ~bytes =
  let costs = Heapsim.Heap.costs heap in
  Vmsim.Clock.advance (Heapsim.Heap.clock heap)
    (costs.Vmsim.Costs.alloc_ns + (bytes * costs.Vmsim.Costs.alloc_byte_ns))

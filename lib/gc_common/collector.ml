exception Heap_exhausted of string

type tuning = {
  set_target_pages : int option -> unit;
  set_notice_batch : int -> unit;
  set_relinquish_extra : int -> unit;
  request_failsafe : unit -> unit;
  target_pages : unit -> int option;
}

let no_tuning =
  {
    set_target_pages = (fun _ -> ());
    set_notice_batch = (fun _ -> ());
    set_relinquish_extra = (fun _ -> ());
    request_failsafe = (fun () -> ());
    target_pages = (fun () -> None);
  }

type t = {
  name : string;
  heap : Heapsim.Heap.t;
  config : Gc_config.t;
  alloc : size:int -> nrefs:int -> kind:[ `Scalar | `Array ] -> Heapsim.Obj_id.t;
  collect : unit -> unit;
  stats : Gc_stats.t;
  footprint_pages : unit -> int;
  check_invariants : unit -> unit;
  tuning : tuning;
}

type factory = Gc_config.t -> Heapsim.Heap.t -> t

module type S = sig
  val name : string

  val doc : string

  val factory : factory
end

let charge_alloc heap ~bytes =
  let costs = Heapsim.Heap.costs heap in
  Vmsim.Clock.advance (Heapsim.Heap.clock heap)
    (costs.Vmsim.Costs.alloc_ns + (bytes * costs.Vmsim.Costs.alloc_byte_ns))

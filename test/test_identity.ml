(* Bit-identity regression for the hot-path overhaul.

   The simulation runs in virtual time, so making the touch chain faster
   in *wall-clock* terms must not move a single simulated number. The
   golden file (test/golden/matrix.golden) was captured from the seed
   implementation — the boxed pinfo-record page table, the closure-based
   Heap.iter_pages and the O(n) Page_map.remove — before any fast path
   landed. This test re-runs the full registry matrix (every collector
   and ablation variant, a paging and a non-paging plan, each with and
   without a telemetry trace attached) and asserts that Metrics.to_json,
   the failure diagnostics and a digest of the exported Chrome trace are
   byte-identical to that capture.

   Regenerate (only when a PR intentionally changes simulated results)
   with:  BCGC_WRITE_GOLDEN=1 dune exec test/test_identity.exe
   then copy _build/default/test/golden/matrix.golden back into test/. *)

module Metrics = Harness.Metrics
module Registry = Harness.Registry
module Json = Telemetry.Json
module Plan = Harness.Run.Plan

let golden_path = "golden/matrix.golden"

let spec =
  {
    (Workload.Spec.scale_volume Workload.Benchmarks.compress 0.12)
    with
    Workload.Spec.immortal_bytes = 300_000;
    window_bytes = 120_000;
  }

let heap_bytes = 1536 * 1024

let heap_pages = Vmsim.Page.count_for_bytes heap_bytes

(* One matrix cell: collector x {ample frames, tight frames + steady
   pressure} x {traced, untraced}. The paging plan's 40% pin forces the
   reclaim, swap and notice paths; the ample plan keeps every touch on
   the resident fast path. *)
let run_cell ~collector ~paging ~traced =
  let sink = if traced then Some (Telemetry.Sink.create ()) else None in
  let plan =
    Plan.make ~collector ~spec ~heap_bytes
    |> (if paging then fun p ->
          p
          |> Plan.with_frames (heap_pages + 128)
          |> Plan.with_pressure
               (Workload.Pressure.Steady
                  { after_progress = 0.1; pin_pages = heap_pages * 6 / 10 })
        else Fun.id)
    |> match sink with None -> Fun.id | Some s -> Plan.with_trace s
  in
  let outcome = Harness.Run.exec plan in
  let body =
    match outcome with
    | Metrics.Completed m -> Json.to_string (Metrics.to_json m)
    | other -> Format.asprintf "%a" Metrics.pp_outcome other
  in
  let trace_digest =
    match sink with
    | None -> "-"
    | Some s ->
        Digest.to_hex (Digest.string (Json.to_string (Telemetry.Export.chrome_json s)))
  in
  Printf.sprintf "%s paging=%b traced=%b %s | %s | trace=%s" collector paging
    traced
    (Metrics.outcome_label outcome)
    body trace_digest

let matrix_lines () =
  List.concat_map
    (fun (info : Registry.info) ->
      List.concat_map
        (fun paging ->
          List.map
            (fun traced -> run_cell ~collector:info.Registry.name ~paging ~traced)
            [ false; true ])
        [ false; true ])
    Registry.all

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_matrix () =
  let text = String.concat "\n" (matrix_lines ()) ^ "\n" in
  match Sys.getenv_opt "BCGC_WRITE_GOLDEN" with
  | Some _ ->
      (try Unix.mkdir "golden" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let oc = open_out_bin golden_path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %d cells to %s\n"
        (List.length (String.split_on_char '\n' text) - 1)
        golden_path
  | None ->
      if not (Sys.file_exists golden_path) then
        Alcotest.fail
          "golden/matrix.golden missing — regenerate with BCGC_WRITE_GOLDEN=1";
      Alcotest.check Alcotest.string "registry matrix bit-identical to seed"
        (read_file golden_path) text

(* Serving cells get their own golden (golden/serving.golden): the batch
   matrix above must stay byte-identical to the pre-serving capture, so
   the new family's cells are appended as a separate file rather than
   new lines in matrix.golden. Same regeneration protocol. *)
let serving_golden_path = "golden/serving.golden"

let serving_spec =
  {
    (Workload.Request.scale_volume Workload.Catalog.srv_flash 0.1) with
    Workload.Request.seed = 31;
  }

let serving_heap_bytes = serving_spec.Workload.Request.base_heap_bytes

let serving_heap_pages = Vmsim.Page.count_for_bytes serving_heap_bytes

let run_serving_cell ~collector ~paging =
  let plan =
    Plan.make_workload ~collector
      ~workload:(Workload.Catalog.Serving_spec serving_spec)
      ~heap_bytes:serving_heap_bytes
    |>
    if paging then fun p ->
      p
      |> Plan.with_frames (serving_heap_pages + 128)
      |> Plan.with_pressure
           (Workload.Pressure.Steady
              { after_progress = 0.1; pin_pages = serving_heap_pages * 6 / 10 })
    else Fun.id
  in
  let outcome = Harness.Run.exec plan in
  let body =
    match outcome with
    | Metrics.Completed m -> Json.to_string (Metrics.to_json m)
    | other -> Format.asprintf "%a" Metrics.pp_outcome other
  in
  Printf.sprintf "%s paging=%b %s | %s" collector paging
    (Metrics.outcome_label outcome)
    body

let serving_lines () =
  List.concat_map
    (fun collector ->
      List.map (fun paging -> run_serving_cell ~collector ~paging) [ false; true ])
    [ "BC"; "GenMS"; "GenCopy" ]

let test_serving_matrix () =
  let text = String.concat "\n" (serving_lines ()) ^ "\n" in
  match Sys.getenv_opt "BCGC_WRITE_GOLDEN" with
  | Some _ ->
      (try Unix.mkdir "golden" 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let oc = open_out_bin serving_golden_path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %d cells to %s\n"
        (List.length (String.split_on_char '\n' text) - 1)
        serving_golden_path
  | None ->
      if not (Sys.file_exists serving_golden_path) then
        Alcotest.fail
          "golden/serving.golden missing — regenerate with BCGC_WRITE_GOLDEN=1";
      Alcotest.check Alcotest.string "serving matrix bit-identical"
        (read_file serving_golden_path)
        text

(* Sparse cells: the same batch workload, placed at an address base just
   below 2^30 so the heap straddles the boundary and every page number
   is giant. Gets its own golden (golden/sparse.golden) — matrix.golden
   must stay byte-identical to the pre-sparse capture — with the same
   regeneration protocol. *)
let sparse_golden_path = "golden/sparse.golden"

(* Just past 2^30, chosen congruent to the default base (16) mod 63 so
   [Bitset.word_peers] groups pages into the same 63-bit words: BC's
   residency clustering reasons in word granules, so a base that shifts
   word boundaries legitimately changes which pages get discarded
   together (and nothing else). With the alignment pinned, every
   simulated number must match the default-base run exactly. *)
let sparse_base = (1 lsl 30) + 15

let run_sparse_cell ~collector ~paging =
  let plan =
    Plan.make ~collector ~spec ~heap_bytes
    |> Plan.with_address_base sparse_base
    |>
    if paging then fun p ->
      p
      |> Plan.with_frames (heap_pages + 128)
      |> Plan.with_pressure
           (Workload.Pressure.Steady
              { after_progress = 0.1; pin_pages = heap_pages * 6 / 10 })
    else Fun.id
  in
  let outcome = Harness.Run.exec plan in
  let body =
    match outcome with
    | Metrics.Completed m -> Json.to_string (Metrics.to_json m)
    | other -> Format.asprintf "%a" Metrics.pp_outcome other
  in
  Printf.sprintf "%s paging=%b base=%d %s | %s" collector paging sparse_base
    (Metrics.outcome_label outcome)
    body

let sparse_lines () =
  List.concat_map
    (fun collector ->
      List.map (fun paging -> run_sparse_cell ~collector ~paging) [ false; true ])
    [ "BC"; "GenMS"; "GenCopy" ]

let test_sparse_matrix () =
  let text = String.concat "\n" (sparse_lines ()) ^ "\n" in
  match Sys.getenv_opt "BCGC_WRITE_GOLDEN" with
  | Some _ ->
      (try Unix.mkdir "golden" 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let oc = open_out_bin sparse_golden_path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %d cells to %s\n"
        (List.length (String.split_on_char '\n' text) - 1)
        sparse_golden_path
  | None ->
      if not (Sys.file_exists sparse_golden_path) then
        Alcotest.fail
          "golden/sparse.golden missing — regenerate with BCGC_WRITE_GOLDEN=1";
      Alcotest.check Alcotest.string "sparse matrix bit-identical"
        (read_file sparse_golden_path)
        text

(* All simulated metrics must be independent of the address base: only
   page *numbers* shift, never counts, faults or times. Compare the
   outcome JSON of the default-base and giant-base runs directly. *)
let test_base_independence () =
  let body line =
    match String.index_opt line '|' with
    | Some i -> String.trim (String.sub line i (String.length line - i))
    | None -> line
  in
  let strip_digest s =
    match String.rindex_opt s '|' with
    | Some i -> String.trim (String.sub s 0 i)
    | None -> s
  in
  List.iter
    (fun paging ->
      let a = run_cell ~collector:"BC" ~paging ~traced:false in
      let b = run_sparse_cell ~collector:"BC" ~paging in
      Alcotest.check Alcotest.string
        (Printf.sprintf "paging=%b" paging)
        (strip_digest (body a))
        (body b))
    [ false; true ]

(* Event-skipping determinism: with span skipping globally disabled,
   [touch_span] runs the literal per-page loop — and the whole traced
   cell, trace digest included, must be byte-identical. Timestamps in
   the trace are virtual, so this proves [Clock.skip] fast-forwards to
   exactly the instants the per-page advances would have reached. *)
let test_skip_determinism () =
  List.iter
    (fun paging ->
      let on = run_sparse_cell ~collector:"BC" ~paging in
      let on_traced = run_cell ~collector:"BC" ~paging ~traced:true in
      Vmsim.Vmm.set_span_skipping false;
      let off, off_traced =
        Fun.protect
          ~finally:(fun () -> Vmsim.Vmm.set_span_skipping true)
          (fun () ->
            ( run_sparse_cell ~collector:"BC" ~paging,
              run_cell ~collector:"BC" ~paging ~traced:true ))
      in
      Alcotest.check Alcotest.string
        (Printf.sprintf "sparse cell, paging=%b" paging)
        on off;
      Alcotest.check Alcotest.string
        (Printf.sprintf "traced cell, paging=%b" paging)
        on_traced off_traced)
    [ false; true ]

(* Skip determinism under fault injection: the event-skipping fast path
   must commute with the fault plan's RNG draws — a dropped, delayed or
   duplicated notice consumes exactly the same draws at exactly the same
   virtual instants whether the touches arrive one page at a time or as
   a span. A fingerprint mismatch here means the fast path reordered or
   coalesced a VMM event the fault layer observes. *)
let run_faulted_cell ~traced =
  let sink = if traced then Some (Telemetry.Sink.create ()) else None in
  let faults =
    {
      Faults.Fault_plan.none with
      Faults.Fault_plan.drop_eviction = 0.3;
      drop_resident = 0.1;
      delay_notice = 0.2;
      duplicate_notice = 0.1;
      swap_write_error = 0.02;
    }
  in
  let plan =
    Plan.make ~collector:"BC" ~spec ~heap_bytes
    |> Plan.with_frames (heap_pages + 128)
    |> Plan.with_pressure
         (Workload.Pressure.Steady
            { after_progress = 0.1; pin_pages = heap_pages * 6 / 10 })
    |> Plan.with_faults ~seed:11 faults
    |> match sink with None -> Fun.id | Some s -> Plan.with_trace s
  in
  let outcome = Harness.Run.exec plan in
  let body =
    match outcome with
    | Metrics.Completed m -> Json.to_string (Metrics.to_json m)
    | other -> Format.asprintf "%a" Metrics.pp_outcome other
  in
  let trace_digest =
    match sink with
    | None -> "-"
    | Some s ->
        Digest.to_hex
          (Digest.string (Json.to_string (Telemetry.Export.chrome_json s)))
  in
  Printf.sprintf "%s | trace=%s" body trace_digest

let test_skip_determinism_faulted () =
  List.iter
    (fun traced ->
      let on = run_faulted_cell ~traced in
      Vmsim.Vmm.set_span_skipping false;
      let off =
        Fun.protect
          ~finally:(fun () -> Vmsim.Vmm.set_span_skipping true)
          (fun () -> run_faulted_cell ~traced)
      in
      (* the cell must actually exercise the fault machinery *)
      Alcotest.check Alcotest.bool
        (Printf.sprintf "faults injected, traced=%b" traced)
        true
        (let contains hay needle =
           let nh = String.length hay and nn = String.length needle in
           let rec go i =
             i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
           in
           nn = 0 || go 0
         in
         contains on "\"faults\"");
      Alcotest.check Alcotest.string
        (Printf.sprintf "span = scalar under faults, traced=%b" traced)
        on off)
    [ false; true ]

(* The traced and untraced run of the same plan must also agree with
   *each other* (the golden proves agreement with the past; this proves
   the sink has no virtual-time effect in the same build). *)
let test_traced_untraced_agree () =
  List.iter
    (fun paging ->
      let strip line =
        (* drop the "traced=..." token and the trace digest *)
        match String.index_opt line '|' with
        | Some i -> String.sub line i (String.length line - i)
        | None -> line
      in
      let a = run_cell ~collector:"BC" ~paging ~traced:false in
      let b = run_cell ~collector:"BC" ~paging ~traced:true in
      let strip_digest s =
        match String.rindex_opt s '|' with Some i -> String.sub s 0 i | None -> s
      in
      Alcotest.check Alcotest.string
        (Printf.sprintf "paging=%b" paging)
        (strip_digest (strip a))
        (strip_digest (strip b)))
    [ false; true ]

(* Every execution backend must produce byte-for-byte the matrix the
   golden records: the simulation is deterministic in virtual time, so
   fork workers, pooled domains and the sequential loop may differ only
   in wall-clock. Ordering matters twice over — fork before domains
   within the test (the runtime forbids Unix.fork once a domain has
   ever been spawned), and the test itself last in the suite so no
   earlier test is denied fork. *)
let test_backend_equivalence () =
  let items =
    Array.of_list
      (List.concat_map
         (fun (info : Registry.info) ->
           List.concat_map
             (fun paging ->
               List.map
                 (fun traced -> (info.Registry.name, paging, traced))
                 [ false; true ])
             [ false; true ])
         Registry.all)
  in
  let exec (collector, paging, traced) = run_cell ~collector ~paging ~traced in
  let seq = Array.map exec items in
  let values backend =
    let cells, _ =
      Harness.Supervisor.run ~jobs:2 ~backend ~force_fork:true exec items
    in
    Array.map
      (function
        | Harness.Supervisor.Done { value; _ } -> value
        | Harness.Supervisor.Quarantined { failures; _ } ->
            Alcotest.fail (Harness.Supervisor.describe_failures failures))
      cells
  in
  let forked = values `Fork in
  let domains = values `Domains in
  Harness.Domain_pool.shutdown_global ();
  Array.iteri
    (fun i (collector, paging, traced) ->
      let label suffix =
        Printf.sprintf "%s paging=%b traced=%b (%s)" collector paging traced
          suffix
      in
      Alcotest.check Alcotest.string (label "fork = seq") seq.(i) forked.(i);
      Alcotest.check Alcotest.string (label "domains = seq") seq.(i) domains.(i))
    items;
  (* and the domains sweep reproduces the seed golden verbatim *)
  if Sys.file_exists golden_path then
    Alcotest.check Alcotest.string "domains sweep vs seed golden"
      (read_file golden_path)
      (String.concat "\n" (Array.to_list domains) ^ "\n")

let () =
  Alcotest.run "identity"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "registry matrix vs seed golden" `Quick test_matrix;
          Alcotest.test_case "serving matrix vs golden" `Quick
            test_serving_matrix;
          Alcotest.test_case "sparse matrix vs golden" `Quick
            test_sparse_matrix;
          Alcotest.test_case "base independence" `Quick test_base_independence;
          Alcotest.test_case "skip determinism" `Quick test_skip_determinism;
          Alcotest.test_case "skip determinism under faults" `Quick
            test_skip_determinism_faulted;
          Alcotest.test_case "traced = untraced" `Quick
            test_traced_untraced_agree;
          Alcotest.test_case "fork = domains = sequential" `Quick
            test_backend_equivalence;
        ] );
    ]

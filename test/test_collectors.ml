(* Cross-collector correctness: every collector must preserve the
   reachable object graph under arbitrary mutation, with and without
   memory pressure, while staying within its heap budget. *)

module Mini = Test_support.Mini
module Oracle = Test_support.Oracle
module OT = Heapsim.Object_table
module Heap = Heapsim.Heap
module Collector = Gc_common.Collector
module Gc_stats = Gc_common.Gc_stats

let check = Alcotest.check

let all_collectors = Harness.Registry.names

let pressure_capable = [ "BC"; "BC-resize"; "BC-fixed"; "GenMS"; "GenCopy"; "CopyMS"; "SemiSpace" ]

(* -- reachability preserved through a workload ---------------------- *)

let test_preserves_reachability name () =
  let m, c = Mini.collector ~heap_bytes:(1024 * 1024) name in
  let mutator = Workload.Mutator.create (Mini.spec ()) c in
  Mini.drive mutator ~between:(fun slice ->
      if slice mod 8 = 0 then Oracle.check m.Mini.heap);
  Oracle.check m.Mini.heap;
  c.Collector.check_invariants ()

(* -- collections actually happen and are recorded ------------------- *)

let test_collects_and_records name () =
  let _, c = Mini.collector ~heap_bytes:(896 * 1024) name in
  let mutator = Workload.Mutator.create (Mini.spec ~volume:1_500_000 ()) c in
  Mini.drive mutator;
  check Alcotest.bool "collections ran" true
    (Gc_stats.collections c.Collector.stats > 0);
  check Alcotest.bool "pauses recorded" true
    (Gc_stats.pauses c.Collector.stats <> []);
  check Alcotest.bool "allocation accounted" true
    (Gc_stats.allocated_bytes c.Collector.stats >= 1_500_000)

(* -- explicit full collection reclaims garbage ---------------------- *)

let test_forced_collect_reclaims name () =
  let m, c = Mini.collector name in
  let objects = Heap.objects m.Mini.heap in
  let ids = Mini.alloc_list c ~n:200 ~size:64 in
  (* drop all roots: everything is garbage *)
  Heap.set_roots m.Mini.heap (fun _ -> ());
  c.Collector.collect ();
  (* ...possibly needing a second cycle for survivors of a young space *)
  c.Collector.collect ();
  let live = List.filter (OT.is_live objects) ids in
  check Alcotest.int "garbage reclaimed" 0 (List.length live)

(* -- object contents survive moves ---------------------------------- *)

let test_contents_survive_moves name () =
  let m, c = Mini.collector name in
  let heap = m.Mini.heap in
  let objects = Heap.objects heap in
  let ids = Array.of_list (Mini.alloc_list c ~n:100 ~size:48) in
  (* give each object a second pointer: to ids.(i/2) *)
  let extra = c.Collector.alloc ~size:8 ~nrefs:0 ~kind:`Scalar in
  ignore extra;
  c.Collector.collect ();
  c.Collector.collect ();
  (* the chain must be intact: ids.(i) field 0 = ids.(i-1) *)
  Array.iteri
    (fun i id ->
      check Alcotest.bool "live" true (OT.is_live objects id);
      check Alcotest.int "size preserved" 48 (OT.size objects id);
      if i > 0 then
        check Alcotest.int
          (Printf.sprintf "link %d preserved" i)
          ids.(i - 1)
          (OT.get_ref objects id 0))
    ids

(* -- heap budget ----------------------------------------------------- *)

let test_heap_budget name () =
  let _, c = Mini.collector ~heap_bytes:(768 * 1024) name in
  let mutator = Workload.Mutator.create (Mini.spec ()) c in
  Mini.drive mutator ~between:(fun _ -> Oracle.assert_heap_bounded c)

(* -- exhaustion is an exception, not corruption ---------------------- *)

let test_exhaustion name () =
  let m, c = Mini.collector ~heap_bytes:(96 * 1024) name in
  check Alcotest.bool "raises Heap_exhausted" true
    (match
       let mutator = Workload.Mutator.create (Mini.spec ()) c in
       Mini.drive mutator
     with
    | () -> false
    | exception Collector.Heap_exhausted _ ->
        (* the heap must still be consistent *)
        Oracle.check m.Mini.heap;
        true)

(* -- determinism ------------------------------------------------------ *)

let test_deterministic name () =
  let run () =
    let m, c = Mini.collector ~heap_bytes:(1024 * 1024) name in
    let mutator = Workload.Mutator.create (Mini.spec ()) c in
    Mini.drive mutator;
    ( Vmsim.Clock.now m.Mini.clock,
      Gc_stats.collections c.Collector.stats,
      OT.live_count (Heap.objects m.Mini.heap) )
  in
  let a = run () and b = run () in
  check Alcotest.bool "identical outcome" true (a = b)

(* -- under memory pressure ------------------------------------------- *)

let test_pressure_correct name () =
  let heap_bytes = 1024 * 1024 in
  let frames = (heap_bytes / 4096) + 128 in
  let m = Mini.machine ~frames () in
  let c = Harness.Registry.create ~name ~heap_bytes m.Mini.heap in
  let signalmem =
    Workload.Signalmem.create m.Mini.vmm (Heap.address_space m.Mini.heap)
  in
  let mutator = Workload.Mutator.create (Mini.spec ()) c in
  Mini.drive mutator ~between:(fun slice ->
      if slice = 4 then Workload.Signalmem.pin_pages signalmem (frames - 120);
      if slice mod 16 = 0 then Oracle.check m.Mini.heap);
  Oracle.check m.Mini.heap;
  c.Collector.check_invariants ()

(* -- pressure released: pages come back ------------------------------ *)

let test_pressure_release name () =
  let heap_bytes = 1024 * 1024 in
  let frames = (heap_bytes / 4096) + 128 in
  let m = Mini.machine ~frames () in
  let c = Harness.Registry.create ~name ~heap_bytes m.Mini.heap in
  let signalmem =
    Workload.Signalmem.create m.Mini.vmm (Heap.address_space m.Mini.heap)
  in
  let mutator = Workload.Mutator.create (Mini.spec ~volume:900_000 ()) c in
  Mini.drive mutator ~between:(fun slice ->
      if slice = 4 then Workload.Signalmem.pin_pages signalmem (frames - 120);
      if slice = 40 then Workload.Signalmem.unpin_all signalmem);
  Oracle.check m.Mini.heap;
  c.Collector.check_invariants ()

(* -- floating garbage is bounded -------------------------------------- *)

let test_garbage_bounded name () =
  let m, c = Mini.collector ~heap_bytes:(1024 * 1024) name in
  let spec = Mini.spec () in
  let mutator = Workload.Mutator.create spec c in
  Mini.drive mutator;
  (* a couple of full collections leave only reachable objects plus
     whatever conservatism retains; bound it by twice the live estimate *)
  c.Collector.collect ();
  c.Collector.collect ();
  let live_bytes = OT.live_bytes (Heap.objects m.Mini.heap) in
  let bound = 2 * Workload.Spec.live_estimate_bytes spec in
  check Alcotest.bool
    (Printf.sprintf "%s retains %d <= %d bytes" name live_bytes bound)
    true (live_bytes <= bound)

(* -- each collector's defining policy ------------------------------- *)

let drive_small name =
  let _, c = Mini.collector ~heap_bytes:(896 * 1024) name in
  let mutator = Workload.Mutator.create (Mini.spec ~volume:1_500_000 ()) c in
  Mini.drive mutator;
  c.Collector.stats

let test_whole_heap_collectors_never_minor () =
  List.iter
    (fun name ->
      let stats = drive_small name in
      check Alcotest.int (name ^ " has no nursery collections") 0
        (Gc_stats.count stats Gc_stats.Minor))
    [ "MarkSweep"; "SemiSpace"; "CopyMS" ]

let test_generational_collectors_mostly_minor () =
  List.iter
    (fun name ->
      let stats = drive_small name in
      check Alcotest.bool (name ^ " nursery collections dominate") true
        (Gc_stats.count stats Gc_stats.Minor
        > Gc_stats.count stats Gc_stats.Full))
    [ "BC"; "GenMS"; "GenCopy" ]

let test_fixed_nursery_collects_more_often () =
  (* at a roomy heap, the Appel nursery is much larger than the fixed
     512 KB one, so the fixed variant collects more often *)
  let minors name =
    let _, c = Mini.collector ~heap_bytes:(4 * 1024 * 1024) name in
    let mutator = Workload.Mutator.create (Mini.spec ~volume:2_500_000 ()) c in
    Mini.drive mutator;
    Gc_stats.count c.Collector.stats Gc_stats.Minor
  in
  check Alcotest.bool "fixed nursery fills faster than Appel" true
    (minors "GenMS-fixed" > minors "GenMS")

let test_only_bc_compacts () =
  List.iter
    (fun name ->
      let stats = drive_small name in
      check Alcotest.int (name ^ " never compacts") 0
        (Gc_stats.count stats Gc_stats.Compacting))
    [ "GenMS"; "GenCopy"; "CopyMS"; "MarkSweep"; "SemiSpace" ]

(* -- the nine paper benchmarks, miniaturised -------------------------- *)

let test_benchmark_matrix collector spec () =
  let spec = Workload.Spec.scale_volume spec 0.01 in
  let heap_bytes = 2 * Workload.Spec.live_estimate_bytes spec in
  let m, c = Mini.collector ~heap_bytes ~frames:8192 collector in
  let mutator = Workload.Mutator.create spec c in
  Mini.drive mutator;
  Oracle.check m.Mini.heap;
  c.Collector.check_invariants ()

(* -- property: random workload shapes -------------------------------- *)

let prop_gc_preserves_reachability =
  QCheck.Test.make ~name:"random workloads never lose reachable objects"
    ~count:12
    QCheck.(
      triple (int_range 0 9) (int_range 20 80)
        (int_range 0 1000))
    (fun (collector_idx, mean_size, seed) ->
      let name = List.nth all_collectors collector_idx in
      let spec =
        {
          (Mini.spec ~volume:250_000 ~seed ()) with
          Workload.Spec.mean_size;
          long_frac = 0.05;
        }
      in
      let m, c = Mini.collector ~heap_bytes:(1024 * 1024) name in
      let mutator = Workload.Mutator.create spec c in
      Mini.drive mutator;
      Oracle.check m.Mini.heap;
      c.Collector.check_invariants ();
      true)

let per_collector name tests =
  List.map
    (fun (label, fn) -> Alcotest.test_case (name ^ ": " ^ label) `Quick (fn name))
    tests

let () =
  Alcotest.run "collectors"
    [
      ( "reachability",
        List.concat_map
          (fun name -> per_collector name [ ("preserves reachability", test_preserves_reachability) ])
          all_collectors );
      ( "bookkeeping",
        List.concat_map
          (fun name ->
            per_collector name
              [
                ("collects+records", test_collects_and_records);
                ("forced collect", test_forced_collect_reclaims);
                ("contents survive", test_contents_survive_moves);
                ("heap budget", test_heap_budget);
                ("exhaustion", test_exhaustion);
                ("deterministic", test_deterministic);
              ])
          all_collectors );
      ( "pressure",
        List.concat_map
          (fun name ->
            per_collector name
              [
                ("correct under pressure", test_pressure_correct);
                ("pressure release", test_pressure_release);
              ])
          pressure_capable );
      ( "garbage",
        List.concat_map
          (fun name ->
            per_collector name [ ("bounded retention", test_garbage_bounded) ])
          all_collectors );
      ( "policies",
        [
          Alcotest.test_case "whole-heap only" `Quick
            test_whole_heap_collectors_never_minor;
          Alcotest.test_case "generational minors" `Quick
            test_generational_collectors_mostly_minor;
          Alcotest.test_case "fixed nursery frequency" `Quick
            test_fixed_nursery_collects_more_often;
          Alcotest.test_case "only BC compacts" `Quick test_only_bc_compacts;
        ] );
      ( "benchmarks",
        List.concat_map
          (fun collector ->
            List.map
              (fun spec ->
                Alcotest.test_case
                  (collector ^ " on " ^ spec.Workload.Spec.name)
                  `Quick
                  (test_benchmark_matrix collector spec))
              Workload.Catalog.batch_specs)
          [ "BC"; "GenMS" ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_gc_preserves_reachability ] );
    ]

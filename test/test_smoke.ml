let mini_spec =
  {
    (Workload.Benchmarks.pseudojbb) with
    Workload.Spec.total_alloc_bytes = 2_000_000;
    immortal_bytes = 200_000;
    window_bytes = 100_000;
  }

let smoke name () =
  match
    Harness.Run.exec
      (Harness.Run.Plan.make ~collector:name ~spec:mini_spec
         ~heap_bytes:1_500_000)
  with
  | Harness.Metrics.Completed m ->
      Format.printf "%s: %a@." name Harness.Metrics.pp m
  | Harness.Metrics.Exhausted msg -> Alcotest.failf "%s exhausted: %s" name msg
  | Harness.Metrics.Thrashed msg -> Alcotest.failf "%s thrashed: %s" name msg
  | Harness.Metrics.Failed f -> Alcotest.failf "%s failed: %s" name f.Harness.Metrics.reason

let pressure_smoke name () =
  let heap_bytes = 1_500_000 in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 256 in
  (* leave ~150 pages: above the ~90-page live set but far below the
     heap, the regime the paper evaluates *)
  let pressure =
    Workload.Pressure.Steady { after_progress = 0.2; pin_pages = frames - 150 }
  in
  match
    Harness.Run.exec
      (Harness.Run.Plan.make ~collector:name ~spec:mini_spec ~heap_bytes
      |> Harness.Run.Plan.with_frames frames
      |> Harness.Run.Plan.with_pressure pressure)
  with
  | Harness.Metrics.Completed m ->
      Format.printf "pressure %s: %a@." name Harness.Metrics.pp m;
      if name = "BC" then begin
        Alcotest.(check bool) "BC evicts under pressure" true (m.Harness.Metrics.relinquished > 0 || m.Harness.Metrics.discards > 0);
        Alcotest.(check bool) "BC collections virtually fault-free" true
          (m.Harness.Metrics.gc_major_faults <= 5)
      end;
      if name = "GenMS" then
        Alcotest.(check bool) "GenMS pages during GC" true (m.Harness.Metrics.gc_major_faults > 0)
  | Harness.Metrics.Exhausted msg -> Alcotest.failf "%s exhausted: %s" name msg
  | Harness.Metrics.Thrashed msg -> Alcotest.failf "%s thrashed: %s" name msg
  | Harness.Metrics.Failed f -> Alcotest.failf "%s failed: %s" name f.Harness.Metrics.reason

(* Beyond the design envelope: available memory below the live set. All
   collectors thrash; the simulation must still terminate. *)
let extreme_smoke name () =
  let heap_bytes = 1_500_000 in
  let heap_pages = Vmsim.Page.count_for_bytes heap_bytes in
  let frames = heap_pages + 256 in
  let pressure =
    Workload.Pressure.Steady { after_progress = 0.2; pin_pages = frames - 70 }
  in
  let spec = Workload.Spec.scale_volume mini_spec 0.5 in
  match
    Harness.Run.exec
      (Harness.Run.Plan.make ~collector:name ~spec ~heap_bytes
      |> Harness.Run.Plan.with_frames frames
      |> Harness.Run.Plan.with_pressure pressure)
  with
  | Harness.Metrics.Completed m ->
      Format.printf "extreme %s: %a@." name Harness.Metrics.pp m
  | Harness.Metrics.Exhausted msg -> Alcotest.failf "%s exhausted: %s" name msg
  | Harness.Metrics.Thrashed msg -> Alcotest.failf "%s thrashed: %s" name msg
  | Harness.Metrics.Failed f -> Alcotest.failf "%s failed: %s" name f.Harness.Metrics.reason

let () =
  Alcotest.run "smoke"
    [
      ( "collectors",
        List.map
          (fun name -> Alcotest.test_case name `Quick (smoke name))
          Harness.Registry.names );
      ( "pressure",
        List.map
          (fun name -> Alcotest.test_case name `Quick (pressure_smoke name))
          [ "BC"; "BC-resize"; "GenMS"; "GenCopy"; "CopyMS"; "SemiSpace" ] );
      ( "extreme",
        List.map
          (fun name -> Alcotest.test_case name `Slow (extreme_smoke name))
          [ "BC"; "BC-resize"; "GenMS" ] );
    ]

(* Supervised campaigns: plan digests, the work-queue supervisor's
   failure attribution (crash / exit / raise / hang), retry and chaos
   recovery, crash-safe journals (torn tails, mid-file corruption,
   digest mismatches) and byte-identical resumed reports — including a
   resume after the campaign parent itself is SIGKILLed. *)

module Campaign = Harness.Campaign
module Supervisor = Harness.Supervisor
module Parallel = Harness.Parallel
module Metrics = Harness.Metrics
module Plan = Harness.Run.Plan
module Json = Telemetry.Json

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fresh_path () =
  let p = Filename.temp_file "bcgc-test-campaign" ".journal" in
  Sys.remove p;
  p

(* ----------------------------------------------------------------- *)
(* Plan digests                                                       *)

let spec = Workload.Benchmarks.jess
let mk () = Plan.make ~collector:"BC" ~spec ~heap_bytes:2_000_000

let test_digest_stable () =
  check Alcotest.string "same plan, same digest" (Plan.digest (mk ()))
    (Plan.digest (mk ()));
  check Alcotest.bool "canonical text is non-trivial" true
    (String.length (Plan.canonical (mk ())) > 40)

let test_digest_sensitive () =
  let base = Plan.digest (mk ()) in
  let differs what plan =
    check Alcotest.bool (what ^ " changes the digest") true
      (Plan.digest plan <> base)
  in
  differs "heap size"
    (Plan.make ~collector:"BC" ~spec ~heap_bytes:2_000_001);
  differs "collector" (Plan.make ~collector:"GenMS" ~spec ~heap_bytes:2_000_000);
  differs "frames" (mk () |> Plan.with_frames 900);
  differs "iterations" (mk () |> Plan.with_iterations 2);
  differs "pressure"
    (mk ()
    |> Plan.with_pressure
         (Workload.Pressure.Steady { after_progress = 0.1; pin_pages = 100 }));
  differs "event cap" (mk () |> Plan.with_event_cap 1_000_000);
  (match Faults.Fault_plan.spec_of_string "drop-evict=0.3" with
  | Ok fp -> differs "fault plan" (mk () |> Plan.with_faults fp)
  | Error e -> Alcotest.fail e)

let test_digest_ignores_trace () =
  check Alcotest.string "a trace sink does not change the cell identity"
    (Plan.digest (mk ()))
    (Plan.digest (mk () |> Plan.with_trace (Telemetry.Sink.create ())))

(* ----------------------------------------------------------------- *)
(* Supervisor failure attribution                                     *)

let quarantined_reason = function
  | Supervisor.Quarantined { failures; _ } ->
      Supervisor.describe_failures failures
  | Supervisor.Done _ -> Alcotest.fail "expected a quarantined cell"

let test_crash_attribution () =
  (* the worker running item 2 SIGKILLs itself mid-cell; every other
     cell must come back intact, and the loss must name the victim *)
  let f x =
    if x = 2 then Unix.kill (Unix.getpid ()) Sys.sigkill;
    x * 10
  in
  let cells, stats = Supervisor.run ~jobs:2 f [| 0; 1; 2; 3 |] in
  Array.iteri
    (fun i c ->
      match c with
      | Supervisor.Done { value; _ } ->
          check Alcotest.int "streamed results kept" (i * 10) value
      | Supervisor.Quarantined _ ->
          check Alcotest.int "only the in-flight cell is charged" 2 i;
          check Alcotest.bool "reason names the signal" true
            (contains (quarantined_reason c) "SIGKILL"))
    cells;
  check Alcotest.bool "a worker loss was recorded" true
    (stats.Supervisor.workers_lost >= 1)

let test_exit_code_attribution () =
  let f x = if x = 1 then Unix._exit 9 else x in
  let cells, _ = Supervisor.run ~jobs:2 f [| 0; 1; 2 |] in
  check Alcotest.bool "exit status lands in the failure reason" true
    (contains (quarantined_reason cells.(1)) "exited with code 9")

let test_raise_carries_backtrace () =
  let f x = if x = 1 then failwith "boom-in-worker" else x in
  let cells, _ = Supervisor.run ~jobs:2 f [| 0; 1 |] in
  let reason = quarantined_reason cells.(1) in
  check Alcotest.bool "raised exception message survives the pipe" true
    (contains reason "boom-in-worker");
  check Alcotest.bool "constructor name survives too" true
    (contains reason "Failure")

(* Satellite: a worker stuck in SIGSTOP must not stall the parallel
   driver past the configured deadline. *)
let test_sigstop_bounded_by_deadline () =
  let f x =
    if x = 1 then Unix.kill (Unix.getpid ()) Sys.sigstop;
    x + 100
  in
  let t0 = Unix.gettimeofday () in
  let results = Parallel.map ~jobs:2 ~deadline_s:1.0 f [ 0; 1; 2 ] in
  let elapsed = Unix.gettimeofday () -. t0 in
  check Alcotest.bool "returned well before a hang would" true (elapsed < 20.);
  (match results with
  | [ Ok 100; Error e; Ok 102 ] ->
      check Alcotest.bool "stalled cell reports the deadline" true
        (contains e "deadline")
  | _ -> Alcotest.fail "expected exactly the stopped cell to fail")

let test_retry_recovers () =
  let marker = Filename.temp_file "bcgc-test-retry" ".marker" in
  Sys.remove marker;
  let f x =
    if x = 1 && not (Sys.file_exists marker) then begin
      let oc = open_out marker in
      close_out oc;
      Unix._exit 7
    end;
    x * 10
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove marker with Sys_error _ -> ())
    (fun () ->
      let cells, stats =
        Supervisor.run ~jobs:2 ~attempts:2 ~backoff_s:0.01 f [| 0; 1; 2 |]
      in
      (match cells.(1) with
      | Supervisor.Done { value; attempts; _ } ->
          check Alcotest.int "second attempt produced the value" 10 value;
          check Alcotest.int "and was charged as attempt 2" 2 attempts
      | Supervisor.Quarantined _ ->
          Alcotest.fail "cell should recover on retry");
      check Alcotest.bool "retry was counted" true
        (stats.Supervisor.retried >= 1))

(* ----------------------------------------------------------------- *)
(* Campaigns                                                          *)

let tiny ?(volume = 0.01) ?(collectors = [ "BC"; "GenMS" ])
    ?(mults = [ 2.0; 3.0 ]) ?event_cap ~journal () =
  {
    Campaign.name = "tiny";
    collectors;
    workloads = [ "_202_jess" ];
    volume;
    heap_multipliers = mults;
    fault_plans = [ "none" ];
    pressures = [ "none" ];
    controllers = [ "off" ];
    fault_seed = Harness.Run.default_fault_seed;
    iterations = 1;
    frames_fraction = None;
    deadline_s = Some 60.;
    event_cap;
    retry = { Campaign.attempts = 2; backoff_s = 0.05 };
    journal;
  }

let run_ok ?jobs ?chaos ?stop_after ?resume t =
  match Campaign.run ?jobs ?chaos ?stop_after ?resume t with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let complete_report = function
  | Campaign.Complete { report_path; _ } -> read_file report_path
  | Campaign.Interrupted _ -> Alcotest.fail "campaign did not complete"

(* One uninterrupted reference run, reused by the identity tests. *)
let reference_report =
  lazy
    (let j = fresh_path () in
     complete_report (run_ok ~jobs:2 (tiny ~journal:j ())))

let test_run_and_report () =
  let j = fresh_path () in
  let t = tiny ~journal:j () in
  (match run_ok ~jobs:2 t with
  | Campaign.Complete { report_path; summary } ->
      check Alcotest.int "all four cells ran" 4 summary.Campaign.total;
      check Alcotest.int "all completed ok" 4 summary.Campaign.ok;
      let report = Json.of_string_opt (read_file report_path) in
      (match report with
      | None -> Alcotest.fail "report is not valid JSON"
      | Some r ->
          check Alcotest.bool "report carries the campaign digest" true
            (Option.bind (Json.member "campaign_digest" r) Json.str_opt
            = Some (Campaign.campaign_digest t));
          let cells =
            Option.bind (Json.member "cells" r) Json.to_list_opt
          in
          check Alcotest.int "one report record per cell" 4
            (List.length (Option.value cells ~default:[])))
  | Campaign.Interrupted _ -> Alcotest.fail "unexpected interruption");
  match
    Campaign.Journal.load ~path:j
      ~expect_digest:(Campaign.campaign_digest t)
  with
  | Ok (entries, dropped) ->
      check Alcotest.int "journal holds every cell" 4 (List.length entries);
      check Alcotest.int "nothing was torn" 0 dropped
  | Error e -> Alcotest.fail e

let test_refuses_existing_journal () =
  let j = fresh_path () in
  let t = tiny ~journal:j () in
  ignore (run_ok ~jobs:2 t);
  match Campaign.run ~jobs:2 t with
  | Error e ->
      check Alcotest.bool "points at --resume" true (contains e "resume")
  | Ok _ -> Alcotest.fail "must refuse to overwrite a journal"

let test_resume_byte_identical () =
  let j = fresh_path () in
  let t = tiny ~journal:j () in
  (match run_ok ~jobs:2 ~stop_after:1 t with
  | Campaign.Interrupted { completed; total } ->
      check Alcotest.int "stopped after one cell" 1 completed;
      check Alcotest.int "out of four" 4 total
  | Campaign.Complete _ -> Alcotest.fail "stop_after must interrupt");
  let report = complete_report (run_ok ~jobs:2 ~resume:true t) in
  check Alcotest.string "resumed report is byte-identical"
    (Lazy.force reference_report) report

let test_torn_tail_tolerated () =
  let j = fresh_path () in
  let t = tiny ~journal:j () in
  ignore (run_ok ~jobs:1 ~stop_after:1 t);
  (* simulate a crash mid-append: garbage with no trailing newline *)
  let oc = open_out_gen [ Open_append ] 0o644 j in
  output_string oc "{\"cell\":\"zzz";
  close_out oc;
  (match
     Campaign.Journal.load ~path:j
       ~expect_digest:(Campaign.campaign_digest t)
   with
  | Ok (entries, dropped) ->
      check Alcotest.int "good records kept" 1 (List.length entries);
      check Alcotest.int "exactly the torn tail dropped" 1 dropped
  | Error e -> Alcotest.fail e);
  let report = complete_report (run_ok ~jobs:2 ~resume:true t) in
  check Alcotest.string "report unaffected by the torn record"
    (Lazy.force reference_report) report;
  (* and the resumed journal must be clean again end to end *)
  match
    Campaign.Journal.load ~path:j
      ~expect_digest:(Campaign.campaign_digest t)
  with
  | Ok (entries, dropped) ->
      check Alcotest.int "torn bytes were excised before appending" 0 dropped;
      check Alcotest.int "full journal" 4 (List.length entries)
  | Error e -> Alcotest.fail e

let test_midfile_corruption_fatal () =
  let j = fresh_path () in
  let t = tiny ~journal:j () in
  ignore (run_ok ~jobs:2 t);
  (match String.split_on_char '\n' (read_file j) with
  | header :: rest ->
      let oc = open_out j in
      output_string oc (header ^ "\ngarbage not json\n");
      output_string oc (String.concat "\n" rest);
      close_out oc
  | [] -> Alcotest.fail "empty journal");
  match
    Campaign.Journal.load ~path:j
      ~expect_digest:(Campaign.campaign_digest t)
  with
  | Error e ->
      check Alcotest.bool "mid-file corruption is fatal" true
        (contains e "corrupt")
  | Ok _ -> Alcotest.fail "corruption anywhere but the tail must be fatal"

let test_digest_mismatch_refused () =
  let j = fresh_path () in
  ignore (run_ok ~jobs:2 ~stop_after:1 (tiny ~journal:j ()));
  let other = tiny ~mults:[ 4.0; 5.0 ] ~journal:j () in
  match Campaign.run ~jobs:2 ~resume:true other with
  | Error e ->
      check Alcotest.bool "names the spec mismatch" true
        (contains e "different campaign")
  | Ok _ -> Alcotest.fail "must refuse a journal from another spec"

let test_chaos_recovery_identical () =
  let j = fresh_path () in
  let chaos =
    { Supervisor.chaos_seed = 5; kill_prob = 1.0; max_kills = 3 }
  in
  match run_ok ~jobs:3 ~chaos (tiny ~journal:j ()) with
  | Campaign.Complete { report_path; summary } ->
      check Alcotest.int "chaos killed the budgeted workers" 3
        summary.Campaign.chaos_kills;
      check Alcotest.string "chaotic report identical to calm one"
        (Lazy.force reference_report)
        (read_file report_path)
  | Campaign.Interrupted _ -> Alcotest.fail "chaos must not abort"

let test_event_cap_quarantines_cell () =
  (* direct: the machine raises once the virtual-event budget is blown *)
  (match
     Harness.Run.exec
       (Plan.make ~collector:"BC" ~spec ~heap_bytes:2_000_000
       |> Plan.with_event_cap 10)
   with
  | Metrics.Failed f ->
      check Alcotest.bool "failure names the budget" true
        (contains f.Metrics.reason "virtual-event budget")
  | _ -> Alcotest.fail "a 10-event cap must fail the run");
  (* and through a campaign: the cell is recorded failed, not fatal *)
  let j = fresh_path () in
  let t =
    tiny ~collectors:[ "BC" ] ~mults:[ 2.0 ] ~event_cap:10 ~journal:j ()
  in
  match run_ok ~jobs:1 t with
  | Campaign.Complete { summary; _ } ->
      check Alcotest.int "cell failed" 1 summary.Campaign.failed;
      check Alcotest.int "campaign still completed" 1 summary.Campaign.total
  | Campaign.Interrupted _ -> Alcotest.fail "expected completion"

(* Satellite: SIGKILL the campaign parent itself mid-run, then resume —
   the journal must carry everything finished and the consolidated
   report must come out byte-identical. *)
let test_parent_sigkill_then_resume () =
  let j = fresh_path () in
  (* a little more work per cell so the kill lands mid-campaign *)
  let t = tiny ~volume:0.05 ~journal:j () in
  let reference =
    let j0 = fresh_path () in
    complete_report (run_ok ~jobs:2 (tiny ~volume:0.05 ~journal:j0 ()))
  in
  (match Unix.fork () with
  | 0 ->
      (try ignore (Campaign.run ~jobs:1 t) with _ -> ());
      Unix._exit 0
  | pid ->
      let deadline = Unix.gettimeofday () +. 30. in
      let journaled_records () =
        match read_file j with
        | content ->
            String.fold_left
              (fun n c -> if c = '\n' then n + 1 else n)
              0 content
        | exception Sys_error _ -> 0
      in
      let rec wait () =
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "journal never accumulated a record"
        end
        else if journaled_records () >= 2 then ()
        else begin
          ignore (Unix.select [] [] [] 0.005);
          wait ()
        end
      in
      wait ();
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid));
  let report = complete_report (run_ok ~jobs:2 ~resume:true t) in
  check Alcotest.string "post-SIGKILL resume is byte-identical" reference
    report

(* ----------------------------------------------------------------- *)
(* Spec parsing                                                       *)

let example_spec_path () =
  (* dune runtest runs in test/, dune exec in the project root *)
  List.find Sys.file_exists
    [ "../examples/campaign_smoke.json"; "examples/campaign_smoke.json" ]

let test_example_spec_parses () =
  match Campaign.of_file (example_spec_path ()) with
  | Ok t ->
      check Alcotest.int "smoke spec enumerates 8 cells" 8
        (List.length (Campaign.cells t));
      check Alcotest.int "retry policy read" 2 t.Campaign.retry.Campaign.attempts
  | Error e -> Alcotest.fail e

let spec_json overrides =
  let base =
    [
      ("schema", Json.Str Campaign.schema_version);
      ("name", Json.Str "t");
      ("collectors", Json.List [ Json.Str "BC" ]);
      ("workloads", Json.List [ Json.Str "_202_jess" ]);
      ("heap_multipliers", Json.List [ Json.Num 2.0 ]);
      ("journal", Json.Str "/tmp/t.journal");
    ]
  in
  Json.Obj
    (List.map
       (fun (k, v) ->
         match List.assoc_opt k overrides with
         | Some v' -> (k, v')
         | None -> (k, v))
       base
    @ List.filter (fun (k, _) -> not (List.mem_assoc k base)) overrides)

let rejects what overrides needle =
  match Campaign.of_json (spec_json overrides) with
  | Error e ->
      check Alcotest.bool (what ^ ": error mentions the cause") true
        (contains e needle)
  | Ok _ -> Alcotest.fail (what ^ ": spec should have been rejected")

let test_spec_validation () =
  (match Campaign.of_json (spec_json []) with
  | Ok t ->
      check Alcotest.bool "defaults fill in" true
        (t.Campaign.fault_plans = [ "none" ] && t.Campaign.iterations = 1)
  | Error e -> Alcotest.fail e);
  rejects "unknown collector"
    [ ("collectors", Json.List [ Json.Str "NoSuchGC" ]) ]
    "unknown collector";
  rejects "unknown workload"
    [ ("workloads", Json.List [ Json.Str "nope" ]) ]
    "unknown workload";
  rejects "duplicate entry"
    [ ("collectors", Json.List [ Json.Str "BC"; Json.Str "BC" ]) ]
    "duplicate";
  rejects "unknown field" [ ("typo_field", Json.Num 1.0) ] "unknown field";
  rejects "bad pressure"
    [ ("pressures", Json.List [ Json.Str "steady:banana" ]) ]
    "bad pressure";
  rejects "bad fault plan"
    [ ("fault_plans", Json.List [ Json.Str "no-such-fault=1" ]) ]
    "fault";
  rejects "wrong schema" [ ("schema", Json.Str "v999") ] "schema"

let test_pressure_grammar () =
  (match Campaign.pressure_of_string "steady:300" with
  | Ok (Workload.Pressure.Steady { after_progress; pin_pages }) ->
      check Alcotest.int "pages" 300 pin_pages;
      check (Alcotest.float 1e-9) "default engage point" 0.1 after_progress
  | _ -> Alcotest.fail "steady:300 should parse");
  (match Campaign.pressure_of_string "steady:300@0.5" with
  | Ok (Workload.Pressure.Steady { after_progress; _ }) ->
      check (Alcotest.float 1e-9) "explicit engage point" 0.5 after_progress
  | _ -> Alcotest.fail "steady:300@0.5 should parse");
  (match Campaign.pressure_of_string "ramp:100:50:10:800" with
  | Ok (Workload.Pressure.Ramp { initial_pages; step_ns; _ }) ->
      check Alcotest.int "initial" 100 initial_pages;
      check Alcotest.int "step_ns from ms" 10_000_000 step_ns
  | _ -> Alcotest.fail "ramp should parse");
  check Alcotest.bool "garbage rejected" true
    (Result.is_error (Campaign.pressure_of_string "steady:banana"));
  check Alcotest.bool "unknown kind rejected" true
    (Result.is_error (Campaign.pressure_of_string "sawtooth:1:2"))

(* ----------------------------------------------------------------- *)
(* Serving workloads in the campaign grammar                          *)

let test_serving_spec_cells () =
  match
    Campaign.of_json
      (spec_json
         [
           ( "workloads",
             Json.List [ Json.Str "srv_fixed"; Json.Str "srv_flash@fixed:800" ]
           );
         ])
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let cells = Campaign.cells t in
      check Alcotest.int "1 collector x 2 workloads x 1 mult" 2
        (List.length cells);
      List.iter
        (fun c ->
          check Alcotest.bool "serving cell canonical is marked" true
            (contains (Plan.canonical c.Campaign.plan) "serving:"))
        cells;
      check Alcotest.bool "@fixed:800 override lands in the canonical" true
        (List.exists
           (fun c -> contains (Plan.canonical c.Campaign.plan) "fixed:800")
           cells)

let test_serving_spec_rejections () =
  rejects "bad shape argument"
    [ ("workloads", Json.List [ Json.Str "srv_flash@fixed:banana" ]) ]
    "bad number";
  rejects "shape override on a batch workload"
    [ ("workloads", Json.List [ Json.Str "_202_jess@fixed:800" ]) ]
    "no @SHAPE";
  rejects "unknown name keeps naming the catalog"
    [ ("workloads", Json.List [ Json.Str "srv_nope@fixed:800" ]) ]
    "unknown workload"

let test_serving_digests () =
  let digest_of w =
    match
      Campaign.of_json (spec_json [ ("workloads", Json.List [ Json.Str w ]) ])
    with
    | Error e -> Alcotest.fail e
    | Ok t -> (
        match Campaign.cells t with
        | [ c ] -> c.Campaign.digest
        | _ -> Alcotest.fail "expected exactly one cell")
  in
  check Alcotest.string "serving digests are stable across enumerations"
    (digest_of "srv_flash") (digest_of "srv_flash");
  check Alcotest.bool "a shape override changes the cell digest" true
    (digest_of "srv_flash" <> digest_of "srv_flash@fixed:800");
  check Alcotest.bool "different shapes, different digests" true
    (digest_of "srv_flash@fixed:800" <> digest_of "srv_flash@fixed:900");
  (* batch canonicals are untouched by the serving extension *)
  check Alcotest.bool "batch canonical carries no serving marker" true
    (not (contains (Plan.canonical (mk ())) "serving:"))

(* ----------------------------------------------------------------- *)
(* Controllers in the campaign grammar                                *)

let test_controller_spec_cells () =
  (match Campaign.of_json (spec_json []) with
  | Ok t ->
      check
        Alcotest.(list string)
        "controllers default to off"
        [ "off" ] t.Campaign.controllers
  | Error e -> Alcotest.fail e);
  match
    Campaign.of_json
      (spec_json
         [ ("controllers", Json.List [ Json.Str "off"; Json.Str "threshold" ]) ])
  with
  | Error e -> Alcotest.fail e
  | Ok t -> (
      match Campaign.cells t with
      | [ off_cell; ctl_cell ] ->
          check Alcotest.bool "off cell keeps the historical canonical" true
            (not (contains (Plan.canonical off_cell.Campaign.plan) "controller="));
          check Alcotest.bool "off cell keeps the historical label" true
            (not (contains off_cell.Campaign.label "ctl="));
          check Alcotest.bool "controller lands in the canonical" true
            (contains
               (Plan.canonical ctl_cell.Campaign.plan)
               "controller=threshold");
          check Alcotest.bool "controller lands in the label" true
            (contains ctl_cell.Campaign.label "ctl=threshold");
          check Alcotest.bool "controller changes the cell digest" true
            (off_cell.Campaign.digest <> ctl_cell.Campaign.digest)
      | cs ->
          Alcotest.failf "expected 2 cells (off + threshold), got %d"
            (List.length cs))

let test_controller_spec_rejections () =
  rejects "unknown controller"
    [ ("controllers", Json.List [ Json.Str "nope" ]) ]
    "unknown controller";
  rejects "duplicate controller"
    [ ("controllers", Json.List [ Json.Str "off"; Json.Str "off" ]) ]
    "duplicate";
  rejects "empty controller list"
    [ ("controllers", Json.List []) ]
    "must not be empty"

let () =
  Alcotest.run "campaign"
    [
      ( "digest",
        [
          Alcotest.test_case "stable" `Quick test_digest_stable;
          Alcotest.test_case "sensitive" `Quick test_digest_sensitive;
          Alcotest.test_case "trace-invariant" `Quick
            test_digest_ignores_trace;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "crash attribution" `Quick
            test_crash_attribution;
          Alcotest.test_case "exit-code attribution" `Quick
            test_exit_code_attribution;
          Alcotest.test_case "raise carries backtrace" `Quick
            test_raise_carries_backtrace;
          Alcotest.test_case "sigstop bounded by deadline" `Quick
            test_sigstop_bounded_by_deadline;
          Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "run and report" `Quick test_run_and_report;
          Alcotest.test_case "refuses existing journal" `Quick
            test_refuses_existing_journal;
          Alcotest.test_case "resume byte-identical" `Quick
            test_resume_byte_identical;
          Alcotest.test_case "torn tail tolerated" `Quick
            test_torn_tail_tolerated;
          Alcotest.test_case "mid-file corruption fatal" `Quick
            test_midfile_corruption_fatal;
          Alcotest.test_case "digest mismatch refused" `Quick
            test_digest_mismatch_refused;
          Alcotest.test_case "chaos recovery identical" `Quick
            test_chaos_recovery_identical;
          Alcotest.test_case "event cap quarantines cell" `Quick
            test_event_cap_quarantines_cell;
          Alcotest.test_case "parent sigkill then resume" `Quick
            test_parent_sigkill_then_resume;
        ] );
      ( "spec",
        [
          Alcotest.test_case "example parses" `Quick test_example_spec_parses;
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "pressure grammar" `Quick test_pressure_grammar;
          Alcotest.test_case "serving cells build" `Quick
            test_serving_spec_cells;
          Alcotest.test_case "serving rejections" `Quick
            test_serving_spec_rejections;
          Alcotest.test_case "serving digests" `Quick test_serving_digests;
          Alcotest.test_case "controller cells build" `Quick
            test_controller_spec_cells;
          Alcotest.test_case "controller rejections" `Quick
            test_controller_spec_rejections;
        ] );
    ]

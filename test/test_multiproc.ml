(* Multi-process machines: scheduling policies, per-process accounting,
   determinism of the shared machine, and the fork-parallel driver's
   byte-equivalence to a sequential sweep. *)

module Metrics = Harness.Metrics
module Plan = Harness.Run.Plan
module Machine = Harness.Machine

let check = Alcotest.check

let mini_spec =
  {
    (Workload.Benchmarks.pseudojbb) with
    Workload.Spec.total_alloc_bytes = 1_200_000;
    immortal_bytes = 150_000;
    window_bytes = 80_000;
  }

let heap_bytes = 1_200_000

let heap_pages = Vmsim.Page.count_for_bytes heap_bytes

(* a §5-style contended machine: two heaps, ~55% of their combined pages *)
let contended_frames = 2 * heap_pages * 55 / 100

let pair_plan ?frames ?(coworker = "GenMS") collector =
  Plan.make ~collector ~spec:mini_spec ~heap_bytes
  |> Plan.with_frames (Option.value frames ~default:contended_frames)
  |> Plan.with_process ~collector:coworker
       ~spec:
         { mini_spec with Workload.Spec.seed = mini_spec.Workload.Spec.seed + 17 }

let completed = function
  | Metrics.Completed m -> m
  | Metrics.Exhausted msg | Metrics.Thrashed msg -> Alcotest.fail msg
  | Metrics.Failed f -> Alcotest.fail f.Metrics.reason

(* ----------------------------------------------------------------- *)
(* Determinism                                                        *)

let test_pair_deterministic () =
  let once () = List.map completed (Harness.Run.exec_all (pair_plan "BC")) in
  let a = once () and b = once () in
  check Alcotest.bool "two-process machine is bit-identical across runs" true
    (a = b)

let test_policies_deterministic () =
  let once policy =
    List.map completed
      (Harness.Run.exec_all (pair_plan "BC" |> Plan.with_policy policy))
  in
  check Alcotest.bool "proportional repeatable" true
    (once Machine.Proportional = once Machine.Proportional);
  check Alcotest.bool "priority repeatable" true
    (once Machine.Priority = once Machine.Priority)

(* ----------------------------------------------------------------- *)
(* Parallel driver: forked fan-out must be byte-identical             *)

let sweep_plans () =
  List.map
    (fun collector -> Plan.make ~collector ~spec:mini_spec ~heap_bytes)
    [ "BC"; "GenMS"; "GenCopy"; "CopyMS"; "SemiSpace"; "MarkSweep" ]

let test_parallel_matches_sequential () =
  let seq = Harness.Parallel.outcomes ~jobs:1 (sweep_plans ()) in
  let par = Harness.Parallel.outcomes ~jobs:3 (sweep_plans ()) in
  check Alcotest.int "same number of cells" (List.length seq) (List.length par);
  check Alcotest.bool "forked results identical to sequential" true (seq = par)

let test_parallel_isolates_failures () =
  let boom : int list = [ 0; 1; 2; 3 ] in
  let results =
    Harness.Parallel.map ~jobs:2
      (fun i -> if i = 2 then failwith "cell exploded" else i * 10)
      boom
  in
  check Alcotest.bool "good cells survive a bad one" true
    (List.map Result.to_option results = [ Some 0; Some 10; None; Some 30 ])

(* ----------------------------------------------------------------- *)
(* Contention (§5): BC stays flat, the baseline page-storms           *)

let test_contention_bc_flat () =
  match Harness.Run.exec_all (pair_plan "BC") with
  | [ Metrics.Completed bc; Metrics.Completed genms ] ->
      check Alcotest.bool "BC's collections stay virtually fault-free" true
        (bc.Metrics.gc_major_faults <= 5);
      check Alcotest.bool "the competing GenMS instance pages" true
        (genms.Metrics.major_faults > 0);
      check Alcotest.bool "BC keeps p95 pause below the paging baseline" true
        (bc.Metrics.p95_pause_ms < genms.Metrics.p95_pause_ms)
  | _ -> Alcotest.fail "contended pair did not complete"

let test_solo_vs_contended () =
  let solo =
    completed
      (Harness.Run.exec
         (Plan.make ~collector:"GenMS" ~spec:mini_spec ~heap_bytes
         |> Plan.with_frames contended_frames))
  in
  match Harness.Run.exec_all (pair_plan "GenMS" ~coworker:"GenMS") with
  | [ Metrics.Completed contended; Metrics.Completed _ ] ->
      (* the same frame count is comfortable solo and brutal shared *)
      check Alcotest.int "no paging solo" 0 solo.Metrics.major_faults;
      check Alcotest.bool "paging under contention" true
        (contended.Metrics.major_faults > 0);
      check Alcotest.bool "contention costs real time" true
        (contended.Metrics.elapsed_ns > solo.Metrics.elapsed_ns)
  | _ -> Alcotest.fail "contended pair did not complete"

(* ----------------------------------------------------------------- *)
(* Scheduling policies                                                *)

let test_priority_shields_primary () =
  let rr = List.map completed (Harness.Run.exec_all (pair_plan "BC")) in
  let prio =
    List.map completed
      (Harness.Run.exec_all
         (pair_plan "BC" |> Plan.with_priority 1
         |> Plan.with_policy Machine.Priority))
  in
  match (rr, prio) with
  | [ rr_bc; _ ], [ prio_bc; _ ] ->
      check Alcotest.bool "priority finishes the primary faster" true
        (prio_bc.Metrics.elapsed_ns < rr_bc.Metrics.elapsed_ns)
  | _ -> Alcotest.fail "unexpected process count"

let test_proportional_share_skews () =
  let shares share =
    match
      List.map completed
        (Harness.Run.exec_all
           (pair_plan "BC" ~coworker:"BC"
           |> Plan.with_share share
           |> Plan.with_policy Machine.Proportional))
    with
    | [ a; b ] -> (a.Metrics.elapsed_ns, b.Metrics.elapsed_ns)
    | _ -> Alcotest.fail "unexpected process count"
  in
  let a4, b4 = shares 4 in
  (* identical workloads: 4 slices per round vs 1 must finish the primary
     well before its twin *)
  check Alcotest.bool "4:1 share finishes the primary first" true (a4 < b4)

(* ----------------------------------------------------------------- *)
(* Per-process accounting                                             *)

let test_residency_attribution () =
  let machine = Machine.create ~frames:(4 * heap_pages) () in
  let spawn name =
    let p = Machine.spawn machine ~name ~heap_bytes in
    ignore (Harness.Registry.instantiate_name ~name:"BC" p);
    Machine.load_spec p mini_spec;
    p
  in
  let pa = spawn "jvm-a" and pb = spawn "jvm-b" in
  Machine.run machine;
  let vmm = Machine.vmm machine in
  List.iter
    (fun p ->
      let vp = Machine.vm_process p in
      check Alcotest.int
        (Machine.name p ^ " residency gauge matches the frame table")
        (Vmsim.Vmm.count_resident_owned vmm vp)
        (Vmsim.Process.stats vp).Vmsim.Vm_stats.resident_pages)
    [ pa; pb ];
  let global = (Vmsim.Vmm.stats vmm).Vmsim.Vm_stats.resident_pages in
  check Alcotest.int "machine gauge matches the VMM"
    (Vmsim.Vmm.resident_count vmm) global

let test_per_process_metrics_windows () =
  match Harness.Run.exec_all (pair_plan "BC" ~frames:(4 * heap_pages)) with
  | [ Metrics.Completed a; Metrics.Completed b ] ->
      check Alcotest.bool "both windows measured" true
        (a.Metrics.elapsed_ns > 0 && b.Metrics.elapsed_ns > 0);
      check Alcotest.bool "each process reports its own allocation" true
        (a.Metrics.allocated_bytes >= 1_000_000
        && b.Metrics.allocated_bytes >= 1_000_000);
      check Alcotest.string "primary keeps its collector" "BC"
        a.Metrics.collector;
      check Alcotest.string "coworker keeps its collector" "GenMS"
        b.Metrics.collector
  | _ -> Alcotest.fail "pair did not complete"

let test_proc_progress_tagging () =
  let traced plan =
    let sink = Telemetry.Sink.create () in
    ignore (Harness.Run.exec_all (plan |> Plan.with_trace sink));
    Telemetry.Sink.count sink Telemetry.Event.Proc_progress
  in
  let single =
    traced (Plan.make ~collector:"BC" ~spec:mini_spec ~heap_bytes)
  in
  let pair = traced (pair_plan "BC" ~frames:(4 * heap_pages)) in
  (* single-process traces are unchanged by the multi-process machinery *)
  check Alcotest.int "no per-process counters on a solo machine" 0 single;
  check Alcotest.bool "multi-process runs tag per-process progress" true
    (pair > 0)

let () =
  Alcotest.run "multiproc"
    [
      ( "determinism",
        [
          Alcotest.test_case "pair bit-identical" `Quick test_pair_deterministic;
          Alcotest.test_case "policies repeatable" `Quick
            test_policies_deterministic;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "forked = sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "failure isolation" `Quick
            test_parallel_isolates_failures;
        ] );
      ( "contention",
        [
          Alcotest.test_case "BC stays flat" `Quick test_contention_bc_flat;
          Alcotest.test_case "solo vs contended" `Quick test_solo_vs_contended;
        ] );
      ( "policies",
        [
          Alcotest.test_case "priority shields primary" `Quick
            test_priority_shields_primary;
          Alcotest.test_case "proportional share skews" `Quick
            test_proportional_share_skews;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "residency attribution" `Quick
            test_residency_attribution;
          Alcotest.test_case "per-process windows" `Quick
            test_per_process_metrics_windows;
          Alcotest.test_case "proc-progress tagging" `Quick
            test_proc_progress_tagging;
        ] );
    ]

module Mini = Test_support.Mini
module Metrics = Harness.Metrics
module Bmu = Harness.Bmu

let check = Alcotest.check

(* ----------------------------------------------------------------- *)
(* BMU                                                                *)

let test_bmu_no_pauses () =
  check (Alcotest.float 1e-9) "perfect utilization" 1.0
    (Bmu.min_mu ~pauses:[] ~total_ns:1000 ~window_ns:100)

let test_bmu_single_pause () =
  (* one 100ns pause in a 1000ns run *)
  let pauses = [ (400, 100) ] in
  (* a window of exactly the pause has zero utilization *)
  check (Alcotest.float 1e-9) "window = pause" 0.0
    (Bmu.min_mu ~pauses ~total_ns:1000 ~window_ns:100);
  (* a 200ns window worst case contains the whole pause *)
  check (Alcotest.float 1e-9) "double window" 0.5
    (Bmu.min_mu ~pauses ~total_ns:1000 ~window_ns:200);
  (* whole-run window *)
  check (Alcotest.float 1e-9) "full window" 0.9
    (Bmu.min_mu ~pauses ~total_ns:1000 ~window_ns:1000)

let test_bmu_adjacent_pauses () =
  let pauses = [ (100, 50); (150, 50) ] in
  check (Alcotest.float 1e-9) "merged pauses dominate window" 0.0
    (Bmu.min_mu ~pauses ~total_ns:1000 ~window_ns:100)

let test_bmu_curve_monotone () =
  let pauses = [ (100, 50); (300, 10); (700, 100) ] in
  let windows = [ 10; 50; 100; 200; 500; 1000 ] in
  let curve = Bmu.curve ~pauses ~total_ns:1000 ~windows in
  check Alcotest.int "all windows" (List.length windows) (List.length curve);
  let rec ascending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && ascending rest
    | _ -> true
  in
  check Alcotest.bool "BMU non-decreasing in window size" true
    (ascending curve);
  List.iter (fun (_, u) -> assert (u >= 0.0 && u <= 1.0)) curve

let prop_bmu_bounds =
  QCheck.Test.make ~name:"BMU always within [0,1]" ~count:100
    QCheck.(small_list (pair (int_bound 1_000) (int_range 1 500)))
    (fun raw ->
      (* GC pauses never overlap: lay the gaps and durations end to end *)
      let pauses =
        List.rev
          (snd
             (List.fold_left
                (fun (at, acc) (gap, dur) ->
                  (at + gap + dur, (at + gap, dur) :: acc))
                (0, []) raw))
      in
      let total_ns = 200_000 in
      List.for_all
        (fun w ->
          let u = Bmu.min_mu ~pauses ~total_ns ~window_ns:w in
          u >= 0.0 && u <= 1.0)
        [ 1; 10; 100; 1000; 20_000 ])

(* the candidate-point optimisation agrees with a brute-force sweep *)
let prop_bmu_matches_brute_force =
  QCheck.Test.make ~name:"min_mu matches brute force" ~count:60
    QCheck.(small_list (pair (int_bound 50) (int_range 1 30)))
    (fun raw ->
      let pauses =
        List.rev
          (snd
             (List.fold_left
                (fun (at, acc) (gap, dur) ->
                  (at + gap + dur, (at + gap, dur) :: acc))
                (0, []) raw))
      in
      let total_ns = 2_000 in
      let pauses = List.filter (fun (s, d) -> s + d <= total_ns) pauses in
      List.for_all
        (fun window_ns ->
          let fast = Bmu.min_mu ~pauses ~total_ns ~window_ns in
          (* brute force: every integer window start *)
          let worst = ref 0 in
          for s = 0 to total_ns - window_ns do
            let overlap =
              List.fold_left
                (fun acc (ps, pd) ->
                  acc + max 0 (min (s + window_ns) (ps + pd) - max s ps))
                0 pauses
            in
            if overlap > !worst then worst := overlap
          done;
          let brute =
            Float.max 0.0
              (1.0 -. (float_of_int !worst /. float_of_int window_ns))
          in
          Float.abs (fast -. brute) < 1e-9)
        [ 7; 40; 150; 900 ])

(* ----------------------------------------------------------------- *)
(* Registry                                                           *)

let test_registry_instantiates_all () =
  List.iter
    (fun name ->
      let m = Mini.machine () in
      let c = Harness.Registry.create ~name ~heap_bytes:(1024 * 1024) m.Mini.heap in
      check Alcotest.bool (name ^ " allocates") true
        (Heapsim.Obj_id.is_null
           (c.Gc_common.Collector.alloc ~size:32 ~nrefs:0 ~kind:`Scalar)
        = false))
    (Harness.Registry.names @ Harness.Registry.ablation_names)

let test_registry_unknown () =
  let m = Mini.machine () in
  check Alcotest.bool "unknown rejected" true
    (match Harness.Registry.create ~name:"NoSuchGC" ~heap_bytes:4096 m.Mini.heap with
    | (_ : Gc_common.Collector.t) -> false
    | exception Invalid_argument _ -> true)

let test_registry_variant_names () =
  let m = Mini.machine () in
  let c = Harness.Registry.create ~name:"BC-resize" ~heap_bytes:(1024 * 1024) m.Mini.heap in
  check Alcotest.string "display name" "BC-resize" c.Gc_common.Collector.name;
  let m2 = Mini.machine () in
  let c2 = Harness.Registry.create ~name:"GenMS-fixed" ~heap_bytes:(1024 * 1024) m2.Mini.heap in
  check Alcotest.string "fixed display name" "GenMS-fixed" c2.Gc_common.Collector.name

(* ----------------------------------------------------------------- *)
(* Run                                                                *)

let small_spec = Mini.spec ~volume:300_000 ()

let test_pause_percentiles () =
  match
    Harness.Run.exec
      (Harness.Run.Plan.make ~collector:"GenMS" ~spec:small_spec
         ~heap_bytes:(768 * 1024))
  with
  | Metrics.Completed m ->
      check Alcotest.bool "p50 <= p95 <= max" true
        (m.Metrics.p50_pause_ms <= m.Metrics.p95_pause_ms
        && m.Metrics.p95_pause_ms <= m.Metrics.max_pause_ms +. 1e-9);
      check Alcotest.bool "percentiles positive with pauses" true
        (m.Metrics.minor + m.Metrics.full = 0 || m.Metrics.p50_pause_ms > 0.0)
  | Metrics.Exhausted msg | Metrics.Thrashed msg -> Alcotest.fail msg
  | Metrics.Failed f -> Alcotest.fail f.Metrics.reason

let test_run_completes () =
  match
    Harness.Run.exec
      (Harness.Run.Plan.make ~collector:"BC" ~spec:small_spec
         ~heap_bytes:(1024 * 1024))
  with
  | Metrics.Completed m ->
      check Alcotest.string "collector" "BC" m.Metrics.collector;
      check Alcotest.bool "time advanced" true (m.Metrics.elapsed_ns > 0);
      check Alcotest.bool "alloc recorded" true
        (m.Metrics.allocated_bytes >= 300_000);
      check Alcotest.bool "no faults without pressure" true
        (m.Metrics.major_faults = 0)
  | Metrics.Exhausted msg | Metrics.Thrashed msg -> Alcotest.fail msg
  | Metrics.Failed f -> Alcotest.fail f.Metrics.reason

let test_run_exhausted () =
  match
    Harness.Run.exec
      (Harness.Run.Plan.make ~collector:"SemiSpace" ~spec:small_spec
         ~heap_bytes:(128 * 1024))
  with
  | Metrics.Completed _ -> Alcotest.fail "should not fit"
  | Metrics.Exhausted _ -> ()
  | Metrics.Thrashed msg -> Alcotest.fail ("thrashed: " ^ msg)
  | Metrics.Failed f -> Alcotest.fail ("failed: " ^ f.Metrics.reason)

let test_run_under_pressure_counts_faults () =
  let heap_bytes = 768 * 1024 in
  let frames = (heap_bytes / 4096) + 64 in
  match
    Harness.Run.exec
      (Harness.Run.Plan.make ~collector:"GenMS"
         ~spec:(Mini.spec ~volume:1_200_000 ())
         ~heap_bytes
      |> Harness.Run.Plan.with_frames frames
      |> Harness.Run.Plan.with_pressure
           (Workload.Pressure.Steady
              { after_progress = 0.2; pin_pages = frames - 110 }))
  with
  | Metrics.Completed m ->
      check Alcotest.bool "faults under pressure" true
        (m.Metrics.major_faults > 0)
  | Metrics.Exhausted msg | Metrics.Thrashed msg -> Alcotest.fail msg
  | Metrics.Failed f -> Alcotest.fail f.Metrics.reason

let test_two_iterations () =
  (* §5.1 methodology: warm-up iterations run, but only the last is
     measured *)
  let once iterations =
    match
      Harness.Run.exec
        (Harness.Run.Plan.make ~collector:"GenMS" ~spec:small_spec
           ~heap_bytes:(1024 * 1024)
        |> Harness.Run.Plan.with_iterations iterations)
    with
    | Metrics.Completed m -> m
    | Metrics.Exhausted msg | Metrics.Thrashed msg -> Alcotest.fail msg
    | Metrics.Failed f -> Alcotest.fail f.Metrics.reason
  in
  let single = once 1 and double = once 2 in
  (* allocation accounting covers only the measured iteration *)
  check Alcotest.bool "measured volume comparable" true
    (abs (double.Metrics.allocated_bytes - single.Metrics.allocated_bytes)
    < single.Metrics.allocated_bytes / 4);
  check Alcotest.bool "warmed run measured separately" true
    (double.Metrics.elapsed_ns > 0)

let test_run_pair_heterogeneous () =
  let heap_bytes = 768 * 1024 in
  let plan =
    Harness.Run.Plan.make ~collector:"BC" ~spec:small_spec ~heap_bytes
    |> Harness.Run.Plan.with_frames 1024
    |> Harness.Run.Plan.with_process ~collector:"GenMS" ~spec:small_spec
  in
  match Harness.Run.exec_all plan with
  | [ Metrics.Completed a; Metrics.Completed b ] ->
      check Alcotest.string "first is BC" "BC" a.Metrics.collector;
      check Alcotest.string "second is GenMS" "GenMS" b.Metrics.collector
  | _ -> Alcotest.fail "mixed pair did not complete"

let test_run_pair () =
  let heap_bytes = 768 * 1024 in
  let plan =
    Harness.Run.Plan.make ~collector:"BC" ~spec:small_spec ~heap_bytes
    |> Harness.Run.Plan.with_frames 1024
    |> Harness.Run.Plan.with_process ~collector:"BC" ~spec:small_spec
  in
  match Harness.Run.exec_all plan with
  | [ Metrics.Completed a; Metrics.Completed b ] ->
      check Alcotest.bool "both ran" true
        (a.Metrics.elapsed_ns > 0 && b.Metrics.elapsed_ns > 0)
  | _ -> Alcotest.fail "pair did not complete"

(* The flat-record shim is gone; the Plan combinators are the only entry
   point. Two plans that desugar to the same configuration — one built
   with explicit combinators matching the old setup's defaults, one the
   bare constructor — must execute bit-identically, and their canonical
   forms (hence campaign digests) must agree. *)
let test_plan_equivalence () =
  let bare =
    Harness.Run.Plan.make ~collector:"BC" ~spec:small_spec
      ~heap_bytes:(1024 * 1024)
  in
  let explicit =
    Harness.Run.Plan.make_workload ~collector:"BC"
      ~workload:(Workload.Catalog.Batch_spec small_spec)
      ~heap_bytes:(1024 * 1024)
    |> Harness.Run.Plan.with_frames
         (Harness.Run.ample_frames ~heap_bytes:(1024 * 1024))
    |> Harness.Run.Plan.with_iterations 1
  in
  check Alcotest.string "canonical forms agree"
    (Harness.Run.Plan.canonical bare)
    (Harness.Run.Plan.canonical explicit);
  match (Harness.Run.exec bare, Harness.Run.exec explicit) with
  | Metrics.Completed a, Metrics.Completed b ->
      check Alcotest.bool "equivalent plans agree bit for bit" true (a = b)
  | _ -> Alcotest.fail "plan run did not complete"

(* A 2^30-page address space must cost memory proportional to the pages
   the run actually touches — the dense tables this PR retired would
   have needed gigabytes for the state bytes alone. Run a (scaled)
   Table 1 workload at a giant base and read the process's own VmRSS
   back from /proc: well under 100 MB, sparse table and all. *)
let rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmRSS:"
                then
                  Scanf.sscanf
                    (String.sub line 6 (String.length line - 6))
                    " %d kB"
                    (fun kb -> Some kb)
                else scan ()
          in
          scan ())

let test_giant_base_small_rss () =
  let spec = Workload.Spec.scale_volume Workload.Benchmarks.compress 0.1 in
  let plan =
    Harness.Run.Plan.make ~collector:"BC" ~spec ~heap_bytes:(1536 * 1024)
    |> Harness.Run.Plan.with_address_base ((1 lsl 30) - 64)
  in
  (match Harness.Run.exec plan with
  | Metrics.Completed _ -> ()
  | other ->
      Alcotest.failf "giant-base run did not complete: %s"
        (Metrics.outcome_label other));
  match rss_kb () with
  | None -> () (* no /proc (non-Linux): the completion check stands alone *)
  | Some kb ->
      if kb >= 100 * 1024 then
        Alcotest.failf "RSS %d kB for a 2^30-page address space" kb

(* ----------------------------------------------------------------- *)
(* Minheap                                                            *)

let test_minheap_finds_small_heap () =
  match
    Harness.Minheap.find ~volume_scale:1.0 ~collector:"GenMS"
      ~spec:small_spec ()
  with
  | None -> Alcotest.fail "no workable heap"
  | Some bytes ->
      check Alcotest.bool "above live estimate" true (bytes >= 160_000);
      check Alcotest.bool "below 4x live" true (bytes <= 4 * 1024 * 1024)

let test_minheap_semispace_reserve () =
  let find c =
    Option.get
      (Harness.Minheap.find ~volume_scale:1.0 ~collector:c ~spec:small_spec ())
  in
  (* SemiSpace's copy reserve means its minimum heap is at least twice
     the immortal data (100KB; the window barely fills at this volume) *)
  check Alcotest.bool "SemiSpace needs a copy reserve" true
    (find "SemiSpace" >= 2 * 100_000)

(* ----------------------------------------------------------------- *)
(* Charts                                                             *)

let test_chart_renders () =
  let out =
    Harness.Chart.render ~columns:[ "BC"; "GenMS" ]
      ~rows:
        [
          ("1", [ Some 1.0; Some 100.0 ]);
          ("2", [ Some 1.1; Some 400.0 ]);
          ("3", [ Some 1.0; None ]);
        ]
      ()
  in
  check Alcotest.bool "has legend" true
    (String.length out > 0
    &&
    let contains needle =
      let n = String.length needle and h = String.length out in
      let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
      go 0
    in
    contains "A = BC" && contains "B = GenMS" && contains "A" && contains "B")

let test_chart_empty () =
  check Alcotest.string "empty data" "(no data)\n"
    (Harness.Chart.render ~columns:[ "x" ] ~rows:[ ("1", [ None ]) ] ())

(* ----------------------------------------------------------------- *)
(* Table formatting                                                   *)

let test_fmt () =
  check Alcotest.string "bytes KB" "512KB" (Harness.Table.fmt_bytes (512 * 1024));
  check Alcotest.string "bytes MB" "2.00MB"
    (Harness.Table.fmt_bytes (2 * 1024 * 1024));
  check Alcotest.string "seconds" "1.500" (Harness.Table.fmt_seconds 1.5);
  check Alcotest.string "ms" "2.35" (Harness.Table.fmt_ms 2.349)

(* ----------------------------------------------------------------- *)
(* Work-stealing deque                                                 *)

module Ws_deque = Harness.Ws_deque

(* Single-threaded semantics: the owner pops LIFO from the bottom, a
   thief takes FIFO from the top, and the two ends meet exactly once. *)
let test_deque_ends () =
  let q = Ws_deque.create () in
  check Alcotest.bool "fresh deque empty" true (Ws_deque.is_empty q);
  check Alcotest.bool "pop empty" true (Ws_deque.pop q = None);
  check Alcotest.bool "steal empty" true (Ws_deque.steal q = None);
  List.iter (Ws_deque.push q) [ 1; 2; 3; 4 ];
  check Alcotest.int "length" 4 (Ws_deque.length q);
  check Alcotest.bool "steal oldest" true (Ws_deque.steal q = Some 1);
  check Alcotest.bool "pop newest" true (Ws_deque.pop q = Some 4);
  check Alcotest.bool "steal next oldest" true (Ws_deque.steal q = Some 2);
  check Alcotest.bool "pop last" true (Ws_deque.pop q = Some 3);
  check Alcotest.bool "drained" true (Ws_deque.is_empty q);
  (* reusable after reset *)
  Ws_deque.push q 9;
  Ws_deque.reset q;
  check Alcotest.bool "reset empties" true (Ws_deque.pop q = None)

(* Growth: push far past the initial capacity, then drain from both
   ends; every element must come out exactly once. *)
let test_deque_grow () =
  let n = 1000 in
  let q = Ws_deque.create ~capacity:16 () in
  for i = 0 to n - 1 do
    Ws_deque.push q i
  done;
  let seen = Array.make n 0 in
  let rec go flip =
    match if flip then Ws_deque.steal q else Ws_deque.pop q with
    | Some v ->
        seen.(v) <- seen.(v) + 1;
        go (not flip)
    | None -> ()
  in
  go true;
  check Alcotest.bool "each element exactly once" true
    (Array.for_all (fun c -> c = 1) seen)

(* The satellite skew scenario at the deque level, deterministically:
   every item in ONE deque, consumed exclusively by thief domains. The
   owner never pops, so the thieves must drain it — and every item must
   surface exactly once across them. *)
let test_deque_thieves_drain () =
  let n = 10_000 in
  let q = Ws_deque.create () in
  for i = 0 to n - 1 do
    Ws_deque.push q i
  done;
  let thief () =
    let mine = ref [] in
    let rec go () =
      match Ws_deque.steal q with
      | Some v ->
          mine := v :: !mine;
          go ()
      | None -> ()
    in
    go ();
    !mine
  in
  let d1 = Domain.spawn thief and d2 = Domain.spawn thief in
  let got = Domain.join d1 @ Domain.join d2 in
  check Alcotest.bool "deque drained" true (Ws_deque.is_empty q);
  check Alcotest.int "no item lost or duplicated" n (List.length got);
  let sorted = List.sort compare got in
  check Alcotest.bool "exactly 0..n-1" true
    (List.for_all2 ( = ) sorted (List.init n Fun.id))

(* ----------------------------------------------------------------- *)
(* Domain pool                                                         *)

module Domain_pool = Harness.Domain_pool
module Supervisor = Harness.Supervisor

let outcome_str = function
  | Metrics.Completed m -> Telemetry.Json.to_string (Metrics.to_json m)
  | other -> Format.asprintf "%a" Metrics.pp_outcome other

let skew_plans () =
  let spec =
    {
      (Workload.Spec.scale_volume Workload.Benchmarks.compress 0.02)
      with
      Workload.Spec.immortal_bytes = 60_000;
      window_bytes = 30_000;
    }
  in
  Array.init 16 (fun i ->
      let collector = if i land 1 = 0 then "BC" else "GenMS" in
      Harness.Run.Plan.make ~collector ~spec
        ~heap_bytes:((512 * 1024) + ((i land 3) * 16_384)))

(* Work stealing under skew (the satellite test): every cell lands in
   worker 0's deque, yet the round's results must be spec-ordered and
   byte-identical to a sequential sweep, with the idle worker observed
   stealing. The steal count is scheduling-dependent on a loaded box,
   so the round retries a few times before declaring the thief idle —
   each round re-checks byte identity regardless. *)
let test_pool_skew () =
  let plans = skew_plans () in
  let seq = Array.map (fun p -> outcome_str (Harness.Run.exec p)) plans in
  let pool = Domain_pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let rec round attempt =
        let out =
          Domain_pool.run pool
            ~partition:(fun _ -> 0)
            (fun p -> outcome_str (Harness.Run.exec p))
            plans
        in
        let got =
          Array.map
            (function Ok s -> s | Error (e, _) -> raise e)
            out
        in
        Array.iteri
          (fun i s ->
            check Alcotest.string
              (Printf.sprintf "cell %d identical to sequential" i)
              seq.(i) s)
          got;
        let st = Domain_pool.last_stats pool in
        check Alcotest.int "every cell executed"
          (Array.length plans)
          (Array.fold_left ( + ) 0 st.Domain_pool.executed);
        if st.Domain_pool.steals = 0 && attempt < 5 then round (attempt + 1)
        else
          check Alcotest.bool "thief stole from the loaded deque" true
            (st.Domain_pool.steals > 0)
      in
      round 1)

(* on_result must fire in the coordinating domain, once per cell. *)
let test_pool_on_result_coordinator () =
  let me = Domain.self () in
  let pool = Domain_pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let fired = Array.make 32 0 in
      let in_coordinator = ref true in
      let out =
        Domain_pool.run pool
          ~on_result:(fun i _ ->
            fired.(i) <- fired.(i) + 1;
            if Domain.self () <> me then in_coordinator := false)
          (fun x -> x * x)
          (Array.init 32 Fun.id)
      in
      check Alcotest.bool "results in spec order" true
        (Array.to_list out = List.init 32 (fun i -> Ok (i * i)));
      check Alcotest.bool "on_result once per cell" true
        (Array.for_all (fun c -> c = 1) fired);
      check Alcotest.bool "on_result ran in the coordinating domain" true
        !in_coordinator)

(* A raising cell yields Error with the exception, and poisons nothing:
   the same pool keeps serving rounds. *)
let test_pool_errors_isolated () =
  let pool = Domain_pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let out =
        Domain_pool.run pool
          (fun i -> if i = 3 then failwith "boom" else i)
          (Array.init 8 Fun.id)
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> check Alcotest.int (Printf.sprintf "cell %d" i) i v
          | Error (Failure m, _) ->
              check Alcotest.int "only cell 3 fails" 3 i;
              check Alcotest.string "message" "boom" m
          | Error (e, _) -> raise e)
        out;
      let again =
        Domain_pool.run pool (fun i -> i + 1) (Array.init 4 Fun.id)
      in
      check Alcotest.bool "pool serves the next round" true
        (Array.to_list again = [ Ok 1; Ok 2; Ok 3; Ok 4 ]))

(* Supervisor on the domains backend: retry accounting matches the
   sequential semantics, and chaos is rejected up front. *)
let test_supervisor_domains () =
  let attempts_seen = Array.init 6 (fun _ -> Atomic.make 0) in
  let f i =
    let a = Atomic.fetch_and_add attempts_seen.(i) 1 in
    if i = 2 && a = 0 then failwith "first attempt fails";
    i * 10
  in
  let cells, stats =
    Supervisor.run ~jobs:2 ~backend:`Domains ~attempts:2 ~backoff_s:0.001 f
      (Array.init 6 Fun.id)
  in
  Array.iteri
    (fun i c ->
      match c with
      | Supervisor.Done { value; attempts; _ } ->
          check Alcotest.int (Printf.sprintf "value %d" i) (i * 10) value;
          check Alcotest.int
            (Printf.sprintf "attempts %d" i)
            (if i = 2 then 2 else 1)
            attempts
      | Supervisor.Quarantined _ -> Alcotest.fail "unexpected quarantine")
    cells;
  check Alcotest.int "one retry tallied" 1 stats.Supervisor.retried;
  check Alcotest.int "nothing quarantined" 0 stats.Supervisor.quarantined;
  check Alcotest.bool "chaos rejected on domains" true
    (match
       Supervisor.run ~jobs:2 ~backend:`Domains
         ~chaos:{ Supervisor.chaos_seed = 1; kill_prob = 0.5; max_kills = 1 }
         Fun.id (Array.init 4 Fun.id)
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Domain_pool.shutdown_global ()

(* jobs <= 0 is a one-line error everywhere, never a silent sequential
   fallback. *)
let test_jobs_validation () =
  let rejects f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check Alcotest.bool "Supervisor.run" true
    (rejects (fun () -> Supervisor.run ~jobs:0 Fun.id [| 1 |]));
  check Alcotest.bool "Parallel.map" true
    (rejects (fun () -> Harness.Parallel.map ~jobs:0 Fun.id [ 1 ]));
  check Alcotest.bool "Parallel.outcomes" true
    (rejects (fun () -> Harness.Parallel.outcomes ~jobs:(-1) []));
  check Alcotest.bool "Experiments.set_jobs" true
    (rejects (fun () -> Harness.Experiments.set_jobs 0));
  check Alcotest.bool "Domain_pool.create" true
    (rejects (fun () -> Domain_pool.create ~jobs:0))

let () =
  Alcotest.run "harness"
    [
      ( "bmu",
        [
          Alcotest.test_case "no pauses" `Quick test_bmu_no_pauses;
          Alcotest.test_case "single pause" `Quick test_bmu_single_pause;
          Alcotest.test_case "adjacent pauses" `Quick test_bmu_adjacent_pauses;
          Alcotest.test_case "curve monotone" `Quick test_bmu_curve_monotone;
          QCheck_alcotest.to_alcotest prop_bmu_bounds;
          QCheck_alcotest.to_alcotest prop_bmu_matches_brute_force;
        ] );
      ( "registry",
        [
          Alcotest.test_case "all instantiate" `Quick test_registry_instantiates_all;
          Alcotest.test_case "unknown rejected" `Quick test_registry_unknown;
          Alcotest.test_case "variant names" `Quick test_registry_variant_names;
        ] );
      ( "run",
        [
          Alcotest.test_case "completes" `Quick test_run_completes;
          Alcotest.test_case "pause percentiles" `Quick test_pause_percentiles;
          Alcotest.test_case "exhausted" `Quick test_run_exhausted;
          Alcotest.test_case "pressure faults" `Quick
            test_run_under_pressure_counts_faults;
          Alcotest.test_case "pair" `Quick test_run_pair;
          Alcotest.test_case "heterogeneous pair" `Quick
            test_run_pair_heterogeneous;
          Alcotest.test_case "two iterations" `Quick test_two_iterations;
          Alcotest.test_case "plan equivalence" `Quick test_plan_equivalence;
          Alcotest.test_case "giant base small RSS" `Quick
            test_giant_base_small_rss;
        ] );
      ( "minheap",
        [
          Alcotest.test_case "finds" `Quick test_minheap_finds_small_heap;
          Alcotest.test_case "copy reserve" `Quick test_minheap_semispace_reserve;
        ] );
      ( "charts",
        [
          Alcotest.test_case "renders" `Quick test_chart_renders;
          Alcotest.test_case "empty" `Quick test_chart_empty;
        ] );
      ("format", [ Alcotest.test_case "fmt" `Quick test_fmt ]);
      ( "ws_deque",
        [
          Alcotest.test_case "both ends" `Quick test_deque_ends;
          Alcotest.test_case "grow" `Quick test_deque_grow;
          Alcotest.test_case "thieves drain" `Quick test_deque_thieves_drain;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "skewed round steals" `Quick test_pool_skew;
          Alcotest.test_case "on_result in coordinator" `Quick
            test_pool_on_result_coordinator;
          Alcotest.test_case "errors isolated" `Quick test_pool_errors_isolated;
          Alcotest.test_case "supervisor domains backend" `Quick
            test_supervisor_domains;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
        ] );
    ]
